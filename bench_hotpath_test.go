package repro

// Hot-path benchmarks (see internal/benchhot). Run with
//
//	go test -bench=Hot -benchmem -run '^$' .
//
// cmd/benchhot runs the same bodies and records the results in
// BENCH_hotpath.json, the repo's performance trajectory.

import (
	"testing"

	"repro/internal/benchhot"
)

func BenchmarkHotSingleCell(b *testing.B)            { benchhot.SingleCell(b) }
func BenchmarkHotFig62Sweep(b *testing.B)            { benchhot.Fig62Sweep(b) }
func BenchmarkHotServicePath(b *testing.B)           { benchhot.ServicePath(b) }
func BenchmarkHotCampaignTrial(b *testing.B)         { benchhot.CampaignTrial(b) }
func BenchmarkHotCampaignTrialParallel(b *testing.B) { benchhot.CampaignTrialParallel(b) }
