package repro

// One benchmark per table and figure of the evaluation chapter. Each
// regenerates its experiment at the quick scale and reports the
// headline metrics alongside the timing, so
//
//	go test -bench=. -benchmem
//
// re-derives the whole evaluation. cmd/figures prints the same tables
// at the paper-sized "full" scale.
//
// Figure drivers fan their experiment cells out across the harness
// runner's worker pool and memoize per-Spec, so within one `go test
// -bench` process each distinct cell is simulated once no matter how
// many figures (or b.N iterations) request it. The BenchmarkRunner*
// pair at the bottom measures the scheduler itself on fresh caches.

import (
	"context"
	"testing"

	"repro/internal/harness"
)

func BenchmarkFig6_1_ICHKSizePARSEC(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		td := harness.Fig61(harness.Quick)
		avg = td.Rows[len(td.Rows)-1].Values[0]
	}
	b.ReportMetric(avg, "avg_ICHK_%")
}

func BenchmarkFig6_2_ICHKSizeSPLASH(b *testing.B) {
	var avg32, avg64 float64
	for i := 0; i < b.N; i++ {
		tds := harness.Fig62(harness.Quick)
		avg32 = tds[0].Rows[len(tds[0].Rows)-1].Values[0]
		avg64 = tds[1].Rows[len(tds[1].Rows)-1].Values[0]
	}
	b.ReportMetric(avg32, "avg_ICHK_half_%")
	b.ReportMetric(avg64, "avg_ICHK_full_%")
}

func BenchmarkFig6_3_Overhead(b *testing.B) {
	var glob, rbnd float64
	for i := 0; i < b.N; i++ {
		tds := harness.Fig63(harness.Quick)
		avg := tds[0].Rows[len(tds[0].Rows)-1] // SPLASH-2 average row
		glob, rbnd = avg.Values[0], avg.Values[3]
	}
	b.ReportMetric(glob, "Global_ovh_%")
	b.ReportMetric(rbnd, "Rebound_ovh_%")
}

func BenchmarkFig6_4_BarrierOpt(b *testing.B) {
	var noDWB, noDWBBarr float64
	for i := 0; i < b.N; i++ {
		td := harness.Fig64(harness.Quick)
		avg := td.Rows[len(td.Rows)-1]
		noDWB, noDWBBarr = avg.Values[1], avg.Values[2]
	}
	b.ReportMetric(noDWB, "NoDWB_ovh_%")
	b.ReportMetric(noDWBBarr, "NoDWB_Barr_ovh_%")
}

func BenchmarkFig6_5_Breakdown(b *testing.B) {
	var reboundTotal float64
	for i := 0; i < b.N; i++ {
		td := harness.Fig65(harness.Quick)
		reboundTotal = td.Rows[2].Values[4] // Rebound total, Global==1
	}
	b.ReportMetric(reboundTotal, "Rebound_vs_Global")
}

func BenchmarkFig6_6_Scalability(b *testing.B) {
	var globLargest, rbndLargest float64
	for i := 0; i < b.N; i++ {
		tds := harness.Fig66(harness.Quick)
		last := tds[0].Rows[len(tds[0].Rows)-1]
		globLargest, rbndLargest = last.Values[0], last.Values[2]
	}
	b.ReportMetric(globLargest, "Global_ovh_largest_%")
	b.ReportMetric(rbndLargest, "Rebound_ovh_largest_%")
}

func BenchmarkFig6_7_OutputIO(b *testing.B) {
	var glob, rbnd float64
	for i := 0; i < b.N; i++ {
		td := harness.Fig67(harness.Quick)
		avg := td.Rows[len(td.Rows)-1]
		glob, rbnd = avg.Values[0], avg.Values[1]
	}
	b.ReportMetric(glob, "Global_interval_instr")
	b.ReportMetric(rbnd, "Rebound_interval_instr")
}

func BenchmarkFig6_8_Power(b *testing.B) {
	var reboundVsGlobal, ed2 float64
	for i := 0; i < b.N; i++ {
		td := harness.Fig68(harness.Quick)
		reboundVsGlobal = td.Rows[2].Values[1]
		ed2 = td.Rows[2].Values[2]
	}
	b.ReportMetric(reboundVsGlobal, "Rebound_power_vs_Global_%")
	b.ReportMetric(ed2, "Rebound_ED2_vs_Global_%")
}

// Ablation benches for the design choices DESIGN.md calls out (not
// paper figures): WSIG geometry, the first-writeback log optimisation,
// and Dep register-set pressure.

func BenchmarkAblationWSIG(b *testing.B) {
	var fp1024 float64
	for i := 0; i < b.N; i++ {
		td := harness.AblationWSIG(harness.Quick, "Water-Nsq")
		fp1024 = td.Rows[3].Values[0]
	}
	b.ReportMetric(fp1024, "FP_1024bit_%")
}

func BenchmarkAblationFirstWB(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		td := harness.AblationFirstWB(harness.Quick, "Uniform")
		saved = (1 - td.Rows[0].Values[0]/td.Rows[1].Values[0]) * 100
	}
	b.ReportMetric(saved, "log_entries_saved_%")
}

func BenchmarkAblationDepSets(b *testing.B) {
	var stall2 float64
	for i := 0; i < b.N; i++ {
		td := harness.AblationDepSets(harness.Quick, "Uniform")
		stall2 = td.Rows[0].Values[1]
	}
	b.ReportMetric(stall2, "depstall_2sets_kcycles")
}

// The runner benchmarks execute the same sweep (Figs 6.1 and 6.7's
// cells) on a fresh memoization cache each iteration, once across the
// GOMAXPROCS worker pool and once through the serial escape hatch:
// their ratio is the wall-clock win of parallel experiment execution.

func runnerSweepSpecs() []harness.Spec {
	return append(harness.Fig61Specs(harness.Quick), harness.Fig67Specs(harness.Quick)...)
}

func BenchmarkRunnerParallel(b *testing.B) {
	specs := runnerSweepSpecs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		if _, err := r.Run(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "cells")
}

func BenchmarkRunnerSerial(b *testing.B) {
	specs := runnerSweepSpecs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		if _, err := r.RunSerial(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(specs)), "cells")
}

func BenchmarkTable6_1_Characterization(b *testing.B) {
	var fp, logMB, msg float64
	for i := 0; i < b.N; i++ {
		td := harness.Table61(harness.Quick)
		avg := td.Rows[len(td.Rows)-1]
		fp, logMB, msg = avg.Values[0], avg.Values[1], avg.Values[2]
	}
	b.ReportMetric(fp, "ICHK_FP_incr_%")
	b.ReportMetric(logMB, "log_MB")
	b.ReportMetric(msg, "msg_incr_%")
}
