// Quickstart: build a 16-processor Rebound machine, run a SPLASH-2-like
// workload, and print what the checkpointing cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	// A 16-tile manycore with the paper's cache/memory parameters and a
	// scaled checkpoint interval (30k instructions; the paper uses 4M).
	cfg := machine.DefaultConfig(16)
	cfg.CkptInterval = 30_000
	cfg.DetectLatency = 8_000 // L: fault-detection latency bound, cycles

	// The workload: Barnes' communication structure (moderate sharing,
	// occasional barriers and locks).
	prof := workload.ByName("Barnes")

	// The scheme: Rebound with delayed writebacks (the paper's
	// headline configuration).
	scheme := core.NewRebound(core.Options{DelayedWB: true})

	m := machine.New(cfg, prof, scheme)
	end := m.Run(16 * 150_000) // 150k instructions per processor
	m.FinalizeStats()

	st := m.St
	fmt.Printf("ran %d instructions in %d cycles (chip IPC %.2f)\n",
		st.TotalInstructions(), end, float64(st.TotalInstructions())/float64(end))
	fmt.Printf("checkpoints taken: %d\n", len(st.Checkpoints))
	fmt.Printf("average interaction set: %.0f%% of processors\n", st.AvgICHKFraction()*100)
	fmt.Printf("dirty lines written back at checkpoints: %d (%d hidden in background)\n",
		st.L2WritebacksCkpt, st.L2WritebacksBg)
	fmt.Printf("undo log: %d entries, %.2f MB high water\n",
		st.LogEntries, float64(st.LogHighWaterBytes)/(1<<20))
	fmt.Printf("dependence-tracking message overhead: +%.1f%%\n", st.MessageIncreasePct())

	// Compare against the same machine with no checkpointing at all.
	base := machine.New(cfg, prof, machine.NullScheme{})
	baseEnd := base.Run(16 * 150_000)
	fmt.Printf("checkpointing overhead vs no-checkpointing: %.2f%%\n",
		(float64(end)/float64(baseEnd)-1)*100)
}
