// I/O-intensive workloads (§6.4): output I/O must be preceded by a
// checkpoint, so a single chatty processor drags a Global system into
// constant whole-machine checkpoints, while Rebound checkpoints only
// the I/O processor's small interaction set. This example runs an
// Apache-like server workload where one core performs output I/O at
// twice the checkpoint frequency and compares the effective checkpoint
// interval under both schemes (the Fig 6.7 experiment).
//
//	go run ./examples/iointensive
package main

import (
	"fmt"

	"repro/internal/harness"
)

func main() {
	sc := harness.Quick
	sc.ProcsLarge = 16

	fmt.Printf("one processor of %d forces a checkpoint every %d instructions\n",
		sc.ProcsLarge, sc.Interval/2)
	fmt.Printf("the regular checkpoint interval is %d instructions\n\n", sc.Interval)

	for _, app := range []string{"Apache", "Blackscholes"} {
		fmt.Printf("%s:\n", app)
		for _, scheme := range []string{"Global", "Rebound"} {
			res := harness.MustRun(harness.Spec{
				App: app, Procs: sc.ProcsLarge, Scheme: scheme,
				Scale: sc, IOForce: sc.Interval / 2,
			})
			fmt.Printf("  %-8s avg interval %6.0f instr/processor, "+
				"%3d checkpoints, avg set %5.1f%% of procs\n",
				scheme, res.St.AvgCheckpointIntervalInstr(),
				len(res.St.Checkpoints), res.St.AvgICHKFraction()*100)
		}
		fmt.Println()
	}
	fmt.Println("Rebound sustains a longer per-processor interval because the")
	fmt.Println("I/O processor checkpoints alone (or with its small cluster),")
	fmt.Println("instead of dragging every processor with it.")
}
