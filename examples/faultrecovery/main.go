// Fault recovery: inject transient faults into a running Rebound
// machine, watch the distributed rollback protocol collect the recovery
// interaction set, and verify end to end that no corrupted value
// survives (the guarantee of §3.2/§3.3.5 and Appendix A).
//
//	go run ./examples/faultrecovery
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	cfg := machine.DefaultConfig(16)
	cfg.CkptInterval = 25_000
	cfg.DetectLatency = 6_000

	prof := workload.ByName("Water-Nsq")
	scheme := core.NewRebound(core.Options{DelayedWB: true})
	m := machine.New(cfg, prof, scheme)
	inj := fault.NewInjector(m, 7)

	// Warm up: let several checkpoints complete so there are safe
	// recovery points.
	m.Run(16 * 60_000)
	fmt.Printf("warmed up: %d checkpoints completed\n", len(m.St.Checkpoints))

	// Inject three transient faults at random cores/times over the next
	// stretch; each is detected within L cycles.
	inj.InjectRandom(3, 400_000)
	m.Run(16 * 120_000)
	m.RunCycles(10_000_000) // let the last recovery settle
	m.FinalizeStats()

	fmt.Printf("faults injected: %d, detected: %d\n", inj.Injected, inj.Detected)
	for i, rb := range m.St.Rollbacks {
		fmt.Printf("rollback %d: initiated by proc %d, IREC={%v} (%d procs), "+
			"%d log entries restored, recovery latency %.3f ms\n",
			i, rb.Initiator, rb.Members, rb.Size, rb.Restored,
			float64(rb.End-rb.Start)/1e6)
	}
	tainted := make([]int, 0, len(inj.TaintedEver))
	for id := range inj.TaintedEver {
		tainted = append(tainted, id)
	}
	fmt.Printf("processors that consumed corrupted data: %v\n", tainted)

	if err := inj.Verify(); err != nil {
		fmt.Println("VERIFICATION FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("verification OK: no poison survived; every tainted processor was rolled back")
}
