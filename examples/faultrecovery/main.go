// Fault recovery, campaign-style: run a small real Monte Carlo fault
// campaign — dozens of deterministic trials, each injecting transient
// faults into a running Rebound machine, letting the distributed
// rollback protocol collect the recovery interaction set, and verifying
// end to end that no corrupted value survives (the guarantee of
// §3.2/§3.3.5 and Appendix A). The campaign aggregates what the paper's
// recovery evaluation reports: MTTR, availability and rolled-back work,
// with confidence intervals.
//
//	go run ./examples/faultrecovery
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/harness"
)

func main() {
	spec := campaign.Spec{
		Base: harness.Spec{
			App:    "Water-Nsq",
			Procs:  8,
			Scheme: "Rebound",
			Scale:  harness.Quick,
		},
		Trials: 24,
		Faults: 3,
		Seed:   7,
	}
	fmt.Printf("campaign: %d trials x %d faults on %s x%d under %s\n",
		spec.Trials, spec.Faults, spec.Base.App, spec.Base.Procs, spec.Base.Scheme)

	eng := campaign.New(harness.NewRunner(0), nil)
	eng.OnProgress = func(done, total int) {
		if done == total || done%8 == 0 {
			fmt.Printf("  %d/%d trials done\n", done, total)
		}
	}
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		fmt.Println("campaign failed:", err)
		os.Exit(1)
	}

	// A few representative trials, then the aggregate.
	for _, tr := range rep.TrialRecords[:3] {
		fmt.Printf("trial %d: %d faults -> %d rollbacks (IREC sizes %v), "+
			"%d log entries restored, tainted procs %v, verified=%v\n",
			tr.Index, tr.Injected, len(tr.Recoveries), tr.IRECSizes,
			tr.Restored, tr.Tainted, tr.VerifyOK)
	}
	fmt.Printf("faults: %d injected, %d detected, %d rollbacks across %d trials\n",
		rep.FaultsInjected, rep.FaultsDetected, rep.Rollbacks, rep.Trials)
	fmt.Printf("recovery latency: mean %.0f cycles (+-%.0f @95%%), p95 %.0f  =>  MTTR %.4f ms at 1 GHz\n",
		rep.Recovery.Mean, rep.Recovery.CI95, rep.Recovery.P95, rep.MTTRms)
	fmt.Printf("IREC size: mean %.2f of %d procs, p95 %.0f\n",
		rep.IREC.Mean, spec.Base.Procs, rep.IREC.P95)
	fmt.Printf("availability %.6f, wasted work %.4f%%\n",
		rep.Availability, rep.WastedWorkFrac*100)

	if rep.VerifiedOK != rep.Trials {
		fmt.Printf("VERIFICATION FAILED on %d/%d trials\n",
			rep.Trials-rep.VerifiedOK, rep.Trials)
		os.Exit(1)
	}
	fmt.Printf("verification OK on all %d trials: no poison survived; "+
		"every tainted processor was rolled back\n", rep.Trials)
}
