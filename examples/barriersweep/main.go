// Barrier optimisation sweep (§4.2.1): on barrier-heavy codes every
// checkpoint is effectively global (the barrier chains all processors
// into one interaction set), so Rebound hides the checkpoint behind the
// barrier's imbalance time instead. This example sweeps the scheme
// variants over Ocean (a barrier every ~15k scaled instructions) and
// prints the overhead of each, reproducing the Figure 6.4 comparison
// for one application.
//
//	go run ./examples/barriersweep
package main

import (
	"fmt"

	"repro/internal/harness"
)

func main() {
	sc := harness.Quick
	app := "Ocean"
	fmt.Printf("%s on %d processors, checkpoint interval %d instructions\n\n",
		app, sc.ProcsLarge, sc.Interval)

	schemes := []string{
		"Global",
		"Rebound_NoDWB",
		"Rebound_NoDWB_Barr",
		"Rebound",
		"Rebound_Barr",
	}
	fmt.Printf("%-22s %10s %12s %14s\n", "scheme", "overhead", "ckpts", "barrier-ckpts")
	for _, scheme := range schemes {
		ovh, res, _ := harness.Overhead(harness.Spec{
			App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc,
		})
		barr := 0
		for _, ck := range res.St.Checkpoints {
			if ck.Barrier {
				barr++
			}
		}
		fmt.Printf("%-22s %9.2f%% %12d %14d\n", scheme, ovh*100,
			len(res.St.Checkpoints), barr)
	}
	fmt.Println("\nThe barrier optimisation (…_Barr) hides checkpoint writebacks")
	fmt.Println("behind barrier imbalance; delayed writebacks (Rebound) hide them")
	fmt.Println("behind execution. Combining both is not additive (§6.2).")
}
