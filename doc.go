// Package repro is a from-scratch Go reproduction of "Rebound: Scalable
// Checkpointing for Coherent Shared Memory" (Agarwal, Garg, Torrellas;
// ISCA 2011 / UIUC MS thesis 2011).
//
// The repository contains a deterministic manycore simulator with
// directory-based MESI coherence (internal/machine and its substrates),
// the Rebound coordinated local checkpointing scheme and its Global
// (ReVive-style) baseline (internal/core), synthetic SPLASH-2 / PARSEC /
// Apache workload profiles (internal/workload), a fault injector with
// poison-propagation verification (internal/fault), and a harness that
// regenerates every figure and table of the paper's evaluation chapter
// (internal/harness, cmd/figures). The root-level benchmarks in
// bench_test.go map one-to-one onto the paper's figures and tables.
//
// Experiment execution is parallel by default: every (app, procs,
// scheme, scale) cell is an independent simulation, and the harness
// Runner fans cells out across a GOMAXPROCS worker pool with per-Spec
// memoization (harness.Run / harness.RunSerial / harness.RunOne), all
// context-aware so cancelled callers stop cells that have not started.
// Each cell's machine seed is derived purely from its Spec's workload
// identity (harness.DeriveSeed) — never from scheduling order — so
// parallel and serial execution are byte-identical; the determinism
// suite in internal/harness proves this by comparing stats.Snapshot
// serializations across execution modes.
//
// The machine itself is checkpointable — the paper's idea applied to
// the simulator. machine.Snapshot captures a quiescent machine's
// complete mutable state (the event queue is saved as data: pending
// step/drain events carry sim.Tags and are re-bound to their closures
// on restore) and machine.Restore rewinds a live machine to it in
// place, without reallocating; machine.Reset recycles a machine's
// every allocation for a fresh run under a new scheme. On top of
// these, the harness Runner pools whole machines by harness.ReuseKey
// (cells differing only in scheme recycle one machine), and the
// campaign engine warms a machine once per worker and restores it per
// trial. Equivalence is load-bearing and proven: restored, reset and
// freshly-built machines produce byte-identical statistics
// (internal/harness snapshot and reset-reuse suites).
//
// On top of the runner sit the service layers of cmd/reboundd,
// simulation-as-a-service: internal/store is a content-addressed
// on-disk result store (one self-verifying JSON record per Spec,
// addressed by sha256 of the canonical Spec key, fronted by an
// in-memory LRU holding both decoded records and their raw bytes)
// that serves identical requests across process restarts without
// re-simulating; internal/service is the HTTP API — POST /v1/runs,
// POST /v1/sweeps (named figures or explicit spec lists),
// GET /v1/runs/{key} (the stored record bytes served zero-copy, with
// the content address as a permanent ETag), /healthz, /metrics — with
// shared Spec.Validate request validation, singleflight deduplication
// of identical in-flight Specs, a bounded admission queue, and
// graceful shutdown.
//
// The reliability layer is internal/campaign, the Monte Carlo
// fault-campaign engine: it runs thousands of deterministic
// fault-injected trials of one experiment cell (fault placement derived
// from (campaign key, trial index) by campaign.TrialSeed, the fault
// analogue of DeriveSeed) across the runner's worker pool, verifies the
// paper's recovery guarantee on every trial through the fault
// injector's poison verifier, and aggregates MTTR, availability,
// rolled-back work and recovery interaction-set sizes into a
// campaign.Report with confidence intervals — byte-identical across
// both trial executors (build-and-warm reference vs the machine
// snapshot engine, which amortizes the shared warmup across all
// trials) and across serial, parallel and interrupt-then-resume
// executions. Per-trial
// records and reports persist content-addressed through internal/store,
// so campaigns resume instead of restarting; cmd/campaign is the CLI
// and POST/GET /v1/campaigns the asynchronous service surface, with
// progress in /metrics.
//
// Above the service sits the distribution layer, internal/cluster:
// a coordinator/worker cluster that shards sweeps and campaigns across
// machines behind the same public API. The coordinator (reboundd
// -role coordinator) partitions submitted jobs into TTL-leased unit
// ranges; workers (reboundd -role worker -join URL) pull leases
// work-stealing style, warm or load the campaign's shared machine
// snapshot through the coordinator's store proxy (one read on cold
// start), execute on the local runner pool, and push every record back
// through the same content-addressed write path the local engine uses
// — so the stored trials, cells and assembled reports are
// byte-identical no matter which node computed them, and a worker
// killed mid-lease costs only the re-issue of its unpushed units (the
// pushed ones are recognized in the store at lease expiry, never
// re-run). The coordinator runs one in-process worker, so a cluster of
// one node completes every job; internal/retry supplies the capped,
// deterministically-jittered backoff that all cluster transport rides
// on, and cmd/campaign -server submits and polls a campaign against
// either deployment shape.
//
// Closing the loop over all of these is the optimizer layer,
// internal/explore: a frontier search over the scheme space itself.
// An explore.Spec crosses checkpointing schemes (including the
// two-level Rebound_2L hierarchy) with checkpoint intervals and
// machine knobs into a grid of cells, evaluates each cell through the
// campaign engine (availability under fault injection) plus a
// fault-free run (runtime overhead), and reports the Pareto frontier
// of the availability/overhead tradeoff as an explore.FrontierReport.
// The default strategy is successive halving: a cheap seeding rung
// prunes cells another cell beats decisively — overhead is exact at
// any trial count while availability carries Monte Carlo noise, so
// the prune rule demands a decisive margin on one axis without losing
// ground beyond the noise band on the other — and only survivors get
// the full budget, with the spend ledgered against the exhaustive
// grid cost in the report. Every cell evaluation persists in a shared
// content-addressed namespace keyed by its campaign, so explorations
// resume with zero re-evaluation and overlapping spaces share their
// intersection; reports are byte-identical for identical Specs across
// serial, parallel, restarted and clustered execution. cmd/explore is
// the CLI and POST/GET /v1/explore the asynchronous service surface,
// admitted alongside campaigns and routed through the cluster when
// reboundd runs as a coordinator.
//
// See README.md for a quickstart, the runner API — including the
// seed-derivation rule and how to reproduce figures in parallel versus
// serial — and curl examples for the service and campaign endpoints.
package repro
