// Package repro is a from-scratch Go reproduction of "Rebound: Scalable
// Checkpointing for Coherent Shared Memory" (Agarwal, Garg, Torrellas;
// ISCA 2011 / UIUC MS thesis 2011).
//
// The repository contains a deterministic manycore simulator with
// directory-based MESI coherence (internal/machine and its substrates),
// the Rebound coordinated local checkpointing scheme and its Global
// (ReVive-style) baseline (internal/core), synthetic SPLASH-2 / PARSEC /
// Apache workload profiles (internal/workload), a fault injector with
// poison-propagation verification (internal/fault), and a harness that
// regenerates every figure and table of the paper's evaluation chapter
// (internal/harness, cmd/figures). The root-level benchmarks in
// bench_test.go map one-to-one onto the paper's figures and tables.
//
// See README.md for a quickstart, DESIGN.md for the system inventory
// and the paper-to-module mapping, and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
