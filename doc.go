// Package repro is a from-scratch Go reproduction of "Rebound: Scalable
// Checkpointing for Coherent Shared Memory" (Agarwal, Garg, Torrellas;
// ISCA 2011 / UIUC MS thesis 2011).
//
// The repository contains a deterministic manycore simulator with
// directory-based MESI coherence (internal/machine and its substrates),
// the Rebound coordinated local checkpointing scheme and its Global
// (ReVive-style) baseline (internal/core), synthetic SPLASH-2 / PARSEC /
// Apache workload profiles (internal/workload), a fault injector with
// poison-propagation verification (internal/fault), and a harness that
// regenerates every figure and table of the paper's evaluation chapter
// (internal/harness, cmd/figures). The root-level benchmarks in
// bench_test.go map one-to-one onto the paper's figures and tables.
//
// Experiment execution is parallel by default: every (app, procs,
// scheme, scale) cell is an independent simulation, and the harness
// Runner fans cells out across a GOMAXPROCS worker pool with per-Spec
// memoization (harness.Run / harness.RunSerial / harness.RunOne).
// Each cell's machine seed is derived purely from its Spec's workload
// identity (harness.DeriveSeed) — never from scheduling order — so
// parallel and serial execution are byte-identical; the determinism
// suite in internal/harness proves this by comparing stats.Snapshot
// serializations across execution modes.
//
// See README.md for a quickstart and the runner API, including the
// seed-derivation rule and how to reproduce figures in parallel versus
// serial.
package repro
