// Command explore searches the scheme space from the command line: it
// crosses checkpointing schemes with checkpoint intervals and machine
// knobs, evaluates every surviving cell with a fault campaign plus a
// fault-free overhead run, and reports the Pareto frontier of the
// availability/overhead tradeoff.
//
//	go run ./cmd/explore -app FFT -procs 16 -scale quick \
//	    -schemes Rebound,Global_DWB -intervals 20000,40000 -trials 64
//
// The default strategy is successive halving: a cheap seeding rung
// (trials/4 per cell) prunes cells another cell beats decisively, and
// only the survivors get the full budget — the report's ledger shows
// the trials spent against what an exhaustive grid would have cost.
// -strategy grid evaluates every cell at full budget instead. Both
// produce byte-identical FrontierReports for identical specs.
//
// With -store, every cell evaluation and the report persist content-
// addressed: an interrupted exploration resumes from its evaluated
// cells, a finished one is served from disk, and explorations whose
// spaces intersect share the intersection.
//
//	go run ./cmd/explore -schemes Rebound -trials 100 -store ./explore-store
//
// With -server, nothing simulates in this process: the exploration is
// submitted to a running reboundd (single node or cluster coordinator)
// and polled to completion.
//
//	go run ./cmd/explore -server http://coord:8091 -schemes Rebound,Global -json
//
// -json emits the full FrontierReport (the byte-identical exploration
// artifact) on stdout.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		app       = flag.String("app", "FFT", "application profile")
		procs     = flag.Int("procs", 0, "processor count (0 = scale default for the app's suite)")
		scaleArg  = flag.String("scale", "quick", "experiment scale: quick|full")
		schemes   = flag.String("schemes", "Rebound,Global_DWB", "comma-separated schemes to cross")
		intervals = flag.String("intervals", "", "comma-separated checkpoint intervals in cycles (empty = the scale's)")
		wsigbits  = flag.String("wsigbits", "", "comma-separated write-signature widths (empty = machine default)")
		depsets   = flag.String("depsets", "", "comma-separated dependence-set counts (empty = machine default)")
		shards    = flag.String("shards", "", "comma-separated state-partition counts (empty = unsharded)")
		trials    = flag.Int("trials", 64, "full per-cell campaign budget in trials")
		faults    = flag.Int("faults", 2, "transient faults injected per trial")
		window    = flag.Uint64("window", 0, "fault-injection window in cycles (0 = 100xL)")
		detect    = flag.Uint64("detect", 0, "max detection latency in cycles (0 = the scale's L)")
		seed      = flag.Uint64("seed", 1, "exploration seed (folded into every cell's fault placement)")
		strategy  = flag.String("strategy", "", "search strategy: halving (default) | grid")
		storeDir  = flag.String("store", "", "persist cells/report here and resume interrupted explorations")
		workers   = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit the full FrontierReport as JSON on stdout")
		server    = flag.String("server", "", "submit to a running reboundd at this URL instead of simulating locally")
		poll      = flag.Duration("poll", 2*time.Second, "progress poll interval with -server")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scaleArg)
	if err != nil {
		fatalUsage(err)
	}
	ints, err := u64List(*intervals)
	if err != nil {
		fatalUsage(fmt.Errorf("-intervals: %w", err))
	}
	wsig, err := intList(*wsigbits)
	if err != nil {
		fatalUsage(fmt.Errorf("-wsigbits: %w", err))
	}
	deps, err := intList(*depsets)
	if err != nil {
		fatalUsage(fmt.Errorf("-depsets: %w", err))
	}
	shs, err := intList(*shards)
	if err != nil {
		fatalUsage(fmt.Errorf("-shards: %w", err))
	}
	spec := explore.Spec{
		App: *app, Procs: *procs, Scale: sc,
		Schemes: strList(*schemes), Intervals: ints,
		WSIGBits: wsig, DepSets: deps, Shards: shs,
		Trials: *trials, Faults: *faults, Window: *window,
		DetectLatency: *detect, Seed: *seed, Strategy: *strategy,
	}
	if err := spec.Validate(); err != nil {
		fatalUsage(err)
	}
	spec = spec.Normalize()

	var progressMu sync.Mutex
	lastDecile := -1
	progress := func(done, total int) {
		progressMu.Lock()
		defer progressMu.Unlock()
		pct := done * 100 / total
		if decile := pct / 10; decile > lastDecile {
			lastDecile = decile
			fmt.Fprintf(os.Stderr, "explore: %d/%d cell evaluations (%d%%)\n", done, total, pct)
		}
	}

	if *server != "" {
		begin := time.Now()
		rep, err := runRemote(*server, *poll, service.ExploreRequest{
			App: *app, Procs: *procs, Scale: sc.Name,
			Schemes: spec.Schemes, Intervals: spec.Intervals,
			WSIGBits: wsig, DepSets: deps, Shards: shs,
			Trials: *trials, Faults: *faults, Window: *window,
			DetectLatency: *detect, Seed: *seed, Strategy: *strategy,
		}, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			os.Exit(1)
		}
		finish(rep, time.Since(begin), *jsonOut)
		return
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			os.Exit(1)
		}
	}
	ex := explore.NewLocalExplorer(harness.NewRunner(*workers), st)
	ex.OnProgress = progress

	begin := time.Now()
	rep, err := ex.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		os.Exit(1)
	}
	finish(rep, time.Since(begin), *jsonOut)
}

// finish renders the report — identical for local and -server runs.
func finish(rep *explore.FrontierReport, elapsed time.Duration, jsonOut bool) {
	if jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	printSummary(rep, elapsed)
}

// runRemote submits the exploration to a reboundd server and polls it
// to completion, retrying transport hiccups under capped exponential
// backoff. A brief server restart costs a bounded wait, not the run:
// the server resumes the exploration from its persisted cells on the
// next POST.
func runRemote(base string, poll time.Duration, req service.ExploreRequest,
	progress func(done, total int)) (*explore.FrontierReport, error) {
	base = strings.TrimSuffix(base, "/")
	policy := retry.Policy{Attempts: 10, Jitter: 0.5, Seed: req.Seed}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	submit := func() (service.ExploreResponse, error) {
		var er service.ExploreResponse
		err := policy.Do(context.Background(), func() error {
			resp, err := http.Post(base+"/v1/explore", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				return fmt.Errorf("POST /v1/explore: %s: %s", resp.Status, bytes.TrimSpace(b))
			}
			return json.NewDecoder(resp.Body).Decode(&er)
		})
		return er, err
	}
	get := func(key string) (service.ExploreResponse, error) {
		var er service.ExploreResponse
		err := policy.Do(context.Background(), func() error {
			resp, err := http.Get(base + "/v1/explore/" + key)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				return fmt.Errorf("GET /v1/explore/%s: %s: %s", key, resp.Status, bytes.TrimSpace(b))
			}
			return json.NewDecoder(resp.Body).Decode(&er)
		})
		return er, err
	}

	er, err := submit()
	if err != nil {
		return nil, err
	}
	key := er.Key
	for {
		switch er.Status {
		case "done":
			if er.Report != nil {
				progress(er.Total, er.Total)
				return er.Report, nil
			}
			// Progress races report persistence on the server; fetch
			// once more for the full body.
		case "failed":
			return nil, fmt.Errorf("exploration %s failed on the server: %s", key, er.Error)
		}
		if er.Total > 0 {
			progress(er.Done, er.Total)
		}
		time.Sleep(poll)
		if er, err = get(key); err != nil {
			return nil, err
		}
	}
}

func printSummary(rep *explore.FrontierReport, elapsed time.Duration) {
	s := rep.Spec
	onFrontier := make(map[int]bool, len(rep.Frontier))
	for _, idx := range rep.Frontier {
		onFrontier[idx] = true
	}
	fmt.Printf("Exploration %s\n", rep.Key)
	fmt.Printf("  space:      %d schemes x %d intervals -> %d cells (%s x%d, %s scale, strategy %s)\n",
		len(s.Schemes), len(s.Intervals), len(s.Cells()), s.App, s.Procs, s.Scale.Name, s.Strategy)
	fmt.Printf("  budget:     %d trials spent of %d an exhaustive grid would cost (%d%%)\n",
		rep.TrialsSpent, rep.GridTrials, rep.TrialsSpent*100/rep.GridTrials)
	for _, r := range rep.Rungs {
		fmt.Printf("    rung:     %d cells x %d trials = %d\n", r.Cells, r.Trials, r.TrialsSpent)
	}
	fmt.Printf("  frontier:   %d dominant cells, %d dominated\n", len(rep.Frontier), rep.Dominated)
	fmt.Printf("  %-44s %12s %10s %10s\n", "cell", "availability", "overhead", "mttr(ms)")
	for i, cr := range rep.Cells {
		marker := " "
		if onFrontier[i] {
			marker = "*"
		}
		fmt.Printf("  %s %-42s %12.6f %9.2f%% %10.4f\n",
			marker, cr.Cell.Label(), cr.Availability, cr.Overhead*100, cr.MTTRms)
	}
	fmt.Printf("  wall clock: %s\n", elapsed.Round(time.Millisecond))
}

// strList splits a comma-separated flag, dropping empty elements.
func strList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func u64List(s string) ([]uint64, error) {
	var out []uint64
	for _, p := range strList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func intList(s string) ([]int, error) {
	var out []int
	for _, p := range strList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "explore: %v\n", err)
	fmt.Fprintf(os.Stderr, "valid apps:    %s\n", strings.Join(harness.AppNames(), " "))
	fmt.Fprintf(os.Stderr, "valid schemes: %s\n", strings.Join(harness.SchemeNames(), " "))
	os.Exit(2)
}
