// Command campaign runs a Monte Carlo fault-injection campaign from the
// command line: many deterministic fault-injected trials of one
// experiment cell, aggregated into MTTR / availability / rolled-back
// work statistics with confidence intervals, with the poison verifier's
// verdict checked on every trial.
//
//	go run ./cmd/campaign -app FFT -procs 16 -scheme Rebound \
//	    -scale quick -trials 200 -faults 2
//
// With -store, per-trial records and the report persist content-
// addressed under the campaign key: an interrupted campaign resumes
// from its completed trials, and a finished one is served from disk.
//
//	go run ./cmd/campaign -app Ocean -trials 1000 -store ./campaign-store
//
// The exit status is 0 only when every trial passed verification
// (the paper's recovery guarantee, §3.2/Appendix A); -json emits the
// full Report (the byte-identical campaign artifact) on stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/store"
)

func main() {
	var (
		app      = flag.String("app", "FFT", "application profile")
		procs    = flag.Int("procs", 0, "processor count (0 = scale default for the app's suite)")
		scheme   = flag.String("scheme", "Rebound", "checkpointing scheme")
		scaleArg = flag.String("scale", "quick", "experiment scale: quick|full")
		trials   = flag.Int("trials", 200, "number of Monte Carlo trials")
		faults   = flag.Int("faults", 2, "transient faults injected per trial")
		window   = flag.Uint64("window", 0, "fault-injection window in cycles (0 = 100xL)")
		detect   = flag.Uint64("detect", 0, "max detection latency in cycles (0 = the scale's L)")
		seed     = flag.Uint64("seed", 1, "campaign seed (folded into every trial's fault seed)")
		storeDir = flag.String("store", "", "persist trials/report here and resume interrupted campaigns")
		workers  = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		serial   = flag.Bool("serial", false, "run trials serially (byte-identical to parallel)")
		jsonOut  = flag.Bool("json", false, "emit the full campaign Report as JSON on stdout")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scaleArg)
	if err != nil {
		fatalUsage(err)
	}
	np := *procs
	if np == 0 {
		np = harness.DefaultProcs(sc, *app)
	}
	spec := campaign.Spec{
		Base:          harness.Spec{App: *app, Procs: np, Scheme: *scheme, Scale: sc},
		Trials:        *trials,
		Faults:        *faults,
		Window:        *window,
		DetectLatency: *detect,
		Seed:          *seed,
	}
	if err := spec.Validate(); err != nil {
		fatalUsage(err)
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
	}
	width := *workers
	if *serial {
		width = 1
	}
	eng := campaign.New(harness.NewRunner(width), st)
	// OnProgress is called from worker goroutines; guard the decile
	// tracker.
	var progressMu sync.Mutex
	lastDecile := -1
	eng.OnProgress = func(done, total int) {
		progressMu.Lock()
		defer progressMu.Unlock()
		pct := done * 100 / total
		if decile := pct / 10; decile > lastDecile {
			lastDecile = decile
			fmt.Fprintf(os.Stderr, "campaign: %d/%d trials (%d%%)\n", done, total, pct)
		}
	}

	begin := time.Now()
	var rep *campaign.Report
	if *serial {
		rep, err = eng.RunSerial(context.Background(), spec)
	} else {
		rep, err = eng.Run(context.Background(), spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(begin)

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		printSummary(rep, elapsed)
	}
	if rep.VerifiedOK != rep.Trials {
		fmt.Fprintf(os.Stderr, "campaign: VERIFICATION FAILED on %d/%d trials\n",
			rep.Trials-rep.VerifiedOK, rep.Trials)
		os.Exit(1)
	}
}

func printSummary(rep *campaign.Report, elapsed time.Duration) {
	s := rep.Spec
	fmt.Printf("Campaign %s\n", rep.Key)
	fmt.Printf("  cell:          %s x%d under %s (%s scale)\n",
		s.Base.App, s.Base.Procs, s.Base.Scheme, s.Base.Scale.Name)
	fmt.Printf("  fault grid:    %d trials x %d faults, window=%d, detect<=%d, seed=%d\n",
		s.Trials, s.Faults, s.Window, s.DetectLatency, s.Seed)
	fmt.Printf("  verified:      %d/%d trials passed the poison verifier\n",
		rep.VerifiedOK, rep.Trials)
	fmt.Printf("  faults:        %d injected, %d detected, %d rollbacks\n",
		rep.FaultsInjected, rep.FaultsDetected, rep.Rollbacks)
	fmt.Printf("  recovery:      mean %.0f cycles (+-%.0f @95%%), p95 %.0f, max %.0f\n",
		rep.Recovery.Mean, rep.Recovery.CI95, rep.Recovery.P95, rep.Recovery.Max)
	fmt.Printf("  MTTR:          %.4f ms at 1 GHz\n", rep.MTTRms)
	fmt.Printf("  IREC size:     mean %.2f procs (+-%.2f @95%%), p95 %.0f\n",
		rep.IREC.Mean, rep.IREC.CI95, rep.IREC.P95)
	fmt.Printf("  wasted work:   mean %.0f proc-cycles/trial (+-%.0f @95%%), %.4f%% of all work\n",
		rep.Wasted.Mean, rep.Wasted.CI95, rep.WastedWorkFrac*100)
	fmt.Printf("  availability:  %.6f\n", rep.Availability)
	fmt.Printf("  wall clock:    %s\n", elapsed.Round(time.Millisecond))
}

func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	fmt.Fprintf(os.Stderr, "valid apps:    %s\n", strings.Join(harness.AppNames(), " "))
	fmt.Fprintf(os.Stderr, "valid schemes: %s\n", strings.Join(harness.SchemeNames(), " "))
	os.Exit(2)
}
