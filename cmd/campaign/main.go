// Command campaign runs a Monte Carlo fault-injection campaign from the
// command line: many deterministic fault-injected trials of one
// experiment cell, aggregated into MTTR / availability / rolled-back
// work statistics with confidence intervals, with the poison verifier's
// verdict checked on every trial.
//
//	go run ./cmd/campaign -app FFT -procs 16 -scheme Rebound \
//	    -scale quick -trials 200 -faults 2
//
// With -store, per-trial records and the report persist content-
// addressed under the campaign key: an interrupted campaign resumes
// from its completed trials, and a finished one is served from disk.
//
//	go run ./cmd/campaign -app Ocean -trials 1000 -store ./campaign-store
//
// With -server, nothing simulates in this process: the campaign is
// submitted to a running reboundd (single node or cluster coordinator —
// same API either way) and polled to completion, with transport
// hiccups retried under capped exponential backoff. Progress, output
// and exit codes are identical to a local run; on a coordinator the
// trials shard across the worker fleet and the fetched Report is
// byte-identical to one computed locally.
//
//	go run ./cmd/campaign -server http://coord:8091 -trials 1000 -json
//
// The exit status is 0 only when every trial passed verification
// (the paper's recovery guarantee, §3.2/Appendix A); -json emits the
// full Report (the byte-identical campaign artifact) on stdout.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		app      = flag.String("app", "FFT", "application profile")
		procs    = flag.Int("procs", 0, "processor count (0 = scale default for the app's suite)")
		scheme   = flag.String("scheme", "Rebound", "checkpointing scheme")
		scaleArg = flag.String("scale", "quick", "experiment scale: quick|full")
		trials   = flag.Int("trials", 200, "number of Monte Carlo trials")
		faults   = flag.Int("faults", 2, "transient faults injected per trial")
		window   = flag.Uint64("window", 0, "fault-injection window in cycles (0 = 100xL)")
		detect   = flag.Uint64("detect", 0, "max detection latency in cycles (0 = the scale's L)")
		seed     = flag.Uint64("seed", 1, "campaign seed (folded into every trial's fault seed)")
		storeDir = flag.String("store", "", "persist trials/report here and resume interrupted campaigns")
		workers  = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "machine state-partition count (power of two; 0/1 = unsharded; results are identical)")
		serial   = flag.Bool("serial", false, "run trials serially (byte-identical to parallel)")
		jsonOut  = flag.Bool("json", false, "emit the full campaign Report as JSON on stdout")
		server   = flag.String("server", "", "submit to a running reboundd at this URL instead of simulating locally")
		poll     = flag.Duration("poll", 2*time.Second, "progress poll interval with -server")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scaleArg)
	if err != nil {
		fatalUsage(err)
	}
	np := *procs
	if np == 0 {
		np = harness.DefaultProcs(sc, *app)
	}
	spec := campaign.Spec{
		Base:          harness.Spec{App: *app, Procs: np, Scheme: *scheme, Scale: sc, Shards: *shards},
		Trials:        *trials,
		Faults:        *faults,
		Window:        *window,
		DetectLatency: *detect,
		Seed:          *seed,
	}
	if err := spec.Validate(); err != nil {
		fatalUsage(err)
	}

	// OnProgress is called from worker goroutines (or the poll loop);
	// guard the decile tracker.
	var progressMu sync.Mutex
	lastDecile := -1
	progress := func(done, total int) {
		progressMu.Lock()
		defer progressMu.Unlock()
		pct := done * 100 / total
		if decile := pct / 10; decile > lastDecile {
			lastDecile = decile
			fmt.Fprintf(os.Stderr, "campaign: %d/%d trials (%d%%)\n", done, total, pct)
		}
	}

	if *server != "" {
		begin := time.Now()
		rep, err := runRemote(*server, *poll, service.CampaignRequest{
			RunRequest: service.RunRequest{App: *app, Procs: np, Scheme: *scheme, Scale: sc.Name, Shards: *shards},
			Trials:     *trials, Faults: *faults, Window: *window,
			DetectLatency: *detect, Seed: *seed,
		}, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		finish(rep, time.Since(begin), *jsonOut)
		return
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
	}
	width := *workers
	if *serial {
		width = 1
	}
	eng := campaign.New(harness.NewRunner(width), st)
	eng.OnProgress = progress

	begin := time.Now()
	var rep *campaign.Report
	if *serial {
		rep, err = eng.RunSerial(context.Background(), spec)
	} else {
		rep, err = eng.Run(context.Background(), spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	finish(rep, time.Since(begin), *jsonOut)
}

// finish renders the report and exits non-zero when verification
// failed — identical for local and -server runs.
func finish(rep *campaign.Report, elapsed time.Duration, jsonOut bool) {
	if jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		printSummary(rep, elapsed)
	}
	if rep.VerifiedOK != rep.Trials {
		fmt.Fprintf(os.Stderr, "campaign: VERIFICATION FAILED on %d/%d trials\n",
			rep.Trials-rep.VerifiedOK, rep.Trials)
		os.Exit(1)
	}
}

// runRemote submits the campaign to a reboundd server and polls it to
// completion. Every transport operation retries under capped
// exponential backoff (the retry helper), so a brief server restart
// mid-campaign costs a bounded wait, not the run: the server resumes
// the campaign from its persisted trials on the next POST.
func runRemote(base string, poll time.Duration, req service.CampaignRequest,
	progress func(done, total int)) (*campaign.Report, error) {
	base = strings.TrimSuffix(base, "/")
	policy := retry.Policy{Attempts: 10, Jitter: 0.5, Seed: req.Seed}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	submit := func() (service.CampaignResponse, error) {
		var cr service.CampaignResponse
		err := policy.Do(context.Background(), func() error {
			resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				return fmt.Errorf("POST /v1/campaigns: %s: %s", resp.Status, bytes.TrimSpace(b))
			}
			return json.NewDecoder(resp.Body).Decode(&cr)
		})
		return cr, err
	}
	get := func(key string) (service.CampaignResponse, error) {
		var cr service.CampaignResponse
		err := policy.Do(context.Background(), func() error {
			resp, err := http.Get(base + "/v1/campaigns/" + key)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				return fmt.Errorf("GET /v1/campaigns/%s: %s: %s", key, resp.Status, bytes.TrimSpace(b))
			}
			return json.NewDecoder(resp.Body).Decode(&cr)
		})
		return cr, err
	}

	cr, err := submit()
	if err != nil {
		return nil, err
	}
	key := cr.Key
	for {
		switch cr.Status {
		case "done":
			if cr.Report == nil {
				// Progress races report persistence on the server; fetch
				// once more for the full body.
				break
			}
			progress(cr.Total, cr.Total)
			return cr.Report, nil
		case "failed":
			return nil, fmt.Errorf("campaign %s failed on the server: %s", key, cr.Error)
		}
		if cr.Total > 0 {
			progress(cr.Done, cr.Total)
		}
		time.Sleep(poll)
		if cr, err = get(key); err != nil {
			return nil, err
		}
	}
}

func printSummary(rep *campaign.Report, elapsed time.Duration) {
	s := rep.Spec
	fmt.Printf("Campaign %s\n", rep.Key)
	fmt.Printf("  cell:          %s x%d under %s (%s scale)\n",
		s.Base.App, s.Base.Procs, s.Base.Scheme, s.Base.Scale.Name)
	fmt.Printf("  fault grid:    %d trials x %d faults, window=%d, detect<=%d, seed=%d\n",
		s.Trials, s.Faults, s.Window, s.DetectLatency, s.Seed)
	fmt.Printf("  verified:      %d/%d trials passed the poison verifier\n",
		rep.VerifiedOK, rep.Trials)
	fmt.Printf("  faults:        %d injected, %d detected, %d rollbacks\n",
		rep.FaultsInjected, rep.FaultsDetected, rep.Rollbacks)
	fmt.Printf("  recovery:      mean %.0f cycles (+-%.0f @95%%), p95 %.0f, max %.0f\n",
		rep.Recovery.Mean, rep.Recovery.CI95, rep.Recovery.P95, rep.Recovery.Max)
	fmt.Printf("  MTTR:          %.4f ms at 1 GHz\n", rep.MTTRms)
	fmt.Printf("  IREC size:     mean %.2f procs (+-%.2f @95%%), p95 %.0f\n",
		rep.IREC.Mean, rep.IREC.CI95, rep.IREC.P95)
	fmt.Printf("  wasted work:   mean %.0f proc-cycles/trial (+-%.0f @95%%), %.4f%% of all work\n",
		rep.Wasted.Mean, rep.Wasted.CI95, rep.WastedWorkFrac*100)
	fmt.Printf("  availability:  %.6f\n", rep.Availability)
	fmt.Printf("  wall clock:    %s\n", elapsed.Round(time.Millisecond))
}

func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	fmt.Fprintf(os.Stderr, "valid apps:    %s\n", strings.Join(harness.AppNames(), " "))
	fmt.Fprintf(os.Stderr, "valid schemes: %s\n", strings.Join(harness.SchemeNames(), " "))
	os.Exit(2)
}
