// Command reboundd serves the Rebound experiment harness over HTTP:
// simulation-as-a-service. It accepts single-Spec runs and whole-figure
// sweeps, schedules them on the parallel in-process runner behind a
// bounded admission queue, and persists every result in a content-
// addressed on-disk store, so identical requests — including after a
// restart — are answered without re-simulating.
//
// Fault campaigns (/v1/campaigns) persist more than their results: the
// warmed machine snapshot every trial forks from is serialized into
// the store's "snapshots" namespace. A restarted daemon therefore
// cold-starts a resumed campaign with ONE store read — no build, no
// re-warm — and the restored trials are byte-identical to the warmed
// path (the snapshot record is self-verifying; a corrupt one is
// re-warmed and overwritten, never restored).
//
//	reboundd -scale quick                      # serve on :8091
//	reboundd -addr :9000 -store /var/lib/rebound -workers 8
//
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/runs \
//	     -d '{"app":"FFT","procs":16,"scheme":"Rebound"}'
//	curl -s -X POST localhost:8091/v1/sweeps -d '{"figure":"fig6.2"}'
//	curl -s localhost:8091/v1/runs/<key>       # key from a previous answer
//	curl -s localhost:8091/metrics
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// finish (bounded by -drain), new ones are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "listen address")
		storeDir   = flag.String("store", "reboundd-store", "result store directory")
		workers    = flag.Int("workers", 0, "runner worker-pool size (0 = GOMAXPROCS)")
		scaleName  = flag.String("scale", "full", "default experiment scale: quick|full")
		queueDepth = flag.Int("queue", 64, "max jobs waiting for a worker before 503")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}
	st, err := store.Open(*storeDir, 0)
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}
	runner := harness.NewRunner(*workers)
	svc, err := service.New(service.Config{
		Runner:     runner,
		Store:      st,
		Scale:      sc,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("reboundd: serving on %s (scale=%s workers=%d store=%s, %d stored results)",
		*addr, sc.Name, runner.Workers(), *storeDir, st.Len())

	select {
	case err := <-errc:
		log.Fatalf("reboundd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("reboundd: shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("reboundd: forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("reboundd: %v", err)
	}
	fmt.Println("reboundd: bye")
}
