// Command reboundd serves the Rebound experiment harness over HTTP:
// simulation-as-a-service. It accepts single-Spec runs and whole-figure
// sweeps, schedules them on the parallel in-process runner behind a
// bounded admission queue, and persists every result in a content-
// addressed on-disk store, so identical requests — including after a
// restart — are answered without re-simulating.
//
// Fault campaigns (/v1/campaigns) persist more than their results: the
// warmed machine snapshot every trial forks from is serialized into
// the store's "snapshots" namespace. A restarted daemon therefore
// cold-starts a resumed campaign with ONE store read — no build, no
// re-warm — and the restored trials are byte-identical to the warmed
// path (the snapshot record is self-verifying; a corrupt one is
// re-warmed and overwritten, never restored).
//
//	reboundd -scale quick                      # serve on :8091
//	reboundd -addr :9000 -store /var/lib/rebound -workers 8
//
//	curl -s localhost:8091/healthz
//	curl -s -X POST localhost:8091/v1/runs \
//	     -d '{"app":"FFT","procs":16,"scheme":"Rebound"}'
//	curl -s -X POST localhost:8091/v1/sweeps -d '{"figure":"fig6.2"}'
//	curl -s localhost:8091/v1/runs/<key>       # key from a previous answer
//	curl -s localhost:8091/metrics
//
// Distributed mode shards sweeps and campaigns across machines with
// the same public API:
//
//	reboundd -role coordinator -addr :8091 -store /shared/rebound
//	reboundd -role worker -join http://coord:8091 -addr :8092
//
// The coordinator partitions submitted work into TTL-leased index
// ranges; workers pull leases work-stealing style, warm (or load) the
// shared machine snapshot through the coordinator's store proxy, and
// push every trial/cell record back through it — so the records and
// the final report on the coordinator's disk are byte-identical to a
// single-node run. The coordinator runs one in-process worker, so it
// makes progress with zero remote workers; -role single (the default)
// is the classic one-node daemon.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// finish (bounded by -drain), new ones are refused. A worker drains by
// finishing its current lease and reporting it; anything it cannot
// report is re-issued by the coordinator at lease expiry and the
// already-pushed records are recognized, never re-run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "listen address")
		storeDir   = flag.String("store", "reboundd-store", "result store directory")
		workers    = flag.Int("workers", 0, "runner worker-pool size (0 = GOMAXPROCS)")
		scaleName  = flag.String("scale", "full", "default experiment scale: quick|full")
		queueDepth = flag.Int("queue", 64, "max jobs waiting for a worker before 503")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		role       = flag.String("role", "single", "cluster role: single|coordinator|worker")
		join       = flag.String("join", "", "coordinator URL to join (role worker)")
		name       = flag.String("name", "", "worker label (role worker; default hostname)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "cluster lease TTL (role coordinator; 0 = 15s)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address, e.g. 127.0.0.1:6060 (empty = off)")
	)
	flag.Parse()

	startPprof(*pprofAddr)

	switch *role {
	case "worker":
		os.Exit(runWorker(*addr, *join, *name, *workers, *drain))
	case "single", "coordinator":
	default:
		log.Fatalf("reboundd: unknown role %q (want single, coordinator or worker)", *role)
	}

	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}
	st, err := store.Open(*storeDir, 0)
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}
	runner := harness.NewRunner(*workers)
	svc, err := service.New(service.Config{
		Runner:     runner,
		Store:      st,
		Scale:      sc,
		QueueDepth: *queueDepth,
		Role:       *role,
		LeaseTTL:   *leaseTTL,
	})
	if err != nil {
		log.Fatalf("reboundd: %v", err)
	}
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("reboundd: serving on %s (role=%s scale=%s workers=%d store=%s, %d stored results)",
		*addr, *role, sc.Name, runner.Workers(), *storeDir, st.Len())

	select {
	case err := <-errc:
		log.Fatalf("reboundd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("reboundd: shutting down (drain %s)", *drain)
	if *role == "coordinator" {
		// Finish the in-process worker's current lease before refusing
		// requests: pushed records persist, so nothing is lost either way.
		svc.DrainCluster()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("reboundd: forced shutdown: %v", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("reboundd: %v", err)
	}
	fmt.Println("reboundd: bye")
}

// startPprof serves the net/http/pprof handlers on their own mux at
// addr (any role; no-op when addr is empty, the default). The explicit
// mux keeps the profiling endpoints off the public API listener — bind
// a loopback address unless the network is trusted — and avoids the
// DefaultServeMux side-effect registration of a blank import.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		log.Printf("reboundd: pprof on http://%s/debug/pprof/", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("reboundd: pprof server: %v", err)
		}
	}()
}

// runWorker runs the worker role: join the coordinator, pull leases
// until signalled, serve a minimal /healthz + /metrics for probes.
// SIGINT/SIGTERM drains gracefully — the current lease completes and
// reports — and the drain timeout bounds how long that may take before
// a hard stop (whose pushed records the coordinator still recognizes).
func runWorker(addr, join, name string, workers int, drain time.Duration) int {
	if join == "" {
		log.Printf("reboundd: role worker requires -join <coordinator URL>")
		return 2
	}
	if name == "" {
		if host, err := os.Hostname(); err == nil {
			name = host
		} else {
			name = "worker"
		}
	}
	// Seed retries from the worker name so a fleet restarting together
	// spreads its backoff instead of thundering back in lockstep.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", name, os.Getpid())
	policy := retry.Policy{Attempts: 12, Jitter: 0.5, Seed: h.Sum64()}

	runner := harness.NewRunner(workers)
	tier := cluster.NewRemoteStore(join, nil, policy)
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Proto:  cluster.NewHTTPProtocol(join, nil, policy),
		Runner: runner,
		Tier:   tier,
		Name:   name,
		Logf:   log.Printf,
	})
	if err != nil {
		log.Printf("reboundd: %v", err)
		return 2
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"status": "ok", "role": "worker", "coordinator": %q, "worker_id": %q}`+"\n",
			join, w.ID())
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
		trials, cells, leases := w.Stats()
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"role": "worker", "trials_done": %d, "cells_done": %d, `+
			`"leases_done": %d, "snapshot_reads": %d}`+"\n",
			trials, cells, leases, tier.SnapshotReads())
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("reboundd: probe server: %v", err)
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigCtx.Done()
		if runCtx.Err() != nil {
			return // worker already finished on its own
		}
		log.Printf("reboundd: draining (current lease finishes, bounded by %s)", drain)
		w.Drain()
		select {
		case <-time.After(drain):
			cancel() // hard stop; the lease expires and is re-issued
		case <-runCtx.Done():
		}
	}()

	log.Printf("reboundd: worker %s joining %s (probes on %s)", name, join, addr)
	err = w.Run(runCtx)
	cancel()
	srv.Close()
	trials, cells, leases := w.Stats()
	log.Printf("reboundd: worker done: %d trials, %d cells, %d leases, %d snapshot reads",
		trials, cells, leases, tier.SnapshotReads())
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("reboundd: %v", err)
		return 1
	}
	return 0
}
