// Command benchhot measures the simulator's hot-path benchmarks
// (internal/benchhot) and maintains BENCH_hotpath.json, the repo's
// machine-readable performance trajectory.
//
// Record a measurement under a label (merging into an existing file):
//
//	go run ./cmd/benchhot -label post-refactor -out BENCH_hotpath.json
//
// Gate a change against the committed trajectory (CI): re-measure and
// fail when any benchmark's ops/sec drops more than -max-regress below
// the baseline entry of the given label:
//
//	go run ./cmd/benchhot -check -baseline BENCH_hotpath.json \
//	    -baseline-label post-refactor -max-regress 0.20 -out bench_current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/benchhot"
)

// Entry is one benchmark measurement in BENCH_hotpath.json.
type Entry struct {
	// Name identifies the benchmark; Label identifies the code state
	// measured (e.g. "baseline-pre-refactor", "post-refactor").
	Name        string  `json:"name"`
	Label       string  `json:"label"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Date        string  `json:"date"`
}

var benches = []struct {
	name string
	fn   func(*testing.B)
}{
	{"SingleCell", benchhot.SingleCell},
	{"Fig62Sweep", benchhot.Fig62Sweep},
	{"ServicePath", benchhot.ServicePath},
	{"CampaignTrial", benchhot.CampaignTrial},
}

func measure(label, filter string) []Entry {
	now := time.Now().UTC().Format("2006-01-02")
	var out []Entry
	for _, bm := range benches {
		if filter != "" && !strings.Contains(bm.name, filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchhot: running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		ns := float64(r.NsPerOp())
		if ns <= 0 {
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		e := Entry{
			Name: bm.name, Label: label,
			OpsPerSec:   1e9 / ns,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Date:        now,
		}
		fmt.Fprintf(os.Stderr, "benchhot: %-12s %12.0f ops/sec  %10.1f ns/op  %d allocs/op\n",
			e.Name, e.OpsPerSec, e.NsPerOp, e.AllocsPerOp)
		out = append(out, e)
	}
	return out
}

func load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Entry
	if len(data) == 0 {
		return nil, nil
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// merge replaces same (name, label) entries and keeps everything else,
// sorted by label then name for stable diffs.
func merge(old, fresh []Entry) []Entry {
	replaced := make(map[string]bool, len(fresh))
	for _, e := range fresh {
		replaced[e.Name+"|"+e.Label] = true
	}
	var out []Entry
	for _, e := range old {
		if !replaced[e.Name+"|"+e.Label] {
			out = append(out, e)
		}
	}
	out = append(out, fresh...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func save(path string, entries []Entry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check compares fresh measurements against the baseline entries
// carrying baseLabel. Two gates: ops/sec must not drop beyond
// maxRegress (hardware-sensitive — the committed baseline was recorded
// on one machine, so this catches gross regressions), and allocs/op
// must not exceed the baseline by more than 25% (machine-independent —
// in particular, a SingleCell baseline of 0 allocs/op means any new
// per-op allocation fails).
func check(fresh, baseline []Entry, baseLabel string, maxRegress float64) error {
	base := make(map[string]Entry)
	for _, e := range baseline {
		if e.Label == baseLabel {
			base[e.Name] = e
		}
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline has no entries labelled %q", baseLabel)
	}
	var failed bool
	for _, e := range fresh {
		b, ok := base[e.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchhot: %s: no %q baseline entry, skipping gate\n", e.Name, baseLabel)
			continue
		}
		floor := b.OpsPerSec * (1 - maxRegress)
		ratio := e.OpsPerSec / b.OpsPerSec
		status := "ok"
		if e.OpsPerSec < floor {
			status = "REGRESSION"
			failed = true
		}
		allocLimit := b.AllocsPerOp + b.AllocsPerOp/4
		if e.AllocsPerOp > allocLimit {
			status = "ALLOC REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"benchhot: gate %-12s %12.0f vs baseline %12.0f ops/sec (%.2fx, floor %.0f), %d vs %d allocs/op (limit %d): %s\n",
			e.Name, e.OpsPerSec, b.OpsPerSec, ratio, floor, e.AllocsPerOp, b.AllocsPerOp, allocLimit, status)
	}
	if failed {
		return fmt.Errorf("regression beyond gate (ops/sec -%.0f%% or allocs/op +25%%)", maxRegress*100)
	}
	return nil
}

func main() {
	var (
		label      = flag.String("label", "current", "label to record measurements under")
		out        = flag.String("out", "", "JSON file to merge measurements into")
		doCheck    = flag.Bool("check", false, "gate against a baseline file")
		benchArg   = flag.String("bench", "", "measure only benchmarks whose name contains this substring")
		baseline   = flag.String("baseline", "BENCH_hotpath.json", "baseline file for -check")
		baseLabel  = flag.String("baseline-label", "post-refactor", "baseline label to gate against")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed ops/sec drop for -check")
	)
	flag.Parse()

	fresh := measure(*label, *benchArg)
	if len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "benchhot: no benchmark matches -bench %q\n", *benchArg)
		os.Exit(1)
	}

	// The trajectory is written (emit, below) only after the gate ran:
	// the best-of-two retry may replace noisy first samples, and the
	// recorded numbers must be the ones that were actually judged.
	emit := func() {
		if *out != "" {
			old, err := load(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
				os.Exit(1)
			}
			if err := save(*out, merge(old, fresh)); err != nil {
				fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchhot: wrote %s\n", *out)
		} else {
			data, _ := json.MarshalIndent(fresh, "", "  ")
			fmt.Println(string(data))
		}
	}

	if *doCheck {
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
			os.Exit(1)
		}
		err = check(fresh, base, *baseLabel, *maxRegress)
		if err != nil {
			// Best-of-two: a single testing.Benchmark sample on a noisy
			// shared runner can dip below the floor without any code
			// change. Re-measure once and keep, per benchmark, the
			// faster sample whole — except allocs/op, which is gated on
			// the WORSE of the two samples: the retry forgives only
			// throughput noise, never an allocation regression.
			fmt.Fprintf(os.Stderr, "benchhot: first sample failed (%v); re-measuring once\n", err)
			second := measure(*label, *benchArg)
			for i := range fresh {
				worstAllocs := fresh[i].AllocsPerOp
				if second[i].AllocsPerOp > worstAllocs {
					worstAllocs = second[i].AllocsPerOp
				}
				if second[i].OpsPerSec > fresh[i].OpsPerSec {
					fresh[i] = second[i]
				}
				fresh[i].AllocsPerOp = worstAllocs
			}
			err = check(fresh, base, *baseLabel, *maxRegress)
		}
		if err != nil {
			emit() // record the failing numbers too: red runs are data
			fmt.Fprintf(os.Stderr, "benchhot: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchhot: gate passed")
	}
	emit()
}
