// Command benchhot measures the simulator's hot-path benchmarks
// (internal/benchhot) and maintains BENCH_hotpath.json, the repo's
// machine-readable performance trajectory.
//
// Record a measurement under a label (merging into an existing file):
//
//	go run ./cmd/benchhot -label post-refactor -out BENCH_hotpath.json
//
// Gate a change against the committed trajectory (CI): re-measure and
// fail when any benchmark's ops/sec drops more than -max-regress below
// the BEST prior entry for its (name, gomaxprocs), across all labels —
// the trajectory is a ratchet, not a pointer to the newest label:
//
//	go run ./cmd/benchhot -check -baseline BENCH_hotpath.json \
//	    -max-regress 0.20 -out bench_current.json
//
// -check also enforces the parallel-scaling gate: on a runner with at
// least 4 cores, CampaignTrialParallel must reach 2x CampaignTrial's
// throughput in the same run without exceeding its allocs/op (the
// fork-engine contract; see internal/campaign.TrialRunner). Narrower
// runners warn and skip — they cannot express the requirement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/benchhot"
)

// Entry is one benchmark measurement in BENCH_hotpath.json.
type Entry struct {
	// Name identifies the benchmark; Label identifies the code state
	// measured (e.g. "baseline-pre-refactor", "post-refactor").
	Name        string  `json:"name"`
	Label       string  `json:"label"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Date        string  `json:"date"`
}

var benches = []struct {
	name string
	fn   func(*testing.B)
	// parallel marks benchmarks that run at GOMAXPROCS=NumCPU (the
	// body sets it itself); their entries record that width so the
	// gate compares like with like.
	parallel bool
}{
	{"SingleCell", benchhot.SingleCell, false},
	{"Fig62Sweep", benchhot.Fig62Sweep, false},
	{"ServicePath", benchhot.ServicePath, false},
	{"CampaignTrial", benchhot.CampaignTrial, false},
	{"CampaignTrialParallel", benchhot.CampaignTrialParallel, true},
	{"ShardedSingleCell", benchhot.ShardedSingleCell, false},
	{"ShardedSingleCellParallel", benchhot.ShardedSingleCellParallel, true},
	{"ShardedRun", benchhot.ShardedRun, false},
	{"ShardedRunParallel", benchhot.ShardedRunParallel, true},
	{"Fig62SweepSharded", benchhot.Fig62SweepSharded, false},
}

// parseBenchFilter splits -bench into comma-separated substring terms
// and validates each against the registry: a term matching no
// registered benchmark is an error, not a silent no-op — a typo in a
// CI invocation must fail the job rather than quietly gate nothing.
func parseBenchFilter(arg string) ([]string, error) {
	if arg == "" {
		return nil, nil
	}
	var terms []string
	for _, t := range strings.Split(arg, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		matched := false
		for _, bm := range benches {
			if strings.Contains(bm.name, t) {
				matched = true
				break
			}
		}
		if !matched {
			var names []string
			for _, bm := range benches {
				names = append(names, bm.name)
			}
			return nil, fmt.Errorf("-bench term %q matches no registered benchmark (have: %s)",
				t, strings.Join(names, " "))
		}
		terms = append(terms, t)
	}
	return terms, nil
}

func selected(name string, terms []string) bool {
	if len(terms) == 0 {
		return true
	}
	for _, t := range terms {
		if strings.Contains(name, t) {
			return true
		}
	}
	return false
}

func measure(label string, terms []string) []Entry {
	now := time.Now().UTC().Format("2006-01-02")
	var out []Entry
	for _, bm := range benches {
		if !selected(bm.name, terms) {
			continue
		}
		// A parallel benchmark on a narrow machine measures contention,
		// not scaling: its body raises GOMAXPROCS to NumCPU, so below
		// the scaling gate's width the row is meaningless — and once
		// merged into the trajectory it would ratchet future runs
		// against garbage. Refuse to record it rather than caveat it.
		if bm.parallel && runtime.NumCPU() < scalingMinWidth {
			fmt.Fprintf(os.Stderr,
				"benchhot: skipping %s: %d cores < %d (parallel rows are only meaningful at the scaling gate's width)\n",
				bm.name, runtime.NumCPU(), scalingMinWidth)
			continue
		}
		fmt.Fprintf(os.Stderr, "benchhot: running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		ns := float64(r.NsPerOp())
		if ns <= 0 {
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
		}
		gmp := runtime.GOMAXPROCS(0)
		if bm.parallel {
			gmp = runtime.NumCPU()
		}
		e := Entry{
			Name: bm.name, Label: label,
			OpsPerSec:   1e9 / ns,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  gmp,
			Date:        now,
		}
		fmt.Fprintf(os.Stderr, "benchhot: %-12s %12.0f ops/sec  %10.1f ns/op  %d allocs/op\n",
			e.Name, e.OpsPerSec, e.NsPerOp, e.AllocsPerOp)
		out = append(out, e)
	}
	return out
}

func load(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Entry
	if len(data) == 0 {
		return nil, nil
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// merge replaces same (name, label) entries and keeps everything else,
// sorted by label then name for stable diffs.
func merge(old, fresh []Entry) []Entry {
	replaced := make(map[string]bool, len(fresh))
	for _, e := range fresh {
		replaced[e.Name+"|"+e.Label] = true
	}
	var out []Entry
	for _, e := range old {
		if !replaced[e.Name+"|"+e.Label] {
			out = append(out, e)
		}
	}
	out = append(out, fresh...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func save(path string, entries []Entry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// bestPrior reduces the baseline trajectory to, per (name, gomaxprocs),
// the strictest bar it has ever set: the highest recorded ops/sec and
// the lowest recorded allocs/op (possibly from different entries). The
// trajectory is a ratchet — once a PR lands a speedup, later PRs are
// gated against it, not against whichever label happens to be newest.
type bestPrior struct {
	ops    float64
	allocs int64
}

func bestPriors(baseline []Entry, key func(Entry) string) map[string]bestPrior {
	best := make(map[string]bestPrior)
	for _, e := range baseline {
		k := key(e)
		b, ok := best[k]
		if !ok {
			best[k] = bestPrior{ops: e.OpsPerSec, allocs: e.AllocsPerOp}
			continue
		}
		if e.OpsPerSec > b.ops {
			b.ops = e.OpsPerSec
		}
		if e.AllocsPerOp < b.allocs {
			b.allocs = e.AllocsPerOp
		}
		best[k] = b
	}
	return best
}

// check compares fresh measurements against the best prior entry per
// (name, gomaxprocs) in the committed trajectory. Two gates: ops/sec
// must not drop more than maxRegress below the best recorded
// (hardware-sensitive — the baseline was recorded on one machine, so
// this catches gross slowdowns), and allocs/op must not grow more than
// maxAllocGrowth over the best recorded (machine-independent — in particular,
// a SingleCell history of 0 allocs/op means any new per-op allocation
// fails). A benchmark with no prior entry at the same gomaxprocs skips
// the gate: ops/sec across different widths are not comparable, and a
// cross-width ratchet would permanently fail any runner whose core
// count differs from the recording machine's.
//
// The ratchet's escape hatches are the two tolerance flags: widen
// -max-regress (ops/sec) or -max-alloc-growth (allocs/op) in CI for a
// deliberate trade-off, rather than rewriting the committed trajectory.
func check(fresh, baseline []Entry, maxRegress, maxAllocGrowth float64) error {
	best := bestPriors(baseline, func(e Entry) string {
		return fmt.Sprintf("%s|%d", e.Name, e.GOMAXPROCS)
	})
	if len(best) == 0 {
		return fmt.Errorf("baseline has no entries")
	}
	var failed bool
	for _, e := range fresh {
		b, ok := best[fmt.Sprintf("%s|%d", e.Name, e.GOMAXPROCS)]
		width := fmt.Sprintf("gomaxprocs=%d", e.GOMAXPROCS)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchhot: %s: no prior entry at %s, skipping gate\n", e.Name, width)
			continue
		}
		floor := b.ops * (1 - maxRegress)
		ratio := e.OpsPerSec / b.ops
		status := "ok"
		if e.OpsPerSec < floor {
			status = "REGRESSION"
			failed = true
		}
		allocLimit := b.allocs + int64(float64(b.allocs)*maxAllocGrowth)
		if e.AllocsPerOp > allocLimit {
			status = "ALLOC REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"benchhot: gate %-22s %12.0f vs best prior %12.0f ops/sec (%.2fx, floor %.0f, %s), %d vs %d allocs/op (limit %d): %s\n",
			e.Name, e.OpsPerSec, b.ops, ratio, floor, width, e.AllocsPerOp, b.allocs, allocLimit, status)
	}
	if failed {
		return fmt.Errorf("regression beyond gate (ops/sec -%.0f%% or allocs/op +%.0f%% vs best prior)",
			maxRegress*100, maxAllocGrowth*100)
	}
	return nil
}

// The scaling gates: each pair compares a parallel benchmark against
// its serial twin from the SAME measurement run (fresh vs fresh, so
// machine-independent, unlike the ops/sec ratchet). Below
// scalingMinWidth cores the gates warn and skip — a 1- or 2-core
// runner cannot express a 2x requirement (and measure refuses to
// record parallel rows there at all).
const scalingMinWidth = 4

var scalingPairs = []struct {
	serial, parallel string
	floor            float64
	// allocParity additionally requires the parallel row to allocate
	// no more per op than the serial one. True for the campaign pair
	// (forking must not add per-trial allocations); false for the
	// sharded snapshot pair, whose parallel path pays a few worker-pool
	// allocations per op that the serial single-worker path skips.
	allocParity bool
}{
	// The fork engine: trial throughput must scale with cores instead
	// of staying flat (N warmups used to eat the parallelism).
	{"CampaignTrial", "CampaignTrialParallel", 2.0, true},
	// The sharded state plane: snapshot/restore of a 256-proc machine
	// must scale across per-proc/per-shard tasks (machine.parallelDo).
	{"ShardedSingleCell", "ShardedSingleCellParallel", 1.8, false},
	// The event plane: simulating ONE 256-proc machine must scale
	// across per-shard event heaps (sim.ShardedEngine epochs), not just
	// across independent trials or snapshot tasks.
	{"ShardedRun", "ShardedRunParallel", 1.8, false},
}

// checkScaling applies every scalingPairs gate present in fresh. On a
// runner wide enough to express the gate, a pair with one side missing
// from an unfiltered run is an error: a silently half-measured pair
// would report "gate passed" while gating nothing.
func checkScaling(fresh []Entry, filtered bool) error {
	byName := make(map[string]*Entry, len(fresh))
	for i := range fresh {
		byName[fresh[i].Name] = &fresh[i]
	}
	for _, pair := range scalingPairs {
		serial, parallel := byName[pair.serial], byName[pair.parallel]
		if serial == nil && parallel == nil {
			continue // pair not in this run
		}
		if serial == nil || parallel == nil {
			if filtered || runtime.NumCPU() < scalingMinWidth {
				continue // -bench selected one side, or measure refused the parallel row
			}
			return fmt.Errorf("scaling pair %s/%s half-measured: one side missing from an unfiltered run",
				pair.serial, pair.parallel)
		}
		if parallel.GOMAXPROCS < scalingMinWidth {
			fmt.Fprintf(os.Stderr,
				"benchhot: scaling gate %s skipped: parallel width %d < %d cores\n",
				pair.parallel, parallel.GOMAXPROCS, scalingMinWidth)
			continue
		}
		speedup := parallel.OpsPerSec / serial.OpsPerSec
		fmt.Fprintf(os.Stderr,
			"benchhot: gate scaling %s: parallel %.0f vs serial %.0f ops/sec = %.2fx at gomaxprocs=%d (floor %.1fx), %d vs %d allocs/op\n",
			pair.parallel, parallel.OpsPerSec, serial.OpsPerSec, speedup, parallel.GOMAXPROCS,
			pair.floor, parallel.AllocsPerOp, serial.AllocsPerOp)
		if speedup < pair.floor {
			return fmt.Errorf("%s throughput %.2fx %s at %d cores, want >=%.1fx (flat scaling regression)",
				pair.parallel, speedup, pair.serial, parallel.GOMAXPROCS, pair.floor)
		}
		if pair.allocParity && parallel.AllocsPerOp > serial.AllocsPerOp {
			return fmt.Errorf("%s allocates more than %s (%d vs %d allocs/op): parallelism added per-op allocations",
				pair.parallel, pair.serial, parallel.AllocsPerOp, serial.AllocsPerOp)
		}
	}
	return nil
}

func main() {
	var (
		label      = flag.String("label", "current", "label to record measurements under")
		out        = flag.String("out", "", "JSON file to merge measurements into")
		doCheck    = flag.Bool("check", false, "gate against a baseline file")
		benchArg   = flag.String("bench", "", "measure only benchmarks whose name contains one of these comma-separated substrings (each term must match)")
		baseline   = flag.String("baseline", "BENCH_hotpath.json", "baseline file for -check")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed ops/sec drop for -check")
		maxAllocs  = flag.Float64("max-alloc-growth", 0.25, "maximum allowed allocs/op growth for -check")
	)
	flag.Parse()

	terms, err := parseBenchFilter(*benchArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
		os.Exit(1)
	}
	fresh := measure(*label, terms)
	if len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "benchhot: nothing to measure (all selected benchmarks refused on this machine)\n")
		os.Exit(1)
	}

	// The trajectory is written (emit, below) only after the gate ran:
	// the best-of-two retry may replace noisy first samples, and the
	// recorded numbers must be the ones that were actually judged.
	emit := func() {
		if *out != "" {
			old, err := load(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
				os.Exit(1)
			}
			if err := save(*out, merge(old, fresh)); err != nil {
				fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchhot: wrote %s\n", *out)
		} else {
			data, _ := json.MarshalIndent(fresh, "", "  ")
			fmt.Println(string(data))
		}
	}

	if *doCheck {
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhot: %v\n", err)
			os.Exit(1)
		}
		gate := func() error {
			if err := check(fresh, base, *maxRegress, *maxAllocs); err != nil {
				return err
			}
			return checkScaling(fresh, len(terms) > 0)
		}
		err = gate()
		if err != nil {
			// Best-of-two: a single testing.Benchmark sample on a noisy
			// shared runner can dip below the floor without any code
			// change. Re-measure once and keep, per benchmark, the
			// faster sample whole — except allocs/op, which is gated on
			// the WORSE of the two samples: the retry forgives only
			// throughput noise, never an allocation regression.
			fmt.Fprintf(os.Stderr, "benchhot: first sample failed (%v); re-measuring once\n", err)
			second := measure(*label, terms)
			for i := range fresh {
				worstAllocs := fresh[i].AllocsPerOp
				if second[i].AllocsPerOp > worstAllocs {
					worstAllocs = second[i].AllocsPerOp
				}
				if second[i].OpsPerSec > fresh[i].OpsPerSec {
					fresh[i] = second[i]
				}
				fresh[i].AllocsPerOp = worstAllocs
			}
			err = gate()
		}
		if err != nil {
			emit() // record the failing numbers too: red runs are data
			fmt.Fprintf(os.Stderr, "benchhot: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchhot: gate passed")
	}
	emit()
}
