// Command reboundsim runs a single simulation of the Rebound manycore:
// one application, one processor count, one checkpointing scheme, and
// prints a summary of the run (overhead is reported when -baseline is
// set, which adds a second run without checkpointing).
//
// Example:
//
//	reboundsim -app Ocean -procs 32 -scheme Rebound -baseline
//	reboundsim -app Apache -procs 24 -scheme Global -instr 200000
//	reboundsim -app Barnes -procs 16 -scheme Rebound -fault
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "Barnes", "application profile (see -list)")
		procs    = flag.Int("procs", 16, "number of processors")
		scheme   = flag.String("scheme", "Rebound", "checkpointing scheme: "+strings.Join(harness.SchemeNames(), "|"))
		instr    = flag.Uint64("instr", 150_000, "instructions per processor")
		interval = flag.Uint64("interval", 30_000, "checkpoint interval (instructions)")
		detectL  = flag.Uint64("L", 8_000, "fault detection latency bound L (cycles)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		baseline = flag.Bool("baseline", false, "also run without checkpointing and report overhead")
		doFault  = flag.Bool("fault", false, "inject a transient fault mid-run and verify recovery")
		shards   = flag.Int("shards", 0, "machine state-partition count (power of two; 0/1 = unsharded; results are identical)")
		list     = flag.Bool("list", false, "list application profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-14s (%s)\n", p.Name, p.Suite)
		}
		return
	}

	sc := harness.Scale{
		Name: "custom", ProcsLarge: *procs, ProcsSmall: *procs,
		InstrPerProc: *instr, Interval: *interval,
		DetectLatency: *detectL, Seed: *seed,
	}
	spec := harness.Spec{App: *app, Procs: *procs, Scheme: *scheme, Scale: sc, Shards: *shards}
	if err := spec.Validate(); err != nil {
		usage(err)
	}

	if *doFault {
		runWithFault(spec)
		return
	}

	res, err := harness.RunOne(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reboundsim:", err)
		os.Exit(1)
	}
	printSummary(res)

	if *baseline && *scheme != "none" {
		ovh, _, base := harness.Overhead(spec)
		fmt.Printf("\nbaseline (none):   %12d cycles\n", base.Cycles)
		fmt.Printf("checkpoint overhead: %9.2f %%\n", ovh*100)
	}
}

// usage reports a spec validation error with the valid vocabulary and
// exits non-zero (a bad -app or -scheme used to panic deep inside the
// harness; now it is a diagnosable CLI error).
func usage(err error) {
	fmt.Fprintln(os.Stderr, "reboundsim:", err)
	fmt.Fprintf(os.Stderr, "\nvalid applications: %s\n", strings.Join(harness.AppNames(), " "))
	fmt.Fprintf(os.Stderr, "valid schemes:      %s\n", strings.Join(harness.SchemeNames(), " "))
	fmt.Fprintln(os.Stderr, "\nrun with -list for application details, -h for all flags")
	os.Exit(2)
}

func printSummary(res harness.Result) {
	st := res.St
	fmt.Printf("app=%s procs=%d scheme=%s\n", res.Spec.App, res.Spec.Procs, res.Spec.Scheme)
	fmt.Printf("cycles:              %12d\n", res.Cycles)
	fmt.Printf("instructions:        %12d\n", st.TotalInstructions())
	fmt.Printf("IPC (whole chip):    %12.2f\n",
		float64(st.TotalInstructions())/float64(res.Cycles))
	fmt.Printf("checkpoints:         %12d (avg ICHK %.1f%% of procs)\n",
		len(st.Checkpoints), st.AvgICHKFraction()*100)
	fmt.Printf("ckpt writebacks:     %12d (%d in background)\n",
		st.L2WritebacksCkpt, st.L2WritebacksBg)
	fmt.Printf("log entries:         %12d (%0.2f MB high water)\n",
		st.LogEntries, float64(st.LogHighWaterBytes)/(1<<20))
	fmt.Printf("coherence messages:  %12d (+%.1f%% for dependence tracking)\n",
		st.CohMessages, st.MessageIncreasePct())
	wb, imb, sync := st.StallTotals()
	fmt.Printf("stalls (cycles):     WB=%d imbalance=%d sync=%d depstall=%d\n",
		wb, imb, sync, st.DepStallCycles)
	fmt.Printf("estimated power:     %12.2f W (ED2 %.3e J*s^2)\n",
		res.Power.AvgPowerW, res.Power.ED2)
}

func runWithFault(spec harness.Spec) {
	m, err := harness.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reboundsim:", err)
		os.Exit(1)
	}
	inj := fault.NewInjector(m, spec.Scale.Seed)
	budget := spec.Scale.InstrPerProc * uint64(spec.Procs)
	m.Run(budget / 2)
	inj.InjectAt(m.Now()+1, 0, m.Cfg.DetectLatency/2)
	m.Run(budget / 2)
	m.RunCycles(20_000_000)
	m.FinalizeStats()

	fmt.Printf("app=%s procs=%d scheme=%s (fault injection)\n",
		spec.App, spec.Procs, spec.Scheme)
	fmt.Printf("faults injected/detected: %d/%d\n", inj.Injected, inj.Detected)
	for i, rb := range m.St.Rollbacks {
		fmt.Printf("rollback %d: IREC=%d procs, %d log entries restored, %.3f ms\n",
			i, rb.Size, rb.Restored, float64(rb.End-rb.Start)/1e6)
	}
	if err := inj.Verify(); err != nil {
		fmt.Println("recovery verification: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("recovery verification: OK (no poison survived, IREC covered propagation)")
}
