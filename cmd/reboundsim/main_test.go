package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets a test re-exec this binary as reboundsim: with
// REBOUNDSIM_RUN_MAIN set, the process runs main() on the flags after
// "--" instead of the test suite — the cheapest way to observe the
// real exit code and stderr of the CLI's usage path.
func TestMain(m *testing.M) {
	if os.Getenv("REBOUNDSIM_RUN_MAIN") == "1" {
		args := os.Args[:1]
		for i, a := range os.Args {
			if a == "--" {
				args = append(args, os.Args[i+1:]...)
				break
			}
		}
		os.Args = args
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestUsageListsSchemeVocabulary pins the CLI's error contract: a bad
// -scheme or -app exits 2 and prints the full vocabulary, including
// every appended scheme (Rebound_2L must be advertised everywhere
// Rebound is, or users cannot discover it).
func TestUsageListsSchemeVocabulary(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"bad scheme", []string{"-scheme", "NoSuchScheme"}},
		{"bad app", []string{"-app", "NoSuchApp"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(exe, append([]string{"--"}, tc.args...)...)
			cmd.Env = append(os.Environ(), "REBOUNDSIM_RUN_MAIN=1")
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("exit = %v, want exit code 2\nstderr: %s", err, stderr.String())
			}
			out := stderr.String()
			for _, scheme := range []string{"none", "Global", "Rebound", "Rebound_2L"} {
				if !strings.Contains(out, scheme) {
					t.Errorf("usage output does not advertise scheme %q:\n%s", scheme, out)
				}
			}
			if !strings.Contains(out, "valid applications:") || !strings.Contains(out, "valid schemes:") {
				t.Errorf("usage output missing vocabulary sections:\n%s", out)
			}
		})
	}
}
