// Command figures regenerates every table and figure of the Rebound
// evaluation chapter (Figures 6.1–6.8 and Table 6.1) as text tables.
//
//	figures                 # everything at the default (full) scale
//	figures -scale quick    # fast, smaller machine
//	figures -fig 6.3        # a single figure
//	figures -serial         # reference single-threaded execution
//	figures -workers 4      # cap the worker pool
//
// Experiment cells run in parallel across a GOMAXPROCS worker pool by
// default; -serial (or -workers 1) runs them one at a time. Both paths
// produce bit-identical tables: every cell's seed is derived from its
// spec, not from scheduling order.
//
// Absolute numbers differ from the paper (scaled intervals, synthetic
// workloads — see DESIGN.md and EXPERIMENTS.md); the shapes — who wins,
// by roughly what factor, and how trends scale — are the reproduction
// target.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		scaleName = flag.String("scale", "full", "experiment scale: quick|full")
		fig       = flag.String("fig", "all", "which figure: all|6.1|6.2|6.3|6.4|6.5|6.6|6.7|6.8|t6.1")
		serial    = flag.Bool("serial", false, "run experiment cells one at a time (reference mode)")
		workers   = flag.Int("workers", 0, "worker-pool size for experiment cells (0 = GOMAXPROCS)")
	)
	flag.Parse()

	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if *serial {
		harness.SetWorkers(1)
	} else if *workers != 0 {
		harness.SetWorkers(*workers)
	}

	type runner struct {
		id string
		fn func(harness.Scale) []harness.TableData
	}
	one := func(f func(harness.Scale) harness.TableData) func(harness.Scale) []harness.TableData {
		return func(s harness.Scale) []harness.TableData { return []harness.TableData{f(s)} }
	}
	runners := []runner{
		{"6.1", one(harness.Fig61)},
		{"6.2", harness.Fig62},
		{"6.3", harness.Fig63},
		{"6.4", one(harness.Fig64)},
		{"6.5", one(harness.Fig65)},
		{"6.6", harness.Fig66},
		{"6.7", one(harness.Fig67)},
		{"6.8", one(harness.Fig68)},
		{"t6.1", one(harness.Table61)},
	}

	ran := false
	for _, r := range runners {
		if *fig != "all" && *fig != r.id {
			continue
		}
		ran = true
		start := time.Now()
		for _, td := range r.fn(sc) {
			fmt.Println(td.Format())
		}
		fmt.Printf("[%s regenerated in %.1fs at scale %q]\n\n", r.id, time.Since(start).Seconds(), sc.Name)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}
