// Package benchhot defines the simulator hot-path benchmark bodies.
// They are shared by two entry points: the root bench_hotpath_test.go
// wrappers (go test -bench=Hot) and cmd/benchhot, which runs them via
// testing.Benchmark and emits machine-readable results into
// BENCH_hotpath.json so the repo carries a performance trajectory
// across PRs (see README "Performance").
//
// The benchmarks cover the layers the per-op pipeline feeds:
//
//   - SingleCell: one steady-state simulation cell; each benchmark op
//     is ONE committed instruction, so ns/op is the per-instruction cost
//     of the workload-gen -> cache -> directory -> signature -> log
//     pipeline and allocs/op is its steady-state allocation rate (the
//     0-allocs/op contract).
//   - Fig62Sweep: the full Figure 6.2 sweep (26 cells) on a fresh
//     runner each iteration — the figure-driver throughput a user sees.
//   - ServicePath: the reboundd HTTP service answering a POST /v1/runs
//     that hits the persistent store — the service-path request rate.
//   - CampaignTrial: one fault-injected Monte Carlo trial (restore the
//     warmed machine snapshot, inject, recover, verify) — the unit of
//     work a fault campaign multiplies by thousands, so regressions
//     here scale with trial count exactly as SingleCell regressions
//     scale with sweeps. The warmup is paid once outside the timer,
//     exactly as the campaign engine amortizes it.
//   - CampaignTrialParallel: CampaignTrial fanned across all CPUs at
//     GOMAXPROCS=NumCPU, all workers forked (copy-on-write) from ONE
//     shared warm snapshot — the parallel-scaling row of the
//     trajectory (every other row is recorded at the process
//     default). cmd/benchhot's -check gates this row at >=2x the
//     serial row on runners with >=4 cores.
package benchhot

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// SingleCellSpec is the cell SingleCell measures: a Figure 6.2 cell
// (SPLASH-2 FFT under Rebound at the quick scale's full machine size).
func SingleCellSpec() harness.Spec {
	return harness.Spec{App: "FFT", Procs: harness.Quick.ProcsLarge,
		Scheme: "Rebound", Scale: harness.Quick}
}

// SingleCell benchmarks the steady-state per-op pipeline of one cell.
// The machine is built and warmed past its first checkpoint intervals
// outside the timer; the timed region commits exactly b.N instructions.
func SingleCell(b *testing.B) {
	m, err := harness.Build(SingleCellSpec())
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up: well past cold caches and the first checkpoint rounds.
	m.Run(uint64(4*harness.Quick.Interval) * uint64(m.Cfg.NProcs))
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(uint64(b.N))
	b.StopTimer()
}

// Fig62Sweep benchmarks the full Figure 6.2 sweep on a fresh runner
// (no memoized cells) per iteration.
func Fig62Sweep(b *testing.B) {
	specs := harness.Fig62Specs(harness.Quick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		if _, err := r.Run(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// CampaignTrialSpec is the campaign CampaignTrial samples trials from:
// the SingleCell workload cell at a small machine size, two faults per
// trial over a short window.
func CampaignTrialSpec() campaign.Spec {
	return campaign.Spec{
		Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick},
		Trials: campaign.MaxTrials, // index headroom; the bench runs b.N trials
		Faults: 2,
		Window: 60_000,
		Seed:   1,
	}
}

// CampaignTrial benchmarks the fault path end to end through the
// snapshot engine: each op is one Monte Carlo trial — restore the
// warmed machine snapshot, inject two faults, run the distributed
// recovery, settle and verify. The build-and-warm happens once outside
// the timer (the campaign engine amortizes it the same way). The
// regression gate guards ops/sec and allocs/op (fault bookkeeping and
// per-trial records allocate; rebuild/warm must not).
func CampaignTrial(b *testing.B) {
	spec := CampaignTrialSpec()
	tr := campaign.NewTrialRunner(spec)
	if _, err := tr.Run(0); err != nil { // build + warm + snapshot
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trial, err := tr.Run(i)
		if err != nil {
			b.Fatal(err)
		}
		if !trial.VerifyOK {
			b.Fatalf("trial %d failed verification: %s", i, trial.VerifyError)
		}
	}
	b.StopTimer()
	assertForkEconomics(b, tr)
}

// assertForkEconomics fails the benchmark if the runner silently fell
// back to per-trial build+warm: a fallback still produces correct
// trials, so only the counters expose it — and a fallback row recorded
// into the trajectory would gate future PRs against garbage numbers.
func assertForkEconomics(b *testing.B, tr *campaign.TrialRunner) {
	b.Helper()
	if wu, _, _, fr := tr.Counters(); wu != 1 || fr != 0 {
		b.Fatalf("snapshot engine fell back: warmups=%d fresh=%d, want 1 warmup and 0 fresh builds", wu, fr)
	}
}

// CampaignTrialParallel is CampaignTrial across all CPUs: trials fan
// out over worker machines forked (copy-on-write) from one shared warm
// snapshot at GOMAXPROCS=NumCPU, measuring how trial throughput scales
// with cores (the rest of the trajectory is recorded at the process's
// default GOMAXPROCS, which CI pins to 1 for stability). The gate on
// this row is cmd/benchhot's scaling check: >=2x the serial row at >=4
// cores, at no more allocs/op than serial.
func CampaignTrialParallel(b *testing.B) {
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	spec := CampaignTrialSpec()
	tr := campaign.NewTrialRunner(spec)
	// Pre-warm the fork pool outside the timer: one build+warm, then
	// one copy-on-write fork per CPU. Each goroutine's first acquire
	// would otherwise pay its fork inside the measured region and skew
	// the recorded scaling row.
	if err := tr.Prewarm(runtime.NumCPU()); err != nil {
		b.Fatal(err)
	}
	if trial, err := tr.Run(0); err != nil || !trial.VerifyOK {
		b.Fatalf("prime trial: %v %s", err, trial.VerifyError)
	}
	var next int64
	var firstErr atomic.Value // error string; Fatal must not run on worker goroutines
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(atomic.AddInt64(&next, 1))
			trial, err := tr.Run(i)
			switch {
			case err != nil:
				firstErr.CompareAndSwap(nil, fmt.Sprintf("trial %d: %v", i, err))
				return
			case !trial.VerifyOK:
				firstErr.CompareAndSwap(nil, fmt.Sprintf("trial %d failed verification: %s", i, trial.VerifyError))
				return
			}
		}
	})
	b.StopTimer()
	if msg := firstErr.Load(); msg != nil {
		b.Fatal(msg)
	}
	assertForkEconomics(b, tr)
}

// ShardedCellSpec is the cell the sharded-exec benchmarks measure: a
// 256-processor machine under Rebound with its state split into 8
// partitions — large enough that the per-shard and per-processor tasks
// of the parallel snapshot/restore plane (machine.parallelDo) dominate
// the per-op cost.
func ShardedCellSpec() harness.Spec {
	return harness.Spec{
		App: "FFT", Procs: 256, Scheme: "Rebound",
		Scale: harness.Scale{
			Name: "sharded-bench", ProcsLarge: 256, ProcsSmall: 256,
			InstrPerProc: 4_000, Interval: 2_000, DetectLatency: 1_500, Seed: 1,
		},
		Shards: 8,
	}
}

// shardedCell holds the warmed 256-proc machine shared by
// ShardedSingleCell and ShardedSingleCellParallel. Building and
// warming a machine this size costs seconds; testing.Benchmark calls
// the body several times with growing b.N, so the warmup is paid once
// per process, exactly as a campaign amortizes it. Sharing is safe:
// every benchmark op restores the machine to the same settled point,
// and cmd/benchhot runs benchmarks sequentially.
var shardedCell struct {
	once sync.Once
	m    *machine.Machine
	snap *machine.MachineSnapshot
	err  error
}

func shardedCellInit() {
	spec := ShardedCellSpec()
	m, err := harness.Build(spec)
	if err != nil {
		shardedCell.err = err
		return
	}
	m.Run(spec.Scale.InstrPerProc * uint64(spec.Procs) / 2)
	if !m.SettleForSnapshot(sim.Cycle(4_000_000)) {
		shardedCell.err = fmt.Errorf("sharded cell never reached a snapshot-safe point")
		return
	}
	snap := new(machine.MachineSnapshot)
	if err := m.Snapshot(snap); err != nil {
		shardedCell.err = err
		return
	}
	shardedCell.m, shardedCell.snap = m, snap
}

// shardedCellBody is the shared measured region: each op is one full
// snapshot + restore round trip of the 256-proc machine — the state-
// plane work a campaign pays per trial and a sweep pays per warm-cache
// hit, fanned across GOMAXPROCS workers by machine.parallelDo. The
// serial and parallel variants differ only in GOMAXPROCS, so their
// ratio is the intra-machine scaling the "sharded-exec" gate guards.
func shardedCellBody(b *testing.B) {
	shardedCell.once.Do(shardedCellInit)
	if shardedCell.err != nil {
		b.Fatal(shardedCell.err)
	}
	m, snap := shardedCell.m, shardedCell.snap
	if err := m.Restore(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Snapshot(snap); err != nil {
			b.Fatal(err)
		}
		if err := m.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// ShardedSingleCell measures the snapshot/restore round trip at the
// process's default GOMAXPROCS (CI pins 1: the serial reference row).
func ShardedSingleCell(b *testing.B) { shardedCellBody(b) }

// ShardedSingleCellParallel is the same round trip at
// GOMAXPROCS=NumCPU: machine.parallelDo fans the per-processor and
// per-shard save/load tasks across cores. cmd/benchhot gates this row
// at >=1.8x the serial row on runners with >=4 cores (no alloc-parity
// requirement: the worker pool itself allocates a few objects per op,
// which the serial single-worker path skips).
func ShardedSingleCellParallel(b *testing.B) {
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	shardedCellBody(b)
}

// EventPlaneCellConfig is the machine the event-plane benchmarks run: a
// 256-processor cell under the null scheme with its state in 8
// partitions, executing on sim.ShardedEngine (Config.EventPlane) — the
// coherence protocol as latency-bounded message legs between per-shard
// event heaps instead of synchronous directory walks.
func EventPlaneCellConfig() machine.Config {
	cfg := machine.DefaultConfig(256)
	cfg.Shards = 8
	cfg.EventPlane = true
	return cfg
}

// epCell holds the warmed event-plane machine shared by ShardedRun and
// ShardedRunParallel. Sharing is safe for the same reason as
// shardedCell: the machine's trajectory is deterministic and the two
// benchmarks differ only in executor parallelism, which is
// byte-identical by construction (machine/eventplane.go), so both
// variants measure the same per-instruction work.
var epCell struct {
	once sync.Once
	m    *machine.Machine
}

func epCellInit() {
	m := machine.New(EventPlaneCellConfig(), workload.ByName("FFT"), machine.NullScheme{})
	m.Run(256 * 2_000) // warm caches, directory and DRAM state
	epCell.m = m
}

// shardedRunBody is the shared measured region: each op is one
// committed instruction of the event-plane machine, so ns/op is the
// per-instruction cost of epoch-parallel execution (compare SingleCell
// for the sequential pipeline).
func shardedRunBody(b *testing.B, parallel bool) {
	epCell.once.Do(epCellInit)
	m := epCell.m
	m.SetEventPlaneParallel(parallel)
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(uint64(b.N))
	b.StopTimer()
}

// ShardedRun measures event-plane execution with epochs run
// sequentially, shard by shard (the serial reference row; CI records it
// at GOMAXPROCS=1).
func ShardedRun(b *testing.B) { shardedRunBody(b, false) }

// ShardedRunParallel is the same machine with a goroutine per shard
// inside each epoch, at GOMAXPROCS=NumCPU. cmd/benchhot gates this row
// at >=1.8x ShardedRun on runners with >=4 cores — the tentpole claim
// that one machine's simulation now scales across cores (no alloc
// parity: the epoch barrier costs a few pool objects per epoch that the
// serial path skips).
func ShardedRunParallel(b *testing.B) {
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	shardedRunBody(b, true)
}

// Fig62SweepSharded is Fig62Sweep with every cell's machine state
// split into 4 partitions: the whole-figure regression canary for the
// sharded state plane (results are byte-identical to the unsharded
// sweep; only the storage layout differs).
func Fig62SweepSharded(b *testing.B) {
	specs := harness.Fig62Specs(harness.Quick)
	for i := range specs {
		specs[i].Shards = 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		if _, err := r.Run(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// ServicePath benchmarks the service request path: POST /v1/runs
// answered from the store (the steady state of a figure-serving
// deployment; the one simulation happens outside the timer).
func ServicePath(b *testing.B) {
	dir, err := os.MkdirTemp("", "benchhot-store-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Runner: harness.NewRunner(0), Store: st, Scale: harness.Quick,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const body = `{"app":"FFT","procs":4,"scheme":"Rebound"}`
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
			strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // prime: the one real simulation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	// Cache-hit alloc assertion: a GET of the stored record is served
	// zero-copy from the store's raw bytes, so the handler itself must
	// stay within a small fixed alloc budget (headers + path routing —
	// NOT an unmarshal/re-marshal of the ~30 KB record, which used to
	// dominate this path). Measured handler-side, without client noise.
	key := store.KeyOf(harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick})
	req, err := http.NewRequest("GET", "/v1/runs/"+key, nil)
	if err != nil {
		b.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		w := nopResponseWriter{h: make(http.Header)}
		srv.ServeHTTP(w, req)
	}); avg > serveGetAllocBudget {
		b.Fatalf("cache-hit GET allocates %.1f allocs/op, budget %d — record re-marshalling crept back in?",
			avg, serveGetAllocBudget)
	}
}

// serveGetAllocBudget bounds the handler-side allocations of a
// cache-hit GET /v1/runs/{key} (mux routing, header map, ETag string —
// the record bytes themselves are shared, not copied).
const serveGetAllocBudget = 32

// nopResponseWriter discards the response; the header map is the only
// allocation it contributes.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}
