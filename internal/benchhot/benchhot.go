// Package benchhot defines the simulator hot-path benchmark bodies.
// They are shared by two entry points: the root bench_hotpath_test.go
// wrappers (go test -bench=Hot) and cmd/benchhot, which runs them via
// testing.Benchmark and emits machine-readable results into
// BENCH_hotpath.json so the repo carries a performance trajectory
// across PRs (see README "Performance").
//
// Three benchmarks cover the three layers the per-op pipeline feeds:
//
//   - SingleCell: one steady-state simulation cell; each benchmark op
//     is ONE committed instruction, so ns/op is the per-instruction cost
//     of the workload-gen -> cache -> directory -> signature -> log
//     pipeline and allocs/op is its steady-state allocation rate (the
//     0-allocs/op contract).
//   - Fig62Sweep: the full Figure 6.2 sweep (26 cells) on a fresh
//     runner each iteration — the figure-driver throughput a user sees.
//   - ServicePath: the reboundd HTTP service answering a POST /v1/runs
//     that hits the persistent store — the service-path request rate.
//   - CampaignTrial: one fault-injected Monte Carlo trial (inject,
//     recover, verify) on a reused arena — the unit of work a fault
//     campaign multiplies by thousands, so regressions here scale with
//     trial count exactly as SingleCell regressions scale with sweeps.
package benchhot

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/store"
)

// SingleCellSpec is the cell SingleCell measures: a Figure 6.2 cell
// (SPLASH-2 FFT under Rebound at the quick scale's full machine size).
func SingleCellSpec() harness.Spec {
	return harness.Spec{App: "FFT", Procs: harness.Quick.ProcsLarge,
		Scheme: "Rebound", Scale: harness.Quick}
}

// SingleCell benchmarks the steady-state per-op pipeline of one cell.
// The machine is built and warmed past its first checkpoint intervals
// outside the timer; the timed region commits exactly b.N instructions.
func SingleCell(b *testing.B) {
	m, err := harness.Build(SingleCellSpec())
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up: well past cold caches and the first checkpoint rounds.
	m.Run(uint64(4*harness.Quick.Interval) * uint64(m.Cfg.NProcs))
	b.ReportAllocs()
	b.ResetTimer()
	m.Run(uint64(b.N))
	b.StopTimer()
}

// Fig62Sweep benchmarks the full Figure 6.2 sweep on a fresh runner
// (no memoized cells) per iteration.
func Fig62Sweep(b *testing.B) {
	specs := harness.Fig62Specs(harness.Quick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(0)
		if _, err := r.Run(context.Background(), specs...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// CampaignTrialSpec is the campaign CampaignTrial samples trials from:
// the SingleCell workload cell at a small machine size, two faults per
// trial over a short window.
func CampaignTrialSpec() campaign.Spec {
	return campaign.Spec{
		Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick},
		Trials: campaign.MaxTrials, // index headroom; the bench runs b.N trials
		Faults: 2,
		Window: 60_000,
		Seed:   1,
	}
}

// CampaignTrial benchmarks the fault path end to end: each op is one
// Monte Carlo trial — build on a reused arena, warm up, inject two
// faults, run the distributed recovery, settle and verify. Steady-state
// 0 allocs/op is not required here (fault bookkeeping and per-trial
// records allocate); the regression gate guards ops/sec.
func CampaignTrial(b *testing.B) {
	spec := CampaignTrialSpec()
	arena := new(cache.Arena)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		tr, err := campaign.RunTrial(spec, i, arena)
		if err != nil {
			b.Fatal(err)
		}
		if !tr.VerifyOK {
			b.Fatalf("trial %d failed verification: %s", i, tr.VerifyError)
		}
	}
	b.StopTimer()
}

// ServicePath benchmarks the service request path: POST /v1/runs
// answered from the store (the steady state of a figure-serving
// deployment; the one simulation happens outside the timer).
func ServicePath(b *testing.B) {
	dir, err := os.MkdirTemp("", "benchhot-store-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Runner: harness.NewRunner(0), Store: st, Scale: harness.Quick,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const body = `{"app":"FFT","procs":4,"scheme":"Rebound"}`
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
			strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil { // prime: the one real simulation
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}
