package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func cfg(n int) machine.Config {
	c := machine.DefaultConfig(n)
	c.CkptInterval = 25_000
	c.DetectLatency = 6_000
	return c
}

func TestInjectAtAndVerify(t *testing.T) {
	c := cfg(4)
	sch := core.NewRebound(core.Options{DelayedWB: true})
	m := machine.New(c, workload.Uniform(), sch)
	inj := NewInjector(m, 9)
	m.Run(400_000)
	inj.InjectAt(m.Now()+1_000, 2, c.DetectLatency/2)
	m.Run(400_000)
	m.RunCycles(3_000_000)
	if inj.Injected != 1 || inj.Detected != 1 {
		t.Fatalf("injected=%d detected=%d", inj.Injected, inj.Detected)
	}
	if len(m.St.Rollbacks) == 0 {
		t.Fatal("fault did not trigger a rollback")
	}
	if err := inj.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFaultStorm(t *testing.T) {
	c := cfg(8)
	prof := workload.Uniform()
	prof.SharedFrac = 0.3
	sch := core.NewRebound(core.Options{DelayedWB: true})
	m := machine.New(c, prof, sch)
	inj := NewInjector(m, 4)
	m.Run(300_000)
	inj.InjectRandom(4, 600_000)
	m.Run(2_500_000)
	m.RunCycles(6_000_000)
	if inj.Injected != 4 {
		t.Fatalf("injected = %d, want 4", inj.Injected)
	}
	if len(m.St.Rollbacks) == 0 {
		t.Fatal("no rollbacks under a fault storm")
	}
	if err := inj.Verify(); err != nil {
		t.Fatal(err)
	}
	m.CheckCoherence()
}

func TestFaultStormUnderGlobal(t *testing.T) {
	c := cfg(4)
	sch := core.NewGlobal(false)
	m := machine.New(c, workload.Uniform(), sch)
	inj := NewInjector(m, 11)
	m.Run(200_000)
	inj.InjectRandom(2, 300_000)
	m.Run(1_200_000)
	m.RunCycles(6_000_000)
	if err := inj.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDuringBarrierOptimization(t *testing.T) {
	c := cfg(8)
	prof := workload.ByName("Ocean")
	sch := core.NewRebound(core.Options{DelayedWB: true, BarrierOpt: true})
	m := machine.New(c, prof, sch)
	inj := NewInjector(m, 5)
	m.Run(300_000)
	inj.InjectRandom(2, 400_000)
	m.Run(2_000_000)
	m.RunCycles(8_000_000)
	if err := inj.Verify(); err != nil {
		t.Fatal(err)
	}
	// The machine must still be making progress after recovery.
	before := m.TotalInstructions()
	m.Run(100_000)
	if m.TotalInstructions() == before {
		t.Fatal("machine wedged after fault recovery")
	}
}

func TestVerifyCatchesUnhandledFault(t *testing.T) {
	c := cfg(2)
	m := machine.New(c, workload.Uniform(), machine.NullScheme{})
	inj := NewInjector(m, 3)
	m.Run(50_000)
	inj.InjectAt(m.Now()+100, 0, 1_000)
	m.Run(200_000)
	if err := inj.Verify(); err == nil {
		t.Fatal("Verify should fail when no scheme recovers the fault")
	}
}
