// Package fault injects and verifies the fault model of §3.2: a
// transient fault corrupts a core at some cycle; every value the core
// writes from then on is poisoned, and poison propagates to any
// consumer (through caches, the interconnect or memory). Detection
// happens within L cycles, triggering the scheme's rollback protocol.
// After recovery the verifier checks that no poison survives anywhere —
// the end-to-end statement of the paper's recovery guarantee.
package fault

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Spec is a complete, self-contained description of one fault scenario:
// how many transient faults to inject, over which window, with what
// detection-latency bound, drawn from which seed. It is what makes
// Injector construction data-driven — the campaign engine derives one
// Spec per trial instead of hand-wiring injector calls, and two
// injectors built from equal Specs on identical machines schedule
// identical faults.
type Spec struct {
	// Faults is the number of transient faults Launch schedules.
	Faults int `json:"faults"`
	// Window spreads the faults uniformly over (now, now+Window] cycles
	// at Launch time; together with Faults it sets the fault rate.
	// 0 selects 100×L (a handful of checkpoint intervals).
	Window sim.Cycle `json:"window,omitempty"`
	// MaxDetectLatency bounds each fault's detection latency, drawn
	// uniformly from (0, MaxDetectLatency]. 0 selects the machine's
	// configured L; values above L are clamped to L (the safety
	// argument of §3.2 requires detection within L).
	MaxDetectLatency sim.Cycle `json:"max_detect_latency,omitempty"`
	// Seed drives fault placement (times, cores, latencies).
	Seed uint64 `json:"seed"`
}

// Injector schedules faults on a machine.
type Injector struct {
	m    *machine.Machine
	rng  *sim.RNG
	spec Spec

	// Scheduled counts faults scheduled (InjectAt calls); Injected
	// counts those whose injection event has fired; Detected counts
	// detections delivered to the scheme.
	Scheduled, Injected, Detected int

	// TaintedEver records every processor that ever consumed poisoned
	// data (across the whole run), for IREC coverage checks. A bitset
	// rather than a map: no per-taint allocation, and deterministic
	// ascending iteration for report serialization.
	TaintedEver *bitset.Bitset
}

// New wires an injector configured by fs to m. It hooks the machine's
// taint observer (chaining any existing one); call Launch to schedule
// the spec's faults.
func New(m *machine.Machine, fs Spec) *Injector {
	inj := &Injector{m: m, rng: sim.NewRNG(fs.Seed ^ 0xfa017), spec: fs,
		TaintedEver: bitset.New(m.Cfg.NProcs)}
	prev := m.OnTaint
	m.OnTaint = func(p *machine.Proc) {
		inj.TaintedEver.Set(p.ID())
		if prev != nil {
			prev(p)
		}
	}
	return inj
}

// NewInjector wires an injector to m with only a seed configured; faults
// are then scheduled by hand through InjectAt/InjectRandom (the original
// hand-written-test surface).
func NewInjector(m *machine.Machine, seed uint64) *Injector {
	return New(m, Spec{Seed: seed})
}

// Spec returns the scenario the injector was built from.
func (inj *Injector) Spec() Spec { return inj.spec }

// ResolvedWindow returns the injection window Launch uses: Spec.Window,
// or the documented 100×L default. Exposed so callers sizing settle
// loops around a Launch (the campaign engine) share one definition.
func (inj *Injector) ResolvedWindow() sim.Cycle {
	if inj.spec.Window != 0 {
		return inj.spec.Window
	}
	return 100 * inj.m.Cfg.DetectLatency
}

// Launch schedules the spec's fault scenario relative to the current
// cycle: Faults faults at random cores and random times in
// (now, now+Window], each detected after a random latency in
// (0, MaxDetectLatency] (defaults resolved as documented on Spec).
func (inj *Injector) Launch() {
	maxL := inj.spec.MaxDetectLatency
	if maxL == 0 || maxL > inj.m.Cfg.DetectLatency {
		maxL = inj.m.Cfg.DetectLatency
	}
	inj.injectRandom(inj.spec.Faults, inj.ResolvedWindow(), maxL)
}

// InjectAt schedules a fault on core at the given absolute cycle, with
// detection after detectLatency more cycles (must be <= the machine's
// configured L for the safety argument to hold).
func (inj *Injector) InjectAt(at sim.Cycle, core int, detectLatency sim.Cycle) {
	m := inj.m
	inj.Scheduled++
	m.Eng.At(at, func() {
		p := m.Procs[core]
		p.InjectFault()
		inj.Injected++
		m.Eng.Schedule(detectLatency, func() {
			inj.Detected++
			m.Scheme.FaultDetected(p)
		})
	})
}

// InjectRandom schedules n faults at random cores and random times in
// (now, now+window], each detected after a random latency in (0, L].
func (inj *Injector) InjectRandom(n int, window sim.Cycle) {
	inj.injectRandom(n, window, inj.m.Cfg.DetectLatency)
}

func (inj *Injector) injectRandom(n int, window, maxLat sim.Cycle) {
	for i := 0; i < n; i++ {
		at := inj.m.Now() + 1 + sim.Cycle(inj.rng.Intn(int(window)))
		core := inj.rng.Intn(inj.m.Cfg.NProcs)
		lat := 1 + sim.Cycle(inj.rng.Intn(int(maxLat)))
		inj.InjectAt(at, core, lat)
	}
}

// Quiesced reports whether every scheduled fault has run its course:
// all injections fired (a fault scheduled beyond the end of a run is
// still pending, not absent), all detections delivered, and no core
// still faulty or tainted (both are cleared only by a rollback
// restore). The campaign engine polls it between settle slices to
// decide when a trial may be verified.
func (inj *Injector) Quiesced() bool {
	if inj.Injected != inj.Scheduled || inj.Detected != inj.Scheduled {
		return false
	}
	for _, p := range inj.m.Procs {
		if p.Faulty() || p.Tainted() {
			return false
		}
	}
	return true
}

// Verify checks that recovery was complete: no core is faulty or
// tainted and no poisoned value survives in memory or any cache. It
// also checks that every processor that was ever tainted appears in
// some recovery interaction set.
func (inj *Injector) Verify() error {
	m := inj.m
	for _, p := range m.Procs {
		if p.Faulty() {
			return fmt.Errorf("fault: core %d still faulty after recovery", p.ID())
		}
		if p.Tainted() {
			return fmt.Errorf("fault: core %d still tainted after recovery", p.ID())
		}
	}
	if a, any := m.Ctrl.Memory().AnyPoison(); any {
		return fmt.Errorf("fault: poisoned line %#x survives in memory", a)
	}
	rolled := bitset.New(m.Cfg.NProcs)
	for _, rb := range m.St.Rollbacks {
		for _, id := range rb.Members {
			rolled.Set(id)
		}
		if rb.Size == m.Cfg.NProcs {
			for i := 0; i < m.Cfg.NProcs; i++ {
				rolled.Set(i)
			}
		}
	}
	var err error
	inj.TaintedEver.ForEach(func(id int) {
		if err == nil && !rolled.Test(id) {
			err = fmt.Errorf("fault: tainted core %d never rolled back", id)
		}
	})
	return err
}
