// Package fault injects and verifies the fault model of §3.2: a
// transient fault corrupts a core at some cycle; every value the core
// writes from then on is poisoned, and poison propagates to any
// consumer (through caches, the interconnect or memory). Detection
// happens within L cycles, triggering the scheme's rollback protocol.
// After recovery the verifier checks that no poison survives anywhere —
// the end-to-end statement of the paper's recovery guarantee.
package fault

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Injector schedules faults on a machine.
type Injector struct {
	m   *machine.Machine
	rng *sim.RNG

	// Injected counts faults injected; Detected counts detections
	// delivered to the scheme.
	Injected, Detected int

	// TaintedEver records every processor that ever consumed poisoned
	// data (across the whole run), for IREC coverage checks.
	TaintedEver map[int]bool
}

// NewInjector wires an injector to m. It hooks the machine's taint
// observer (chaining any existing one).
func NewInjector(m *machine.Machine, seed uint64) *Injector {
	inj := &Injector{m: m, rng: sim.NewRNG(seed ^ 0xfa017), TaintedEver: map[int]bool{}}
	prev := m.OnTaint
	m.OnTaint = func(p *machine.Proc) {
		inj.TaintedEver[p.ID()] = true
		if prev != nil {
			prev(p)
		}
	}
	return inj
}

// InjectAt schedules a fault on core at the given absolute cycle, with
// detection after detectLatency more cycles (must be <= the machine's
// configured L for the safety argument to hold).
func (inj *Injector) InjectAt(at sim.Cycle, core int, detectLatency sim.Cycle) {
	m := inj.m
	m.Eng.At(at, func() {
		p := m.Procs[core]
		p.InjectFault()
		inj.Injected++
		m.Eng.Schedule(detectLatency, func() {
			inj.Detected++
			m.Scheme.FaultDetected(p)
		})
	})
}

// InjectRandom schedules n faults at random cores and random times in
// (now, now+window], each detected after a random latency in (0, L].
func (inj *Injector) InjectRandom(n int, window sim.Cycle) {
	L := inj.m.Cfg.DetectLatency
	for i := 0; i < n; i++ {
		at := inj.m.Now() + 1 + sim.Cycle(inj.rng.Intn(int(window)))
		core := inj.rng.Intn(inj.m.Cfg.NProcs)
		lat := 1 + sim.Cycle(inj.rng.Intn(int(L)))
		inj.InjectAt(at, core, lat)
	}
}

// Verify checks that recovery was complete: no core is faulty or
// tainted and no poisoned value survives in memory or any cache. It
// also checks that every processor that was ever tainted appears in
// some recovery interaction set.
func (inj *Injector) Verify() error {
	m := inj.m
	for _, p := range m.Procs {
		if p.Faulty() {
			return fmt.Errorf("fault: core %d still faulty after recovery", p.ID())
		}
		if p.Tainted() {
			return fmt.Errorf("fault: core %d still tainted after recovery", p.ID())
		}
	}
	if a, any := m.Ctrl.Memory().AnyPoison(); any {
		return fmt.Errorf("fault: poisoned line %#x survives in memory", a)
	}
	rolled := map[int]bool{}
	for _, rb := range m.St.Rollbacks {
		for _, id := range rb.Members {
			rolled[id] = true
		}
		if rb.Size == m.Cfg.NProcs {
			for i := 0; i < m.Cfg.NProcs; i++ {
				rolled[i] = true
			}
		}
	}
	for id := range inj.TaintedEver {
		if !rolled[id] {
			return fmt.Errorf("fault: tainted core %d never rolled back", id)
		}
	}
	return nil
}
