package cow

import (
	"reflect"
	"testing"
)

type span struct{ lo, hi int }

func collect(d *Dirty, n int) []span {
	var out []span
	d.Pages(n, func(lo, hi int) { out = append(out, span{lo, hi}) })
	return out
}

func TestDirtyEmpty(t *testing.T) {
	var d Dirty
	if got := collect(&d, 10_000); got != nil {
		t.Fatalf("clean tracker yielded ranges: %v", got)
	}
}

func TestDirtySinglePage(t *testing.T) {
	var d Dirty
	d.Mark(PageSize + 3)
	want := []span{{PageSize, 2 * PageSize}}
	if got := collect(&d, 10*PageSize); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirtyAdjacentPagesMerge(t *testing.T) {
	var d Dirty
	d.Mark(0)
	d.Mark(PageSize)
	d.Mark(5 * PageSize)
	want := []span{{0, 2 * PageSize}, {5 * PageSize, 6 * PageSize}}
	if got := collect(&d, 10*PageSize); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirtyRunAcrossWordBoundary(t *testing.T) {
	var d Dirty
	// Pages 62..66 span the 64-page word boundary of the bitmap.
	for p := 62; p <= 66; p++ {
		d.Mark(p * PageSize)
	}
	want := []span{{62 * PageSize, 67 * PageSize}}
	if got := collect(&d, 100*PageSize); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirtyClipsToLength(t *testing.T) {
	var d Dirty
	d.Mark(3 * PageSize)        // partially inside n
	d.Mark(7 * PageSize)        // entirely beyond n
	n := 3*PageSize + PageSize/2
	want := []span{{3 * PageSize, n}}
	if got := collect(&d, n); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirtyMarkRange(t *testing.T) {
	var d Dirty
	d.MarkRange(PageSize-1, PageSize+1) // straddles pages 0 and 1
	want := []span{{0, 2 * PageSize}}
	if got := collect(&d, 4*PageSize); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDirtyMarkAllAndClear(t *testing.T) {
	var d Dirty
	d.MarkAll()
	if got := collect(&d, 100); !reflect.DeepEqual(got, []span{{0, 100}}) {
		t.Fatalf("MarkAll: got %v", got)
	}
	d.Clear()
	if got := collect(&d, 100); got != nil {
		t.Fatalf("after Clear: got %v", got)
	}
	d.Mark(0)
	if got := collect(&d, 100); !reflect.DeepEqual(got, []span{{0, 100}}) {
		t.Fatalf("Mark after Clear: got %v", got)
	}
}
