// Package cow provides the page-granular dirty tracking behind the
// machine snapshot engine's copy-on-write restore. The flat arrays the
// hot path mutates (memory words, directory entries, log keys) are
// logically divided into fixed-size pages; every mutating setter marks
// the page it touches, and a delta restore copies back only the dirty
// pages of the shared warm snapshot instead of the whole array. One
// warmed snapshot thereby fans out to N forked machines: each fork pays
// a single full copy, and every trial after that pays only for the
// pages it actually wrote.
//
// The tracker is deliberately one-sided: it records "may differ from
// the last-loaded snapshot", never "definitely differs". Marking too
// much only costs copies; the correctness obligation is on the mutation
// sites to never miss a mark (growth that appends the fresh-build
// default value is exempt — a grown-but-unmutated tail already holds
// exactly the state a full load would reset it to).
package cow

import "math/bits"

// PageShift selects the page size: 1<<PageShift elements per page.
// 256 elements keeps the per-mark cost to a shift and an OR while
// holding the tracking overhead to one bit per page.
const PageShift = 8

// PageSize is the number of array elements per tracked page.
const PageSize = 1 << PageShift

// Dirty tracks which pages of a flat array may diverge from the
// snapshot it was last loaded from. The zero value is an empty (all
// clean) tracker.
type Dirty struct {
	bits []uint64
	all  bool
}

// Mark records that the page containing element i may have changed.
func (d *Dirty) Mark(i int) {
	if d.all {
		return
	}
	p := i >> PageShift
	w := p >> 6
	for len(d.bits) <= w {
		d.bits = append(d.bits, 0)
	}
	d.bits[w] |= 1 << uint(p&63)
}

// MarkRange records that elements [lo, hi) may have changed.
func (d *Dirty) MarkRange(lo, hi int) {
	if d.all || hi <= lo {
		return
	}
	for p := lo >> PageShift; p <= (hi-1)>>PageShift; p++ {
		w := p >> 6
		for len(d.bits) <= w {
			d.bits = append(d.bits, 0)
		}
		d.bits[w] |= 1 << uint(p&63)
	}
}

// MarkAll records that the entire array may have changed (wholesale
// operations: Reset, DetachProc).
func (d *Dirty) MarkAll() { d.all = true }

// All reports whether the whole array is considered dirty.
func (d *Dirty) All() bool { return d.all }

// Clear resets the tracker to all-clean, keeping its storage. Call
// after a full or delta load, when the live array equals the snapshot.
func (d *Dirty) Clear() {
	clear(d.bits)
	d.all = false
}

// Pages calls fn(lo, hi) for each maximal run of dirty pages, as
// half-open element ranges clipped to n. With MarkAll set it makes the
// single call fn(0, n).
func (d *Dirty) Pages(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if d.all {
		fn(0, n)
		return
	}
	lastPage := (n - 1) >> PageShift
	runStart, prev := -1, -2
	emit := func() {
		lo := runStart << PageShift
		hi := (prev + 1) << PageShift
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
	for wi, w := range d.bits {
		base := wi << 6
		for w != 0 {
			p := base + bits.TrailingZeros64(w)
			w &= w - 1
			if p > lastPage {
				continue
			}
			if p != prev+1 {
				if runStart >= 0 {
					emit()
				}
				runStart = p
			}
			prev = p
		}
	}
	if runStart >= 0 {
		emit()
	}
}
