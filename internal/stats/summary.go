package stats

import (
	"math"
	"sort"
)

// Summary is the descriptive summary of one campaign metric across
// samples: mean, spread, tail quantiles, and the 95% confidence
// interval of the mean. It is computed by Summarize with a fixed
// order of floating-point operations, so equal sample slices produce
// bit-identical Summaries — the campaign determinism contract extends
// through aggregation.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// Std is the sample standard deviation (n-1 denominator; 0 for
	// fewer than two samples).
	Std float64 `json:"std"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	// P99 is the 99th-percentile tail (linear interpolation, like P50/
	// P95): frontier points report median AND tail behaviour, and for
	// availability-style metrics the p99 tail is the figure service
	// operators actually bound.
	P99 float64 `json:"p99"`
	// CI95 is the half-width of the 95% confidence interval of the
	// mean under the normal approximation: 1.96·Std/√N.
	CI95 float64 `json:"ci95"`
}

// Summarize computes the Summary of xs. The input is not modified; an
// empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(n)

	var sq float64
	for _, v := range sorted {
		d := v - mean
		sq += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(sq / float64(n-1))
	}

	return Summary{
		N:    n,
		Mean: mean,
		Std:  std,
		Min:  sorted[0],
		Max:  sorted[n-1],
		P50:  quantile(sorted, 0.50),
		P95:  quantile(sorted, 0.95),
		P99:  quantile(sorted, 0.99),
		CI95: 1.96 * std / math.Sqrt(float64(n)),
	}
}

// quantile returns the q-quantile of an ascending-sorted non-empty
// slice, with linear interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
