package stats

import (
	"math"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// TestSummarizePinned pins Summarize's values on known inputs: the
// quantile rule is linear interpolation between closest ranks, and the
// Summary is a stable wire format (frontier reports embed it), so these
// numbers must never drift.
func TestSummarizePinned(t *testing.T) {
	seq := make([]float64, 100) // 1..100
	for i := range seq {
		seq[i] = float64(i + 1)
	}
	cases := []struct {
		name                     string
		xs                       []float64
		mean, p50, p95, p99, max float64
	}{
		{"1..100", seq, 50.5, 50.5, 95.05, 99.01, 100},
		{"two-point", []float64{0, 100}, 50, 50, 95, 99, 100},
		{"constant", []float64{7, 7, 7, 7}, 7, 7, 7, 7, 7},
		{"single", []float64{3.25}, 3.25, 3.25, 3.25, 3.25, 3.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.xs)
			if s.N != len(tc.xs) {
				t.Fatalf("N = %d, want %d", s.N, len(tc.xs))
			}
			for _, chk := range []struct {
				label     string
				got, want float64
			}{
				{"Mean", s.Mean, tc.mean},
				{"P50", s.P50, tc.p50},
				{"P95", s.P95, tc.p95},
				{"P99", s.P99, tc.p99},
				{"Max", s.Max, tc.max},
			} {
				if !near(chk.got, chk.want) {
					t.Errorf("%s = %v, want %v", chk.label, chk.got, chk.want)
				}
			}
			if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
				t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v",
					s.P50, s.P95, s.P99, s.Max)
			}
		})
	}
}

// TestSummarizeOrderIndependent: the summary of a permuted sample slice
// is bit-identical (Summarize sorts a copy; the FP operation order is
// fixed) — the determinism contract aggregation rides on.
func TestSummarizeOrderIndependent(t *testing.T) {
	fwd := []float64{5, 1, 4.5, 2, 9, 9, 0.25, 3}
	rev := make([]float64, len(fwd))
	for i, v := range fwd {
		rev[len(fwd)-1-i] = v
	}
	if a, b := Summarize(fwd), Summarize(rev); a != b {
		t.Fatalf("permutation changed the summary:\n %+v\n %+v", a, b)
	}
}

func TestSummarizeEmptyAndSpread(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty input yielded %+v", s)
	}
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("mean/min/max = %v/%v/%v", s.Mean, s.Min, s.Max)
	}
	if want := math.Sqrt(32.0 / 7.0); !near(s.Std, want) {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if want := 1.96 * s.Std / math.Sqrt(8); !near(s.CI95, want) {
		t.Fatalf("CI95 = %v, want %v", s.CI95, want)
	}
}
