package stats

import (
	"math"
	"testing"
)

func TestNewSizes(t *testing.T) {
	s := New(8)
	if s.NProcs != 8 || len(s.Instructions) != 8 || len(s.WBDelay) != 8 ||
		len(s.WBImbalance) != 8 || len(s.SyncDelay) != 8 || len(s.RollStall) != 8 {
		t.Fatal("New did not size per-core slices")
	}
}

func TestTotalsAndStalls(t *testing.T) {
	s := New(3)
	s.Instructions[0], s.Instructions[1], s.Instructions[2] = 10, 20, 30
	if s.TotalInstructions() != 60 {
		t.Fatal("TotalInstructions wrong")
	}
	s.WBDelay[0], s.WBImbalance[1], s.SyncDelay[2] = 5, 7, 9
	wb, imb, sync := s.StallTotals()
	if wb != 5 || imb != 7 || sync != 9 {
		t.Fatalf("StallTotals = %d %d %d", wb, imb, sync)
	}
}

func TestICHKFractions(t *testing.T) {
	s := New(4)
	if s.AvgICHKFraction() != 0 || s.AvgICHKExactFraction() != 0 {
		t.Fatal("empty stats should report 0 ICHK")
	}
	s.Checkpoints = append(s.Checkpoints,
		CkptRecord{Size: 4, SizeExact: 4},
		CkptRecord{Size: 2, SizeExact: 1},
	)
	if got := s.AvgICHKFraction(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("AvgICHKFraction = %f, want 0.75", got)
	}
	if got := s.AvgICHKExactFraction(); math.Abs(got-0.625) > 1e-9 {
		t.Fatalf("AvgICHKExactFraction = %f, want 0.625", got)
	}
	if got := s.ICHKFalsePositiveIncreasePct(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("FP increase = %f%%, want 20%%", got)
	}
}

func TestFPIncreaseZeroWhenNoExact(t *testing.T) {
	s := New(4)
	s.Checkpoints = append(s.Checkpoints, CkptRecord{Size: 2, SizeExact: 0})
	if s.ICHKFalsePositiveIncreasePct() != 0 {
		t.Fatal("FP increase with zero exact baseline should be 0")
	}
}

func TestAvgCheckpointInterval(t *testing.T) {
	s := New(4)
	s.EndCycle = 1000
	// No checkpoints: interval is the whole run.
	if got := s.AvgCheckpointInterval(); got != 1000 {
		t.Fatalf("interval = %f, want 1000", got)
	}
	// 8 participations over 4 procs = 2 checkpoints each = 500 cycles.
	s.Checkpoints = append(s.Checkpoints, CkptRecord{Size: 4}, CkptRecord{Size: 4})
	if got := s.AvgCheckpointInterval(); math.Abs(got-500) > 1e-9 {
		t.Fatalf("interval = %f, want 500", got)
	}
}

func TestMessageIncreasePct(t *testing.T) {
	s := New(1)
	if s.MessageIncreasePct() != 0 {
		t.Fatal("no traffic should report 0%")
	}
	s.CohMessages, s.DepMessages = 200, 10
	if got := s.MessageIncreasePct(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("message increase = %f%%, want 5%%", got)
	}
}

func TestAvgRecoveryCycles(t *testing.T) {
	s := New(2)
	if s.AvgRecoveryCycles() != 0 {
		t.Fatal("no rollbacks should report 0")
	}
	s.Rollbacks = append(s.Rollbacks,
		RollRecord{Start: 100, End: 300},
		RollRecord{Start: 500, End: 900},
	)
	if got := s.AvgRecoveryCycles(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("avg recovery = %f, want 300", got)
	}
}

func TestSnapshotDistinguishesAndMatches(t *testing.T) {
	a, b := New(4), New(4)
	a.L1Hits, b.L1Hits = 7, 7
	a.Instructions[2], b.Instructions[2] = 100, 100
	a.Checkpoints = append(a.Checkpoints, CkptRecord{Initiator: 1, Size: 3, Lines: 9})
	b.Checkpoints = append(b.Checkpoints, CkptRecord{Initiator: 1, Size: 3, Lines: 9})
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("identical stats produced different snapshots")
	}
	b.Rollbacks = append(b.Rollbacks, RollRecord{Initiator: 2, Size: 1})
	if a.Snapshot() == b.Snapshot() {
		t.Fatal("snapshot missed a rollback-record difference")
	}
	c := New(4)
	c.L1Hits = 7
	c.Instructions[2] = 100
	c.Checkpoints = append(c.Checkpoints, CkptRecord{Initiator: 1, Size: 3, Lines: 8})
	if a.Snapshot() == c.Snapshot() {
		t.Fatal("snapshot missed a checkpoint-record difference")
	}
}
