// Package stats collects the measurements the Rebound evaluation
// reports: checkpoint interaction-set sizes (Figs 6.1/6.2), the
// checkpointing-overhead breakdown into WBDelay / WBImbalanceDelay /
// SyncDelay / IPCDelay (Fig 6.5), recovery latencies (Fig 6.6c), log
// footprints and message overheads (Table 6.1), and the raw event
// counts the power model converts into energy (Figs 6.6b and 6.8).
package stats

import (
	"fmt"
	"reflect"

	"repro/internal/sim"
)

// CkptRecord describes one completed checkpoint.
type CkptRecord struct {
	Initiator int
	// Size is the number of processors in the Interaction Set for
	// Checkpointing (ICHK). For the Global scheme it is always NProcs.
	Size int
	// SizeStatic is the interaction set a fully synchronous collection
	// would have gathered from the (bloom-filtered) Dep registers at
	// checkpoint time; Size can come out smaller when the distributed
	// protocol's Busy/Decline dynamics fragment the set. SizeExact is
	// the same static closure computed with an ideal (exact) write
	// signature; SizeStatic - SizeExact is the WSIG false-positive
	// inflation measured in Table 6.1 row 1.
	SizeStatic int
	SizeExact  int
	Start      sim.Cycle
	End        sim.Cycle
	// Lines is the number of dirty lines written back for this checkpoint.
	Lines uint64
	// Barrier marks checkpoints triggered by the barrier optimization.
	Barrier bool
	// IO marks checkpoints forced by output I/O.
	IO bool
}

// RollRecord describes one completed rollback (recovery).
type RollRecord struct {
	Initiator int
	// Size is the number of processors in the Interaction Set for
	// Recovery (IREC); Members lists them (used by the fault tests to
	// verify the set covers the poison propagation scope).
	Members []int
	Size    int
	Start   sim.Cycle
	End     sim.Cycle
	// Restored is the number of log entries written back to memory.
	Restored uint64
	// MaxRollbackCycles is the largest distance (in cycles) any
	// processor in the set rolled back, for the no-domino bound.
	MaxRollbackCycles sim.Cycle
}

// Stats is the central measurement sink. One instance is shared by all
// simulator components of a System.
type Stats struct {
	NProcs int

	// Per-core progress.
	Instructions []uint64
	MemOps       []uint64

	// Cache events.
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	L2Evictions        uint64
	L2WritebacksDemand uint64 // displacements between checkpoints
	L2WritebacksCkpt   uint64 // checkpoint-driven writebacks
	L2WritebacksBg     uint64 // of which performed in the background (delayed)

	// Coherence traffic. CohMessages counts baseline protocol messages;
	// DepMessages counts the additional messages needed to maintain
	// LW-ID and the Dep registers (Table 6.1 row 3).
	CohMessages uint64
	DepMessages uint64

	// Memory-system events.
	MemReads, MemWrites uint64
	MemQueueCycles      uint64 // total cycles requests spent queued at channels

	// Log events.
	LogEntries, LogBytes uint64
	LogStubs             uint64
	// LogHighWaterBytes is the maximum log footprint needed to cover
	// one checkpoint interval (Table 6.1 row 2 definition: checkpoint
	// writebacks plus unique displacements until the next checkpoint).
	LogHighWaterBytes uint64

	// Checkpoint-protocol messages (CK?, Accept, Roll?, ...).
	ProtoMessages uint64

	// Dep-register pressure: cycles cores stalled waiting for a free
	// Dep register set (§4.2).
	DepStallCycles uint64

	// Per-core checkpoint stall accounting, in cycles (Fig 6.5).
	WBDelay     []uint64 // stalled writing back own dirty lines
	WBImbalance []uint64 // done, waiting for the rest of the set
	SyncDelay   []uint64 // protocol coordination cost
	RollStall   []uint64 // stalled during rollback/recovery

	Checkpoints []CkptRecord
	Rollbacks   []RollRecord

	// EndCycle is the cycle at which the run finished.
	EndCycle sim.Cycle

	// WSIG false-positive accounting (from sig.Paired).
	WSIGTests, WSIGFalsePositives uint64
}

// New returns a Stats sized for n processors.
func New(n int) *Stats {
	return &Stats{
		NProcs:       n,
		Instructions: make([]uint64, n),
		MemOps:       make([]uint64, n),
		WBDelay:      make([]uint64, n),
		WBImbalance:  make([]uint64, n),
		SyncDelay:    make([]uint64, n),
		RollStall:    make([]uint64, n),
	}
}

// Snapshot returns a deterministic, byte-comparable serialization of
// every counter and record in s — per-core slices, checkpoint and
// rollback histories included. Two runs are considered identical
// exactly when their Snapshots are equal; the determinism suite uses
// this to prove parallel experiment execution matches serial. Stats
// holds only scalars and slices (no maps), so the rendering is stable
// across processes, and newly added fields are covered automatically.
func (s *Stats) Snapshot() string {
	return fmt.Sprintf("%+v", *s)
}

// CopyInto deep-copies every counter and record of s into dst, reusing
// dst's slice storage. dst must be sized for the same processor count.
// It is the capture/restore primitive of the machine snapshot engine:
// the same Stats object stays wired into every simulator component, and
// its contents are rolled back in place.
func (s *Stats) CopyInto(dst *Stats) {
	if dst.NProcs != s.NProcs {
		panic("stats: CopyInto across different processor counts")
	}
	// Whole-struct assignment first, so every scalar — including fields
	// added after this function was written — is covered automatically,
	// matching the property Snapshot() gets from %+v. Then the slice
	// headers are repointed back at dst's storage and deep-copied.
	instr, memOps := dst.Instructions, dst.MemOps
	wbd, wbi, syn, roll := dst.WBDelay, dst.WBImbalance, dst.SyncDelay, dst.RollStall
	ckpts, rolls := dst.Checkpoints, dst.Rollbacks
	*dst = *s
	perProc := func(d *[]uint64, buf, src []uint64) { *d = append(buf[:0], src...) }
	perProc(&dst.Instructions, instr, s.Instructions)
	perProc(&dst.MemOps, memOps, s.MemOps)
	perProc(&dst.WBDelay, wbd, s.WBDelay)
	perProc(&dst.WBImbalance, wbi, s.WBImbalance)
	perProc(&dst.SyncDelay, syn, s.SyncDelay)
	perProc(&dst.RollStall, roll, s.RollStall)
	dst.Checkpoints = append(ckpts[:0], s.Checkpoints...)
	dst.Rollbacks = append(rolls[:0], s.Rollbacks...)
	for i := range dst.Rollbacks {
		// Members must not be shared: the source records stay live.
		dst.Rollbacks[i].Members = append([]int(nil), s.Rollbacks[i].Members...)
	}
}

// AddInto accumulates every counter of s into dst: scalars and per-core
// slices sum elementwise, EndCycle takes the max, and checkpoint /
// rollback records append in call order. It is the fold step of the
// event-plane machine, which accounts each engine shard into a private
// Stats during parallel epochs and sums the shards into the machine-
// level Stats on demand. Accumulation is commutative, so the fold is
// independent of shard count and order (records excepted — the event
// plane runs schemes that produce none). Implemented by reflection so
// that a field added to Stats without an aggregation rule fails loudly
// here instead of silently vanishing from folded runs.
func (s *Stats) AddInto(dst *Stats) {
	if dst.NProcs != s.NProcs {
		panic("stats: AddInto across different processor counts")
	}
	sv := reflect.ValueOf(s).Elem()
	dv := reflect.ValueOf(dst).Elem()
	for i := 0; i < sv.NumField(); i++ {
		name := sv.Type().Field(i).Name
		if name == "NProcs" {
			continue
		}
		src, d := sv.Field(i), dv.Field(i)
		if name == "EndCycle" {
			if src.Uint() > d.Uint() {
				d.SetUint(src.Uint())
			}
			continue
		}
		switch src.Kind() {
		case reflect.Uint64:
			d.SetUint(d.Uint() + src.Uint())
		case reflect.Slice:
			switch xs := src.Interface().(type) {
			case []uint64:
				dxs := d.Interface().([]uint64)
				if len(dxs) != len(xs) {
					panic("stats: AddInto per-core slice length mismatch")
				}
				for j, v := range xs {
					dxs[j] += v
				}
			case []CkptRecord, []RollRecord:
				d.Set(reflect.AppendSlice(d, src))
			default:
				panic(fmt.Sprintf("stats: AddInto has no rule for field %s (%T)", name, xs))
			}
		default:
			panic(fmt.Sprintf("stats: AddInto has no rule for field %s (kind %v)", name, src.Kind()))
		}
	}
}

// Reset zeroes every counter and record in place (Machine.Reset),
// keeping slice storage.
func (s *Stats) Reset() {
	n := s.NProcs
	zero := func(xs []uint64) { clear(xs) }
	zero(s.Instructions)
	zero(s.MemOps)
	zero(s.WBDelay)
	zero(s.WBImbalance)
	zero(s.SyncDelay)
	zero(s.RollStall)
	ckpts, rolls := s.Checkpoints[:0], s.Rollbacks[:0]
	*s = Stats{NProcs: n,
		Instructions: s.Instructions, MemOps: s.MemOps,
		WBDelay: s.WBDelay, WBImbalance: s.WBImbalance,
		SyncDelay: s.SyncDelay, RollStall: s.RollStall,
		Checkpoints: ckpts, Rollbacks: rolls}
}

// TotalInstructions sums instructions across cores.
func (s *Stats) TotalInstructions() uint64 {
	var t uint64
	for _, v := range s.Instructions {
		t += v
	}
	return t
}

func sum(xs []uint64) uint64 {
	var t uint64
	for _, v := range xs {
		t += v
	}
	return t
}

// StallTotals returns the summed per-category checkpoint stall cycles.
func (s *Stats) StallTotals() (wb, imb, sync uint64) {
	return sum(s.WBDelay), sum(s.WBImbalance), sum(s.SyncDelay)
}

// AvgICHKFraction returns the average interaction-set size across all
// checkpoints as a fraction of the processor count (Figs 6.1/6.2). A
// run with no checkpoints returns 0.
func (s *Stats) AvgICHKFraction() float64 {
	if len(s.Checkpoints) == 0 {
		return 0
	}
	var t int
	for _, c := range s.Checkpoints {
		t += c.Size
	}
	return float64(t) / float64(len(s.Checkpoints)) / float64(s.NProcs)
}

// AvgICHKExactFraction is AvgICHKFraction with an ideal write signature.
func (s *Stats) AvgICHKExactFraction() float64 {
	if len(s.Checkpoints) == 0 {
		return 0
	}
	var t int
	for _, c := range s.Checkpoints {
		t += c.SizeExact
	}
	return float64(t) / float64(len(s.Checkpoints)) / float64(s.NProcs)
}

// AvgICHKStaticFraction is the average static (bloom) closure size.
func (s *Stats) AvgICHKStaticFraction() float64 {
	if len(s.Checkpoints) == 0 {
		return 0
	}
	var t int
	for _, c := range s.Checkpoints {
		if c.SizeStatic > 0 {
			t += c.SizeStatic
		} else {
			t += c.Size
		}
	}
	return float64(t) / float64(len(s.Checkpoints)) / float64(s.NProcs)
}

// ICHKFalsePositiveIncreasePct returns the percentage increase of the
// interaction set caused by WSIG false positives (Table 6.1 row 1):
// the static bloom closure versus the static exact closure, so the
// comparison is not polluted by protocol timing.
func (s *Stats) ICHKFalsePositiveIncreasePct() float64 {
	exact := s.AvgICHKExactFraction()
	if exact == 0 {
		return 0
	}
	pct := (s.AvgICHKStaticFraction() - exact) / exact * 100
	if pct < 0 {
		return 0
	}
	return pct
}

// AvgCheckpointInterval returns the mean number of cycles between the
// checkpoints a processor participates in, averaged over processors
// (the metric of Fig 6.7). Every member of a checkpoint's interaction
// set counts as one participation, so the average interval is the run
// length divided by the mean participations per processor. A run with
// no checkpoints returns the full run length.
func (s *Stats) AvgCheckpointInterval() float64 {
	if s.NProcs == 0 {
		return 0
	}
	var participations float64
	for _, c := range s.Checkpoints {
		participations += float64(c.Size)
	}
	perProc := participations / float64(s.NProcs)
	if perProc == 0 {
		return float64(s.EndCycle)
	}
	return float64(s.EndCycle) / perProc
}

// AvgCheckpointIntervalInstr is AvgCheckpointInterval measured in
// per-processor instructions instead of cycles: the mean number of
// instructions a processor commits between the checkpoints it
// participates in. This is the robust form of Fig 6.7's metric when
// checkpoints are triggered by instruction counts.
func (s *Stats) AvgCheckpointIntervalInstr() float64 {
	if s.NProcs == 0 {
		return 0
	}
	var participations float64
	for _, c := range s.Checkpoints {
		participations += float64(c.Size)
	}
	perProc := participations / float64(s.NProcs)
	instrPerProc := float64(s.TotalInstructions()) / float64(s.NProcs)
	if perProc == 0 {
		return instrPerProc
	}
	return instrPerProc / perProc
}

// MessageIncreasePct returns the extra coherence messages needed to
// maintain LW-ID and Dep registers, as a percentage of the baseline
// protocol messages (Table 6.1 row 3).
func (s *Stats) MessageIncreasePct() float64 {
	if s.CohMessages == 0 {
		return 0
	}
	return float64(s.DepMessages) / float64(s.CohMessages) * 100
}

// AvgRecoveryCycles returns the mean recovery latency across rollbacks.
func (s *Stats) AvgRecoveryCycles() float64 {
	if len(s.Rollbacks) == 0 {
		return 0
	}
	var t uint64
	for _, r := range s.Rollbacks {
		t += uint64(r.End - r.Start)
	}
	return float64(t) / float64(len(s.Rollbacks))
}
