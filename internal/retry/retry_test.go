package retry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDelayGeometricUntilCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // ceiling: capped forever after
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayCapIsHardCeilingUnderJitter(t *testing.T) {
	p := Policy{Base: 1 * time.Millisecond, Cap: 64 * time.Millisecond, Jitter: 0.5, Seed: 42}
	for i := 0; i < 200; i++ {
		d := p.Delay(i)
		if d > p.Cap {
			t.Fatalf("Delay(%d) = %v exceeds cap %v", i, d, p.Cap)
		}
		if d <= 0 {
			t.Fatalf("Delay(%d) = %v not positive", i, d)
		}
	}
	// Past the ramp, jitter must still shave at most Jitter*Cap.
	if d := p.Delay(100); d < p.Cap/2 {
		t.Fatalf("Delay(100) = %v below jitter floor %v", d, p.Cap/2)
	}
}

func TestDelayDeterministicPerSeed(t *testing.T) {
	a := Policy{Base: time.Millisecond, Cap: time.Second, Jitter: 0.8, Seed: 7}
	b := Policy{Base: time.Millisecond, Cap: time.Second, Jitter: 0.8, Seed: 7}
	c := Policy{Base: time.Millisecond, Cap: time.Second, Jitter: 0.8, Seed: 8}
	diff := false
	for i := 0; i < 64; i++ {
		if a.Delay(i) != b.Delay(i) {
			t.Fatalf("same seed diverged at attempt %d", i)
		}
		if a.Delay(i) != c.Delay(i) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestDelayZeroValueUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0); got != DefaultBase {
		t.Fatalf("zero-value Delay(0) = %v, want %v", got, DefaultBase)
	}
	if got := p.Delay(1000); got != DefaultCap {
		t.Fatalf("zero-value Delay(1000) = %v, want cap %v", got, DefaultCap)
	}
}

func TestDoAttemptCeiling(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond, Attempts: 3}
	calls := 0
	errBoom := errors.New("boom")
	err := p.Do(context.Background(), func() error { calls++; return errBoom })
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want wrapped %v", err, errBoom)
	}
}

func TestDoStopsRetryingOnSuccess(t *testing.T) {
	p := Policy{Base: time.Microsecond, Cap: time.Microsecond, Attempts: 10}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

func TestDoHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: time.Hour} // unlimited attempts, long waits
	ctx, cancel := context.WithCancel(context.Background())
	errBoom := errors.New("boom")
	done := make(chan error, 1)
	ran := make(chan struct{})
	var once sync.Once
	go func() {
		done <- p.Do(ctx, func() error { once.Do(func() { close(ran) }); return errBoom })
	}()
	<-ran // cancel only after a failed attempt, so the last error joins in
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want the last fn error joined in", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
}
