// Package retry is the cluster's backoff helper: capped exponential
// backoff with deterministic-seedable jitter. The worker client loop
// and the remote store client retry every transport operation through
// one Policy, so a coordinator restart or a dropped connection costs a
// bounded, jittered wait instead of a hot loop or a worker death.
//
// Determinism contract, in the spirit of harness.DeriveSeed: the delay
// of attempt k is a pure function of (Policy, Seed, k). Production
// callers seed from the worker identity so a fleet's retries spread
// out; tests seed constants and assert exact delays.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes a capped exponential backoff schedule. The zero
// value is usable: Default's base/cap/factor with no jitter and
// unlimited attempts.
type Policy struct {
	// Base is the delay before the first retry; 0 selects 50ms.
	Base time.Duration
	// Cap bounds every delay; 0 selects 5s. Delays grow geometrically
	// until they hit Cap and stay there (the "ceiling").
	Cap time.Duration
	// Factor is the geometric growth rate; values < 1 (including 0)
	// select 2.
	Factor float64
	// Jitter in [0, 1] randomizes each delay downward: the delay of
	// attempt k is drawn from [d*(1-Jitter), d] where d is the
	// deterministic schedule value. 0 disables jitter.
	Jitter float64
	// Attempts bounds how many times Do invokes fn; <= 0 means
	// unlimited (Do then retries until the context is cancelled).
	Attempts int
	// Seed selects the jitter stream. Two Policies with equal fields
	// (Seed included) produce identical delay sequences.
	Seed uint64
}

// Defaults for zero-valued Policy fields.
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultCap    = 5 * time.Second
	DefaultFactor = 2.0
)

func (p Policy) base() time.Duration {
	if p.Base <= 0 {
		return DefaultBase
	}
	return p.Base
}

func (p Policy) cap() time.Duration {
	if p.Cap <= 0 {
		return DefaultCap
	}
	return p.Cap
}

func (p Policy) factor() float64 {
	if p.Factor < 1 {
		return DefaultFactor
	}
	return p.Factor
}

// splitmix64 is the finisher used across the repo (harness.DeriveSeed,
// campaign.TrialSeed) to turn a counter into a well-mixed word.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Delay returns the backoff before retry number attempt (0-based): the
// capped geometric schedule value, jittered downward deterministically
// from (Seed, attempt). It is a pure function — calling it twice with
// the same inputs returns the same duration.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.base())
	f := p.factor()
	capd := float64(p.cap())
	for i := 0; i < attempt && d < capd; i++ {
		d *= f
	}
	if d > capd {
		d = capd
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [0, 1) from the (Seed, attempt) stream; shave up
		// to j*d off the schedule value. Jitter only ever shortens the
		// delay, so Cap stays a hard ceiling.
		u := float64(splitmix64(p.Seed^uint64(attempt))>>11) / float64(uint64(1)<<53)
		d -= j * d * u
	}
	return time.Duration(d)
}

// Do invokes fn until it succeeds, the attempt budget is spent, or ctx
// is cancelled, sleeping Delay(k) between attempts. It returns nil on
// the first success; otherwise the last error (wrapped with the
// attempt count), or the context error when cancelled mid-wait.
func (p Policy) Do(ctx context.Context, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var last error
	for attempt := 0; p.Attempts <= 0 || attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(p.Delay(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return errors.Join(ctx.Err(), last)
			}
		}
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		if last = fn(); last == nil {
			return nil
		}
	}
	return fmt.Errorf("retry: gave up after %d attempts: %w", p.Attempts, last)
}
