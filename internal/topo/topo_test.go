package topo

import (
	"testing"
	"testing/quick"
)

func TestHomeInRangeAndStable(t *testing.T) {
	f := func(line uint64, n uint8) bool {
		tp := New(int(n%64) + 1)
		h := tp.Home(line)
		return h >= 0 && h < tp.N && h == tp.Home(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeSpreads(t *testing.T) {
	tp := New(16)
	counts := make([]int, 16)
	for i := uint64(0); i < 16000; i++ {
		counts[tp.Home(i)]++
	}
	for h, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("home %d got %d of 16000 lines; interleaving is skewed", h, c)
		}
	}
}

func TestLatencySymmetricAndPositive(t *testing.T) {
	tp := New(64)
	for i := 0; i < tp.N; i += 7 {
		for j := 0; j < tp.N; j += 5 {
			a, b := tp.Latency(i, j), tp.Latency(j, i)
			if a != b {
				t.Fatalf("latency asymmetric: %d vs %d", a, b)
			}
			if a < tp.Base {
				t.Fatalf("latency below base: %d", a)
			}
		}
	}
	if tp.Latency(3, 3) != tp.Base {
		t.Fatal("self latency should be the base cost")
	}
}

func TestHops(t *testing.T) {
	tp := New(64) // 8x8 mesh
	if got := tp.Hops(0, 63); got != 14 {
		t.Fatalf("corner-to-corner hops = %d, want 14", got)
	}
	if got := tp.Hops(0, 1); got != 1 {
		t.Fatalf("neighbour hops = %d, want 1", got)
	}
}

func TestAvgRemoteRoundTripNearPaper(t *testing.T) {
	tp := New(64)
	avg := tp.AvgRemoteRoundTrip()
	// Paper: ~60 cycles average round trip between L2s at 64 tiles.
	if avg < 40 || avg > 90 {
		t.Fatalf("avg remote RT = %.1f, want in the vicinity of 60", avg)
	}
}

func TestSingleTile(t *testing.T) {
	tp := New(1)
	if tp.Home(12345) != 0 {
		t.Fatal("single-tile home must be 0")
	}
	if tp.AvgRemoteRoundTrip() != float64(2*tp.Base) {
		t.Fatal("single-tile avg RT should be the self round trip")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}
