// Package topo models the tiled-manycore layout of Rebound's Figure 3.1:
// each tile holds a core, private L1/L2 and a directory module slice.
// It provides the address-to-home-directory mapping and the multistage
// interconnect latency model of the simulated configuration (Fig 4.3a:
// ~60-cycle average round trip between L2s at 64 tiles).
package topo

import "repro/internal/sim"

// Topology describes a chip with N tiles on a dimX × dimY mesh.
type Topology struct {
	N          int
	dimX, dimY int

	// Base is the fixed per-message overhead (injection, routing setup).
	Base sim.Cycle
	// PerHop is the added latency per mesh hop.
	PerHop sim.Cycle
}

// New returns a topology for n tiles with latency parameters tuned so
// that the average L2-to-L2 round trip at 64 tiles is close to the
// paper's 60 cycles.
func New(n int) *Topology {
	if n < 1 {
		panic("topo: need at least one tile")
	}
	x := 1
	for x*x < n {
		x++
	}
	y := (n + x - 1) / x
	return &Topology{N: n, dimX: x, dimY: y, Base: 8, PerHop: 4}
}

// Home returns the tile whose directory module owns line addr.
// Lines are interleaved across all tiles.
func (t *Topology) Home(line uint64) int {
	// Mix the address first so that strided access patterns still
	// spread across directories.
	x := line
	x = (x ^ (x >> 17)) * 0xed5ad4bb
	return int(x % uint64(t.N))
}

// coords returns the mesh position of tile i.
func (t *Topology) coords(i int) (int, int) {
	return i % t.dimX, i / t.dimX
}

// Hops returns the Manhattan distance between two tiles.
func (t *Topology) Hops(from, to int) int {
	fx, fy := t.coords(from)
	tx, ty := t.coords(to)
	dx, dy := fx-tx, fy-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the one-way message latency between two tiles.
// A tile talking to itself still pays the base cost (L2-to-directory
// handoff within the tile).
func (t *Topology) Latency(from, to int) sim.Cycle {
	return t.Base + sim.Cycle(t.Hops(from, to))*t.PerHop
}

// RoundTrip returns the two-way latency between tiles.
func (t *Topology) RoundTrip(from, to int) sim.Cycle {
	return 2 * t.Latency(from, to)
}

// AvgRemoteRoundTrip returns the average round-trip latency from tile 0
// to every other tile, a sanity metric against the paper's 60 cycles.
func (t *Topology) AvgRemoteRoundTrip() float64 {
	if t.N == 1 {
		return float64(t.RoundTrip(0, 0))
	}
	var sum sim.Cycle
	for i := 1; i < t.N; i++ {
		sum += t.RoundTrip(0, i)
	}
	return float64(sum) / float64(t.N-1)
}
