package mem

import "fmt"

// LineTable interns line addresses into small dense IDs. One table is
// shared per machine by the memory, the undo log and the coherence
// directory, so the per-line state of all three lives in flat slices
// indexed by the same ID: a transaction pays one hash lookup (the
// intern) instead of one map probe per structure. Line address spaces
// are small and fixed per workload profile, so the table stops growing
// after warm-up and the steady-state path is allocation-free.
type LineTable struct {
	ids   map[uint64]int32
	addrs []uint64

	// Sharded-intern mode (event plane): each shard interns the
	// addresses of its own hash partition without coordination, and IDs
	// are assigned so that sh.Shard(id) == sh.AddrShard(addr) — the slot
	// is the per-shard intern order. The flat ID space can then contain
	// holes (shards intern at different rates), so the flat addrs/ids
	// fields stay nil and the flat accessors dispatch per shard.
	sharded    bool
	sh         Sharding
	shardIDs   []map[uint64]int32
	shardAddrs [][]uint64
}

// NewLineTable returns an empty table.
func NewLineTable() *LineTable {
	return &LineTable{ids: make(map[uint64]int32, 1024)}
}

// NewLineTableSharded returns an empty table in sharded-intern mode for
// the given layout. During a parallel epoch each engine shard may call
// ID/Lookup/Addr only for addresses (or IDs) of its own partition.
func NewLineTableSharded(sh Sharding) *LineTable {
	t := &LineTable{sharded: true, sh: sh,
		shardIDs:   make([]map[uint64]int32, sh.N()),
		shardAddrs: make([][]uint64, sh.N()),
	}
	for i := range t.shardIDs {
		t.shardIDs[i] = make(map[uint64]int32, 1024/sh.N()+1)
	}
	return t
}

// Sharded reports whether the table is in sharded-intern mode.
func (t *LineTable) Sharded() bool { return t.sharded }

// ID returns the dense ID of addr, interning it on first touch.
func (t *LineTable) ID(addr uint64) int32 {
	if t.sharded {
		shd := t.sh.AddrShard(addr)
		m := t.shardIDs[shd]
		if id, ok := m[addr]; ok {
			return id
		}
		id := t.sh.ID(shd, len(t.shardAddrs[shd]))
		m[addr] = id
		t.shardAddrs[shd] = append(t.shardAddrs[shd], addr)
		return id
	}
	if id, ok := t.ids[addr]; ok {
		return id
	}
	id := int32(len(t.addrs))
	t.ids[addr] = id
	t.addrs = append(t.addrs, addr)
	return id
}

// Lookup returns the ID of addr without interning.
func (t *LineTable) Lookup(addr uint64) (int32, bool) {
	if t.sharded {
		id, ok := t.shardIDs[t.sh.AddrShard(addr)][addr]
		return id, ok
	}
	id, ok := t.ids[addr]
	return id, ok
}

// Addr returns the address interned as id.
func (t *LineTable) Addr(id int32) uint64 {
	if t.sharded {
		return t.shardAddrs[t.sh.Shard(id)][t.sh.Slot(id)]
	}
	return t.addrs[id]
}

// Len returns the number of interned addresses.
func (t *LineTable) Len() int {
	if t.sharded {
		n := 0
		for _, a := range t.shardAddrs {
			n += len(a)
		}
		return n
	}
	return len(t.addrs)
}

// ShardAddrs returns shard sh's interned addresses in slot order
// (sharded-intern mode only). Shared storage: callers must not mutate
// or retain across interning.
func (t *LineTable) ShardAddrs(sh int) []uint64 {
	if !t.sharded {
		panic("mem: ShardAddrs on a flat-intern LineTable")
	}
	return t.shardAddrs[sh]
}

// AdoptShardPrefix is AdoptPrefix for one shard of a sharded-intern
// table: it makes shard sh's first len(addrs) slots map exactly the
// given addresses, interning any unknown ones.
func (t *LineTable) AdoptShardPrefix(sh int, addrs []uint64) error {
	if !t.sharded {
		panic("mem: AdoptShardPrefix on a flat-intern LineTable")
	}
	have := t.shardAddrs[sh]
	for i, a := range addrs {
		if i < len(have) {
			if have[i] != a {
				return fmt.Errorf("mem: line table shard %d slot %d maps %#x, snapshot expects %#x", sh, i, have[i], a)
			}
			continue
		}
		t.shardIDs[sh][a] = t.sh.ID(sh, i)
		t.shardAddrs[sh] = append(t.shardAddrs[sh], a)
	}
	return nil
}

// Addrs returns the interned addresses in ID order (flat-intern mode
// only — a sharded table's ID space is not contiguous). Shared storage:
// callers must not mutate or retain across interning.
func (t *LineTable) Addrs() []uint64 {
	if t.sharded {
		panic("mem: Addrs on a sharded-intern LineTable (use ShardAddrs)")
	}
	return t.addrs
}

// AdoptPrefix makes the table's first len(addrs) IDs map exactly the
// given addresses, interning any the table does not know yet. It errors
// if an existing ID already maps a different address — the caller is
// restoring a snapshot into a machine with an incompatible interning
// history. A table longer than addrs is fine: IDs are append-only, so
// the captured prefix is still intact.
func (t *LineTable) AdoptPrefix(addrs []uint64) error {
	if t.sharded {
		panic("mem: AdoptPrefix on a sharded-intern LineTable (use AdoptShardPrefix)")
	}
	n := len(t.addrs)
	for i, a := range addrs {
		if i < n {
			if t.addrs[i] != a {
				return fmt.Errorf("mem: line table id %d maps %#x, snapshot expects %#x", i, t.addrs[i], a)
			}
			continue
		}
		t.ids[a] = int32(i)
		t.addrs = append(t.addrs, a)
	}
	return nil
}
