package mem

import "fmt"

// LineTable interns line addresses into small dense IDs. One table is
// shared per machine by the memory, the undo log and the coherence
// directory, so the per-line state of all three lives in flat slices
// indexed by the same ID: a transaction pays one hash lookup (the
// intern) instead of one map probe per structure. Line address spaces
// are small and fixed per workload profile, so the table stops growing
// after warm-up and the steady-state path is allocation-free.
type LineTable struct {
	ids   map[uint64]int32
	addrs []uint64
}

// NewLineTable returns an empty table.
func NewLineTable() *LineTable {
	return &LineTable{ids: make(map[uint64]int32, 1024)}
}

// ID returns the dense ID of addr, interning it on first touch.
func (t *LineTable) ID(addr uint64) int32 {
	if id, ok := t.ids[addr]; ok {
		return id
	}
	id := int32(len(t.addrs))
	t.ids[addr] = id
	t.addrs = append(t.addrs, addr)
	return id
}

// Lookup returns the ID of addr without interning.
func (t *LineTable) Lookup(addr uint64) (int32, bool) {
	id, ok := t.ids[addr]
	return id, ok
}

// Addr returns the address interned as id.
func (t *LineTable) Addr(id int32) uint64 { return t.addrs[id] }

// Len returns the number of interned addresses.
func (t *LineTable) Len() int { return len(t.addrs) }

// Addrs returns the interned addresses in ID order. Shared storage:
// callers must not mutate or retain across interning.
func (t *LineTable) Addrs() []uint64 { return t.addrs }

// AdoptPrefix makes the table's first len(addrs) IDs map exactly the
// given addresses, interning any the table does not know yet. It errors
// if an existing ID already maps a different address — the caller is
// restoring a snapshot into a machine with an incompatible interning
// history. A table longer than addrs is fine: IDs are append-only, so
// the captured prefix is still intact.
func (t *LineTable) AdoptPrefix(addrs []uint64) error {
	n := len(t.addrs)
	for i, a := range addrs {
		if i < n {
			if t.addrs[i] != a {
				return fmt.Errorf("mem: line table id %d maps %#x, snapshot expects %#x", i, t.addrs[i], a)
			}
			continue
		}
		t.ids[a] = int32(i)
		t.addrs = append(t.addrs, a)
	}
	return nil
}
