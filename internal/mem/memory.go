// Package mem models Rebound's off-chip safe memory (§3.2): the line
// store itself, a DDR2-like two-channel bandwidth model, the software
// undo log written by the memory controller (§3.3.3, following ReVive),
// and the memory controller that performs old-value logging on every
// writeback. Off-chip memory is assumed fault-free (ECC / NVM / raiding
// in the paper); the simulator therefore never corrupts it directly —
// corruption arrives only through writebacks of poisoned cache lines.
package mem

// Word is the content of one 32-byte cache line, abstracted to a single
// value plus a poison bit. The poison bit is the fault-injection shadow:
// a faulty core poisons the values it writes, and poison propagates to
// any consumer. It models corruption for verification; real hardware
// has no such bit.
type Word struct {
	Val    uint64
	Poison bool
}

// Memory is the line-addressed main memory. Absent lines read as zero.
type Memory struct {
	lines map[uint64]Word
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{lines: make(map[uint64]Word)} }

// Read returns the current content of line addr.
func (m *Memory) Read(addr uint64) Word { return m.lines[addr] }

// Write stores w at line addr.
func (m *Memory) Write(addr uint64, w Word) {
	if w == (Word{}) {
		delete(m.lines, addr)
		return
	}
	m.lines[addr] = w
}

// Len returns the number of non-zero lines.
func (m *Memory) Len() int { return len(m.lines) }

// ForEach calls fn for every non-zero line (iteration order is not
// deterministic; callers that need determinism must sort).
func (m *Memory) ForEach(fn func(addr uint64, w Word)) {
	for a, w := range m.lines {
		fn(a, w)
	}
}

// Snapshot returns a deep copy of the memory contents, used by tests to
// compare pre-fault and post-recovery state.
func (m *Memory) Snapshot() map[uint64]Word {
	s := make(map[uint64]Word, len(m.lines))
	for a, w := range m.lines {
		s[a] = w
	}
	return s
}

// AnyPoison returns one poisoned line address if any line is poisoned.
func (m *Memory) AnyPoison() (uint64, bool) {
	for a, w := range m.lines {
		if w.Poison {
			return a, true
		}
	}
	return 0, false
}
