// Package mem models Rebound's off-chip safe memory (§3.2): the line
// store itself, a DDR2-like two-channel bandwidth model, the software
// undo log written by the memory controller (§3.3.3, following ReVive),
// and the memory controller that performs old-value logging on every
// writeback. Off-chip memory is assumed fault-free (ECC / NVM / raiding
// in the paper); the simulator therefore never corrupts it directly —
// corruption arrives only through writebacks of poisoned cache lines.
package mem

import "repro/internal/cow"

// Word is the content of one 32-byte cache line, abstracted to a single
// value plus a poison bit. The poison bit is the fault-injection shadow:
// a faulty core poisons the values it writes, and poison propagates to
// any consumer. It models corruption for verification; real hardware
// has no such bit.
type Word struct {
	Val    uint64
	Poison bool
}

// Memory is the line-addressed main memory. Absent lines read as zero.
// Lines live in a flat slice indexed by interned line IDs (LineTable);
// the table is shared with the undo log and the coherence directory so
// a hot-path transaction interns its address once.
type Memory struct {
	tab     *LineTable
	words   []Word
	nonzero int

	// dirty tracks the pages of words mutated since the last Load /
	// LoadDelta, for the snapshot engine's copy-on-write restore.
	// Growth in WriteID is covered by the mark on the written id; the
	// appended filler words are the zero value a load would reset a
	// post-capture tail to anyway.
	dirty cow.Dirty
}

// NewMemory returns an empty memory with its own line table.
func NewMemory() *Memory { return NewMemoryWith(NewLineTable()) }

// NewMemoryWith returns an empty memory indexing lines through tab.
func NewMemoryWith(tab *LineTable) *Memory { return &Memory{tab: tab} }

// Table returns the line-interning table backing this memory.
func (m *Memory) Table() *LineTable { return m.tab }

// ReadID returns the content of the line interned as id.
func (m *Memory) ReadID(id int32) Word {
	if int(id) >= len(m.words) {
		return Word{}
	}
	return m.words[id]
}

// WriteID stores w at the line interned as id.
func (m *Memory) WriteID(id int32, w Word) {
	for int(id) >= len(m.words) {
		m.words = append(m.words, Word{})
	}
	m.dirty.Mark(int(id))
	old := m.words[id]
	m.words[id] = w
	if (old == Word{}) != (w == Word{}) {
		if w == (Word{}) {
			m.nonzero--
		} else {
			m.nonzero++
		}
	}
}

// Read returns the current content of line addr.
func (m *Memory) Read(addr uint64) Word {
	id, ok := m.tab.Lookup(addr)
	if !ok {
		return Word{}
	}
	return m.ReadID(id)
}

// Write stores w at line addr.
func (m *Memory) Write(addr uint64, w Word) {
	if w == (Word{}) {
		// A zero write into a never-touched line must not intern it.
		if id, ok := m.tab.Lookup(addr); ok {
			m.WriteID(id, w)
		}
		return
	}
	m.WriteID(m.tab.ID(addr), w)
}

// Len returns the number of non-zero lines.
func (m *Memory) Len() int { return m.nonzero }

// ForEach calls fn for every non-zero line (callers that need a
// specific order must sort; the iteration order here is first-touch).
func (m *Memory) ForEach(fn func(addr uint64, w Word)) {
	for id, w := range m.words {
		if w != (Word{}) {
			fn(m.tab.Addr(int32(id)), w)
		}
	}
}

// Snapshot returns a deep copy of the memory contents, used by tests to
// compare pre-fault and post-recovery state.
func (m *Memory) Snapshot() map[uint64]Word {
	s := make(map[uint64]Word, m.nonzero)
	m.ForEach(func(a uint64, w Word) { s[a] = w })
	return s
}

// AnyPoison returns the smallest poisoned line address if any line is
// poisoned. Scanning for the minimum (rather than the first in interned
// order) keeps the answer independent of line-table history, so a
// machine restored from a snapshot — whose table may hold extra lines
// interned by earlier trials — reports the same line a fresh build
// would.
func (m *Memory) AnyPoison() (uint64, bool) {
	var min uint64
	found := false
	for id, w := range m.words {
		if !w.Poison {
			continue
		}
		if a := m.tab.Addr(int32(id)); !found || a < min {
			min, found = a, true
		}
	}
	return min, found
}

// MemorySnapshot is a saved memory image. Save reuses its storage.
type MemorySnapshot struct {
	Words   []Word
	Nonzero int
}

// Save copies the memory contents into s.
func (m *Memory) Save(s *MemorySnapshot) {
	if cap(s.Words) < len(m.words) {
		s.Words = make([]Word, len(m.words))
	} else {
		s.Words = s.Words[:len(m.words)]
	}
	copy(s.Words, m.words)
	s.Nonzero = m.nonzero
}

// Load restores the memory from s, adopting the captured length
// exactly: a longer live slice shrinks (lines interned after the
// capture read as zero again, as in a fresh build — WriteID growth
// appends zero words), a colder one grows.
func (m *Memory) Load(s *MemorySnapshot) {
	if cap(m.words) < len(s.Words) {
		m.words = make([]Word, len(s.Words))
	} else {
		m.words = m.words[:len(s.Words)]
	}
	copy(m.words, s.Words)
	m.nonzero = s.Nonzero
	m.dirty.Clear()
}

// LoadDelta restores the memory from s copying only the pages marked
// dirty since the last load. The caller guarantees the live contents
// were last loaded from this same capture (machine.Restore tracks the
// snapshot identity and generation); anything else must use Load. A
// live slice shorter than the capture falls back to a full load.
//
// Truncating the post-capture tail without zeroing it is safe for the
// same reason Load's shrink is: WriteID growth appends explicit zero
// words, so a line re-interned past the captured length reads as zero
// until (re)written.
func (m *Memory) LoadDelta(s *MemorySnapshot) {
	n := len(s.Words)
	if m.dirty.All() || len(m.words) < n {
		m.Load(s)
		return
	}
	m.dirty.Pages(len(m.words), func(lo, hi int) {
		if lo >= n {
			return // truncated below; growth re-zeroes
		}
		if hi > n {
			hi = n
		}
		copy(m.words[lo:hi], s.Words[lo:hi])
	})
	m.words = m.words[:n]
	m.nonzero = s.Nonzero
	m.dirty.Clear()
}

// Reset zeroes the memory in place. The shared line table is kept —
// interned IDs are behaviourally invisible (see Machine.Reset) and
// re-interning a workload's whole footprint was the expensive part of
// recycling a machine.
func (m *Memory) Reset() {
	clear(m.words)
	m.nonzero = 0
	m.dirty.MarkAll()
}
