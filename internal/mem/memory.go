// Package mem models Rebound's off-chip safe memory (§3.2): the line
// store itself, a DDR2-like two-channel bandwidth model, the software
// undo log written by the memory controller (§3.3.3, following ReVive),
// and the memory controller that performs old-value logging on every
// writeback. Off-chip memory is assumed fault-free (ECC / NVM / raiding
// in the paper); the simulator therefore never corrupts it directly —
// corruption arrives only through writebacks of poisoned cache lines.
package mem

import "repro/internal/cow"

// Word is the content of one 32-byte cache line, abstracted to a single
// value plus a poison bit. The poison bit is the fault-injection shadow:
// a faulty core poisons the values it writes, and poison propagates to
// any consumer. It models corruption for verification; real hardware
// has no such bit.
type Word struct {
	Val    uint64
	Poison bool
}

// Memory is the line-addressed main memory. Absent lines read as zero.
// Lines live in per-shard slices indexed by interned line IDs through
// the machine's Sharding (shard = low ID bits, slot = remaining bits);
// the table is shared with the undo log and the coherence directory so
// a hot-path transaction interns its address once. A 1-shard memory
// degenerates to the historical flat layout (shard 0, slot == id).
type Memory struct {
	tab   *LineTable
	sh    Sharding
	words [][]Word // per shard, indexed by slot
	// nonzero counts non-zero lines per shard. Keeping the counter
	// shard-local (rather than one machine total) is what lets parallel
	// event-plane epochs write disjoint shards without sharing a scalar.
	nonzero []int

	// dirty tracks, per shard, the slot pages mutated since the last
	// Load / LoadDelta, for the snapshot engine's copy-on-write restore.
	// Growth in WriteID is covered by the mark on the written slot; the
	// appended filler words are the zero value a load would reset a
	// post-capture tail to anyway.
	dirty []cow.Dirty
}

// NewMemory returns an empty unsharded memory with its own line table.
func NewMemory() *Memory { return NewMemoryWith(NewLineTable()) }

// NewMemoryWith returns an empty unsharded memory indexing lines
// through tab.
func NewMemoryWith(tab *LineTable) *Memory {
	return NewMemorySharded(tab, NewSharding(1))
}

// NewMemorySharded returns an empty memory indexing lines through tab
// with its word store partitioned by sh.
func NewMemorySharded(tab *LineTable, sh Sharding) *Memory {
	return &Memory{
		tab:     tab,
		sh:      sh,
		words:   make([][]Word, sh.N()),
		nonzero: make([]int, sh.N()),
		dirty:   make([]cow.Dirty, sh.N()),
	}
}

// Table returns the line-interning table backing this memory.
func (m *Memory) Table() *LineTable { return m.tab }

// Sharding returns the state-partition layout; the directory and log
// adopt it so the whole machine shares one shard map.
func (m *Memory) Sharding() Sharding { return m.sh }

// NumShards returns the shard count of the word store.
func (m *Memory) NumShards() int { return len(m.words) }

// ReadID returns the content of the line interned as id.
func (m *Memory) ReadID(id int32) Word {
	sh, sl := m.sh.Shard(id), m.sh.Slot(id)
	if sl >= len(m.words[sh]) {
		return Word{}
	}
	return m.words[sh][sl]
}

// WriteID stores w at the line interned as id.
func (m *Memory) WriteID(id int32, w Word) {
	sh, sl := m.sh.Shard(id), m.sh.Slot(id)
	for sl >= len(m.words[sh]) {
		m.words[sh] = append(m.words[sh], Word{})
	}
	m.dirty[sh].Mark(sl)
	old := m.words[sh][sl]
	m.words[sh][sl] = w
	if (old == Word{}) != (w == Word{}) {
		if w == (Word{}) {
			m.nonzero[sh]--
		} else {
			m.nonzero[sh]++
		}
	}
}

// Read returns the current content of line addr.
func (m *Memory) Read(addr uint64) Word {
	id, ok := m.tab.Lookup(addr)
	if !ok {
		return Word{}
	}
	return m.ReadID(id)
}

// Write stores w at line addr.
func (m *Memory) Write(addr uint64, w Word) {
	if w == (Word{}) {
		// A zero write into a never-touched line must not intern it.
		if id, ok := m.tab.Lookup(addr); ok {
			m.WriteID(id, w)
		}
		return
	}
	m.WriteID(m.tab.ID(addr), w)
}

// Len returns the number of non-zero lines.
func (m *Memory) Len() int {
	n := 0
	for _, c := range m.nonzero {
		n += c
	}
	return n
}

// idLimit returns one past the highest interned ID any shard's word
// store covers, i.e. the length the flat array would have.
func (m *Memory) idLimit() int32 {
	limit := int32(0)
	for sh, ws := range m.words {
		if n := len(ws); n > 0 {
			if id := m.sh.ID(sh, n-1) + 1; id > limit {
				limit = id
			}
		}
	}
	return limit
}

// ForEach calls fn for every non-zero line in interned-ID order (the
// historical flat-array order, independent of the shard count; callers
// that need address order must sort).
func (m *Memory) ForEach(fn func(addr uint64, w Word)) {
	limit := m.idLimit()
	for id := int32(0); id < limit; id++ {
		sh, sl := m.sh.Shard(id), m.sh.Slot(id)
		if sl >= len(m.words[sh]) {
			continue
		}
		if w := m.words[sh][sl]; w != (Word{}) {
			fn(m.tab.Addr(id), w)
		}
	}
}

// Snapshot returns a deep copy of the memory contents, used by tests to
// compare pre-fault and post-recovery state.
func (m *Memory) Snapshot() map[uint64]Word {
	s := make(map[uint64]Word, m.Len())
	m.ForEach(func(a uint64, w Word) { s[a] = w })
	return s
}

// AnyPoison returns the smallest poisoned line address if any line is
// poisoned. Scanning for the minimum (rather than the first in interned
// order) keeps the answer independent of line-table history — and of
// the shard layout — so a machine restored from a snapshot reports the
// same line a fresh build would.
func (m *Memory) AnyPoison() (uint64, bool) {
	var min uint64
	found := false
	for sh, ws := range m.words {
		for sl, w := range ws {
			if !w.Poison {
				continue
			}
			if a := m.tab.Addr(m.sh.ID(sh, sl)); !found || a < min {
				min, found = a, true
			}
		}
	}
	return min, found
}

// MemorySnapshot is a saved memory image: one word slice per shard.
// Save reuses its storage across captures. The flat single-shard form
// is the historical snapshot layout; FlatWords/LoadFlatWords convert
// for the format-1 persistent codec.
type MemorySnapshot struct {
	shards  [][]Word
	nonzero []int // per shard, so SaveShard/LoadShard stay disjoint
}

// NumShards returns the number of captured shards (0 for an empty
// snapshot).
func (s *MemorySnapshot) NumShards() int { return len(s.shards) }

// Nonzero returns the captured non-zero line count.
func (s *MemorySnapshot) Nonzero() int {
	n := 0
	for _, c := range s.nonzero {
		n += c
	}
	return n
}

// countNonzero recounts the per-shard non-zero totals from the captured
// words (persistent codec decode path — the wire format carries only
// the machine total).
func (s *MemorySnapshot) countNonzero() {
	s.nonzero = make([]int, len(s.shards))
	for i, ws := range s.shards {
		for _, w := range ws {
			if w != (Word{}) {
				s.nonzero[i]++
			}
		}
	}
}

// ShardWords returns the captured words of one shard (not a copy; the
// caller must not mutate it).
func (s *MemorySnapshot) ShardWords(i int) []Word { return s.shards[i] }

// SetShards installs captured per-shard words directly (persistent
// codec decode path). The per-shard non-zero counts are recounted from
// the words — the wire format does not carry the split.
func (s *MemorySnapshot) SetShards(shards [][]Word) {
	s.shards = shards
	s.countNonzero()
}

// FlatWords returns the capture as one flat ID-indexed slice. For a
// single-shard capture this is the shard itself (zero-copy, and
// byte-identical to the pre-sharding snapshot layout).
func (s *MemorySnapshot) FlatWords(sh Sharding) []Word {
	if len(s.shards) <= 1 {
		if len(s.shards) == 0 {
			return nil
		}
		return s.shards[0]
	}
	limit := 0
	for i, ws := range s.shards {
		if n := len(ws); n > 0 {
			if id := int(sh.ID(i, n-1)) + 1; id > limit {
				limit = id
			}
		}
	}
	flat := make([]Word, limit)
	for i, ws := range s.shards {
		for sl, w := range ws {
			flat[sh.ID(i, sl)] = w
		}
	}
	return flat
}

// LoadFlatWords installs a flat ID-indexed capture, scattering it into
// sh's layout (persistent codec decode path; single-shard captures
// adopt the slice directly).
func (s *MemorySnapshot) LoadFlatWords(sh Sharding, flat []Word) {
	if sh.N() == 1 {
		s.shards = [][]Word{flat}
		s.countNonzero()
		return
	}
	s.shards = make([][]Word, sh.N())
	for i := range s.shards {
		s.shards[i] = make([]Word, sh.SlotsFor(len(flat), i))
	}
	for id, w := range flat {
		s.shards[sh.Shard(int32(id))][sh.Slot(int32(id))] = w
	}
	s.countNonzero()
}

// prepare sizes s for n shards, keeping per-shard storage.
func (s *MemorySnapshot) prepare(n int) {
	if cap(s.shards) < n {
		old := s.shards
		s.shards = make([][]Word, n)
		copy(s.shards, old)
	} else {
		s.shards = s.shards[:n]
	}
	if cap(s.nonzero) < n {
		s.nonzero = make([]int, n)
	} else {
		s.nonzero = s.nonzero[:n]
	}
}

// Save copies the memory contents into s.
func (m *Memory) Save(s *MemorySnapshot) {
	s.prepare(len(m.words))
	for i := range m.words {
		m.SaveShard(s, i)
	}
}

// SaveShard copies one shard's words (and non-zero count) into s. The
// caller must have sized s with SavePrepare; distinct shards may be
// saved concurrently (disjoint storage).
func (m *Memory) SaveShard(s *MemorySnapshot, i int) {
	ws := m.words[i]
	if cap(s.shards[i]) < len(ws) {
		s.shards[i] = make([]Word, len(ws))
	} else {
		s.shards[i] = s.shards[i][:len(ws)]
	}
	copy(s.shards[i], ws)
	s.nonzero[i] = m.nonzero[i]
}

// SavePrepare sizes s for a per-shard parallel save (machine snapshot
// executor): after it returns, SaveShard calls for distinct shards are
// safe concurrently, and the caller finishes with SaveFinish.
func (m *Memory) SavePrepare(s *MemorySnapshot) { s.prepare(len(m.words)) }

// SaveFinish is the per-shard save epilogue. All captured state is now
// shard-local, so it has nothing left to record; it is kept so the
// snapshot executor's prepare/shard/finish shape stays uniform across
// the sharded structures.
func (m *Memory) SaveFinish(s *MemorySnapshot) {}

// Load restores the memory from s, adopting the captured length
// exactly: a longer live shard shrinks (lines interned after the
// capture read as zero again, as in a fresh build — WriteID growth
// appends zero words), a colder one grows.
func (m *Memory) Load(s *MemorySnapshot) {
	for i := range m.words {
		m.LoadShard(s, i)
	}
}

// LoadShard restores one shard from s (full copy). Distinct shards may
// be loaded concurrently; the caller finishes with LoadFinish.
func (m *Memory) LoadShard(s *MemorySnapshot, i int) {
	sw := s.shards[i]
	if cap(m.words[i]) < len(sw) {
		m.words[i] = make([]Word, len(sw))
	} else {
		m.words[i] = m.words[i][:len(sw)]
	}
	copy(m.words[i], sw)
	m.nonzero[i] = s.nonzero[i]
	m.dirty[i].Clear()
}

// LoadDeltaShard restores one shard from s copying only the pages
// marked dirty since the last load. The caller guarantees the live
// contents were last loaded from this same capture (machine.Restore
// tracks the snapshot identity and generation); anything else must use
// LoadShard. A live shard shorter than the capture falls back to a
// full load.
//
// Truncating the post-capture tail without zeroing it is safe for the
// same reason Load's shrink is: WriteID growth appends explicit zero
// words, so a line re-interned past the captured length reads as zero
// until (re)written.
func (m *Memory) LoadDeltaShard(s *MemorySnapshot, i int) {
	sw := s.shards[i]
	n := len(sw)
	if m.dirty[i].All() || len(m.words[i]) < n {
		m.LoadShard(s, i)
		return
	}
	m.dirty[i].Pages(len(m.words[i]), func(lo, hi int) {
		if lo >= n {
			return // truncated below; growth re-zeroes
		}
		if hi > n {
			hi = n
		}
		copy(m.words[i][lo:hi], sw[lo:hi])
	})
	m.words[i] = m.words[i][:n]
	m.nonzero[i] = s.nonzero[i]
	m.dirty[i].Clear()
}

// LoadFinish is the per-shard load epilogue; like SaveFinish it is a
// no-op kept for the executor's uniform prepare/shard/finish shape.
func (m *Memory) LoadFinish(s *MemorySnapshot) {}

// LoadDelta restores the memory from s via the per-shard delta path.
func (m *Memory) LoadDelta(s *MemorySnapshot) {
	for i := range m.words {
		m.LoadDeltaShard(s, i)
	}
}

// Reset zeroes the memory in place. The shared line table is kept —
// interned IDs are behaviourally invisible (see Machine.Reset) and
// re-interning a workload's whole footprint was the expensive part of
// recycling a machine.
func (m *Memory) Reset() {
	for i := range m.words {
		clear(m.words[i])
		m.dirty[i].MarkAll()
		m.nonzero[i] = 0
	}
}
