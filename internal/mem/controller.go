package mem

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Controller is the memory controller of Fig 3.1: every writeback of a
// dirty line first reads the line's old value from memory and saves it
// into the software log, then writes the new data (§3.3.3). Between
// checkpoints, displacements of dirty lines follow the same path.
type Controller struct {
	eng  *sim.Engine
	st   *stats.Stats
	mem  *Memory
	dram *DRAM
	log  *Log
}

// NewController wires a controller to its memory, DRAM model and log.
// The log is re-pointed at the memory's line table so both resolve the
// same interned IDs (WritebackID relies on this).
func NewController(eng *sim.Engine, st *stats.Stats, m *Memory, d *DRAM, l *Log) *Controller {
	l.adoptTable(m.Table())
	return &Controller{eng: eng, st: st, mem: m, dram: d, log: l}
}

// Memory returns the backing line store.
func (c *Controller) Memory() *Memory { return c.mem }

// Log returns the undo log.
func (c *Controller) Log() *Log { return c.log }

// DRAM returns the bandwidth model.
func (c *Controller) DRAM() *DRAM { return c.dram }

// Writeback performs a logged writeback of line with new data w on
// behalf of processor pid whose data belongs to checkpoint interval
// epoch. It returns the absolute cycle at which the channel finishes.
//
// Channel occupancy: 1 access for the data write, plus (if the log
// entry is actually appended) 2 accesses for the old-value read and
// the log write.
func (c *Controller) Writeback(pid int, epoch uint64, line uint64, w Word) sim.Cycle {
	return c.WritebackID(pid, epoch, c.mem.Table().ID(line), line, w)
}

// WritebackID is Writeback for a caller (the directory) that already
// interned line as id: the whole logged-writeback pipeline then runs on
// flat slices with no further hashing.
func (c *Controller) WritebackID(pid int, epoch uint64, id int32, line uint64, w Word) sim.Cycle {
	old := c.mem.ReadID(id)
	accesses := 1
	if c.log.AppendID(pid, epoch, id, line, old, c.eng.Now()) {
		accesses += 2
	}
	c.mem.WriteID(id, w)
	c.st.MemWrites++
	return c.dram.Occupy(line, accesses)
}

// LogRegisters accounts the logging of a processor's register state at
// a checkpoint (a fixed-size record) and returns the completion cycle.
func (c *Controller) LogRegisters(pid int) sim.Cycle {
	const regBytes = 256 // architectural register file snapshot
	c.st.LogBytes += regBytes
	// One line-sized access on the channel owning the pid's log region.
	return c.dram.Occupy(uint64(pid)*64+1, (regBytes+31)/32)
}

// Restore applies the undo log for the given per-processor target
// epochs, writing old values back to memory, and returns the number of
// entries restored together with the absolute cycle at which the last
// restore write completes. Restore bandwidth is the dominant term of
// the paper's recovery latency (§5, following ReVive).
func (c *Controller) Restore(target map[int]uint64) (uint64, sim.Cycle) {
	done := c.eng.Now()
	n := c.log.Rollback(target, func(line uint64, old Word) {
		c.mem.Write(line, old)
		c.st.MemWrites++
		// Log read + memory write per restored entry.
		if d := c.dram.Occupy(line, 2); d > done {
			done = d
		}
	})
	return n, done
}
