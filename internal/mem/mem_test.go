package mem

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func newRig(channels, banks int) (*sim.Engine, *stats.Stats, *Controller) {
	eng := sim.NewEngine()
	st := stats.New(8)
	m := NewMemory()
	d := NewDRAM(eng, st, channels)
	l := NewLog(st, banks)
	return eng, st, NewController(eng, st, m, d, l)
}

func TestMemoryBasics(t *testing.T) {
	m := NewMemory()
	if m.Read(5) != (Word{}) {
		t.Fatal("absent line should read zero")
	}
	m.Write(5, Word{Val: 9})
	if m.Read(5).Val != 9 || m.Len() != 1 {
		t.Fatal("write/read failed")
	}
	m.Write(5, Word{}) // writing zero reclaims the line
	if m.Len() != 0 {
		t.Fatal("zero write should delete")
	}
	m.Write(1, Word{Val: 1, Poison: true})
	if a, ok := m.AnyPoison(); !ok || a != 1 {
		t.Fatal("AnyPoison missed a poisoned line")
	}
	snap := m.Snapshot()
	m.Write(1, Word{Val: 2})
	if snap[1].Val != 1 || !snap[1].Poison {
		t.Fatal("snapshot aliased memory")
	}
	n := 0
	m.ForEach(func(addr uint64, w Word) { n++ })
	if n != 1 {
		t.Fatal("ForEach visited wrong count")
	}
}

func TestDRAMUnloadedLatencyNearPaper(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(1)
	d := NewDRAM(eng, st, 2)
	lat := d.ReadLatency(100)
	// Paper: ~200-cycle unloaded round trip to main memory.
	if lat < 150 || lat > 250 {
		t.Fatalf("unloaded read latency = %d, want ~200", lat)
	}
	if st.MemReads != 1 {
		t.Fatal("read not accounted")
	}
}

func TestDRAMQueueing(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(1)
	d := NewDRAM(eng, st, 1)
	d1 := d.Occupy(0, 10)
	if d1 != 10*d.Service {
		t.Fatalf("first occupy done at %d, want %d", d1, 10*d.Service)
	}
	d2 := d.Occupy(0, 1)
	if d2 != d1+d.Service {
		t.Fatalf("queued occupy done at %d, want %d", d2, d1+d.Service)
	}
	if st.MemQueueCycles != uint64(d1) {
		t.Fatalf("queue cycles = %d, want %d", st.MemQueueCycles, d1)
	}
	if d.QueueDepth(0) != d2 {
		t.Fatalf("queue depth = %d, want %d", d.QueueDepth(0), d2)
	}
}

func TestDRAMChannelsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(1)
	d := NewDRAM(eng, st, 2)
	// Find two lines on different channels.
	a := uint64(0)
	var b uint64
	found := false
	for cand := uint64(1); cand < 100; cand++ {
		if d.channel(a) != d.channel(cand) {
			b = cand
			found = true
			break
		}
	}
	if !found {
		t.Fatal("could not find lines on distinct channels")
	}
	d.Occupy(a, 100)
	if got := d.Occupy(b, 1); got != d.Service {
		t.Fatalf("independent channel was delayed: done at %d", got)
	}
}

func TestWritebackLogsOldValue(t *testing.T) {
	_, st, c := newRig(2, 4)
	c.Memory().Write(7, Word{Val: 1})
	c.Writeback(0, 0, 7, Word{Val: 2})
	if c.Memory().Read(7).Val != 2 {
		t.Fatal("writeback did not update memory")
	}
	es := c.Log().EntriesFor(0)
	if len(es) != 1 || es[0].Old.Val != 1 || es[0].Line != 7 || es[0].Epoch != 0 {
		t.Fatalf("log entry wrong: %+v", es)
	}
	if st.LogEntries != 1 || st.MemWrites != 1 {
		t.Fatal("stats not accounted")
	}
}

func TestFirstWritebackPerIntervalOptimization(t *testing.T) {
	_, st, c := newRig(2, 4)
	// Same pid, same epoch: second writeback of the line is not logged.
	c.Writeback(0, 3, 7, Word{Val: 1})
	c.Writeback(0, 3, 7, Word{Val: 2})
	if st.LogEntries != 1 {
		t.Fatalf("LogEntries = %d, want 1 (first-WB optimisation)", st.LogEntries)
	}
	// Different epoch: must log again.
	c.Writeback(0, 4, 7, Word{Val: 3})
	// Different pid, same epoch number: must log again (the epoch
	// counter is per-processor; sharing a number means nothing).
	c.Writeback(1, 4, 7, Word{Val: 4})
	if st.LogEntries != 3 {
		t.Fatalf("LogEntries = %d, want 3", st.LogEntries)
	}
}

func TestAlwaysLogMode(t *testing.T) {
	_, st, c := newRig(2, 4)
	c.Log().AlwaysLog = true
	c.Writeback(0, 0, 7, Word{Val: 1})
	c.Writeback(0, 0, 7, Word{Val: 2})
	if st.LogEntries != 2 {
		t.Fatalf("AlwaysLog: LogEntries = %d, want 2", st.LogEntries)
	}
}

// Single-processor rollback: writing across epochs and rolling back to
// epoch k must restore exactly the memory image at the k-th checkpoint.
func TestRollbackRestoresEpochBoundary(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(1)
	m := NewMemory()
	c := NewController(eng, st, m, NewDRAM(eng, st, 2), NewLog(st, 4))

	rng := sim.NewRNG(11)
	snaps := make([]map[uint64]Word, 0, 5)
	for epoch := uint64(0); epoch < 4; epoch++ {
		snaps = append(snaps, m.Snapshot()) // state at the checkpoint opening this epoch
		for i := 0; i < 200; i++ {
			line := uint64(rng.Intn(40))
			c.Writeback(0, epoch, line, Word{Val: rng.Next()})
		}
		c.Log().Stub(eng.Now())
	}
	for target := uint64(3); ; target-- {
		// Roll processor 0 back to the checkpoint that opened `target`.
		want := snaps[target]
		n, _ := c.Restore(map[int]uint64{0: target})
		if n == 0 {
			t.Fatalf("rollback to %d restored nothing", target)
		}
		got := m.Snapshot()
		if !sameState(got, want) {
			t.Fatalf("rollback to epoch %d: memory mismatch", target)
		}
		c.Log().CheckInvariants()
		if target == 0 {
			break
		}
	}
	if m.Len() != 0 {
		t.Fatal("full rollback should restore the initial empty memory")
	}
}

// Two processors interleaving writes to the same line: rolling back the
// closed set {A, B} must unwind in reverse global order (the WW case of
// DESIGN.md).
func TestRollbackInterleavedWWDependence(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(2)
	m := NewMemory()
	c := NewController(eng, st, m, NewDRAM(eng, st, 2), NewLog(st, 4))

	m.Write(9, Word{Val: 5})
	c.Writeback(0, 1, 9, Word{Val: 6}) // A logs old=5
	c.Writeback(1, 1, 9, Word{Val: 7}) // B logs old=6
	c.Writeback(0, 1, 9, Word{Val: 8}) // A again: logged (last key now B's)
	// Roll both back to epoch 1: line must return to 5.
	c.Restore(map[int]uint64{0: 1, 1: 1})
	if got := m.Read(9).Val; got != 5 {
		t.Fatalf("line = %d after joint rollback, want 5", got)
	}
}

// Rolling back only one of two processors with disjoint write sets must
// leave the other's data untouched.
func TestPartialRollbackLeavesOthersAlone(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.New(2)
	m := NewMemory()
	c := NewController(eng, st, m, NewDRAM(eng, st, 2), NewLog(st, 4))

	c.Writeback(0, 0, 1, Word{Val: 10})
	c.Writeback(1, 0, 2, Word{Val: 20})
	c.Writeback(0, 1, 1, Word{Val: 11})
	c.Writeback(1, 1, 2, Word{Val: 21})
	c.Restore(map[int]uint64{0: 1}) // roll A to its epoch-1 checkpoint
	if m.Read(1).Val != 10 {
		t.Fatalf("A's line = %d, want 10", m.Read(1).Val)
	}
	if m.Read(2).Val != 21 {
		t.Fatalf("B's line = %d, want 21 (untouched)", m.Read(2).Val)
	}
}

// After a rollback removes entries, re-executed writebacks must log
// afresh (the first-writeback key is invalidated).
func TestRollbackInvalidatesFirstWBKey(t *testing.T) {
	_, st, c := newRig(2, 4)
	c.Writeback(0, 0, 7, Word{Val: 1})
	c.Restore(map[int]uint64{0: 0})
	c.Writeback(0, 0, 7, Word{Val: 1}) // redo of the same interval
	if st.LogEntries != 2 {
		t.Fatalf("LogEntries = %d, want 2 (redo must re-log)", st.LogEntries)
	}
}

func TestTruncate(t *testing.T) {
	_, _, c := newRig(2, 4)
	c.Writeback(0, 0, 1, Word{Val: 1})
	c.Writeback(0, 1, 2, Word{Val: 2})
	c.Writeback(1, 0, 3, Word{Val: 3})
	dropped := c.Log().Truncate(map[int]uint64{0: 1})
	if dropped != 1 || c.Log().Len() != 2 {
		t.Fatalf("Truncate dropped %d (len %d), want 1 (len 2)", dropped, c.Log().Len())
	}
	// Processor 1 absent from the safe map: keeps everything.
	if len(c.Log().EntriesFor(1)) != 1 {
		t.Fatal("Truncate touched a processor without a safe epoch")
	}
	c.Log().CheckInvariants()
}

func TestLogHighWaterResetsAtStub(t *testing.T) {
	_, st, c := newRig(2, 4)
	for i := 0; i < 10; i++ {
		c.Writeback(0, 0, uint64(i), Word{Val: 1})
	}
	c.Log().Stub(0)
	for i := 0; i < 3; i++ {
		c.Writeback(0, 1, uint64(100+i), Word{Val: 1})
	}
	if st.LogHighWaterBytes != 10*EntryBytes {
		t.Fatalf("high water = %d, want %d", st.LogHighWaterBytes, 10*EntryBytes)
	}
}

func TestLogRegisters(t *testing.T) {
	eng, st, c := newRig(2, 4)
	before := st.LogBytes
	done := c.LogRegisters(3)
	if st.LogBytes <= before {
		t.Fatal("register logging not accounted")
	}
	if done <= eng.Now() {
		t.Fatal("register logging should occupy a channel")
	}
}

func sameState(a, b map[uint64]Word) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
