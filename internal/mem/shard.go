package mem

import "fmt"

// Sharding partitions the interned line-ID space into a power-of-two
// number of home proc-group shards. It is the machine-wide layout rule
// of the sharded-state layer: Memory's word store, the Log's
// first-writeback keys and the coherence directory's per-line arrays
// all carve their flat ID-indexed state into per-shard slices using one
// Sharding, so per-shard snapshot/restore tasks touch disjoint memory.
//
// IDs interleave across shards by their low bits (shard = id & (n-1),
// slot = id >> log2(n)): intern order fills every shard uniformly
// regardless of access pattern, and the single-shard layout is exactly
// the historical flat layout (shard 0, slot == id), which is what keeps
// a 1-shard machine bit-compatible with pre-sharding snapshots.
//
// A Sharding is pure arithmetic — it holds no state and is safe to
// copy and to use concurrently.
type Sharding struct {
	n     int
	mask  int32
	shift uint
}

// MaxShards bounds the shard count: far above any plausible proc-group
// split (1024-proc machines at 64 procs per group need 16) while
// keeping per-shard bookkeeping from degenerating into per-line
// bookkeeping.
const MaxShards = 64

// NewSharding returns the layout for n shards. n < 1 selects 1; n must
// be a power of two no greater than MaxShards.
func NewSharding(n int) Sharding {
	if n < 1 {
		n = 1
	}
	if n&(n-1) != 0 || n > MaxShards {
		panic(fmt.Sprintf("mem: shard count %d must be a power of two in [1, %d]", n, MaxShards))
	}
	shift := uint(0)
	for 1<<shift < n {
		shift++
	}
	return Sharding{n: n, mask: int32(n - 1), shift: shift}
}

// N returns the shard count (>= 1; the zero Sharding counts as 1).
func (s Sharding) N() int {
	if s.n == 0 {
		return 1
	}
	return s.n
}

// Shard returns the home shard of interned line id.
func (s Sharding) Shard(id int32) int { return int(id & s.mask) }

// AddrShard returns the home shard of a line address by hash, without
// interning — the event-plane message router needs a line's home shard
// before any shard has assigned it an ID. The hash is the DRAM channel
// hash, so for power-of-two shard counts up to the DRAM bank count each
// bank is touched by exactly one shard. Sharded-intern LineTables (see
// NewLineTableSharded) assign IDs so that Shard(ID(addr)) ==
// AddrShard(addr).
func (s Sharding) AddrShard(addr uint64) int {
	return int(addr^(addr>>13)) & int(s.mask)
}

// Slot returns id's index within its shard's slice.
func (s Sharding) Slot(id int32) int { return int(id >> s.shift) }

// ID reconstructs the interned line ID of (shard, slot).
func (s Sharding) ID(shard, slot int) int32 {
	return int32(slot)<<s.shift | int32(shard)
}

// SlotsFor returns the number of slots shard sh needs to cover IDs
// [0, ids): ceil((ids - sh) / n) clamped at 0.
func (s Sharding) SlotsFor(ids int, sh int) int {
	if ids <= sh {
		return 0
	}
	return (ids - sh + s.N() - 1) / s.N()
}
