package mem

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DRAM models the off-chip memory channels of Fig 4.3(a): two channels
// of DDR2-667 class bandwidth. Each line transfer occupies a channel
// for Service cycles; concurrent requests to the same channel queue.
// The controller schedules demand reads ahead of writebacks (standard
// read-over-write scheduling, as in the paper's DRAMsim): reads queue
// only against other reads plus the transfer in flight, while
// writebacks yield to all queued reads. Bursty checkpoint writebacks
// therefore hurt mostly by saturating bandwidth — the IPCDelay of
// Fig 6.5 — while cores that are stopped anyway (Global's foreground
// writeback stall) pay the full serialisation.
type DRAM struct {
	eng *sim.Engine
	st  *stats.Stats

	// Service is the channel occupancy per 32-byte line access. At
	// DDR2-667 ×2 channels and a 1 GHz core clock this is ~3 cycles.
	Service sim.Cycle
	// FixedLatency is the non-bandwidth part of a memory round trip
	// (row activation, controller, off-chip signalling). Together with
	// Service it yields the paper's ~200-cycle unloaded miss latency.
	FixedLatency sim.Cycle

	readFree []sim.Cycle // next cycle the channel can start a read
	wbFree   []sim.Cycle // next cycle the channel can start a writeback
}

// NewDRAM returns a DRAM model with the given number of channels.
func NewDRAM(eng *sim.Engine, st *stats.Stats, channels int) *DRAM {
	if channels < 1 {
		channels = 1
	}
	return &DRAM{
		eng:          eng,
		st:           st,
		Service:      3,
		FixedLatency: 170,
		readFree:     make([]sim.Cycle, channels),
		wbFree:       make([]sim.Cycle, channels),
	}
}

func (d *DRAM) channel(line uint64) int {
	return int((line ^ (line >> 13)) % uint64(len(d.readFree)))
}

// Occupy reserves the channel owning line for n writeback-class
// line-accesses (checkpoint/displacement writebacks, log writes,
// restores) and returns the absolute completion cycle. Writebacks
// yield to all pending reads.
func (d *DRAM) Occupy(line uint64, n int) sim.Cycle {
	ch := d.channel(line)
	now := d.eng.Now()
	start := d.wbFree[ch]
	if d.readFree[ch] > start {
		start = d.readFree[ch]
	}
	if start < now {
		start = now
	}
	d.st.MemQueueCycles += uint64(start - now)
	done := start + sim.Cycle(n)*d.Service
	d.wbFree[ch] = done
	return done
}

// ReadLatency returns the total latency of a demand read of line,
// including queueing against other reads and the write transfer in
// flight, and accounts the access. Demand reads preempt queued
// writebacks (read-over-write scheduling).
func (d *DRAM) ReadLatency(line uint64) sim.Cycle {
	d.st.MemReads++
	ch := d.channel(line)
	now := d.eng.Now()
	start := d.readFree[ch]
	if start < now {
		start = now
	}
	// A writeback transfer already on the wires blocks the read for one
	// service slot; beyond that, the controller can reorder reads ahead
	// of at most a finite write-queue window — when the writeback
	// backlog exceeds it (a saturating burst), writes are forced out
	// and reads wait for the excess.
	if wb := d.wbFree[ch]; wb > start {
		start += d.Service
		if window := 64 * d.Service; wb > start+window {
			start = wb - window
		}
	}
	d.st.MemQueueCycles += uint64(start - now)
	done := start + d.Service
	d.readFree[ch] = done
	// The read consumed a slot the writebacks cannot use.
	if d.wbFree[ch] > now {
		d.wbFree[ch] += d.Service
	}
	return (done - now) + d.FixedLatency
}

// QueueDepth returns how many cycles of writeback work are queued on
// the channel owning line (used by the delayed-writeback rate
// controller, §4.1).
func (d *DRAM) QueueDepth(line uint64) sim.Cycle {
	ch := d.channel(line)
	now := d.eng.Now()
	if d.wbFree[ch] <= now {
		return 0
	}
	return d.wbFree[ch] - now
}

// Channels returns the channel count.
func (d *DRAM) Channels() int { return len(d.readFree) }

// DRAMSnapshot is the saved channel state.
type DRAMSnapshot struct {
	ReadFree []sim.Cycle
	WBFree   []sim.Cycle
}

// Save copies the channel state into s.
func (d *DRAM) Save(s *DRAMSnapshot) {
	s.ReadFree = append(s.ReadFree[:0], d.readFree...)
	s.WBFree = append(s.WBFree[:0], d.wbFree...)
}

// Load restores the channel state from s.
func (d *DRAM) Load(s *DRAMSnapshot) {
	if len(s.ReadFree) != len(d.readFree) {
		panic("mem: DRAM snapshot channel-count mismatch")
	}
	copy(d.readFree, s.ReadFree)
	copy(d.wbFree, s.WBFree)
}

// Reset idles every channel (Machine.Reset).
func (d *DRAM) Reset() {
	clear(d.readFree)
	clear(d.wbFree)
}
