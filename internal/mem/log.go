package mem

import (
	"fmt"
	"sort"

	"repro/internal/cow"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Entry is one undo record in the software log (§3.3.3): the processor
// that wrote the line, the checkpoint interval (epoch) whose data the
// writeback carried, the line address, and the line's old value read
// from memory by the controller before the write.
//
// Epoch tagging is how this implementation handles delayed writebacks:
// a background writeback of interval i−1 data interleaves in the log
// with displacements of interval i, and rollback must undo "everything
// from epoch e onwards for processor p", not "everything after a single
// stub position" (see DESIGN.md §3.3).
type Entry struct {
	Seq   uint64
	PID   int
	Epoch uint64
	Line  uint64
	Old   Word
	At    sim.Cycle
}

// EntryBytes is the log footprint of one entry: 32-byte line data plus
// address, PID and epoch metadata.
const EntryBytes = 44

// StubBytes is the footprint of a checkpoint-start stub (replicated per
// bank in the paper; we account one per bank).
const StubBytes = 16

// logKey identifies the (pid, epoch) of the most recent writeback of a
// line; pid < 0 marks an empty slot.
type logKey struct {
	pid   int32
	epoch uint64
}

// noEntries is the minEpoch sentinel for a processor with no live
// entries.
const noEntries = ^uint64(0)

// Log is the multi-banked in-memory undo log. The global order is the
// Seq stamp; entries are stored per processor (each list ascending in
// Seq) so the once-per-checkpoint truncation scans one processor's
// entries instead of the whole log — truncation used to be the largest
// single cost of the checkpoint path. The bank count only affects
// restore parallelism accounting.
type Log struct {
	st      *stats.Stats
	perPID  [][]Entry // ascending Seq within each processor
	total   int
	nextSeq uint64
	banks   int
	tab     *LineTable
	sh      Sharding

	// lastKey implements ReVive's "log only the first writeback of a
	// line per checkpoint interval" optimisation: a writeback is not
	// logged again if the most recent log entry for the line came from
	// the same (pid, epoch). Partitioned per shard and indexed by slot
	// (flat slices, not a map: Append is on the writeback hot path).
	// The entry lists above are already partitioned per processor, so
	// lastKey is the only log state the machine-wide Sharding touches.
	// See log_test.go for why any weaker condition would be unsound.
	lastKey [][]logKey

	// minEpoch[pid] is the smallest epoch among pid's live entries
	// (noEntries when it has none). Truncate uses it to skip the scan
	// entirely when no entry can be dropped.
	minEpoch []uint64

	// AlwaysLog disables the optimisation (ablation mode).
	AlwaysLog bool

	// highWater tracking: bytes appended since the last stub, and the
	// maximum such value (Table 6.1 row 2: checkpoint writebacks plus
	// unique displacements until the next checkpoint).
	sinceStub uint64

	// Dirty tracking for the snapshot engine's copy-on-write restore:
	// pidDirty[pid] marks a per-processor entry list whose contents
	// changed since the last load, lkDirty the mutated pages of each
	// lastKey shard, and dirtyAll the wholesale invalidation (Reset).
	// minEpoch and the scalar counters are small enough to copy
	// unconditionally.
	pidDirty []bool
	lkDirty  []cow.Dirty
	dirtyAll bool
}

// NewLog returns an unsharded log banked banks ways with its own line
// table.
func NewLog(st *stats.Stats, banks int) *Log {
	return NewLogWith(st, banks, NewLineTable())
}

// NewLogWith returns an unsharded log indexing lines through tab
// (shared with the machine's Memory and Directory).
func NewLogWith(st *stats.Stats, banks int, tab *LineTable) *Log {
	return NewLogSharded(st, banks, tab, NewSharding(1))
}

// NewLogSharded returns a log indexing lines through tab with its
// first-writeback keys partitioned by sh (the machine-wide Sharding).
func NewLogSharded(st *stats.Stats, banks int, tab *LineTable, sh Sharding) *Log {
	if banks < 1 {
		banks = 1
	}
	return &Log{st: st, banks: banks, tab: tab, sh: sh,
		lastKey: make([][]logKey, sh.N()),
		lkDirty: make([]cow.Dirty, sh.N())}
}

// adoptTable re-points the log at tab (the machine-wide shared table).
// A log that has already interned lines under another table cannot
// switch: its lastKey slots would alias wrong lines.
func (l *Log) adoptTable(tab *LineTable) {
	if l.tab == tab {
		return
	}
	for _, ks := range l.lastKey {
		if len(ks) > 0 {
			panic("mem: log cannot switch line tables after use")
		}
	}
	if l.total > 0 {
		panic("mem: log cannot switch line tables after use")
	}
	l.tab = tab
}

// Banks returns the bank count.
func (l *Log) Banks() int { return l.banks }

// Sharding returns the first-writeback key layout.
func (l *Log) Sharding() Sharding { return l.sh }

// Len returns the number of live entries.
func (l *Log) Len() int { return l.total }

// Bytes returns the current log footprint.
func (l *Log) Bytes() uint64 { return uint64(l.total) * EntryBytes }

// keyAt returns the first-writeback key slot of id, growing its shard
// to cover it. It also reports the (shard, slot) pair for dirty marks.
func (l *Log) keyAt(id int32) (*logKey, int, int) {
	sh, sl := l.sh.Shard(id), l.sh.Slot(id)
	for sl >= len(l.lastKey[sh]) {
		l.lastKey[sh] = append(l.lastKey[sh], logKey{pid: -1})
	}
	return &l.lastKey[sh][sl], sh, sl
}

func (l *Log) growPID(pid int) {
	for pid >= len(l.perPID) {
		l.perPID = append(l.perPID, nil)
		l.minEpoch = append(l.minEpoch, noEntries)
		l.pidDirty = append(l.pidDirty, false)
	}
}

// rebuildMinEpochFor recomputes one processor's epoch floor after its
// entries were removed (rollback, truncation) — rare paths.
func (l *Log) rebuildMinEpochFor(pid int) {
	min := noEntries
	for i := range l.perPID[pid] {
		if e := l.perPID[pid][i].Epoch; e < min {
			min = e
		}
	}
	l.minEpoch[pid] = min
}

// Append records an undo entry for line, unless the first-writeback
// optimisation allows skipping it. It reports whether an entry was
// actually appended (and hence whether the memory controller paid the
// extra old-value read and log write).
func (l *Log) Append(pid int, epoch uint64, line uint64, old Word, at sim.Cycle) bool {
	return l.AppendID(pid, epoch, l.tab.ID(line), line, old, at)
}

// AppendID is Append for a caller that already interned line as id.
func (l *Log) AppendID(pid int, epoch uint64, id int32, line uint64, old Word, at sim.Cycle) bool {
	k, ksh, ksl := l.keyAt(id)
	if !l.AlwaysLog && k.pid == int32(pid) && k.epoch == epoch {
		return false
	}
	l.nextSeq++
	l.growPID(pid)
	l.perPID[pid] = append(l.perPID[pid], Entry{
		Seq: l.nextSeq, PID: pid, Epoch: epoch, Line: line, Old: old, At: at,
	})
	l.total++
	l.pidDirty[pid] = true
	l.lkDirty[ksh].Mark(ksl)
	k.pid, k.epoch = int32(pid), epoch
	if epoch < l.minEpoch[pid] {
		l.minEpoch[pid] = epoch
	}
	l.st.LogEntries++
	l.st.LogBytes += EntryBytes
	l.sinceStub += EntryBytes
	if l.sinceStub > l.st.LogHighWaterBytes {
		l.st.LogHighWaterBytes = l.sinceStub
	}
	return true
}

// Stub marks the start of a checkpoint for a set of processors. In the
// paper the stub is inserted in every bank; here it resets the
// per-interval high-water accounting and is counted for footprint.
func (l *Log) Stub(at sim.Cycle) {
	l.st.LogStubs++
	l.st.LogBytes += StubBytes * uint64(l.banks)
	l.sinceStub = 0
}

// Rollback undoes, in reverse global (Seq) order, every entry whose
// processor is in target and whose epoch is >= target[pid], invoking
// restore for each and removing the entries from the log. It returns
// the number of entries restored.
//
// Restoring in reverse order across all processors in the set is what
// makes interleaved writes by multiple rolled-back processors unwind
// correctly (see the WW-dependence discussion in DESIGN.md).
func (l *Log) Rollback(target map[int]uint64, restore func(line uint64, old Word)) uint64 {
	// Collect the undone entries of every target processor, compacting
	// each per-processor list in place.
	var undo []Entry
	for pid, ep := range target {
		if pid < 0 || pid >= len(l.perPID) {
			continue
		}
		keep := l.perPID[pid][:0]
		for _, e := range l.perPID[pid] {
			if e.Epoch >= ep {
				undo = append(undo, e)
			} else {
				keep = append(keep, e)
			}
		}
		if len(keep) != len(l.perPID[pid]) {
			l.perPID[pid] = keep
			l.pidDirty[pid] = true
			l.rebuildMinEpochFor(pid)
		}
	}
	// Reverse global order across the whole set.
	sort.Slice(undo, func(i, j int) bool { return undo[i].Seq > undo[j].Seq })
	for _, e := range undo {
		restore(e.Line, e.Old)
		// Invalidate the first-writeback key so a re-executed interval
		// logs afresh.
		id := l.tab.ID(e.Line)
		if k, ksh, ksl := l.keyAt(id); k.pid == int32(e.PID) && k.epoch == e.Epoch {
			k.pid = -1
			l.lkDirty[ksh].Mark(ksl)
		}
	}
	l.total -= len(undo)
	return uint64(len(undo))
}

// Truncate discards entries older than the given per-processor safe
// epochs: an entry (pid, epoch) is dead once epoch < safe[pid], i.e.
// once no future rollback can target it. Processors absent from safe
// keep all their entries. It returns the number discarded.
func (l *Log) Truncate(safe map[int]uint64) int {
	dropped := 0
	for pid, s := range safe {
		if pid < 0 || pid >= len(l.perPID) || l.minEpoch[pid] >= s {
			continue // nothing droppable: the common per-checkpoint case
		}
		keep := l.perPID[pid][:0]
		for _, e := range l.perPID[pid] {
			if e.Epoch < s {
				dropped++
				continue
			}
			keep = append(keep, e)
		}
		l.perPID[pid] = keep
		l.pidDirty[pid] = true
		l.rebuildMinEpochFor(pid)
	}
	l.total -= dropped
	return dropped
}

// LogSnapshot is a saved log image: per-processor entry lists, the
// per-shard first-writeback keys and the epoch floors. Save reuses its
// storage.
type LogSnapshot struct {
	perPID    [][]Entry
	lastKey   [][]logKey // per shard, same layout as Log.lastKey
	minEpoch  []uint64
	total     int
	nextSeq   uint64
	sinceStub uint64
	alwaysLog bool
}

// prepareKeys sizes s.lastKey for n shards, keeping per-shard storage.
func (s *LogSnapshot) prepareKeys(n int) {
	if cap(s.lastKey) < n {
		old := s.lastKey
		s.lastKey = make([][]logKey, n)
		copy(s.lastKey, old)
	} else {
		s.lastKey = s.lastKey[:n]
	}
}

// Save copies the log state into s.
func (l *Log) Save(s *LogSnapshot) {
	if cap(s.perPID) < len(l.perPID) {
		old := s.perPID
		s.perPID = make([][]Entry, len(l.perPID))
		copy(s.perPID, old)
	} else {
		s.perPID = s.perPID[:len(l.perPID)]
	}
	for pid := range l.perPID {
		if cap(s.perPID[pid]) < len(l.perPID[pid]) {
			s.perPID[pid] = make([]Entry, len(l.perPID[pid]))
		} else {
			s.perPID[pid] = s.perPID[pid][:len(l.perPID[pid])]
		}
		copy(s.perPID[pid], l.perPID[pid])
	}
	s.prepareKeys(len(l.lastKey))
	for i := range l.lastKey {
		s.lastKey[i] = append(s.lastKey[i][:0], l.lastKey[i]...)
	}
	s.minEpoch = append(s.minEpoch[:0], l.minEpoch...)
	s.total, s.nextSeq, s.sinceStub = l.total, l.nextSeq, l.sinceStub
	s.alwaysLog = l.AlwaysLog
}

// Load restores the log from s. Per-processor lists and first-writeback
// keys that grew past the capture are reset to their untouched defaults
// (empty list / no-entry key), matching what a fresh build would hold;
// a colder log (restore into a machine that never ran) grows to the
// captured shape.
func (l *Log) Load(s *LogSnapshot) {
	l.growPID(len(s.perPID) - 1)
	for pid := range l.perPID {
		if pid < len(s.perPID) {
			l.perPID[pid] = append(l.perPID[pid][:0], s.perPID[pid]...)
			l.minEpoch[pid] = s.minEpoch[pid]
		} else {
			l.perPID[pid] = l.perPID[pid][:0]
			l.minEpoch[pid] = noEntries
		}
	}
	for i := range l.lastKey {
		l.loadKeysShard(s, i)
	}
	l.total, l.nextSeq, l.sinceStub = s.total, s.nextSeq, s.sinceStub
	// AlwaysLog is part of the captured behaviour: a snapshot of a
	// log-ablation machine restored into a default-built one (the
	// cross-machine restore path) must keep logging every writeback.
	l.AlwaysLog = s.alwaysLog
	l.clearDirty()
}

// loadKeysShard restores one lastKey shard from s in full.
func (l *Log) loadKeysShard(s *LogSnapshot, i int) {
	sk := s.lastKey[i]
	for len(l.lastKey[i]) < len(sk) {
		l.lastKey[i] = append(l.lastKey[i], logKey{pid: -1})
	}
	copy(l.lastKey[i], sk)
	for j := len(sk); j < len(l.lastKey[i]); j++ {
		l.lastKey[i][j] = logKey{pid: -1}
	}
	l.lkDirty[i].Clear()
}

func (l *Log) clearDirty() {
	for i := range l.pidDirty {
		l.pidDirty[i] = false
	}
	for i := range l.lkDirty {
		l.lkDirty[i].Clear()
	}
	l.dirtyAll = false
}

// LoadDelta restores the log from s touching only the state mutated
// since the last load: the per-processor lists flagged dirty, the
// mutated pages of each first-writeback key shard, and the (small)
// epoch floors and scalar counters. The caller guarantees the live
// state was last loaded from this same capture; anything else must use
// Load.
func (l *Log) LoadDelta(s *LogSnapshot) {
	if l.dirtyAll || len(l.perPID) < len(s.perPID) || len(l.lastKey) != len(s.lastKey) {
		l.Load(s)
		return
	}
	for pid := range l.perPID {
		if !l.pidDirty[pid] {
			continue
		}
		if pid < len(s.perPID) {
			l.perPID[pid] = append(l.perPID[pid][:0], s.perPID[pid]...)
		} else {
			l.perPID[pid] = l.perPID[pid][:0]
		}
	}
	for i := range l.lastKey {
		sk := s.lastKey[i]
		if len(l.lastKey[i]) < len(sk) {
			l.loadKeysShard(s, i)
			continue
		}
		l.lkDirty[i].Pages(len(l.lastKey[i]), func(lo, hi int) {
			n := len(sk)
			if lo < n {
				end := hi
				if end > n {
					end = n
				}
				copy(l.lastKey[i][lo:end], sk[lo:end])
			}
			for j := max(lo, n); j < hi; j++ {
				l.lastKey[i][j] = logKey{pid: -1}
			}
		})
		l.lkDirty[i].Clear()
	}
	for pid := range l.minEpoch {
		if pid < len(s.minEpoch) {
			l.minEpoch[pid] = s.minEpoch[pid]
		} else {
			l.minEpoch[pid] = noEntries
		}
	}
	l.total, l.nextSeq, l.sinceStub = s.total, s.nextSeq, s.sinceStub
	l.AlwaysLog = s.alwaysLog
	l.clearDirty()
}

// LogImage is the exported, serializable form of a LogSnapshot, used by
// the persistent-snapshot codec (machine.SnapshotImage). The lastKey
// slots are split into parallel PID/epoch arrays so the unexported
// logKey type never leaks into the on-disk schema. The arrays are flat,
// indexed by interned line ID regardless of the in-memory shard count:
// the on-disk schema stays layout-independent, and a snapshot encoded
// at one shard count decodes at any other.
type LogImage struct {
	PerPID    [][]Entry `json:"per_pid"`
	LastPID   []int32   `json:"last_pid"`
	LastEpoch []uint64  `json:"last_epoch"`
	MinEpoch  []uint64  `json:"min_epoch"`
	Total     int       `json:"total"`
	NextSeq   uint64    `json:"next_seq"`
	SinceStub uint64    `json:"since_stub"`
	AlwaysLog bool      `json:"always_log"`
}

// Image converts the snapshot to its serializable form, gathering the
// per-shard key slots back into one ID-indexed array. The shard count is
// the snapshot's own (len(s.lastKey)); slots a shard never grew read as
// the no-entry key, exactly what the flat layout would have held.
func (s *LogSnapshot) Image() LogImage {
	n := len(s.lastKey)
	if n == 0 {
		n = 1
	}
	sh := NewSharding(n)
	ids := 0
	for i := range s.lastKey {
		if ln := len(s.lastKey[i]); ln > 0 {
			if lim := int(sh.ID(i, ln-1)) + 1; lim > ids {
				ids = lim
			}
		}
	}
	im := LogImage{
		PerPID:    make([][]Entry, len(s.perPID)),
		LastPID:   make([]int32, ids),
		LastEpoch: make([]uint64, ids),
		MinEpoch:  append([]uint64(nil), s.minEpoch...),
		Total:     s.total,
		NextSeq:   s.nextSeq,
		SinceStub: s.sinceStub,
		AlwaysLog: s.alwaysLog,
	}
	for pid := range s.perPID {
		im.PerPID[pid] = append([]Entry(nil), s.perPID[pid]...)
	}
	for id := 0; id < ids; id++ {
		shd, sl := sh.Shard(int32(id)), sh.Slot(int32(id))
		k := logKey{pid: -1}
		if shd < len(s.lastKey) && sl < len(s.lastKey[shd]) {
			k = s.lastKey[shd][sl]
		}
		im.LastPID[id] = k.pid
		im.LastEpoch[id] = k.epoch
	}
	return im
}

// FromImage rebuilds the snapshot from its serializable form under the
// target machine's Sharding, reusing the snapshot's storage where
// possible. It returns an error when the image is internally
// inconsistent (parallel arrays of unequal length).
func (s *LogSnapshot) FromImage(im *LogImage, sh Sharding) error {
	if len(im.LastPID) != len(im.LastEpoch) {
		return fmt.Errorf("mem: log image lastKey arrays disagree (%d pids, %d epochs)",
			len(im.LastPID), len(im.LastEpoch))
	}
	if len(im.PerPID) != len(im.MinEpoch) {
		return fmt.Errorf("mem: log image perPID/minEpoch arrays disagree (%d lists, %d floors)",
			len(im.PerPID), len(im.MinEpoch))
	}
	if cap(s.perPID) < len(im.PerPID) {
		s.perPID = make([][]Entry, len(im.PerPID))
	} else {
		s.perPID = s.perPID[:len(im.PerPID)]
	}
	for pid := range im.PerPID {
		s.perPID[pid] = append(s.perPID[pid][:0], im.PerPID[pid]...)
	}
	s.prepareKeys(sh.N())
	for i := range s.lastKey {
		s.lastKey[i] = s.lastKey[i][:0]
	}
	for id := range im.LastPID {
		shd, sl := sh.Shard(int32(id)), sh.Slot(int32(id))
		for sl >= len(s.lastKey[shd]) {
			s.lastKey[shd] = append(s.lastKey[shd], logKey{pid: -1})
		}
		s.lastKey[shd][sl] = logKey{pid: im.LastPID[id], epoch: im.LastEpoch[id]}
	}
	s.minEpoch = append(s.minEpoch[:0], im.MinEpoch...)
	s.total, s.nextSeq, s.sinceStub = im.Total, im.NextSeq, im.SinceStub
	s.alwaysLog = im.AlwaysLog
	return nil
}

// Reset empties the log in place, for Machine.Reset. The shared line
// table survives a machine reset, so the first-writeback keys keep
// their length and revert to the no-entry value.
func (l *Log) Reset() {
	for pid := range l.perPID {
		l.perPID[pid] = l.perPID[pid][:0]
		l.minEpoch[pid] = noEntries
	}
	for i := range l.lastKey {
		for j := range l.lastKey[i] {
			l.lastKey[i][j] = logKey{pid: -1}
		}
	}
	l.total, l.nextSeq, l.sinceStub = 0, 0, 0
	l.AlwaysLog = false
	l.dirtyAll = true
}

// EntriesFor returns (for tests and debugging) the live entries of one
// processor in ascending seq order.
func (l *Log) EntriesFor(pid int) []Entry {
	if pid < 0 || pid >= len(l.perPID) {
		return nil
	}
	if len(l.perPID[pid]) == 0 {
		return nil
	}
	return append([]Entry(nil), l.perPID[pid]...)
}

// CheckInvariants panics if the log's internal ordering is broken.
func (l *Log) CheckInvariants() {
	for pid := range l.perPID {
		var prev uint64
		for i, e := range l.perPID[pid] {
			if e.Seq <= prev {
				panic(fmt.Sprintf("mem: log entry %d of pid %d out of order (seq %d after %d)",
					i, pid, e.Seq, prev))
			}
			if e.PID != pid {
				panic(fmt.Sprintf("mem: log entry %d filed under pid %d carries pid %d", i, pid, e.PID))
			}
			prev = e.Seq
		}
	}
}
