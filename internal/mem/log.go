package mem

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Entry is one undo record in the software log (§3.3.3): the processor
// that wrote the line, the checkpoint interval (epoch) whose data the
// writeback carried, the line address, and the line's old value read
// from memory by the controller before the write.
//
// Epoch tagging is how this implementation handles delayed writebacks:
// a background writeback of interval i−1 data interleaves in the log
// with displacements of interval i, and rollback must undo "everything
// from epoch e onwards for processor p", not "everything after a single
// stub position" (see DESIGN.md §3.3).
type Entry struct {
	Seq   uint64
	PID   int
	Epoch uint64
	Line  uint64
	Old   Word
	At    sim.Cycle
}

// EntryBytes is the log footprint of one entry: 32-byte line data plus
// address, PID and epoch metadata.
const EntryBytes = 44

// StubBytes is the footprint of a checkpoint-start stub (replicated per
// bank in the paper; we account one per bank).
const StubBytes = 16

// Log is the multi-banked in-memory undo log. Entries are kept in one
// globally seq-ordered slice; the bank count only affects restore
// parallelism accounting.
type Log struct {
	st      *stats.Stats
	entries []Entry
	nextSeq uint64
	banks   int

	// lastKey implements ReVive's "log only the first writeback of a
	// line per checkpoint interval" optimisation: a writeback is not
	// logged again if the most recent log entry for the line came from
	// the same (pid, epoch). See log_test.go for why any weaker
	// condition would be unsound.
	lastKey map[uint64]logKey

	// AlwaysLog disables the optimisation (ablation mode).
	AlwaysLog bool

	// highWater tracking: bytes appended since the last stub, and the
	// maximum such value (Table 6.1 row 2: checkpoint writebacks plus
	// unique displacements until the next checkpoint).
	sinceStub uint64
}

type logKey struct {
	pid   int
	epoch uint64
}

// NewLog returns a log banked banks ways.
func NewLog(st *stats.Stats, banks int) *Log {
	if banks < 1 {
		banks = 1
	}
	return &Log{st: st, banks: banks, lastKey: make(map[uint64]logKey)}
}

// Banks returns the bank count.
func (l *Log) Banks() int { return l.banks }

// Len returns the number of live entries.
func (l *Log) Len() int { return len(l.entries) }

// Bytes returns the current log footprint.
func (l *Log) Bytes() uint64 { return uint64(len(l.entries)) * EntryBytes }

// Append records an undo entry for line, unless the first-writeback
// optimisation allows skipping it. It reports whether an entry was
// actually appended (and hence whether the memory controller paid the
// extra old-value read and log write).
func (l *Log) Append(pid int, epoch uint64, line uint64, old Word, at sim.Cycle) bool {
	if !l.AlwaysLog {
		if k, ok := l.lastKey[line]; ok && k.pid == pid && k.epoch == epoch {
			return false
		}
	}
	l.nextSeq++
	l.entries = append(l.entries, Entry{
		Seq: l.nextSeq, PID: pid, Epoch: epoch, Line: line, Old: old, At: at,
	})
	l.lastKey[line] = logKey{pid: pid, epoch: epoch}
	l.st.LogEntries++
	l.st.LogBytes += EntryBytes
	l.sinceStub += EntryBytes
	if l.sinceStub > l.st.LogHighWaterBytes {
		l.st.LogHighWaterBytes = l.sinceStub
	}
	return true
}

// Stub marks the start of a checkpoint for a set of processors. In the
// paper the stub is inserted in every bank; here it resets the
// per-interval high-water accounting and is counted for footprint.
func (l *Log) Stub(at sim.Cycle) {
	l.st.LogStubs++
	l.st.LogBytes += StubBytes * uint64(l.banks)
	l.sinceStub = 0
}

// Rollback undoes, in reverse global order, every entry whose processor
// is in target and whose epoch is >= target[pid], invoking restore for
// each and removing the entries from the log. It returns the number of
// entries restored.
//
// Restoring in reverse order across all processors in the set is what
// makes interleaved writes by multiple rolled-back processors unwind
// correctly (see the WW-dependence discussion in DESIGN.md).
func (l *Log) Rollback(target map[int]uint64, restore func(line uint64, old Word)) uint64 {
	var restored uint64
	keep := l.entries[:0]
	// Walk backwards applying restores; then compact forwards.
	for i := len(l.entries) - 1; i >= 0; i-- {
		e := l.entries[i]
		if ep, ok := target[e.PID]; ok && e.Epoch >= ep {
			restore(e.Line, e.Old)
			// Invalidate the first-writeback key so a re-executed
			// interval logs afresh.
			if k, ok := l.lastKey[e.Line]; ok && k.pid == e.PID && k.epoch == e.Epoch {
				delete(l.lastKey, e.Line)
			}
			restored++
		}
	}
	for _, e := range l.entries {
		if ep, ok := target[e.PID]; ok && e.Epoch >= ep {
			continue
		}
		keep = append(keep, e)
	}
	l.entries = keep
	return restored
}

// Truncate discards entries older than the given per-processor safe
// epochs: an entry (pid, epoch) is dead once epoch < safe[pid], i.e.
// once no future rollback can target it. Processors absent from safe
// keep all their entries. It returns the number discarded.
func (l *Log) Truncate(safe map[int]uint64) int {
	keep := l.entries[:0]
	dropped := 0
	for _, e := range l.entries {
		if s, ok := safe[e.PID]; ok && e.Epoch < s {
			dropped++
			continue
		}
		keep = append(keep, e)
	}
	l.entries = keep
	return dropped
}

// EntriesFor returns (for tests and debugging) the live entries of one
// processor in ascending seq order.
func (l *Log) EntriesFor(pid int) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if e.PID == pid {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// CheckInvariants panics if the log's internal ordering is broken.
func (l *Log) CheckInvariants() {
	var prev uint64
	for i, e := range l.entries {
		if e.Seq <= prev {
			panic(fmt.Sprintf("mem: log entry %d out of order (seq %d after %d)", i, e.Seq, prev))
		}
		prev = e.Seq
	}
}
