package service

// The scheme-space exploration endpoints. An exploration is a closed
// loop of campaigns and fault-free runs — far past request size — so
// the API mirrors the campaign one: POST /v1/explore validates, starts
// (or joins) the exploration in the background and answers immediately
// with its content-address key and progress; GET /v1/explore/{key}
// polls progress and, once finished, returns the stored
// FrontierReport. Cell evaluations persist through the shared
// explore/cells namespace and the report through explore/reports, so a
// daemon killed mid-exploration resumes on the next POST, a finished
// exploration is served from disk forever, and two explorations whose
// spaces intersect share the intersection's evaluations. Progress and
// economics are visible in /metrics (explores_running,
// explore_cells_done, explore_cells_evaluated,
// explore_cells_from_store).

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/store"
)

// ExploreRequest is the JSON body of POST /v1/explore: the workload,
// the search space (axes), the campaign shape and the strategy.
type ExploreRequest struct {
	App   string `json:"app"`
	Procs int    `json:"procs,omitempty"` // 0: scale default for the app's suite
	Scale string `json:"scale,omitempty"` // "quick"|"full"; empty: server default

	Schemes   []string `json:"schemes"`
	Intervals []uint64 `json:"intervals,omitempty"`
	WSIGBits  []int    `json:"wsigbits,omitempty"`
	DepSets   []int    `json:"depsets,omitempty"`
	Shards    []int    `json:"shards,omitempty"`

	Trials        int    `json:"trials"`
	Faults        int    `json:"faults,omitempty"`
	Window        uint64 `json:"window,omitempty"`
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`

	Strategy string `json:"strategy,omitempty"` // "halving" (default) | "grid"
}

// Spec resolves the request against the server's default scale and
// validates it, returning the normalized spec.
func (er ExploreRequest) Spec(def harness.Scale) (explore.Spec, error) {
	sc := def
	if er.Scale != "" {
		var err error
		if sc, err = harness.ScaleByName(er.Scale); err != nil {
			return explore.Spec{}, err
		}
	}
	es := explore.Spec{
		App: er.App, Procs: er.Procs, Scale: sc,
		Schemes: er.Schemes, Intervals: er.Intervals, WSIGBits: er.WSIGBits,
		DepSets: er.DepSets, Shards: er.Shards,
		Trials: er.Trials, Faults: er.Faults, Window: er.Window,
		DetectLatency: er.DetectLatency, Seed: er.Seed, Strategy: er.Strategy,
	}
	if err := es.Validate(); err != nil {
		return explore.Spec{}, err
	}
	return es.Normalize(), nil
}

// ExploreResponse answers both exploration endpoints.
type ExploreResponse struct {
	Key string `json:"key"`
	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Done/Total count cell evaluations across the strategy's rung
	// schedule (cells served from the store count as done).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cached is true when the report was served from the store without
	// evaluating anything for this request.
	Cached bool                    `json:"cached,omitempty"`
	Report *explore.FrontierReport `json:"report,omitempty"`
	Error  string                  `json:"error,omitempty"`
}

// exploreJob tracks one background exploration. Running and failed
// jobs live in the server's explores map (guarded by campMu, shared
// with campaigns so admission can count both under one lock); finished
// ones are dropped — their report lives in the store.
type exploreJob struct {
	mu     sync.Mutex
	status string // "running" | "failed"
	done   int
	total  int
	err    error
}

func (j *exploreJob) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

func (j *exploreJob) response(key string) ExploreResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := ExploreResponse{Key: key, Status: j.status, Done: j.done, Total: j.total}
	if j.err != nil {
		resp.Error = j.err.Error()
	}
	return resp
}

func (j *exploreJob) running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == "running"
}

// backgroundJobs counts the running background jobs of every kind —
// the multi-tenant admission quantity POSTs compare against
// QueueDepth. Caller holds campMu.
func (s *Server) backgroundJobsLocked() int {
	n := 0
	for _, j := range s.campaigns {
		if j.running() {
			n++
		}
	}
	for _, j := range s.explores {
		if j.running() {
			n++
		}
	}
	return n
}

func (s *Server) handleExplorePost(w http.ResponseWriter, r *http.Request) {
	var er ExploreRequest
	if err := decodeJSON(r, &er); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := er.Spec(s.cfg.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := explore.KeyOf(spec)

	s.campMu.Lock()
	if job, ok := s.explores[key]; ok && job.running() {
		s.campMu.Unlock()
		writeJSON(w, http.StatusAccepted, job.response(key))
		return
	}
	s.campMu.Unlock()

	// Store probe outside campMu: decoding a stored report must not
	// stall progress polls.
	if rep, ok, err := s.expLoader.LoadReport(key); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	} else if ok {
		s.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, doneExploreResponse(key, rep))
		return
	}

	s.campMu.Lock()
	// Re-check under the lock: a concurrent POST may have started the
	// exploration while the store was probed.
	if job, ok := s.explores[key]; ok && job.running() {
		s.campMu.Unlock()
		writeJSON(w, http.StatusAccepted, job.response(key))
		return
	}
	// Admission is shared with campaigns: running background jobs of
	// both kinds count against the one QueueDepth; failed tombstones
	// stay visible to GET but never eat queue slots.
	if s.backgroundJobsLocked() >= s.cfg.QueueDepth {
		s.campMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errQueueFull)
		return
	}
	// A failed tombstone for this key is superseded by the restart
	// (cells that did complete were persisted, so the restart resumes).
	job := &exploreJob{status: "running",
		total: len(spec.Cells()) * len(explore.RungSchedule(spec))}
	s.explores[key] = job
	s.campMu.Unlock()

	s.exploresTotal.Add(1)
	s.exploresRunning.Add(1)
	go s.runExplore(key, job, spec)
	writeJSON(w, http.StatusAccepted, job.response(key))
}

func doneExploreResponse(key string, rep *explore.FrontierReport) ExploreResponse {
	total := len(rep.Spec.Cells()) * len(rep.Rungs)
	return ExploreResponse{Key: key, Status: "done",
		Done: total, Total: total, Cached: true, Report: rep}
}

// runExplore executes one background exploration to completion. The
// daemon's graceful shutdown does not wait for it: evaluated cells are
// already on disk, so the next POST of the same spec resumes.
func (s *Server) runExplore(key string, job *exploreJob, spec explore.Spec) {
	defer s.exploresRunning.Add(-1)
	ex := explore.New(s.exploreEvaluator(), s.cfg.Store)
	ex.OnProgress = func(done, total int) {
		job.mu.Lock()
		if delta := done - job.done; delta > 0 {
			s.exploreCellsDone.Add(int64(delta))
		}
		if done > job.done {
			job.done = done
		}
		job.total = total
		job.mu.Unlock()
	}

	var err error
	if s.coord != nil {
		// Coordinator role: every cell evaluation routes through the
		// cluster (campaigns and fault-free runs both), so remote
		// workers share the load; admission happens in the worker loop.
		_, err = ex.Run(context.Background(), spec)
	} else {
		release := s.acquireAllBackground()
		_, err = ex.Run(context.Background(), spec)
		release()
	}
	ev, fs, _ := ex.Counters()
	s.exploreCellsEvaluated.Add(int64(ev))
	s.exploreCellsFromStore.Add(int64(fs))

	s.campMu.Lock()
	defer s.campMu.Unlock()
	if err != nil {
		job.mu.Lock()
		job.status, job.err = "failed", err
		job.mu.Unlock()
		return
	}
	// Done: the stored report is now the source of truth.
	delete(s.explores, key)
}

// exploreEvaluator picks where an exploration's simulations run: in
// process for a single-node daemon, through the cluster coordinator
// otherwise.
func (s *Server) exploreEvaluator() explore.Evaluator {
	if s.coord != nil {
		return &clusterEvaluator{s: s}
	}
	return explore.NewLocal(s.cfg.Runner, s.cfg.Store)
}

// clusterEvaluator routes an exploration's cell evaluations through
// the cluster coordinator: campaigns down the same submission path
// /v1/campaigns uses, fault-free runs as one-cell sweep jobs. Both
// persist through the shared store before returning, so the records an
// exploration reads are byte-identical no matter which worker computed
// them.
type clusterEvaluator struct{ s *Server }

func (ce *clusterEvaluator) Campaign(_ context.Context, spec campaign.Spec) (*campaign.Report, error) {
	return ce.s.clusterCampaign(spec, func(done, total int) {})
}

func (ce *clusterEvaluator) Run(ctx context.Context, spec harness.Spec) (harness.Result, error) {
	if rec, ok, _ := ce.s.cfg.Store.GetSpec(spec); ok {
		return rec.Result(), nil
	}
	j, err := ce.s.coord.SubmitSweep([]harness.Spec{spec})
	if err != nil {
		return harness.Result{}, err
	}
	ce.s.kickWorker()
	select {
	case <-j.Done():
	case <-ctx.Done():
		return harness.Result{}, ctx.Err()
	}
	if err := j.Err(); err != nil {
		return harness.Result{}, err
	}
	rec, ok, err := ce.s.cfg.Store.GetSpec(spec)
	if err != nil {
		return harness.Result{}, err
	}
	if !ok {
		return harness.Result{}, fmt.Errorf("service: explore cell %s completed but stored no record", store.KeyOf(spec))
	}
	return rec.Result(), nil
}

func (s *Server) handleExploreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.campMu.Lock()
	job, ok := s.explores[key]
	s.campMu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, job.response(key))
		return
	}
	rep, found, err := s.expLoader.LoadReport(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no exploration stored under %q", key))
		return
	}
	writeJSON(w, http.StatusOK, doneExploreResponse(key, rep))
}
