package service

// End-to-end tests of distributed mode: a coordinator Server behind
// httptest with real cluster.Workers speaking HTTP to it — the full
// join/lease/complete/store-proxy loop in one process. The tests pin
// the subsystem's three contracts: a coordinator alone still completes
// every job (the in-process worker), a fleet-computed campaign report
// is byte-identical to a single-node one even when a worker is killed
// mid-campaign, and a worker's cold start costs exactly one snapshot
// store read.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/retry"
)

// newCoordinator builds a coordinator-role Server on dir and serves it.
func newCoordinator(t *testing.T, dir string, ttl time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	srv := newServer(t, dir, func(cfg *Config) {
		cfg.Role = RoleCoordinator
		cfg.LeaseTTL = ttl
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// startWorker runs a remote-style worker (HTTP protocol + store proxy,
// no local store) against the coordinator at url until ctx ends.
func startWorker(t *testing.T, ctx context.Context, url, name string) (*cluster.Worker, *cluster.RemoteStore, chan error) {
	t.Helper()
	policy := retry.Policy{Attempts: 8, Jitter: 0.5, Seed: uint64(len(name))}
	tier := cluster.NewRemoteStore(url, nil, policy)
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Proto:  cluster.NewHTTPProtocol(url, nil, policy),
		Runner: harness.NewRunner(2),
		Tier:   tier,
		Name:   name,
		Poll:   5 * time.Millisecond,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return w, tier, done
}

// pollCampaign polls GET /v1/campaigns/{key} until done, returning the
// raw response body of the final poll — the byte-identity evidence.
func pollCampaign(t *testing.T, url, key string) []byte {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(url + "/v1/campaigns/" + key)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET campaign: %d: %s", resp.StatusCode, data)
		}
		var cr CampaignResponse
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatal(err)
		}
		switch cr.Status {
		case "done":
			return data
		case "failed":
			t.Fatalf("campaign failed: %s", cr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %s", data)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricsMap fetches and decodes /metrics.
func metricsMap(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClusterCoordinatorAloneCompletesCampaign pins the cluster-of-one
// guarantee: with zero remote workers the coordinator's in-process
// worker executes every lease, and /healthz + /metrics expose the
// cluster surface.
func TestClusterCoordinatorAloneCompletesCampaign(t *testing.T) {
	_, ts := newCoordinator(t, t.TempDir(), 0)

	cr, code := postCampaignURL(t, ts.URL,
		`{"app":"FFT","procs":4,"scheme":"Rebound","trials":4,"faults":2,"window":60000,"seed":9}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST: %d", code)
	}
	final := pollCampaign(t, ts.URL, cr.Key)
	var done CampaignResponse
	if err := json.Unmarshal(final, &done); err != nil {
		t.Fatal(err)
	}
	if done.Report == nil || done.Report.Trials != 4 || done.Report.VerifiedOK != 4 {
		t.Fatalf("coordinator-alone campaign: %s", final)
	}

	// healthz reports the role and the (empty) remote fleet.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["role"] != "coordinator" {
		t.Fatalf("healthz role = %v, want coordinator", hz["role"])
	}
	if _, ok := hz["peers"]; !ok {
		t.Fatalf("healthz carries no peer count: %v", hz)
	}

	// The cluster metrics exist and the trials flowed through leases.
	m := metricsMap(t, ts.URL)
	for _, k := range []string{"role", "workers_joined", "live_workers",
		"leases_active", "leases_expired", "trials_remote_total", "cells_remote_total"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %v", k, m)
		}
	}
	if m["role"] != "coordinator" {
		t.Fatalf("metrics role = %v", m["role"])
	}
	if m["trials_remote_total"].(float64) < 4 {
		t.Fatalf("trials_remote_total = %v, want >= 4 (leases did not carry the campaign)",
			m["trials_remote_total"])
	}
	if m["leases_active"].(float64) != 0 {
		t.Fatalf("leases_active = %v after the campaign finished", m["leases_active"])
	}
}

// postCampaignURL is postCampaign against an explicit base URL.
func postCampaignURL(t *testing.T, url, body string) (CampaignResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var cr CampaignResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return cr, resp.StatusCode
}

// TestClusterCampaignByteIdentityAcrossFleet is the acceptance test:
// a 200-trial campaign on a coordinator with two HTTP workers — one of
// which is killed mid-campaign, so its lease expires and is re-issued
// — produces a stored report byte-identical to a single-node run of
// the same spec.
func TestClusterCampaignByteIdentityAcrossFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("200-trial fleet campaign; skipped with -short")
	}
	const body = `{"app":"FFT","procs":4,"scheme":"Rebound","trials":200,"faults":2,"window":60000,"seed":42}`

	// Reference: single-node daemon, same spec.
	single := newServer(t, t.TempDir(), nil)
	ts1 := httptest.NewServer(single)
	cr, code := postCampaignURL(t, ts1.URL, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("single POST: %d", code)
	}
	key := cr.Key
	var singleDone CampaignResponse
	if err := json.Unmarshal(pollCampaign(t, ts1.URL, key), &singleDone); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	singleReport, err := json.Marshal(singleDone.Report)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: a fresh store, a short lease TTL so the killed worker's
	// lease expires quickly, and two remote workers.
	srv, ts2 := newCoordinator(t, t.TempDir(), 300*time.Millisecond)
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	w1, _, done1 := startWorker(t, wctx, ts2.URL, "alpha")
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	w2, _, done2 := startWorker(t, victimCtx, ts2.URL, "victim")

	if cr, code = postCampaignURL(t, ts2.URL, body); code != http.StatusAccepted {
		t.Fatalf("fleet POST: %d", code)
	}
	if cr.Key != key {
		t.Fatalf("campaign key diverged: %s vs %s", cr.Key, key)
	}

	// Kill the victim the moment it has pushed a trial — mid-lease by
	// construction (a lease is tens of trials). Its heartbeats stop,
	// the lease expires, and the coordinator re-issues the remainder
	// while recognizing the already-pushed records.
	killDeadline := time.Now().Add(time.Minute)
	for {
		if trials, _, _ := w2.Stats(); trials >= 1 {
			killVictim()
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatal("victim worker never ran a trial")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-done2; err != nil && err != context.Canceled {
		t.Fatalf("victim exit: %v", err)
	}

	var fleetDone CampaignResponse
	if err := json.Unmarshal(pollCampaign(t, ts2.URL, key), &fleetDone); err != nil {
		t.Fatal(err)
	}
	fleetReport, err := json.Marshal(fleetDone.Report)
	if err != nil {
		t.Fatal(err)
	}
	if string(fleetReport) != string(singleReport) {
		t.Fatalf("fleet report is not byte-identical to the single-node report\nfleet:  %.200s\nsingle: %.200s",
			fleetReport, singleReport)
	}

	// The survivor actually carried remote load, and the victim's death
	// showed up as an expired lease.
	if trials, _, _ := w1.Stats(); trials == 0 {
		t.Fatal("surviving remote worker ran no trials — work stealing never reached it")
	}
	m := srv.Coordinator().Metrics()
	if m.TrialsRemote < 200 {
		t.Fatalf("TrialsRemote = %d, want >= 200", m.TrialsRemote)
	}
	if m.LeasesExpired < 1 {
		t.Fatalf("LeasesExpired = %d, want >= 1 (the killed worker held a lease)", m.LeasesExpired)
	}
	if m.WorkersJoined < 3 {
		t.Fatalf("WorkersJoined = %d, want >= 3 (local + 2 remote)", m.WorkersJoined)
	}

	// The drained fleet shuts down cleanly.
	stopWorkers()
	if err := <-done1; err != nil && err != context.Canceled {
		t.Fatalf("survivor exit: %v", err)
	}
}

// TestClusterSweepThroughCoordinator routes a sweep through leases and
// checks the stored cells match a single-node sweep of the same specs.
func TestClusterSweepThroughCoordinator(t *testing.T) {
	_, ts := newCoordinator(t, t.TempDir(), 0)
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	w, _, done := startWorker(t, wctx, ts.URL, "sweeper")

	sweep := SweepRequest{Specs: []RunRequest{
		{App: "FFT", Procs: 4, Scheme: "Rebound"},
		{App: "FFT", Procs: 4, Scheme: "none"},
		{App: "Volrend", Procs: 4, Scheme: "Rebound"},
	}}
	var resp SweepResponse
	if code, body := do(t, ts.Client(), "POST", ts.URL+"/v1/sweeps", sweep, &resp); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	if resp.Count != 3 || resp.Cached != 0 {
		t.Fatalf("sweep cells = %d cached = %d", resp.Count, resp.Cached)
	}

	// Every cell matches a fresh serial run — remote or local execution
	// is indistinguishable in the store.
	serial := harness.NewRunner(1)
	for i, rr := range sweep.Specs {
		spec, err := rr.Spec(harness.Quick)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := serial.RunOne(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cells[i].Cycles != fresh.Cycles {
			t.Fatalf("cell %d: cluster sweep %d cycles, serial %d", i, resp.Cells[i].Cycles, fresh.Cycles)
		}
	}

	// Re-sweeping is served from the store without touching the fleet.
	var again SweepResponse
	if code, _ := do(t, ts.Client(), "POST", ts.URL+"/v1/sweeps", sweep, &again); code != 200 ||
		again.Cached != again.Count {
		t.Fatalf("re-sweep not fully cached: %d/%d", again.Cached, again.Count)
	}

	stop()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatal(err)
	}
	_ = w
}

// TestClusterWorkerColdStartOneSnapshotRead pins the cold-start
// economics: once the campaign's warmed snapshot is in the store, a
// fresh worker reaches its first trial with exactly one snapshot read
// through the proxy — no rebuild, no re-warm, no repeat fetches.
func TestClusterWorkerColdStartOneSnapshotRead(t *testing.T) {
	_, ts := newCoordinator(t, t.TempDir(), 0)

	// Campaign one (no remote workers) warms the machine and persists
	// the snapshot through the in-process worker's store tier.
	cr, _ := postCampaignURL(t, ts.URL,
		`{"app":"FFT","procs":4,"scheme":"Rebound","trials":4,"faults":2,"window":60000,"seed":1}`)
	pollCampaign(t, ts.URL, cr.Key)

	// Campaign two: same base cell (same snapshot), new fault grid. The
	// cold worker joins first so the lease chunking sees a live fleet.
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	w, tier, done := startWorker(t, wctx, ts.URL, "cold")
	cr, _ = postCampaignURL(t, ts.URL,
		`{"app":"FFT","procs":4,"scheme":"Rebound","trials":60,"faults":2,"window":60000,"seed":2}`)
	pollCampaign(t, ts.URL, cr.Key)
	stop()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatal(err)
	}

	trials, _, _ := w.Stats()
	if trials == 0 {
		t.Fatal("cold worker ran no trials — nothing to measure")
	}
	if got := tier.SnapshotReads(); got != 1 {
		t.Fatalf("cold start cost %d snapshot reads for %d trials, want exactly 1", got, trials)
	}
}
