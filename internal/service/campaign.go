package service

// The fault-campaign endpoints. A campaign is minutes of simulation,
// not a request-sized job, so the API is asynchronous: POST
// /v1/campaigns validates, starts (or joins) the campaign in the
// background and answers immediately with its content-address key and
// progress; GET /v1/campaigns/{key} polls progress and, once the
// campaign finished, returns the stored Report. Per-trial records and
// the report persist through the same content-addressed store as run
// records, so a daemon killed mid-campaign resumes it on the next POST
// instead of restarting, and a finished campaign is served from disk
// forever. Progress is also visible in /metrics (campaigns_running,
// campaign_trials_done).

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/campaign"
	"repro/internal/harness"
)

// CampaignRequest is the JSON body of POST /v1/campaigns: a base cell
// (the fields of a run request) plus the fault grid.
type CampaignRequest struct {
	RunRequest
	Trials int `json:"trials"`
	// Faults per trial; 0 selects 1.
	Faults        int    `json:"faults,omitempty"`
	Window        uint64 `json:"window,omitempty"`
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
}

// Spec resolves the request against the server's default scale and
// validates it.
func (cr CampaignRequest) Spec(def harness.Scale) (campaign.Spec, error) {
	base, err := cr.RunRequest.Spec(def)
	if err != nil {
		return campaign.Spec{}, err
	}
	cs := campaign.Spec{Base: base, Trials: cr.Trials, Faults: cr.Faults,
		Window: cr.Window, DetectLatency: cr.DetectLatency, Seed: cr.Seed}
	if cs.Faults == 0 {
		cs.Faults = 1
	}
	return cs, cs.Validate()
}

// CampaignResponse answers both campaign endpoints.
type CampaignResponse struct {
	Key string `json:"key"`
	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Done/Total report trial progress, counting trials restored from
	// the store by a resumed campaign.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cached is true when the report was served from the store without
	// simulating anything for this request.
	Cached bool             `json:"cached,omitempty"`
	Report *campaign.Report `json:"report,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// campaignJob tracks one background campaign. The server's campaign
// map holds running and failed jobs; finished ones are dropped (their
// report lives in the store).
type campaignJob struct {
	mu     sync.Mutex
	status string // "running" | "failed"
	done   int
	total  int
	err    error
}

func (j *campaignJob) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

func (j *campaignJob) response(key string) CampaignResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := CampaignResponse{Key: key, Status: j.status, Done: j.done, Total: j.total}
	if j.err != nil {
		resp.Error = j.err.Error()
	}
	return resp
}

func (j *campaignJob) running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == "running"
}

// acquireAllBackground is acquireAll for background jobs: it waits
// indefinitely on the sweep turnstile, then drains every concurrency
// slot, so a running campaign keeps machine-wide simulation concurrency
// at the runner's width exactly like a sweep does. Admission control
// happened at POST time (the running-job map is the visible queue), so
// there is no waiting-room bound or request context to honour here.
func (s *Server) acquireAllBackground() func() {
	s.sweepSem <- struct{}{}
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	s.inFlight.Add(1)
	return func() {
		for i := 0; i < cap(s.slots); i++ {
			<-s.slots
		}
		<-s.sweepSem
		s.inFlight.Add(-1)
	}
}

func (s *Server) handleCampaignPost(w http.ResponseWriter, r *http.Request) {
	var cr CampaignRequest
	if err := decodeJSON(r, &cr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := cr.Spec(s.cfg.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := campaign.KeyOf(spec)

	s.campMu.Lock()
	if job, ok := s.campaigns[key]; ok && job.running() {
		s.campMu.Unlock()
		writeJSON(w, http.StatusAccepted, job.response(key))
		return
	}
	s.campMu.Unlock()

	// Store probe outside campMu: decoding a large stored report must
	// not stall progress polls.
	if rep, ok, err := s.loader.LoadReport(key); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	} else if ok {
		s.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, CampaignResponse{Key: key, Status: "done",
			Done: rep.Trials, Total: rep.Trials, Cached: true, Report: rep})
		return
	}

	s.campMu.Lock()
	// Re-check under the lock: a concurrent POST may have started the
	// campaign while the store was probed.
	if job, ok := s.campaigns[key]; ok && job.running() {
		s.campMu.Unlock()
		writeJSON(w, http.StatusAccepted, job.response(key))
		return
	}
	// Admission is multi-tenant: running campaigns and explorations
	// share the one QueueDepth; failed tombstones stay visible to GET
	// but must not eat queue slots forever.
	if s.backgroundJobsLocked() >= s.cfg.QueueDepth {
		s.campMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errQueueFull)
		return
	}
	// A failed tombstone for this key is superseded by the restart
	// (trials that did complete were persisted, so the restart resumes).
	job := &campaignJob{status: "running", total: spec.Trials}
	s.campaigns[key] = job
	s.campMu.Unlock()

	s.campaignsTotal.Add(1)
	s.campaignsRunning.Add(1)
	go s.runCampaign(key, job, spec)
	writeJSON(w, http.StatusAccepted, job.response(key))
}

// runCampaign executes one background campaign to completion. The
// daemon's graceful shutdown does not wait for it: completed trials are
// already on disk, so the next POST of the same spec resumes.
func (s *Server) runCampaign(key string, job *campaignJob, spec campaign.Spec) {
	defer s.campaignsRunning.Add(-1)
	onProgress := func(done, total int) {
		job.mu.Lock()
		if delta := done - job.done; delta > 0 {
			s.campaignTrialsDone.Add(int64(delta))
		}
		if done > job.done {
			job.done = done
		}
		job.total = total
		job.mu.Unlock()
	}
	var rep *campaign.Report
	var err error
	if s.coord != nil {
		// Coordinator role: the cluster shards the trials across the
		// in-process worker and any remote workers; the report the
		// coordinator assembles from their records is byte-identical to
		// a local run's. Admission happens in the worker loop, not here.
		rep, err = s.clusterCampaign(spec, onProgress)
	} else {
		release := s.acquireAllBackground()
		eng := campaign.New(s.cfg.Runner, s.cfg.Store)
		eng.OnProgress = onProgress
		rep, err = eng.Run(context.Background(), spec)
		release()
	}

	s.campMu.Lock()
	defer s.campMu.Unlock()
	if err != nil {
		job.mu.Lock()
		job.status, job.err = "failed", err
		job.mu.Unlock()
		return
	}
	job.progress(rep.Trials, rep.Trials)
	// Done: the stored report is now the source of truth.
	delete(s.campaigns, key)
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.campMu.Lock()
	job, ok := s.campaigns[key]
	s.campMu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, job.response(key))
		return
	}
	rep, found, err := s.loader.LoadReport(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign stored under %q", key))
		return
	}
	writeJSON(w, http.StatusOK, CampaignResponse{Key: key, Status: "done",
		Done: rep.Trials, Total: rep.Trials, Cached: true, Report: rep})
}
