package service

// End-to-end tests of the exploration endpoints: the async POST/GET
// loop on a single daemon, byte-identity of the FrontierReport across
// a daemon restart (and the zero-re-evaluation economics of the
// resume), and byte-identity when the same exploration runs on a
// coordinator+worker cluster instead.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// exploreBody is the canonical tiny exploration: two schemes at the
// scale's default interval, four trials per cell (halving rungs 1 and
// 4).
const exploreBody = `{"app":"FFT","procs":4,"schemes":["Rebound","Global_DWB"],` +
	`"trials":4,"faults":2,"window":60000,"seed":5}`

func postExplore(t *testing.T, url, body string) (ExploreResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var er ExploreResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return er, resp.StatusCode
}

// pollExplore polls GET /v1/explore/{key} until done, returning the
// decoded final response.
func pollExplore(t *testing.T, url, key string) ExploreResponse {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(url + "/v1/explore/" + key)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET explore: %d: %s", resp.StatusCode, data)
		}
		var er ExploreResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		switch er.Status {
		case "done":
			return er
		case "failed":
			t.Fatalf("exploration failed: %s", er.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration did not finish: %s", data)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestExploreEndToEndAndRestart drives the full loop on one daemon,
// then restarts the daemon on the same store and shows the same POST
// is answered from disk — byte-identical report, zero cells evaluated.
func TestExploreEndToEndAndRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := newServer(t, dir, nil)
	ts1 := httptest.NewServer(srv1)

	first, code := postExplore(t, ts1.URL, exploreBody)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST status %d", code)
	}
	if first.Key == "" {
		t.Fatal("explore response has no key")
	}
	done := pollExplore(t, ts1.URL, first.Key)
	rep := done.Report
	if rep == nil {
		t.Fatal("done exploration carries no report")
	}
	if rep.GridTrials != 2*4 {
		t.Fatalf("grid trials = %d, want 8", rep.GridTrials)
	}
	if len(rep.Rungs) != 2 || rep.Rungs[0].Trials != 1 || rep.Rungs[1].Trials != 4 {
		t.Fatalf("halving rung schedule = %+v", rep.Rungs)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	repJSON, _ := json.Marshal(rep)

	// A second POST must be served from the store, byte-identically.
	again, code := postExplore(t, ts1.URL, exploreBody)
	if code != http.StatusOK {
		t.Fatalf("second POST status %d", code)
	}
	if again.Status != "done" || !again.Cached || again.Report == nil {
		t.Fatalf("second POST not served from store: %+v", again)
	}
	if aj, _ := json.Marshal(again.Report); string(aj) != string(repJSON) {
		t.Fatal("stored report differs from the first execution's")
	}

	// Exploration progress and economics are visible in /metrics.
	m := metricsMap(t, ts1.URL)
	for _, k := range []string{"explores_total", "explores_running",
		"explore_cells_done", "explore_cells_evaluated", "explore_cells_from_store"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %v", k, m)
		}
	}
	if m["explores_total"].(float64) < 1 || m["explore_cells_evaluated"].(float64) < 1 {
		t.Fatalf("explore metrics did not advance: %v", m)
	}
	ts1.Close()

	// Restarted daemon, same store: the POST answers from disk without
	// evaluating a single cell, and the report bytes are unchanged.
	srv2 := newServer(t, dir, nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resumed, code := postExplore(t, ts2.URL, exploreBody)
	if code != http.StatusOK || !resumed.Cached {
		t.Fatalf("restarted POST status %d cached %v", code, resumed.Cached)
	}
	if rj, _ := json.Marshal(resumed.Report); string(rj) != string(repJSON) {
		t.Fatal("restarted daemon's report differs")
	}
	m2 := metricsMap(t, ts2.URL)
	if m2["explore_cells_evaluated"].(float64) != 0 || m2["explores_total"].(float64) != 0 {
		t.Fatalf("restarted daemon re-evaluated cells: %v", m2)
	}
}

// TestExploreClusterByteIdentity runs the same exploration on a
// single-node daemon and on a coordinator with one remote worker; the
// FrontierReports must be byte-identical, with the cluster's cell
// evaluations flowing through leases.
func TestExploreClusterByteIdentity(t *testing.T) {
	// Reference: single-node daemon.
	single := newServer(t, t.TempDir(), nil)
	ts1 := httptest.NewServer(single)
	cr, code := postExplore(t, ts1.URL, exploreBody)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("single POST: %d", code)
	}
	singleDone := pollExplore(t, ts1.URL, cr.Key)
	singleJSON, _ := json.Marshal(singleDone.Report)
	ts1.Close()

	// Cluster: coordinator plus one remote worker on a fresh store.
	srv, ts2 := newCoordinator(t, t.TempDir(), 0)
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	_, _, done := startWorker(t, wctx, ts2.URL, "explorer")

	fr, code := postExplore(t, ts2.URL, exploreBody)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("fleet POST: %d", code)
	}
	if fr.Key != cr.Key {
		t.Fatalf("exploration key diverged: %s vs %s", fr.Key, cr.Key)
	}
	fleetDone := pollExplore(t, ts2.URL, fr.Key)
	if fleetJSON, _ := json.Marshal(fleetDone.Report); string(fleetJSON) != string(singleJSON) {
		t.Fatalf("cluster report is not byte-identical to the single-node report\nfleet:  %.300s\nsingle: %.300s",
			fleetJSON, singleJSON)
	}

	// The evaluations went through the cluster: campaign trials and
	// fault-free cells both flowed as leases.
	m := srv.Coordinator().Metrics()
	if m.TrialsRemote < 1 || m.CellsRemote < 1 {
		t.Fatalf("cluster carried no exploration work: trials=%d cells=%d",
			m.TrialsRemote, m.CellsRemote)
	}

	stop()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatal(err)
	}
}

func TestExploreValidation(t *testing.T) {
	ts := newCampaignTestServer(t)
	for _, body := range []string{
		`{"app":"FFT","procs":4,"schemes":["Rebound"]}`,                            // no trials
		`{"app":"FFT","procs":4,"schemes":["NoSuchScheme"],"trials":2}`,            // bad scheme
		`{"app":"NoSuchApp","procs":4,"schemes":["Rebound"],"trials":2}`,           // bad app
		`{"app":"FFT","procs":4,"schemes":["Rebound"],"trials":2,"strategy":"x"}`,  // bad strategy
		`{"app":"FFT","procs":4,"trials":2}`,                                       // empty space
	} {
		if _, code := postExplore(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/explore/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown key: status %d, want 404", resp.StatusCode)
	}
}
