package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/store"
)

// newServer builds a Server on a fresh runner and a store rooted at
// dir (one test can share a dir across servers to model restarts).
func newServer(t *testing.T, dir string, mutate func(*Config)) *Server {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Runner: harness.NewRunner(2), Store: st, Scale: harness.Quick}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do round-trips a request through the live httptest server.
func do(t *testing.T, client *http.Client, method, url string, body any, out any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

func TestEndToEndRunFetchRepeat(t *testing.T) {
	srv := newServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	// healthz first.
	if code, body := do(t, c, "GET", ts.URL+"/healthz", nil, nil); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// First run simulates.
	req := RunRequest{App: "FFT", Procs: 4, Scheme: "Rebound"}
	var first RunResponse
	if code, body := do(t, c, "POST", ts.URL+"/v1/runs", req, &first); code != 200 {
		t.Fatalf("first run: %d %s", code, body)
	}
	if first.Cached || first.Record == nil || first.Record.Cycles == 0 {
		t.Fatalf("first run should simulate: %+v", first)
	}

	// Fetch by key: the response is the stored record's bytes served
	// zero-copy, with the content address as a permanent ETag.
	var fetched store.Record
	greq, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+first.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	gresp, err := c.Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	if gresp.StatusCode != 200 {
		t.Fatalf("fetch: %d", gresp.StatusCode)
	}
	etag := gresp.Header.Get("ETag")
	if want := `"` + first.Key + `"`; etag != want {
		t.Fatalf("ETag = %q, want %q", etag, want)
	}
	if gresp.Header.Get("Content-Length") == "" {
		t.Fatal("fetch response carries no Content-Length")
	}
	if err := json.NewDecoder(gresp.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if fetched.Stats.Snapshot() != first.Record.Stats.Snapshot() {
		t.Fatal("fetched record differs from the run response")
	}
	// Conditional revalidation by ETag is a 304 without the body.
	greq, err = http.NewRequest("GET", ts.URL+"/v1/runs/"+first.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	greq.Header.Set("If-None-Match", etag)
	gresp, err = c.Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: %d, want 304", gresp.StatusCode)
	}

	// Repeat hits the cache.
	var second RunResponse
	if code, _ := do(t, c, "POST", ts.URL+"/v1/runs", req, &second); code != 200 {
		t.Fatal("second run failed")
	}
	if !second.Cached {
		t.Fatalf("second identical run should be served from the store: %+v", second)
	}
	if second.Record.Cycles != first.Record.Cycles {
		t.Fatal("cached result differs from the original")
	}

	// Metrics reflect one miss and (at least) one hit.
	var m map[string]any
	if code, body := do(t, c, "GET", ts.URL+"/metrics", nil, &m); code != 200 {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if m["cache_misses"].(float64) != 1 {
		t.Fatalf("cache_misses = %v, want 1", m["cache_misses"])
	}
	if m["cache_hits"].(float64) < 1 {
		t.Fatalf("cache_hits = %v, want >= 1", m["cache_hits"])
	}

	// Unknown key is 404.
	if code, _ := do(t, c, "GET", ts.URL+"/v1/runs/deadbeef", nil, nil); code != 404 {
		t.Fatalf("unknown key: %d, want 404", code)
	}
}

func TestInvalidSpecIs400(t *testing.T) {
	srv := newServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	cases := []any{
		RunRequest{App: "NoSuchApp", Procs: 4, Scheme: "Rebound"},
		RunRequest{App: "FFT", Procs: 4, Scheme: "bogus"},
		RunRequest{App: "FFT", Procs: -3, Scheme: "Rebound"},
		RunRequest{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: "galactic"},
		RunRequest{App: "FFT", Procs: 4, Scheme: "Rebound", DepSets: 1},
		RunRequest{App: "FFT", Procs: 4, Scheme: "Rebound", WSIGBits: 1 << 30},
		map[string]any{"app": "FFT", "unknown_field": true},
		"not json at all",
	}
	for i, body := range cases {
		code, resp := do(t, c, "POST", ts.URL+"/v1/runs", body, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("case %d: %d (%s), want 400", i, code, resp)
		}
		if !strings.Contains(resp, "error") {
			t.Fatalf("case %d: no error body: %s", i, resp)
		}
	}

	// Invalid spec inside a sweep list, and an unknown figure.
	if code, _ := do(t, c, "POST", ts.URL+"/v1/sweeps",
		SweepRequest{Specs: []RunRequest{{App: "NoSuchApp", Scheme: "Rebound"}}}, nil); code != 400 {
		t.Fatalf("bad sweep spec: %d, want 400", code)
	}
	if code, _ := do(t, c, "POST", ts.URL+"/v1/sweeps",
		SweepRequest{Figure: "fig9.9"}, nil); code != 400 {
		t.Fatalf("unknown figure: %d, want 400", code)
	}
	if code, _ := do(t, c, "POST", ts.URL+"/v1/sweeps", SweepRequest{}, nil); code != 400 {
		t.Fatalf("empty sweep: %d, want 400", code)
	}
}

func TestCancelledRequestFreesQueueSlot(t *testing.T) {
	// One worker slot, no waiting room: the cancelled request must not
	// leak the slot, or the follow-up request would 503.
	srv := newServer(t, t.TempDir(), func(cfg *Config) {
		cfg.MaxConcurrent = 1
		cfg.QueueDepth = 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := bytes.NewBufferString(`{"app":"FFT","procs":4,"scheme":"Rebound"}`)
	req := httptest.NewRequest("POST", "/v1/runs", body).WithContext(ctx)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request: %d, want 503", rw.Code)
	}

	// The slot is free: an identical live request simulates normally.
	body = bytes.NewBufferString(`{"app":"FFT","procs":4,"scheme":"Rebound"}`)
	req = httptest.NewRequest("POST", "/v1/runs", body)
	rw = httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("follow-up request: %d (%s), want 200 — queue slot leaked?",
			rw.Code, rw.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Record.Cycles == 0 {
		t.Fatalf("follow-up should have simulated fresh: %+v", resp)
	}
	if got := srv.inFlight.Value(); got != 0 {
		t.Fatalf("in_flight = %d after requests finished, want 0", got)
	}
	if got := srv.queued.Value(); got != 0 {
		t.Fatalf("queue_waiting = %d after requests finished, want 0", got)
	}
}

func TestSweepExplicitSpecsAndStoreReuse(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(t, dir, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	sweep := SweepRequest{Specs: []RunRequest{
		{App: "FFT", Procs: 4, Scheme: "Rebound"},
		{App: "FFT", Procs: 4, Scheme: "none"},
		{App: "FFT", Procs: 4, Scheme: "Rebound"}, // duplicate cell
	}}
	var resp SweepResponse
	if code, body := do(t, c, "POST", ts.URL+"/v1/sweeps", sweep, &resp); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	if resp.Count != 3 || len(resp.Cells) != 3 {
		t.Fatalf("cells = %d/%d, want 3", resp.Count, len(resp.Cells))
	}
	if resp.Cells[0].Key != resp.Cells[2].Key || resp.Cells[0].Cycles != resp.Cells[2].Cycles {
		t.Fatal("duplicate spec not collapsed to one cell")
	}
	if resp.Cached != 0 {
		t.Fatalf("fresh sweep reported %d cached cells", resp.Cached)
	}

	// A single run matching a sweep cell is now a store hit.
	var rr RunResponse
	if code, _ := do(t, c, "POST", ts.URL+"/v1/runs",
		RunRequest{App: "FFT", Procs: 4, Scheme: "none"}, &rr); code != 200 || !rr.Cached {
		t.Fatalf("run after sweep should hit the store: code=%d cached=%v", code, rr.Cached)
	}

	// Re-sweeping is fully cached.
	var again SweepResponse
	if code, _ := do(t, c, "POST", ts.URL+"/v1/sweeps", sweep, &again); code != 200 {
		t.Fatal("re-sweep failed")
	}
	if again.Cached != again.Count {
		t.Fatalf("re-sweep cached = %d, want all %d cells", again.Cached, again.Count)
	}
}

func TestConcurrentSweepsAndRunsDoNotDeadlock(t *testing.T) {
	// Sweeps are admitted exclusively (they drain every concurrency
	// slot); interleaved sweeps and single runs must all complete.
	srv := newServer(t, t.TempDir(), func(cfg *Config) {
		cfg.MaxConcurrent = 2
		cfg.QueueDepth = 16
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sweepBody := `{"specs":[{"app":"FFT","procs":4,"scheme":"Rebound"},{"app":"FFT","procs":4,"scheme":"none"}]}`
	runBody := `{"app":"Volrend","procs":4,"scheme":"Rebound"}`
	const n = 8
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		url, body := ts.URL+"/v1/sweeps", sweepBody
		if i%2 == 0 {
			url, body = ts.URL+"/v1/runs", runBody
		}
		go func() {
			resp, err := ts.Client().Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := srv.inFlight.Value(); got != 0 {
		t.Fatalf("in_flight = %d after all requests, want 0", got)
	}
	if len(srv.slots) != 0 || len(srv.sweepSem) != 0 {
		t.Fatalf("slots/turnstile leaked: %d/%d", len(srv.slots), len(srv.sweepSem))
	}
}

// TestSweepFig62PersistsAcrossRestart is the acceptance-criteria
// integration test: POST /v1/sweeps {"figure":"fig6.2"} end-to-end at
// quick scale, then a "restarted" daemon (new Server + new Runner,
// same store directory) re-serves the sweep entirely from disk, with
// results byte-identical to a fresh serial run.
func TestSweepFig62PersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6.2 sweep is a multi-cell simulation; skipped with -short")
	}
	dir := t.TempDir()

	// Daemon one serves the sweep, simulating every cell.
	srv1 := newServer(t, dir, func(cfg *Config) { cfg.Runner = harness.NewRunner(0) })
	ts1 := httptest.NewServer(srv1)
	var first SweepResponse
	if code, body := do(t, ts1.Client(), "POST", ts1.URL+"/v1/sweeps",
		SweepRequest{Figure: "fig6.2"}, &first); code != 200 {
		t.Fatalf("sweep: %d %s", code, body)
	}
	ts1.Close()
	if first.Cached != 0 || first.Count == 0 {
		t.Fatalf("fresh daemon should simulate everything: %+v", first)
	}

	// Daemon two: same store, empty runner. Everything must come from
	// disk — its runner never simulates a cell.
	srv2 := newServer(t, dir, nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	var second SweepResponse
	if code, body := do(t, ts2.Client(), "POST", ts2.URL+"/v1/sweeps",
		SweepRequest{Figure: "fig6.2"}, &second); code != 200 {
		t.Fatalf("re-sweep: %d %s", code, body)
	}
	if second.Cached != second.Count {
		t.Fatalf("restarted daemon simulated %d cells instead of serving the store",
			second.Count-second.Cached)
	}
	if srv2.cfg.Runner.CachedRuns() != 0 {
		t.Fatalf("restarted daemon ran %d simulations", srv2.cfg.Runner.CachedRuns())
	}
	for i := range first.Cells {
		if first.Cells[i].Key != second.Cells[i].Key || first.Cells[i].Cycles != second.Cells[i].Cycles {
			t.Fatalf("cell %d diverged across restart", i)
		}
	}

	// Byte-identity: every stored record equals a fresh serial run of
	// its spec on an independent runner.
	specs, err := harness.FigureSpecs("fig6.2", harness.Quick)
	if err != nil {
		t.Fatal(err)
	}
	serial := harness.NewRunner(1)
	for _, spec := range specs {
		rec, ok, err := srv2.cfg.Store.GetSpec(spec)
		if err != nil || !ok {
			t.Fatalf("spec %s not stored: ok=%v err=%v", spec.Key(), ok, err)
		}
		fresh, err := serial.RunOne(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Stats.Snapshot() != fresh.St.Snapshot() || rec.Cycles != fresh.Cycles || rec.Power != fresh.Power {
			t.Fatalf("stored record for %s not byte-identical to a fresh serial run", spec.Key())
		}
	}
}

func TestDedupJoinsInFlightSimulation(t *testing.T) {
	srv := newServer(t, t.TempDir(), func(cfg *Config) { cfg.MaxConcurrent = 4 })
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hammer one spec concurrently; the service must run it once.
	const n = 6
	type outcome struct {
		resp RunResponse
		code int
		err  error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			var o outcome
			resp, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json",
				strings.NewReader(`{"app":"Volrend","procs":4,"scheme":"Rebound"}`))
			if err != nil {
				o.err = err
				results <- o
				return
			}
			defer resp.Body.Close()
			o.code = resp.StatusCode
			o.err = json.NewDecoder(resp.Body).Decode(&o.resp)
			results <- o
		}()
	}
	var fresh, shared int
	var cycles uint64
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.code != 200 {
			t.Fatalf("request failed: %d", o.code)
		}
		if o.resp.Cached || o.resp.Deduped {
			shared++
		} else {
			fresh++
		}
		if cycles == 0 {
			cycles = o.resp.Record.Cycles
		} else if o.resp.Record.Cycles != cycles {
			t.Fatal("concurrent identical requests returned different results")
		}
	}
	if fresh != 1 {
		t.Fatalf("%d fresh simulations for one spec, want 1 (%d shared)", fresh, shared)
	}
	if srv.cfg.Runner.CachedRuns() != 1 {
		t.Fatalf("runner simulated %d cells, want 1", srv.cfg.Runner.CachedRuns())
	}
}

// TestIfNoneMatchSemantics pins the RFC 9110 §13.1.2 conditional-GET
// behaviour of GET /v1/runs/{key}: the stored record's ETag must match
// quoted tags, weak tags, comma-separated candidate lists and "*" — a
// proxy revalidating through any standards-following client sends those
// forms, and serving a full 200 to them silently defeats the cache.
func TestIfNoneMatchSemantics(t *testing.T) {
	srv := newServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	var run RunResponse
	req := RunRequest{App: "FFT", Procs: 4, Scheme: "none"}
	if code, body := do(t, c, "POST", ts.URL+"/v1/runs", req, &run); code != 200 {
		t.Fatalf("run: %d %s", code, body)
	}
	key := run.Key
	quoted := `"` + key + `"`

	cases := []struct {
		name   string
		header string
		want   int
	}{
		{"quoted tag", quoted, http.StatusNotModified},
		{"weak tag", "W/" + quoted, http.StatusNotModified},
		{"wildcard", "*", http.StatusNotModified},
		{"wildcard padded", "  *  ", http.StatusNotModified},
		{"list with match", `"nope", ` + quoted, http.StatusNotModified},
		{"list with weak match", `"nope", W/` + quoted + `, "other"`, http.StatusNotModified},
		{"bare tag (sloppy client)", key, http.StatusNotModified},
		{"no header", "", http.StatusOK},
		{"mismatched tag", `"deadbeef"`, http.StatusOK},
		{"mismatched list", `"a", "b"`, http.StatusOK},
		{"substring must not match", `"` + key[:8] + `"`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			greq, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+key, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.header != "" {
				greq.Header.Set("If-None-Match", tc.header)
			}
			resp, err := c.Do(greq)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("If-None-Match %q: got %d, want %d", tc.header, resp.StatusCode, tc.want)
			}
			if et := resp.Header.Get("ETag"); et != quoted {
				t.Fatalf("ETag = %q, want %q", et, quoted)
			}
			if tc.want == http.StatusNotModified {
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				if buf.Len() != 0 {
					t.Fatalf("304 carried a %d-byte body", buf.Len())
				}
			}
		})
	}
}
