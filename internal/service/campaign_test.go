package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/store"
)

func newCampaignTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Runner: harness.NewRunner(0), Store: st, Scale: harness.Quick})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (CampaignResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var cr CampaignResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return cr, resp.StatusCode
}

func TestCampaignEndToEnd(t *testing.T) {
	ts := newCampaignTestServer(t)
	const body = `{"app":"FFT","procs":4,"scheme":"Rebound","trials":3,"faults":2,"window":60000,"seed":5}`

	first, code := postCampaign(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST status %d", code)
	}
	if first.Key == "" {
		t.Fatal("campaign response has no key")
	}

	// Poll to completion.
	var final CampaignResponse
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + first.Key)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &final); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
		if final.Status == "done" {
			break
		}
		if final.Status == "failed" {
			t.Fatalf("campaign failed: %s", final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish: %+v", final)
		}
		time.Sleep(50 * time.Millisecond)
	}

	rep := final.Report
	if rep == nil {
		t.Fatal("done campaign carries no report")
	}
	if rep.Trials != 3 || rep.VerifiedOK != 3 {
		t.Fatalf("verified %d/%d trials", rep.VerifiedOK, rep.Trials)
	}
	if rep.FaultsInjected != 6 {
		t.Fatalf("faults injected = %d, want 6", rep.FaultsInjected)
	}
	for _, tr := range rep.TrialRecords {
		if !tr.VerifyOK {
			t.Fatalf("trial %d failed verification: %s", tr.Index, tr.VerifyError)
		}
	}

	// A second POST of the same campaign must be served from the store.
	again, code := postCampaign(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second POST status %d", code)
	}
	if again.Status != "done" || !again.Cached || again.Report == nil {
		t.Fatalf("second POST not served from store: %+v", again)
	}
	aj, _ := json.Marshal(again.Report)
	fj, _ := json.Marshal(rep)
	if string(aj) != string(fj) {
		t.Fatal("stored report differs from the first execution's")
	}

	// Campaign progress is visible in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(metrics, &m); err != nil {
		t.Fatalf("metrics not JSON: %s", metrics)
	}
	for _, k := range []string{"campaigns_total", "campaigns_running", "campaign_trials_done"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("metrics missing %q: %s", k, metrics)
		}
	}
	if m["campaigns_total"].(float64) < 1 || m["campaign_trials_done"].(float64) < 3 {
		t.Fatalf("campaign metrics did not advance: %s", metrics)
	}
}

func TestCampaignValidation(t *testing.T) {
	ts := newCampaignTestServer(t)
	for _, body := range []string{
		`{"app":"FFT","procs":4,"scheme":"Rebound"}`,                                 // no trials
		`{"app":"NoSuchApp","procs":4,"scheme":"Rebound","trials":2}`,                // bad app
		`{"app":"FFT","procs":4,"scheme":"Rebound","trials":2,"faults":100000}`,      // fault bound
		`{"app":"FFT","procs":4,"scheme":"Rebound","trials":2,"detect_latency":1e9}`, // > L
	} {
		_, code := postCampaign(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, code)
		}
	}
	// Unknown key is a 404.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown key: status %d, want 404", resp.StatusCode)
	}
}
