package service

// The API's vocabulary contract: every /v1 endpoint that rejects an
// unknown scheme must advertise the full scheme list in its error —
// including schemes appended after the paper set (Rebound_2L). A
// scheme that works but is not discoverable from the errors is a
// hidden feature.

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestSchemeVocabularyInErrors(t *testing.T) {
	ts := newCampaignTestServer(t)
	cases := []struct {
		name, path, body string
	}{
		{"run", "/v1/runs", `{"app":"FFT","procs":4,"scheme":"NoSuchScheme"}`},
		{"sweep", "/v1/sweeps", `{"specs":[{"app":"FFT","procs":4,"scheme":"NoSuchScheme"}]}`},
		{"campaign", "/v1/campaigns", `{"app":"FFT","procs":4,"scheme":"NoSuchScheme","trials":2}`},
		{"explore", "/v1/explore", `{"app":"FFT","procs":4,"schemes":["NoSuchScheme"],"trials":2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			for _, scheme := range []string{"Rebound", "Rebound_2L", "Global_DWB"} {
				if !strings.Contains(string(data), scheme) {
					t.Errorf("error does not advertise scheme %q: %s", scheme, data)
				}
			}
		})
	}
}
