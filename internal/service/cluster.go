package service

// Distributed mode. With Config.Role == RoleCoordinator the server
// grows the cluster surface on top of the unchanged public API:
//
//	POST /v1/cluster/join        worker registration
//	POST /v1/cluster/lease       work-stealing lease pull
//	POST /v1/cluster/complete    lease completion (store-validated)
//	POST /v1/cluster/heartbeat   lease renewal
//	GET  /v1/store/ns/{path...}  store proxy: raw namespace records
//	PUT  /v1/store/ns/{path...}  store proxy: raw namespace records
//	PUT  /v1/store/runs/{key}    store proxy: one verified run record
//
// Sweeps and campaigns submitted to /v1/sweeps and /v1/campaigns are
// partitioned into leases by the cluster coordinator instead of running
// on the request path; remote workers pull them over the endpoints
// above. The coordinator process also runs one in-process worker
// (cluster.Direct + LocalTier on the shared store), so a cluster of
// one node still completes every job — remote workers only add
// capacity. Because every worker pushes records through the same
// content-addressed store writes the local engine uses, the stored
// sweeps, trials and reports are byte-identical no matter which node
// computed them.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/store"
)

// Server roles.
const (
	RoleSingle      = "single"
	RoleCoordinator = "coordinator"
)

// maxStoreBodyBytes bounds store-proxy uploads. Serialized machine
// snapshots are the large case (memory image plus caches); run and
// trial records are kilobytes.
const maxStoreBodyBytes = 512 << 20

// initCluster wires the coordinator role: the cluster coordinator, its
// HTTP surface, and the in-process worker. No-op for RoleSingle.
func (s *Server) initCluster() error {
	switch s.cfg.Role {
	case "", RoleSingle:
		return nil
	case RoleCoordinator:
	default:
		return fmt.Errorf("service: unknown role %q", s.cfg.Role)
	}
	coord, err := cluster.New(cluster.Config{Store: s.cfg.Store, LeaseTTL: s.cfg.LeaseTTL})
	if err != nil {
		return err
	}
	s.coord = coord

	s.mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	s.mux.HandleFunc("POST /v1/cluster/lease", s.handleClusterLease)
	s.mux.HandleFunc("POST /v1/cluster/complete", s.handleClusterComplete)
	s.mux.HandleFunc("POST /v1/cluster/heartbeat", s.handleClusterHeartbeat)
	s.mux.HandleFunc("GET /v1/store/ns/{path...}", s.handleStoreNSGet)
	s.mux.HandleFunc("PUT /v1/store/ns/{path...}", s.handleStoreNSPut)
	s.mux.HandleFunc("PUT /v1/store/runs/{key}", s.handleStoreRunPut)

	// The in-process worker: the coordinator's own share of the fleet.
	// It executes leases on the server's runner through the local store
	// tier, admitted like a background campaign (acquireAllBackground)
	// so machine-wide simulation concurrency stays at the runner's
	// width.
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Proto:      cluster.Direct{C: coord},
		Runner:     s.cfg.Runner,
		Tier:       &cluster.LocalTier{St: s.cfg.Store},
		Name:       "local",
		ExitOnIdle: true,
	})
	if err != nil {
		return err
	}
	s.worker = w
	ctx, cancel := context.WithCancel(context.Background())
	s.workerStop = cancel
	s.workerDone = make(chan struct{})
	go func() {
		defer close(s.workerDone)
		s.runLocalWorker(ctx)
	}()
	return nil
}

// runLocalWorker loops the in-process worker: wait for the coordinator
// to have work, take the background admission (sweep turnstile + every
// slot), run leases until the cluster is idle again (ExitOnIdle),
// release. Holding the slots only while jobs exist keeps HTTP-path
// runs from being starved by an idle cluster.
func (s *Server) runLocalWorker(ctx context.Context) {
	for {
		if !s.waitForJobs(ctx) {
			return
		}
		release := s.acquireAllBackground()
		err := s.worker.Run(ctx)
		release()
		if err != nil || ctx.Err() != nil || s.workerDraining.Load() {
			return
		}
	}
}

// waitForJobs blocks until the coordinator has at least one job,
// returning false on cancellation or drain.
func (s *Server) waitForJobs(ctx context.Context) bool {
	for s.coord.Jobs() == 0 {
		if s.workerDraining.Load() {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-s.jobKick:
		}
	}
	return true
}

// kickWorker wakes the in-process worker; called whenever a job is
// submitted to the coordinator.
func (s *Server) kickWorker() {
	select {
	case s.jobKick <- struct{}{}:
	default:
	}
}

// DrainCluster stops the in-process worker after its current lease and
// waits for it — the graceful half of a coordinator shutdown (leases
// in flight complete and report; nothing is abandoned). Remote workers
// drain themselves on their own SIGTERM.
func (s *Server) DrainCluster() {
	if s.worker == nil {
		return
	}
	s.workerDraining.Store(true)
	s.worker.Drain()
	s.kickWorker()
	<-s.workerDone
}

// Close releases the server's background resources (the in-process
// worker). Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.worker != nil {
			s.workerStop()
			<-s.workerDone
		}
	})
}

// Coordinator exposes the cluster coordinator (nil for RoleSingle),
// for the daemon's drain logic and tests.
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// --- cluster protocol handlers ---------------------------------------------

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := s.coord.Join(req)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, errors.New("worker_id is required"))
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Lease(req))
}

func (s *Server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	var req cluster.CompleteRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Complete(req))
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req cluster.HeartbeatRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Heartbeat(req))
}

// --- store proxy -----------------------------------------------------------

// storeNS resolves a proxy path ("campaigns/<key>/trial-000001",
// "snapshots/<hash>") into its namespace and record name. The store's
// own segment validation rejects traversal attempts.
func (s *Server) storeNS(path string) (*store.Namespace, string, error) {
	parts := strings.Split(path, "/")
	if len(parts) < 2 {
		return nil, "", fmt.Errorf("store path %q needs at least namespace/record", path)
	}
	ns, err := s.cfg.Store.Namespace(parts[:len(parts)-1]...)
	if err != nil {
		return nil, "", err
	}
	return ns, parts[len(parts)-1], nil
}

func (s *Server) handleStoreNSGet(w http.ResponseWriter, r *http.Request) {
	ns, name, err := s.storeNS(r.PathValue("path"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, ok, err := ns.GetRaw(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record %s", name))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleStoreNSPut(w http.ResponseWriter, r *http.Request) {
	ns, name, err := s.storeNS(r.PathValue("path"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStoreBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !json.Valid(data) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("record %s: not valid JSON", name))
		return
	}
	if err := ns.PutRaw(name, data); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreRunPut accepts one run record from a worker. The record
// is decoded and stored through store.Put, which verifies it (content
// address matches the spec, stats reproduce their snapshot) — the
// proxy never trusts worker bytes further than the store would.
func (s *Server) handleStoreRunPut(w http.ResponseWriter, r *http.Request) {
	var rec store.Record
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxStoreBodyBytes))
	if err := dec.Decode(&rec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid record: %w", err))
		return
	}
	if rec.Key != r.PathValue("key") {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("record key %s does not match path", rec.Key))
		return
	}
	if err := s.cfg.Store.Put(&rec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- cluster-routed execution ----------------------------------------------

// clusterSweep runs the missing cells of a sweep through the
// coordinator: submit, wake the in-process worker, wait. The request's
// cancellation abandons the wait, not the job — a re-request joins it.
func (s *Server) clusterSweep(r *http.Request, specs []harness.Spec) error {
	j, err := s.coord.SubmitSweep(specs)
	if err != nil {
		return err
	}
	s.kickWorker()
	select {
	case <-j.Done():
		return j.Err()
	case <-r.Context().Done():
		return r.Context().Err()
	}
}

// clusterCampaign runs one campaign through the coordinator and
// returns the assembled report — the byte-identical artifact the
// coordinator persisted via campaign.Assemble.
func (s *Server) clusterCampaign(spec campaign.Spec, onProgress func(done, total int)) (*campaign.Report, error) {
	j, err := s.coord.SubmitCampaign(spec, onProgress)
	if err != nil {
		return nil, err
	}
	// Publish the resume state (trials recovered from the store at
	// submission) before any lease completes.
	onProgress(j.Progress())
	s.kickWorker()
	<-j.Done()
	if err := j.Err(); err != nil {
		return nil, err
	}
	key := campaign.KeyOf(spec)
	rep, ok, err := s.loader.LoadReport(key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("service: campaign %s finished but stored no report", key)
	}
	return rep, nil
}

// clusterState is what /healthz and /metrics report about the cluster.
type clusterState struct {
	role    string
	metrics cluster.MetricsSnapshot
}

func (s *Server) clusterInfo() clusterState {
	if s.coord == nil {
		return clusterState{role: RoleSingle}
	}
	return clusterState{role: RoleCoordinator, metrics: s.coord.Metrics()}
}
