// Package service exposes the simulation harness as an HTTP API — the
// "simulation-as-a-service" layer of cmd/reboundd. It accepts Spec and
// sweep requests, schedules them on the shared harness.Runner behind a
// bounded admission queue, persists every result in the content-
// addressed store, and serves repeated requests from that store without
// re-simulating — across process restarts.
//
// Endpoints:
//
//	POST /v1/runs             one Spec; returns the full result record
//	GET  /v1/runs/{key}       the stored record bytes by content address
//	                          (served zero-copy; ETag = key, 304 on
//	                          If-None-Match revalidation)
//	POST /v1/sweeps           a named figure (e.g. "fig6.2") or Spec list
//	POST /v1/campaigns        start/resume a fault campaign (async)
//	GET  /v1/campaigns/{key}  campaign progress, or the finished Report
//	POST /v1/explore          start/resume a scheme-space exploration (async)
//	GET  /v1/explore/{key}    exploration progress, or the FrontierReport
//	GET  /healthz             liveness
//	GET  /metrics             expvar counters (cache, queue, in-flight,
//	                          campaign progress)
//
// Request validation goes through harness.Spec.Validate, identical
// in-flight Specs are deduplicated (singleflight: the second request
// waits for the first simulation instead of taking a queue slot), and
// a request whose context is cancelled while queued frees its slot
// without starting the cell.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/store"
)

// Config wires a Server. Runner and Store are required.
type Config struct {
	Runner *harness.Runner
	Store  *store.Store
	// Scale is the default experiment scale for requests that do not
	// name one (harness.Quick or harness.Full).
	Scale harness.Scale
	// MaxConcurrent bounds how many admitted single-run jobs simulate
	// at once; <= 0 selects the runner's worker count. A sweep fans out
	// across the runner's full worker pool, so it is admitted
	// exclusively: it waits for and holds every slot, keeping the
	// machine-wide simulation concurrency at the runner's width no
	// matter how many sweeps and runs are in flight.
	MaxConcurrent int
	// QueueDepth bounds how many jobs may wait for a slot before the
	// service answers 503; <= 0 selects 64.
	QueueDepth int
	// Role selects distributed mode: RoleSingle (default) runs every
	// job in process; RoleCoordinator partitions sweeps and campaigns
	// into cluster leases and serves the cluster endpoints (cluster.go).
	Role string
	// LeaseTTL overrides the cluster lease TTL in coordinator role;
	// 0 selects cluster.DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// Server is the HTTP service. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	slots    chan struct{} // concurrency slots, cap MaxConcurrent
	waitq    chan struct{} // waiting-room tokens, cap QueueDepth
	sweepSem chan struct{} // sweep turnstile, cap 1 (see acquireAll)
	start    time.Time

	mu     sync.Mutex
	flight map[string]*call

	// Campaign state (campaign.go): running/failed background jobs by
	// campaign key, and the engine used to load stored reports. campMu
	// also guards the exploration job map (explore.go) so admission can
	// count every background job under one lock.
	campMu    sync.Mutex
	campaigns map[string]*campaignJob
	loader    *campaign.Engine

	// Exploration state (explore.go): running/failed background
	// explorations by exploration key, and the loader for stored
	// frontier reports.
	explores  map[string]*exploreJob
	expLoader *explore.Explorer

	// Cluster state (cluster.go), nil/zero for RoleSingle: the
	// coordinator, the in-process worker and its lifecycle plumbing.
	coord          *cluster.Coordinator
	worker         *cluster.Worker
	workerStop     context.CancelFunc
	workerDone     chan struct{}
	workerDraining atomic.Bool
	jobKick        chan struct{}
	closeOnce      sync.Once

	// Metrics, reported by /metrics. expvar types for atomicity; they
	// are deliberately not Publish()ed to the process-global expvar map
	// so multiple Servers (tests) can coexist.
	cacheHits   expvar.Int // requests answered from the store
	cacheMisses expvar.Int // requests that had to simulate
	dedups      expvar.Int // requests that joined an in-flight simulation
	inFlight    expvar.Int // jobs holding a slot right now
	queued      expvar.Int // jobs waiting for a slot right now
	runsTotal   expvar.Int
	sweepsTotal expvar.Int
	storeErrors expvar.Int // corrupt/unreadable records healed by re-run

	campaignsTotal     expvar.Int // background campaigns started
	campaignsRunning   expvar.Int // background campaigns in flight
	campaignTrialsDone expvar.Int // trials completed (or restored) across campaigns

	exploresTotal         expvar.Int // background explorations started
	exploresRunning       expvar.Int // background explorations in flight
	exploreCellsDone      expvar.Int // cell evaluations completed across explorations
	exploreCellsEvaluated expvar.Int // cells actually simulated (not cached)
	exploreCellsFromStore expvar.Int // cells served from the shared cells namespace
}

// call is one in-flight simulation; requests for the same Spec share it.
type call struct {
	done chan struct{}
	rec  *store.Record
	err  error
}

var errQueueFull = errors.New("service: job queue full")

// New returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil || cfg.Store == nil {
		return nil, errors.New("service: Config.Runner and Config.Store are required")
	}
	if cfg.Scale.InstrPerProc == 0 {
		cfg.Scale = harness.Full
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = cfg.Runner.Workers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		slots:     make(chan struct{}, cfg.MaxConcurrent),
		waitq:     make(chan struct{}, cfg.QueueDepth),
		sweepSem:  make(chan struct{}, 1),
		start:     time.Now(),
		flight:    make(map[string]*call),
		campaigns: make(map[string]*campaignJob),
		loader:    campaign.New(cfg.Runner, cfg.Store),
		explores:  make(map[string]*exploreJob),
		expLoader: explore.New(nil, cfg.Store),
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleGetRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignPost)
	s.mux.HandleFunc("GET /v1/campaigns/{key}", s.handleCampaignGet)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplorePost)
	s.mux.HandleFunc("GET /v1/explore/{key}", s.handleExploreGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.jobKick = make(chan struct{}, 1)
	if err := s.initCluster(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// --- request/response shapes ----------------------------------------------

// RunRequest is the JSON body of POST /v1/runs and each element of a
// sweep's explicit spec list.
type RunRequest struct {
	App    string `json:"app"`
	Procs  int    `json:"procs,omitempty"` // 0: scale default for the app's suite
	Scheme string `json:"scheme"`
	Scale  string `json:"scale,omitempty"` // "quick"|"full"; empty: server default
	// Optional experiment knobs, zero values = defaults.
	IOForce  uint64 `json:"ioforce,omitempty"`
	WSIGBits int    `json:"wsigbits,omitempty"`
	DepSets  int    `json:"depsets,omitempty"`
	LogAllWB bool   `json:"logallwb,omitempty"`
	// Shards selects the machine's state-partition count (power of
	// two; 0/1 = unsharded). It changes snapshot parallelism, never
	// results.
	Shards int `json:"shards,omitempty"`
}

// Spec resolves the request against the server's default scale and
// validates it.
func (rr RunRequest) Spec(def harness.Scale) (harness.Spec, error) {
	sc := def
	if rr.Scale != "" {
		var err error
		if sc, err = harness.ScaleByName(rr.Scale); err != nil {
			return harness.Spec{}, err
		}
	}
	procs := rr.Procs
	if procs == 0 {
		procs = harness.DefaultProcs(sc, rr.App)
	}
	spec := harness.Spec{
		App: rr.App, Procs: procs, Scheme: rr.Scheme, Scale: sc,
		IOForce: rr.IOForce, WSIGBits: rr.WSIGBits, DepSets: rr.DepSets,
		LogAllWB: rr.LogAllWB, Shards: rr.Shards,
	}
	return spec, spec.Validate()
}

// RunResponse is the JSON body answering POST /v1/runs.
type RunResponse struct {
	Key string `json:"key"`
	// Cached is true when the result came from the persistent store
	// (no simulation ran for this request); Deduped when it shared
	// another request's in-flight simulation.
	Cached  bool          `json:"cached"`
	Deduped bool          `json:"deduped,omitempty"`
	Record  *store.Record `json:"record"`
}

// SweepRequest is the JSON body of POST /v1/sweeps: either a named
// figure ("fig6.2", "t6.1", "all") or an explicit spec list.
type SweepRequest struct {
	Figure string       `json:"figure,omitempty"`
	Specs  []RunRequest `json:"specs,omitempty"`
	Scale  string       `json:"scale,omitempty"`
}

// SweepCell summarises one cell of a sweep response.
type SweepCell struct {
	Key    string `json:"key"`
	App    string `json:"app"`
	Procs  int    `json:"procs"`
	Scheme string `json:"scheme"`
	Cycles uint64 `json:"cycles"`
	Cached bool   `json:"cached"`
}

// SweepResponse is the JSON body answering POST /v1/sweeps.
type SweepResponse struct {
	Figure string      `json:"figure,omitempty"`
	Scale  string      `json:"scale"`
	Count  int         `json:"count"`
	Cached int         `json:"cached"`
	Cells  []SweepCell `json:"cells"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- admission queue -------------------------------------------------------

// acquire admits one job: it takes a concurrency slot, waiting in the
// bounded queue if all slots are busy. It returns the release func, or
// an error when the queue is full or ctx is cancelled while waiting —
// in both cases no slot is held (a cancelled request frees its place
// in line immediately).
func (s *Server) acquire(r *http.Request) (func(), error) {
	ctx := r.Context()
	select {
	case s.slots <- struct{}{}:
	default:
		// All slots busy: take a waiting-room token. The buffered
		// channel enforces the bound atomically — a burst larger than
		// QueueDepth gets errQueueFull, never an over-long queue.
		select {
		case s.waitq <- struct{}{}:
		default:
			return nil, errQueueFull
		}
		s.queued.Add(1)
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
			<-s.waitq
		case <-ctx.Done():
			s.queued.Add(-1)
			<-s.waitq
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		<-s.slots
		return nil, err
	}
	s.inFlight.Add(1)
	return func() { <-s.slots; s.inFlight.Add(-1) }, nil
}

// acquireAll admits a sweep exclusively. A sweep fans its cells out
// across the runner's full worker pool, so admitting it like a single
// job would let MaxConcurrent sweeps run MaxConcurrent×workers
// simulations at once. Instead a sweep first takes the single-entry
// sweep turnstile (bounded wait, like acquire), then drains every
// concurrency slot: while it runs, no other sweep or single run
// simulates, and total simulation concurrency stays at the runner's
// width. Only one sweep drains at a time (the turnstile), so two
// sweeps can never deadlock holding half the slots each.
func (s *Server) acquireAll(r *http.Request) (func(), error) {
	ctx := r.Context()
	select {
	case s.sweepSem <- struct{}{}:
	default:
		select {
		case s.waitq <- struct{}{}:
		default:
			return nil, errQueueFull
		}
		s.queued.Add(1)
		select {
		case s.sweepSem <- struct{}{}:
			s.queued.Add(-1)
			<-s.waitq
		case <-ctx.Done():
			s.queued.Add(-1)
			<-s.waitq
			return nil, ctx.Err()
		}
	}
	taken := 0
	giveBack := func() {
		for i := 0; i < taken; i++ {
			<-s.slots
		}
		<-s.sweepSem
	}
	for taken < cap(s.slots) {
		select {
		case s.slots <- struct{}{}:
			taken++
		case <-ctx.Done():
			giveBack()
			return nil, ctx.Err()
		}
	}
	s.inFlight.Add(1)
	return func() { giveBack(); s.inFlight.Add(-1) }, nil
}

// --- core run path ---------------------------------------------------------

// runOne serves one validated spec: store first, then singleflight
// deduplication against identical in-flight specs, then an admitted
// simulation whose result is persisted before anyone sees it.
func (s *Server) runOne(r *http.Request, spec harness.Spec) (RunResponse, error) {
	key := store.KeyOf(spec)
	var c *call
	for c == nil {
		rec, ok, err := s.cfg.Store.Get(key)
		if ok {
			s.cacheHits.Add(1)
			return RunResponse{Key: key, Cached: true, Record: rec}, nil
		}
		if err != nil {
			// A record that exists but cannot be decoded/verified is
			// healed by re-simulating and overwriting it.
			s.storeErrors.Add(1)
		}

		s.mu.Lock()
		if existing, ok := s.flight[key]; ok {
			s.mu.Unlock()
			select {
			case <-existing.done:
				if existing.err == nil {
					s.dedups.Add(1)
					return RunResponse{Key: key, Deduped: true, Record: existing.rec}, nil
				}
				if errors.Is(existing.err, context.Canceled) ||
					errors.Is(existing.err, context.DeadlineExceeded) {
					// The executor's own client went away before its
					// cell ran; that is its failure, not ours. Go
					// around again (store, new flight, or become the
					// executor ourselves).
					continue
				}
				return RunResponse{}, existing.err
			case <-r.Context().Done():
				return RunResponse{}, r.Context().Err()
			}
		}
		c = &call{done: make(chan struct{})}
		s.flight[key] = c
		s.mu.Unlock()
	}

	// Executor path. The completion bookkeeping is deferred so a panic
	// anywhere below still releases the flight entry and wakes joiners
	// (net/http recovers handler panics, so the process would survive
	// with the key wedged otherwise).
	defer func() {
		if c.rec == nil && c.err == nil {
			// Unwinding from a panic: joiners must not observe a
			// successful call with no record.
			c.err = errors.New("service: simulation aborted")
		}
		s.mu.Lock()
		delete(s.flight, key)
		s.mu.Unlock()
		close(c.done)
	}()
	// Double-check the store now that the flight entry is claimed:
	// another executor may have completed (Put, then left the flight
	// map) between our store miss above and the claim, and simulating
	// again would misreport a cached cell as fresh.
	if rec, ok, _ := s.cfg.Store.Get(key); ok {
		s.cacheHits.Add(1)
		c.rec = rec
		return RunResponse{Key: key, Cached: true, Record: rec}, nil
	}
	c.rec, c.err = s.simulate(r, spec)
	if c.err != nil {
		return RunResponse{}, c.err
	}
	s.cacheMisses.Add(1)
	return RunResponse{Key: key, Record: c.rec}, nil
}

// simulate admits, runs and persists one cell.
func (s *Server) simulate(r *http.Request, spec harness.Spec) (*store.Record, error) {
	release, err := s.acquire(r)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := s.cfg.Runner.RunOne(r.Context(), spec)
	if err != nil {
		return nil, err
	}
	return s.cfg.Store.PutResult(res)
}

// --- handlers --------------------------------------------------------------

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rr RunRequest
	if err := decodeJSON(r, &rr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := rr.Spec(s.cfg.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.runOne(r, spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.runsTotal.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleGetRun serves a stored record as its content-addressed bytes,
// straight from the store (store.GetRaw): no decode, no re-marshal, no
// copy. Records are immutable and the key IS the content address, so
// the key doubles as a permanently-valid ETag — a client that revalidates
// gets 304 without the body. The body is the bare record JSON (the
// RunResponse envelope adds nothing a by-key fetch does not know).
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok, err := s.cfg.Store.GetRaw(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result stored under %q", key))
		return
	}
	etag := `"` + key + `"`
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Content-Type", "application/json")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// etagMatches implements the RFC 9110 §13.1.2 If-None-Match check
// against one entity tag: the header may carry "*" (matches any stored
// response) or a comma-separated list of quoted tags, each optionally
// weak (W/ prefix — If-None-Match always compares weakly, so the prefix
// is stripped). A bare unquoted tag is tolerated for sloppy clients.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag || `"`+candidate+`"` == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	if err := decodeJSON(r, &sr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if (sr.Figure == "") == (len(sr.Specs) == 0) {
		writeError(w, http.StatusBadRequest,
			errors.New(`exactly one of "figure" or "specs" must be set`))
		return
	}
	sc := s.cfg.Scale
	if sr.Scale != "" {
		var err error
		if sc, err = harness.ScaleByName(sr.Scale); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	var specs []harness.Spec
	if sr.Figure != "" {
		var err error
		if specs, err = harness.FigureSpecs(sr.Figure, sc); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		for i, rr := range sr.Specs {
			spec, err := rr.Spec(sc)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("specs[%d]: %w", i, err))
				return
			}
			specs = append(specs, spec)
		}
	}

	resp, err := s.runSweep(r, sr.Figure, sc, specs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.sweepsTotal.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// runSweep serves every cell of a sweep: stored cells from the store,
// the rest simulated as one admitted job across the runner's pool,
// each result persisted before the response is assembled.
func (s *Server) runSweep(r *http.Request, figure string, sc harness.Scale, specs []harness.Spec) (*SweepResponse, error) {
	recs := make(map[string]*store.Record, len(specs))
	cached := make(map[string]bool, len(specs))
	var missing []harness.Spec
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		key := store.KeyOf(spec)
		if seen[key] {
			continue
		}
		seen[key] = true
		rec, ok, err := s.cfg.Store.Get(key)
		if ok {
			s.cacheHits.Add(1)
			recs[key] = rec
			cached[key] = true
			continue
		}
		if err != nil {
			s.storeErrors.Add(1)
		}
		missing = append(missing, spec)
	}

	switch {
	case len(missing) == 0:
	case s.coord != nil:
		// Coordinator role: the cluster runs the missing cells — the
		// in-process worker plus whatever remote workers have joined —
		// and every record lands in the shared store before the job
		// completes. The response is then read back from the store,
		// exactly as a single-node run would have written it.
		if err := s.clusterSweep(r, missing); err != nil {
			return nil, err
		}
		for _, spec := range missing {
			key := store.KeyOf(spec)
			rec, ok, err := s.cfg.Store.Get(key)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("service: sweep cell %s completed but stored no record", key)
			}
			s.cacheMisses.Add(1)
			recs[key] = rec
		}
	default:
		release, err := s.acquireAll(r)
		if err != nil {
			return nil, err
		}
		results, runErr := s.cfg.Runner.Run(r.Context(), missing...)
		release()
		// Persist every cell that did complete before reporting any
		// error: a sweep cancelled at 90% must not lose its finished
		// simulations to a later restart (cells that never ran have a
		// zero Result with no stats).
		for _, res := range results {
			if res.St == nil {
				continue
			}
			rec, err := s.cfg.Store.PutResult(res)
			if err != nil {
				return nil, err
			}
			s.cacheMisses.Add(1)
			recs[rec.Key] = rec
		}
		if runErr != nil {
			return nil, runErr
		}
	}

	resp := &SweepResponse{Figure: figure, Scale: sc.Name, Count: len(specs)}
	for _, spec := range specs {
		key := store.KeyOf(spec)
		rec := recs[key]
		cell := SweepCell{Key: key, App: spec.App, Procs: spec.Procs,
			Scheme: spec.Scheme, Cached: cached[key]}
		if rec != nil {
			cell.Cycles = rec.Cycles
		}
		if cached[key] {
			resp.Cached++
		}
		resp.Cells = append(resp.Cells, cell)
	}
	return resp, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	info := s.clusterInfo()
	body := map[string]any{
		"status":         "ok",
		"role":           info.role,
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"store_records":  s.cfg.Store.Len(),
		"workers":        s.cfg.Runner.Workers(),
		"peers":          info.metrics.LiveWorkers,
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	info := s.clusterInfo()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"cache_hits": %s, "cache_misses": %s, "dedups": %s, `+
		`"in_flight": %s, "queue_waiting": %s, "queue_capacity": %d, `+
		`"max_concurrent": %d, "runs_total": %s, "sweeps_total": %s, `+
		`"campaigns_total": %s, "campaigns_running": %s, "campaign_trials_done": %s, `+
		`"explores_total": %s, "explores_running": %s, "explore_cells_done": %s, `+
		`"explore_cells_evaluated": %s, "explore_cells_from_store": %s, `+
		`"store_errors": %s, "store_records": %d, "runner_cached_cells": %d, `+
		`"role": %q, "workers_joined": %d, "live_workers": %d, "leases_active": %d, `+
		`"leases_expired": %d, "trials_remote_total": %d, "cells_remote_total": %d}`+"\n",
		s.cacheHits.String(), s.cacheMisses.String(), s.dedups.String(),
		s.inFlight.String(), s.queued.String(), s.cfg.QueueDepth,
		s.cfg.MaxConcurrent, s.runsTotal.String(), s.sweepsTotal.String(),
		s.campaignsTotal.String(), s.campaignsRunning.String(), s.campaignTrialsDone.String(),
		s.exploresTotal.String(), s.exploresRunning.String(), s.exploreCellsDone.String(),
		s.exploreCellsEvaluated.String(), s.exploreCellsFromStore.String(),
		s.storeErrors.String(), s.cfg.Store.Len(), s.cfg.Runner.CachedRuns(),
		info.role, info.metrics.WorkersJoined, info.metrics.LiveWorkers,
		info.metrics.LeasesActive, info.metrics.LeasesExpired,
		info.metrics.TrialsRemote, info.metrics.CellsRemote)
}

// --- helpers ---------------------------------------------------------------

// maxBodyBytes bounds request bodies; spec lists are small.
const maxBodyBytes = 1 << 20

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps run-path errors to HTTP statuses: an overloaded queue
// or a cancelled request is 503 (retryable), everything else 500.
func statusFor(err error) int {
	if errors.Is(err, errQueueFull) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
