package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestGeometry(t *testing.T) {
	c := New(256*1024, 8, 32) // the paper's L2
	if c.Capacity() != 8192 {
		t.Fatalf("capacity = %d lines, want 8192", c.Capacity())
	}
	if c.Sets() != 1024 || c.Ways() != 8 {
		t.Fatalf("geometry = %dx%d", c.Sets(), c.Ways())
	}
	// Non-power-of-two set counts round down.
	c2 := New(3*32*48, 3, 32)
	if c2.Sets() != 32 {
		t.Fatalf("sets = %d, want 32", c2.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(16, 4, 32)
}

func TestInsertLookup(t *testing.T) {
	c := New(4*32*2, 2, 32) // 4 sets, 2 ways
	l, _, ev := c.Insert(5)
	if ev {
		t.Fatal("insert into empty cache evicted")
	}
	l.State = Modified
	l.Dirty = true
	l.Data = mem.Word{Val: 42}
	got := c.Lookup(5)
	if got == nil || got.Data.Val != 42 || !got.Dirty {
		t.Fatal("lookup after insert failed")
	}
	if c.Lookup(6) != nil {
		t.Fatal("phantom hit")
	}
	// Re-inserting the same address returns the same line, no eviction.
	l2, _, ev2 := c.Insert(5)
	if ev2 || l2.Data.Val != 42 {
		t.Fatal("re-insert should find existing line")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state names wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should still render")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1*32*2, 2, 32) // 1 set, 2 ways
	a, _, _ := c.Insert(0)
	a.State = Shared
	b, _, _ := c.Insert(8) // same set (any addr: 1 set)
	b.State = Shared
	c.Lookup(0) // make 0 most recently used
	l, victim, ev := c.Insert(16)
	l.State = Shared
	if !ev || victim.Addr != 8 {
		t.Fatalf("evicted %v (ev=%v), want addr 8", victim.Addr, ev)
	}
	if c.Peek(0) == nil || c.Peek(8) != nil {
		t.Fatal("LRU victim selection wrong")
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := New(1*32*4, 4, 32)
	for i := uint64(0); i < 4; i++ {
		l, _, _ := c.Insert(i)
		l.State = Shared
	}
	c.Invalidate(2)
	l, _, ev := c.Insert(9)
	l.State = Shared
	if ev {
		t.Fatal("insert with an invalid way available must not evict")
	}
	if c.Peek(0) == nil || c.Peek(1) == nil || c.Peek(3) == nil {
		t.Fatal("insert replaced a valid line instead of the invalid way")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4*32*2, 2, 32)
	l, _, _ := c.Insert(7)
	l.State = Modified
	l.Dirty = true
	l.Data = mem.Word{Val: 3}
	old, ok := c.Invalidate(7)
	if !ok || old.Data.Val != 3 || !old.Dirty {
		t.Fatal("Invalidate did not return prior contents")
	}
	if _, ok := c.Invalidate(7); ok {
		t.Fatal("double invalidate reported success")
	}
}

func TestInvalidateAllAndCounts(t *testing.T) {
	c := New(8*32*2, 2, 32)
	for i := uint64(0); i < 10; i++ {
		l, _, _ := c.Insert(i)
		l.State = Modified
		l.Dirty = i%2 == 0
		l.Delayed = i%3 == 0
	}
	if c.CountValid() != 10 {
		t.Fatalf("valid = %d, want 10", c.CountValid())
	}
	if c.CountDirty() != 5 {
		t.Fatalf("dirty = %d, want 5", c.CountDirty())
	}
	if c.CountDelayed() != 4 {
		t.Fatalf("delayed = %d, want 4", c.CountDelayed())
	}
	seen := 0
	c.InvalidateAll(func(Line) { seen++ })
	if seen != 10 || c.CountValid() != 0 {
		t.Fatal("InvalidateAll incomplete")
	}
}

// Property: under random fills, a cache never holds two copies of one
// address, never exceeds its capacity per set, and Lookup agrees with
// the most recent Insert/Invalidate for addresses that stayed resident.
func TestQuickConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(4*32*2, 2, 32)
		resident := map[uint64]uint64{} // addr -> value, for lines never evicted
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(24))
			switch rng.Intn(3) {
			case 0:
				l, victim, ev := c.Insert(addr)
				l.State = Modified
				l.Data = mem.Word{Val: uint64(i)}
				resident[addr] = uint64(i)
				if ev {
					delete(resident, victim.Addr)
				}
			case 1:
				c.Invalidate(addr)
				delete(resident, addr)
			case 2:
				if want, ok := resident[addr]; ok {
					got := c.Lookup(addr)
					if got == nil || got.Data.Val != want {
						return false
					}
				}
			}
			// No duplicate copies of any address.
			counts := map[uint64]int{}
			c.ForEach(func(l *Line) { counts[l.Addr]++ })
			for _, n := range counts {
				if n > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
