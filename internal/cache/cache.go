// Package cache models the private L1/L2 hierarchy of each Rebound
// tile (Fig 4.3a): set-associative, LRU, with per-line MESI state plus
// the two bits Rebound adds at the L2 — Dirty (write-back) and Delayed
// (a dirty line belonging to the previous checkpoint interval whose
// writeback is still draining in the background, §4.1). Each dirty line
// also carries the checkpoint epoch in which it was dirtied, which the
// memory controller needs to tag undo-log entries.
package cache

import (
	"encoding/json"
	"fmt"

	"repro/internal/mem"
)

// State is a MESI coherence state.
type State uint8

// MESI states. A Modified line is always Dirty; an Exclusive line is a
// clean owned copy (checkpoint writebacks leave lines in this state).
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String renders the state letter.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line.
type Line struct {
	Addr  uint64
	State State
	// Dirty marks data newer than memory (only meaningful in the L2;
	// the L1 is write-through and never dirty).
	Dirty bool
	// Delayed marks a dirty line whose checkpoint writeback is pending
	// in the background (§4.1).
	Delayed bool
	// Epoch is the checkpoint interval in which the line was dirtied.
	Epoch uint64
	Data  mem.Word

	lru uint64
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// lineImage mirrors Line for the persistent-snapshot codec. The lru
// stamp is unexported yet behaviour-relevant — dropping it would change
// eviction order after a snapshot round trip — so Line marshals through
// this image instead of relying on default struct encoding.
type lineImage struct {
	Addr    uint64   `json:"addr"`
	State   uint8    `json:"state"`
	Dirty   bool     `json:"dirty,omitempty"`
	Delayed bool     `json:"delayed,omitempty"`
	Epoch   uint64   `json:"epoch,omitempty"`
	Data    mem.Word `json:"data"`
	Lru     uint64   `json:"lru,omitempty"`
}

// MarshalJSON implements json.Marshaler, preserving the lru stamp.
func (l Line) MarshalJSON() ([]byte, error) {
	return json.Marshal(lineImage{
		Addr: l.Addr, State: uint8(l.State), Dirty: l.Dirty, Delayed: l.Delayed,
		Epoch: l.Epoch, Data: l.Data, Lru: l.lru,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Line) UnmarshalJSON(data []byte) error {
	var im lineImage
	if err := json.Unmarshal(data, &im); err != nil {
		return err
	}
	*l = Line{Addr: im.Addr, State: State(im.State), Dirty: im.Dirty,
		Delayed: im.Delayed, Epoch: im.Epoch, Data: im.Data, lru: im.Lru}
	return nil
}

// Arena is a reusable backing store for cache line arrays. A simulation
// cell allocates several hundred KB of cache lines; sweeping thousands
// of cells re-uses one arena per worker (harness.Runner keeps them in a
// sync.Pool) instead of churning the GC. The zero value is ready.
type Arena struct {
	buf []Line
	off int
}

// Reset makes the whole arena available again. The previous cell's
// caches must be dead (the harness recycles an arena only after its
// machine is unreachable).
func (a *Arena) Reset() { a.off = 0 }

// take returns n zeroed lines backed by the arena.
func (a *Arena) take(n int) []Line {
	if a.off+n > len(a.buf) {
		if a.off+n <= cap(a.buf) {
			a.buf = a.buf[:a.off+n]
		} else {
			// Grow with headroom so filling a fresh arena (one take per
			// cache) extends in place instead of reallocating per call.
			// No copy of the handed-out prefix: earlier caches keep
			// their (still live) slices of the old backing array, and
			// nothing reads the prefix through the arena itself.
			need := a.off + n
			a.buf = make([]Line, need, 2*need)
		}
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	clear(s) // previous cell's contents must not leak into this one
	return s
}

// Cache is a set-associative, LRU cache. Addresses are line-granular.
// Lines are stored in one flat slice (set i occupies lines[i*ways :
// (i+1)*ways]) for locality and a single allocation.
type Cache struct {
	lines   []Line
	nsets   int
	ways    int
	lruTick uint64
}

// New builds a cache of sizeBytes capacity with the given associativity
// and line size. nsets is forced to a power of two.
func New(sizeBytes, ways, lineBytes int) *Cache {
	return NewIn(nil, sizeBytes, ways, lineBytes)
}

// NewIn is New with the line array taken from arena (nil means a fresh
// heap allocation).
func NewIn(arena *Arena, sizeBytes, ways, lineBytes int) *Cache {
	if ways < 1 || lineBytes < 1 || sizeBytes < ways*lineBytes {
		panic("cache: bad geometry")
	}
	nsets := sizeBytes / (ways * lineBytes)
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= nsets {
		p *= 2
	}
	nsets = p
	c := &Cache{nsets: nsets, ways: ways}
	if arena != nil {
		c.lines = arena.take(nsets * ways)
	} else {
		c.lines = make([]Line, nsets*ways)
	}
	return c
}

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.nsets * c.ways }

func (c *Cache) set(addr uint64) []Line {
	si := int(addr) & (c.nsets - 1)
	return c.lines[si*c.ways : si*c.ways+c.ways]
}

// Lookup returns the line holding addr, touching LRU, or nil on miss.
func (c *Cache) Lookup(addr uint64) *Line {
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Addr == addr {
			c.lruTick++
			s[i].lru = c.lruTick
			return &s[i]
		}
	}
	return nil
}

// Peek is Lookup without the LRU touch.
func (c *Cache) Peek(addr uint64) *Line {
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Addr == addr {
			return &s[i]
		}
	}
	return nil
}

// Insert allocates a line for addr and returns it, together with the
// victim's previous contents if a valid line had to be evicted. The
// caller is responsible for writing back a dirty victim and for
// initialising the returned line's fields.
func (c *Cache) Insert(addr uint64) (line *Line, victim Line, evicted bool) {
	s := c.set(addr)
	// Reuse an existing copy or an invalid way if possible.
	vi := -1
	var oldest uint64 = ^uint64(0)
	for i := range s {
		if s[i].State != Invalid && s[i].Addr == addr {
			c.lruTick++
			s[i].lru = c.lruTick
			return &s[i], Line{}, false
		}
		if s[i].State == Invalid {
			if vi == -1 || s[vi].State != Invalid {
				vi = i
				oldest = 0
			}
		} else if vi == -1 || (s[vi].State != Invalid && s[i].lru < oldest) {
			vi = i
			oldest = s[i].lru
		}
	}
	v := s[vi]
	ev := v.State != Invalid
	c.lruTick++
	s[vi] = Line{Addr: addr, lru: c.lruTick}
	return &s[vi], v, ev
}

// Invalidate removes addr and returns the line's prior contents.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Addr == addr {
			old := s[i]
			s[i] = Line{}
			return old, true
		}
	}
	return Line{}, false
}

// InvalidateAll wipes the cache, calling fn (if non-nil) for each valid
// line first. Used on rollback (§3.3.5: rolled-back caches are
// invalidated; their dirty data is abandoned, the log restores memory).
func (c *Cache) InvalidateAll(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			if fn != nil {
				fn(c.lines[i])
			}
			c.lines[i] = Line{}
		}
	}
}

// ForEach visits every valid line. The *Line may be mutated.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(&c.lines[i])
		}
	}
}

// Snapshot is a saved cache image: the full line array plus the LRU
// clock. Save reuses the snapshot's backing storage across captures.
type Snapshot struct {
	Lines   []Line
	LruTick uint64
}

// Save copies the cache contents into s, reusing s.Lines storage.
func (c *Cache) Save(s *Snapshot) {
	if cap(s.Lines) < len(c.lines) {
		s.Lines = make([]Line, len(c.lines))
	} else {
		s.Lines = s.Lines[:len(c.lines)]
	}
	copy(s.Lines, c.lines)
	s.LruTick = c.lruTick
}

// Load restores the cache from s. The geometry must match the capture.
func (c *Cache) Load(s *Snapshot) {
	if len(s.Lines) != len(c.lines) {
		panic("cache: snapshot geometry mismatch")
	}
	copy(c.lines, s.Lines)
	c.lruTick = s.LruTick
}

// Reset returns the cache to its just-constructed state (all lines
// invalid, LRU clock zero), keeping the line array.
func (c *Cache) Reset() {
	clear(c.lines)
	c.lruTick = 0
}

// CountDirty returns the number of dirty lines.
func (c *Cache) CountDirty() int {
	n := 0
	c.ForEach(func(l *Line) {
		if l.Dirty {
			n++
		}
	})
	return n
}

// CountDelayed returns the number of lines with the Delayed bit set.
func (c *Cache) CountDelayed() int {
	n := 0
	c.ForEach(func(l *Line) {
		if l.Delayed {
			n++
		}
	})
	return n
}

// CountValid returns the number of valid lines.
func (c *Cache) CountValid() int {
	n := 0
	c.ForEach(func(*Line) { n++ })
	return n
}
