// Package power estimates on-chip energy and power from the
// simulator's event counts, in the spirit of the paper's CACTI/Wattch
// models updated to 45 nm (Chapter 5). Absolute values are order-of-
// magnitude estimates; the evaluation (Figs 6.6b and 6.8) compares
// schemes relative to each other and to a no-checkpointing baseline,
// which the per-event accounting preserves.
package power

import "repro/internal/stats"

// Model holds per-event energies (nanojoules) and static power (watts)
// for a 45 nm, 1 GHz manycore tile.
type Model struct {
	// Dynamic energy per event, in nJ.
	EPerInstr  float64 // core datapath, per committed instruction
	EL1Access  float64
	EL2Access  float64
	EDirAccess float64 // directory lookup/update per protocol message
	ENetMsg    float64 // interconnect traversal per message
	EDRAM      float64 // per 32-byte line access at the controller
	ELogEntry  float64 // old-value read + log write bookkeeping

	// Static (leakage + clock) power, in W.
	PStaticCore   float64 // per core+caches tile
	PStaticUncore float64 // whole-chip interconnect, controllers

	// DepOverheadFrac is the extra static+dynamic cost of the Rebound
	// hardware (Dep registers, WSIG, LW-ID fields): the paper reports
	// a 1.3% power cost for these structures (§6.5).
	DepOverheadFrac float64
}

// Default45nm returns the model used by the evaluation.
func Default45nm() Model {
	return Model{
		EPerInstr:       0.08,
		EL1Access:       0.02,
		EL2Access:       0.06,
		EDirAccess:      0.03,
		ENetMsg:         0.05,
		EDRAM:           12.0,
		ELogEntry:       14.0,
		PStaticCore:     0.25,
		PStaticUncore:   3.0,
		DepOverheadFrac: 0.013,
	}
}

// Report is the energy/power outcome of one run.
type Report struct {
	DynamicJ float64
	StaticJ  float64
	TotalJ   float64
	// Seconds is the run's wall-clock time at 1 GHz.
	Seconds float64
	// AvgPowerW is TotalJ / Seconds.
	AvgPowerW float64
	// ED2 is the energy-delay-squared product (J·s²), the metric the
	// paper uses to summarise efficiency (§6.5).
	ED2 float64
}

const nJ = 1e-9

// Compute derives a Report from run statistics. hasDepHardware marks
// schemes that carry the Rebound structures (anything except the
// no-checkpointing baseline and plain Global).
func (mo Model) Compute(st *stats.Stats, hasDepHardware bool) Report {
	var r Report
	l1 := float64(st.L1Hits + st.L1Misses)
	l2 := float64(st.L2Hits+st.L2Misses) + float64(st.L2WritebacksCkpt+st.L2WritebacksDemand)
	msgs := float64(st.CohMessages + st.DepMessages + st.ProtoMessages)
	dram := float64(st.MemReads + st.MemWrites)

	r.DynamicJ = nJ * (float64(st.TotalInstructions())*mo.EPerInstr +
		l1*mo.EL1Access +
		l2*mo.EL2Access +
		msgs*(mo.EDirAccess+mo.ENetMsg) +
		dram*mo.EDRAM +
		float64(st.LogEntries)*mo.ELogEntry)

	r.Seconds = float64(st.EndCycle) * 1e-9 // 1 GHz
	r.StaticJ = (mo.PStaticCore*float64(st.NProcs) + mo.PStaticUncore) * r.Seconds

	if hasDepHardware {
		r.DynamicJ *= 1 + mo.DepOverheadFrac
		r.StaticJ *= 1 + mo.DepOverheadFrac
	}
	r.TotalJ = r.DynamicJ + r.StaticJ
	if r.Seconds > 0 {
		r.AvgPowerW = r.TotalJ / r.Seconds
	}
	r.ED2 = r.TotalJ * r.Seconds * r.Seconds
	return r
}
