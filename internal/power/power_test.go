package power

import (
	"testing"

	"repro/internal/stats"
)

func sampleStats() *stats.Stats {
	st := stats.New(4)
	for i := range st.Instructions {
		st.Instructions[i] = 1_000_000
	}
	st.L1Hits, st.L1Misses = 900_000, 100_000
	st.L2Hits, st.L2Misses = 80_000, 20_000
	st.CohMessages, st.DepMessages = 50_000, 2_000
	st.MemReads, st.MemWrites = 20_000, 30_000
	st.LogEntries = 5_000
	st.EndCycle = 2_000_000
	return st
}

func TestComputeBasics(t *testing.T) {
	mo := Default45nm()
	r := mo.Compute(sampleStats(), false)
	if r.DynamicJ <= 0 || r.StaticJ <= 0 {
		t.Fatal("energy must be positive")
	}
	if r.TotalJ != r.DynamicJ+r.StaticJ {
		t.Fatal("total mismatch")
	}
	if r.Seconds != 2e-3 {
		t.Fatalf("seconds = %g, want 2e-3", r.Seconds)
	}
	wantP := r.TotalJ / r.Seconds
	if r.AvgPowerW != wantP {
		t.Fatal("power mismatch")
	}
	if r.ED2 != r.TotalJ*r.Seconds*r.Seconds {
		t.Fatal("ED2 mismatch")
	}
}

func TestDepHardwareOverhead(t *testing.T) {
	mo := Default45nm()
	st := sampleStats()
	plain := mo.Compute(st, false)
	dep := mo.Compute(st, true)
	ratio := dep.TotalJ / plain.TotalJ
	if ratio <= 1.0 || ratio > 1.02 {
		t.Fatalf("dep hardware overhead ratio = %f, want ~1.013", ratio)
	}
}

func TestMoreWorkMoreEnergy(t *testing.T) {
	mo := Default45nm()
	a := sampleStats()
	b := sampleStats()
	b.MemWrites *= 4
	b.LogEntries *= 4
	ra, rb := mo.Compute(a, false), mo.Compute(b, false)
	if rb.DynamicJ <= ra.DynamicJ {
		t.Fatal("more memory traffic must cost more dynamic energy")
	}
	// Same end cycle: static energy unchanged.
	if rb.StaticJ != ra.StaticJ {
		t.Fatal("static energy should only depend on time and procs")
	}
}

func TestLongerRunMorePower(t *testing.T) {
	mo := Default45nm()
	a := sampleStats()
	b := sampleStats()
	b.EndCycle *= 2
	ra, rb := mo.Compute(a, false), mo.Compute(b, false)
	if rb.StaticJ <= ra.StaticJ {
		t.Fatal("longer run must leak more")
	}
	if rb.ED2 <= ra.ED2 {
		t.Fatal("ED2 must grow with delay")
	}
}
