package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/store"
)

// testScale keeps campaign trials cheap: small budget, short intervals,
// short detection latency, same dirty-lines-per-interval regime.
var testScale = harness.Scale{Name: "camp-test", ProcsLarge: 8, ProcsSmall: 4,
	InstrPerProc: 30_000, Interval: 8_000, DetectLatency: 2_000, Seed: 1}

func testSpec(trials int) Spec {
	return Spec{
		Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: testScale},
		Trials: trials,
		Faults: 2,
		Window: 60_000,
		Seed:   7,
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSpecValidate(t *testing.T) {
	good := testSpec(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Trials = 0 },
		func(s *Spec) { s.Trials = MaxTrials + 1 },
		func(s *Spec) { s.Faults = 0 },
		func(s *Spec) { s.Faults = MaxFaults + 1 },
		func(s *Spec) { s.Window = MaxWindow + 1 },
		func(s *Spec) { s.DetectLatency = uint64(testScale.DetectLatency) + 1 },
		func(s *Spec) { s.Base.App = "NoSuchApp" },
	}
	for i, mutate := range cases {
		s := testSpec(4)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid spec", i)
		}
	}
}

func TestTrialSeedsDistinctAndStable(t *testing.T) {
	spec := testSpec(64)
	seen := make(map[uint64]int)
	for i := 0; i < spec.Trials; i++ {
		s := TrialSeed(spec, i)
		if s == 0 {
			t.Fatalf("trial %d derived seed 0", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %#x", j, i, s)
		}
		seen[s] = i
		if s != TrialSeed(spec, i) {
			t.Fatalf("trial %d seed not stable", i)
		}
	}
	other := spec
	other.Seed++
	if TrialSeed(spec, 0) == TrialSeed(other, 0) {
		t.Fatal("campaign seed does not reach trial seeds")
	}
}

func TestRunTrialDeterministicAcrossArenaReuse(t *testing.T) {
	spec := testSpec(1)
	a, err := RunTrial(spec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Second execution through a dirtied, reset arena: recycling the
	// cache arrays must not change a single field.
	arena := new(cache.Arena)
	if _, err := RunTrial(spec, 3, arena); err != nil {
		t.Fatalf("arena warm-up trial: %v", err)
	}
	arena.Reset()
	b, err := RunTrial(spec, 0, arena)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("trial 0 differs across arena reuse:\n%s\n%s", aj, bj)
	}
	if !a.VerifyOK {
		t.Fatalf("trial 0 failed verification: %s", a.VerifyError)
	}
	if a.Injected != spec.Faults || a.Detected != spec.Faults {
		t.Fatalf("injected=%d detected=%d, want %d", a.Injected, a.Detected, spec.Faults)
	}
}

// TestCampaignByteIdentity is the acceptance bar of the campaign
// subsystem: a >=200-trial campaign produces byte-identical Report JSON
// across BOTH trial executors (the build-and-warm reference and the
// machine snapshot/restore engine) and across serial, parallel and
// interrupt-then-resume executions, with every trial passing the
// poison verifier.
func TestCampaignByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("200-trial campaign skipped in -short mode")
	}
	spec := testSpec(200)

	// Reference executor: every trial builds and warms its own machine.
	freshEng := New(harness.NewRunner(1), nil)
	freshEng.FreshBuild = true
	fresh, err := freshEng.RunSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	ser, err := New(harness.NewRunner(1), nil).RunSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(harness.NewRunner(0), nil).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted execution: cancel the feed after ~a quarter of the
	// trials have completed (in-flight trials still finish and persist),
	// then resume in a fresh engine against the same store.
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	first := New(harness.NewRunner(0), st)
	var mu sync.Mutex
	first.OnProgress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done >= total/4 {
			cancel()
		}
	}
	if _, err := first.Run(ctx, spec); err == nil {
		t.Fatal("interrupted campaign reported success")
	}
	ns, err := st.Namespace("campaigns", KeyOf(spec))
	if err != nil {
		t.Fatal(err)
	}
	names, err := ns.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 || len(names) >= spec.Trials {
		t.Fatalf("interrupt persisted %d trials, want partial progress", len(names))
	}
	res, err := New(harness.NewRunner(0), st).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	fj, sj, pj, rj := reportJSON(t, fresh), reportJSON(t, ser), reportJSON(t, par), reportJSON(t, res)
	if !bytes.Equal(fj, sj) {
		t.Error("snapshot-engine report differs from the fresh-build reference")
	}
	if !bytes.Equal(sj, pj) {
		t.Error("parallel report differs from serial")
	}
	if !bytes.Equal(sj, rj) {
		t.Error("resumed report differs from serial")
	}
	if ser.Trials != spec.Trials || ser.VerifiedOK != spec.Trials {
		t.Fatalf("verified %d/%d trials; the recovery guarantee must hold on every trial",
			ser.VerifiedOK, ser.Trials)
	}
	if ser.Rollbacks == 0 || ser.FaultsInjected != spec.Trials*spec.Faults {
		t.Fatalf("campaign exercised no faults: %d rollbacks, %d injected",
			ser.Rollbacks, ser.FaultsInjected)
	}
	if ser.MTTRms <= 0 || ser.Availability <= 0 || ser.Availability > 1 {
		t.Fatalf("implausible aggregate: MTTR=%v ms availability=%v", ser.MTTRms, ser.Availability)
	}
}

// TestTrialRunnerMatchesFreshBuildAcrossSchemes pins the executor
// equivalence per scheme: for every registered scheme, trials run
// through the snapshot engine (including a machine reused across
// trials) are byte-identical to the build-and-warm reference.
func TestTrialRunnerMatchesFreshBuildAcrossSchemes(t *testing.T) {
	for _, scheme := range harness.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			spec := testSpec(3)
			spec.Base.Scheme = scheme
			tr := NewTrialRunner(spec)
			for i := 0; i < spec.Trials; i++ {
				want, err := RunTrial(spec, i, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tr.Run(i)
				if err != nil {
					t.Fatal(err)
				}
				wj, _ := json.Marshal(want)
				gj, _ := json.Marshal(got)
				if !bytes.Equal(wj, gj) {
					t.Fatalf("trial %d: snapshot engine diverged from fresh build\n got: %s\nwant: %s", i, gj, wj)
				}
			}
		})
	}
}

func TestFinishedCampaignServedFromStoreWithoutSimulating(t *testing.T) {
	spec := testSpec(6)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := New(harness.NewRunner(0), st)
	rep, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// A second engine on the same store must answer from the stored
	// report: a canceled context proves no trial was (re)started.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	again, err := New(harness.NewRunner(0), st).Run(ctx, spec)
	if err != nil {
		t.Fatalf("stored campaign re-simulated: %v", err)
	}
	if !bytes.Equal(reportJSON(t, rep), reportJSON(t, again)) {
		t.Fatal("stored report differs from the freshly computed one")
	}
	if got, ok, err := e.LoadReport(KeyOf(spec)); err != nil || !ok {
		t.Fatalf("LoadReport: ok=%v err=%v", ok, err)
	} else if got.Trials != spec.Trials {
		t.Fatalf("stored report has %d trials, want %d", got.Trials, spec.Trials)
	}
}

func TestCampaignUnderNoneSchemeFailsVerification(t *testing.T) {
	// Without a checkpointing scheme there is no recovery: every trial
	// must be reported (not hidden) as a verification failure, and the
	// settle loop's bound must keep the trial finite.
	spec := testSpec(1)
	spec.Base.Scheme = "none"
	rep, err := New(harness.NewRunner(1), nil).RunSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifiedOK != 0 {
		t.Fatalf("verified %d trials under the none scheme", rep.VerifiedOK)
	}
	if rep.TrialRecords[0].VerifyError == "" {
		t.Fatal("failed trial carries no verification error")
	}
}
