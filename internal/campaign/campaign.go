// Package campaign is the Monte Carlo fault-campaign engine: it runs
// many deterministic fault-injected trials of one experiment cell and
// aggregates their recovery behaviour — MTTR, availability, rolled-back
// work, recovery interaction-set sizes — into a Report with confidence
// intervals. It turns the §3.2 fault model (exercised elsewhere by a
// handful of hand-written tests) into a scenario-diversity workhorse:
// the paper's headline recovery guarantee, measured across thousands of
// randomly-placed fault scenarios instead of asserted on two.
//
// Determinism contract, inherited from the harness runner and extended
// to faults: a trial is a pure function of (campaign Spec, trial
// index). The machine stream comes from harness.DeriveSeed(Base) —
// every trial replays the same program, paired exactly like scheme
// comparisons — and the fault placement comes from TrialSeed(spec,
// index), never from scheduling order. Serial, parallel and
// interrupt-then-resume executions of a campaign therefore produce
// byte-identical Reports.
//
// Persistence: given a store, the engine writes each finished trial and
// the final report into the namespace campaigns/<key> (content-
// addressed on the campaign key), so an interrupted campaign resumes
// from its completed trials instead of restarting, and a finished
// campaign is served without simulating. The warmed machine snapshot
// every trial forks from persists too (store.PutSnapshot under
// warmKey), so a restarted process cold-starts to its first trial with
// one store read and zero warmups. Stored records are verified on
// read: a torn trial write or corrupt snapshot is detected and redone,
// never folded into a Report.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// Spec describes one campaign: the base experiment cell plus the fault
// grid — trial count, faults per trial, injection window (together with
// Faults, the fault rate) and detection-latency bound — and the
// campaign seed. Equal Specs denote the same campaign: same key, same
// trials, same Report.
type Spec struct {
	// Base is the experiment cell every trial simulates (application,
	// processor count, scheme, scale, knobs).
	Base harness.Spec `json:"base"`
	// Trials is the number of Monte Carlo trials.
	Trials int `json:"trials"`
	// Faults is the number of transient faults injected per trial.
	Faults int `json:"faults"`
	// Window spreads each trial's faults over this many cycles after
	// warm-up; 0 selects the injector default (100×L). Faults/Window is
	// the campaign's fault rate.
	Window uint64 `json:"window,omitempty"`
	// DetectLatency bounds each fault's detection latency in cycles;
	// 0 selects the scale's L. Must not exceed the scale's L (§3.2
	// requires detection within L for recovery to be safe).
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	// Seed is folded into every trial's fault seed via TrialSeed.
	Seed uint64 `json:"seed"`
}

// Bounds for Validate, in the spirit of harness.MaxProcs: generous
// enough for any serious campaign, tight enough that one request cannot
// ask a service for an absurd amount of work.
const (
	MaxTrials = 100_000
	MaxFaults = 256
	MaxWindow = uint64(1) << 32
)

// Validate reports whether the spec describes a runnable campaign: a
// valid base cell and a fault grid within bounds.
func (s Spec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Trials < 1 || s.Trials > MaxTrials {
		return fmt.Errorf("campaign: trials %d out of range [1, %d]", s.Trials, MaxTrials)
	}
	if s.Faults < 1 || s.Faults > MaxFaults {
		return fmt.Errorf("campaign: faults %d out of range [1, %d]", s.Faults, MaxFaults)
	}
	if s.Window > MaxWindow {
		return fmt.Errorf("campaign: window %d out of range [0, %d]", s.Window, MaxWindow)
	}
	if s.DetectLatency > uint64(s.Base.Scale.DetectLatency) {
		return fmt.Errorf("campaign: detect latency %d exceeds the scale's L (%d)",
			s.DetectLatency, uint64(s.Base.Scale.DetectLatency))
	}
	return nil
}

// trialSemantics versions the trial executor's behaviour inside the
// campaign identity. Bump it whenever a change alters what a trial
// simulates or records (warmup shape, window bounding, settle/cool-down
// policy): the campaign key addresses the persistent trial store, and
// without the version a resumed campaign would silently mix trials
// computed under two incompatible executors into one cached Report.
// v2: snapshot-engine semantics — warmup settles to a snapshot-safe
// point, the trial is bounded by the fault window plus quiesce instead
// of the full instruction budget, 2L cool-down.
// v3: stats.Summary gained the p99 tail quantile — the Report schema
// changed, and a v2-era stored report would be served with zero p99
// fields next to freshly-computed non-zero ones.
const trialSemantics = "v3"

// Key returns the canonical identity of the campaign: the trial
// semantics version, the base cell's canonical key and every
// fault-grid field, in a fixed order.
//
// The base's shard count is normalized away first: sharding changes
// how machine state is stored and parallelized, never what a trial
// simulates, so campaigns differing only in Base.Shards are the same
// campaign — they share persisted trials, reports and TrialSeed fault
// placements (the byte-identity the equivalence suite in
// internal/machine asserts). Warm machine snapshots are NOT shared
// across shard counts: warmKey uses the un-normalized Base.Key(),
// because the persisted snapshot encoding is layout-specific.
func (s Spec) Key() string {
	base := s.Base
	base.Shards = 0
	return fmt.Sprintf("campaign|%s|%s|trials=%d|faults=%d|win=%d|L=%d|seed=%d",
		trialSemantics, base.Key(), s.Trials, s.Faults, s.Window, s.DetectLatency, s.Seed)
}

// KeyOf returns the content address of a campaign: the hex sha256 of
// its canonical key. It is the public identifier the service exposes
// and the store namespace the engine persists under.
func KeyOf(s Spec) string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// TrialSeed maps (campaign key, trial index) to the trial's fault seed,
// à la harness.DeriveSeed: an FNV-1a hash of the campaign's canonical
// key and the index, finished with a splitmix64 round. A pure function
// of campaign identity — never of which worker runs the trial or in
// what order — which is what makes parallel campaigns byte-identical to
// serial ones and lets a resumed campaign re-derive exactly the
// remaining trials.
func TrialSeed(s Spec, index int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|trial=%d", s.Key(), index)
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Trial is the outcome of one fault-injected trial.
type Trial struct {
	Index int    `json:"index"`
	Seed  uint64 `json:"seed"`
	// Injected/Detected count the trial's faults and their detections.
	Injected int `json:"injected"`
	Detected int `json:"detected"`
	// Recoveries lists the per-rollback recovery latencies in cycles
	// (detection to all processors resumed), in protocol-completion
	// order; IRECSizes the matching recovery interaction-set sizes.
	Recoveries []uint64 `json:"recoveries,omitempty"`
	IRECSizes  []int    `json:"irec_sizes,omitempty"`
	// Restored counts log entries written back to memory by rollbacks.
	Restored uint64 `json:"restored"`
	// WastedCycles approximates the rolled-back work: per rollback, the
	// largest per-processor rollback distance times the set size
	// (processor-cycles that must be re-executed).
	WastedCycles uint64 `json:"wasted_cycles"`
	// RollStallCycles is the summed per-processor cycles stalled in
	// rollback/recovery — the unavailability the trial measured.
	RollStallCycles uint64 `json:"roll_stall_cycles"`
	// Tainted lists every processor that ever consumed poisoned data,
	// ascending.
	Tainted []int `json:"tainted,omitempty"`
	// EndCycle and Instructions describe the trial's total execution
	// (re-executed instructions after rollbacks count again).
	EndCycle     uint64 `json:"end_cycle"`
	Instructions uint64 `json:"instructions"`
	// VerifyOK is the poison verifier's verdict: recovery was complete,
	// no poisoned value survives anywhere, and every tainted processor
	// was rolled back. VerifyError carries the first violation.
	VerifyOK    bool   `json:"verify_ok"`
	VerifyError string `json:"verify_error,omitempty"`
}

// settleSlice is the granularity at which a trial's settle loop runs
// the machine while waiting for in-flight recoveries to finish.
const settleSlice = sim.Cycle(25_000)

// warmSettleLimit bounds the post-warmup settle to the machine's next
// snapshot-safe point (machine.SettleForSnapshot).
const warmSettleLimit = sim.Cycle(400_000)

// warm runs the deterministic fault-free warmup every trial of a
// campaign shares: a quarter of the instruction budget (so checkpoints
// exist before the first fault can land) plus the settle to the next
// snapshot-safe point. It reports whether that point was reached. Both
// trial executors run exactly this — the fresh builder because it is
// the reference semantics, the snapshot engine because the state it
// captures here is what every restored trial resumes from — so the two
// stay byte-identical by construction.
func warm(m *machine.Machine, spec Spec) bool {
	budget := spec.Base.Scale.InstrPerProc * uint64(spec.Base.Procs)
	m.Run(budget / 4)
	return m.SettleForSnapshot(warmSettleLimit)
}

// runPhase executes the fault scenario of trial (spec, index) on a
// warmed machine: launch the faults over the window, run the window
// (plus detection margin) out, settle until the injector quiesces, and
// score the trial. The trial is bounded by the fault window rather than
// the remaining instruction budget — recovery behaviour is what the
// campaign measures, and the post-recovery tail added nothing but
// simulated cycles (this bound is where the bulk of the engine's
// throughput comes from; see BENCH_hotpath.json).
func runPhase(m *machine.Machine, spec Spec, index int) Trial {
	fs := fault.Spec{
		Faults:           spec.Faults,
		Window:           sim.Cycle(spec.Window),
		MaxDetectLatency: sim.Cycle(spec.DetectLatency),
		Seed:             TrialSeed(spec, index),
	}
	inj := fault.New(m, fs)
	inj.Launch()
	L := m.Cfg.DetectLatency
	m.RunCycles(inj.ResolvedWindow() + 2*L)

	// Settle: faults detected near the end of the window may still be
	// mid-recovery; run bounded extra slices until the injector
	// quiesces. The bound keeps a scheme that never recovers (e.g.
	// "none") from spinning forever — Verify then reports the surviving
	// poison.
	maxSlices := 160 + int((inj.ResolvedWindow()+L)/settleSlice)
	for i := 0; i < maxSlices && !inj.Quiesced(); i++ {
		m.RunCycles(settleSlice)
	}
	if inj.Quiesced() {
		// A short cool-down so protocol tails (resume fan-ins, stall
		// accounting) land before the verifier inspects the machine.
		m.RunCycles(2 * L)
	}
	m.FinalizeStats()

	tr := Trial{
		Index:        index,
		Seed:         fs.Seed,
		Injected:     inj.Injected,
		Detected:     inj.Detected,
		Tainted:      inj.TaintedEver.Elems(),
		EndCycle:     m.St.EndCycle,
		Instructions: m.St.TotalInstructions(),
	}
	if n := len(m.St.Rollbacks); n > 0 {
		// Pre-size from the rollback count instead of growing by append.
		tr.Recoveries = make([]uint64, 0, n)
		tr.IRECSizes = make([]int, 0, n)
	}
	for _, rb := range m.St.Rollbacks {
		tr.Recoveries = append(tr.Recoveries, rb.End-rb.Start)
		tr.IRECSizes = append(tr.IRECSizes, rb.Size)
		tr.Restored += rb.Restored
		tr.WastedCycles += uint64(rb.MaxRollbackCycles) * uint64(rb.Size)
	}
	for _, c := range m.St.RollStall {
		tr.RollStallCycles += c
	}
	if err := inj.Verify(); err != nil {
		tr.VerifyError = err.Error()
	} else {
		tr.VerifyOK = true
	}
	return tr
}

// RunTrial executes one trial on the calling goroutine, building and
// warming a fresh machine: the base cell simulated with spec.Faults
// faults placed by TrialSeed(spec, index). It is the uncached reference
// executor underneath the Engine — a pure function of (spec, index),
// with no shared state between invocations (arena only recycles
// memory; nil means fresh allocations). The TrialRunner produces
// byte-identical trials without the per-trial rebuild.
func RunTrial(spec Spec, index int, arena *cache.Arena) (Trial, error) {
	m, err := harness.BuildIn(arena, spec.Base)
	if err != nil {
		return Trial{}, err
	}
	warm(m, spec)
	return runPhase(m, spec, index), nil
}

// warmSemantics versions the warmup the shared snapshot captures. Bump
// it whenever warm() changes what state the snapshot holds (budget
// fraction, settle policy): the persistent-snapshot key embeds it, so a
// stale stored snapshot is invalidated instead of restored.
const warmSemantics = "warm-v1"

// warmKey is the persistent-snapshot address of spec's warmed machine:
// the codec's format version, the warmup semantics version, and the
// full base-cell key. The full key — not just the reuse-relevant subset
// — because the warm state depends on everything the cell does during
// warmup, the scheme very much included.
func warmKey(spec Spec) string {
	return fmt.Sprintf("machine-snapshot|fmt=%d|%s|%s",
		machine.SnapshotFormat, warmSemantics, spec.Base.Key())
}

// SnapshotStore is the tier a TrialRunner loads its warm snapshot from
// and persists it to. *store.Store implements it for the local shared
// directory; the cluster's remote client implements it over the
// coordinator's /v1/store proxy, which is how a remote worker
// cold-starts to its first trial with one store read.
type SnapshotStore interface {
	GetSnapshot(snapKey string) (payload []byte, ok bool, err error)
	PutSnapshot(snapKey string, payload []byte) error
}

// TrialRunner runs the trials of one campaign Spec through the machine
// snapshot engine: ONE machine is built and warmed (or its warm state
// loaded from the store), its post-warmup state captured with
// machine.Snapshot, and every worker machine is forked from that single
// shared snapshot — N workers cost one warmup plus N-1 copy-on-write
// forks, not N warmups. Every trial rewinds its machine with
// machine.Restore, which after the first restore copies back only the
// pages the trial dirtied. Trials are byte-identical to RunTrial's
// because both share warm()/runPhase() and Restore rewinds the complete
// machine state.
//
// With a store attached, the serialized snapshot persists under
// warmKey(spec): a restarted process (reboundd cold start) reaches its
// first trial with one store read and zero warmups.
//
// A TrialRunner is safe for concurrent use: the fork pool grows to the
// number of concurrent callers. If the base cell never reaches a
// snapshot-safe point (SettleForSnapshot gives up), Run falls back to
// the fresh-build path — still byte-identical, since the reference
// executor settles the same way.
type TrialRunner struct {
	spec Spec
	st   SnapshotStore // optional persistent-snapshot tier

	// init runs the single build+warm (or store load); workers arriving
	// during it wait instead of warming their own machine.
	init    sync.Once
	initErr error
	// proto is the machine the snapshot was captured on (or loaded
	// into). It doubles as the first worker; Fork only reads its
	// immutable shape (Config, workload profile), so forking from it is
	// safe even while it runs trials.
	proto    *machine.Machine
	snap     *machine.MachineSnapshot // the one shared warm snapshot
	snapshot bool                     // false: cell cannot snapshot, use fresh builds

	mu          sync.Mutex
	free        []*machine.Machine
	protoIssued bool // proto has been handed out as a worker

	// Counters expose the runner's economics to tests and metrics.
	warmups atomic.Uint64 // full build+warm executions (1 per runner, 0 after a store hit)
	loads   atomic.Uint64 // snapshots restored from the store
	forks   atomic.Uint64 // worker machines forked from the shared snapshot
	fresh   atomic.Uint64 // trials that fell back to the fresh-build path
}

// NewTrialRunner returns a runner for spec's trials with no persistent
// snapshot cache.
func NewTrialRunner(spec Spec) *TrialRunner { return NewTrialRunnerStored(spec, nil) }

// NewTrialRunnerStored returns a runner that loads its warm snapshot
// from st when a valid one is stored, and persists it after warming
// otherwise. st may be nil (a typed-nil *store.Store is normalized so
// the interface comparison below stays honest).
func NewTrialRunnerStored(spec Spec, st SnapshotStore) *TrialRunner {
	if s, ok := st.(*store.Store); ok && s == nil {
		st = nil
	}
	return &TrialRunner{spec: spec, st: st}
}

// Counters returns the runner's economics: warmups (full build+warm
// executions), loads (snapshots restored from the store), forks (worker
// machines forked from the shared snapshot) and fresh (trials that fell
// back to the fresh-build path).
func (t *TrialRunner) Counters() (warmups, loads, forks, fresh uint64) {
	return t.warmups.Load(), t.loads.Load(), t.forks.Load(), t.fresh.Load()
}

// initialize builds the prototype machine and produces the shared warm
// snapshot: from the store when a valid serialized snapshot exists
// under warmKey, by running the warmup otherwise (persisting the result
// for the next process). Called exactly once per runner.
func (t *TrialRunner) initialize() error {
	m, err := harness.Build(t.spec.Base)
	if err != nil {
		return err
	}
	if t.st != nil {
		if payload, ok, err := t.st.GetSnapshot(warmKey(t.spec)); ok && err == nil {
			if snap, err := m.DecodeSnapshot(payload); err == nil {
				if err := m.Restore(snap); err == nil {
					t.loads.Add(1)
					t.proto, t.snap, t.snapshot = m, snap, true
					return nil
				}
			}
		}
		// A corrupt or stale stored snapshot is a miss: re-warm and
		// overwrite it below.
	}
	t.warmups.Add(1)
	if !warm(m, t.spec) {
		t.snapshot = false
		return nil
	}
	snap := new(machine.MachineSnapshot)
	if err := m.Snapshot(snap); err != nil {
		t.snapshot = false
		return nil
	}
	t.proto, t.snap, t.snapshot = m, snap, true
	if t.st != nil {
		// Persist for the next process. A scheme that snapshots in
		// memory but does not implement machine.SchemePersister simply
		// stays memory-only; store write failures are surfaced.
		if payload, err := m.EncodeSnapshot(snap); err == nil {
			if err := t.st.PutSnapshot(warmKey(t.spec), payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// acquire returns a machine carrying the shared warm snapshot, forking
// a new one if the pool is empty. ok=false means snapshotting is
// unsupported for this cell and the caller must use the fresh-build
// path.
func (t *TrialRunner) acquire() (*machine.Machine, bool, error) {
	t.init.Do(func() { t.initErr = t.initialize() })
	if t.initErr != nil {
		return nil, false, t.initErr
	}
	if !t.snapshot {
		return nil, false, nil
	}
	t.mu.Lock()
	if n := len(t.free); n > 0 {
		m := t.free[n-1]
		t.free = t.free[:n-1]
		t.mu.Unlock()
		return m, true, nil
	}
	// The prototype itself serves as the first worker.
	if !t.protoIssued {
		t.protoIssued = true
		t.mu.Unlock()
		return t.proto, true, nil
	}
	t.mu.Unlock()

	// Fork outside the lock: Fork only reads the parent's immutable
	// shape and the snapshot, so concurrent forks are safe and don't
	// serialize — even against the prototype running a trial.
	scheme, err := harness.SchemeFor(t.spec.Base.Scheme)
	if err != nil {
		return nil, false, err
	}
	m, err := t.proto.Fork(t.snap, scheme)
	if err != nil {
		return nil, false, err
	}
	t.forks.Add(1)
	return m, true, nil
}

func (t *TrialRunner) release(m *machine.Machine) {
	t.mu.Lock()
	t.free = append(t.free, m)
	t.mu.Unlock()
}

// Prewarm readies the runner for n concurrent workers: one warmup (or
// one store load) produces the shared snapshot, and the pool is topped
// up to n forked machines — never n warmups. It acquires all n before
// releasing any, which is what guarantees n distinct machines.
func (t *TrialRunner) Prewarm(n int) error {
	ms := make([]*machine.Machine, 0, n)
	for i := 0; i < n; i++ {
		m, ok, err := t.acquire()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ms = append(ms, m)
	}
	for _, m := range ms {
		t.release(m)
	}
	return nil
}

// Run executes trial index and returns its record: restore the warmed
// snapshot, run the fault scenario — or the fresh-build fallback when
// the cell cannot be snapshotted.
func (t *TrialRunner) Run(index int) (Trial, error) { return t.RunIn(index, nil) }

// RunIn is Run with an arena for the fresh-build fallback: when the
// cell never reaches a snapshot-safe point, every trial builds its own
// machine, and the arena recycles those builds' cache arrays exactly
// as the pre-snapshot executor did. Pooled (snapshottable) machines
// never touch the arena — they outlive its reset.
func (t *TrialRunner) RunIn(index int, arena *cache.Arena) (Trial, error) {
	m, ok, err := t.acquire()
	if err != nil {
		return Trial{}, err
	}
	if !ok {
		t.fresh.Add(1)
		return RunTrial(t.spec, index, arena)
	}
	if err := m.Restore(t.snap); err != nil {
		return Trial{}, err
	}
	tr := runPhase(m, t.spec, index)
	// A panicking trial abandons the machine (the caller recovers);
	// only a completed one returns to the pool.
	t.release(m)
	return tr, nil
}

// Report aggregates a finished campaign. Marshalled to JSON it is the
// campaign's canonical artifact: byte-identical across serial, parallel
// and interrupt-then-resume executions of the same Spec.
type Report struct {
	// Key is the campaign's content address (KeyOf(Spec)).
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`
	// Trials is the number of trials aggregated; VerifiedOK how many
	// passed the poison verifier (the recovery guarantee holds for the
	// campaign exactly when VerifiedOK == Trials).
	Trials     int `json:"trials"`
	VerifiedOK int `json:"verified_ok"`
	// Campaign-wide totals.
	FaultsInjected int `json:"faults_injected"`
	FaultsDetected int `json:"faults_detected"`
	Rollbacks      int `json:"rollbacks"`
	// Recovery summarises per-rollback recovery latency in cycles
	// (detection to all processors resumed, the Fig 6.6c framing);
	// IREC the recovery interaction-set sizes in processors; Wasted the
	// per-trial rolled-back work in processor-cycles.
	Recovery stats.Summary `json:"recovery_cycles"`
	IREC     stats.Summary `json:"irec_procs"`
	Wasted   stats.Summary `json:"wasted_cycles"`
	// MTTRms is the mean recovery latency in milliseconds at the
	// paper's 1 GHz clock (Recovery.Mean / 1e6).
	MTTRms float64 `json:"mttr_ms"`
	// Availability is measured, not modelled: the fraction of
	// processor-cycles not stalled in rollback/recovery across all
	// trials. WastedWorkFrac is the fraction of processor-cycles whose
	// work was rolled back and re-executed.
	Availability   float64 `json:"availability"`
	WastedWorkFrac float64 `json:"wasted_work_frac"`
	// TrialRecords lists every trial, in index order.
	TrialRecords []Trial `json:"trial_records"`
}

// buildReport aggregates trials (all non-nil, in index order) into the
// campaign's Report. Pure function of its inputs: aggregation order is
// trial order, never completion order.
func buildReport(spec Spec, trials []Trial) *Report {
	rep := &Report{
		Key:          KeyOf(spec),
		Spec:         spec,
		Trials:       len(trials),
		TrialRecords: trials,
	}
	var recoveries, irecs, wasted []float64
	var stall, procCycles, wastedTotal uint64
	nprocs := uint64(spec.Base.Procs)
	for _, tr := range trials {
		if tr.VerifyOK {
			rep.VerifiedOK++
		}
		rep.FaultsInjected += tr.Injected
		rep.FaultsDetected += tr.Detected
		rep.Rollbacks += len(tr.Recoveries)
		for _, r := range tr.Recoveries {
			recoveries = append(recoveries, float64(r))
		}
		for _, s := range tr.IRECSizes {
			irecs = append(irecs, float64(s))
		}
		wasted = append(wasted, float64(tr.WastedCycles))
		stall += tr.RollStallCycles
		wastedTotal += tr.WastedCycles
		procCycles += tr.EndCycle * nprocs
	}
	rep.Recovery = stats.Summarize(recoveries)
	rep.IREC = stats.Summarize(irecs)
	rep.Wasted = stats.Summarize(wasted)
	rep.MTTRms = rep.Recovery.Mean / 1e6
	if procCycles > 0 {
		rep.Availability = 1 - float64(stall)/float64(procCycles)
		rep.WastedWorkFrac = float64(wastedTotal) / float64(procCycles)
	}
	return rep
}

// Store-namespace record names.
const (
	nsCampaigns = "campaigns"
	reportName  = "report"
)

func trialName(i int) string { return fmt.Sprintf("trial-%06d", i) }

// --- distributed-execution surface ----------------------------------------
//
// The cluster coordinator shards a campaign's trial indices across
// workers and merges the records they push back through the store into
// a Report. Everything it needs is exported here so the merge is the
// SAME code path as local execution: identical record names, identical
// validation, identical aggregation — hence byte-identical Reports no
// matter where each trial ran.

// TrialRecordName returns the store record name of trial index i —
// the name remote workers push under and resumed campaigns read from.
func TrialRecordName(i int) string { return trialName(i) }

// ReportRecordName is the store record name of a finished campaign's
// Report within its namespace.
const ReportRecordName = reportName

// TrialNamespace returns the store namespace campaign key's trial
// records and report live in: the one Engine persists through locally
// and the coordinator merges from in distributed runs.
func TrialNamespace(st *store.Store, key string) (*store.Namespace, error) {
	return st.Namespace(nsCampaigns, key)
}

// NamespacePath returns the namespace path segments of a campaign
// key's records, for store tiers addressed by path (the cluster's
// /v1/store proxy). It mirrors TrialNamespace exactly — the remote
// write lands in the same directory a local PutJSON would.
func NamespacePath(key string) []string { return []string{nsCampaigns, key} }

// ValidTrial reports whether tr is the authentic record of trial
// (spec, index): it self-identifies with the right index and the seed
// derived from the campaign identity. This is the only trust a stored
// or remotely-produced trial record ever gets — a record that fails it
// is re-run, which rewrites the byte-identical truth.
func ValidTrial(spec Spec, index int, tr *Trial) bool {
	return tr != nil && tr.Index == index && tr.Seed == TrialSeed(spec, index)
}

// Assemble merges a campaign's complete trial set into its Report:
// exactly len == spec.Trials records, each validated with ValidTrial
// at its index. It is the exported form of the aggregation local runs
// use, so a Report assembled from remotely-produced records is
// byte-identical to one computed in process.
func Assemble(spec Spec, trials []Trial) (*Report, error) {
	if len(trials) != spec.Trials {
		return nil, fmt.Errorf("campaign: assemble: %d trials, want %d", len(trials), spec.Trials)
	}
	for i := range trials {
		if !ValidTrial(spec, i, &trials[i]) {
			return nil, fmt.Errorf("campaign: assemble: record at index %d is not trial %d of this campaign", i, i)
		}
	}
	return buildReport(spec, trials), nil
}

// Engine runs campaigns: trials fan out across a harness.Runner's
// worker pool (sharing its arena pooling), and — when a store is
// attached — each finished trial and the final report persist under
// the campaign's content address, so interrupted campaigns resume and
// finished ones are served from disk.
type Engine struct {
	runner *harness.Runner
	st     *store.Store

	// OnProgress, if set, observes trial completion: done trials out of
	// total, counting trials restored from the store. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnProgress func(done, total int)

	// FreshBuild forces every trial through the build-and-warm reference
	// executor instead of the snapshot engine. The acceptance suite runs
	// both and diffs the Reports; production campaigns leave it false.
	FreshBuild bool
}

// New returns an engine running on runner. st may be nil for an
// in-memory campaign (no resume, no persistence).
func New(runner *harness.Runner, st *store.Store) *Engine {
	return &Engine{runner: runner, st: st}
}

// namespace returns the campaign's store namespace, or nil without a
// store.
func (e *Engine) namespace(key string) (*store.Namespace, error) {
	if e.st == nil {
		return nil, nil
	}
	return e.st.Namespace(nsCampaigns, key)
}

// LoadReport returns the stored report for a campaign key, if the
// engine has a store and the campaign finished. A stored report whose
// embedded key disagrees with its address is reported as an error,
// never served.
func (e *Engine) LoadReport(key string) (*Report, bool, error) {
	ns, err := e.namespace(key)
	if ns == nil || err != nil {
		return nil, false, err
	}
	var rep Report
	ok, err := ns.GetJSON(reportName, &rep)
	if !ok || err != nil {
		return nil, false, err
	}
	if rep.Key != key {
		return nil, false, fmt.Errorf("campaign: stored report under %s claims key %s", key, rep.Key)
	}
	return &rep, true, nil
}

// Run executes the campaign, fanning trials out across the runner's
// worker pool. Trials already persisted (a finished or interrupted
// earlier execution) are restored instead of re-simulated; a campaign
// whose report is already stored returns it without running anything.
// A canceled context stops trials that have not started; trials
// already simulating run to completion and persist, so the next Run
// resumes from them. The Report is byte-identical to RunSerial's.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Report, error) {
	return e.run(ctx, spec, false)
}

// RunSerial executes the campaign's trials one at a time on the calling
// goroutine, in index order: the reference executor the determinism
// suite compares Run against.
func (e *Engine) RunSerial(ctx context.Context, spec Spec) (*Report, error) {
	return e.run(ctx, spec, true)
}

func (e *Engine) run(ctx context.Context, spec Spec, serial bool) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := KeyOf(spec)
	ns, err := e.namespace(key)
	if err != nil {
		return nil, err
	}
	if rep, ok, err := e.LoadReport(key); err != nil {
		return nil, err
	} else if ok {
		e.note(spec.Trials, spec.Trials)
		return rep, nil
	}

	// Restore persisted trials (resume). A record is trusted only if it
	// self-identifies: right index, right derived seed — a store dir
	// shared across campaign definitions can never leak a stale trial.
	trials := make([]*Trial, spec.Trials)
	var done int64
	if ns != nil {
		for i := range trials {
			var tr Trial
			if ok, err := ns.GetJSON(trialName(i), &tr); err == nil && ok && ValidTrial(spec, i, &tr) {
				trials[i] = &tr
				done++
			}
		}
	}
	if done > 0 {
		e.note(int(done), spec.Trials)
	}

	missing := make([]int, 0, spec.Trials)
	for i, tr := range trials {
		if tr == nil {
			missing = append(missing, i)
		}
	}
	var trunner *TrialRunner
	if !e.FreshBuild {
		// The runner shares the engine's store, so the warm snapshot
		// persists across process restarts: a resumed campaign re-warms
		// nothing, it loads the snapshot and forks.
		trunner = NewTrialRunnerStored(spec, e.st)
	}
	runOne := func(i int) (err error) {
		// Contain simulator panics the way Runner.RunOne does (a config
		// that passes Validate but panics in the machine): a campaign
		// runs trials on background goroutines inside reboundd, where an
		// unrecovered panic would take down the whole daemon instead of
		// failing the job.
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("campaign: trial %d: panic: %v", i, p)
			}
		}()
		var tr Trial
		if trunner != nil {
			// Snapshot engine: warm once per pooled machine, restore per
			// trial (a panicking trial abandons its machine, so the pool
			// never holds corrupted state). The arena only serves the
			// fresh-build fallback of non-snapshottable cells.
			e.runner.WithArena(func(a *cache.Arena) { tr, err = trunner.RunIn(i, a) })
		} else {
			e.runner.WithArena(func(a *cache.Arena) { tr, err = RunTrial(spec, i, a) })
		}
		if err != nil {
			return err
		}
		if ns != nil {
			if err := ns.PutJSON(trialName(i), &tr); err != nil {
				return err
			}
		}
		trials[i] = &tr
		e.note(int(atomic.AddInt64(&done, 1)), spec.Trials)
		return nil
	}

	if trunner != nil && !serial && len(missing) > 1 {
		// Populate the fork pool before fanning out: one warmup (or one
		// store load), then one copy-on-write fork per worker. Without
		// this the first wave of trials still forks lazily and
		// correctly — Prewarm just moves the fork cost out of the first
		// measured trial of each worker.
		n := e.runner.Workers()
		if n > len(missing) {
			n = len(missing)
		}
		if err := trunner.Prewarm(n); err != nil {
			return nil, err
		}
	}
	errs := make([]error, len(missing))
	if serial {
		for j, i := range missing {
			if err := ctx.Err(); err != nil {
				break
			}
			errs[j] = runOne(i)
		}
	} else {
		e.runner.FanOut(ctx, len(missing), func(j int) { errs[j] = runOne(missing[j]) })
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, tr := range trials {
		if tr == nil {
			// Cancelled between the feed check and here.
			return nil, context.Canceled
		}
	}

	ordered := make([]Trial, spec.Trials)
	for i, tr := range trials {
		ordered[i] = *tr
	}
	rep := buildReport(spec, ordered)
	if ns != nil {
		if err := ns.PutJSON(reportName, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func (e *Engine) note(done, total int) {
	if e.OnProgress != nil {
		e.OnProgress(done, total)
	}
}
