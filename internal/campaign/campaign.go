// Package campaign is the Monte Carlo fault-campaign engine: it runs
// many deterministic fault-injected trials of one experiment cell and
// aggregates their recovery behaviour — MTTR, availability, rolled-back
// work, recovery interaction-set sizes — into a Report with confidence
// intervals. It turns the §3.2 fault model (exercised elsewhere by a
// handful of hand-written tests) into a scenario-diversity workhorse:
// the paper's headline recovery guarantee, measured across thousands of
// randomly-placed fault scenarios instead of asserted on two.
//
// Determinism contract, inherited from the harness runner and extended
// to faults: a trial is a pure function of (campaign Spec, trial
// index). The machine stream comes from harness.DeriveSeed(Base) —
// every trial replays the same program, paired exactly like scheme
// comparisons — and the fault placement comes from TrialSeed(spec,
// index), never from scheduling order. Serial, parallel and
// interrupt-then-resume executions of a campaign therefore produce
// byte-identical Reports.
//
// Persistence: given a store, the engine writes each finished trial and
// the final report into the namespace campaigns/<key> (content-
// addressed on the campaign key), so an interrupted campaign resumes
// from its completed trials instead of restarting, and a finished
// campaign is served without simulating.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// Spec describes one campaign: the base experiment cell plus the fault
// grid — trial count, faults per trial, injection window (together with
// Faults, the fault rate) and detection-latency bound — and the
// campaign seed. Equal Specs denote the same campaign: same key, same
// trials, same Report.
type Spec struct {
	// Base is the experiment cell every trial simulates (application,
	// processor count, scheme, scale, knobs).
	Base harness.Spec `json:"base"`
	// Trials is the number of Monte Carlo trials.
	Trials int `json:"trials"`
	// Faults is the number of transient faults injected per trial.
	Faults int `json:"faults"`
	// Window spreads each trial's faults over this many cycles after
	// warm-up; 0 selects the injector default (100×L). Faults/Window is
	// the campaign's fault rate.
	Window uint64 `json:"window,omitempty"`
	// DetectLatency bounds each fault's detection latency in cycles;
	// 0 selects the scale's L. Must not exceed the scale's L (§3.2
	// requires detection within L for recovery to be safe).
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	// Seed is folded into every trial's fault seed via TrialSeed.
	Seed uint64 `json:"seed"`
}

// Bounds for Validate, in the spirit of harness.MaxProcs: generous
// enough for any serious campaign, tight enough that one request cannot
// ask a service for an absurd amount of work.
const (
	MaxTrials = 100_000
	MaxFaults = 256
	MaxWindow = uint64(1) << 32
)

// Validate reports whether the spec describes a runnable campaign: a
// valid base cell and a fault grid within bounds.
func (s Spec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Trials < 1 || s.Trials > MaxTrials {
		return fmt.Errorf("campaign: trials %d out of range [1, %d]", s.Trials, MaxTrials)
	}
	if s.Faults < 1 || s.Faults > MaxFaults {
		return fmt.Errorf("campaign: faults %d out of range [1, %d]", s.Faults, MaxFaults)
	}
	if s.Window > MaxWindow {
		return fmt.Errorf("campaign: window %d out of range [0, %d]", s.Window, MaxWindow)
	}
	if s.DetectLatency > uint64(s.Base.Scale.DetectLatency) {
		return fmt.Errorf("campaign: detect latency %d exceeds the scale's L (%d)",
			s.DetectLatency, uint64(s.Base.Scale.DetectLatency))
	}
	return nil
}

// Key returns the canonical identity of the campaign: the base cell's
// canonical key plus every fault-grid field, in a fixed order.
func (s Spec) Key() string {
	return fmt.Sprintf("campaign|%s|trials=%d|faults=%d|win=%d|L=%d|seed=%d",
		s.Base.Key(), s.Trials, s.Faults, s.Window, s.DetectLatency, s.Seed)
}

// KeyOf returns the content address of a campaign: the hex sha256 of
// its canonical key. It is the public identifier the service exposes
// and the store namespace the engine persists under.
func KeyOf(s Spec) string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// TrialSeed maps (campaign key, trial index) to the trial's fault seed,
// à la harness.DeriveSeed: an FNV-1a hash of the campaign's canonical
// key and the index, finished with a splitmix64 round. A pure function
// of campaign identity — never of which worker runs the trial or in
// what order — which is what makes parallel campaigns byte-identical to
// serial ones and lets a resumed campaign re-derive exactly the
// remaining trials.
func TrialSeed(s Spec, index int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|trial=%d", s.Key(), index)
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Trial is the outcome of one fault-injected trial.
type Trial struct {
	Index int    `json:"index"`
	Seed  uint64 `json:"seed"`
	// Injected/Detected count the trial's faults and their detections.
	Injected int `json:"injected"`
	Detected int `json:"detected"`
	// Recoveries lists the per-rollback recovery latencies in cycles
	// (detection to all processors resumed), in protocol-completion
	// order; IRECSizes the matching recovery interaction-set sizes.
	Recoveries []uint64 `json:"recoveries,omitempty"`
	IRECSizes  []int    `json:"irec_sizes,omitempty"`
	// Restored counts log entries written back to memory by rollbacks.
	Restored uint64 `json:"restored"`
	// WastedCycles approximates the rolled-back work: per rollback, the
	// largest per-processor rollback distance times the set size
	// (processor-cycles that must be re-executed).
	WastedCycles uint64 `json:"wasted_cycles"`
	// RollStallCycles is the summed per-processor cycles stalled in
	// rollback/recovery — the unavailability the trial measured.
	RollStallCycles uint64 `json:"roll_stall_cycles"`
	// Tainted lists every processor that ever consumed poisoned data,
	// ascending.
	Tainted []int `json:"tainted,omitempty"`
	// EndCycle and Instructions describe the trial's total execution
	// (re-executed instructions after rollbacks count again).
	EndCycle     uint64 `json:"end_cycle"`
	Instructions uint64 `json:"instructions"`
	// VerifyOK is the poison verifier's verdict: recovery was complete,
	// no poisoned value survives anywhere, and every tainted processor
	// was rolled back. VerifyError carries the first violation.
	VerifyOK    bool   `json:"verify_ok"`
	VerifyError string `json:"verify_error,omitempty"`
}

// settleSlice is the granularity at which a trial's settle loop runs
// the machine while waiting for in-flight recoveries to finish.
const settleSlice = sim.Cycle(100_000)

// RunTrial executes one trial on the calling goroutine: the base cell
// simulated with spec.Faults faults placed by TrialSeed(spec, index).
// It is the uncached primitive underneath the Engine — a pure function
// of (spec, index), with no shared state between invocations (arena
// only recycles memory; nil means fresh allocations).
func RunTrial(spec Spec, index int, arena *cache.Arena) (Trial, error) {
	m, err := harness.BuildIn(arena, spec.Base)
	if err != nil {
		return Trial{}, err
	}
	fs := fault.Spec{
		Faults:           spec.Faults,
		Window:           sim.Cycle(spec.Window),
		MaxDetectLatency: sim.Cycle(spec.DetectLatency),
		Seed:             TrialSeed(spec, index),
	}
	inj := fault.New(m, fs)

	// Warm up a quarter of the budget so checkpoints exist before the
	// first fault can land, launch the trial's fault scenario over the
	// window, then run the budget out.
	budget := spec.Base.Scale.InstrPerProc * uint64(spec.Base.Procs)
	m.Run(budget / 4)
	inj.Launch()
	m.Run(budget - budget/4)

	// Settle: faults placed near the end of the window may still be
	// undetected (or mid-recovery) when the instruction budget runs
	// out; run bounded extra slices until the injector quiesces. The
	// bound keeps a scheme that never recovers (e.g. "none") from
	// spinning forever — Verify then reports the surviving poison.
	maxSlices := 40 + int((inj.ResolvedWindow()+m.Cfg.DetectLatency)/settleSlice)
	for i := 0; i < maxSlices && !inj.Quiesced(); i++ {
		m.RunCycles(settleSlice)
	}
	if inj.Quiesced() {
		// One more slice so background drains and protocol tails finish
		// before the verifier inspects memory.
		m.RunCycles(settleSlice)
	}
	m.FinalizeStats()

	tr := Trial{
		Index:        index,
		Seed:         fs.Seed,
		Injected:     inj.Injected,
		Detected:     inj.Detected,
		Tainted:      inj.TaintedEver.Elems(),
		EndCycle:     m.St.EndCycle,
		Instructions: m.St.TotalInstructions(),
	}
	for _, rb := range m.St.Rollbacks {
		tr.Recoveries = append(tr.Recoveries, rb.End-rb.Start)
		tr.IRECSizes = append(tr.IRECSizes, rb.Size)
		tr.Restored += rb.Restored
		tr.WastedCycles += uint64(rb.MaxRollbackCycles) * uint64(rb.Size)
	}
	for _, c := range m.St.RollStall {
		tr.RollStallCycles += c
	}
	if err := inj.Verify(); err != nil {
		tr.VerifyError = err.Error()
	} else {
		tr.VerifyOK = true
	}
	return tr, nil
}

// Report aggregates a finished campaign. Marshalled to JSON it is the
// campaign's canonical artifact: byte-identical across serial, parallel
// and interrupt-then-resume executions of the same Spec.
type Report struct {
	// Key is the campaign's content address (KeyOf(Spec)).
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`
	// Trials is the number of trials aggregated; VerifiedOK how many
	// passed the poison verifier (the recovery guarantee holds for the
	// campaign exactly when VerifiedOK == Trials).
	Trials     int `json:"trials"`
	VerifiedOK int `json:"verified_ok"`
	// Campaign-wide totals.
	FaultsInjected int `json:"faults_injected"`
	FaultsDetected int `json:"faults_detected"`
	Rollbacks      int `json:"rollbacks"`
	// Recovery summarises per-rollback recovery latency in cycles
	// (detection to all processors resumed, the Fig 6.6c framing);
	// IREC the recovery interaction-set sizes in processors; Wasted the
	// per-trial rolled-back work in processor-cycles.
	Recovery stats.Summary `json:"recovery_cycles"`
	IREC     stats.Summary `json:"irec_procs"`
	Wasted   stats.Summary `json:"wasted_cycles"`
	// MTTRms is the mean recovery latency in milliseconds at the
	// paper's 1 GHz clock (Recovery.Mean / 1e6).
	MTTRms float64 `json:"mttr_ms"`
	// Availability is measured, not modelled: the fraction of
	// processor-cycles not stalled in rollback/recovery across all
	// trials. WastedWorkFrac is the fraction of processor-cycles whose
	// work was rolled back and re-executed.
	Availability   float64 `json:"availability"`
	WastedWorkFrac float64 `json:"wasted_work_frac"`
	// TrialRecords lists every trial, in index order.
	TrialRecords []Trial `json:"trial_records"`
}

// buildReport aggregates trials (all non-nil, in index order) into the
// campaign's Report. Pure function of its inputs: aggregation order is
// trial order, never completion order.
func buildReport(spec Spec, trials []Trial) *Report {
	rep := &Report{
		Key:          KeyOf(spec),
		Spec:         spec,
		Trials:       len(trials),
		TrialRecords: trials,
	}
	var recoveries, irecs, wasted []float64
	var stall, procCycles, wastedTotal uint64
	nprocs := uint64(spec.Base.Procs)
	for _, tr := range trials {
		if tr.VerifyOK {
			rep.VerifiedOK++
		}
		rep.FaultsInjected += tr.Injected
		rep.FaultsDetected += tr.Detected
		rep.Rollbacks += len(tr.Recoveries)
		for _, r := range tr.Recoveries {
			recoveries = append(recoveries, float64(r))
		}
		for _, s := range tr.IRECSizes {
			irecs = append(irecs, float64(s))
		}
		wasted = append(wasted, float64(tr.WastedCycles))
		stall += tr.RollStallCycles
		wastedTotal += tr.WastedCycles
		procCycles += tr.EndCycle * nprocs
	}
	rep.Recovery = stats.Summarize(recoveries)
	rep.IREC = stats.Summarize(irecs)
	rep.Wasted = stats.Summarize(wasted)
	rep.MTTRms = rep.Recovery.Mean / 1e6
	if procCycles > 0 {
		rep.Availability = 1 - float64(stall)/float64(procCycles)
		rep.WastedWorkFrac = float64(wastedTotal) / float64(procCycles)
	}
	return rep
}

// Store-namespace record names.
const (
	nsCampaigns = "campaigns"
	reportName  = "report"
)

func trialName(i int) string { return fmt.Sprintf("trial-%06d", i) }

// Engine runs campaigns: trials fan out across a harness.Runner's
// worker pool (sharing its arena pooling), and — when a store is
// attached — each finished trial and the final report persist under
// the campaign's content address, so interrupted campaigns resume and
// finished ones are served from disk.
type Engine struct {
	runner *harness.Runner
	st     *store.Store

	// OnProgress, if set, observes trial completion: done trials out of
	// total, counting trials restored from the store. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnProgress func(done, total int)
}

// New returns an engine running on runner. st may be nil for an
// in-memory campaign (no resume, no persistence).
func New(runner *harness.Runner, st *store.Store) *Engine {
	return &Engine{runner: runner, st: st}
}

// namespace returns the campaign's store namespace, or nil without a
// store.
func (e *Engine) namespace(key string) (*store.Namespace, error) {
	if e.st == nil {
		return nil, nil
	}
	return e.st.Namespace(nsCampaigns, key)
}

// LoadReport returns the stored report for a campaign key, if the
// engine has a store and the campaign finished. A stored report whose
// embedded key disagrees with its address is reported as an error,
// never served.
func (e *Engine) LoadReport(key string) (*Report, bool, error) {
	ns, err := e.namespace(key)
	if ns == nil || err != nil {
		return nil, false, err
	}
	var rep Report
	ok, err := ns.GetJSON(reportName, &rep)
	if !ok || err != nil {
		return nil, false, err
	}
	if rep.Key != key {
		return nil, false, fmt.Errorf("campaign: stored report under %s claims key %s", key, rep.Key)
	}
	return &rep, true, nil
}

// Run executes the campaign, fanning trials out across the runner's
// worker pool. Trials already persisted (a finished or interrupted
// earlier execution) are restored instead of re-simulated; a campaign
// whose report is already stored returns it without running anything.
// A canceled context stops trials that have not started; trials
// already simulating run to completion and persist, so the next Run
// resumes from them. The Report is byte-identical to RunSerial's.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Report, error) {
	return e.run(ctx, spec, false)
}

// RunSerial executes the campaign's trials one at a time on the calling
// goroutine, in index order: the reference executor the determinism
// suite compares Run against.
func (e *Engine) RunSerial(ctx context.Context, spec Spec) (*Report, error) {
	return e.run(ctx, spec, true)
}

func (e *Engine) run(ctx context.Context, spec Spec, serial bool) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := KeyOf(spec)
	ns, err := e.namespace(key)
	if err != nil {
		return nil, err
	}
	if rep, ok, err := e.LoadReport(key); err != nil {
		return nil, err
	} else if ok {
		e.note(spec.Trials, spec.Trials)
		return rep, nil
	}

	// Restore persisted trials (resume). A record is trusted only if it
	// self-identifies: right index, right derived seed — a store dir
	// shared across campaign definitions can never leak a stale trial.
	trials := make([]*Trial, spec.Trials)
	var done int64
	if ns != nil {
		for i := range trials {
			var tr Trial
			if ok, err := ns.GetJSON(trialName(i), &tr); err == nil && ok &&
				tr.Index == i && tr.Seed == TrialSeed(spec, i) {
				trials[i] = &tr
				done++
			}
		}
	}
	if done > 0 {
		e.note(int(done), spec.Trials)
	}

	missing := make([]int, 0, spec.Trials)
	for i, tr := range trials {
		if tr == nil {
			missing = append(missing, i)
		}
	}
	runOne := func(i int) (err error) {
		// Contain simulator panics the way Runner.RunOne does (a config
		// that passes Validate but panics in the machine): a campaign
		// runs trials on background goroutines inside reboundd, where an
		// unrecovered panic would take down the whole daemon instead of
		// failing the job.
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("campaign: trial %d: panic: %v", i, p)
			}
		}()
		var tr Trial
		e.runner.WithArena(func(a *cache.Arena) { tr, err = RunTrial(spec, i, a) })
		if err != nil {
			return err
		}
		if ns != nil {
			if err := ns.PutJSON(trialName(i), &tr); err != nil {
				return err
			}
		}
		trials[i] = &tr
		e.note(int(atomic.AddInt64(&done, 1)), spec.Trials)
		return nil
	}

	errs := make([]error, len(missing))
	if serial {
		for j, i := range missing {
			if err := ctx.Err(); err != nil {
				break
			}
			errs[j] = runOne(i)
		}
	} else {
		e.runner.FanOut(ctx, len(missing), func(j int) { errs[j] = runOne(missing[j]) })
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, tr := range trials {
		if tr == nil {
			// Cancelled between the feed check and here.
			return nil, context.Canceled
		}
	}

	ordered := make([]Trial, spec.Trials)
	for i, tr := range trials {
		ordered[i] = *tr
	}
	rep := buildReport(spec, ordered)
	if ns != nil {
		if err := ns.PutJSON(reportName, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func (e *Engine) note(done, total int) {
	if e.OnProgress != nil {
		e.OnProgress(done, total)
	}
}
