package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/store"
)

func trialJSON(t *testing.T, tr Trial) []byte {
	t.Helper()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotCodecRoundTrip pins the persistent codec against silent
// lossiness: a decoded snapshot must re-encode byte-identically AND
// behave identically. The behavioural leg is the load-bearing one —
// encode(decode(x)) == encode(x) holds even when both encodes drop the
// same unexported field (that symmetry is exactly how cache.Line.lru
// went missing), so the test also runs one full fault trial from the
// original and the decoded snapshot and diffs every recorded field.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	spec := testSpec(4)

	m1, err := harness.Build(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !warm(m1, spec) {
		t.Fatal("warmup reached no snapshot-safe point")
	}
	var snap machine.MachineSnapshot
	if err := m1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	payload, err := m1.EncodeSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := harness.Build(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := m2.DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	payload2, err := m2.EncodeSnapshot(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("decoded snapshot does not re-encode byte-identically")
	}

	if err := m2.Restore(snap2); err != nil {
		t.Fatal(err)
	}
	tr2 := runPhase(m2, spec, 3)
	if err := m1.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	tr1 := runPhase(m1, spec, 3)
	if a, b := trialJSON(t, tr1), trialJSON(t, tr2); !bytes.Equal(a, b) {
		t.Fatalf("decoded snapshot diverges behaviourally:\n  orig:    %s\n  decoded: %s", a, b)
	}
}

// TestStoredSnapshotColdStart is the cold-start acceptance check: a
// runner on a fresh process (modelled as a second TrialRunner on the
// same store) must reach its first trial from one store read — zero
// warmups — and produce trials byte-identical to both the warmed
// runner's and the fresh-build reference. A corrupted stored snapshot
// must read as a miss (re-warm, overwrite), never as state.
func TestStoredSnapshotColdStart(t *testing.T) {
	spec := testSpec(4)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	a := NewTrialRunnerStored(spec, st)
	trA, err := a.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if wu, ld, _, fr := a.Counters(); wu != 1 || ld != 0 || fr != 0 {
		t.Fatalf("warmed runner: warmups=%d loads=%d fresh=%d, want 1/0/0", wu, ld, fr)
	}

	b := NewTrialRunnerStored(spec, st)
	trB, err := b.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if wu, ld, _, fr := b.Counters(); wu != 0 || ld != 1 || fr != 0 {
		t.Fatalf("cold-start runner: warmups=%d loads=%d fresh=%d, want 0/1/0", wu, ld, fr)
	}

	ref, err := RunTrial(spec, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb, jr := trialJSON(t, trA), trialJSON(t, trB), trialJSON(t, ref)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("cold-start trial differs from warmed trial:\n  warmed: %s\n  loaded: %s", ja, jb)
	}
	if !bytes.Equal(ja, jr) {
		t.Fatalf("snapshot-engine trial differs from fresh-build reference:\n  engine: %s\n  fresh:  %s", ja, jr)
	}

	// Corrupt the stored snapshot record in place; the next runner must
	// refuse it, re-warm, and overwrite it with a good one.
	recPath := filepath.Join(st.Dir(), "snapshots", store.SnapshotKeyOf(warmKey(spec))+".json")
	data, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewTrialRunnerStored(spec, st)
	trC, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if wu, ld, _, _ := c.Counters(); wu != 1 || ld != 0 {
		t.Fatalf("corrupt snapshot: warmups=%d loads=%d, want re-warm (1/0)", wu, ld)
	}
	if !bytes.Equal(trialJSON(t, trC), ja) {
		t.Fatal("trial after corrupt-snapshot re-warm differs")
	}
	d := NewTrialRunnerStored(spec, st)
	if _, err := d.Run(3); err != nil {
		t.Fatal(err)
	}
	if wu, ld, _, _ := d.Counters(); wu != 0 || ld != 1 {
		t.Fatalf("re-warm did not repair the stored snapshot: warmups=%d loads=%d", wu, ld)
	}
}

// TestCampaignResumeDetectsTornTrialRecord injects the two write
// failures a crashed campaign can leave behind — a torn (truncated)
// trial record and a stale record from a different campaign definition
// (wrong derived seed) — and requires resume to re-run exactly those
// trials and still produce the byte-identical Report.
func TestCampaignResumeDetectsTornTrialRecord(t *testing.T) {
	spec := testSpec(6)
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(harness.NewRunner(0), st).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, rep)

	dir := filepath.Join(st.Dir(), nsCampaigns, KeyOf(spec))
	// Drop the report so resume must rebuild it from trial records.
	if err := os.Remove(filepath.Join(dir, reportName+".json")); err != nil {
		t.Fatal(err)
	}
	// Trial 2: torn write — the record is truncated mid-JSON.
	p2 := filepath.Join(dir, trialName(2)+".json")
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Trial 4: stale record — well-formed JSON, wrong derived seed.
	p4 := filepath.Join(dir, trialName(4)+".json")
	var tr4 Trial
	if err := json.Unmarshal(mustRead(t, p4), &tr4); err != nil {
		t.Fatal(err)
	}
	tr4.Seed++
	stale, err := json.Marshal(&tr4)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p4, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	eng := New(harness.NewRunner(0), st)
	var mu sync.Mutex
	restored := -1
	eng.OnProgress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if restored == -1 {
			restored = done
		}
	}
	res, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// The first progress note reports the trials restored from the
	// store: both corrupted records must have been rejected.
	if restored != spec.Trials-2 {
		t.Fatalf("resume restored %d trials, want %d (both corrupt records rejected)",
			restored, spec.Trials-2)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, want) {
		t.Fatal("resumed report differs after corrupt-record re-run")
	}
	// The re-run must have repaired both records in place.
	for _, i := range []int{2, 4} {
		var tr Trial
		if err := json.Unmarshal(mustRead(t, filepath.Join(dir, trialName(i)+".json")), &tr); err != nil {
			t.Fatalf("trial %d record not repaired: %v", i, err)
		}
		if tr.Index != i || tr.Seed != TrialSeed(spec, i) {
			t.Fatalf("trial %d record repaired with wrong identity", i)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPrewarmForksNotWarmups pins the fix for the flat-scaling bug:
// readying a runner for n workers must cost exactly one warmup plus
// n-1 forks. Before the fork engine, each worker silently fell back to
// its own build+warm — this test fails on that regression because the
// warmup counter (not wall clock) is what it asserts.
func TestPrewarmForksNotWarmups(t *testing.T) {
	spec := testSpec(8)
	tr := NewTrialRunner(spec)
	if err := tr.Prewarm(4); err != nil {
		t.Fatal(err)
	}
	if wu, ld, fk, fr := tr.Counters(); wu != 1 || ld != 0 || fk != 3 || fr != 0 {
		t.Fatalf("Prewarm(4): warmups=%d loads=%d forks=%d fresh=%d, want 1/0/3/0", wu, ld, fk, fr)
	}
	// Running the campaign's trials afterwards must reuse the pool:
	// no further warmups, no forks beyond the pool, no fresh fallback.
	for i := 0; i < spec.Trials; i++ {
		want, err := RunTrial(spec, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Run(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(trialJSON(t, want), trialJSON(t, got)) {
			t.Fatalf("trial %d diverged from fresh-build reference", i)
		}
	}
	if wu, _, fk, fr := tr.Counters(); wu != 1 || fk != 3 || fr != 0 {
		t.Fatalf("after %d trials: warmups=%d forks=%d fresh=%d, want 1/3/0", spec.Trials, wu, fk, fr)
	}
}

// TestForkMatchesRestoreAcrossSchemes is the per-scheme byte-identity
// suite for the fork engine itself: for every registered scheme, a
// trial run on a machine forked from the warm snapshot must equal the
// same trial run on the snapshot's own machine after Restore, and both
// must equal the fresh build-and-warm reference.
func TestForkMatchesRestoreAcrossSchemes(t *testing.T) {
	for _, scheme := range harness.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			spec := testSpec(2)
			spec.Base.Scheme = scheme
			parent, err := harness.Build(spec.Base)
			if err != nil {
				t.Fatal(err)
			}
			if !warm(parent, spec) {
				t.Skipf("scheme %s reaches no snapshot-safe point; covered by the fresh fallback", scheme)
			}
			var snap machine.MachineSnapshot
			if err := parent.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			sch, err := harness.SchemeFor(scheme)
			if err != nil {
				t.Fatal(err)
			}
			child, err := parent.Fork(&snap, sch)
			if err != nil {
				t.Fatal(err)
			}
			forked := runPhase(child, spec, 1)
			if err := parent.Restore(&snap); err != nil {
				t.Fatal(err)
			}
			restored := runPhase(parent, spec, 1)
			ref, err := RunTrial(spec, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			fj, sj, rj := trialJSON(t, forked), trialJSON(t, restored), trialJSON(t, ref)
			if !bytes.Equal(fj, sj) {
				t.Fatalf("forked trial differs from restored trial\n  fork:    %s\n  restore: %s", fj, sj)
			}
			if !bytes.Equal(fj, rj) {
				t.Fatalf("forked trial differs from fresh reference\n  fork:  %s\n  fresh: %s", fj, rj)
			}
		})
	}
}

// TestConcurrentForksFromOneParent stress-tests the claim the fork
// engine's concurrency rests on: Fork only reads the parent's immutable
// shape and the shared snapshot, so N goroutines may fork from one
// parent — and restore + run trials — at the same time, including while
// the parent machine itself is running a trial. Run under -race (the CI
// test job does) this doubles as the data-race proof.
func TestConcurrentForksFromOneParent(t *testing.T) {
	const workers = 8
	spec := testSpec(workers)
	tr := NewTrialRunner(spec)
	// First Run hands out the prototype and keeps it busy in one of the
	// goroutines below while the others fork from it concurrently.
	want := make([][]byte, workers)
	for i := range want {
		ref, err := RunTrial(spec, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = trialJSON(t, ref)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	got := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trial, err := tr.Run(i)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = trialJSON(t, trial)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("trial %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("concurrent trial %d diverged from serial reference", i)
		}
	}
	if wu, _, fk, fr := tr.Counters(); wu != 1 || fr != 0 || fk > workers-1 {
		t.Fatalf("concurrent run: warmups=%d forks=%d fresh=%d, want 1 warmup, <=%d forks, 0 fresh",
			wu, fk, fr, workers-1)
	}
}
