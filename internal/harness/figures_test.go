package harness

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// Golden structure tests: every figure/table driver must emit the
// expected row and column labels, with finite values (non-negative
// where the metric is a magnitude). Values themselves are scale- and
// seed-dependent; the shape is the contract.

func withAverage(labels []string) []string { return append(labels, "Average") }

func procLabels(sc Scale) []string {
	var out []string
	for _, n := range fig66Counts(sc) {
		out = append(out, fmt.Sprintf("%d procs", n))
	}
	return out
}

func TestFiguresGolden(t *testing.T) {
	sc := Quick
	type tableExp struct {
		titlePart string
		columns   []string
		labels    []string
		nonneg    bool
	}
	cases := []struct {
		name   string
		run    func(Scale) []TableData
		heavy  bool
		tables []tableExp
	}{
		{
			name: "Fig6.1",
			run:  func(s Scale) []TableData { return []TableData{Fig61(s)} },
			tables: []tableExp{{"Figure 6.1", []string{"ICHK"},
				withAverage(parsecApps()), true}},
		},
		{
			name: "Fig6.2",
			run:  Fig62,
			tables: []tableExp{
				{"Figure 6.2", []string{"ICHK"}, withAverage(splashApps()), true},
				{"Figure 6.2", []string{"ICHK"}, withAverage(splashApps()), true},
			},
		},
		{
			name:  "Fig6.3",
			run:   Fig63,
			heavy: true,
			tables: []tableExp{
				{"Figure 6.3(a)", fig63Schemes, withAverage(splashApps()), true},
				{"Figure 6.3(b)", fig63Schemes, withAverage(parsecApps()), true},
			},
		},
		{
			name:  "Fig6.4",
			run:   func(s Scale) []TableData { return []TableData{Fig64(s)} },
			heavy: true,
			tables: []tableExp{{"Figure 6.4", fig64Schemes,
				withAverage(barrierApps()), true}},
		},
		{
			name:  "Fig6.5",
			run:   func(s Scale) []TableData { return []TableData{Fig65(s)} },
			heavy: true,
			tables: []tableExp{{"Figure 6.5",
				[]string{"WBDelay", "WBImbalance", "SyncDelay", "IPCDelay", "Total"},
				fig65Schemes, true}},
		},
		{
			name:  "Fig6.6",
			run:   Fig66,
			heavy: true,
			tables: []tableExp{
				{"Figure 6.6(a)", fig65Schemes, procLabels(sc), true},
				{"Figure 6.6(b)", fig65Schemes, procLabels(sc), false},
				{"Figure 6.6(c)", fig65Schemes, procLabels(sc), true},
			},
		},
		{
			name: "Fig6.7",
			run:  func(s Scale) []TableData { return []TableData{Fig67(s)} },
			tables: []tableExp{{"Figure 6.7",
				[]string{"Global-I/O", "Rebound-I/O"}, withAverage(fig67Apps()), true}},
		},
		{
			name:  "Fig6.8",
			run:   func(s Scale) []TableData { return []TableData{Fig68(s)} },
			heavy: true,
			tables: []tableExp{{"Figure 6.8",
				[]string{"Power (W)", "vs Global (%)", "ED2 vs Global (%)"},
				fig65Schemes, false}},
		},
		{
			name:  "Table6.1",
			run:   func(s Scale) []TableData { return []TableData{Table61(s)} },
			heavy: true,
			tables: []tableExp{{"Table 6.1",
				[]string{"ICHK FP incr (%)", "Log size (MB)", "Msg incr (%)"},
				withAverage(append(splashApps(), parsecApps()...)), true}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy sweep skipped in -short mode")
			}
			tables := tc.run(sc)
			if len(tables) != len(tc.tables) {
				t.Fatalf("%d tables, want %d", len(tables), len(tc.tables))
			}
			for ti, td := range tables {
				exp := tc.tables[ti]
				if !strings.Contains(td.Title, exp.titlePart) {
					t.Errorf("table %d title %q missing %q", ti, td.Title, exp.titlePart)
				}
				if len(td.Columns) != len(exp.columns) {
					t.Fatalf("table %d: %d columns, want %d", ti, len(td.Columns), len(exp.columns))
				}
				for ci, c := range exp.columns {
					if td.Columns[ci] != c {
						t.Errorf("table %d column %d = %q, want %q", ti, ci, td.Columns[ci], c)
					}
				}
				if len(td.Rows) != len(exp.labels) {
					t.Fatalf("table %d: %d rows, want %d", ti, len(td.Rows), len(exp.labels))
				}
				for ri, row := range td.Rows {
					if row.Label != exp.labels[ri] {
						t.Errorf("table %d row %d label = %q, want %q", ti, ri, row.Label, exp.labels[ri])
					}
					if len(row.Values) != len(td.Columns) {
						t.Fatalf("table %d row %q: %d values for %d columns",
							ti, row.Label, len(row.Values), len(td.Columns))
					}
					for vi, v := range row.Values {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Errorf("table %d row %q value %d not finite: %v", ti, row.Label, vi, v)
						}
						if exp.nonneg && v < 0 {
							t.Errorf("table %d row %q value %d negative: %v", ti, row.Label, vi, v)
						}
					}
				}
				// Rendering keeps every row and column.
				out := td.Format()
				for _, c := range td.Columns {
					if !strings.Contains(out, c) {
						t.Errorf("Format lost column %q", c)
					}
				}
				for _, r := range td.Rows {
					if !strings.Contains(out, r.Label) {
						t.Errorf("Format lost row %q", r.Label)
					}
				}
			}
		})
	}
}

func TestAblationSpecsGoThroughRunner(t *testing.T) {
	if len(AblationWSIGSpecs(Quick, "Water-Nsq")) != len(ablationWSIGBits) {
		t.Fatal("WSIG sweep spec count mismatch")
	}
	// Dep-set sweep shares one baseline across knob settings.
	specs := AblationDepSetsSpecs(Quick, "Uniform")
	var baselines int
	for _, s := range specs {
		if s.Scheme == "none" {
			baselines++
			if s.DepSets != 0 || s.WSIGBits != 0 || s.LogAllWB {
				t.Fatalf("baseline spec carries hardware knobs: %s", s.Key())
			}
		}
	}
	if baselines != 1 {
		t.Fatalf("dep-set sweep has %d baselines, want 1 shared", baselines)
	}
}

func TestSweepSpecsDeduplicated(t *testing.T) {
	specs := SweepSpecs(Quick)
	if len(specs) == 0 {
		t.Fatal("empty sweep")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate cell in sweep: %s", k)
		}
		seen[k] = true
	}
	// The shared "none" baselines must appear exactly once each.
	var nones int
	for _, s := range specs {
		if s.Scheme == "none" {
			nones++
		}
	}
	if nones == 0 {
		t.Fatal("sweep has no baselines")
	}
	t.Logf("sweep: %d distinct cells (%d baselines)", len(specs), nones)
}
