package harness_test

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The machine snapshot/restore equivalence suite: for every registered
// scheme, a machine restored from a post-warmup snapshot must be
// indistinguishable — stats, memory image, clock, instruction count —
// from the machine the snapshot was taken of, both on a fault-free
// continuation and under an injected fault scenario. This is the
// correctness bar underneath the campaign engine's warm-once/
// restore-per-trial fast path.

const snapSettleLimit = sim.Cycle(400_000)

func snapSpec(scheme string) harness.Spec {
	return harness.Spec{App: "FFT", Procs: 8, Scheme: scheme, Scale: harness.Quick}
}

// warmAndSnap builds spec's machine, warms it a quarter of its budget,
// settles to a snapshot-safe point and captures it.
func warmAndSnap(t *testing.T, spec harness.Spec) (*machine.Machine, *machine.MachineSnapshot) {
	t.Helper()
	m, err := harness.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	budget := spec.Scale.InstrPerProc * uint64(spec.Procs)
	m.Run(budget / 4)
	if !m.SettleForSnapshot(snapSettleLimit) {
		t.Fatalf("%s: machine never reached a snapshot-safe point", spec.Scheme)
	}
	snap := new(machine.MachineSnapshot)
	if err := m.Snapshot(snap); err != nil {
		t.Fatalf("%s: %v", spec.Scheme, err)
	}
	return m, snap
}

// fingerprint renders everything a continuation could diverge in.
func fingerprint(m *machine.Machine) string {
	memImage := fmt.Sprintf("%v", m.Ctrl.Memory().Snapshot())
	return fmt.Sprintf("cycle=%d instr=%d log=%d stats=%s mem=%s",
		m.Now(), m.TotalInstructions(), m.Ctrl.Log().Len(), m.St.Snapshot(), memImage)
}

// runToEnd is the continuation both machines execute: optionally a
// fault scenario, then the rest of the budget.
func runToEnd(m *machine.Machine, spec harness.Spec, withFaults bool) {
	if withFaults {
		inj := fault.New(m, fault.Spec{Faults: 2, Window: 60_000, Seed: 0xfeed})
		inj.Launch()
	}
	budget := spec.Scale.InstrPerProc * uint64(spec.Procs)
	if done := m.TotalInstructions(); done < budget {
		m.Run(budget - done)
	}
	m.RunCycles(50_000) // let recoveries and drains settle identically
	m.FinalizeStats()
}

func TestSnapshotRestoreEquivalenceAllSchemes(t *testing.T) {
	for _, scheme := range harness.SchemeNames() {
		for _, withFaults := range []bool{false, true} {
			name := scheme + "/fault-free"
			if withFaults {
				name = scheme + "/faulted"
			}
			t.Run(name, func(t *testing.T) {
				spec := snapSpec(scheme)
				warm, snap := warmAndSnap(t, spec)

				// Restore into a cold machine that never executed an
				// instruction; run both to the end of the budget.
				cold, err := harness.Build(spec)
				if err != nil {
					t.Fatal(err)
				}
				if err := cold.Restore(snap); err != nil {
					t.Fatal(err)
				}
				runToEnd(warm, spec, withFaults)
				runToEnd(cold, spec, withFaults)
				if got, want := fingerprint(cold), fingerprint(warm); got != want {
					t.Errorf("restored machine diverged from the one it was captured from\n got: %.240s\nwant: %.240s", got, want)
				}
			})
		}
	}
}

// TestSnapshotDoubleRestore proves a snapshot is reusable: restoring
// the same image twice into the same (dirty) machine yields identical
// continuations — the campaign engine restores one image thousands of
// times.
func TestSnapshotDoubleRestore(t *testing.T) {
	for _, scheme := range []string{"Rebound", "Global_DWB"} {
		t.Run(scheme, func(t *testing.T) {
			spec := snapSpec(scheme)
			m, snap := warmAndSnap(t, spec)

			runToEnd(m, spec, true)
			first := fingerprint(m)

			// The machine is now dirty (post-trial); rewind and rerun.
			if err := m.Restore(snap); err != nil {
				t.Fatal(err)
			}
			runToEnd(m, spec, true)
			second := fingerprint(m)
			if first != second {
				t.Errorf("second restore diverged from the first\n got: %.240s\nwant: %.240s", second, first)
			}

			// And a third time with a DIFFERENT continuation seed, to
			// prove restores do not leak previous-trial state into the
			// snapshot image itself.
			if err := m.Restore(snap); err != nil {
				t.Fatal(err)
			}
			inj := fault.New(m, fault.Spec{Faults: 1, Window: 30_000, Seed: 0xbeef})
			inj.Launch()
			m.RunCycles(200_000)
			if err := m.Restore(snap); err != nil {
				t.Fatal(err)
			}
			runToEnd(m, spec, true)
			if third := fingerprint(m); third != first {
				t.Errorf("restore after a divergent trial leaked state\n got: %.240s\nwant: %.240s", third, first)
			}
		})
	}
}

// TestSnapshotCarriesLogAblationFlag: Log.AlwaysLog is behaviour, not
// configuration the Config-equality guard can see — a snapshot of a
// log-ablation machine restored into a default-built machine must keep
// logging every writeback.
func TestSnapshotCarriesLogAblationFlag(t *testing.T) {
	spec := snapSpec("Rebound")
	spec.LogAllWB = true
	warm, snap := warmAndSnap(t, spec)

	plain := spec
	plain.LogAllWB = false
	cold, err := harness.Build(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !cold.Ctrl.Log().AlwaysLog {
		t.Fatal("restore dropped the AlwaysLog ablation flag")
	}
	runToEnd(warm, spec, false)
	runToEnd(cold, spec, false)
	if got, want := fingerprint(cold), fingerprint(warm); got != want {
		t.Errorf("ablation machine restored into a default build diverged\n got: %.240s\nwant: %.240s", got, want)
	}
}

// TestSnapshotRefusesMismatchedConfig: restoring across machine shapes
// must fail loudly, never alias state.
func TestSnapshotRefusesMismatchedConfig(t *testing.T) {
	_, snap := warmAndSnap(t, snapSpec("Rebound"))
	other, err := harness.Build(harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into a machine with a different config succeeded")
	}
	var empty machine.MachineSnapshot
	m, _ := warmAndSnap(t, snapSpec("Rebound"))
	if err := m.Restore(&empty); err == nil {
		t.Fatal("restore from an empty snapshot succeeded")
	}
}

// TestLineTableAdoptPrefixMismatch pins the aliasing guard the restore
// path relies on: a table whose interning history diverged from the
// snapshot must be rejected.
func TestLineTableAdoptPrefixMismatch(t *testing.T) {
	a := mem.NewLineTable()
	a.ID(10)
	a.ID(20)
	if err := a.AdoptPrefix([]uint64{10, 20, 30}); err != nil {
		t.Fatalf("compatible prefix rejected: %v", err)
	}
	if got, ok := a.Lookup(30); !ok || got != 2 {
		t.Fatalf("AdoptPrefix did not intern the tail: id=%d ok=%v", got, ok)
	}
	if err := a.AdoptPrefix([]uint64{10, 99}); err == nil {
		t.Fatal("diverged prefix accepted")
	}
}
