package harness

import (
	"context"
	"testing"

	"repro/internal/cache"
)

// The determinism suite proves the runner's central claim: a cell's
// Result is a pure function of its Spec, so parallel execution is
// byte-identical to serial execution. Comparisons go through
// stats.Snapshot, which serialises every counter and record of a run.

// determinismSpecs is a small cross-scheme batch with shared baselines
// and a forced-I/O cell — the cases where hidden shared state between
// concurrently running machines would show up first.
func determinismSpecs() []Spec {
	var specs []Spec
	for _, app := range []string{"FFT", "Volrend", "Apache"} {
		for _, scheme := range []string{"none", "Global", "Rebound"} {
			specs = append(specs, Spec{App: app, Procs: 4, Scheme: scheme, Scale: Quick})
		}
	}
	specs = append(specs, Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Quick,
		IOForce: Quick.Interval / 2})
	return specs
}

func mustSnapshot(t *testing.T, res Result) string {
	t.Helper()
	if res.St == nil {
		t.Fatal("result has no stats")
	}
	return res.St.Snapshot()
}

func TestRunTwiceIsIdentical(t *testing.T) {
	// Two independent simulations of the same fixed Quick spec (no
	// cache between them) must agree on every counter: any hidden
	// global state in internal/machine or internal/core would diverge.
	spec := Spec{App: "Ocean", Procs: 4, Scheme: "Rebound", Scale: Quick}
	a, err := runSpec(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The second run goes through a dirtied, reset arena: reusing the
	// backing arrays must not change a single counter.
	arena := new(cache.Arena)
	warm, err := runSpec(Spec{App: "FFT", Procs: 4, Scheme: "Global", Scale: Quick}, arena)
	if err != nil || warm.St == nil {
		t.Fatalf("arena warm-up failed: %v", err)
	}
	arena.Reset()
	b, err := runSpec(spec, arena)
	if err != nil {
		t.Fatal(err)
	}
	if a.St == b.St {
		t.Fatal("runSpec returned a shared Stats; want independent simulations")
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycle counts differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if mustSnapshot(t, a) != mustSnapshot(t, b) {
		t.Fatal("two runs of the same spec produced different stats")
	}
	if a.Power != b.Power {
		t.Fatalf("power reports differ: %+v vs %+v", a.Power, b.Power)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Fresh runners on both sides so every cell is actually simulated
	// under each execution mode, then compared byte-for-byte.
	specs := determinismSpecs()
	par, err := NewRunner(0).Run(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := NewRunner(1).RunSerial(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(ser) {
		t.Fatalf("result counts differ: %d vs %d", len(par), len(ser))
	}
	for i := range specs {
		if par[i].Cycles != ser[i].Cycles {
			t.Errorf("%s: cycles %d (parallel) vs %d (serial)",
				specs[i].Key(), par[i].Cycles, ser[i].Cycles)
			continue
		}
		if mustSnapshot(t, par[i]) != mustSnapshot(t, ser[i]) {
			t.Errorf("%s: parallel stats differ from serial", specs[i].Key())
		}
		if par[i].Power != ser[i].Power {
			t.Errorf("%s: power reports differ", specs[i].Key())
		}
	}
}

func TestParallelRunIsInternallyStable(t *testing.T) {
	// The same batch through two parallel runners: scheduling order
	// differs between the two executions, results must not.
	specs := determinismSpecs()
	a, err := NewRunner(0).Run(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(3).Run(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if mustSnapshot(t, a[i]) != mustSnapshot(t, b[i]) {
			t.Errorf("%s: results depend on worker-pool size", specs[i].Key())
		}
	}
}
