package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/machine"
)

// The experiment runner. Every (app, procs, scheme, scale, ioforce)
// cell of the evaluation is an independent simulation of its own
// sim.Engine/machine instance, so a sweep is embarrassingly parallel:
// Run fans cells out across a worker pool while a per-Spec memoization
// cache guarantees each distinct cell is simulated at most once per
// Runner, no matter how many figures request it (the "none" baseline
// alone is shared by Figs 6.3–6.6, 6.8 and the ablations).
//
// Determinism contract: a cell's simulation is a pure function of its
// Spec. The machine seed is derived from (Scale.Seed, Spec) by
// DeriveSeed, never from scheduling order, so parallel and serial
// execution produce byte-identical Results (see determinism_test.go).

// Key returns the canonical identity of the spec: every field that can
// influence the simulation, in a fixed order. Two specs with equal keys
// produce identical Results and share one cache slot.
func (s Spec) Key() string {
	// Shards 0 and 1 are both the unsharded layout — and every shard
	// count computes the same results — but the count changes the
	// machine's in-memory snapshot layout, so it is part of the cell
	// identity (canonicalised so 0 and 1 share one cell).
	sh := s.Shards
	if sh <= 1 {
		sh = 1
	}
	return fmt.Sprintf("%s|p=%d|%s|io=%d|wsig=%d|dep=%d|awb=%t|sh=%d|%s|seed=%d|instr=%d|int=%d|L=%d|pl=%d|ps=%d",
		s.App, s.Procs, s.Scheme, s.IOForce, s.WSIGBits, s.DepSets, s.LogAllWB, sh,
		s.Scale.Name, s.Scale.Seed, s.Scale.InstrPerProc, s.Scale.Interval,
		uint64(s.Scale.DetectLatency), s.Scale.ProcsLarge, s.Scale.ProcsSmall)
}

// DeriveSeed maps (Scale.Seed, Spec) to the machine seed: an FNV-1a
// hash of the spec's workload identity — App, Procs and the Scale
// parameters, but deliberately NOT the scheme or hardware knobs —
// finished with a splitmix64 round. Two properties follow. First, the
// seed is a pure function of the spec, never of which worker runs the
// cell or in what order, which is what makes parallel execution
// bit-identical to serial. Second, every scheme (and the "none"
// baseline) of a given workload shares one instruction stream, so
// overhead comparisons are paired, exactly as if the same program had
// been run under each scheme.
func DeriveSeed(s Spec) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|p=%d|seed=%d|instr=%d|int=%d|L=%d",
		s.App, s.Procs, s.Scale.Seed, s.Scale.InstrPerProc,
		s.Scale.Interval, uint64(s.Scale.DetectLatency))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// cacheEntry memoizes one cell. The first requester to install the
// entry (under Runner.mu) becomes its executor; the done channel both
// deduplicates concurrent requests for the same Spec — singleflight:
// later requesters block until the executor finishes — and publishes
// res/err safely. Unlike a sync.Once, a blocked requester can abandon
// the wait when its context is cancelled; the executor still runs the
// cell to completion and the result stays cached.
type cacheEntry struct {
	done chan struct{}
	res  Result
	err  error
}

// recoveryEntry memoizes one Fig 6.6c recovery-latency measurement.
type recoveryEntry struct {
	once sync.Once
	ms   float64
}

// Runner schedules experiment cells across a bounded worker pool with
// per-Spec memoization. The zero value is not usable; call NewRunner.
// A Runner is safe for concurrent use by multiple goroutines.
type Runner struct {
	workers int
	// arenas pools per-cell cache-line backing arrays (cache.Arena)
	// across the runner's workers: a sweep of thousands of cells reuses
	// a handful of arenas instead of allocating (and GC-scanning)
	// hundreds of KB of cache lines per cell. Arenas carry no state
	// between cells — every taken line is zeroed — so memoized results
	// stay a pure function of the Spec.
	arenas sync.Pool
	// machines pools whole built machines by ReuseKey: cells that share
	// a configuration (every scheme of one workload, most prominently)
	// recycle one machine through Machine.Reset instead of rebuilding.
	machines machinePool
	mu       sync.Mutex
	cache    map[string]*cacheEntry
	rec      map[string]*recoveryEntry
}

// machinePool is a byte-bounded pool of built machines keyed by
// ReuseKey. Machines are fungible within a key (Reset rewinds them to
// the just-built state) and useless across keys; when the budget is
// exceeded the oldest pooled machine is dropped to the GC.
type machinePool struct {
	mu      sync.Mutex
	used    int64
	entries map[string][]*machine.Machine
	order   []string // insertion order of individual machines, for eviction
}

// machinePoolBudget bounds the bytes of machines a Runner retains
// (estimated from cache geometry, the dominant term). Big enough to
// hold a full figure sweep's worth of quick-scale machines, small
// enough that a long-lived daemon cannot hoard memory.
const machinePoolBudget = int64(192 << 20)

// machineBytes estimates a machine's retained footprint.
func machineBytes(m *machine.Machine) int64 {
	// Cache line arrays are ~1.5x the modelled capacity (48-byte Line
	// per 32-byte line), plus roughly as much again for Dep registers,
	// memory/log/directory state and the event queue.
	return int64(m.Cfg.NProcs) * int64(m.Cfg.L1Size+m.Cfg.L2Size) * 3
}

func (p *machinePool) take(key string) *machine.Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	ms := p.entries[key]
	if len(ms) == 0 {
		return nil
	}
	m := ms[len(ms)-1]
	p.entries[key] = ms[:len(ms)-1]
	p.used -= machineBytes(m)
	// Drop one order entry for the key, or the slice would grow by one
	// stale string per take/put cycle for the process lifetime.
	for i, k := range p.order {
		if k == key {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	return m
}

func (p *machinePool) put(key string, m *machine.Machine) {
	b := machineBytes(m)
	if b > machinePoolBudget {
		return // never poolable — and must not flush the pool finding out
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries == nil {
		p.entries = make(map[string][]*machine.Machine)
	}
	for p.used+b > machinePoolBudget && len(p.order) > 0 {
		oldKey := p.order[0]
		p.order = p.order[1:]
		oms := p.entries[oldKey]
		if len(oms) == 0 {
			continue // stale order entry (machine was taken)
		}
		om := oms[0]
		p.entries[oldKey] = oms[1:]
		p.used -= machineBytes(om)
	}
	p.entries[key] = append(p.entries[key], m)
	p.order = append(p.order, key)
	p.used += b
}

// NewRunner returns a runner with the given parallelism; workers <= 0
// selects GOMAXPROCS. NewRunner(1) is the serial configuration used by
// the determinism tests as the reference executor.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Runner{workers: workers,
		cache: make(map[string]*cacheEntry),
		rec:   make(map[string]*recoveryEntry)}
	r.arenas.New = func() any { return new(cache.Arena) }
	return r
}

// runPooled executes spec, recycling a pooled machine with a matching
// ReuseKey when one is available (Machine.Reset path, bit-identical to
// a fresh build) and building one otherwise. Machines are pooled only
// after a successful run, with their published stats detached first; a
// machine that cannot be pooled (budget) simply dies with its run.
// Fresh builds here use dedicated heap allocations rather than a
// worker arena — an arena-backed machine must not outlive the arena's
// next reset, and pooling is where the recycling win now comes from.
func (r *Runner) runPooled(spec Spec) (res Result, err error) {
	key := ReuseKey(spec)
	m := r.machines.take(key)
	if m != nil {
		res, err = resetAndRun(m, spec)
	} else {
		m, err = Build(spec)
		if err != nil {
			return Result{}, err
		}
		res = measure(m, spec)
	}
	if err != nil {
		return res, err
	}
	detachStats(&res)
	r.machines.put(key, m)
	return res, nil
}

// WithArena runs fn with a pooled, reset cache arena: the same
// allocation-recycling the runner's own cells use, exposed so other
// fan-outs over machine builds (the campaign engine's fault trials)
// share one arena pool instead of allocating cache arrays per run.
// The arena is recycled only on the non-panic path; a panicking fn
// abandons it to the GC. fn must not retain the arena (or anything
// built in it) past its return.
func (r *Runner) WithArena(fn func(*cache.Arena)) {
	a := r.arenas.Get().(*cache.Arena)
	a.Reset()
	fn(a)
	r.arenas.Put(a)
}

// FanOut feeds indices [0, n) to the runner's worker pool, blocking
// until every handed-out index has been processed. A canceled context
// stops feeding and returns ctx.Err(); indices already handed out run
// to completion, indices never fed are simply skipped. It is the
// exported form of the scheduling underneath Run/PrefetchRecovery, for
// callers (the campaign engine) whose units of work are not Spec cells.
func (r *Runner) FanOut(ctx context.Context, n int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.fanOut(ctx, n, fn)
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// CachedRuns reports how many distinct cells the runner has memoized.
func (r *Runner) CachedRuns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// RunOne executes spec, or returns its memoized Result if this runner
// has already executed (or is currently executing) an identical spec.
//
// Context semantics: a cell that has not started is never started under
// a cancelled context, and a caller waiting on another request's
// in-flight execution of the same spec stops waiting when its own
// context is cancelled. A cell that has already started runs to
// completion regardless (the engine has no preemption point) and its
// Result stays cached for future requests.
func (r *Runner) RunOne(ctx context.Context, spec Spec) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := spec.Key()
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		if err := ctx.Err(); err != nil {
			r.mu.Unlock()
			return Result{}, err
		}
		e = &cacheEntry{done: make(chan struct{})}
		r.cache[key] = e
		r.mu.Unlock()
		func() {
			// The entry must be published even if the simulator panics
			// (e.g. a config the machine rejects at construction):
			// otherwise every later request for this spec would block on
			// done forever. The panic is converted to a cached error —
			// the cell is a pure function of its spec, so retrying it
			// would panic identically.
			defer func() {
				if p := recover(); p != nil {
					e.err = fmt.Errorf("harness: %s: panic: %v", key, p)
				}
				close(e.done)
			}()
			e.res, e.err = r.runPooled(spec)
		}()
		return e.res, e.err
	}
	r.mu.Unlock()
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// fanOut feeds indices [0, n) to the worker pool. A canceled context
// stops feeding and returns ctx.Err(); indices already handed out run
// to completion. The pre-select ctx check makes an already-canceled
// context deterministic: no index is ever fed.
func (r *Runner) fanOut(ctx context.Context, n int, fn func(int)) error {
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	var cancelErr error
feed:
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return cancelErr
}

// Run executes all specs across the worker pool and returns their
// Results in spec order. Duplicate specs (and specs already cached)
// cost one simulation. A canceled context stops cells that have not
// started; cells already simulating run to completion (the engine has
// no preemption point). The first error encountered is returned with
// the partial results; error-free cells keep their Results either way.
func (r *Runner) Run(ctx context.Context, specs ...Spec) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	done := make([]bool, len(specs))
	cancelErr := r.fanOut(ctx, len(specs), func(i int) {
		results[i], errs[i] = r.RunOne(ctx, specs[i])
		done[i] = true
	})
	for i := range errs {
		if errs[i] == nil && !done[i] {
			errs[i] = cancelErr
		}
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// RecoveryLatency returns the memoized Fig 6.6c recovery latency of
// spec in milliseconds (RecoveryLatencyMS is the uncached primitive).
// Like simulation cells, a measurement is a pure function of its spec,
// so it is computed at most once per runner.
func (r *Runner) RecoveryLatency(spec Spec) float64 {
	r.mu.Lock()
	e, ok := r.rec[spec.Key()]
	if !ok {
		e = &recoveryEntry{}
		r.rec[spec.Key()] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.ms = RecoveryLatencyMS(spec) })
	return e.ms
}

// PrefetchRecovery measures the recovery latencies of specs across the
// worker pool so later RecoveryLatency calls are cache hits.
func (r *Runner) PrefetchRecovery(ctx context.Context, specs ...Spec) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.fanOut(ctx, len(specs), func(i int) { r.RecoveryLatency(specs[i]) })
}

// CachedRecoveries reports how many recovery measurements are memoized.
func (r *Runner) CachedRecoveries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rec)
}

// RunSerial is the escape hatch: it executes specs one at a time on
// the calling goroutine, in order, through the same memoization cache.
// It exists as the reference executor the determinism suite compares
// Run against, and for debugging with clean single-threaded stacks.
func (r *Runner) RunSerial(ctx context.Context, specs ...Spec) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(specs))
	for i, spec := range specs {
		res, err := r.RunOne(ctx, spec)
		if err != nil {
			return results, err
		}
		results[i] = res
	}
	return results, nil
}

// --- default runner -------------------------------------------------------

// defaultRunner backs the package-level API: one memoization domain
// per process, so figure drivers, benchmarks and tests share baselines.
var (
	defaultMu     sync.RWMutex
	defaultRunner = NewRunner(0)
)

// Default returns the process-wide runner.
func Default() *Runner {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultRunner
}

// SetWorkers replaces the process-wide runner with a fresh one of the
// given parallelism (<= 0 means GOMAXPROCS, 1 means serial), dropping
// its memoized results. Intended for program startup (cmd/figures
// -serial / -workers).
func SetWorkers(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultRunner = NewRunner(n)
}

// Run executes specs on the process-wide runner's worker pool.
func Run(ctx context.Context, specs ...Spec) ([]Result, error) {
	return Default().Run(ctx, specs...)
}

// RunSerial executes specs serially on the process-wide runner.
func RunSerial(ctx context.Context, specs ...Spec) ([]Result, error) {
	return Default().RunSerial(ctx, specs...)
}

// RunOne executes one spec through the process-wide runner.
func RunOne(ctx context.Context, spec Spec) (Result, error) {
	return Default().RunOne(ctx, spec)
}

// mustRunAll prefetches specs in parallel and returns their results in
// order; figure drivers assemble tables from these memoized cells.
func mustRunAll(specs []Spec) []Result {
	results, err := Run(context.Background(), specs...)
	if err != nil {
		panic(err)
	}
	return results
}

// withBaselines appends the "none" baseline cell of every spec that
// needs one, deduplicated, so a single prefetch covers Overhead calls.
func withBaselines(specs []Spec) []Spec {
	out := make([]Spec, 0, 2*len(specs))
	seen := make(map[string]bool, 2*len(specs))
	add := func(s Spec) {
		if k := s.Key(); !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	for _, s := range specs {
		add(s)
		if s.Scheme != "none" {
			add(baselineSpec(s))
		}
	}
	return out
}
