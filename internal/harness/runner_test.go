package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testSpec(app, scheme string) Spec {
	return Spec{App: app, Procs: 4, Scheme: scheme, Scale: Quick}
}

func TestKeyCanonical(t *testing.T) {
	a := testSpec("FFT", "Rebound")
	b := testSpec("FFT", "Rebound")
	if a.Key() != b.Key() {
		t.Fatal("equal specs produced different keys")
	}
	variants := []Spec{
		testSpec("Ocean", "Rebound"),
		testSpec("FFT", "Global"),
		{App: "FFT", Procs: 8, Scheme: "Rebound", Scale: Quick},
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Quick, IOForce: 100},
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Quick, WSIGBits: 256},
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Quick, DepSets: 2},
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Quick, LogAllWB: true},
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: Full},
	}
	seen := map[string]bool{a.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("key collision: %q", v.Key())
		}
		seen[v.Key()] = true
	}
}

func TestDeriveSeedPairsSchemes(t *testing.T) {
	// The seed is a pure function of the workload identity: every scheme
	// and hardware knob of one workload shares the instruction stream.
	base := DeriveSeed(testSpec("FFT", "none"))
	if got := DeriveSeed(testSpec("FFT", "Rebound")); got != base {
		t.Fatalf("scheme changed the derived seed: %d vs %d", got, base)
	}
	knob := testSpec("FFT", "Rebound")
	knob.WSIGBits = 256
	if got := DeriveSeed(knob); got != base {
		t.Fatal("WSIG knob changed the derived seed")
	}
	// Different workloads decorrelate.
	if DeriveSeed(testSpec("Ocean", "none")) == base {
		t.Fatal("different app produced the same seed")
	}
	other := testSpec("FFT", "none")
	other.Procs = 8
	if DeriveSeed(other) == base {
		t.Fatal("different processor count produced the same seed")
	}
	full := Spec{App: "FFT", Procs: 4, Scheme: "none", Scale: Full}
	if DeriveSeed(full) == base {
		t.Fatal("different scale produced the same seed")
	}
	if DeriveSeed(testSpec("FFT", "none")) == 0 {
		t.Fatal("derived seed is zero")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(2)
	spec := testSpec("Volrend", "Rebound")
	a, err := r.RunOne(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunOne(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.St != b.St {
		t.Fatal("second RunOne re-simulated instead of returning the memoized result")
	}
	if r.CachedRuns() != 1 {
		t.Fatalf("CachedRuns = %d, want 1", r.CachedRuns())
	}
	// A batch full of duplicates costs one simulation.
	res, err := r.Run(context.Background(), spec, spec, spec, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res {
		if got.St != a.St {
			t.Fatalf("result %d not served from the cache", i)
		}
	}
	if r.CachedRuns() != 1 {
		t.Fatalf("CachedRuns after batch = %d, want 1", r.CachedRuns())
	}
}

func TestRunPreservesSpecOrder(t *testing.T) {
	r := NewRunner(0)
	specs := []Spec{
		testSpec("FFT", "none"),
		testSpec("Volrend", "none"),
		testSpec("FFT", "Rebound"),
		testSpec("Cholesky", "none"),
	}
	res, err := r.Run(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(res), len(specs))
	}
	for i := range specs {
		if res[i].Spec.Key() != specs[i].Key() {
			t.Fatalf("result %d is %s, want %s", i, res[i].Spec.Key(), specs[i].Key())
		}
	}
}

func TestRunReportsErrors(t *testing.T) {
	r := NewRunner(2)
	_, err := r.Run(context.Background(),
		testSpec("FFT", "none"), testSpec("NoSuchApp", "Rebound"))
	if err == nil {
		t.Fatal("bad spec in batch not reported")
	}
	if _, err := r.Run(context.Background(), testSpec("FFT", "bogus-scheme")); err == nil {
		t.Fatal("bad scheme in batch not reported")
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx, testSpec("FFT", "none")); err == nil {
		t.Fatal("cancelled context not surfaced by Run")
	}
	if _, err := r.RunSerial(ctx, testSpec("FFT", "none")); err == nil {
		t.Fatal("cancelled context not surfaced by RunSerial")
	}
}

func TestRunOneHonorsCancelledContext(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := testSpec("FFT", "none")
	if _, err := r.RunOne(ctx, spec); err == nil {
		t.Fatal("cancelled context not surfaced by RunOne")
	}
	// The cancelled request must not have started (or poisoned) the cell:
	// a live context simulates it normally afterwards.
	if r.CachedRuns() != 0 {
		t.Fatalf("cancelled RunOne left %d cache entries", r.CachedRuns())
	}
	res, err := r.RunOne(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("cell did not simulate after the cancelled attempt")
	}
	// And a cancelled context still reads an already-memoized result in
	// the common select path or returns promptly; either way it must not
	// re-simulate.
	if r.CachedRuns() != 1 {
		t.Fatalf("CachedRuns = %d, want 1", r.CachedRuns())
	}
}

func TestConcurrentRunOneSimulatesOnce(t *testing.T) {
	// Hammer one spec from many goroutines: the sync.Once entry must
	// collapse them into a single simulation (checked via CachedRuns and
	// pointer identity), and the race detector must stay quiet.
	r := NewRunner(0)
	spec := testSpec("Barnes", "Rebound")
	var wg sync.WaitGroup
	var firsts [8]Result
	var errs int32
	for i := 0; i < len(firsts); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.RunOne(context.Background(), spec)
			if err != nil {
				atomic.AddInt32(&errs, 1)
				return
			}
			firsts[i] = res
		}(i)
	}
	wg.Wait()
	if errs != 0 {
		t.Fatalf("%d goroutines failed", errs)
	}
	for i := 1; i < len(firsts); i++ {
		if firsts[i].St != firsts[0].St {
			t.Fatal("concurrent RunOne returned distinct simulations")
		}
	}
	if r.CachedRuns() != 1 {
		t.Fatalf("CachedRuns = %d, want 1", r.CachedRuns())
	}
}

func TestRunOnePanicBecomesCachedError(t *testing.T) {
	// DepSets=1 passes Build but panics inside machine construction
	// (dep.NewTracker requires >= 2 sets). The runner must surface that
	// as an error — and later requests for the same spec must get the
	// same error immediately instead of blocking on a never-closed
	// entry. (Validate rejects this spec; the runner has to stay safe
	// for callers that skip validation.)
	r := NewRunner(1)
	spec := testSpec("FFT", "Rebound")
	spec.DepSets = 1
	if _, err := r.RunOne(context.Background(), spec); err == nil {
		t.Fatal("panicking cell returned no error")
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunOne(context.Background(), spec)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("second request got no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second request for a panicked cell blocked")
	}
}

func TestRecoveryLatencyMemoized(t *testing.T) {
	r := NewRunner(2)
	spec := Spec{App: "Barnes", Procs: 4, Scheme: "Rebound", Scale: Quick}
	a := r.RecoveryLatency(spec)
	b := r.RecoveryLatency(spec)
	if a != b {
		t.Fatalf("memoized recovery latency changed: %v vs %v", a, b)
	}
	if r.CachedRecoveries() != 1 {
		t.Fatalf("CachedRecoveries = %d, want 1", r.CachedRecoveries())
	}
	r.PrefetchRecovery(context.Background(), spec, spec)
	if r.CachedRecoveries() != 1 {
		t.Fatalf("PrefetchRecovery re-measured a cached cell: %d entries", r.CachedRecoveries())
	}
}

func TestSetWorkersResetsDefault(t *testing.T) {
	old := Default()
	SetWorkers(1)
	defer func() {
		defaultMu.Lock()
		defaultRunner = old
		defaultMu.Unlock()
	}()
	if Default() == old {
		t.Fatal("SetWorkers kept the old runner")
	}
	if Default().Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", Default().Workers())
	}
	if Default().CachedRuns() != 0 {
		t.Fatal("SetWorkers kept memoized results")
	}
}
