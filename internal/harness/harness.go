// Package harness drives the experiments of the paper's evaluation
// chapter: one driver per figure/table, shared by cmd/figures, the root
// benchmarks and the integration tests. Every configuration runs
// against a "none" (no checkpointing) baseline to compute overheads,
// exactly as the paper reports them.
//
// Execution goes through the Runner (runner.go): figure drivers build
// their Spec lists, prefetch them across a GOMAXPROCS worker pool with
// per-Spec memoization, and assemble tables from the memoized Results.
// Parallel and serial execution are bit-identical because each cell's
// machine seed is derived purely from its Spec (DeriveSeed).
package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale sizes the experiments. The paper runs SPLASH-2 on up to 64
// processors and PARSEC/Apache on 24, with 4M-instruction checkpoint
// intervals; the scaled defaults keep the same dirty-lines-per-interval
// regime at simulation-friendly sizes (DESIGN.md).
type Scale struct {
	Name string
	// ProcsLarge is the SPLASH-2 processor count (paper: 64);
	// ProcsSmall is the PARSEC/Apache count (paper: 24).
	ProcsLarge, ProcsSmall int
	// InstrPerProc is the per-processor instruction budget of one run.
	InstrPerProc uint64
	// Interval is the checkpoint interval in instructions.
	Interval uint64
	// DetectLatency is L in cycles.
	DetectLatency sim.Cycle
	Seed          uint64
}

// Quick is the test/benchmark scale; Full approximates the paper's
// processor counts.
var (
	Quick = Scale{Name: "quick", ProcsLarge: 16, ProcsSmall: 8,
		InstrPerProc: 120_000, Interval: 25_000, DetectLatency: 6_000, Seed: 1}
	Full = Scale{Name: "full", ProcsLarge: 64, ProcsSmall: 24,
		InstrPerProc: 150_000, Interval: 30_000, DetectLatency: 8_000, Seed: 1}
)

// ScaleByName resolves "quick" or "full".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("harness: unknown scale %q (quick|full)", name)
}

// Spec describes one run. It is a complete, self-contained description
// of the experiment cell: the runner treats equal Specs as the same
// simulation (see Key) and memoizes accordingly.
type Spec struct {
	App    string
	Procs  int
	Scheme string
	Scale  Scale
	// IOForce > 0 makes core 1 perform output I/O every IOForce
	// instructions (the Fig 6.7 experiment).
	IOForce uint64
	// WSIGBits overrides the write-signature size when > 0 and DepSets
	// the number of Dep register sets (the ablation sweeps); LogAllWB
	// disables ReVive's first-writeback-per-interval log optimisation.
	// Zero values keep machine.DefaultConfig.
	WSIGBits int
	DepSets  int
	LogAllWB bool
	// Shards is the machine's state-partition count (machine.Config
	// Shards): 0 and 1 are the unsharded layout, larger powers of two
	// split the memory/log/directory state per home proc-group. The
	// axis changes snapshot/restore parallelism, never results —
	// DeriveSeed ignores it so every shard count replays identical
	// streams and reports byte-identical stats.
	Shards int
}

// Result is the outcome of one run.
type Result struct {
	Spec   Spec
	St     *stats.Stats
	Cycles uint64
	Power  power.Report
}

// schemeNames lists every scheme SchemeFor accepts, in the order the
// evaluation introduces them: paper schemes first (Fig 4.3a's
// configuration list), post-paper extensions appended at the end — the
// order is stable API (figure tables and sweep layouts index into it),
// so new schemes are only ever appended, never inserted.
var schemeNames = []string{
	"none", "Global", "Global_DWB",
	"Rebound", "Rebound_NoDWB", "Rebound_Barr", "Rebound_NoDWB_Barr",
	"Rebound_2L",
}

// SchemeNames returns the valid -scheme / API scheme identifiers.
func SchemeNames() []string {
	return append([]string(nil), schemeNames...)
}

// AppNames returns the valid application-profile names: exactly the
// names workload.ByName resolves (one shared registry, so the CLI and
// service listings cannot advertise a different vocabulary than what
// runs).
func AppNames() []string { return workload.Names() }

// DefaultProcs resolves the default processor count for app at sc the
// way the paper sizes its machines: SPLASH-2 runs on the large machine,
// PARSEC/Apache on the small one. It is the shared request-defaulting
// rule of the service API and the campaign CLI, so the same unspecified
// request can never resolve to different cells on different surfaces.
func DefaultProcs(sc Scale, app string) int {
	if p := workload.ByName(app); p != nil && p.Suite == "splash2" {
		return sc.ProcsLarge
	}
	return sc.ProcsSmall
}

// MaxProcs bounds Spec.Procs: large enough for any paper configuration
// (the full scale tops out at 64), small enough that a single request
// cannot ask a service for an absurd machine. MaxWSIGBits and
// MaxDepSets similarly bound the hardware knobs (the ablation sweeps
// top out at 2048 bits and 6 sets); MinDepSets is the tracker's hard
// floor (dep.NewTracker panics below 2). MaxIOForce keeps the forced
// I/O period within a range the profile arithmetic handles.
const (
	MaxProcs    = 1024
	MaxWSIGBits = 1 << 16
	MinDepSets  = 2
	MaxDepSets  = 64
	MaxIOForce  = 1 << 32
)

// Validate reports whether the spec describes a runnable experiment
// cell: known application and scheme, a sane processor count, and a
// Scale with non-zero instruction budget and checkpoint interval. It is
// the shared request validation of cmd/reboundsim, cmd/figures and the
// reboundd service; Build repeats the app/scheme resolution but cannot
// list valid values in its errors the way Validate does.
func (s Spec) Validate() error {
	if workload.ByName(s.App) == nil {
		return fmt.Errorf("harness: unknown application %q (valid: %s)",
			s.App, strings.Join(AppNames(), " "))
	}
	if _, err := SchemeFor(s.Scheme); err != nil {
		return fmt.Errorf("harness: unknown scheme %q (valid: %s)",
			s.Scheme, strings.Join(SchemeNames(), " "))
	}
	if s.Procs < 1 || s.Procs > MaxProcs {
		return fmt.Errorf("harness: procs %d out of range [1, %d]", s.Procs, MaxProcs)
	}
	if s.Scale.InstrPerProc == 0 {
		return fmt.Errorf("harness: scale %q has a zero instruction budget", s.Scale.Name)
	}
	if s.Scale.Interval == 0 {
		return fmt.Errorf("harness: scale %q has a zero checkpoint interval", s.Scale.Name)
	}
	if s.WSIGBits < 0 || s.DepSets < 0 {
		return fmt.Errorf("harness: negative hardware knob (wsigbits=%d depsets=%d)",
			s.WSIGBits, s.DepSets)
	}
	if s.WSIGBits > MaxWSIGBits {
		return fmt.Errorf("harness: wsigbits %d out of range [1, %d]", s.WSIGBits, MaxWSIGBits)
	}
	if s.DepSets != 0 && (s.DepSets < MinDepSets || s.DepSets > MaxDepSets) {
		return fmt.Errorf("harness: depsets %d out of range [%d, %d]",
			s.DepSets, MinDepSets, MaxDepSets)
	}
	if s.IOForce > MaxIOForce {
		return fmt.Errorf("harness: ioforce %d out of range [0, %d]", s.IOForce, uint64(MaxIOForce))
	}
	if s.Shards < 0 || s.Shards > mem.MaxShards || (s.Shards > 1 && s.Shards&(s.Shards-1) != 0) {
		return fmt.Errorf("harness: shards %d must be a power of two in [0, %d]", s.Shards, mem.MaxShards)
	}
	return nil
}

// SchemeFor builds the named scheme. Every call returns a FRESH
// instance: schemes hold per-machine state (Rebound's per-processor
// checkpoint protocol, Global's epoch bookkeeping), so two machines
// must never share one. machine.Fork relies on this — each forked
// worker machine is handed its own SchemeFor product, then Restore
// loads the shared snapshot's scheme state into it.
func SchemeFor(name string) (machine.Scheme, error) {
	switch name {
	case "none":
		return machine.NullScheme{}, nil
	case "Global":
		return core.NewGlobal(false), nil
	case "Global_DWB":
		return core.NewGlobal(true), nil
	case "Rebound":
		return core.NewRebound(core.Options{DelayedWB: true}), nil
	case "Rebound_NoDWB":
		return core.NewRebound(core.Options{}), nil
	case "Rebound_Barr":
		return core.NewRebound(core.Options{DelayedWB: true, BarrierOpt: true}), nil
	case "Rebound_NoDWB_Barr":
		return core.NewRebound(core.Options{BarrierOpt: true}), nil
	case "Rebound_2L":
		// Two-level hierarchical Rebound (the paper's scalability
		// sketch): group-local coordinated checkpoints with delayed
		// writebacks, escalating to a periodic chip-wide outer level.
		return core.NewRebound(core.Options{DelayedWB: true, TwoLevel: true}), nil
	}
	return nil, fmt.Errorf("harness: unknown scheme %q", name)
}

// Build constructs the machine for a spec without running it.
func Build(spec Spec) (*machine.Machine, error) {
	return BuildIn(nil, spec)
}

// BuildIn is Build with the cache arrays taken from arena (nil means
// fresh allocations; the Runner passes pooled per-worker arenas).
func BuildIn(arena *cache.Arena, spec Spec) (*machine.Machine, error) {
	prof := workload.ByName(spec.App)
	if prof == nil {
		return nil, fmt.Errorf("harness: unknown application %q", spec.App)
	}
	if spec.IOForce > 0 {
		p := *prof
		p.IOPeriod = int(spec.IOForce)
		p.IOCore = 1 // core 0 only
		prof = &p
	}
	sch, err := SchemeFor(spec.Scheme)
	if err != nil {
		return nil, err
	}
	cfg := machine.DefaultConfig(spec.Procs)
	cfg.CkptInterval = spec.Scale.Interval
	cfg.DetectLatency = spec.Scale.DetectLatency
	cfg.Seed = DeriveSeed(spec)
	if spec.WSIGBits > 0 {
		cfg.WSIGBits = spec.WSIGBits
	}
	if spec.DepSets > 0 {
		cfg.DepSets = spec.DepSets
	}
	cfg.Shards = spec.Shards
	m := machine.NewIn(arena, cfg, prof, sch)
	if spec.LogAllWB {
		m.Ctrl.Log().AlwaysLog = true
	}
	return m, nil
}

// runSpec executes the spec to its instruction budget on the calling
// goroutine. It is the uncached primitive underneath the Runner: a
// pure function of spec, with no shared state between invocations
// (the arena only recycles memory, never carries state: every cache
// line taken from it is zeroed).
func runSpec(spec Spec, arena *cache.Arena) (Result, error) {
	m, err := BuildIn(arena, spec)
	if err != nil {
		return Result{}, err
	}
	return measure(m, spec), nil
}

// measure runs a built machine to its spec's budget and scores it.
func measure(m *machine.Machine, spec Spec) Result {
	end := m.Run(spec.Scale.InstrPerProc * uint64(spec.Procs))
	m.FinalizeStats()
	hasDep := spec.Scheme != "none" && spec.Scheme != "Global" && spec.Scheme != "Global_DWB"
	return Result{
		Spec:   spec,
		St:     m.St,
		Cycles: uint64(end),
		Power:  power.Default45nm().Compute(m.St, hasDep),
	}
}

// ReuseKey is the machine-recycling identity of a spec: every field
// that shapes the built machine (workload, processor count, scale,
// hardware knobs) EXCEPT the scheme and the log-ablation flag, which
// Machine.Reset swaps without rebuilding. Cells with equal ReuseKeys
// can run on one recycled machine; DeriveSeed deliberately ignores the
// same fields, so the recycled machine replays the identical streams.
func ReuseKey(s Spec) string {
	b := s
	b.Scheme, b.LogAllWB = "", false
	return b.Key()
}

// resetAndRun recycles a previously-built machine for spec: the
// machine is Reset under spec's scheme (bit-identical to a fresh
// build, see machine.Reset) and run to the budget. The caller
// guarantees ReuseKey(spec) matches the machine's original spec.
func resetAndRun(m *machine.Machine, spec Spec) (Result, error) {
	sch, err := SchemeFor(spec.Scheme)
	if err != nil {
		return Result{}, err
	}
	m.Reset(sch)
	if spec.LogAllWB {
		m.Ctrl.Log().AlwaysLog = true
	}
	return measure(m, spec), nil
}

// detachStats replaces a pooled-machine Result's stats (which alias
// the machine's in-place sink) with a private deep copy, so recycling
// the machine can never mutate a published, memoized Result.
func detachStats(res *Result) {
	st := stats.New(res.St.NProcs)
	res.St.CopyInto(st)
	res.St = st
}

// MustRun runs a known-good spec (figure drivers) through the
// process-wide memoizing runner.
func MustRun(spec Spec) Result {
	res, err := RunOne(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	return res
}

// baselineSpec is spec's "none" counterpart: same workload, no scheme,
// hardware knobs normalised away (they only matter when checkpointing)
// so every knob setting shares one baseline run.
func baselineSpec(spec Spec) Spec {
	b := spec
	b.Scheme = "none"
	b.WSIGBits, b.DepSets, b.LogAllWB = 0, 0, false
	return b
}

// Baseline returns (memoized) the no-checkpointing run for spec's
// app/procs/scale.
func Baseline(spec Spec) Result {
	return MustRun(baselineSpec(spec))
}

// Overhead runs spec and returns its checkpointing overhead as a
// fraction of the baseline execution time, with both results.
func Overhead(spec Spec) (float64, Result, Result) {
	base := Baseline(spec)
	res := MustRun(spec)
	ovh := float64(res.Cycles)/float64(base.Cycles) - 1
	if ovh < 0 {
		ovh = 0
	}
	return ovh, res, base
}

// --- text tables ----------------------------------------------------------

// TableData is a formatted experiment outcome.
type TableData struct {
	Title   string
	Unit    string
	Columns []string
	Rows    []TableRow
}

// TableRow is one labelled row of values.
type TableRow struct {
	Label  string
	Values []float64
}

// Format renders an aligned text table.
func (t TableData) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&sb, "  [%s]", t.Unit)
	}
	sb.WriteByte('\n')
	width := 12
	for _, c := range t.Columns {
		if len(c)+2 > width {
			width = len(c) + 2
		}
	}
	label := 16
	for _, r := range t.Rows {
		if len(r.Label)+2 > label {
			label = len(r.Label) + 2
		}
	}
	fmt.Fprintf(&sb, "%-*s", label, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%*s", width, c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", label, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, "%*.2f", width, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// avgRow appends an average row (mean of each column) to rows.
func avgRow(rows []TableRow) TableRow {
	if len(rows) == 0 {
		return TableRow{Label: "Average"}
	}
	n := len(rows[0].Values)
	avg := make([]float64, n)
	for _, r := range rows {
		for i, v := range r.Values {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(rows))
	}
	return TableRow{Label: "Average", Values: avg}
}

// appNames extracts names from profiles.
func appNames(ps []*workload.Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// splashApps returns the SPLASH-2 application names (incl. Raytrace).
func splashApps() []string {
	names := appNames(workload.SPLASH2())
	return append(names, "Raytrace")
}

// parsecApps returns PARSEC + Apache names.
func parsecApps() []string {
	names := appNames(workload.PARSEC())
	return append(names, "Apache")
}
