package harness_test

// The fault-injected extension of the determinism suite: parallel ==
// serial byte-identity must hold with an active fault Injector, not
// just for fault-free cells. Trials go through the campaign engine
// (an external test package: campaign sits on top of harness), which
// derives every trial's fault placement from (campaign key, trial
// index) the same way DeriveSeed derives machine seeds from Specs —
// so execution order can never leak into the results.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/campaign"
	"repro/internal/harness"
)

func TestFaultInjectedParallelMatchesSerial(t *testing.T) {
	scale := harness.Scale{Name: "fault-det", ProcsLarge: 8, ProcsSmall: 4,
		InstrPerProc: 30_000, Interval: 8_000, DetectLatency: 2_000, Seed: 1}
	spec := campaign.Spec{
		Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: scale},
		Trials: 24,
		Faults: 2,
		Window: 60_000,
		Seed:   11,
	}
	par, err := campaign.New(harness.NewRunner(0), nil).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := campaign.New(harness.NewRunner(1), nil).RunSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(ser)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Fatal("fault-injected parallel report differs from serial")
	}
	if par.VerifiedOK != spec.Trials {
		t.Fatalf("verified %d/%d fault-injected trials", par.VerifiedOK, spec.Trials)
	}
	// Byte-identity must be about real fault work, not empty trials.
	if par.Rollbacks == 0 || par.FaultsInjected == 0 {
		t.Fatalf("suite exercised no faults: %d rollbacks, %d injected",
			par.Rollbacks, par.FaultsInjected)
	}
}
