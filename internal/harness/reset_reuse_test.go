package harness_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
)

// TestResetReuseMatchesFresh is the byte-identity bar of the runner's
// machine-recycling path: one machine Reset across every scheme (and
// the log-ablation knob) must reproduce the stats of a fresh build,
// bit for bit. The runner memoizes Results, so any divergence here
// would poison every figure that shares the cell.
func TestResetReuseMatchesFresh(t *testing.T) {
	var recycled *machine.Machine
	run := func(m *machine.Machine, spec harness.Spec) string {
		m.Run(spec.Scale.InstrPerProc * uint64(spec.Procs))
		m.FinalizeStats()
		return m.St.Snapshot()
	}
	specs := make([]harness.Spec, 0, len(harness.SchemeNames())+1)
	for _, scheme := range harness.SchemeNames() {
		specs = append(specs, harness.Spec{App: "Ocean", Procs: 8, Scheme: scheme, Scale: harness.Quick})
	}
	specs = append(specs, harness.Spec{App: "Ocean", Procs: 8, Scheme: "Rebound",
		Scale: harness.Quick, LogAllWB: true})

	for _, spec := range specs {
		if harness.ReuseKey(spec) != harness.ReuseKey(specs[0]) {
			t.Fatalf("spec %v does not share the reuse key under test", spec)
		}
		fresh, err := harness.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := run(fresh, spec)

		if recycled == nil {
			if recycled, err = harness.Build(spec); err != nil {
				t.Fatal(err)
			}
		}
		sch, err := harness.SchemeFor(spec.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		recycled.Reset(sch)
		if spec.LogAllWB {
			recycled.Ctrl.Log().AlwaysLog = true
		}
		if got := run(recycled, spec); got != want {
			t.Errorf("%s (logallwb=%t): recycled machine diverged from fresh build",
				spec.Scheme, spec.LogAllWB)
		}
	}
}
