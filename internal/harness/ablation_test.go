package harness

import "testing"

func TestAblationWSIGSmallFilterHasMoreFPs(t *testing.T) {
	td := AblationWSIG(Quick, "Water-Nsq")
	if len(td.Rows) != 5 {
		t.Fatalf("rows = %d", len(td.Rows))
	}
	fpTiny := td.Rows[0].Values[0] // 128 bits
	fpBig := td.Rows[4].Values[0]  // 2048 bits
	if fpTiny <= fpBig {
		t.Fatalf("128-bit FP rate (%.2f%%) should exceed 2048-bit (%.2f%%)", fpTiny, fpBig)
	}
	// ICHK with bloom is never below the exact closure.
	for _, r := range td.Rows {
		if r.Values[1] < r.Values[2]-0.01 {
			t.Fatalf("%s: bloom ICHK %.1f%% below exact %.1f%%", r.Label, r.Values[1], r.Values[2])
		}
	}
}

func TestAblationFirstWBReducesLogTraffic(t *testing.T) {
	td := AblationFirstWB(Quick, "Uniform")
	optEntries := td.Rows[0].Values[0]
	allEntries := td.Rows[1].Values[0]
	if optEntries >= allEntries {
		t.Fatalf("first-WB optimisation did not reduce log entries (%.0fk vs %.0fk)",
			optEntries, allEntries)
	}
}

func TestAblationDepSetsStallWithTwo(t *testing.T) {
	td := AblationDepSets(Quick, "Uniform")
	two := td.Rows[0]
	four := td.Rows[2]
	// With only 2 sets and a non-trivial L, stalls must appear and the
	// overhead must not improve relative to 4 sets.
	if two.Values[1] == 0 {
		t.Log("no dep stalls with 2 sets at this scale (acceptable, but unusual)")
	}
	if two.Values[0]+0.01 < four.Values[0] {
		t.Fatalf("2 sets (%.2f%%) outperformed 4 sets (%.2f%%)", two.Values[0], four.Values[0])
	}
}
