package harness

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/workload"
)

// Fig61 reproduces Figure 6.1: the average Interaction Set for
// Checkpointing of Rebound on PARSEC and Apache (paper: 24-processor
// runs), as a percentage of the processor count.
func Fig61(sc Scale) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.1: avg ICHK size, PARSEC+Apache, %d procs (Rebound)", sc.ProcsSmall),
		Unit:    "% of processors",
		Columns: []string{"ICHK"},
	}
	for _, app := range parsecApps() {
		res := RunCached(Spec{App: app, Procs: sc.ProcsSmall, Scheme: "Rebound", Scale: sc})
		t.Rows = append(t.Rows, TableRow{Label: app,
			Values: []float64{res.St.AvgICHKFraction() * 100}})
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// Fig62 reproduces Figure 6.2: the average ICHK of Rebound on SPLASH-2
// at half- and full-size machines (paper: 32 and 64 processors).
func Fig62(sc Scale) []TableData {
	var out []TableData
	for _, procs := range []int{sc.ProcsLarge / 2, sc.ProcsLarge} {
		t := TableData{
			Title:   fmt.Sprintf("Figure 6.2: avg ICHK size, SPLASH-2, %d procs (Rebound)", procs),
			Unit:    "% of processors",
			Columns: []string{"ICHK"},
		}
		for _, app := range splashApps() {
			res := RunCached(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
			t.Rows = append(t.Rows, TableRow{Label: app,
				Values: []float64{res.St.AvgICHKFraction() * 100}})
		}
		t.Rows = append(t.Rows, avgRow(t.Rows))
		out = append(out, t)
	}
	return out
}

var fig63Schemes = []string{"Global", "Global_DWB", "Rebound_NoDWB", "Rebound"}

// Fig63 reproduces Figure 6.3: error-free checkpointing overhead of
// Global, Global_DWB, Rebound_NoDWB and Rebound, on SPLASH-2 (large
// machine) and PARSEC/Apache (small machine).
func Fig63(sc Scale) []TableData {
	var out []TableData
	groups := []struct {
		title string
		apps  []string
		procs int
	}{
		{"Figure 6.3(a): checkpoint overhead, SPLASH-2", splashApps(), sc.ProcsLarge},
		{"Figure 6.3(b): checkpoint overhead, PARSEC+Apache", parsecApps(), sc.ProcsSmall},
	}
	for _, g := range groups {
		t := TableData{
			Title:   fmt.Sprintf("%s, %d procs", g.title, g.procs),
			Unit:    "% of execution time",
			Columns: fig63Schemes,
		}
		for _, app := range g.apps {
			row := TableRow{Label: app}
			for _, scheme := range fig63Schemes {
				ovh, _, _ := Overhead(Spec{App: app, Procs: g.procs, Scheme: scheme, Scale: sc})
				row.Values = append(row.Values, ovh*100)
			}
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, avgRow(t.Rows))
		out = append(out, t)
	}
	return out
}

// barrierApps are the barrier-intensive codes Figure 6.4 evaluates.
func barrierApps() []string {
	return []string{"FFT", "Radix", "LU-C", "LU-NC", "Ocean", "Streamcluster"}
}

var fig64Schemes = []string{"Global", "Rebound_NoDWB", "Rebound_NoDWB_Barr", "Rebound", "Rebound_Barr"}

// Fig64 reproduces Figure 6.4: the impact of the Barrier optimisation
// on the barrier-intensive applications.
func Fig64(sc Scale) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.4: barrier optimisation impact, %d procs", sc.ProcsLarge),
		Unit:    "% of execution time",
		Columns: fig64Schemes,
	}
	for _, app := range barrierApps() {
		row := TableRow{Label: app}
		for _, scheme := range fig64Schemes {
			ovh, _, _ := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			row.Values = append(row.Values, ovh*100)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// breakdown computes the Fig 6.5 categories for one run, in
// processor-cycles: measured stalls plus the IPCDelay residual.
func breakdown(res, base Result) (wb, imb, sync, ipc float64) {
	wbc, imbc, syncc := res.St.StallTotals()
	wb, imb, sync = float64(wbc), float64(imbc), float64(syncc)
	// Signed difference: at small scales a scheme run can finish at (or
	// even slightly under) the baseline cycle count.
	delta := int64(res.Cycles) - int64(base.Cycles)
	if delta < 0 {
		delta = 0
	}
	total := float64(delta) * float64(res.Spec.Procs)
	ipc = total - wb - imb - sync
	if ipc < 0 {
		ipc = 0
	}
	return
}

// Fig65 reproduces Figure 6.5: the checkpointing-overhead breakdown
// (WBDelay, WBImbalanceDelay, SyncDelay, IPCDelay) of Global,
// Rebound_NoDWB and Rebound, averaged over the SPLASH-2 codes and
// normalised to Global's total.
func Fig65(sc Scale) TableData {
	schemes := []string{"Global", "Rebound_NoDWB", "Rebound"}
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.5: overhead breakdown, SPLASH-2 avg, %d procs (normalised to Global)", sc.ProcsLarge),
		Columns: []string{"WBDelay", "WBImbalance", "SyncDelay", "IPCDelay", "Total"},
	}
	sums := make([][4]float64, len(schemes))
	for _, app := range splashApps() {
		for i, scheme := range schemes {
			_, res, base := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			wb, imb, sync, ipc := breakdown(res, base)
			sums[i][0] += wb
			sums[i][1] += imb
			sums[i][2] += sync
			sums[i][3] += ipc
		}
	}
	globalTotal := sums[0][0] + sums[0][1] + sums[0][2] + sums[0][3]
	if globalTotal == 0 {
		globalTotal = 1
	}
	for i, scheme := range schemes {
		total := 0.0
		row := TableRow{Label: scheme}
		for _, v := range sums[i] {
			row.Values = append(row.Values, v/globalTotal)
			total += v / globalTotal
		}
		row.Values = append(row.Values, total)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig66Apps is the SPLASH-2 subset used for the scalability sweep (the
// full suite at three machine sizes would triple the figure's runtime
// for the same trend).
func fig66Apps() []string {
	return []string{"Barnes", "FFT", "LU-C", "Ocean", "Water-Nsq", "Raytrace"}
}

// Fig66 reproduces Figure 6.6: checkpointing overhead (a), energy
// increase due to checkpointing (b) and fault recovery latency (c) for
// SPLASH-2 as the processor count grows (paper: 16/32/64).
func Fig66(sc Scale) []TableData {
	schemes := []string{"Global", "Rebound_NoDWB", "Rebound"}
	counts := []int{sc.ProcsLarge / 4, sc.ProcsLarge / 2, sc.ProcsLarge}
	ovhT := TableData{Title: "Figure 6.6(a): checkpoint overhead vs processor count (SPLASH-2 avg)",
		Unit: "% of execution time", Columns: schemes}
	engT := TableData{Title: "Figure 6.6(b): energy increase due to checkpointing vs processor count",
		Unit: "% over no-checkpointing", Columns: schemes}
	recT := TableData{Title: "Figure 6.6(c): fault recovery latency vs processor count",
		Unit: "ms at 1 GHz", Columns: schemes}
	for _, n := range counts {
		if n < 2 {
			continue
		}
		ovhRow := TableRow{Label: fmt.Sprintf("%d procs", n)}
		engRow := ovhRow
		recRow := ovhRow
		ovhRow.Values = nil
		engRow.Values = nil
		recRow.Values = nil
		for _, scheme := range schemes {
			var ovhSum, engSum, recSum float64
			for _, app := range fig66Apps() {
				spec := Spec{App: app, Procs: n, Scheme: scheme, Scale: sc}
				ovh, res, base := Overhead(spec)
				ovhSum += ovh
				engSum += (res.Power.TotalJ/base.Power.TotalJ - 1) * 100
				recSum += RecoveryLatencyMS(spec)
			}
			k := float64(len(fig66Apps()))
			ovhRow.Values = append(ovhRow.Values, ovhSum/k*100)
			engRow.Values = append(engRow.Values, engSum/k)
			recRow.Values = append(recRow.Values, recSum/k)
		}
		ovhT.Rows = append(ovhT.Rows, ovhRow)
		engT.Rows = append(engT.Rows, engRow)
		recT.Rows = append(recT.Rows, recRow)
	}
	return []TableData{ovhT, engT, recT}
}

// RecoveryLatencyMS measures the recovery latency of a transient fault
// injected right before a checkpoint would start (the Fig 6.6c setup):
// milliseconds from detection to all processors resumed.
func RecoveryLatencyMS(spec Spec) float64 {
	m, err := Build(spec)
	if err != nil {
		panic(err)
	}
	inj := fault.NewInjector(m, spec.Scale.Seed)
	// Run to just before the end of a checkpoint interval.
	m.Run(uint64(spec.Procs) * spec.Scale.Interval * 9 / 10)
	inj.InjectAt(m.Now()+1, 0, m.Cfg.DetectLatency/2)
	// Run in short slices until the recovery is recorded.
	for i := 0; i < 200 && len(m.St.Rollbacks) == 0; i++ {
		m.RunCycles(100_000)
	}
	if len(m.St.Rollbacks) == 0 {
		return 0
	}
	rb := m.St.Rollbacks[0]
	return float64(rb.End-rb.Start) / 1e6 // cycles at 1 GHz -> ms
}

// fig67Apps are codes with relatively small interaction sets (§6.4).
func fig67Apps() []string {
	return []string{"Blackscholes", "Apache", "Water-Sp", "Fluidanimate", "Ferret"}
}

// Fig67 reproduces Figure 6.7: one of the processors initiates a
// checkpoint (as if performing output I/O) every half checkpoint
// interval; the table reports the resulting average checkpoint
// interval per processor for Global-I/O and Rebound-I/O.
func Fig67(sc Scale) TableData {
	t := TableData{
		Title: fmt.Sprintf("Figure 6.7: avg checkpoint interval under forced I/O, %d procs (interval=%d instr)",
			sc.ProcsLarge, sc.Interval),
		Unit:    "instructions per processor",
		Columns: []string{"Global-I/O", "Rebound-I/O"},
	}
	for _, app := range fig67Apps() {
		row := TableRow{Label: app}
		for _, scheme := range []string{"Global", "Rebound"} {
			res := RunCached(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme,
				Scale: sc, IOForce: sc.Interval / 2})
			row.Values = append(row.Values, res.St.AvgCheckpointIntervalInstr())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// Fig68 reproduces Figure 6.8: estimated on-chip power of Global,
// Rebound_NoDWB and Rebound on SPLASH-2, plus the ED² comparison the
// paper quotes (§6.5).
func Fig68(sc Scale) TableData {
	schemes := []string{"Global", "Rebound_NoDWB", "Rebound"}
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.8: estimated power, SPLASH-2 avg, %d procs", sc.ProcsLarge),
		Columns: []string{"Power (W)", "vs Global (%)", "ED2 vs Global (%)"},
	}
	type acc struct{ p, ed2 float64 }
	sums := make([]acc, len(schemes))
	for _, app := range splashApps() {
		for i, scheme := range schemes {
			_, res, _ := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			sums[i].p += res.Power.AvgPowerW
			sums[i].ed2 += res.Power.ED2
		}
	}
	k := float64(len(splashApps()))
	for i, scheme := range schemes {
		t.Rows = append(t.Rows, TableRow{Label: scheme, Values: []float64{
			sums[i].p / k,
			(sums[i].p/sums[0].p - 1) * 100,
			(sums[i].ed2/sums[0].ed2 - 1) * 100,
		}})
	}
	return t
}

// Table61 reproduces Table 6.1: per application, the ICHK increase due
// to WSIG false positives, the maximum log space per checkpoint
// interval, and the coherence-message increase from maintaining LW-ID
// and the Dep registers. SPLASH-2 runs on the large machine,
// PARSEC/Apache on the small one, as in the paper.
func Table61(sc Scale) TableData {
	t := TableData{
		Title:   "Table 6.1: Rebound characterisation",
		Columns: []string{"ICHK FP incr (%)", "Log size (MB)", "Msg incr (%)"},
	}
	apps := append(splashApps(), parsecApps()...)
	for _, app := range apps {
		procs := sc.ProcsLarge
		if p := workloadSuite(app); p == "parsec" || p == "server" {
			procs = sc.ProcsSmall
		}
		res := RunCached(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
		t.Rows = append(t.Rows, TableRow{Label: app, Values: []float64{
			res.St.ICHKFalsePositiveIncreasePct(),
			float64(res.St.LogHighWaterBytes) / (1 << 20),
			res.St.MessageIncreasePct(),
		}})
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

func workloadSuite(app string) string {
	if p := workload.ByName(app); p != nil {
		return p.Suite
	}
	return "splash2"
}
