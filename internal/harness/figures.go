package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/workload"
)

// Each figure driver is a thin pair: FigXXSpecs builds the cells the
// figure simulates (baselines included where overheads are reported),
// FigXX prefetches them through the parallel runner and assembles the
// table from the memoized results. Cells shared between figures — the
// "none" baselines above all — are simulated once per process.

// Fig61Specs lists the cells of Figure 6.1.
func Fig61Specs(sc Scale) []Spec {
	var specs []Spec
	for _, app := range parsecApps() {
		specs = append(specs, Spec{App: app, Procs: sc.ProcsSmall, Scheme: "Rebound", Scale: sc})
	}
	return specs
}

// Fig61 reproduces Figure 6.1: the average Interaction Set for
// Checkpointing of Rebound on PARSEC and Apache (paper: 24-processor
// runs), as a percentage of the processor count.
func Fig61(sc Scale) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.1: avg ICHK size, PARSEC+Apache, %d procs (Rebound)", sc.ProcsSmall),
		Unit:    "% of processors",
		Columns: []string{"ICHK"},
	}
	for _, res := range mustRunAll(Fig61Specs(sc)) {
		t.Rows = append(t.Rows, TableRow{Label: res.Spec.App,
			Values: []float64{res.St.AvgICHKFraction() * 100}})
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// Fig62Specs lists the cells of Figure 6.2 (both machine sizes).
func Fig62Specs(sc Scale) []Spec {
	var specs []Spec
	for _, procs := range []int{sc.ProcsLarge / 2, sc.ProcsLarge} {
		for _, app := range splashApps() {
			specs = append(specs, Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
		}
	}
	return specs
}

// Fig62 reproduces Figure 6.2: the average ICHK of Rebound on SPLASH-2
// at half- and full-size machines (paper: 32 and 64 processors).
func Fig62(sc Scale) []TableData {
	mustRunAll(Fig62Specs(sc))
	var out []TableData
	for _, procs := range []int{sc.ProcsLarge / 2, sc.ProcsLarge} {
		t := TableData{
			Title:   fmt.Sprintf("Figure 6.2: avg ICHK size, SPLASH-2, %d procs (Rebound)", procs),
			Unit:    "% of processors",
			Columns: []string{"ICHK"},
		}
		for _, app := range splashApps() {
			res := MustRun(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
			t.Rows = append(t.Rows, TableRow{Label: app,
				Values: []float64{res.St.AvgICHKFraction() * 100}})
		}
		t.Rows = append(t.Rows, avgRow(t.Rows))
		out = append(out, t)
	}
	return out
}

var fig63Schemes = []string{"Global", "Global_DWB", "Rebound_NoDWB", "Rebound"}

// fig63Groups are the two application groups of Figure 6.3.
func fig63Groups(sc Scale) []struct {
	title string
	apps  []string
	procs int
} {
	return []struct {
		title string
		apps  []string
		procs int
	}{
		{"Figure 6.3(a): checkpoint overhead, SPLASH-2", splashApps(), sc.ProcsLarge},
		{"Figure 6.3(b): checkpoint overhead, PARSEC+Apache", parsecApps(), sc.ProcsSmall},
	}
}

// Fig63Specs lists the cells of Figure 6.3, baselines included.
func Fig63Specs(sc Scale) []Spec {
	var specs []Spec
	for _, g := range fig63Groups(sc) {
		for _, app := range g.apps {
			for _, scheme := range fig63Schemes {
				specs = append(specs, Spec{App: app, Procs: g.procs, Scheme: scheme, Scale: sc})
			}
		}
	}
	return withBaselines(specs)
}

// Fig63 reproduces Figure 6.3: error-free checkpointing overhead of
// Global, Global_DWB, Rebound_NoDWB and Rebound, on SPLASH-2 (large
// machine) and PARSEC/Apache (small machine).
func Fig63(sc Scale) []TableData {
	mustRunAll(Fig63Specs(sc))
	var out []TableData
	for _, g := range fig63Groups(sc) {
		t := TableData{
			Title:   fmt.Sprintf("%s, %d procs", g.title, g.procs),
			Unit:    "% of execution time",
			Columns: fig63Schemes,
		}
		for _, app := range g.apps {
			row := TableRow{Label: app}
			for _, scheme := range fig63Schemes {
				ovh, _, _ := Overhead(Spec{App: app, Procs: g.procs, Scheme: scheme, Scale: sc})
				row.Values = append(row.Values, ovh*100)
			}
			t.Rows = append(t.Rows, row)
		}
		t.Rows = append(t.Rows, avgRow(t.Rows))
		out = append(out, t)
	}
	return out
}

// barrierApps are the barrier-intensive codes Figure 6.4 evaluates.
func barrierApps() []string {
	return []string{"FFT", "Radix", "LU-C", "LU-NC", "Ocean", "Streamcluster"}
}

var fig64Schemes = []string{"Global", "Rebound_NoDWB", "Rebound_NoDWB_Barr", "Rebound", "Rebound_Barr"}

// Fig64Specs lists the cells of Figure 6.4, baselines included.
func Fig64Specs(sc Scale) []Spec {
	var specs []Spec
	for _, app := range barrierApps() {
		for _, scheme := range fig64Schemes {
			specs = append(specs, Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
		}
	}
	return withBaselines(specs)
}

// Fig64 reproduces Figure 6.4: the impact of the Barrier optimisation
// on the barrier-intensive applications.
func Fig64(sc Scale) TableData {
	mustRunAll(Fig64Specs(sc))
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.4: barrier optimisation impact, %d procs", sc.ProcsLarge),
		Unit:    "% of execution time",
		Columns: fig64Schemes,
	}
	for _, app := range barrierApps() {
		row := TableRow{Label: app}
		for _, scheme := range fig64Schemes {
			ovh, _, _ := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			row.Values = append(row.Values, ovh*100)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// breakdown computes the Fig 6.5 categories for one run, in
// processor-cycles: measured stalls plus the IPCDelay residual.
func breakdown(res, base Result) (wb, imb, sync, ipc float64) {
	wbc, imbc, syncc := res.St.StallTotals()
	wb, imb, sync = float64(wbc), float64(imbc), float64(syncc)
	// Signed difference: at small scales a scheme run can finish at (or
	// even slightly under) the baseline cycle count.
	delta := int64(res.Cycles) - int64(base.Cycles)
	if delta < 0 {
		delta = 0
	}
	total := float64(delta) * float64(res.Spec.Procs)
	ipc = total - wb - imb - sync
	if ipc < 0 {
		ipc = 0
	}
	return
}

var fig65Schemes = []string{"Global", "Rebound_NoDWB", "Rebound"}

// Fig65Specs lists the cells of Figure 6.5, baselines included.
func Fig65Specs(sc Scale) []Spec {
	var specs []Spec
	for _, app := range splashApps() {
		for _, scheme := range fig65Schemes {
			specs = append(specs, Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
		}
	}
	return withBaselines(specs)
}

// Fig65 reproduces Figure 6.5: the checkpointing-overhead breakdown
// (WBDelay, WBImbalanceDelay, SyncDelay, IPCDelay) of Global,
// Rebound_NoDWB and Rebound, averaged over the SPLASH-2 codes and
// normalised to Global's total.
func Fig65(sc Scale) TableData {
	mustRunAll(Fig65Specs(sc))
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.5: overhead breakdown, SPLASH-2 avg, %d procs (normalised to Global)", sc.ProcsLarge),
		Columns: []string{"WBDelay", "WBImbalance", "SyncDelay", "IPCDelay", "Total"},
	}
	sums := make([][4]float64, len(fig65Schemes))
	for _, app := range splashApps() {
		for i, scheme := range fig65Schemes {
			_, res, base := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			wb, imb, sync, ipc := breakdown(res, base)
			sums[i][0] += wb
			sums[i][1] += imb
			sums[i][2] += sync
			sums[i][3] += ipc
		}
	}
	globalTotal := sums[0][0] + sums[0][1] + sums[0][2] + sums[0][3]
	if globalTotal == 0 {
		globalTotal = 1
	}
	for i, scheme := range fig65Schemes {
		total := 0.0
		row := TableRow{Label: scheme}
		for _, v := range sums[i] {
			row.Values = append(row.Values, v/globalTotal)
			total += v / globalTotal
		}
		row.Values = append(row.Values, total)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig66Apps is the SPLASH-2 subset used for the scalability sweep (the
// full suite at three machine sizes would triple the figure's runtime
// for the same trend).
func fig66Apps() []string {
	return []string{"Barnes", "FFT", "LU-C", "Ocean", "Water-Nsq", "Raytrace"}
}

// fig66Counts are the processor counts of the scalability sweep.
func fig66Counts(sc Scale) []int {
	var out []int
	for _, n := range []int{sc.ProcsLarge / 4, sc.ProcsLarge / 2, sc.ProcsLarge} {
		if n >= 2 {
			out = append(out, n)
		}
	}
	return out
}

// Fig66Specs lists the cells of Figure 6.6, baselines included: the
// same scheme cells whose recovery latency Fig 6.6(c) measures.
func Fig66Specs(sc Scale) []Spec {
	return withBaselines(fig66RecoverySpecs(sc))
}

// fig66RecoverySpecs lists the scheme cells whose recovery latency
// Figure 6.6(c) measures (a separate fault-injection run per cell).
func fig66RecoverySpecs(sc Scale) []Spec {
	var specs []Spec
	for _, n := range fig66Counts(sc) {
		for _, scheme := range fig65Schemes {
			for _, app := range fig66Apps() {
				specs = append(specs, Spec{App: app, Procs: n, Scheme: scheme, Scale: sc})
			}
		}
	}
	return specs
}

// Fig66 reproduces Figure 6.6: checkpointing overhead (a), energy
// increase due to checkpointing (b) and fault recovery latency (c) for
// SPLASH-2 as the processor count grows (paper: 16/32/64).
func Fig66(sc Scale) []TableData {
	mustRunAll(Fig66Specs(sc))
	Default().PrefetchRecovery(context.Background(), fig66RecoverySpecs(sc)...)
	schemes := fig65Schemes
	ovhT := TableData{Title: "Figure 6.6(a): checkpoint overhead vs processor count (SPLASH-2 avg)",
		Unit: "% of execution time", Columns: schemes}
	engT := TableData{Title: "Figure 6.6(b): energy increase due to checkpointing vs processor count",
		Unit: "% over no-checkpointing", Columns: schemes}
	recT := TableData{Title: "Figure 6.6(c): fault recovery latency vs processor count",
		Unit: "ms at 1 GHz", Columns: schemes}
	for _, n := range fig66Counts(sc) {
		ovhRow := TableRow{Label: fmt.Sprintf("%d procs", n)}
		engRow := ovhRow
		recRow := ovhRow
		ovhRow.Values = nil
		engRow.Values = nil
		recRow.Values = nil
		for _, scheme := range schemes {
			var ovhSum, engSum, recSum float64
			for _, app := range fig66Apps() {
				spec := Spec{App: app, Procs: n, Scheme: scheme, Scale: sc}
				ovh, res, base := Overhead(spec)
				ovhSum += ovh
				engSum += (res.Power.TotalJ/base.Power.TotalJ - 1) * 100
				recSum += Default().RecoveryLatency(spec)
			}
			k := float64(len(fig66Apps()))
			ovhRow.Values = append(ovhRow.Values, ovhSum/k*100)
			engRow.Values = append(engRow.Values, engSum/k)
			recRow.Values = append(recRow.Values, recSum/k)
		}
		ovhT.Rows = append(ovhT.Rows, ovhRow)
		engT.Rows = append(engT.Rows, engRow)
		recT.Rows = append(recT.Rows, recRow)
	}
	return []TableData{ovhT, engT, recT}
}

// RecoveryLatencyMS measures the recovery latency of a transient fault
// injected right before a checkpoint would start (the Fig 6.6c setup):
// milliseconds from detection to all processors resumed. This is the
// uncached primitive; Runner.RecoveryLatency memoizes it.
func RecoveryLatencyMS(spec Spec) float64 {
	m, err := Build(spec)
	if err != nil {
		panic(err)
	}
	inj := fault.NewInjector(m, spec.Scale.Seed)
	// Run to just before the end of a checkpoint interval.
	m.Run(uint64(spec.Procs) * spec.Scale.Interval * 9 / 10)
	inj.InjectAt(m.Now()+1, 0, m.Cfg.DetectLatency/2)
	// Run in short slices until the recovery is recorded.
	for i := 0; i < 200 && len(m.St.Rollbacks) == 0; i++ {
		m.RunCycles(100_000)
	}
	if len(m.St.Rollbacks) == 0 {
		return 0
	}
	rb := m.St.Rollbacks[0]
	return float64(rb.End-rb.Start) / 1e6 // cycles at 1 GHz -> ms
}

// fig67Apps are codes with relatively small interaction sets (§6.4).
func fig67Apps() []string {
	return []string{"Blackscholes", "Apache", "Water-Sp", "Fluidanimate", "Ferret"}
}

// Fig67Specs lists the cells of Figure 6.7.
func Fig67Specs(sc Scale) []Spec {
	var specs []Spec
	for _, app := range fig67Apps() {
		for _, scheme := range []string{"Global", "Rebound"} {
			specs = append(specs, Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme,
				Scale: sc, IOForce: sc.Interval / 2})
		}
	}
	return specs
}

// Fig67 reproduces Figure 6.7: one of the processors initiates a
// checkpoint (as if performing output I/O) every half checkpoint
// interval; the table reports the resulting average checkpoint
// interval per processor for Global-I/O and Rebound-I/O.
func Fig67(sc Scale) TableData {
	mustRunAll(Fig67Specs(sc))
	t := TableData{
		Title: fmt.Sprintf("Figure 6.7: avg checkpoint interval under forced I/O, %d procs (interval=%d instr)",
			sc.ProcsLarge, sc.Interval),
		Unit:    "instructions per processor",
		Columns: []string{"Global-I/O", "Rebound-I/O"},
	}
	for _, app := range fig67Apps() {
		row := TableRow{Label: app}
		for _, scheme := range []string{"Global", "Rebound"} {
			res := MustRun(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme,
				Scale: sc, IOForce: sc.Interval / 2})
			row.Values = append(row.Values, res.St.AvgCheckpointIntervalInstr())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

// Fig68Specs lists the cells of Figure 6.8, baselines included. They
// are exactly Figure 6.5's: same schemes, same apps, same machine.
func Fig68Specs(sc Scale) []Spec { return Fig65Specs(sc) }

// Fig68 reproduces Figure 6.8: estimated on-chip power of Global,
// Rebound_NoDWB and Rebound on SPLASH-2, plus the ED² comparison the
// paper quotes (§6.5).
func Fig68(sc Scale) TableData {
	mustRunAll(Fig68Specs(sc))
	schemes := fig65Schemes
	t := TableData{
		Title:   fmt.Sprintf("Figure 6.8: estimated power, SPLASH-2 avg, %d procs", sc.ProcsLarge),
		Columns: []string{"Power (W)", "vs Global (%)", "ED2 vs Global (%)"},
	}
	type acc struct{ p, ed2 float64 }
	sums := make([]acc, len(schemes))
	for _, app := range splashApps() {
		for i, scheme := range schemes {
			_, res, _ := Overhead(Spec{App: app, Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc})
			sums[i].p += res.Power.AvgPowerW
			sums[i].ed2 += res.Power.ED2
		}
	}
	k := float64(len(splashApps()))
	for i, scheme := range schemes {
		t.Rows = append(t.Rows, TableRow{Label: scheme, Values: []float64{
			sums[i].p / k,
			(sums[i].p/sums[0].p - 1) * 100,
			(sums[i].ed2/sums[0].ed2 - 1) * 100,
		}})
	}
	return t
}

// Table61Specs lists the cells of Table 6.1.
func Table61Specs(sc Scale) []Spec {
	var specs []Spec
	for _, app := range append(splashApps(), parsecApps()...) {
		procs := sc.ProcsLarge
		if p := workloadSuite(app); p == "parsec" || p == "server" {
			procs = sc.ProcsSmall
		}
		specs = append(specs, Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
	}
	return specs
}

// Table61 reproduces Table 6.1: per application, the ICHK increase due
// to WSIG false positives, the maximum log space per checkpoint
// interval, and the coherence-message increase from maintaining LW-ID
// and the Dep registers. SPLASH-2 runs on the large machine,
// PARSEC/Apache on the small one, as in the paper.
func Table61(sc Scale) TableData {
	t := TableData{
		Title:   "Table 6.1: Rebound characterisation",
		Columns: []string{"ICHK FP incr (%)", "Log size (MB)", "Msg incr (%)"},
	}
	for _, res := range mustRunAll(Table61Specs(sc)) {
		t.Rows = append(t.Rows, TableRow{Label: res.Spec.App, Values: []float64{
			res.St.ICHKFalsePositiveIncreasePct(),
			float64(res.St.LogHighWaterBytes) / (1 << 20),
			res.St.MessageIncreasePct(),
		}})
	}
	t.Rows = append(t.Rows, avgRow(t.Rows))
	return t
}

func workloadSuite(app string) string {
	if p := workload.ByName(app); p != nil {
		return p.Suite
	}
	return "splash2"
}

// figureSpecBuilders maps the canonical figure identifiers to their
// spec builders. Keys are the short forms cmd/figures accepts; see
// FigureSpecs for the aliases the service accepts.
var figureSpecBuilders = map[string]func(Scale) []Spec{
	"6.1":  Fig61Specs,
	"6.2":  Fig62Specs,
	"6.3":  Fig63Specs,
	"6.4":  Fig64Specs,
	"6.5":  Fig65Specs,
	"6.6":  Fig66Specs,
	"6.7":  Fig67Specs,
	"6.8":  Fig68Specs,
	"t6.1": Table61Specs,
	"all":  SweepSpecs,
}

// FigureNames lists the identifiers FigureSpecs accepts (short forms),
// sorted for error messages. Derived from the builder map so the two
// cannot drift.
func FigureNames() []string {
	names := make([]string, 0, len(figureSpecBuilders))
	for name := range figureSpecBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FigureSpecs resolves a figure name to the cells it simulates
// (baselines included where the figure reports overheads). It accepts
// the short identifiers of cmd/figures ("6.2", "t6.1", "all") and the
// service's prefixed aliases ("fig6.2", "table6.1", "sweep"),
// case-insensitively.
func FigureSpecs(name string, sc Scale) ([]Spec, error) {
	id := strings.ToLower(strings.TrimSpace(name))
	id = strings.TrimPrefix(id, "fig")
	id = strings.TrimPrefix(id, "ure") // "figure6.2"
	id = strings.TrimSpace(strings.TrimPrefix(id, "."))
	if strings.HasPrefix(id, "table") {
		id = "t" + strings.TrimPrefix(id, "table")
	}
	if id == "sweep" {
		id = "all"
	}
	if b, ok := figureSpecBuilders[id]; ok {
		return b(sc), nil
	}
	return nil, fmt.Errorf("harness: unknown figure %q (valid: %s)",
		name, strings.Join(FigureNames(), " "))
}

// SweepSpecs is the union of every figure's and Table 6.1's cells,
// deduplicated: the full evaluation-chapter workload that a default
// `cmd/figures` invocation simulates. Exported so tooling can size or
// batch the whole sweep; the runner benchmarks in bench_test.go use a
// smaller fixed subset to keep iterations affordable.
func SweepSpecs(sc Scale) []Spec {
	var all []Spec
	all = append(all, Fig61Specs(sc)...)
	all = append(all, Fig62Specs(sc)...)
	all = append(all, Fig63Specs(sc)...)
	all = append(all, Fig64Specs(sc)...)
	all = append(all, Fig65Specs(sc)...)
	all = append(all, Fig66Specs(sc)...)
	all = append(all, Fig67Specs(sc)...)
	all = append(all, Fig68Specs(sc)...)
	all = append(all, Table61Specs(sc)...)
	return withBaselines(all) // withBaselines also deduplicates
}
