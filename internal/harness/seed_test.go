package harness

import (
	"testing"

	"repro/internal/workload"
)

// TestAppNamesMatchResolvable: the advertised -app vocabulary and the
// resolvable one are the same set (the service and CLIs build their
// error listings from AppNames and validate through workload.ByName).
func TestAppNamesMatchResolvable(t *testing.T) {
	names := AppNames()
	if len(names) == 0 {
		t.Fatal("empty app vocabulary")
	}
	for _, name := range names {
		if workload.ByName(name) == nil {
			t.Errorf("advertised app %q does not resolve", name)
		}
		spec := Spec{App: name, Procs: 4, Scheme: "Rebound", Scale: Quick}
		if err := spec.Validate(); err != nil {
			t.Errorf("advertised app %q fails validation: %v", name, err)
		}
	}
	for _, name := range workload.Names() {
		found := false
		for _, n := range names {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("resolvable app %q missing from AppNames", name)
		}
	}
}

// TestDeriveSeedInjectiveOverWorkloadIdentity: DeriveSeed must give
// distinct machine seeds to distinct workload identities across the
// full app × procs × scale vocabulary — a collision would silently pair
// two unrelated cells onto one instruction stream. Scheme and hardware
// knobs are deliberately NOT part of the identity (checked separately
// below): every scheme of one workload shares a stream so overhead
// comparisons stay paired.
func TestDeriveSeedInjectiveOverWorkloadIdentity(t *testing.T) {
	scales := []Scale{Quick, Full}
	procs := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	seen := make(map[uint64]string)
	for _, sc := range scales {
		for _, app := range AppNames() {
			for _, p := range procs {
				spec := Spec{App: app, Procs: p, Scheme: "Rebound", Scale: sc}
				seed := DeriveSeed(spec)
				if seed == 0 {
					t.Fatalf("%s: zero seed", spec.Key())
				}
				id := spec.Key()
				if prev, ok := seen[seed]; ok {
					t.Fatalf("seed collision between %s and %s (seed %#x)", prev, id, seed)
				}
				seen[seed] = id
			}
		}
	}
	t.Logf("checked %d distinct workload identities", len(seen))
}

// TestDeriveSeedPairsSchemesAndKnobs: the intended collisions — scheme
// and hardware-knob variants of one workload share the stream.
func TestDeriveSeedPairsSchemesAndKnobs(t *testing.T) {
	base := Spec{App: "FFT", Procs: 8, Scheme: "none", Scale: Quick}
	want := DeriveSeed(base)
	for _, scheme := range SchemeNames() {
		s := base
		s.Scheme = scheme
		if DeriveSeed(s) != want {
			t.Errorf("scheme %q breaks stream pairing", scheme)
		}
	}
	knob := base
	knob.Scheme = "Rebound"
	knob.WSIGBits = 512
	knob.DepSets = 6
	knob.LogAllWB = true
	knob.IOForce = 1000
	if DeriveSeed(knob) != want {
		t.Error("hardware knobs break stream pairing")
	}
}
