package harness

import "fmt"

// Ablations for the design choices DESIGN.md calls out. These are not
// figures from the paper; they quantify the paper's component claims:
// the WSIG size trade-off (§3.3.2 suggests 512–1024 bits), ReVive's
// first-writeback-per-interval log optimisation (§3.3.3), and the cost
// of running with fewer Dep register sets (§4.2 uses up to 4).
//
// Like the figures, each ablation is a spec-builder plus a table
// assembler: the hardware knobs (WSIGBits, DepSets, LogAllWB) are part
// of Spec, so ablation rows go through the same parallel, memoizing
// runner as everything else.

// ablationWSIGBits is the signature-size sweep of AblationWSIG.
var ablationWSIGBits = []int{128, 256, 512, 1024, 2048}

// AblationWSIGSpecs lists the WSIG-geometry sweep cells.
func AblationWSIGSpecs(sc Scale, app string) []Spec {
	var specs []Spec
	for _, bits := range ablationWSIGBits {
		specs = append(specs, Spec{App: app, Procs: sc.ProcsLarge / 2,
			Scheme: "Rebound", Scale: sc, WSIGBits: bits})
	}
	return specs
}

// AblationWSIG sweeps the write-signature size and reports the
// false-positive rate of the "are you the last writer?" test and the
// resulting interaction-set inflation.
func AblationWSIG(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: WSIG geometry on %s, %d procs", app, sc.ProcsLarge/2),
		Columns: []string{"FP rate (%)", "ICHK (%)", "ICHK exact (%)"},
	}
	for _, res := range mustRunAll(AblationWSIGSpecs(sc, app)) {
		fp := 0.0
		if res.St.WSIGTests > 0 {
			fp = float64(res.St.WSIGFalsePositives) / float64(res.St.WSIGTests) * 100
		}
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d bits", res.Spec.WSIGBits),
			Values: []float64{fp, res.St.AvgICHKFraction() * 100,
				res.St.AvgICHKExactFraction() * 100},
		})
	}
	return t
}

// AblationFirstWBSpecs lists the log-optimisation cells (the baseline
// for the overhead column rides along via withBaselines).
func AblationFirstWBSpecs(sc Scale, app string) []Spec {
	procs := sc.ProcsLarge / 2
	return withBaselines([]Spec{
		{App: app, Procs: procs, Scheme: "Rebound", Scale: sc},
		{App: app, Procs: procs, Scheme: "Rebound", Scale: sc, LogAllWB: true},
	})
}

// AblationFirstWB compares the log footprint and traffic with and
// without ReVive's first-writeback-per-interval optimisation.
func AblationFirstWB(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: first-writeback log optimisation on %s", app),
		Columns: []string{"log entries (k)", "log high water (MB)", "overhead (%)"},
	}
	results := mustRunAll(AblationFirstWBSpecs(sc, app))
	base := Baseline(Spec{App: app, Procs: sc.ProcsLarge / 2, Scheme: "Rebound", Scale: sc})
	for _, res := range results {
		if res.Spec.Scheme == "none" {
			continue
		}
		label := "first-WB only"
		if res.Spec.LogAllWB {
			label = "log every WB"
		}
		t.Rows = append(t.Rows, TableRow{Label: label, Values: []float64{
			float64(res.St.LogEntries) / 1000,
			float64(res.St.LogHighWaterBytes) / (1 << 20),
			(float64(res.Cycles)/float64(base.Cycles) - 1) * 100,
		}})
	}
	return t
}

// ablationDepSets is the register-set sweep of AblationDepSets.
var ablationDepSets = []int{2, 3, 4, 6}

// AblationDepSetsSpecs lists the Dep register-set sweep cells.
func AblationDepSetsSpecs(sc Scale, app string) []Spec {
	var specs []Spec
	for _, sets := range ablationDepSets {
		specs = append(specs, Spec{App: app, Procs: sc.ProcsLarge / 2,
			Scheme: "Rebound", Scale: sc, DepSets: sets})
	}
	return withBaselines(specs)
}

// AblationDepSets sweeps the number of Dep register sets: with too few,
// processors stall waiting for a set to recycle (§4.2).
func AblationDepSets(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: Dep register sets on %s (L=%d cycles)", app, sc.DetectLatency),
		Columns: []string{"overhead (%)", "dep stalls (kcycles)"},
	}
	for _, res := range mustRunAll(AblationDepSetsSpecs(sc, app)) {
		if res.Spec.Scheme == "none" {
			continue
		}
		base := Baseline(res.Spec)
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d sets", res.Spec.DepSets),
			Values: []float64{
				(float64(res.Cycles)/float64(base.Cycles) - 1) * 100,
				float64(res.St.DepStallCycles) / 1000,
			},
		})
	}
	return t
}
