package harness

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. These are not
// figures from the paper; they quantify the paper's component claims:
// the WSIG size trade-off (§3.3.2 suggests 512–1024 bits), ReVive's
// first-writeback-per-interval log optimisation (§3.3.3), and the cost
// of running with fewer Dep register sets (§4.2 uses up to 4).

// AblationWSIG sweeps the write-signature size and reports the
// false-positive rate of the "are you the last writer?" test and the
// resulting interaction-set inflation.
func AblationWSIG(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: WSIG geometry on %s, %d procs", app, sc.ProcsLarge/2),
		Columns: []string{"FP rate (%)", "ICHK (%)", "ICHK exact (%)"},
	}
	for _, bits := range []int{128, 256, 512, 1024, 2048} {
		m2 := machineWithWSIG(sc, app, sc.ProcsLarge/2, bits)
		m2.Run(sc.InstrPerProc * uint64(sc.ProcsLarge/2))
		m2.FinalizeStats()
		fp := 0.0
		if m2.St.WSIGTests > 0 {
			fp = float64(m2.St.WSIGFalsePositives) / float64(m2.St.WSIGTests) * 100
		}
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d bits", bits),
			Values: []float64{fp, m2.St.AvgICHKFraction() * 100,
				m2.St.AvgICHKExactFraction() * 100},
		})
	}
	return t
}

func machineWithWSIG(sc Scale, app string, procs, bits int) *machine.Machine {
	prof := workload.ByName(app)
	sch, err := SchemeFor("Rebound")
	if err != nil {
		panic(err)
	}
	cfg := machine.DefaultConfig(procs)
	cfg.CkptInterval = sc.Interval
	cfg.DetectLatency = sc.DetectLatency
	cfg.Seed = sc.Seed
	cfg.WSIGBits = bits
	return machine.New(cfg, prof, sch)
}

// AblationFirstWB compares the log footprint and traffic with and
// without ReVive's first-writeback-per-interval optimisation.
func AblationFirstWB(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: first-writeback log optimisation on %s", app),
		Columns: []string{"log entries (k)", "log high water (MB)", "overhead (%)"},
	}
	procs := sc.ProcsLarge / 2
	base := Baseline(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
	for _, always := range []bool{false, true} {
		m, err := Build(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
		if err != nil {
			panic(err)
		}
		m.Ctrl.Log().AlwaysLog = always
		end := m.Run(sc.InstrPerProc * uint64(procs))
		m.FinalizeStats()
		label := "first-WB only"
		if always {
			label = "log every WB"
		}
		t.Rows = append(t.Rows, TableRow{Label: label, Values: []float64{
			float64(m.St.LogEntries) / 1000,
			float64(m.St.LogHighWaterBytes) / (1 << 20),
			(float64(end)/float64(base.Cycles) - 1) * 100,
		}})
	}
	return t
}

// AblationDepSets sweeps the number of Dep register sets: with too few,
// processors stall waiting for a set to recycle (§4.2).
func AblationDepSets(sc Scale, app string) TableData {
	t := TableData{
		Title:   fmt.Sprintf("Ablation: Dep register sets on %s (L=%d cycles)", app, sc.DetectLatency),
		Columns: []string{"overhead (%)", "dep stalls (kcycles)"},
	}
	procs := sc.ProcsLarge / 2
	base := Baseline(Spec{App: app, Procs: procs, Scheme: "Rebound", Scale: sc})
	for _, sets := range []int{2, 3, 4, 6} {
		prof := workload.ByName(app)
		sch, err := SchemeFor("Rebound")
		if err != nil {
			panic(err)
		}
		cfg := machine.DefaultConfig(procs)
		cfg.CkptInterval = sc.Interval
		cfg.DetectLatency = sc.DetectLatency
		cfg.Seed = sc.Seed
		cfg.DepSets = sets
		m := machine.New(cfg, prof, sch)
		end := m.Run(sc.InstrPerProc * uint64(procs))
		m.FinalizeStats()
		t.Rows = append(t.Rows, TableRow{
			Label: fmt.Sprintf("%d sets", sets),
			Values: []float64{
				(float64(end)/float64(base.Cycles) - 1) * 100,
				float64(m.St.DepStallCycles) / 1000,
			},
		})
	}
	return t
}
