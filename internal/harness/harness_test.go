package harness

import (
	"strings"
	"testing"
)

func TestSchemeForAndScaleByName(t *testing.T) {
	for _, name := range []string{"none", "Global", "Global_DWB", "Rebound",
		"Rebound_NoDWB", "Rebound_Barr", "Rebound_NoDWB_Barr"} {
		if _, err := SchemeFor(name); err != nil {
			t.Fatalf("SchemeFor(%q): %v", name, err)
		}
	}
	if _, err := SchemeFor("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if sc, err := ScaleByName("quick"); err != nil || sc.Name != "quick" {
		t.Fatal("quick scale lookup failed")
	}
	if sc, err := ScaleByName("full"); err != nil || sc.ProcsLarge != 64 {
		t.Fatal("full scale lookup failed")
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestRunRejectsUnknownApp(t *testing.T) {
	if _, err := RunOne(Spec{App: "NoSuchApp", Procs: 4, Scheme: "Rebound", Scale: Quick}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Run(nil, Spec{App: "NoSuchApp", Procs: 4, Scheme: "Rebound", Scale: Quick}); err == nil {
		t.Fatal("unknown app accepted by batch Run")
	}
}

func TestOverheadPositiveAndOrdered(t *testing.T) {
	sc := Quick
	spec := func(scheme string) Spec {
		return Spec{App: "FFT", Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc}
	}
	og, _, _ := Overhead(spec("Global"))
	or, _, _ := Overhead(spec("Rebound"))
	t.Logf("FFT@%d: Global=%.1f%% Rebound=%.1f%%", sc.ProcsLarge, og*100, or*100)
	if og <= 0 {
		t.Fatal("Global overhead should be positive")
	}
	if or >= og {
		t.Fatalf("Rebound (%.3f) not cheaper than Global (%.3f)", or, og)
	}
}

func TestFig61ShapesAndFormat(t *testing.T) {
	td := Fig61(Quick)
	if len(td.Rows) != 6 { // 4 PARSEC + Apache + Average
		t.Fatalf("rows = %d, want 6", len(td.Rows))
	}
	byName := map[string]float64{}
	for _, r := range td.Rows {
		byName[r.Label] = r.Values[0]
		if r.Values[0] < 0 || r.Values[0] > 100 {
			t.Fatalf("%s ICHK %.1f%% out of range", r.Label, r.Values[0])
		}
	}
	// Communication-local codes must have small interaction sets;
	// barriered Streamcluster a large one (the Fig 6.1 shape).
	if byName["Blackscholes"] >= byName["Streamcluster"] {
		t.Fatalf("Blackscholes (%.0f%%) should be below Streamcluster (%.0f%%)",
			byName["Blackscholes"], byName["Streamcluster"])
	}
	out := td.Format()
	if !strings.Contains(out, "Apache") || !strings.Contains(out, "Average") {
		t.Fatal("Format lost rows")
	}
}

func TestFig67Ordering(t *testing.T) {
	sc := Quick
	td := Fig67(sc)
	avg := td.Rows[len(td.Rows)-1]
	global, rebound := avg.Values[0], avg.Values[1]
	t.Logf("forced-I/O interval: Global=%.0f Rebound=%.0f", global, rebound)
	if rebound <= global {
		t.Fatal("Rebound should sustain a longer checkpoint interval under forced I/O")
	}
}

func TestRecoveryLatencyMeasured(t *testing.T) {
	ms := RecoveryLatencyMS(Spec{App: "Barnes", Procs: 8, Scheme: "Rebound", Scale: Quick})
	if ms <= 0 {
		t.Fatal("recovery latency not measured")
	}
	t.Logf("recovery latency: %.3f ms", ms)
}

func TestTable61SingleApp(t *testing.T) {
	res := MustRun(Spec{App: "Water-Sp", Procs: 8, Scheme: "Rebound", Scale: Quick})
	if res.St.LogHighWaterBytes == 0 {
		t.Fatal("no log high-water recorded")
	}
	if res.St.CohMessages == 0 || res.St.DepMessages == 0 {
		t.Fatal("message accounting missing")
	}
	if res.St.MessageIncreasePct() <= 0 || res.St.MessageIncreasePct() > 50 {
		t.Fatalf("message increase %.1f%% implausible", res.St.MessageIncreasePct())
	}
}

func TestBaselineCaching(t *testing.T) {
	spec := Spec{App: "Volrend", Procs: 4, Scheme: "Rebound", Scale: Quick}
	a := Baseline(spec)
	b := Baseline(spec)
	if a.St != b.St {
		t.Fatal("baseline not cached")
	}
}
