package harness

import (
	"context"
	"strings"
	"testing"
)

func TestSchemeForAndScaleByName(t *testing.T) {
	for _, name := range []string{"none", "Global", "Global_DWB", "Rebound",
		"Rebound_NoDWB", "Rebound_Barr", "Rebound_NoDWB_Barr", "Rebound_2L"} {
		if _, err := SchemeFor(name); err != nil {
			t.Fatalf("SchemeFor(%q): %v", name, err)
		}
	}
	if _, err := SchemeFor("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if sc, err := ScaleByName("quick"); err != nil || sc.Name != "quick" {
		t.Fatal("quick scale lookup failed")
	}
	if sc, err := ScaleByName("full"); err != nil || sc.ProcsLarge != 64 {
		t.Fatal("full scale lookup failed")
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestRunRejectsUnknownApp(t *testing.T) {
	if _, err := RunOne(context.Background(), Spec{App: "NoSuchApp", Procs: 4, Scheme: "Rebound", Scale: Quick}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Run(nil, Spec{App: "NoSuchApp", Procs: 4, Scheme: "Rebound", Scale: Quick}); err == nil {
		t.Fatal("unknown app accepted by batch Run")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{App: "FFT", Procs: 8, Scheme: "Rebound", Scale: Quick}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown app", func(s *Spec) { s.App = "NoSuchApp" }, "unknown application"},
		{"unknown scheme", func(s *Spec) { s.Scheme = "bogus" }, "unknown scheme"},
		{"zero procs", func(s *Spec) { s.Procs = 0 }, "out of range"},
		{"huge procs", func(s *Spec) { s.Procs = MaxProcs + 1 }, "out of range"},
		{"zero budget", func(s *Spec) { s.Scale.InstrPerProc = 0 }, "instruction budget"},
		{"zero interval", func(s *Spec) { s.Scale.Interval = 0 }, "checkpoint interval"},
		{"negative knob", func(s *Spec) { s.WSIGBits = -1 }, "negative hardware knob"},
		{"huge wsig", func(s *Spec) { s.WSIGBits = MaxWSIGBits + 1 }, "wsigbits"},
		{"one depset", func(s *Spec) { s.DepSets = 1 }, "depsets"},
		{"huge depsets", func(s *Spec) { s.DepSets = MaxDepSets + 1 }, "depsets"},
		{"huge ioforce", func(s *Spec) { s.IOForce = MaxIOForce + 1 }, "ioforce"},
	}
	for _, tc := range cases {
		s := good
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The app/scheme errors teach the caller the valid vocabulary
	// (cmd/reboundsim and the service surface them verbatim).
	bad := good
	bad.Scheme = "bogus"
	if err := bad.Validate(); !strings.Contains(err.Error(), "Rebound_NoDWB_Barr") {
		t.Fatalf("scheme error does not list valid schemes: %v", err)
	}
}

func TestFigureSpecsRegistry(t *testing.T) {
	for _, alias := range []string{"6.2", "fig6.2", "FIG6.2", "figure6.2"} {
		specs, err := FigureSpecs(alias, Quick)
		if err != nil {
			t.Fatalf("FigureSpecs(%q): %v", alias, err)
		}
		if len(specs) != len(Fig62Specs(Quick)) {
			t.Fatalf("FigureSpecs(%q) returned %d specs, want %d",
				alias, len(specs), len(Fig62Specs(Quick)))
		}
	}
	if _, err := FigureSpecs("table6.1", Quick); err != nil {
		t.Fatalf("table6.1 alias: %v", err)
	}
	if specs, _ := FigureSpecs("all", Quick); len(specs) != len(SweepSpecs(Quick)) {
		t.Fatal("all alias does not cover the full sweep")
	}
	if _, err := FigureSpecs("6.99", Quick); err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, name := range FigureNames() {
		if _, err := FigureSpecs(name, Quick); err != nil {
			t.Fatalf("FigureNames entry %q not resolvable: %v", name, err)
		}
	}
}

func TestOverheadPositiveAndOrdered(t *testing.T) {
	sc := Quick
	spec := func(scheme string) Spec {
		return Spec{App: "FFT", Procs: sc.ProcsLarge, Scheme: scheme, Scale: sc}
	}
	og, _, _ := Overhead(spec("Global"))
	or, _, _ := Overhead(spec("Rebound"))
	t.Logf("FFT@%d: Global=%.1f%% Rebound=%.1f%%", sc.ProcsLarge, og*100, or*100)
	if og <= 0 {
		t.Fatal("Global overhead should be positive")
	}
	if or >= og {
		t.Fatalf("Rebound (%.3f) not cheaper than Global (%.3f)", or, og)
	}
}

func TestFig61ShapesAndFormat(t *testing.T) {
	td := Fig61(Quick)
	if len(td.Rows) != 6 { // 4 PARSEC + Apache + Average
		t.Fatalf("rows = %d, want 6", len(td.Rows))
	}
	byName := map[string]float64{}
	for _, r := range td.Rows {
		byName[r.Label] = r.Values[0]
		if r.Values[0] < 0 || r.Values[0] > 100 {
			t.Fatalf("%s ICHK %.1f%% out of range", r.Label, r.Values[0])
		}
	}
	// Communication-local codes must have small interaction sets;
	// barriered Streamcluster a large one (the Fig 6.1 shape).
	if byName["Blackscholes"] >= byName["Streamcluster"] {
		t.Fatalf("Blackscholes (%.0f%%) should be below Streamcluster (%.0f%%)",
			byName["Blackscholes"], byName["Streamcluster"])
	}
	out := td.Format()
	if !strings.Contains(out, "Apache") || !strings.Contains(out, "Average") {
		t.Fatal("Format lost rows")
	}
}

func TestFig67Ordering(t *testing.T) {
	sc := Quick
	td := Fig67(sc)
	avg := td.Rows[len(td.Rows)-1]
	global, rebound := avg.Values[0], avg.Values[1]
	t.Logf("forced-I/O interval: Global=%.0f Rebound=%.0f", global, rebound)
	if rebound <= global {
		t.Fatal("Rebound should sustain a longer checkpoint interval under forced I/O")
	}
}

func TestRecoveryLatencyMeasured(t *testing.T) {
	ms := RecoveryLatencyMS(Spec{App: "Barnes", Procs: 8, Scheme: "Rebound", Scale: Quick})
	if ms <= 0 {
		t.Fatal("recovery latency not measured")
	}
	t.Logf("recovery latency: %.3f ms", ms)
}

func TestTable61SingleApp(t *testing.T) {
	res := MustRun(Spec{App: "Water-Sp", Procs: 8, Scheme: "Rebound", Scale: Quick})
	if res.St.LogHighWaterBytes == 0 {
		t.Fatal("no log high-water recorded")
	}
	if res.St.CohMessages == 0 || res.St.DepMessages == 0 {
		t.Fatal("message accounting missing")
	}
	if res.St.MessageIncreasePct() <= 0 || res.St.MessageIncreasePct() > 50 {
		t.Fatalf("message increase %.1f%% implausible", res.St.MessageIncreasePct())
	}
}

func TestBaselineCaching(t *testing.T) {
	spec := Spec{App: "Volrend", Procs: 4, Scheme: "Rebound", Scale: Quick}
	a := Baseline(spec)
	b := Baseline(spec)
	if a.St != b.St {
		t.Fatal("baseline not cached")
	}
}
