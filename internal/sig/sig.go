// Package sig implements the Write Signature (WSIG) of Rebound §3.3.2:
// a 512–1024-bit Bloom filter that encodes the line addresses a
// processor has written (or read exclusively) in the current checkpoint
// interval. Membership tests never produce false negatives; false
// positives merely record non-existing dependences (they can enlarge
// the interaction set, measured in Table 6.1 of the paper).
//
// The package also offers an Exact signature (a set) used to quantify
// the false-positive impact, and a Paired signature that runs both and
// counts disagreements.
package sig

import "math/bits"

// Signature answers "might this processor have written line addr in the
// current interval?".
type Signature interface {
	// Insert records a written line address.
	Insert(addr uint64)
	// Test reports whether addr may have been inserted since the last
	// Clear. Implementations must never return false for an address
	// that was inserted (no false negatives).
	Test(addr uint64) bool
	// Clear empties the signature (done at the start of every
	// checkpoint interval).
	Clear()
	// CopyFrom overwrites the receiver with the contents of src, which
	// must be the same concrete type.
	CopyFrom(src Signature)
}

// Bloom is the hardware-faithful WSIG: k hash functions over a bit
// register, as in Notary's PBX hashing referenced by the paper.
type Bloom struct {
	bitsArr []uint64
	nbits   uint
	k       int
}

// NewBloom returns a Bloom signature with nbits bits (rounded up to a
// multiple of 64; the paper uses 512–1024) and k hash functions.
func NewBloom(nbits, k int) *Bloom {
	if nbits < 64 {
		nbits = 64
	}
	if k < 1 {
		k = 1
	}
	words := (nbits + 63) / 64
	return &Bloom{bitsArr: make([]uint64, words), nbits: uint(words * 64), k: k}
}

// mix implements a splitmix64-style finalizer; distinct seeds give the
// independent hash functions.
func mix(x, seed uint64) uint64 {
	x += 0x9e3779b97f4a7c15 * (seed + 1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Insert records addr.
func (b *Bloom) Insert(addr uint64) {
	for i := 0; i < b.k; i++ {
		bit := mix(addr, uint64(i)) % uint64(b.nbits)
		b.bitsArr[bit/64] |= 1 << (bit % 64)
	}
}

// Test reports possible membership.
func (b *Bloom) Test(addr uint64) bool {
	for i := 0; i < b.k; i++ {
		bit := mix(addr, uint64(i)) % uint64(b.nbits)
		if b.bitsArr[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the filter.
func (b *Bloom) Clear() {
	for i := range b.bitsArr {
		b.bitsArr[i] = 0
	}
}

// CopyFrom copies another Bloom's bits.
func (b *Bloom) CopyFrom(src Signature) {
	s := src.(*Bloom)
	copy(b.bitsArr, s.bitsArr)
	b.nbits, b.k = s.nbits, s.k
}

// PopCount returns the number of set bits (occupancy), useful for
// estimating the false-positive rate.
func (b *Bloom) PopCount() int {
	n := 0
	for _, w := range b.bitsArr {
		n += bits.OnesCount64(w)
	}
	return n
}

// Exact is an idealised signature with no false positives, used as the
// measurement baseline for Table 6.1 row 1. It is an open-addressing
// hash set over a reusable power-of-two slot array: steady-state
// Insert/Test/Clear are allocation-free (a Go map would re-bucket and
// allocate on the insert path, which runs once per store).
type Exact struct {
	slots   []uint64 // 0 marks an empty slot
	n       int      // occupied slots
	hasZero bool     // address 0, which cannot use the 0-is-empty code
}

const exactMinSlots = 64

// NewExact returns an empty exact signature.
func NewExact() *Exact { return &Exact{slots: make([]uint64, exactMinSlots)} }

// Insert records addr.
func (e *Exact) Insert(addr uint64) {
	if addr == 0 {
		e.hasZero = true
		return
	}
	if 4*(e.n+1) > 3*len(e.slots) { // keep load factor <= 3/4
		e.grow()
	}
	mask := uint64(len(e.slots) - 1)
	for i := mix(addr, 0) & mask; ; i = (i + 1) & mask {
		switch e.slots[i] {
		case 0:
			e.slots[i] = addr
			e.n++
			return
		case addr:
			return
		}
	}
}

func (e *Exact) grow() {
	old := e.slots
	e.slots = make([]uint64, 2*len(old))
	e.n = 0
	for _, a := range old {
		if a != 0 {
			e.Insert(a)
		}
	}
}

// Test reports exact membership.
func (e *Exact) Test(addr uint64) bool {
	if addr == 0 {
		return e.hasZero
	}
	mask := uint64(len(e.slots) - 1)
	for i := mix(addr, 0) & mask; ; i = (i + 1) & mask {
		switch e.slots[i] {
		case 0:
			return false
		case addr:
			return true
		}
	}
}

// Clear empties the signature, keeping the slot array for reuse.
func (e *Exact) Clear() {
	clear(e.slots)
	e.n = 0
	e.hasZero = false
}

// CopyFrom copies another Exact's contents.
func (e *Exact) CopyFrom(src Signature) {
	s := src.(*Exact)
	if cap(e.slots) < len(s.slots) {
		e.slots = make([]uint64, len(s.slots))
	} else {
		e.slots = e.slots[:len(s.slots)]
	}
	copy(e.slots, s.slots)
	e.n = s.n
	e.hasZero = s.hasZero
}

// Len returns the number of distinct inserted addresses.
func (e *Exact) Len() int {
	if e.hasZero {
		return e.n + 1
	}
	return e.n
}

// Paired runs a Bloom filter alongside an exact set and counts the
// tests on which they disagree (Bloom false positives).
type Paired struct {
	Bloom *Bloom
	exact *Exact

	// Tests counts membership queries; FalsePositives counts queries
	// where the Bloom filter said yes but the exact set said no.
	Tests          uint64
	FalsePositives uint64
}

// NewPaired returns a paired signature with the given Bloom geometry.
func NewPaired(nbits, k int) *Paired {
	return &Paired{Bloom: NewBloom(nbits, k), exact: NewExact()}
}

// Insert records addr in both members.
func (p *Paired) Insert(addr uint64) {
	p.Bloom.Insert(addr)
	p.exact.Insert(addr)
}

// Test returns the Bloom answer while accounting disagreements.
func (p *Paired) Test(addr uint64) bool {
	got := p.Bloom.Test(addr)
	p.Tests++
	if got && !p.exact.Test(addr) {
		p.FalsePositives++
	}
	return got
}

// TestExact returns the idealised answer without accounting.
func (p *Paired) TestExact(addr uint64) bool { return p.exact.Test(addr) }

// Clear empties both members (accounting counters are preserved; they
// are cumulative over a run).
func (p *Paired) Clear() {
	p.Bloom.Clear()
	p.exact.Clear()
}

// CopyFrom copies another Paired's filter contents.
func (p *Paired) CopyFrom(src Signature) {
	s := src.(*Paired)
	p.Bloom.CopyFrom(s.Bloom)
	p.exact.CopyFrom(s.exact)
}

// PairedSnapshot is a saved Paired image: both members' contents plus
// the cumulative accounting counters (which Clear preserves and a
// machine snapshot therefore must capture). Save reuses its storage.
type PairedSnapshot struct {
	Bloom          []uint64
	Slots          []uint64
	N              int
	HasZero        bool
	Tests          uint64
	FalsePositives uint64
}

// Save copies the signature state into s.
func (p *Paired) Save(s *PairedSnapshot) {
	s.Bloom = append(s.Bloom[:0], p.Bloom.bitsArr...)
	s.Slots = append(s.Slots[:0], p.exact.slots...)
	s.N, s.HasZero = p.exact.n, p.exact.hasZero
	s.Tests, s.FalsePositives = p.Tests, p.FalsePositives
}

// Load restores the signature state from s. The Bloom geometry must
// match the capture; the exact set's slot array adopts the captured
// length (capacity differences between machines are invisible to
// membership semantics).
func (p *Paired) Load(s *PairedSnapshot) {
	if len(s.Bloom) != len(p.Bloom.bitsArr) {
		panic("sig: snapshot Bloom geometry mismatch")
	}
	copy(p.Bloom.bitsArr, s.Bloom)
	if cap(p.exact.slots) < len(s.Slots) {
		p.exact.slots = make([]uint64, len(s.Slots))
	} else {
		p.exact.slots = p.exact.slots[:len(s.Slots)]
	}
	copy(p.exact.slots, s.Slots)
	p.exact.n, p.exact.hasZero = s.N, s.HasZero
	p.Tests, p.FalsePositives = s.Tests, s.FalsePositives
}

// ResetAll clears contents AND the cumulative counters, returning the
// signature to its just-constructed state (Machine.Reset).
func (p *Paired) ResetAll() {
	p.Clear()
	p.Tests, p.FalsePositives = 0, 0
}

var (
	_ Signature = (*Bloom)(nil)
	_ Signature = (*Exact)(nil)
	_ Signature = (*Paired)(nil)
)
