package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBloom(1024, 4)
		ins := make([]uint64, 0, n)
		for i := 0; i < int(n); i++ {
			a := rng.Uint64()
			b.Insert(a)
			ins = append(ins, a)
		}
		for _, a := range ins {
			if !b.Test(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomClear(t *testing.T) {
	b := NewBloom(512, 3)
	b.Insert(42)
	if !b.Test(42) {
		t.Fatal("inserted element missing")
	}
	b.Clear()
	if b.Test(42) {
		t.Fatal("Clear did not empty filter")
	}
	if b.PopCount() != 0 {
		t.Fatal("PopCount != 0 after clear")
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	// With 1024 bits, 4 hashes and ~100 inserted lines, the classical
	// FP rate is about (1-e^{-400/1024})^4 ≈ 1%. Allow generous slack.
	b := NewBloom(1024, 4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		b.Insert(rng.Uint64())
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if b.Test(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.08 {
		t.Fatalf("false positive rate %.3f too high for 1024-bit / 100-entry filter", rate)
	}
}

func TestBloomMinimumGeometry(t *testing.T) {
	b := NewBloom(1, 0) // degenerate parameters get clamped
	b.Insert(9)
	if !b.Test(9) {
		t.Fatal("clamped filter lost an element")
	}
}

func TestExact(t *testing.T) {
	e := NewExact()
	e.Insert(5)
	e.Insert(5)
	if e.Len() != 1 || !e.Test(5) || e.Test(6) {
		t.Fatal("exact signature misbehaved")
	}
	e.Clear()
	if e.Len() != 0 || e.Test(5) {
		t.Fatal("Clear failed")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewBloom(512, 4)
	a.Insert(123)
	b := NewBloom(512, 4)
	b.CopyFrom(a)
	if !b.Test(123) {
		t.Fatal("Bloom CopyFrom lost content")
	}
	a.Clear()
	if !b.Test(123) {
		t.Fatal("CopyFrom aliased storage")
	}

	e1, e2 := NewExact(), NewExact()
	e1.Insert(9)
	e2.CopyFrom(e1)
	e1.Clear()
	if !e2.Test(9) {
		t.Fatal("Exact CopyFrom aliased storage")
	}
}

func TestPairedCountsFalsePositives(t *testing.T) {
	p := NewPaired(64, 2) // deliberately tiny filter to force FPs
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		p.Insert(rng.Uint64())
	}
	for i := 0; i < 5000; i++ {
		a := rng.Uint64()
		got := p.Test(a)
		if p.TestExact(a) && !got {
			t.Fatal("paired signature produced a false negative")
		}
	}
	if p.FalsePositives == 0 {
		t.Fatal("tiny saturated filter should have produced false positives")
	}
	if p.Tests != 5000 {
		t.Fatalf("Tests = %d, want 5000", p.Tests)
	}
}

func TestPairedClearPreservesCounters(t *testing.T) {
	p := NewPaired(64, 2)
	p.Insert(1)
	p.Test(1)
	before := p.Tests
	p.Clear()
	if p.Tests != before {
		t.Fatal("Clear must not reset cumulative counters")
	}
	if p.Test(1) && p.TestExact(1) {
		t.Fatal("Clear did not empty contents")
	}
}
