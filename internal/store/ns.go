package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// tempSweepAge is how old an atomic-write temp file must be before
// Names treats it as the orphan of a killed process and removes it;
// younger ones are live writes in another goroutine.
const tempSweepAge = time.Minute

// Namespace is a directory of atomically-written JSON records under a
// Store, for subsystems whose records are not harness Results — the
// campaign engine persists per-trial records and running aggregates
// through one namespace per campaign key. Records share the store's
// durability discipline (temp file + rename, so a killed process never
// leaves a half-written record) but not its LRU or snapshot
// verification: a namespace record's self-consistency is the caller's
// contract (campaign records embed their trial seed and index).
//
// Content addressing is the caller's: the namespace path segments
// typically embed a content key (e.g. "campaigns", sha256-of-spec).
type Namespace struct {
	dir string
}

// Namespace returns the namespace rooted at dir/<parts...>. The
// directory is created lazily by the first PutJSON, so probing a
// namespace that was never written (a GET for an unknown campaign)
// leaves no trace on disk. Each part must be a plain path segment.
func (s *Store) Namespace(parts ...string) (*Namespace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("store: namespace needs at least one path segment")
	}
	for _, p := range parts {
		if err := validSegment(p); err != nil {
			return nil, err
		}
	}
	return &Namespace{dir: filepath.Join(append([]string{s.dir}, parts...)...)}, nil
}

// Dir returns the namespace's directory.
func (n *Namespace) Dir() string { return n.dir }

// validSegment rejects path segments that would escape the namespace
// directory or collide with the atomic-write temp files.
func validSegment(name string) error {
	if name == "" || strings.HasPrefix(name, ".") ||
		strings.ContainsAny(name, `/\`) || name != filepath.Base(name) {
		return fmt.Errorf("store: invalid namespace segment %q", name)
	}
	return nil
}

func (n *Namespace) path(name string) string {
	return filepath.Join(n.dir, name+".json")
}

// PutJSON atomically writes v as the record <name>.json, creating the
// namespace directory on first use. Putting an existing name overwrites
// it via rename, so concurrent readers always see a fully-written file.
func (n *Namespace) PutJSON(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return n.PutRaw(name, data)
}

// PutRaw atomically writes data — which must be the json.Marshal bytes
// of the record, exactly what PutJSON would have produced — as the
// record <name>.json. It is the write half of the store proxy tier: a
// remote worker marshals a record once and ships the bytes, and the
// coordinator-side write is byte-identical to a local PutJSON of the
// same value, which is what keeps resumed campaigns indifferent to
// where each trial ran. Data that is not valid JSON is rejected.
func (n *Namespace) PutRaw(name string, data []byte) error {
	if err := validSegment(name); err != nil {
		return err
	}
	if !json.Valid(data) {
		return fmt.Errorf("store: namespace record %s: not valid JSON", name)
	}
	if err := os.MkdirAll(n.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(n.dir, "."+name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), n.path(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetJSON decodes the record stored under name into v. ok is false when
// no such record exists; a record that exists but fails to decode is
// returned as an error.
func (n *Namespace) GetJSON(name string, v any) (ok bool, err error) {
	data, ok, err := n.GetRaw(name)
	if !ok || err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("store: namespace record %s: %w", name, err)
	}
	return true, nil
}

// GetRaw returns the stored bytes of the record under name, exactly as
// written. ok is false when no such record exists. It is the read half
// of the store proxy tier (GET /v1/store/...): records ship to remote
// workers without a decode/re-marshal round trip.
func (n *Namespace) GetRaw(name string) (data []byte, ok bool, err error) {
	if err := validSegment(name); err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(n.path(name))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return data, true, nil
}

// Names lists the record names present in the namespace (without the
// .json suffix), sorted. A namespace never written lists empty.
// Leftover atomic-write temp files (a Put interrupted by a kill) are
// swept here, mirroring Open's top-level sweep.
func (n *Namespace) Names() ([]string, error) {
	entries, err := os.ReadDir(n.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp") {
			// Sweep only temp files old enough to be orphans of a killed
			// process: a fresh one belongs to an in-flight Put on another
			// goroutine, and removing it would break that Put's rename.
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > tempSweepAge {
				os.Remove(filepath.Join(n.dir, name))
			}
			continue
		}
		if strings.HasSuffix(name, ".json") {
			out = append(out, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Each decodes every record in the namespace into a fresh value from
// newV and hands (name, value) to fn, in ascending name order — the
// deterministic enumeration explore resume is built on (a restarted
// exploration lists its evaluated cells in one directory read instead
// of probing candidate keys one by one). Records that fail to decode
// are skipped, not fatal: a namespace shared with older or newer
// writers may hold records of another shape, and a corrupt entry
// should cost its own re-computation, never the whole enumeration.
// skipped reports how many were passed over. Records put concurrently
// with an Each may or may not be visited (the name list is read once,
// and each record is read atomically thanks to the rename discipline);
// fn must not write to the namespace.
func (n *Namespace) Each(newV func() any, fn func(name string, v any)) (skipped int, err error) {
	names, err := n.Names()
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		v := newV()
		ok, err := n.GetJSON(name, v)
		if !ok || err != nil {
			// Vanished since the listing (!ok) or undecodable: skip.
			skipped++
			continue
		}
		fn(name, v)
	}
	return skipped, nil
}
