package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

func testSpec() harness.Spec {
	return harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick}
}

// freshResult simulates spec on a private runner, so every call is an
// independent execution (no shared memoization with the store under
// test).
func freshResult(t *testing.T, spec harness.Spec) harness.Result {
	t.Helper()
	res, err := harness.NewRunner(1).RunOne(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	orig := freshResult(t, spec)
	if _, err := s.PutResult(orig); err != nil {
		t.Fatal(err)
	}

	// Re-open: a fresh process must serve the record from disk alone.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d records, want 1", s2.Len())
	}
	rec, ok, err := s2.GetSpec(spec)
	if err != nil || !ok {
		t.Fatalf("GetSpec after reopen: ok=%v err=%v", ok, err)
	}

	// The decoded record must be byte-identical to an independent fresh
	// simulation: same snapshot serialization of every counter and
	// record, same cycle count, same power report.
	fresh := freshResult(t, spec)
	if got, want := rec.Stats.Snapshot(), fresh.St.Snapshot(); got != want {
		t.Fatalf("decoded stats diverge from fresh run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if rec.Cycles != fresh.Cycles {
		t.Fatalf("cycles %d != fresh %d", rec.Cycles, fresh.Cycles)
	}
	if rec.Power != fresh.Power {
		t.Fatalf("power report diverged: %+v vs %+v", rec.Power, fresh.Power)
	}
	if rec.Spec.Key() != spec.Key() {
		t.Fatalf("spec key diverged: %s vs %s", rec.Spec.Key(), spec.Key())
	}
	if res := rec.Result(); res.St.Snapshot() != fresh.St.Snapshot() {
		t.Fatal("Record.Result lost data")
	}
}

func TestGetMissAndCounters(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetSpec(testSpec()); ok || err != nil {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	if _, err := s.PutResult(freshResult(t, testSpec())); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetSpec(testSpec()); !ok {
		t.Fatal("stored record not found")
	}
	hits, misses := s.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !s.Has(KeyOf(testSpec())) {
		t.Fatal("Has false for stored key")
	}
}

func TestLRUEvictionStillServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1) // room for exactly one decoded record
	if err != nil {
		t.Fatal(err)
	}
	a := testSpec()
	b := testSpec()
	b.Procs = 8
	for _, spec := range []harness.Spec{a, b} {
		if _, err := s.PutResult(freshResult(t, spec)); err != nil {
			t.Fatal(err)
		}
	}
	if s.lru.len() != 1 {
		t.Fatalf("lru holds %d records, want 1", s.lru.len())
	}
	// a was evicted from memory; it must still come back from disk.
	rec, ok, err := s.GetSpec(a)
	if err != nil || !ok {
		t.Fatalf("evicted record not served from disk: ok=%v err=%v", ok, err)
	}
	if rec.Spec.Procs != a.Procs {
		t.Fatal("wrong record returned")
	}
}

func TestCorruptRecordIsAnErrorNotAHit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.PutResult(freshResult(t, testSpec()))
	if err != nil {
		t.Fatal(err)
	}

	// Tamper with a counter: decode must fail snapshot verification.
	path := filepath.Join(dir, rec.Key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["cycles"] = 0
	m["stats"].(map[string]any)["L1Hits"] = 12345.0
	tampered, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(rec.Key); err == nil || ok {
		t.Fatalf("tampered record served: ok=%v err=%v", ok, err)
	}

	// Truncated JSON is also an error, not a miss.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s3.Get(rec.Key); err == nil || ok {
		t.Fatalf("truncated record served: ok=%v err=%v", ok, err)
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "short.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("foreign files indexed: Len=%d", s.Len())
	}
	// README.txt is untouched: Open only sweeps its own temp files.
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	// A crash between CreateTemp and Rename leaves a ".<key>.tmp*"
	// file; the next Open must remove it.
	dir := t.TempDir()
	orphan := filepath.Join(dir, "."+strings.Repeat("ab", 32)+".tmp123456")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived Open: %v", err)
	}
}

func TestKeyOfIsURLSafe(t *testing.T) {
	key := KeyOf(testSpec())
	if len(key) != 64 {
		t.Fatalf("key length %d, want 64", len(key))
	}
	if strings.ContainsAny(key, "/|= ") {
		t.Fatalf("key %q not URL-safe", key)
	}
	other := testSpec()
	other.Scheme = "Global"
	if KeyOf(other) == key {
		t.Fatal("distinct specs share a content address")
	}
}
