package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNamespaceRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.Namespace("campaigns", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}

	// A probed-but-never-written namespace leaves no directory behind.
	if _, err := os.Stat(ns.Dir()); !os.IsNotExist(err) {
		t.Fatalf("namespace dir exists before any Put: %v", err)
	}
	var out map[string]int
	if ok, err := ns.GetJSON("trial-000001", &out); ok || err != nil {
		t.Fatalf("GetJSON on empty namespace: ok=%v err=%v", ok, err)
	}
	if names, err := ns.Names(); err != nil || len(names) != 0 {
		t.Fatalf("Names on empty namespace: %v %v", names, err)
	}

	in := map[string]int{"a": 1, "b": 2}
	if err := ns.PutJSON("trial-000001", in); err != nil {
		t.Fatal(err)
	}
	if err := ns.PutJSON("report", map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	if ok, err := ns.GetJSON("trial-000001", &out); !ok || err != nil {
		t.Fatalf("GetJSON: ok=%v err=%v", ok, err)
	}
	if out["a"] != 1 || out["b"] != 2 {
		t.Fatalf("round trip lost data: %v", out)
	}
	names, err := ns.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "report" || names[1] != "trial-000001" {
		t.Fatalf("Names = %v, want sorted [report trial-000001]", names)
	}

	// Namespace records must not pollute the result-record index.
	if s.Len() != 0 {
		t.Fatalf("store indexed %d namespace records as results", s.Len())
	}
}

func TestNamespaceRejectsEscapingSegments(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range [][]string{
		{}, {""}, {".."}, {".hidden"}, {"a/b"}, {`a\b`}, {"campaigns", "../../etc"},
	} {
		if _, err := s.Namespace(parts...); err == nil {
			t.Errorf("Namespace(%q) accepted", parts)
		}
	}
	ns, err := s.Namespace("ok")
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.PutJSON("../escape", 1); err == nil {
		t.Error("PutJSON accepted an escaping name")
	}
	var v int
	if _, err := ns.GetJSON(".hidden", &v); err == nil {
		t.Error("GetJSON accepted a dot name")
	}
}

func TestNamespaceSweepsStaleTempFiles(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.Namespace("campaigns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.PutJSON("report", 1); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(ns.Dir(), ".report.tmp12345")
	if err := os.WriteFile(stale, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Only OLD temp files are orphans; a fresh one could be an in-flight
	// Put on another goroutine. Age the file past the sweep threshold.
	old := time.Now().Add(-2 * tempSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(ns.Dir(), ".report.tmp99999")
	if err := os.WriteFile(fresh, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := ns.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "report" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp file (a possible in-flight write) was swept")
	}
}
