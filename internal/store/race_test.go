package store

import (
	"context"
	"sync"
	"testing"

	"repro/internal/harness"
)

// TestStoreEvictionRaceStress hammers a tiny-LRU store with concurrent
// Get/Put over more keys than the cache holds, so decoded records are
// constantly evicted while other goroutines hold their pointers and
// re-read their paths from disk. Run under -race (the CI test job does)
// this pins the documented eviction-window invariants: eviction never
// invalidates a held *Record, concurrent re-decodes of one key agree,
// and concurrent Put-overwrites are never observed as torn records
// (Get verifies every decode against its embedded snapshot).
func TestStoreEvictionRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	// A handful of distinct cells; tiny scale keeps this fast.
	sc := harness.Quick
	sc.InstrPerProc = 5_000
	runner := harness.NewRunner(0)
	var specs []harness.Spec
	for _, app := range []string{"FFT", "Barnes", "Uniform", "Apache", "Volrend", "Radix"} {
		specs = append(specs, harness.Spec{App: app, Procs: 2, Scheme: "Rebound", Scale: sc})
	}
	results := make([]harness.Result, len(specs))
	for i, spec := range specs {
		res, err := runner.RunOne(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}

	s, err := Open(t.TempDir(), 2) // LRU far smaller than the key set
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if _, err := s.PutResult(res); err != nil {
			t.Fatal(err)
		}
	}

	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res := results[(w+i)%len(results)]
				if w%3 == 0 {
					// Overwriting putter: replaces files via atomic
					// rename while readers are mid-Get.
					if _, err := s.PutResult(res); err != nil {
						errs <- err
						return
					}
					continue
				}
				rec, ok, err := s.Get(KeyOf(res.Spec))
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- errMissing(res.Spec)
					return
				}
				// Hold the record across more churn and then use it:
				// eviction must not invalidate it.
				if rec.Cycles != res.Cycles || rec.Snapshot != res.St.Snapshot() {
					errs <- errTorn(res.Spec)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMissing harness.Spec

func (e errMissing) Error() string { return "record vanished for " + harness.Spec(e).Key() }

type errTorn harness.Spec

func (e errTorn) Error() string { return "torn/mismatched record for " + harness.Spec(e).Key() }
