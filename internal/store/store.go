// Package store persists simulation results on disk, content-addressed
// by the canonical Spec key, so identical requests across process
// restarts are served without re-simulating. It is the durable layer
// under internal/service: the Runner memoizes within one process, the
// Store across processes.
//
// Layout: one JSON record per result, named <sha256(Spec.Key())>.json
// inside the store directory. Writes are atomic (temp file + rename),
// so a crashed or killed daemon never leaves a half-written record a
// later Get could decode. Reads go through a bounded in-memory LRU of
// decoded records; the full key set is indexed at Open so Has/Len never
// touch the disk.
//
// A record embeds the stats.Snapshot() string taken at save time, and
// Get re-derives the snapshot from the decoded counters and compares:
// a record that does not reproduce its own snapshot byte-for-byte
// (truncated file, incompatible stats schema, manual edit) is reported
// as an error, never silently served. This is the same byte-identity
// bar the determinism suite holds parallel execution to.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/stats"
)

// Record is the on-disk form of one harness.Result.
type Record struct {
	// Key is the content address: hex sha256 of SpecKey. It is the
	// public identifier the service exposes (URL-safe, fixed length).
	Key string `json:"key"`
	// SpecKey is the canonical harness key the address was derived
	// from, kept readable for debugging and audits.
	SpecKey string       `json:"spec_key"`
	Spec    harness.Spec `json:"spec"`
	Cycles  uint64       `json:"cycles"`
	Stats   *stats.Stats `json:"stats"`
	Power   power.Report `json:"power"`
	// Snapshot is Stats.Snapshot() at save time; Get verifies the
	// decoded Stats reproduce it byte-for-byte.
	Snapshot string `json:"snapshot"`
}

// KeyOf returns the content address of a spec: the hex sha256 of its
// canonical key.
func KeyOf(spec harness.Spec) string {
	sum := sha256.Sum256([]byte(spec.Key()))
	return hex.EncodeToString(sum[:])
}

// FromResult converts a harness.Result into its storable record.
func FromResult(res harness.Result) *Record {
	return &Record{
		Key:      KeyOf(res.Spec),
		SpecKey:  res.Spec.Key(),
		Spec:     res.Spec,
		Cycles:   res.Cycles,
		Stats:    res.St,
		Power:    res.Power,
		Snapshot: res.St.Snapshot(),
	}
}

// Result converts the record back into a harness.Result.
func (r *Record) Result() harness.Result {
	return harness.Result{Spec: r.Spec, St: r.Stats, Cycles: r.Cycles, Power: r.Power}
}

// verify checks the record's internal consistency: address matches the
// spec, counters reproduce the stored snapshot.
func (r *Record) verify() error {
	if want := KeyOf(r.Spec); r.Key != want {
		return fmt.Errorf("store: record key %s does not match its spec (want %s)", r.Key, want)
	}
	if r.Stats == nil {
		return fmt.Errorf("store: record %s has no stats", r.Key)
	}
	if got := r.Stats.Snapshot(); got != r.Snapshot {
		return fmt.Errorf("store: record %s failed snapshot verification (stored %d bytes, decoded %d)",
			r.Key, len(r.Snapshot), len(got))
	}
	return nil
}

// DefaultLRUSize bounds the in-memory record cache of Open.
const DefaultLRUSize = 1024

// Store is a content-addressed, on-disk result store with an in-memory
// LRU of decoded records. It is safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	known map[string]bool // keys present on disk
	lru   *lruCache       // decoded records, bounded

	hits, misses uint64 // Get outcomes, for service metrics
}

// Open creates (if needed) and indexes the store rooted at dir,
// keeping at most lruSize decoded records in memory (<= 0 selects
// DefaultLRUSize). Existing records are indexed by filename only;
// they are decoded and verified lazily on first Get.
func Open(dir string, lruSize int) (*Store, error) {
	if lruSize <= 0 {
		lruSize = DefaultLRUSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, known: make(map[string]bool), lru: newLRU(lruSize)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		// A Put interrupted between CreateTemp and Rename (crash,
		// SIGKILL) leaves a ".<key>.tmp*" file behind; no running Put
		// can still hold one at Open time, so sweep them here rather
		// than leak disk across restarts.
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if len(key) == sha256.Size*2 {
			s.known[key] = true
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len reports how many records the store holds on disk.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.known)
}

// Counters reports the Get hit/miss totals since Open.
func (s *Store) Counters() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Has reports whether a record for key is on disk, without decoding it.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.known[key]
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get returns the record stored under key. ok is false when the store
// has no such record; a record that exists but fails to decode or
// verify is returned as an error.
//
// Concurrency: the lock is dropped for the disk read, which opens two
// windows, both benign by construction. (1) The LRU may evict the key
// while a reader holds its path or its decoded *Record: eviction never
// deletes the file and records are immutable, so the reader's view
// stays valid. (2) Two readers may decode the same record concurrently
// and both lru.put it: duplicated work, same bytes (records are pure
// functions of their spec, and Put replaces files via atomic rename, so
// a concurrent overwrite yields an identical, fully-written file).
// These invariants are exercised under -race by
// TestStoreEvictionRaceStress.
func (s *Store) Get(key string) (rec *Record, ok bool, err error) {
	rec, _, ok, err = s.get(key)
	return rec, ok, err
}

// GetRaw returns the canonical stored bytes of the record under key —
// exactly what Put wrote to disk — without re-marshalling. The bytes
// are shared with the in-memory cache and must be treated as
// immutable. This is the zero-copy path underneath the service's
// GET /v1/runs/{key}.
func (s *Store) GetRaw(key string) (data []byte, ok bool, err error) {
	_, data, ok, err = s.get(key)
	return data, ok, err
}

func (s *Store) get(key string) (rec *Record, raw []byte, ok bool, err error) {
	s.mu.Lock()
	if rec, raw, ok := s.lru.get(key); ok {
		s.hits++
		s.mu.Unlock()
		return rec, raw, true, nil
	}
	if !s.known[key] {
		s.misses++
		s.mu.Unlock()
		return nil, nil, false, nil
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		// Deleted behind our back; drop it from the index.
		s.mu.Lock()
		delete(s.known, key)
		s.misses++
		s.mu.Unlock()
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	rec = new(Record)
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, nil, false, fmt.Errorf("store: record %s: %w", key, err)
	}
	if err := rec.verify(); err != nil {
		return nil, nil, false, err
	}
	s.mu.Lock()
	s.hits++
	s.lru.put(key, rec, data)
	s.mu.Unlock()
	return rec, data, true, nil
}

// GetSpec is Get keyed by a spec.
func (s *Store) GetSpec(spec harness.Spec) (*Record, bool, error) {
	return s.Get(KeyOf(spec))
}

// Put writes the record to disk atomically and caches it in memory.
// Putting an existing key overwrites it (records are pure functions of
// their spec, so the bytes are identical anyway).
func (s *Store) Put(rec *Record) error {
	if err := rec.verify(); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+rec.Key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(rec.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.known[rec.Key] = true
	s.lru.put(rec.Key, rec, data)
	s.mu.Unlock()
	return nil
}

// PutResult stores a harness.Result and returns its record.
func (s *Store) PutResult(res harness.Result) (*Record, error) {
	rec := FromResult(res)
	if err := s.Put(rec); err != nil {
		return nil, err
	}
	return rec, nil
}
