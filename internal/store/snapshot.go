package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Persistent machine snapshots: the campaign engine warms a machine
// once per spec and fans trials out from the snapshot (machine.Fork).
// Persisting the serialized snapshot means a restarted daemon skips
// even that single warmup — cold start to first trial is one store
// read.
//
// Snapshot records live in the "snapshots" namespace, content-addressed
// by the caller's snapshot key (which must embed everything the warm
// state depends on: the full spec key including the scheme, plus the
// codec's format version — see campaign.warmKey). Like top-level run
// records they are self-verifying: the record stores the sha256 of its
// payload and Get refuses a record that does not reproduce it, so a
// torn write or manual edit is surfaced as an error, never silently
// restored into a machine.

// SnapshotsNamespace is the namespace snapshot records live in —
// exported so the store proxy's clients can address snapshot records
// by path.
const SnapshotsNamespace = "snapshots"

// SnapshotRecord is the on-disk form of one serialized machine
// snapshot.
type SnapshotRecord struct {
	// Key is the content address: hex sha256 of SnapKey.
	Key string `json:"key"`
	// SnapKey is the caller's snapshot key, kept readable for audits.
	SnapKey string `json:"snap_key"`
	// Sum is the hex sha256 of Machine; Get verifies it.
	Sum string `json:"sum"`
	// Machine is the machine.EncodeSnapshot payload, embedded verbatim
	// (it is already JSON).
	Machine json.RawMessage `json:"machine"`
}

// SnapshotKeyOf returns the content address of a snapshot key.
func SnapshotKeyOf(snapKey string) string {
	sum := sha256.Sum256([]byte(snapKey))
	return hex.EncodeToString(sum[:])
}

// NewSnapshotRecord builds the self-verifying record for a serialized
// machine snapshot: the cluster's remote store client uses it to ship
// snapshots to the coordinator in exactly the form PutSnapshot writes.
func NewSnapshotRecord(snapKey string, payload []byte) *SnapshotRecord {
	sum := sha256.Sum256(payload)
	return &SnapshotRecord{
		Key:     SnapshotKeyOf(snapKey),
		SnapKey: snapKey,
		Sum:     hex.EncodeToString(sum[:]),
		Machine: json.RawMessage(payload),
	}
}

// Verify checks the record's internal consistency: its address derives
// from its snapshot key and the payload reproduces the stored hash. It
// is the shared integrity bar for every path a snapshot record travels
// — local disk, the store proxy, a remote worker's read.
func (r *SnapshotRecord) Verify() error {
	if want := SnapshotKeyOf(r.SnapKey); r.Key != want {
		return fmt.Errorf("store: snapshot record %s does not match its key", r.Key)
	}
	sum := sha256.Sum256(r.Machine)
	if r.Sum != hex.EncodeToString(sum[:]) {
		return fmt.Errorf("store: snapshot record %s failed payload verification", r.Key)
	}
	return nil
}

// SnapshotNamespace returns the store's snapshot namespace, shared by
// the local Put/GetSnapshot pair and the service's store proxy.
func (s *Store) SnapshotNamespace() (*Namespace, error) {
	return s.Namespace(SnapshotsNamespace)
}

// PutSnapshot atomically persists a serialized machine snapshot under
// its snapshot key.
func (s *Store) PutSnapshot(snapKey string, payload []byte) error {
	rec := NewSnapshotRecord(snapKey, payload)
	ns, err := s.SnapshotNamespace()
	if err != nil {
		return err
	}
	return ns.PutJSON(rec.Key, rec)
}

// GetSnapshot loads the serialized machine snapshot stored under
// snapKey. ok is false when none exists; a record that exists but is
// corrupt (fails to decode, addressed under a different key, or does
// not reproduce its own payload hash) is returned as an error, never
// as a payload.
func (s *Store) GetSnapshot(snapKey string) (payload []byte, ok bool, err error) {
	ns, err := s.SnapshotNamespace()
	if err != nil {
		return nil, false, err
	}
	key := SnapshotKeyOf(snapKey)
	var rec SnapshotRecord
	ok, err = ns.GetJSON(key, &rec)
	if err != nil || !ok {
		return nil, false, err
	}
	if rec.SnapKey != snapKey {
		return nil, false, fmt.Errorf("store: snapshot record %s does not match its key", key)
	}
	if err := rec.Verify(); err != nil {
		return nil, false, err
	}
	return rec.Machine, true, nil
}
