package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestNamespaceRaceStress hammers one Namespace and the snapshot tier
// from many goroutines — concurrent PutJSON/GetJSON/PutRaw/GetRaw of
// overlapping names, concurrent PutSnapshot/GetSnapshot of one snapshot
// key — under -race. The invariants: a Get never observes a torn or
// foreign record (atomic rename), and a corrupt record surfaces as an
// error or miss, never as a payload. These are the assumptions the
// distributed tier leans on when N workers push records through one
// coordinator store.
func TestNamespaceRaceStress(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := st.Namespace("stress", "job")
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}

	const (
		goroutines = 8
		iters      = 200
		names      = 5
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("rec-%d", i%names)
				switch (g + i) % 4 {
				case 0:
					if err := ns.PutJSON(name, &rec{Name: name, N: i}); err != nil {
						t.Errorf("PutJSON: %v", err)
						return
					}
				case 1:
					var r rec
					ok, err := ns.GetJSON(name, &r)
					if err != nil {
						t.Errorf("GetJSON: %v", err)
						return
					}
					if ok && r.Name != name {
						t.Errorf("GetJSON(%s) returned foreign record %q", name, r.Name)
						return
					}
				case 2:
					data := []byte(fmt.Sprintf(`{"name":%q,"n":%d}`, name, i))
					if err := ns.PutRaw(name, data); err != nil {
						t.Errorf("PutRaw: %v", err)
						return
					}
				default:
					if _, _, err := ns.GetRaw(name); err != nil {
						t.Errorf("GetRaw: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// Snapshot tier: one snapshot key written and read concurrently.
	payload := []byte(`{"fmt":1,"state":"warm"}`)
	const snapKey = "machine-snapshot|stress"
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					if err := st.PutSnapshot(snapKey, payload); err != nil {
						t.Errorf("PutSnapshot: %v", err)
						return
					}
					continue
				}
				got, ok, err := st.GetSnapshot(snapKey)
				if err != nil {
					t.Errorf("GetSnapshot: %v", err)
					return
				}
				if ok && string(got) != string(payload) {
					t.Errorf("GetSnapshot returned wrong payload %q", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCorruptRecordsNeverServed corrupts stored records in place and
// asserts every read path reports the damage (error or miss) instead
// of returning the bytes as a valid record — the "corrupt reads as
// miss" half of the idempotent-retry design: a re-run simply rewrites
// the byte-identical record over the damage.
func TestCorruptRecordsNeverServed(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot record: flip payload bytes after a valid write.
	const snapKey = "machine-snapshot|corrupt"
	if err := st.PutSnapshot(snapKey, []byte(`{"engine":"state"}`)); err != nil {
		t.Fatal(err)
	}
	ns, err := st.SnapshotNamespace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ns.Dir(), SnapshotKeyOf(snapKey)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the embedded machine payload, keeping the JSON valid.
	corrupt := []byte(string(data[:len(data)-2]) + " }")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if payload, ok, err := st.GetSnapshot(snapKey); err == nil && ok {
		t.Fatalf("corrupt snapshot served as valid payload %q", payload)
	}

	// Namespace record: truncated JSON must error, never decode.
	job, err := st.Namespace("campaigns", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.PutJSON("trial-000001", map[string]int{"index": 1}); err != nil {
		t.Fatal(err)
	}
	tpath := filepath.Join(job.Dir(), "trial-000001.json")
	if err := os.WriteFile(tpath, []byte(`{"index":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	if ok, err := job.GetJSON("trial-000001", &v); err == nil && ok {
		t.Fatalf("torn namespace record decoded as %v", v)
	}
	// PutRaw must refuse to write invalid JSON in the first place.
	if err := job.PutRaw("trial-000002", []byte(`{"index":`)); err == nil {
		t.Fatal("PutRaw accepted invalid JSON")
	}
}
