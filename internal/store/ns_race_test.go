package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestNamespaceRaceStress hammers one Namespace and the snapshot tier
// from many goroutines — concurrent PutJSON/GetJSON/PutRaw/GetRaw of
// overlapping names, concurrent PutSnapshot/GetSnapshot of one snapshot
// key — under -race. The invariants: a Get never observes a torn or
// foreign record (atomic rename), and a corrupt record surfaces as an
// error or miss, never as a payload. These are the assumptions the
// distributed tier leans on when N workers push records through one
// coordinator store.
func TestNamespaceRaceStress(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := st.Namespace("stress", "job")
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}

	const (
		goroutines = 8
		iters      = 200
		names      = 5
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("rec-%d", i%names)
				switch (g + i) % 4 {
				case 0:
					if err := ns.PutJSON(name, &rec{Name: name, N: i}); err != nil {
						t.Errorf("PutJSON: %v", err)
						return
					}
				case 1:
					var r rec
					ok, err := ns.GetJSON(name, &r)
					if err != nil {
						t.Errorf("GetJSON: %v", err)
						return
					}
					if ok && r.Name != name {
						t.Errorf("GetJSON(%s) returned foreign record %q", name, r.Name)
						return
					}
				case 2:
					data := []byte(fmt.Sprintf(`{"name":%q,"n":%d}`, name, i))
					if err := ns.PutRaw(name, data); err != nil {
						t.Errorf("PutRaw: %v", err)
						return
					}
				default:
					if _, _, err := ns.GetRaw(name); err != nil {
						t.Errorf("GetRaw: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// Snapshot tier: one snapshot key written and read concurrently.
	payload := []byte(`{"fmt":1,"state":"warm"}`)
	const snapKey = "machine-snapshot|stress"
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					if err := st.PutSnapshot(snapKey, payload); err != nil {
						t.Errorf("PutSnapshot: %v", err)
						return
					}
					continue
				}
				got, ok, err := st.GetSnapshot(snapKey)
				if err != nil {
					t.Errorf("GetSnapshot: %v", err)
					return
				}
				if ok && string(got) != string(payload) {
					t.Errorf("GetSnapshot returned wrong payload %q", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNamespaceEachSkipsCorrupt: Each enumerates in ascending name
// order, decodes every healthy record, and skips (counts, never
// returns) entries that do not decode — the contract explore resume
// uses to rebuild its evaluated-cell set from a directory that may
// hold records written by other versions or torn by a crash.
func TestNamespaceEachSkipsCorrupt(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := st.Namespace("explore", "cells")
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		N int `json:"n"`
	}
	for i := 0; i < 5; i++ {
		if err := ns.PutJSON(fmt.Sprintf("cell-%d", i), &rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one record in place (torn write survives a crash as junk).
	if err := os.WriteFile(filepath.Join(ns.Dir(), "cell-2.json"), []byte(`{"n":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var names []string
	var vals []int
	skipped, err := ns.Each(
		func() any { return new(rec) },
		func(name string, v any) {
			names = append(names, name)
			vals = append(vals, v.(*rec).N)
		})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	wantNames := []string{"cell-0", "cell-1", "cell-3", "cell-4"}
	wantVals := []int{0, 1, 3, 4}
	if fmt.Sprint(names) != fmt.Sprint(wantNames) || fmt.Sprint(vals) != fmt.Sprint(wantVals) {
		t.Fatalf("Each visited %v=%v, want %v=%v", names, vals, wantNames, wantVals)
	}
	// An unwritten namespace enumerates empty without creating anything.
	empty, err := st.Namespace("explore", "nothing")
	if err != nil {
		t.Fatal(err)
	}
	if skipped, err := empty.Each(func() any { return new(rec) }, func(string, any) {
		t.Error("visited a record in an empty namespace")
	}); err != nil || skipped != 0 {
		t.Fatalf("empty namespace: skipped=%d err=%v", skipped, err)
	}
}

// TestNamespaceEachRaceStress runs Each concurrently with writers
// overwriting the same names under -race: every visited record must be
// whole and self-consistent (atomic rename), and the enumeration must
// never error — late-breaking names may or may not appear, torn
// nothing.
func TestNamespaceEachRaceStress(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := st.Namespace("explore", "race")
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	const (
		writers = 4
		readers = 4
		iters   = 150
		names   = 6
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("cell-%d", (g+i)%names)
				if err := ns.PutJSON(name, &rec{Name: name, N: i}); err != nil {
					t.Errorf("PutJSON: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				prev := ""
				_, err := ns.Each(
					func() any { return new(rec) },
					func(name string, v any) {
						if name <= prev {
							t.Errorf("Each out of order: %q after %q", name, prev)
						}
						prev = name
						if got := v.(*rec); got.Name != name {
							t.Errorf("Each(%s) visited foreign record %q", name, got.Name)
						}
					})
				if err != nil {
					t.Errorf("Each: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCorruptRecordsNeverServed corrupts stored records in place and
// asserts every read path reports the damage (error or miss) instead
// of returning the bytes as a valid record — the "corrupt reads as
// miss" half of the idempotent-retry design: a re-run simply rewrites
// the byte-identical record over the damage.
func TestCorruptRecordsNeverServed(t *testing.T) {
	st, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot record: flip payload bytes after a valid write.
	const snapKey = "machine-snapshot|corrupt"
	if err := st.PutSnapshot(snapKey, []byte(`{"engine":"state"}`)); err != nil {
		t.Fatal(err)
	}
	ns, err := st.SnapshotNamespace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ns.Dir(), SnapshotKeyOf(snapKey)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the embedded machine payload, keeping the JSON valid.
	corrupt := []byte(string(data[:len(data)-2]) + " }")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if payload, ok, err := st.GetSnapshot(snapKey); err == nil && ok {
		t.Fatalf("corrupt snapshot served as valid payload %q", payload)
	}

	// Namespace record: truncated JSON must error, never decode.
	job, err := st.Namespace("campaigns", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if err := job.PutJSON("trial-000001", map[string]int{"index": 1}); err != nil {
		t.Fatal(err)
	}
	tpath := filepath.Join(job.Dir(), "trial-000001.json")
	if err := os.WriteFile(tpath, []byte(`{"index":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v map[string]int
	if ok, err := job.GetJSON("trial-000001", &v); err == nil && ok {
		t.Fatalf("torn namespace record decoded as %v", v)
	}
	// PutRaw must refuse to write invalid JSON in the first place.
	if err := job.PutRaw("trial-000002", []byte(`{"index":`)); err == nil {
		t.Fatal("PutRaw accepted invalid JSON")
	}
}
