package store

import "container/list"

// lruCache is a plain bounded LRU of decoded records. It is not
// self-locking: Store.mu guards every call.
//
// Eviction safety: evicting a key only drops the cache's reference to
// the decoded *Record — the on-disk file is never deleted, and Records
// are immutable after Put, so a concurrent reader that obtained the
// pointer (or is mid-read of the record's path on disk) keeps a valid
// record. See TestStoreEvictionRaceStress.
type lruCache struct {
	cap   int
	order *list.List               // front = most recent
	items map[string]*list.Element // key -> element holding *lruEntry
}

type lruEntry struct {
	key string
	rec *Record
	// raw is the record's canonical on-disk JSON, kept alongside the
	// decoded form so the service can answer a GET with the stored
	// bytes directly (zero re-marshal, zero copy). Immutable.
	raw []byte
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*Record, []byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.rec, e.raw, true
}

func (c *lruCache) put(key string, rec *Record, raw []byte) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		e.rec = rec
		e.raw = raw
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, rec: rec, raw: raw})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
