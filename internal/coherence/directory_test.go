package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// fakeNode is a minimal L2-controller stand-in.
type fakeNode struct {
	id    int
	lines map[uint64]*fakeLine

	producers    map[int]int // producer -> times recorded
	consumerFrom map[int]int // consumer -> times recorded
	// wsig is the set of lines this node claims to have written; a
	// LastWriterCheck outside it returns NO_WR.
	wsig map[uint64]bool
}

type fakeLine struct {
	data  mem.Word
	dirty bool
	epoch uint64
}

func newFakeNode(id int) *fakeNode {
	return &fakeNode{
		id:           id,
		lines:        map[uint64]*fakeLine{},
		producers:    map[int]int{},
		consumerFrom: map[int]int{},
		wsig:         map[uint64]bool{},
	}
}

func (f *fakeNode) Recall(line uint64, invalidate bool) (mem.Word, bool, uint64, bool) {
	l, ok := f.lines[line]
	if !ok {
		return mem.Word{}, false, 0, false
	}
	data, dirty, epoch := l.data, l.dirty, l.epoch
	if invalidate {
		delete(f.lines, line)
	} else {
		l.dirty = false
	}
	return data, dirty, epoch, true
}

func (f *fakeNode) InvalidateShared(line uint64) { delete(f.lines, line) }

func (f *fakeNode) LastWriterCheck(line uint64, consumer int) (bool, bool) {
	if !f.wsig[line] {
		return false, false
	}
	f.consumerFrom[consumer]++
	return true, true
}

func (f *fakeNode) AddProducer(producer int, exact bool) { f.producers[producer]++ }

func rig(n int) (*Directory, []*fakeNode, *stats.Stats, *mem.Controller) {
	eng := sim.NewEngine()
	st := stats.New(n)
	m := mem.NewMemory()
	ctrl := mem.NewController(eng, st, m, mem.NewDRAM(eng, st, 2), mem.NewLog(st, 4))
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = newFakeNode(i)
		nodes[i] = fakes[i]
	}
	return New(topo.New(n), st, ctrl, nodes), fakes, st, ctrl
}

func TestFirstReadIsRDX(t *testing.T) {
	d, _, _, ctrl := rig(4)
	ctrl.Memory().Write(10, mem.Word{Val: 7})
	r := d.Read(1, 10)
	if r.State != cache.Exclusive {
		t.Fatalf("first read state = %v, want E", r.State)
	}
	if r.Data.Val != 7 {
		t.Fatalf("data = %d, want 7", r.Data.Val)
	}
	if d.LWID(10) != 1 {
		t.Fatalf("RDX must set LW-ID; got %d", d.LWID(10))
	}
	if r.Latency < 150 {
		t.Fatalf("memory read latency %d suspiciously low", r.Latency)
	}
}

func TestReadFromDirtyOwnerRecordsDependence(t *testing.T) {
	d, fakes, st, ctrl := rig(4)
	// Proc 0 writes line 20.
	d.Write(0, 20)
	fakes[0].lines[20] = &fakeLine{data: mem.Word{Val: 99}, dirty: true, epoch: 5}
	fakes[0].wsig[20] = true

	r := d.Read(2, 20)
	if r.State != cache.Shared || r.Data.Val != 99 {
		t.Fatalf("read from owner: state=%v val=%d", r.State, r.Data.Val)
	}
	// Owner downgraded, dirty copy written back and logged with its epoch.
	if fakes[0].lines[20].dirty {
		t.Fatal("owner not downgraded to clean")
	}
	if ctrl.Memory().Read(20).Val != 99 {
		t.Fatal("M->S downgrade must write back to memory")
	}
	es := ctrl.Log().EntriesFor(0)
	if len(es) != 1 || es[0].Epoch != 5 {
		t.Fatalf("downgrade writeback not logged with owner epoch: %+v", es)
	}
	// Dependence: reader's MyProducers[0], owner's MyConsumers[2].
	if fakes[2].producers[0] != 1 {
		t.Fatal("reader did not record producer")
	}
	if fakes[0].consumerFrom[2] != 1 {
		t.Fatal("owner did not record consumer")
	}
	// Piggybacked on the recall: no extra dep messages.
	if st.DepMessages != 0 {
		t.Fatalf("dep messages = %d, want 0 (piggybacked)", st.DepMessages)
	}
	// Second reader: data now comes from memory, LW-ID proc queried
	// with separate messages.
	d.Read(3, 20)
	if st.DepMessages != 2 {
		t.Fatalf("dep messages = %d, want 2 for third-party query", st.DepMessages)
	}
	if fakes[3].producers[0] != 1 || fakes[0].consumerFrom[3] != 1 {
		t.Fatal("second reader dependence not recorded")
	}
}

func TestNoWRClearsStaleLWID(t *testing.T) {
	d, fakes, _, _ := rig(4)
	d.Write(0, 30)
	// Proc 0's WSIG does NOT contain line 30 (e.g. it checkpointed and
	// cleared its registers): the check returns NO_WR.
	fakes[0].lines[30] = &fakeLine{data: mem.Word{Val: 1}}
	r := d.Read(1, 30)
	if d.LWID(30) != noProc {
		t.Fatalf("NO_WR should clear LW-ID, got %d", d.LWID(30))
	}
	// The reader's MyProducers was already (optimistically) updated: a
	// tolerated superset (§3.3.2).
	if fakes[1].producers[0] != 1 {
		t.Fatal("optimistic MyProducers update missing")
	}
	_ = r
}

func TestWriteInvalidatesSharersAndRecordsWW(t *testing.T) {
	d, fakes, _, ctrl := rig(4)
	ctrl.Memory().Write(40, mem.Word{Val: 3})
	d.Read(0, 40) // proc 0: E (RDX)
	fakes[0].lines[40] = &fakeLine{data: mem.Word{Val: 3}}
	fakes[0].wsig[40] = true
	d.Read(1, 40) // downgrade: both sharers
	fakes[1].lines[40] = &fakeLine{data: mem.Word{Val: 3}}

	w := d.Write(2, 40)
	if w.Data.Val != 3 {
		t.Fatalf("write got data %d, want 3", w.Data.Val)
	}
	if _, ok := fakes[0].lines[40]; ok {
		t.Fatal("sharer 0 not invalidated")
	}
	if _, ok := fakes[1].lines[40]; ok {
		t.Fatal("sharer 1 not invalidated")
	}
	if d.LWID(40) != 2 {
		t.Fatalf("LW-ID = %d, want 2", d.LWID(40))
	}
	// WW dependence on the old last writer (0).
	if fakes[2].producers[0] != 1 || fakes[0].consumerFrom[2] != 1 {
		t.Fatal("WW dependence not recorded")
	}
}

func TestOwnershipMigratesCacheToCacheWithoutMemoryWrite(t *testing.T) {
	d, fakes, _, ctrl := rig(4)
	d.Write(0, 50)
	fakes[0].lines[50] = &fakeLine{data: mem.Word{Val: 77}, dirty: true, epoch: 1}
	fakes[0].wsig[50] = true
	w := d.Write(1, 50)
	if w.Data.Val != 77 {
		t.Fatalf("migrated data = %d, want 77", w.Data.Val)
	}
	if ctrl.Memory().Read(50).Val != 0 {
		t.Fatal("M->M transfer must not write memory")
	}
	if ctrl.Log().Len() != 0 {
		t.Fatal("M->M transfer must not log")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	d, fakes, st, ctrl := rig(4)
	ctrl.Memory().Write(60, mem.Word{Val: 5})
	d.Read(0, 60)
	fakes[0].lines[60] = &fakeLine{data: mem.Word{Val: 5}}
	d.Read(1, 60)
	fakes[1].lines[60] = &fakeLine{data: mem.Word{Val: 5}}
	memReadsBefore := st.MemReads
	w := d.Write(0, 60) // upgrade: no data fetch
	if st.MemReads != memReadsBefore {
		t.Fatal("upgrade should not fetch from memory")
	}
	if w.Data.Val != 5 {
		t.Fatal("upgrade lost data value")
	}
	if _, ok := fakes[1].lines[60]; ok {
		t.Fatal("other sharer not invalidated on upgrade")
	}
}

func TestStaleOwnerFallsBackToMemory(t *testing.T) {
	d, _, _, ctrl := rig(4)
	ctrl.Memory().Write(70, mem.Word{Val: 9})
	d.Read(0, 70) // proc 0 becomes E owner
	// Proc 0 silently evicted the clean line (fake holds nothing).
	r := d.Read(1, 70)
	if r.Data.Val != 9 {
		t.Fatalf("fallback read = %d, want 9", r.Data.Val)
	}
	// After the stale owner is dropped, proc 1 is the only holder: E.
	if r.State != cache.Exclusive {
		t.Fatalf("state = %v, want E", r.State)
	}
}

func TestWritebackEvictClearsOwnershipAndLogs(t *testing.T) {
	d, _, st, ctrl := rig(4)
	d.Write(0, 80)
	done := d.WritebackEvict(0, 80, mem.Word{Val: 4}, 2)
	if ctrl.Memory().Read(80).Val != 4 {
		t.Fatal("eviction did not write memory")
	}
	if done == 0 {
		t.Fatal("eviction should occupy a channel")
	}
	if st.L2WritebacksDemand != 1 {
		t.Fatal("demand writeback not counted")
	}
	// Line uncached now, but LW-ID survives displacement (§3.3.1).
	if d.LWID(80) != 0 {
		t.Fatal("LW-ID must survive displacement")
	}
	r := d.Read(1, 80)
	if r.Data.Val != 4 {
		t.Fatal("read after eviction should come from memory")
	}
}

func TestWritebackRetainKeepsOwnership(t *testing.T) {
	d, fakes, st, ctrl := rig(4)
	d.Write(0, 90)
	fakes[0].lines[90] = &fakeLine{data: mem.Word{Val: 8}, dirty: false}
	fakes[0].wsig[90] = true
	d.WritebackRetain(0, 90, mem.Word{Val: 8}, 0, true)
	if ctrl.Memory().Read(90).Val != 8 {
		t.Fatal("retain writeback did not write memory")
	}
	if st.L2WritebacksCkpt != 1 || st.L2WritebacksBg != 1 {
		t.Fatal("checkpoint writeback not counted")
	}
	// Owner unchanged: a later read still forwards to proc 0.
	r := d.Read(1, 90)
	if r.Data.Val != 8 || r.State != cache.Shared {
		t.Fatal("owner lost after retain writeback")
	}
}

func TestDetachProc(t *testing.T) {
	d, fakes, _, ctrl := rig(4)
	ctrl.Memory().Write(100, mem.Word{Val: 1})
	d.Write(0, 100)
	d.Read(1, 101)
	fakes[1].lines[101] = &fakeLine{data: mem.Word{Val: 0}}
	d.DetachProc(0)
	if d.LWID(100) != noProc {
		t.Fatal("DetachProc must clear LW-IDs pointing at the proc")
	}
	// Line 100 now uncached: a fresh read gets it from memory.
	r := d.Read(2, 100)
	if r.Data.Val != 1 {
		t.Fatal("detached line should be served from memory")
	}
	// Proc 1's entries untouched.
	if d.LWID(101) != 1 {
		t.Fatal("DetachProc touched other procs' LW-IDs")
	}
}

func TestSameProcReadAfterStaleOwnership(t *testing.T) {
	d, _, _, ctrl := rig(2)
	ctrl.Memory().Write(110, mem.Word{Val: 6})
	d.Read(0, 110) // E at proc 0
	// Proc 0 silently evicts, then re-reads: served from memory, stays E.
	r := d.Read(0, 110)
	if r.Data.Val != 6 || r.State != cache.Exclusive {
		t.Fatalf("re-read after silent evict: %v %d", r.State, r.Data.Val)
	}
}

func TestCheckInvariants(t *testing.T) {
	d, fakes, _, _ := rig(2)
	d.Write(0, 200)
	fakes[0].lines[200] = &fakeLine{data: mem.Word{}, dirty: true}
	d.CheckInvariants(func(pid int, line uint64) (bool, bool) {
		l, ok := fakes[pid].lines[line]
		if !ok {
			return false, false
		}
		return true, l.dirty
	})
}
