// Event-plane coherence: the directory protocol of directory.go split
// into request/reply message legs routed between engine shards by the
// machine's mem.Sharding. The functional directory executes a whole
// transaction synchronously inside the requesting processor's event and
// charges the network latency as a number; the event plane makes that
// latency real — every leg is a cross-shard message delivered after the
// topology delay it models (clamped up to the executor's lookahead
// window), so one machine's coherence traffic can run on
// sim.ShardedEngine with shards advancing in parallel.
//
// The protocol state machine is the same protocol, home-atomic: every
// directory mutation for a line happens on the line's home shard
// (mem.Sharding.AddrShard), which is also where its memory words, undo
// log keys and DRAM channels live. A walk (one transaction) is:
//
//	REQ → [PROBE → PROBE-ACK] → resolve → {INVAL*/LWCHECK} + GRANT →
//	{INVAL-ACK*/LW-ACK} + INSTALL-ACK → release
//
// with resolve mirroring Directory.Read/Write decision-for-decision and
// stat-for-stat (charged to the home shard's stats partition). Lines
// serialize walks through a per-line busy FIFO; replies that cannot be
// answered synchronously anymore (a dirty writeback racing a probe)
// park the walk until the writeback lands.
//
// Determinism across shard counts is by key uniqueness: every leg
// carries a key derived from its walk's per-machine-unique base and its
// leg index, processor step events carry even keys, and no key-0 events
// exist in event-plane mode — so same-cycle delivery order is fully
// determined by (cycle, key) and never by engine sequence numbers,
// which do diverge across shard counts. Delays are computed from the
// same topology inputs regardless of which shard a leg crosses, so the
// trajectory is invariant under the shard count and under
// Parallel on/off (the sharded executor's own guarantee).
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// EPNode is the per-tile surface the event plane talks to — the
// asynchronous counterpart of Node. Probe and grant run on the owning
// processor's shard; they may freely touch that processor's caches and
// must not touch directory or memory state (that is the home shard's).
type EPNode interface {
	// EPProbe asks for the node's copy of line, invalidating it (write
	// walks) or downgrading it to Shared (read walks). ok is false if
	// the node no longer holds the line.
	EPProbe(line uint64, invalidate bool) (data mem.Word, dirty bool, epoch uint64, ok bool)
	// InvalidateShared removes a clean shared copy (L1 included).
	InvalidateShared(line uint64)
	// LastWriterCheck is Node.LastWriterCheck: the WSIG membership
	// query of §3.3.2, answered on the last writer's shard.
	LastWriterCheck(line uint64, consumer int) (ok, exact bool)
	// AddProducer is Node.AddProducer, applied on the requester's shard.
	AddProducer(producer int, exact bool)
	// EPGrantRead installs a granted line (Shared, or Exclusive on an
	// RDX) and resumes the stalled processor. It returns the L2 victim
	// the install displaced, if any.
	EPGrantRead(line uint64, data mem.Word, exclusive bool) EPEvict
	// EPGrantWrite installs a granted line as Modified (data is the
	// pre-write content, for read-modify-write) and resumes the
	// stalled processor. It returns the displaced victim, if any.
	EPGrantWrite(line uint64, data mem.Word) EPEvict
}

// EPEvict describes the L2 victim a grant displaced. The plane turns it
// into a WBEVICT (dirty victim: logged writeback at the victim's home)
// or DROPSHARED (clean shared victim) message; a clean-exclusive victim
// is evicted silently, as in the functional protocol.
type EPEvict struct {
	Line  uint64
	Data  mem.Word
	Epoch uint64
	Kind  uint8
}

// EPEvict kinds.
const (
	EvictNone   uint8 = iota // no victim (or silent clean-exclusive)
	EvictDirty               // dirty victim: writeback + undo log
	EvictShared              // clean shared victim: drop the sharer bit
)

// Leg indices of a walk's messages; each (walk base, leg) pair is a
// unique event key. INVAL legs embed the sharer index, so the leg space
// must cover 32 + 2*NProcs.
const (
	legREQ = iota
	legProbe
	legProbeAck
	legGrant
	legInstallAck
	legLWCheck
	legLWAck
	legAddProd
	legWBEvict
	legWBAck
	legDropShared

	legInval    = 32 // + 2*sharer
	legInvalAck = 33 // + 2*sharer
)

// legKey builds the ordering key of one leg. Keys are odd: processor
// step events use even keys (pid<<1), so the two planes never collide.
func legKey(base uint64, leg int) uint64 {
	return (base<<16|uint64(leg))<<1 | 1
}

// epWalk is one in-flight transaction.
type epWalk struct {
	pid   int
	line  uint64
	id    int32 // interned at the home shard on arrival
	write bool
	base  uint64 // per-machine-unique walk number (epWalkCtr*NProcs+pid)
	owner int    // probed owner, noProc when none
	piggy bool   // write walks: LW-ID rides the recall/inval path
}

// epLine is the home-shard serialization state of one line: walks run
// one at a time (busy from REQ arrival to last ack), later arrivals
// queue in arrival order, and a walk that must wait for an in-flight
// writeback parks with refs == 0.
type epLine struct {
	busy   bool
	refs   int
	parked *epWalk
	queue  []*epWalk
}

// EventPlane runs directory transactions as message legs over an
// externally supplied cross-shard send (the machine binds it to
// sim.ShardedEngine.SendKeyed). It shares the Directory's per-line
// arrays — which are only ever touched on a line's home shard — and
// charges stats and memory traffic to per-shard partitions.
type EventPlane struct {
	d      *Directory
	nodes  []EPNode
	window sim.Cycle
	sts    []*stats.Stats    // per engine shard
	ctrls  []*mem.Controller // per engine shard (shared memory, split DRAM/log)
	send   func(src, dst int, delay sim.Cycle, key uint64, fn func())

	nsh      int
	perShard int // processors per engine shard

	// lines[homeShard] holds the busy/queue state of that shard's
	// in-flight lines; entries exist only while a walk is active.
	lines []map[int32]*epLine
	// wbp[pid] counts in-flight dirty writebacks per line address:
	// incremented on the evictor's shard when the WBEVICT is sent,
	// decremented there when the home's WBACK returns. A probe that
	// misses reads it to tell "silent clean eviction" from "dirty copy
	// in flight to memory" (the latter parks the walk).
	wbp []map[uint64]int
}

// NewEventPlane wires an event plane over the directory's state. sts
// and ctrls are the per-engine-shard stats and memory-controller
// partitions; send delivers fn on shard dst after delay (>= the
// window) with the given ordering key.
func NewEventPlane(d *Directory, nodes []EPNode, window sim.Cycle, sts []*stats.Stats, ctrls []*mem.Controller, send func(src, dst int, delay sim.Cycle, key uint64, fn func())) *EventPlane {
	nsh := len(sts)
	if nsh == 0 || len(ctrls) != nsh {
		panic("coherence: event plane needs one stats and controller partition per shard")
	}
	if d.sh.N() != nsh {
		panic(fmt.Sprintf("coherence: event plane has %d shards, directory sharding has %d", nsh, d.sh.N()))
	}
	if len(nodes)%nsh != 0 {
		panic(fmt.Sprintf("coherence: %d processors do not split evenly over %d shards", len(nodes), nsh))
	}
	if legInval+2*len(nodes) >= 1<<16 {
		panic("coherence: too many processors for the leg-key space")
	}
	if window < 1 {
		panic("coherence: event plane window must be >= 1 cycle")
	}
	ep := &EventPlane{
		d: d, nodes: nodes, window: window,
		sts: sts, ctrls: ctrls, send: send,
		nsh: nsh, perShard: len(nodes) / nsh,
		lines: make([]map[int32]*epLine, nsh),
		wbp:   make([]map[uint64]int, len(nodes)),
	}
	for i := range ep.lines {
		ep.lines[i] = make(map[int32]*epLine)
	}
	for i := range ep.wbp {
		ep.wbp[i] = make(map[uint64]int)
	}
	return ep
}

// fl clamps a modeled delay up to the lookahead window. Every leg uses
// it, including legs that happen to stay on one shard, so the delay a
// leg experiences never depends on the shard count.
func (ep *EventPlane) fl(d sim.Cycle) sim.Cycle {
	if d < ep.window {
		return ep.window
	}
	return d
}

// procShard returns the engine shard processor pid's events run on.
func (ep *EventPlane) procShard(pid int) int { return pid / ep.perShard }

// homeShard returns the engine shard that owns line's directory entry,
// memory words and DRAM channels.
func (ep *EventPlane) homeShard(line uint64) int { return ep.d.sh.AddrShard(line) }

// lineState returns (creating if needed) the serialization state of id.
func (ep *EventPlane) lineState(home int, id int32) *epLine {
	l := ep.lines[home][id]
	if l == nil {
		l = &epLine{}
		ep.lines[home][id] = l
	}
	return l
}

// Idle reports whether no walk or writeback is in flight anywhere. The
// machine combines it with per-shard AllTagged for snapshot quiescence.
func (ep *EventPlane) Idle() bool {
	for _, m := range ep.lines {
		if len(m) > 0 {
			return false
		}
	}
	for _, m := range ep.wbp {
		if len(m) > 0 {
			return false
		}
	}
	return true
}

// Reset drops all in-flight walk state (Machine.Reset; the engines are
// reset separately, which drops the legs themselves).
func (ep *EventPlane) Reset() {
	for i := range ep.lines {
		clear(ep.lines[i])
	}
	for i := range ep.wbp {
		clear(ep.wbp[i])
	}
}

// Issue starts a walk for pid on line. It must run on pid's shard (the
// stalled processor's own event); base must be unique per walk across
// the machine's lifetime.
func (ep *EventPlane) Issue(pid int, line uint64, write bool, base uint64) {
	w := &epWalk{pid: pid, line: line, write: write, base: base, owner: noProc}
	home := ep.homeShard(line)
	delay := ep.fl(ep.d.topo.Latency(pid, ep.d.topo.Home(line)))
	ep.send(ep.procShard(pid), home, delay, legKey(base, legREQ), func() { ep.arrive(w) })
}

// arrive handles a walk's REQ at the home shard.
func (ep *EventPlane) arrive(w *epWalk) {
	home := ep.homeShard(w.line)
	ep.sts[home].CohMessages++ // request
	w.id = ep.d.entryID(w.line)
	ep.d.mark(w.id) // every walk mutates the entry
	l := ep.lineState(home, w.id)
	if l.busy {
		l.queue = append(l.queue, w)
		return
	}
	l.busy = true
	ep.start(w)
}

// start runs a walk's first home-shard phase: probe the owner if there
// is a foreign one, otherwise resolve immediately.
func (ep *EventPlane) start(w *epWalk) {
	d := ep.d
	home := ep.homeShard(w.line)
	homeTile := d.topo.Home(w.line)
	owner := int(d.getOwner(w.id))
	if w.write {
		// The dependence query rides for free when the LW-ID processor
		// is the recalled owner or an invalidated sharer (as in Write).
		lw := d.getLWID(w.id)
		w.piggy = lw != noProc && (int(lw) == owner || testBit(d.sharerWords(w.id), int(lw)))
	}
	if owner != noProc && owner != w.pid {
		w.owner = owner
		ep.send(home, ep.procShard(owner), ep.fl(d.topo.Latency(homeTile, owner)),
			legKey(w.base, legProbe), func() { ep.probe(w) })
		return
	}
	ep.resolve(w, mem.Word{}, false)
}

// probe runs on the owner's shard: recall (write) or downgrade (read)
// the owner's copy, and report back together with whether the owner has
// a dirty writeback of this line still in flight to memory.
func (ep *EventPlane) probe(w *epWalk) {
	data, dirty, epoch, ok := ep.nodes[w.owner].EPProbe(w.line, w.write)
	wbPending := ep.wbp[w.owner][w.line] > 0
	home := ep.homeShard(w.line)
	homeTile := ep.d.topo.Home(w.line)
	delay := ep.fl(ep.d.L2HitCycles + ep.d.topo.Latency(w.owner, homeTile))
	ep.send(ep.procShard(w.owner), home, delay, legKey(w.base, legProbeAck), func() {
		ep.probeResolved(w, data, dirty, epoch, ok, wbPending)
	})
}

// probeResolved handles the PROBE-ACK at the home shard.
func (ep *EventPlane) probeResolved(w *epWalk, data mem.Word, dirty bool, epoch uint64, ok, wbPending bool) {
	d := ep.d
	home := ep.homeShard(w.line)
	if ok {
		ep.sts[home].CohMessages += 3 // fwd, data, ack
		if !w.write {
			// Owner supplies the line and downgrades to Shared; a dirty
			// copy also reaches memory (M→S), logged by the controller —
			// off the walk's critical path, as in Read.
			if dirty {
				ep.ctrls[home].WritebackID(w.owner, epoch, w.id, w.line, data)
			}
			setBit(d.sharerWords(w.id), w.owner)
		}
		d.setOwner(w.id, noProc)
		ep.resolve(w, data, true)
		return
	}
	if wbPending && d.getOwner(w.id) == int32(w.owner) {
		// The owner's dirty copy is on its way to memory (the WBEVICT
		// has not landed here yet — once it does, it clears the owner
		// field, so owner still == w.owner is the precise test). Park
		// until it lands; resolving now would read stale memory.
		ep.lines[home][w.id].parked = w
		return
	}
	// Stale owner (silent clean eviction): fall through to memory.
	d.setOwner(w.id, noProc)
	ep.resolve(w, mem.Word{}, false)
}

// resolve runs the walk's decision phase at the home shard, mirroring
// Directory.Read / Directory.Write.
func (ep *EventPlane) resolve(w *epWalk, data mem.Word, gotData bool) {
	if w.write {
		ep.resolveWrite(w, data, gotData)
	} else {
		ep.resolveRead(w, data, gotData)
	}
}

// grant sends the data grant to the requester and arms the walk's ack
// count: one INSTALL-ACK plus whatever resolve already fanned out.
func (ep *EventPlane) grant(w *epWalk, data mem.Word, exclusive bool, delay sim.Cycle, extraRefs int) {
	home := ep.homeShard(w.line)
	ep.lines[home][w.id].refs = 1 + extraRefs
	ep.send(home, ep.procShard(w.pid), delay, legKey(w.base, legGrant), func() {
		var ev EPEvict
		if w.write {
			ev = ep.nodes[w.pid].EPGrantWrite(w.line, data)
		} else {
			ev = ep.nodes[w.pid].EPGrantRead(w.line, data, exclusive)
		}
		ep.finishGrant(w, ev)
	})
}

func (ep *EventPlane) resolveRead(w *epWalk, data mem.Word, gotData bool) {
	d := ep.d
	home := ep.homeShard(w.line)
	st := ep.sts[home]
	homeTile := d.topo.Home(w.line)
	id := w.id

	if gotData {
		setBit(d.sharerWords(id), w.pid)
		lw := d.getLWID(id)
		refs := ep.recordDependence(w, lw, lw == int32(w.owner))
		ep.grant(w, data, false, ep.fl(d.topo.Latency(homeTile, w.pid)), refs)
		return
	}

	refs := ep.recordDependence(w, d.getLWID(id), false)

	// Nearest clean sharer supplies cache-to-cache; memory is current
	// for S lines, so the value is memory's. Otherwise main memory.
	sh := d.sharerWords(id)
	supplier := -1
	for wi, word := range sh {
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if i == w.pid {
				continue
			}
			if supplier < 0 || d.topo.Hops(homeTile, i) < d.topo.Hops(homeTile, supplier) {
				supplier = i
			}
		}
	}
	data = ep.ctrls[home].Memory().ReadID(id)
	if supplier >= 0 {
		st.CohMessages += 3 // fwd, data, ack
		setBit(sh, w.pid)
		delay := ep.fl(d.topo.Latency(homeTile, supplier) + d.L2HitCycles + d.topo.Latency(supplier, w.pid))
		ep.grant(w, data, false, delay, refs)
		return
	}
	memLat := ep.ctrls[home].DRAM().ReadLatency(w.line)
	st.CohMessages++ // data message
	// No other copies: grant Exclusive (RDX), setting LW-ID like a
	// write — the processor may write silently later.
	clearWords(sh)
	d.setOwner(id, int32(w.pid))
	d.setLWID(id, int32(w.pid))
	ep.grant(w, data, true, ep.fl(memLat+d.topo.Latency(homeTile, w.pid)), refs)
}

func (ep *EventPlane) resolveWrite(w *epWalk, data mem.Word, gotData bool) {
	d := ep.d
	home := ep.homeShard(w.line)
	st := ep.sts[home]
	homeTile := d.topo.Home(w.line)
	id := w.id
	lw := d.getLWID(id)

	// Invalidate all other sharers; the grant waits out the worst
	// sharer round trip (invalidations go in parallel), as in Write.
	sh := d.sharerWords(id)
	var worst sim.Cycle
	wasSharer := false
	invalidated := 0
	for wi, word := range sh {
		for word != 0 {
			s := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if s == w.pid {
				wasSharer = true
				continue
			}
			sharer := s
			ep.send(home, ep.procShard(sharer), ep.fl(d.topo.Latency(homeTile, sharer)),
				legKey(w.base, legInval+2*sharer), func() { ep.inval(w, sharer) })
			invalidated++
			if rt := 2 * d.topo.Latency(homeTile, sharer); rt > worst {
				worst = rt
			}
		}
	}
	st.CohMessages += uint64(2 * invalidated) // inval + ack per sharer

	grantDelay := ep.fl(worst + d.topo.Latency(homeTile, w.pid))
	if !gotData {
		switch {
		case wasSharer || d.getOwner(id) == int32(w.pid):
			// Upgrade: requester already has the data.
			st.CohMessages++ // grant
		case worst > 0:
			// An invalidated sharer supplied the (memory-current) data
			// cache-to-cache along with its ack.
			st.CohMessages++ // data message
		default:
			memLat := ep.ctrls[home].DRAM().ReadLatency(w.line)
			grantDelay = ep.fl(worst + memLat + d.topo.Latency(homeTile, w.pid))
			st.CohMessages++ // data message
		}
		data = ep.ctrls[home].Memory().ReadID(id)
	}

	refs := ep.recordDependence(w, lw, w.piggy)
	clearWords(d.sharerWords(id))
	d.setOwner(id, int32(w.pid))
	d.setLWID(id, int32(w.pid))
	ep.grant(w, data, false, grantDelay, invalidated+refs)
}

// recordDependence is the lazy dependence recording of §3.3.1 as
// message legs: LWCHECK to the last writer's shard, which answers with
// ADDPROD to the requester and LW-ACK (carrying NO_WR) to home. It
// returns the number of home-bound acks it put in flight (0 or 1).
func (ep *EventPlane) recordDependence(w *epWalk, lw int32, piggy bool) int {
	if lw == noProc || int(lw) == w.pid {
		return 0
	}
	home := ep.homeShard(w.line)
	if !piggy {
		ep.sts[home].DepMessages += 2 // query to LW-ID proc + its reply
	}
	lwi := int(lw)
	homeTile := ep.d.topo.Home(w.line)
	ep.send(home, ep.procShard(lwi), ep.fl(ep.d.topo.Latency(homeTile, lwi)),
		legKey(w.base, legLWCheck), func() { ep.lwCheck(w, lwi) })
	return 1
}

// lwCheck runs on the last writer's shard.
func (ep *EventPlane) lwCheck(w *epWalk, lw int) {
	ok, exact := ep.nodes[lw].LastWriterCheck(w.line, w.pid)
	src := ep.procShard(lw)
	home := ep.homeShard(w.line)
	homeTile := ep.d.topo.Home(w.line)
	ep.send(src, ep.procShard(w.pid), ep.fl(ep.d.topo.Latency(lw, w.pid)),
		legKey(w.base, legAddProd), func() { ep.nodes[w.pid].AddProducer(lw, exact) })
	ep.send(src, home, ep.fl(ep.d.topo.Latency(lw, homeTile)),
		legKey(w.base, legLWAck), func() {
			// NO_WR clears the stale LW-ID — unless the walk's own
			// resolve already retargeted it (writes set LW-ID to the
			// requester, which the functional protocol would likewise
			// have let win).
			if !ok && ep.d.getLWID(w.id) == int32(lw) {
				ep.d.setLWID(w.id, noProc)
				ep.d.mark(w.id)
			}
			ep.ackRef(w)
		})
}

// inval runs on an invalidated sharer's shard.
func (ep *EventPlane) inval(w *epWalk, sharer int) {
	ep.nodes[sharer].InvalidateShared(w.line)
	home := ep.homeShard(w.line)
	homeTile := ep.d.topo.Home(w.line)
	ep.send(ep.procShard(sharer), home, ep.fl(ep.d.topo.Latency(sharer, homeTile)),
		legKey(w.base, legInvalAck+2*sharer), func() { ep.ackRef(w) })
}

// finishGrant runs on the requester's shard right after the node
// installed the line (and resumed the processor): route the displaced
// victim, then ack the install back to home.
func (ep *EventPlane) finishGrant(w *epWalk, ev EPEvict) {
	src := ep.procShard(w.pid)
	switch ev.Kind {
	case EvictDirty:
		ep.wbp[w.pid][ev.Line]++
		line, data, epoch := ev.Line, ev.Data, ev.Epoch
		vh := ep.homeShard(line)
		vt := ep.d.topo.Home(line)
		pid := w.pid
		ep.send(src, vh, ep.fl(ep.d.topo.Latency(pid, vt)),
			legKey(w.base, legWBEvict), func() { ep.wbEvict(pid, line, data, epoch, w.base) })
	case EvictShared:
		line := ev.Line
		pid := w.pid
		vh := ep.homeShard(line)
		vt := ep.d.topo.Home(line)
		ep.send(src, vh, ep.fl(ep.d.topo.Latency(pid, vt)),
			legKey(w.base, legDropShared), func() { ep.d.DropShared(pid, line) })
	}
	home := ep.homeShard(w.line)
	ep.send(src, home, ep.fl(ep.d.topo.Latency(w.pid, ep.d.topo.Home(w.line))),
		legKey(w.base, legInstallAck), func() { ep.ackRef(w) })
}

// wbEvict applies a dirty-victim writeback at the victim's home shard,
// mirroring Directory.WritebackEvict, acks the evictor, and resumes a
// walk parked on this line. Applying while the line is walk-busy is
// sound: a dirty eviction implies the evictor is (still) the recorded
// owner until this message lands, which is exactly what the park test
// in probeResolved keys on.
func (ep *EventPlane) wbEvict(pid int, line uint64, data mem.Word, epoch uint64, base uint64) {
	d := ep.d
	home := ep.homeShard(line)
	st := ep.sts[home]
	id := d.entryID(line)
	d.mark(id)
	if d.getOwner(id) == int32(pid) {
		d.setOwner(id, noProc)
	}
	clrBit(d.sharerWords(id), pid)
	st.CohMessages++ // writeback message
	st.L2WritebacksDemand++
	ep.ctrls[home].WritebackID(pid, epoch, id, line, data)
	homeTile := d.topo.Home(line)
	ep.send(home, ep.procShard(pid), ep.fl(d.topo.Latency(homeTile, pid)),
		legKey(base, legWBAck), func() {
			if ep.wbp[pid][line]--; ep.wbp[pid][line] == 0 {
				delete(ep.wbp[pid], line)
			}
		})
	if l := ep.lines[home][id]; l != nil && l.parked != nil {
		w := l.parked
		l.parked = nil
		ep.resolve(w, mem.Word{}, false)
	}
}

// ackRef retires one in-flight ack of w's walk; the last ack releases
// the line to the next queued walk.
func (ep *EventPlane) ackRef(w *epWalk) {
	home := ep.homeShard(w.line)
	l := ep.lines[home][w.id]
	if l.refs--; l.refs > 0 {
		return
	}
	if len(l.queue) > 0 {
		next := l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue = l.queue[:len(l.queue)-1]
		ep.start(next)
		return
	}
	delete(ep.lines[home], w.id)
}
