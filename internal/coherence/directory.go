// Package coherence implements the full-map directory MESI protocol of
// the Rebound manycore, augmented with the Last-Writer-ID (LW-ID) field
// per directory entry and the lazy dependence recording of §3.3.1:
//
//   - WR/Upgrade: invalidate sharers, record old-LW-ID → writer
//     dependence, set LW-ID to the writer.
//   - RD: forward to the owner if any; record LW-ID → reader dependence
//     via an "are you the last writer?" query answered from the WSIG
//     (NO_WR clears a stale LW-ID, §3.3.2).
//   - RDX (read that returns Exclusive): sets LW-ID like a write, since
//     the processor may later write silently.
//
// Coherence transactions execute atomically (functional protocol); the
// requesting processor is charged the transaction latency, and the
// extra dependence-maintenance messages are accounted separately
// (Table 6.1 row 3).
//
// Directory state is stored in dense per-shard slices indexed by
// interned line IDs (the machine-wide mem.LineTable) through the
// machine's mem.Sharding (shard = low ID bits, slot = remaining bits):
// one owner word, one LW-ID word and a fixed number of sharer-bitmap
// words per line, so a transaction pays a single intern lookup plus two
// shifts and then runs on dense arrays. A 1-shard directory degenerates
// to the historical flat layout. Sharer updates are batched per
// transaction: the invalidation fan-out walks the bitmap words inline
// and accounts messages once, instead of per-sharer closure calls into
// a heap-allocated bitset.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/cow"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Node is the per-tile L2 controller surface the directory talks to.
// It is implemented by the machine's processor model.
type Node interface {
	// Recall asks the node for its copy of line. If invalidate is
	// true the copy is removed (L1 included); otherwise it is
	// downgraded to Shared. ok is false if the node no longer holds
	// the line (silent clean eviction left the directory stale).
	Recall(line uint64, invalidate bool) (data mem.Word, dirty bool, epoch uint64, ok bool)
	// InvalidateShared removes a clean shared copy (L1 included).
	InvalidateShared(line uint64)
	// LastWriterCheck is the "are you the last writer of line?" query:
	// the node tests line against its live WSIGs in reverse age order
	// and, on a match, sets bit consumer in that epoch's MyConsumers
	// and returns ok. It returns ok=false (NO_WR) when no WSIG matches,
	// telling the directory to clear the stale LW-ID. exact is the
	// answer an ideal signature would have given (measurement only for
	// Table 6.1; exact implies ok).
	LastWriterCheck(line uint64, consumer int) (ok, exact bool)
	// AddProducer sets bit producer in the node's current MyProducers.
	// Per §3.3.2 this happens unconditionally (before any NO_WR reply
	// could arrive), so MyProducers may be a superset of the truth.
	// exact=true additionally updates the measurement-only shadow.
	AddProducer(producer int, exact bool)
}

const noProc = -1

// Directory is the (logically distributed, physically one-per-tile)
// full-map directory.
type Directory struct {
	topo  *topo.Topology
	st    *stats.Stats
	ctrl  *mem.Controller
	nodes []Node
	tab   *mem.LineTable
	sh    mem.Sharding

	// Per-line state, partitioned per shard and indexed by slot.
	// sharers holds wpp bitmap words per line, carved from one backing
	// slice per shard.
	owner   [][]int32
	lwid    [][]int32
	sharers [][]uint64
	wpp     int

	// dirty tracks entries mutated since the last Load/LoadDelta, one
	// per-shard tracker with one mark per slot covering its owner,
	// LW-ID and sharer words (cow.Dirty pages those into ranges).
	// entryID growth is exempt: the appended defaults are exactly what
	// a load resets a post-capture tail to.
	dirty []cow.Dirty

	// L2HitCycles is charged for the remote L2 access on forwarded
	// requests.
	L2HitCycles sim.Cycle
}

// New returns a directory for the given tiles, sharing the memory
// controller's line table and adopting its state-partition layout.
func New(tp *topo.Topology, st *stats.Stats, ctrl *mem.Controller, nodes []Node) *Directory {
	wpp := (len(nodes) + 63) / 64
	if wpp < 1 {
		wpp = 1
	}
	sh := ctrl.Memory().Sharding()
	return &Directory{
		topo:        tp,
		st:          st,
		ctrl:        ctrl,
		nodes:       nodes,
		tab:         ctrl.Memory().Table(),
		sh:          sh,
		owner:       make([][]int32, sh.N()),
		lwid:        make([][]int32, sh.N()),
		sharers:     make([][]uint64, sh.N()),
		wpp:         wpp,
		dirty:       make([]cow.Dirty, sh.N()),
		L2HitCycles: 8,
	}
}

// NumShards returns the shard count of the per-line state.
func (d *Directory) NumShards() int { return len(d.owner) }

// entryID interns line and grows the per-line state to cover it. Other
// users of the shared table (memory, log) may have interned lines this
// directory has never seen, so growth tracks the table, not just
// directory traffic.
func (d *Directory) entryID(line uint64) int32 {
	id := d.tab.ID(line)
	shd, sl := d.sh.Shard(id), d.sh.Slot(id)
	for sl >= len(d.owner[shd]) {
		d.owner[shd] = append(d.owner[shd], noProc)
		d.lwid[shd] = append(d.lwid[shd], noProc)
		for i := 0; i < d.wpp; i++ {
			d.sharers[shd] = append(d.sharers[shd], 0)
		}
	}
	return id
}

// The per-entry accessors below re-derive (shard, slot) on each call
// rather than holding pointers or sub-slices: entryID growth can
// reallocate a shard's backing arrays mid-transaction (a Node callback
// may intern a new line), and two shifts per access is noise next to
// the intern lookup the transaction already paid.

func (d *Directory) getOwner(id int32) int32 { return d.owner[d.sh.Shard(id)][d.sh.Slot(id)] }

func (d *Directory) setOwner(id int32, v int32) {
	d.owner[d.sh.Shard(id)][d.sh.Slot(id)] = v
}

func (d *Directory) getLWID(id int32) int32 { return d.lwid[d.sh.Shard(id)][d.sh.Slot(id)] }

func (d *Directory) setLWID(id int32, v int32) {
	d.lwid[d.sh.Shard(id)][d.sh.Slot(id)] = v
}

// mark flags id's entry dirty for the copy-on-write restore.
func (d *Directory) mark(id int32) { d.dirty[d.sh.Shard(id)].Mark(d.sh.Slot(id)) }

// sharerWords returns the sharer bitmap of id. Not stable across
// entryID growth — re-fetch after any Node callback.
func (d *Directory) sharerWords(id int32) []uint64 {
	shd, sl := d.sh.Shard(id), d.sh.Slot(id)
	off := sl * d.wpp
	return d.sharers[shd][off : off+d.wpp : off+d.wpp]
}

func setBit(w []uint64, i int) { w[i>>6] |= 1 << uint(i&63) }
func clrBit(w []uint64, i int) { w[i>>6] &^= 1 << uint(i&63) }

func testBit(w []uint64, i int) bool { return w[i>>6]&(1<<uint(i&63)) != 0 }

func clearWords(w []uint64) { clear(w) }

func wordsEmpty(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

// LWID returns the last-writer field of line (noProc==-1 when null).
func (d *Directory) LWID(line uint64) int {
	if id, ok := d.tab.Lookup(line); ok {
		shd, sl := d.sh.Shard(id), d.sh.Slot(id)
		if sl < len(d.lwid[shd]) {
			return int(d.lwid[shd][sl])
		}
	}
	return noProc
}

// recordDependence performs the lazy dependence recording of §3.3.1 for
// a transaction by pid on line: the requester optimistically sets
// MyProducers[lwid]; the LW-ID processor checks its WSIGs and either
// sets MyConsumers[pid] or answers NO_WR, clearing the stale LW-ID.
// piggybacked marks the LW-ID processor as already on the transaction's
// message path (the recalled owner), in which case the query rides the
// existing messages for free.
func (d *Directory) recordDependence(pid int, line uint64, id int32, piggybacked bool) {
	lw := d.getLWID(id)
	if lw == noProc || int(lw) == pid {
		return
	}
	if !piggybacked {
		d.st.DepMessages += 2 // query to LW-ID proc + its reply
	}
	ok, exact := d.nodes[lw].LastWriterCheck(line, pid)
	d.nodes[pid].AddProducer(int(lw), exact)
	if !ok {
		d.setLWID(id, noProc) // NO_WR: stale LW-ID cleared
	}
}

// ReadResult is the outcome of a load miss transaction.
type ReadResult struct {
	Data mem.Word
	// State is the MESI state granted to the requester: Exclusive when
	// no other sharer exists (an RDX, §3.3.1), Shared otherwise.
	State cache.State
	// Latency is the critical-path delay of the transaction, excluding
	// the requester's own L2 access.
	Latency sim.Cycle
}

// Read performs a GetS transaction for pid on line.
func (d *Directory) Read(pid int, line uint64) ReadResult {
	id := d.entryID(line)
	d.mark(id) // every Read path mutates the entry
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	if owner := d.getOwner(id); owner != noProc && int(owner) != pid {
		data, dirty, epoch, ok := d.nodes[owner].Recall(line, false)
		if ok {
			// Forward to owner; owner supplies the line and downgrades
			// to Shared; a dirty copy is also written back to memory
			// (MESI M→S), which the controller logs — off the read's
			// critical path.
			d.st.CohMessages += 3 // fwd, data-to-requester, ack-to-home
			lat += d.topo.Latency(home, int(owner)) + d.L2HitCycles + d.topo.Latency(int(owner), pid)
			if dirty {
				d.ctrl.WritebackID(int(owner), epoch, id, line, data)
			}
			sh := d.sharerWords(id)
			setBit(sh, int(owner))
			d.setOwner(id, noProc)
			setBit(sh, pid)
			d.recordDependence(pid, line, id, d.getLWID(id) == owner)
			return ReadResult{Data: data, State: cache.Shared, Latency: lat}
		}
		// Stale owner (silent clean eviction): fall through to memory.
		d.setOwner(id, noProc)
	}

	d.recordDependence(pid, line, id, false)

	// If clean sharers exist, the nearest one supplies the line
	// cache-to-cache (the paper's ~60-cycle remote-L2 path); memory for
	// S lines is up to date, so the value is memory's. Otherwise the
	// line comes from main memory.
	sh := d.sharerWords(id)
	supplier := -1
	for wi, w := range sh {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if i == pid {
				continue
			}
			if supplier < 0 || d.topo.Hops(home, i) < d.topo.Hops(home, supplier) {
				supplier = i
			}
		}
	}
	data := d.ctrl.Memory().ReadID(id)
	if supplier >= 0 {
		d.st.CohMessages += 3 // fwd, data, ack
		lat += d.topo.Latency(home, supplier) + d.L2HitCycles + d.topo.Latency(supplier, pid)
		setBit(sh, pid)
		return ReadResult{Data: data, State: cache.Shared, Latency: lat}
	}
	memLat := d.ctrl.DRAM().ReadLatency(line)
	lat += memLat + d.topo.Latency(home, pid)
	d.st.CohMessages++ // data message
	// No other copies: grant Exclusive (RDX). Like a write, this sets
	// LW-ID, because the processor may write silently later.
	clearWords(sh)
	d.setOwner(id, int32(pid))
	d.setLWID(id, int32(pid))
	return ReadResult{Data: data, State: cache.Exclusive, Latency: lat}
}

// WriteResult is the outcome of a store/RMW miss or upgrade transaction.
type WriteResult struct {
	// Data is the line's pre-write content (for read-modify-write).
	Data    mem.Word
	Latency sim.Cycle
}

// Write performs a GetX/Upgrade transaction for pid on line. The
// requester ends as exclusive owner; the machine marks its cached copy
// Modified and inserts the line in its current WSIG.
func (d *Directory) Write(pid int, line uint64) WriteResult {
	id := d.entryID(line)
	d.mark(id)
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	var data mem.Word
	gotData := false
	// The dependence query rides for free on messages the transaction
	// already sends when the LW-ID processor is the recalled owner or
	// one of the invalidated sharers.
	lw := d.getLWID(id)
	piggy := lw != noProc && (lw == d.getOwner(id) || testBit(d.sharerWords(id), int(lw)))

	if owner := d.getOwner(id); owner != noProc && int(owner) != pid {
		if od, _, _, ok := d.nodes[owner].Recall(line, true); ok {
			// Dirty (or clean-exclusive) copy migrates cache-to-cache;
			// memory is not updated — the old value reaches the log
			// whenever the line is eventually written back.
			d.st.CohMessages += 3
			lat += d.topo.Latency(home, int(owner)) + d.L2HitCycles + d.topo.Latency(int(owner), pid)
			data, gotData = od, true
		}
		d.setOwner(id, noProc)
	}

	// Invalidate all other sharers; latency is the worst sharer round
	// trip (invalidations go in parallel). The fan-out is batched: one
	// pass over the bitmap words, messages accounted once at the end.
	//
	// sh is (re-)fetched after every Node callback section: entryID
	// growth reallocates the sharers backing array, so a sub-slice must
	// never be held across a call that could intern a new line. Today
	// no callback does (Recall's delayed-writeback path only touches
	// the already-interned recalled line), but holding a stale slice
	// here would silently drop sharer bits.
	sh := d.sharerWords(id)
	var worst sim.Cycle
	wasSharer := false
	invalidated := 0
	for wi, w := range sh {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s == pid {
				wasSharer = true
				continue
			}
			d.nodes[s].InvalidateShared(line)
			invalidated++
			if rt := 2 * d.topo.Latency(home, s); rt > worst {
				worst = rt
			}
		}
	}
	d.st.CohMessages += uint64(2 * invalidated) // inval + ack per sharer
	lat += worst

	if !gotData {
		switch {
		case wasSharer || d.getOwner(id) == int32(pid):
			// Upgrade: requester already has the data.
			d.st.CohMessages++ // grant
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().ReadID(id)
		case worst > 0:
			// An invalidated sharer supplied the (memory-current) data
			// cache-to-cache along with its ack.
			d.st.CohMessages++ // data message
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().ReadID(id)
		default:
			memLat := d.ctrl.DRAM().ReadLatency(line)
			lat += memLat + d.topo.Latency(home, pid)
			d.st.CohMessages++ // data message
			data = d.ctrl.Memory().ReadID(id)
		}
	}

	d.recordDependence(pid, line, id, piggy)
	clearWords(d.sharerWords(id)) // re-fetched: callbacks ran since sh
	d.setOwner(id, int32(pid))
	d.setLWID(id, int32(pid))
	return WriteResult{Data: data, Latency: lat}
}

// WritebackEvict handles the displacement of a dirty line: the data is
// written (and logged) to memory and the processor gives up ownership.
// It returns the channel completion cycle. LW-ID is deliberately not
// cleared (§3.3.1: clearing it would lose dependence tracking).
func (d *Directory) WritebackEvict(pid int, line uint64, data mem.Word, epoch uint64) sim.Cycle {
	id := d.entryID(line)
	d.mark(id)
	if d.getOwner(id) == int32(pid) {
		d.setOwner(id, noProc)
	}
	clrBit(d.sharerWords(id), pid)
	d.st.CohMessages++ // writeback message
	d.st.L2WritebacksDemand++
	return d.ctrl.WritebackID(pid, epoch, id, line, data)
}

// WritebackRetain handles a checkpoint (or delayed) writeback: the data
// is written and logged to memory but the processor keeps a clean copy
// and remains owner (§3.3.1: "retaining clean copies in the caches";
// the directory clears the Dirty bit but not LW-ID).
func (d *Directory) WritebackRetain(pid int, line uint64, data mem.Word, epoch uint64, background bool) sim.Cycle {
	d.st.CohMessages++
	d.st.L2WritebacksCkpt++
	if background {
		d.st.L2WritebacksBg++
	}
	return d.ctrl.WritebackID(pid, epoch, d.entryID(line), line, data)
}

// DropShared records the silent eviction of a clean shared line.
func (d *Directory) DropShared(pid int, line uint64) {
	if id, ok := d.tab.Lookup(line); ok {
		if d.sh.Slot(id) < len(d.owner[d.sh.Shard(id)]) {
			d.mark(id)
			clrBit(d.sharerWords(id), pid)
		}
	}
}

// DetachProc removes pid from every directory entry: ownership and
// sharer bits are dropped and LW-IDs pointing at pid are cleared. Used
// on rollback, after pid's caches are invalidated (§3.3.5).
func (d *Directory) DetachProc(pid int) {
	w, bit := pid>>6, uint64(1)<<uint(pid&63)
	for shd := range d.owner {
		d.dirty[shd].MarkAll()
		for sl := range d.owner[shd] {
			if d.owner[shd][sl] == int32(pid) {
				d.owner[shd][sl] = noProc
			}
			if d.lwid[shd][sl] == int32(pid) {
				d.lwid[shd][sl] = noProc
			}
		}
		for off := w; off < len(d.sharers[shd]); off += d.wpp {
			d.sharers[shd][off] &^= bit
		}
	}
}

// Snapshot is a saved directory image: the per-shard per-line state
// arrays. Save reuses its storage across captures. FlatImage /
// LoadFlatImage convert to and from the historical flat ID-indexed
// layout for the persistent codec.
type Snapshot struct {
	owner   [][]int32
	lwid    [][]int32
	sharers [][]uint64
	wpp     int
}

// NumShards returns the number of captured shards (0 for an empty
// snapshot).
func (s *Snapshot) NumShards() int { return len(s.owner) }

// WPP returns the captured sharer-bitmap words per line.
func (s *Snapshot) WPP() int { return s.wpp }

// ShardArrays returns the captured arrays of one shard (not copies; the
// caller must not mutate them). Used by the persistent codec.
func (s *Snapshot) ShardArrays(i int) (owner, lwid []int32, sharers []uint64) {
	return s.owner[i], s.lwid[i], s.sharers[i]
}

// SetShards installs captured per-shard arrays directly (persistent
// codec decode path). The three outer slices must have equal length and
// each shard's sharers must hold wpp words per entry.
func (s *Snapshot) SetShards(owner, lwid [][]int32, sharers [][]uint64, wpp int) error {
	if len(owner) != len(lwid) || len(owner) != len(sharers) {
		return fmt.Errorf("coherence: snapshot shard arrays disagree (%d/%d/%d shards)",
			len(owner), len(lwid), len(sharers))
	}
	for i := range owner {
		if len(owner[i]) != len(lwid[i]) || len(sharers[i]) != len(owner[i])*wpp {
			return fmt.Errorf("coherence: snapshot shard %d arrays disagree (%d owners, %d lwids, %d sharer words, wpp %d)",
				i, len(owner[i]), len(lwid[i]), len(sharers[i]), wpp)
		}
	}
	s.owner, s.lwid, s.sharers, s.wpp = owner, lwid, sharers, wpp
	return nil
}

// FlatImage returns the capture as flat ID-indexed arrays — the
// historical single-shard snapshot layout. For a single-shard capture
// the arrays are the shard's own (zero-copy).
func (s *Snapshot) FlatImage() (owner, lwid []int32, sharers []uint64) {
	if len(s.owner) <= 1 {
		if len(s.owner) == 0 {
			return nil, nil, nil
		}
		return s.owner[0], s.lwid[0], s.sharers[0]
	}
	sh := mem.NewSharding(len(s.owner))
	limit := 0
	for i := range s.owner {
		if n := len(s.owner[i]); n > 0 {
			if id := int(sh.ID(i, n-1)) + 1; id > limit {
				limit = id
			}
		}
	}
	owner = make([]int32, limit)
	lwid = make([]int32, limit)
	sharers = make([]uint64, limit*s.wpp)
	for id := 0; id < limit; id++ {
		shd, sl := sh.Shard(int32(id)), sh.Slot(int32(id))
		if sl >= len(s.owner[shd]) {
			owner[id], lwid[id] = noProc, noProc
			continue
		}
		owner[id] = s.owner[shd][sl]
		lwid[id] = s.lwid[shd][sl]
		copy(sharers[id*s.wpp:(id+1)*s.wpp], s.sharers[shd][sl*s.wpp:(sl+1)*s.wpp])
	}
	return owner, lwid, sharers
}

// LoadFlatImage installs flat ID-indexed arrays, scattering them into
// sh's layout (persistent codec decode path; single-shard captures
// adopt the slices directly).
func (s *Snapshot) LoadFlatImage(sh mem.Sharding, owner, lwid []int32, sharers []uint64, wpp int) error {
	if len(owner) != len(lwid) || len(sharers) != len(owner)*wpp {
		return fmt.Errorf("coherence: flat snapshot arrays disagree (%d owners, %d lwids, %d sharer words, wpp %d)",
			len(owner), len(lwid), len(sharers), wpp)
	}
	s.wpp = wpp
	if sh.N() == 1 {
		s.owner = [][]int32{owner}
		s.lwid = [][]int32{lwid}
		s.sharers = [][]uint64{sharers}
		return nil
	}
	s.owner = make([][]int32, sh.N())
	s.lwid = make([][]int32, sh.N())
	s.sharers = make([][]uint64, sh.N())
	for i := range s.owner {
		n := sh.SlotsFor(len(owner), i)
		s.owner[i] = make([]int32, n)
		s.lwid[i] = make([]int32, n)
		s.sharers[i] = make([]uint64, n*wpp)
	}
	for id := range owner {
		shd, sl := sh.Shard(int32(id)), sh.Slot(int32(id))
		s.owner[shd][sl] = owner[id]
		s.lwid[shd][sl] = lwid[id]
		copy(s.sharers[shd][sl*wpp:(sl+1)*wpp], sharers[id*wpp:(id+1)*wpp])
	}
	return nil
}

// prepare sizes s for n shards, keeping per-shard storage.
func (s *Snapshot) prepare(n, wpp int) {
	grow := func(dst [][]int32) [][]int32 {
		if cap(dst) < n {
			old := dst
			dst = make([][]int32, n)
			copy(dst, old)
		} else {
			dst = dst[:n]
		}
		return dst
	}
	s.owner = grow(s.owner)
	s.lwid = grow(s.lwid)
	if cap(s.sharers) < n {
		old := s.sharers
		s.sharers = make([][]uint64, n)
		copy(s.sharers, old)
	} else {
		s.sharers = s.sharers[:n]
	}
	s.wpp = wpp
}

// Save copies the per-line state into s.
func (d *Directory) Save(s *Snapshot) {
	d.SavePrepare(s)
	for i := range d.owner {
		d.SaveShard(s, i)
	}
}

// SavePrepare sizes s for a per-shard parallel save (machine snapshot
// executor): after it returns, SaveShard calls for distinct shards are
// safe concurrently.
func (d *Directory) SavePrepare(s *Snapshot) { s.prepare(len(d.owner), d.wpp) }

// SaveShard copies one shard's per-line state into s. The caller must
// have sized s with SavePrepare; distinct shards may be saved
// concurrently (disjoint storage).
func (d *Directory) SaveShard(s *Snapshot, i int) {
	s.owner[i] = append(s.owner[i][:0], d.owner[i]...)
	s.lwid[i] = append(s.lwid[i][:0], d.lwid[i]...)
	s.sharers[i] = append(s.sharers[i][:0], d.sharers[i]...)
}

// Load restores the per-line state from s. Entries grown past the
// capture (lines interned by a discarded trial) are reset to the
// untouched defaults a fresh build would hold for them; a colder
// directory grows to the captured size.
func (d *Directory) Load(s *Snapshot) {
	for i := range d.owner {
		d.LoadShard(s, i)
	}
}

// LoadShard restores one shard from s (full copy). Distinct shards may
// be loaded concurrently.
func (d *Directory) LoadShard(s *Snapshot, i int) {
	so, sl, ss := s.owner[i], s.lwid[i], s.sharers[i]
	for len(d.owner[i]) < len(so) {
		d.owner[i] = append(d.owner[i], noProc)
		d.lwid[i] = append(d.lwid[i], noProc)
		for k := 0; k < d.wpp; k++ {
			d.sharers[i] = append(d.sharers[i], 0)
		}
	}
	copy(d.owner[i], so)
	copy(d.lwid[i], sl)
	copy(d.sharers[i], ss)
	for k := len(so); k < len(d.owner[i]); k++ {
		d.owner[i][k] = noProc
		d.lwid[i][k] = noProc
	}
	clear(d.sharers[i][len(ss):])
	d.dirty[i].Clear()
}

// LoadDelta restores the per-line state from s touching only the
// entries mutated since the last load. The caller guarantees the live
// state was last loaded from this same capture; anything else must use
// Load. Entries past the captured size revert to the untouched
// defaults, exactly as in Load.
func (d *Directory) LoadDelta(s *Snapshot) {
	for i := range d.owner {
		d.LoadDeltaShard(s, i)
	}
}

// LoadDeltaShard restores one shard from s copying only the pages
// marked dirty since the last load. Distinct shards may be loaded
// concurrently; a live shard shorter than the capture falls back to a
// full load.
func (d *Directory) LoadDeltaShard(s *Snapshot, i int) {
	n := len(s.owner[i])
	if d.dirty[i].All() || len(d.owner[i]) < n {
		d.LoadShard(s, i)
		return
	}
	d.dirty[i].Pages(len(d.owner[i]), func(lo, hi int) {
		end := hi
		if end > n {
			end = n
		}
		if lo < n {
			copy(d.owner[i][lo:end], s.owner[i][lo:end])
			copy(d.lwid[i][lo:end], s.lwid[i][lo:end])
			copy(d.sharers[i][lo*d.wpp:end*d.wpp], s.sharers[i][lo*d.wpp:end*d.wpp])
		}
		for k := max(lo, n); k < hi; k++ {
			d.owner[i][k] = noProc
			d.lwid[i][k] = noProc
		}
		if hi > n {
			clear(d.sharers[i][max(lo, n)*d.wpp : hi*d.wpp])
		}
	})
	d.dirty[i].Clear()
}

// Reset reverts every directory entry to its untouched state in place,
// for Machine.Reset. The shared line table survives a machine reset,
// so the arrays keep their length.
func (d *Directory) Reset() {
	for i := range d.owner {
		for k := range d.owner[i] {
			d.owner[i][k] = noProc
			d.lwid[i][k] = noProc
		}
		clear(d.sharers[i])
		d.dirty[i].MarkAll()
	}
}

// CheckInvariants validates the directory against the actual cache
// contents: an owned entry has no sharers, and every processor the
// directory believes holds a copy either holds it or (owner case) may
// have silently evicted a clean line. holds reports whether pid's L2
// currently has a valid copy of line; dirtyAt reports whether it is
// dirty. Panics on violation; used by tests and debug runs.
func (d *Directory) CheckInvariants(holds func(pid int, line uint64) (present, dirty bool)) {
	for shd := range d.owner {
		for sl := range d.owner[shd] {
			id := d.sh.ID(shd, sl)
			line := d.tab.Addr(id)
			sh := d.sharerWords(id)
			owner := d.owner[shd][sl]
			if owner != noProc && !wordsEmpty(sh) {
				panic(fmt.Sprintf("coherence: line %#x owned by %d but has sharers", line, owner))
			}
			for wi, w := range sh {
				for w != 0 {
					s := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if present, dirty := holds(s, line); present && dirty {
						panic(fmt.Sprintf("coherence: line %#x dirty at sharer %d", line, s))
					}
				}
			}
			if owner != noProc {
				// A silently evicted clean-exclusive line is allowed; a
				// dirty line must never vanish without a writeback.
				if present, _ := holds(int(owner), line); !present {
					continue
				}
			}
		}
	}
}
