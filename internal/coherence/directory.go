// Package coherence implements the full-map directory MESI protocol of
// the Rebound manycore, augmented with the Last-Writer-ID (LW-ID) field
// per directory entry and the lazy dependence recording of §3.3.1:
//
//   - WR/Upgrade: invalidate sharers, record old-LW-ID → writer
//     dependence, set LW-ID to the writer.
//   - RD: forward to the owner if any; record LW-ID → reader dependence
//     via an "are you the last writer?" query answered from the WSIG
//     (NO_WR clears a stale LW-ID, §3.3.2).
//   - RDX (read that returns Exclusive): sets LW-ID like a write, since
//     the processor may later write silently.
//
// Coherence transactions execute atomically (functional protocol); the
// requesting processor is charged the transaction latency, and the
// extra dependence-maintenance messages are accounted separately
// (Table 6.1 row 3).
//
// Directory state is stored in flat slices indexed by interned line IDs
// (the machine-wide mem.LineTable): one owner word, one LW-ID word and
// a fixed number of sharer-bitmap words per line, so a transaction pays
// a single intern lookup and then runs on dense arrays. Sharer updates
// are batched per transaction: the invalidation fan-out walks the
// bitmap words inline and accounts messages once, instead of per-sharer
// closure calls into a heap-allocated bitset.
package coherence

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/cow"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Node is the per-tile L2 controller surface the directory talks to.
// It is implemented by the machine's processor model.
type Node interface {
	// Recall asks the node for its copy of line. If invalidate is
	// true the copy is removed (L1 included); otherwise it is
	// downgraded to Shared. ok is false if the node no longer holds
	// the line (silent clean eviction left the directory stale).
	Recall(line uint64, invalidate bool) (data mem.Word, dirty bool, epoch uint64, ok bool)
	// InvalidateShared removes a clean shared copy (L1 included).
	InvalidateShared(line uint64)
	// LastWriterCheck is the "are you the last writer of line?" query:
	// the node tests line against its live WSIGs in reverse age order
	// and, on a match, sets bit consumer in that epoch's MyConsumers
	// and returns ok. It returns ok=false (NO_WR) when no WSIG matches,
	// telling the directory to clear the stale LW-ID. exact is the
	// answer an ideal signature would have given (measurement only for
	// Table 6.1; exact implies ok).
	LastWriterCheck(line uint64, consumer int) (ok, exact bool)
	// AddProducer sets bit producer in the node's current MyProducers.
	// Per §3.3.2 this happens unconditionally (before any NO_WR reply
	// could arrive), so MyProducers may be a superset of the truth.
	// exact=true additionally updates the measurement-only shadow.
	AddProducer(producer int, exact bool)
}

const noProc = -1

// Directory is the (logically distributed, physically one-per-tile)
// full-map directory.
type Directory struct {
	topo  *topo.Topology
	st    *stats.Stats
	ctrl  *mem.Controller
	nodes []Node
	tab   *mem.LineTable

	// Per-line state, indexed by interned line ID. sharers holds wpp
	// bitmap words per line, carved from one backing slice.
	owner   []int32
	lwid    []int32
	sharers []uint64
	wpp     int

	// dirty tracks entries mutated since the last Load/LoadDelta, one
	// mark per line ID covering its owner, LW-ID and sharer words
	// (cow.Dirty pages those into ranges). entryID growth is exempt:
	// the appended defaults are exactly what a load resets a
	// post-capture tail to.
	dirty cow.Dirty

	// L2HitCycles is charged for the remote L2 access on forwarded
	// requests.
	L2HitCycles sim.Cycle
}

// New returns a directory for the given tiles, sharing the memory
// controller's line table.
func New(tp *topo.Topology, st *stats.Stats, ctrl *mem.Controller, nodes []Node) *Directory {
	wpp := (len(nodes) + 63) / 64
	if wpp < 1 {
		wpp = 1
	}
	return &Directory{
		topo:        tp,
		st:          st,
		ctrl:        ctrl,
		nodes:       nodes,
		tab:         ctrl.Memory().Table(),
		wpp:         wpp,
		L2HitCycles: 8,
	}
}

// entryID interns line and grows the per-line state to cover it. Other
// users of the shared table (memory, log) may have interned lines this
// directory has never seen, so growth tracks the table, not just
// directory traffic.
func (d *Directory) entryID(line uint64) int32 {
	id := d.tab.ID(line)
	for int(id) >= len(d.owner) {
		d.owner = append(d.owner, noProc)
		d.lwid = append(d.lwid, noProc)
		for i := 0; i < d.wpp; i++ {
			d.sharers = append(d.sharers, 0)
		}
	}
	return id
}

// sharerWords returns the sharer bitmap of id.
func (d *Directory) sharerWords(id int32) []uint64 {
	off := int(id) * d.wpp
	return d.sharers[off : off+d.wpp : off+d.wpp]
}

func setBit(w []uint64, i int) { w[i>>6] |= 1 << uint(i&63) }
func clrBit(w []uint64, i int) { w[i>>6] &^= 1 << uint(i&63) }

func testBit(w []uint64, i int) bool { return w[i>>6]&(1<<uint(i&63)) != 0 }

func clearWords(w []uint64) { clear(w) }

func wordsEmpty(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

// LWID returns the last-writer field of line (noProc==-1 when null).
func (d *Directory) LWID(line uint64) int {
	if id, ok := d.tab.Lookup(line); ok && int(id) < len(d.lwid) {
		return int(d.lwid[id])
	}
	return noProc
}

// recordDependence performs the lazy dependence recording of §3.3.1 for
// a transaction by pid on line: the requester optimistically sets
// MyProducers[lwid]; the LW-ID processor checks its WSIGs and either
// sets MyConsumers[pid] or answers NO_WR, clearing the stale LW-ID.
// piggybacked marks the LW-ID processor as already on the transaction's
// message path (the recalled owner), in which case the query rides the
// existing messages for free.
func (d *Directory) recordDependence(pid int, line uint64, id int32, piggybacked bool) {
	lw := d.lwid[id]
	if lw == noProc || int(lw) == pid {
		return
	}
	if !piggybacked {
		d.st.DepMessages += 2 // query to LW-ID proc + its reply
	}
	ok, exact := d.nodes[lw].LastWriterCheck(line, pid)
	d.nodes[pid].AddProducer(int(lw), exact)
	if !ok {
		d.lwid[id] = noProc // NO_WR: stale LW-ID cleared
	}
}

// ReadResult is the outcome of a load miss transaction.
type ReadResult struct {
	Data mem.Word
	// State is the MESI state granted to the requester: Exclusive when
	// no other sharer exists (an RDX, §3.3.1), Shared otherwise.
	State cache.State
	// Latency is the critical-path delay of the transaction, excluding
	// the requester's own L2 access.
	Latency sim.Cycle
}

// Read performs a GetS transaction for pid on line.
func (d *Directory) Read(pid int, line uint64) ReadResult {
	id := d.entryID(line)
	d.dirty.Mark(int(id)) // every Read path mutates the entry
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	if owner := d.owner[id]; owner != noProc && int(owner) != pid {
		data, dirty, epoch, ok := d.nodes[owner].Recall(line, false)
		if ok {
			// Forward to owner; owner supplies the line and downgrades
			// to Shared; a dirty copy is also written back to memory
			// (MESI M→S), which the controller logs — off the read's
			// critical path.
			d.st.CohMessages += 3 // fwd, data-to-requester, ack-to-home
			lat += d.topo.Latency(home, int(owner)) + d.L2HitCycles + d.topo.Latency(int(owner), pid)
			if dirty {
				d.ctrl.WritebackID(int(owner), epoch, id, line, data)
			}
			sh := d.sharerWords(id)
			setBit(sh, int(owner))
			d.owner[id] = noProc
			setBit(sh, pid)
			d.recordDependence(pid, line, id, d.lwid[id] == owner)
			return ReadResult{Data: data, State: cache.Shared, Latency: lat}
		}
		// Stale owner (silent clean eviction): fall through to memory.
		d.owner[id] = noProc
	}

	d.recordDependence(pid, line, id, false)

	// If clean sharers exist, the nearest one supplies the line
	// cache-to-cache (the paper's ~60-cycle remote-L2 path); memory for
	// S lines is up to date, so the value is memory's. Otherwise the
	// line comes from main memory.
	sh := d.sharerWords(id)
	supplier := -1
	for wi, w := range sh {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if i == pid {
				continue
			}
			if supplier < 0 || d.topo.Hops(home, i) < d.topo.Hops(home, supplier) {
				supplier = i
			}
		}
	}
	data := d.ctrl.Memory().ReadID(id)
	if supplier >= 0 {
		d.st.CohMessages += 3 // fwd, data, ack
		lat += d.topo.Latency(home, supplier) + d.L2HitCycles + d.topo.Latency(supplier, pid)
		setBit(sh, pid)
		return ReadResult{Data: data, State: cache.Shared, Latency: lat}
	}
	memLat := d.ctrl.DRAM().ReadLatency(line)
	lat += memLat + d.topo.Latency(home, pid)
	d.st.CohMessages++ // data message
	// No other copies: grant Exclusive (RDX). Like a write, this sets
	// LW-ID, because the processor may write silently later.
	clearWords(sh)
	d.owner[id] = int32(pid)
	d.lwid[id] = int32(pid)
	return ReadResult{Data: data, State: cache.Exclusive, Latency: lat}
}

// WriteResult is the outcome of a store/RMW miss or upgrade transaction.
type WriteResult struct {
	// Data is the line's pre-write content (for read-modify-write).
	Data    mem.Word
	Latency sim.Cycle
}

// Write performs a GetX/Upgrade transaction for pid on line. The
// requester ends as exclusive owner; the machine marks its cached copy
// Modified and inserts the line in its current WSIG.
func (d *Directory) Write(pid int, line uint64) WriteResult {
	id := d.entryID(line)
	d.dirty.Mark(int(id))
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	var data mem.Word
	gotData := false
	// The dependence query rides for free on messages the transaction
	// already sends when the LW-ID processor is the recalled owner or
	// one of the invalidated sharers.
	lw := d.lwid[id]
	piggy := lw != noProc && (lw == d.owner[id] || testBit(d.sharerWords(id), int(lw)))

	if owner := d.owner[id]; owner != noProc && int(owner) != pid {
		if od, _, _, ok := d.nodes[owner].Recall(line, true); ok {
			// Dirty (or clean-exclusive) copy migrates cache-to-cache;
			// memory is not updated — the old value reaches the log
			// whenever the line is eventually written back.
			d.st.CohMessages += 3
			lat += d.topo.Latency(home, int(owner)) + d.L2HitCycles + d.topo.Latency(int(owner), pid)
			data, gotData = od, true
		}
		d.owner[id] = noProc
	}

	// Invalidate all other sharers; latency is the worst sharer round
	// trip (invalidations go in parallel). The fan-out is batched: one
	// pass over the bitmap words, messages accounted once at the end.
	//
	// sh is (re-)fetched after every Node callback section: entryID
	// growth reallocates the sharers backing array, so a sub-slice must
	// never be held across a call that could intern a new line. Today
	// no callback does (Recall's delayed-writeback path only touches
	// the already-interned recalled line), but holding a stale slice
	// here would silently drop sharer bits.
	sh := d.sharerWords(id)
	var worst sim.Cycle
	wasSharer := false
	invalidated := 0
	for wi, w := range sh {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s == pid {
				wasSharer = true
				continue
			}
			d.nodes[s].InvalidateShared(line)
			invalidated++
			if rt := 2 * d.topo.Latency(home, s); rt > worst {
				worst = rt
			}
		}
	}
	d.st.CohMessages += uint64(2 * invalidated) // inval + ack per sharer
	lat += worst

	if !gotData {
		switch {
		case wasSharer || d.owner[id] == int32(pid):
			// Upgrade: requester already has the data.
			d.st.CohMessages++ // grant
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().ReadID(id)
		case worst > 0:
			// An invalidated sharer supplied the (memory-current) data
			// cache-to-cache along with its ack.
			d.st.CohMessages++ // data message
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().ReadID(id)
		default:
			memLat := d.ctrl.DRAM().ReadLatency(line)
			lat += memLat + d.topo.Latency(home, pid)
			d.st.CohMessages++ // data message
			data = d.ctrl.Memory().ReadID(id)
		}
	}

	d.recordDependence(pid, line, id, piggy)
	clearWords(d.sharerWords(id)) // re-fetched: callbacks ran since sh
	d.owner[id] = int32(pid)
	d.lwid[id] = int32(pid)
	return WriteResult{Data: data, Latency: lat}
}

// WritebackEvict handles the displacement of a dirty line: the data is
// written (and logged) to memory and the processor gives up ownership.
// It returns the channel completion cycle. LW-ID is deliberately not
// cleared (§3.3.1: clearing it would lose dependence tracking).
func (d *Directory) WritebackEvict(pid int, line uint64, data mem.Word, epoch uint64) sim.Cycle {
	id := d.entryID(line)
	d.dirty.Mark(int(id))
	if d.owner[id] == int32(pid) {
		d.owner[id] = noProc
	}
	clrBit(d.sharerWords(id), pid)
	d.st.CohMessages++ // writeback message
	d.st.L2WritebacksDemand++
	return d.ctrl.WritebackID(pid, epoch, id, line, data)
}

// WritebackRetain handles a checkpoint (or delayed) writeback: the data
// is written and logged to memory but the processor keeps a clean copy
// and remains owner (§3.3.1: "retaining clean copies in the caches";
// the directory clears the Dirty bit but not LW-ID).
func (d *Directory) WritebackRetain(pid int, line uint64, data mem.Word, epoch uint64, background bool) sim.Cycle {
	d.st.CohMessages++
	d.st.L2WritebacksCkpt++
	if background {
		d.st.L2WritebacksBg++
	}
	return d.ctrl.WritebackID(pid, epoch, d.entryID(line), line, data)
}

// DropShared records the silent eviction of a clean shared line.
func (d *Directory) DropShared(pid int, line uint64) {
	if id, ok := d.tab.Lookup(line); ok && int(id) < len(d.owner) {
		d.dirty.Mark(int(id))
		clrBit(d.sharerWords(id), pid)
	}
}

// DetachProc removes pid from every directory entry: ownership and
// sharer bits are dropped and LW-IDs pointing at pid are cleared. Used
// on rollback, after pid's caches are invalidated (§3.3.5).
func (d *Directory) DetachProc(pid int) {
	d.dirty.MarkAll()
	for id := range d.owner {
		if d.owner[id] == int32(pid) {
			d.owner[id] = noProc
		}
		if d.lwid[id] == int32(pid) {
			d.lwid[id] = noProc
		}
	}
	w, bit := pid>>6, uint64(1)<<uint(pid&63)
	for off := w; off < len(d.sharers); off += d.wpp {
		d.sharers[off] &^= bit
	}
}

// Snapshot is a saved directory image: the flat per-line state arrays.
// Save reuses its storage across captures.
type Snapshot struct {
	Owner   []int32
	LWID    []int32
	Sharers []uint64
}

// Save copies the per-line state into s.
func (d *Directory) Save(s *Snapshot) {
	s.Owner = append(s.Owner[:0], d.owner...)
	s.LWID = append(s.LWID[:0], d.lwid...)
	s.Sharers = append(s.Sharers[:0], d.sharers...)
}

// Load restores the per-line state from s. Entries grown past the
// capture (lines interned by a discarded trial) are reset to the
// untouched defaults a fresh build would hold for them; a colder
// directory grows to the captured size.
func (d *Directory) Load(s *Snapshot) {
	for len(d.owner) < len(s.Owner) {
		d.owner = append(d.owner, noProc)
		d.lwid = append(d.lwid, noProc)
		for i := 0; i < d.wpp; i++ {
			d.sharers = append(d.sharers, 0)
		}
	}
	copy(d.owner, s.Owner)
	copy(d.lwid, s.LWID)
	copy(d.sharers, s.Sharers)
	for i := len(s.Owner); i < len(d.owner); i++ {
		d.owner[i] = noProc
		d.lwid[i] = noProc
	}
	clear(d.sharers[len(s.Sharers):])
	d.dirty.Clear()
}

// LoadDelta restores the per-line state from s touching only the
// entries mutated since the last load. The caller guarantees the live
// state was last loaded from this same capture; anything else must use
// Load. Entries past the captured size revert to the untouched
// defaults, exactly as in Load.
func (d *Directory) LoadDelta(s *Snapshot) {
	n := len(s.Owner)
	if d.dirty.All() || len(d.owner) < n {
		d.Load(s)
		return
	}
	d.dirty.Pages(len(d.owner), func(lo, hi int) {
		end := hi
		if end > n {
			end = n
		}
		if lo < n {
			copy(d.owner[lo:end], s.Owner[lo:end])
			copy(d.lwid[lo:end], s.LWID[lo:end])
			copy(d.sharers[lo*d.wpp:end*d.wpp], s.Sharers[lo*d.wpp:end*d.wpp])
		}
		for i := max(lo, n); i < hi; i++ {
			d.owner[i] = noProc
			d.lwid[i] = noProc
		}
		if hi > n {
			clear(d.sharers[max(lo, n)*d.wpp : hi*d.wpp])
		}
	})
	d.dirty.Clear()
}

// Reset reverts every directory entry to its untouched state in place,
// for Machine.Reset. The shared line table survives a machine reset,
// so the arrays keep their length.
func (d *Directory) Reset() {
	for i := range d.owner {
		d.owner[i] = noProc
		d.lwid[i] = noProc
	}
	clear(d.sharers)
	d.dirty.MarkAll()
}

// CheckInvariants validates the directory against the actual cache
// contents: an owned entry has no sharers, and every processor the
// directory believes holds a copy either holds it or (owner case) may
// have silently evicted a clean line. holds reports whether pid's L2
// currently has a valid copy of line; dirtyAt reports whether it is
// dirty. Panics on violation; used by tests and debug runs.
func (d *Directory) CheckInvariants(holds func(pid int, line uint64) (present, dirty bool)) {
	for id := range d.owner {
		line := d.tab.Addr(int32(id))
		sh := d.sharerWords(int32(id))
		if d.owner[id] != noProc && !wordsEmpty(sh) {
			panic(fmt.Sprintf("coherence: line %#x owned by %d but has sharers", line, d.owner[id]))
		}
		for wi, w := range sh {
			for w != 0 {
				s := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if present, dirty := holds(s, line); present && dirty {
					panic(fmt.Sprintf("coherence: line %#x dirty at sharer %d", line, s))
				}
			}
		}
		if d.owner[id] != noProc {
			// A silently evicted clean-exclusive line is allowed; a
			// dirty line must never vanish without a writeback.
			if present, _ := holds(int(d.owner[id]), line); !present {
				continue
			}
		}
	}
}
