// Package coherence implements the full-map directory MESI protocol of
// the Rebound manycore, augmented with the Last-Writer-ID (LW-ID) field
// per directory entry and the lazy dependence recording of §3.3.1:
//
//   - WR/Upgrade: invalidate sharers, record old-LW-ID → writer
//     dependence, set LW-ID to the writer.
//   - RD: forward to the owner if any; record LW-ID → reader dependence
//     via an "are you the last writer?" query answered from the WSIG
//     (NO_WR clears a stale LW-ID, §3.3.2).
//   - RDX (read that returns Exclusive): sets LW-ID like a write, since
//     the processor may later write silently.
//
// Coherence transactions execute atomically (functional protocol); the
// requesting processor is charged the transaction latency, and the
// extra dependence-maintenance messages are accounted separately
// (Table 6.1 row 3).
package coherence

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Node is the per-tile L2 controller surface the directory talks to.
// It is implemented by the machine's processor model.
type Node interface {
	// Recall asks the node for its copy of line. If invalidate is
	// true the copy is removed (L1 included); otherwise it is
	// downgraded to Shared. ok is false if the node no longer holds
	// the line (silent clean eviction left the directory stale).
	Recall(line uint64, invalidate bool) (data mem.Word, dirty bool, epoch uint64, ok bool)
	// InvalidateShared removes a clean shared copy (L1 included).
	InvalidateShared(line uint64)
	// LastWriterCheck is the "are you the last writer of line?" query:
	// the node tests line against its live WSIGs in reverse age order
	// and, on a match, sets bit consumer in that epoch's MyConsumers
	// and returns ok. It returns ok=false (NO_WR) when no WSIG matches,
	// telling the directory to clear the stale LW-ID. exact is the
	// answer an ideal signature would have given (measurement only for
	// Table 6.1; exact implies ok).
	LastWriterCheck(line uint64, consumer int) (ok, exact bool)
	// AddProducer sets bit producer in the node's current MyProducers.
	// Per §3.3.2 this happens unconditionally (before any NO_WR reply
	// could arrive), so MyProducers may be a superset of the truth.
	// exact=true additionally updates the measurement-only shadow.
	AddProducer(producer int, exact bool)
}

const noProc = -1

type entry struct {
	owner   int
	sharers *bitset.Bitset
	lwid    int
}

// Directory is the (logically distributed, physically one-per-tile)
// full-map directory.
type Directory struct {
	topo  *topo.Topology
	st    *stats.Stats
	ctrl  *mem.Controller
	nodes []Node

	entries map[uint64]*entry

	// L2HitCycles is charged for the remote L2 access on forwarded
	// requests.
	L2HitCycles sim.Cycle
}

// New returns a directory for the given tiles.
func New(tp *topo.Topology, st *stats.Stats, ctrl *mem.Controller, nodes []Node) *Directory {
	return &Directory{
		topo:        tp,
		st:          st,
		ctrl:        ctrl,
		nodes:       nodes,
		entries:     make(map[uint64]*entry),
		L2HitCycles: 8,
	}
}

func (d *Directory) entryFor(line uint64) *entry {
	e := d.entries[line]
	if e == nil {
		e = &entry{owner: noProc, lwid: noProc, sharers: bitset.New(len(d.nodes))}
		d.entries[line] = e
	}
	return e
}

// LWID returns the last-writer field of line (noProc==-1 when null).
func (d *Directory) LWID(line uint64) int {
	if e := d.entries[line]; e != nil {
		return e.lwid
	}
	return noProc
}

// recordDependence performs the lazy dependence recording of §3.3.1 for
// a transaction by pid on line: the requester optimistically sets
// MyProducers[lwid]; the LW-ID processor checks its WSIGs and either
// sets MyConsumers[pid] or answers NO_WR, clearing the stale LW-ID.
// piggybacked marks the LW-ID processor as already on the transaction's
// message path (the recalled owner), in which case the query rides the
// existing messages for free.
func (d *Directory) recordDependence(pid int, line uint64, e *entry, piggybacked bool) {
	lw := e.lwid
	if lw == noProc || lw == pid {
		return
	}
	if !piggybacked {
		d.st.DepMessages += 2 // query to LW-ID proc + its reply
	}
	ok, exact := d.nodes[lw].LastWriterCheck(line, pid)
	d.nodes[pid].AddProducer(lw, exact)
	if !ok {
		e.lwid = noProc // NO_WR: stale LW-ID cleared
	}
}

// ReadResult is the outcome of a load miss transaction.
type ReadResult struct {
	Data mem.Word
	// State is the MESI state granted to the requester: Exclusive when
	// no other sharer exists (an RDX, §3.3.1), Shared otherwise.
	State cache.State
	// Latency is the critical-path delay of the transaction, excluding
	// the requester's own L2 access.
	Latency sim.Cycle
}

// Read performs a GetS transaction for pid on line.
func (d *Directory) Read(pid int, line uint64) ReadResult {
	e := d.entryFor(line)
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	if e.owner != noProc && e.owner != pid {
		owner := e.owner
		data, dirty, epoch, ok := d.nodes[owner].Recall(line, false)
		if ok {
			// Forward to owner; owner supplies the line and downgrades
			// to Shared; a dirty copy is also written back to memory
			// (MESI M→S), which the controller logs — off the read's
			// critical path.
			d.st.CohMessages += 3 // fwd, data-to-requester, ack-to-home
			lat += d.topo.Latency(home, owner) + d.L2HitCycles + d.topo.Latency(owner, pid)
			if dirty {
				d.ctrl.Writeback(owner, epoch, line, data)
			}
			e.sharers.Set(owner)
			e.owner = noProc
			e.sharers.Set(pid)
			d.recordDependence(pid, line, e, e.lwid == owner)
			return ReadResult{Data: data, State: cache.Shared, Latency: lat}
		}
		// Stale owner (silent clean eviction): fall through to memory.
		e.owner = noProc
	}

	d.recordDependence(pid, line, e, false)

	// If clean sharers exist, the nearest one supplies the line
	// cache-to-cache (the paper's ~60-cycle remote-L2 path); memory for
	// S lines is up to date, so the value is memory's. Otherwise the
	// line comes from main memory.
	supplier := -1
	e.sharers.ForEach(func(i int) {
		if i == pid {
			return
		}
		if supplier < 0 || d.topo.Hops(home, i) < d.topo.Hops(home, supplier) {
			supplier = i
		}
	})
	data := d.ctrl.Memory().Read(line)
	if supplier >= 0 {
		d.st.CohMessages += 3 // fwd, data, ack
		lat += d.topo.Latency(home, supplier) + d.L2HitCycles + d.topo.Latency(supplier, pid)
		e.sharers.Set(pid)
		return ReadResult{Data: data, State: cache.Shared, Latency: lat}
	}
	memLat := d.ctrl.DRAM().ReadLatency(line)
	lat += memLat + d.topo.Latency(home, pid)
	d.st.CohMessages++ // data message
	// No other copies: grant Exclusive (RDX). Like a write, this sets
	// LW-ID, because the processor may write silently later.
	e.sharers.Reset()
	e.owner = pid
	e.lwid = pid
	return ReadResult{Data: data, State: cache.Exclusive, Latency: lat}
}

// WriteResult is the outcome of a store/RMW miss or upgrade transaction.
type WriteResult struct {
	// Data is the line's pre-write content (for read-modify-write).
	Data    mem.Word
	Latency sim.Cycle
}

// Write performs a GetX/Upgrade transaction for pid on line. The
// requester ends as exclusive owner; the machine marks its cached copy
// Modified and inserts the line in its current WSIG.
func (d *Directory) Write(pid int, line uint64) WriteResult {
	e := d.entryFor(line)
	home := d.topo.Home(line)
	lat := d.topo.Latency(pid, home)
	d.st.CohMessages++ // request

	var data mem.Word
	gotData := false
	// The dependence query rides for free on messages the transaction
	// already sends when the LW-ID processor is the recalled owner or
	// one of the invalidated sharers.
	piggy := e.lwid != noProc && (e.lwid == e.owner || e.sharers.Test(e.lwid))

	if e.owner != noProc && e.owner != pid {
		owner := e.owner
		if od, _, _, ok := d.nodes[owner].Recall(line, true); ok {
			// Dirty (or clean-exclusive) copy migrates cache-to-cache;
			// memory is not updated — the old value reaches the log
			// whenever the line is eventually written back.
			d.st.CohMessages += 3
			lat += d.topo.Latency(home, owner) + d.L2HitCycles + d.topo.Latency(owner, pid)
			data, gotData = od, true
		}
		e.owner = noProc
	}

	// Invalidate all other sharers; latency is the worst sharer round
	// trip (invalidations go in parallel).
	var worst sim.Cycle
	wasSharer := false
	e.sharers.ForEach(func(s int) {
		if s == pid {
			wasSharer = true
			return
		}
		d.nodes[s].InvalidateShared(line)
		d.st.CohMessages += 2 // inval + ack
		if rt := 2 * d.topo.Latency(home, s); rt > worst {
			worst = rt
		}
	})
	lat += worst

	if !gotData {
		switch {
		case wasSharer || e.owner == pid:
			// Upgrade: requester already has the data.
			d.st.CohMessages++ // grant
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().Read(line)
		case worst > 0:
			// An invalidated sharer supplied the (memory-current) data
			// cache-to-cache along with its ack.
			d.st.CohMessages++ // data message
			lat += d.topo.Latency(home, pid)
			data = d.ctrl.Memory().Read(line)
		default:
			memLat := d.ctrl.DRAM().ReadLatency(line)
			lat += memLat + d.topo.Latency(home, pid)
			d.st.CohMessages++ // data message
			data = d.ctrl.Memory().Read(line)
		}
	}

	d.recordDependence(pid, line, e, piggy)
	e.sharers.Reset()
	e.owner = pid
	e.lwid = pid
	return WriteResult{Data: data, Latency: lat}
}

// WritebackEvict handles the displacement of a dirty line: the data is
// written (and logged) to memory and the processor gives up ownership.
// It returns the channel completion cycle. LW-ID is deliberately not
// cleared (§3.3.1: clearing it would lose dependence tracking).
func (d *Directory) WritebackEvict(pid int, line uint64, data mem.Word, epoch uint64) sim.Cycle {
	e := d.entryFor(line)
	if e.owner == pid {
		e.owner = noProc
	}
	e.sharers.Clear(pid)
	d.st.CohMessages++ // writeback message
	d.st.L2WritebacksDemand++
	return d.ctrl.Writeback(pid, epoch, line, data)
}

// WritebackRetain handles a checkpoint (or delayed) writeback: the data
// is written and logged to memory but the processor keeps a clean copy
// and remains owner (§3.3.1: "retaining clean copies in the caches";
// the directory clears the Dirty bit but not LW-ID).
func (d *Directory) WritebackRetain(pid int, line uint64, data mem.Word, epoch uint64, background bool) sim.Cycle {
	d.st.CohMessages++
	d.st.L2WritebacksCkpt++
	if background {
		d.st.L2WritebacksBg++
	}
	return d.ctrl.Writeback(pid, epoch, line, data)
}

// DropShared records the silent eviction of a clean shared line.
func (d *Directory) DropShared(pid int, line uint64) {
	if e := d.entries[line]; e != nil {
		e.sharers.Clear(pid)
	}
}

// DetachProc removes pid from every directory entry: ownership and
// sharer bits are dropped and LW-IDs pointing at pid are cleared. Used
// on rollback, after pid's caches are invalidated (§3.3.5).
func (d *Directory) DetachProc(pid int) {
	for _, e := range d.entries {
		if e.owner == pid {
			e.owner = noProc
		}
		e.sharers.Clear(pid)
		if e.lwid == pid {
			e.lwid = noProc
		}
	}
}

// CheckInvariants validates the directory against the actual cache
// contents: an owned entry has no sharers, and every processor the
// directory believes holds a copy either holds it or (owner case) may
// have silently evicted a clean line. holds reports whether pid's L2
// currently has a valid copy of line; dirtyAt reports whether it is
// dirty. Panics on violation; used by tests and debug runs.
func (d *Directory) CheckInvariants(holds func(pid int, line uint64) (present, dirty bool)) {
	for line, e := range d.entries {
		if e.owner != noProc && !e.sharers.Empty() {
			panic(fmt.Sprintf("coherence: line %#x owned by %d but has sharers %v", line, e.owner, e.sharers))
		}
		e.sharers.ForEach(func(s int) {
			if present, dirty := holds(s, line); present && dirty {
				panic(fmt.Sprintf("coherence: line %#x dirty at sharer %d", line, s))
			}
		})
		if e.owner != noProc {
			// A silently evicted clean-exclusive line is allowed; a
			// dirty line must never vanish without a writeback.
			if present, _ := holds(e.owner, line); !present {
				continue
			}
		}
	}
}
