package cluster

// Coordinator-level tests, transport-free: workers speak the Direct
// protocol, so the whole lease/execute/push/complete loop runs in one
// process against a real store. The service layer's own tests cover
// the same machinery over HTTP.

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/store"
)

func testSpec(trials int, seed uint64) campaign.Spec {
	return campaign.Spec{
		Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick},
		Trials: trials,
		Faults: 2,
		Window: 60000,
		Seed:   seed,
	}
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newDirectWorker(t *testing.T, c *Coordinator, st *store.Store, name string) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Proto:      Direct{C: c},
		Runner:     harness.NewRunner(2),
		Tier:       &LocalTier{St: st},
		Name:       name,
		ExitOnIdle: true,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestDirectWorkerCampaignByteIdentity drives a campaign through the
// coordinator with one Direct worker and checks the assembled report
// is byte-identical to the local engine's on an independent store.
func TestDirectWorkerCampaignByteIdentity(t *testing.T) {
	st := openStore(t)
	c, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6, 11)

	var mu sync.Mutex
	var lastDone int
	j, err := c.SubmitCampaign(spec, func(done, total int) {
		mu.Lock()
		lastDone = done
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	w := newDirectWorker(t, c, st, "direct")
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("worker went idle but the job is not done")
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if lastDone != spec.Trials {
		t.Fatalf("onProgress saw %d/%d trials", lastDone, spec.Trials)
	}
	mu.Unlock()

	// The stored report equals the local engine's, byte for byte.
	ns, err := campaign.TrialNamespace(st, j.Key())
	if err != nil {
		t.Fatal(err)
	}
	var clustered campaign.Report
	if ok, err := ns.GetJSON(campaign.ReportRecordName, &clustered); err != nil || !ok {
		t.Fatalf("no report stored: ok=%v err=%v", ok, err)
	}
	local, err := campaign.New(harness.NewRunner(2), openStore(t)).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(&clustered)
	lj, _ := json.Marshal(local)
	if string(cj) != string(lj) {
		t.Fatalf("clustered report differs from local engine\ncluster: %.200s\nlocal:   %.200s", cj, lj)
	}

	// A sweep through the same worker lands its records in the store.
	specs := []harness.Spec{
		{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick},
		{App: "FFT", Procs: 4, Scheme: "none", Scale: harness.Quick},
	}
	sj, err := c.SubmitSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker (sweep): %v", err)
	}
	select {
	case <-sj.Done():
	default:
		t.Fatal("sweep job not done")
	}
	for _, spec := range specs {
		if !st.Has(store.KeyOf(spec)) {
			t.Fatalf("sweep cell %s not stored", store.KeyOf(spec))
		}
	}
	if m := c.Metrics(); m.CellsRemote != 2 || m.TrialsRemote != int64(spec.Trials) {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestLeaseExpiryRecoversPushedWork pins the crash-recovery contract:
// a worker that leases units, pushes some records and dies silently
// loses only its unpushed work. At expiry the coordinator probes the
// store — pushed units are recognized and marked done, never re-run —
// and re-issues the rest.
func TestLeaseExpiryRecoversPushedWork(t *testing.T) {
	st := openStore(t)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c, err := New(Config{Store: st, LeaseTTL: time.Second, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(4, 7)
	j, err := c.SubmitCampaign(spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A leases every trial, runs exactly one, pushes its record,
	// and vanishes without completing.
	a := c.Join(JoinRequest{Name: "doomed", Procs: 4})
	resp := c.Lease(LeaseRequest{WorkerID: a.WorkerID})
	if resp.Lease == nil || resp.Lease.Kind != KindCampaign {
		t.Fatalf("no campaign lease: %+v", resp)
	}
	pushed := resp.Lease.Indices[0]
	tier := &LocalTier{St: st}
	tr := campaign.NewTrialRunnerStored(spec, tier)
	trial, err := tr.Run(pushed)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.PutTrial(j.Key(), pushed, &trial); err != nil {
		t.Fatal(err)
	}

	// Nothing is reclaimable before the TTL.
	if m := c.Metrics(); m.LeasesActive != 1 || m.LeasesExpired != 0 {
		t.Fatalf("before expiry: %+v", m)
	}

	// The clock jumps past the deadline; worker B's next lease triggers
	// the reap and receives the re-issued units.
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	b := newDirectWorker(t, c, st, "heir")
	if err := b.Run(context.Background()); err != nil {
		t.Fatalf("worker B: %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("job not done after worker B drained the re-issued units")
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	// B ran only the three unpushed trials; the pushed one was
	// recognized from the store at reap time.
	if trials, _, _ := b.Stats(); trials != int64(spec.Trials-1) {
		t.Fatalf("worker B ran %d trials, want %d (pushed unit must not re-run)",
			trials, spec.Trials-1)
	}
	m := c.Metrics()
	if m.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", m.LeasesExpired)
	}
	if m.TrialsRemote != int64(spec.Trials) {
		t.Fatalf("TrialsRemote = %d, want %d", m.TrialsRemote, spec.Trials)
	}

	// The assembled report is complete and verified.
	ns, err := campaign.TrialNamespace(st, j.Key())
	if err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if ok, err := ns.GetJSON(campaign.ReportRecordName, &rep); err != nil || !ok {
		t.Fatalf("no report: ok=%v err=%v", ok, err)
	}
	if rep.Trials != spec.Trials || rep.VerifiedOK != spec.Trials {
		t.Fatalf("report verified %d/%d", rep.VerifiedOK, rep.Trials)
	}
}
