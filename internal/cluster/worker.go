package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/retry"
	"repro/internal/store"
)

// HTTPProtocol speaks the cluster protocol to a remote coordinator,
// backing off under the retry policy on transport failures.
type HTTPProtocol struct {
	base   string
	client *http.Client
	policy retry.Policy
}

// NewHTTPProtocol returns a Protocol over the coordinator at base
// (e.g. "http://host:8080"). client nil selects http.DefaultClient.
func NewHTTPProtocol(base string, client *http.Client, policy retry.Policy) *HTTPProtocol {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPProtocol{base: strings.TrimSuffix(base, "/"), client: client, policy: policy}
}

func (p *HTTPProtocol) Join(ctx context.Context, req JoinRequest) (out JoinResponse, err error) {
	err = p.post(ctx, "/v1/cluster/join", req, &out)
	return out, err
}

func (p *HTTPProtocol) Lease(ctx context.Context, req LeaseRequest) (out LeaseResponse, err error) {
	err = p.post(ctx, "/v1/cluster/lease", req, &out)
	return out, err
}

func (p *HTTPProtocol) Complete(ctx context.Context, req CompleteRequest) (out CompleteResponse, err error) {
	err = p.post(ctx, "/v1/cluster/complete", req, &out)
	return out, err
}

func (p *HTTPProtocol) Heartbeat(ctx context.Context, req HeartbeatRequest) (out HeartbeatResponse, err error) {
	err = p.post(ctx, "/v1/cluster/heartbeat", req, &out)
	return out, err
}

// post round-trips one JSON protocol call under the retry policy.
func (p *HTTPProtocol) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return p.policy.Do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			p.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return httpError(path, resp)
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// WorkerConfig wires a Worker.
type WorkerConfig struct {
	// Proto is the coordinator connection: NewHTTPProtocol for a remote
	// coordinator, Direct for one in this process.
	Proto Protocol
	// Runner is the local execution pool trials and cells fan out on.
	Runner *harness.Runner
	// Tier is where snapshots are loaded from and records pushed to.
	Tier Tier
	// Name labels the worker in the coordinator's registry.
	Name string
	// Poll overrides the coordinator's idle-poll hint; 0 obeys it.
	Poll time.Duration
	// ExitOnIdle makes Run return nil when the coordinator reports no
	// jobs at all — the in-process worker of a coordinator daemon uses
	// it to release the local execution slots between jobs.
	ExitOnIdle bool
	// Logf, if set, observes worker-side failures (a trial that
	// panicked, a push that exhausted its retries). The worker carries
	// on: failed units simply return to the pool at lease expiry.
	Logf func(format string, args ...any)
}

// maxCachedRunners bounds the per-campaign TrialRunner cache: each
// holds a warmed machine pool, so an unbounded map would pin every
// campaign the worker ever touched in memory.
const maxCachedRunners = 4

// Worker is the pull side of the cluster: it joins a coordinator,
// heartbeats, and loops leases — load-or-warm the campaign's shared
// snapshot (one store read on cold start), run the leased trials or
// cells on the local runner pool, push each record through the store
// tier, then report the lease complete. Push-then-claim ordering makes
// every failure mode safe: a worker that dies after pushing but before
// completing loses nothing (the coordinator's lease reaper finds the
// records in the store), and one that re-runs a unit writes the
// byte-identical record.
type Worker struct {
	cfg WorkerConfig

	id  atomic.Value // string, set at join
	ttl time.Duration

	draining atomic.Bool

	mu      sync.Mutex
	runners map[string]*campaign.TrialRunner
	order   []string // runner insertion order, for eviction

	trialsDone atomic.Int64
	cellsDone  atomic.Int64
	leasesRun  atomic.Int64
}

// NewWorker validates cfg and returns a Worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Proto == nil {
		return nil, fmt.Errorf("cluster: worker needs a coordinator protocol")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("cluster: worker needs a runner")
	}
	if cfg.Tier == nil {
		return nil, fmt.Errorf("cluster: worker needs a store tier")
	}
	return &Worker{cfg: cfg, runners: make(map[string]*campaign.TrialRunner)}, nil
}

// ID returns the coordinator-assigned worker id ("" before join).
func (w *Worker) ID() string {
	if v := w.id.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Stats reports the worker's lifetime tallies: campaign trials run,
// sweep cells run, leases completed.
func (w *Worker) Stats() (trials, cells, leases int64) {
	return w.trialsDone.Load(), w.cellsDone.Load(), w.leasesRun.Load()
}

// Drain asks the worker to stop pulling new leases: Run finishes the
// lease in flight (if any), reports it, and returns nil. It is the
// graceful half of shutdown — cancel Run's context for the hard half.
func (w *Worker) Drain() { w.draining.Store(true) }

// Run joins the coordinator and loops leases until the context is
// cancelled (hard stop: the in-flight lease is abandoned and expires)
// or Drain is invoked (graceful: the in-flight lease completes first).
// Transport hiccups back off under the protocol's retry policy; only
// an exhausted policy or cancellation returns.
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Join once: a worker re-entering Run (the ExitOnIdle loop) keeps
	// its identity, so the coordinator's registry does not churn.
	if w.ID() == "" {
		join, err := w.cfg.Proto.Join(ctx, JoinRequest{Name: w.cfg.Name, Procs: w.cfg.Runner.Workers()})
		if err != nil {
			return fmt.Errorf("cluster: join: %w", err)
		}
		w.id.Store(join.WorkerID)
		w.ttl = time.Duration(join.LeaseTTLMillis) * time.Millisecond
		if w.ttl <= 0 {
			w.ttl = DefaultLeaseTTL
		}
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHB()
		hb.Wait()
	}()

	for {
		if w.draining.Load() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.cfg.Proto.Lease(ctx, LeaseRequest{WorkerID: w.ID()})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("cluster: lease: %w", err)
		}
		if resp.Lease == nil {
			if resp.Idle && w.cfg.ExitOnIdle {
				return nil
			}
			wait := w.cfg.Poll
			if wait <= 0 {
				wait = time.Duration(resp.RetryMillis) * time.Millisecond
			}
			if wait <= 0 {
				wait = time.Second
			}
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			continue
		}
		w.execute(ctx, resp.Lease)
	}
}

// execute runs one lease's units and reports the completions. Units
// that failed (panicked trial, exhausted push) are simply left out of
// the claim: Complete returns them to the pool immediately.
func (w *Worker) execute(ctx context.Context, l *Lease) {
	req := CompleteRequest{WorkerID: w.ID(), LeaseID: l.ID, Job: l.Job}
	switch l.Kind {
	case KindCampaign:
		req.Indices = w.runCampaignLease(ctx, l)
	case KindSweep:
		req.Keys = w.runSweepLease(ctx, l)
	default:
		w.logf("cluster: lease %d: unknown kind %q", l.ID, l.Kind)
	}
	if _, err := w.cfg.Proto.Complete(ctx, req); err != nil {
		// The records are already pushed; the coordinator's reaper will
		// recover them from the store when the lease expires.
		w.logf("cluster: complete lease %d: %v", l.ID, err)
		return
	}
	w.leasesRun.Add(1)
}

// runCampaignLease fans the leased trial indices across the runner
// pool: restore-from-snapshot, run, push. Returns the indices whose
// records were pushed successfully, sorted.
func (w *Worker) runCampaignLease(ctx context.Context, l *Lease) []int {
	if l.Campaign == nil {
		w.logf("cluster: lease %d: campaign lease without a spec", l.ID)
		return nil
	}
	spec := *l.Campaign
	key := campaign.KeyOf(spec)
	runner := w.runnerFor(key, spec)

	var mu sync.Mutex
	var done []int
	w.cfg.Runner.FanOut(ctx, len(l.Indices), func(j int) {
		i := l.Indices[j]
		tr, err := w.runTrial(runner, i)
		if err != nil {
			w.logf("cluster: trial %d of %s: %v", i, key, err)
			return
		}
		if err := w.cfg.Tier.PutTrial(key, i, &tr); err != nil {
			w.logf("cluster: push trial %d of %s: %v", i, key, err)
			return
		}
		w.trialsDone.Add(1)
		mu.Lock()
		done = append(done, i)
		mu.Unlock()
	})
	sort.Ints(done)
	return done
}

// runTrial executes one trial, containing simulator panics the way the
// local engine does: a panicking trial fails its unit, not the worker.
func (w *Worker) runTrial(runner *campaign.TrialRunner, i int) (tr campaign.Trial, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	w.cfg.Runner.WithArena(func(a *cache.Arena) { tr, err = runner.RunIn(i, a) })
	return tr, err
}

// runSweepLease runs the leased sweep cells and pushes their records.
// Returns the record keys pushed successfully, sorted.
func (w *Worker) runSweepLease(ctx context.Context, l *Lease) []string {
	var mu sync.Mutex
	var keys []string
	w.cfg.Runner.FanOut(ctx, len(l.Specs), func(j int) {
		spec := l.Specs[j]
		res, err := w.cfg.Runner.RunOne(ctx, spec)
		if err != nil {
			w.logf("cluster: cell %s: %v", spec.Key(), err)
			return
		}
		rec := store.FromResult(res)
		if err := w.cfg.Tier.PutRecord(rec); err != nil {
			w.logf("cluster: push cell %s: %v", rec.Key, err)
			return
		}
		w.cellsDone.Add(1)
		mu.Lock()
		keys = append(keys, rec.Key)
		mu.Unlock()
	})
	sort.Strings(keys)
	return keys
}

// runnerFor returns the cached TrialRunner of a campaign, creating it
// on first use (that is where the one snapshot load happens) and
// evicting the oldest beyond maxCachedRunners.
func (w *Worker) runnerFor(key string, spec campaign.Spec) *campaign.TrialRunner {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r, ok := w.runners[key]; ok {
		return r
	}
	if len(w.order) >= maxCachedRunners {
		delete(w.runners, w.order[0])
		w.order = w.order[1:]
	}
	r := campaign.NewTrialRunnerStored(spec, w.cfg.Tier)
	w.runners[key] = r
	w.order = append(w.order, key)
	return r
}

// heartbeatLoop renews the worker's leases at a third of the TTL.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	period := w.ttl / 3
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := w.cfg.Proto.Heartbeat(ctx, HeartbeatRequest{WorkerID: w.ID()}); err != nil &&
				ctx.Err() == nil {
				w.logf("cluster: heartbeat: %v", err)
			}
		}
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
