// Package cluster distributes reboundd's sweeps and fault campaigns
// across a coordinator/worker fleet. The single-node stack already made
// every unit of work location-independent — a campaign trial is a pure
// function of (campaign key, index), a sweep cell a pure function of
// its Spec, and warm machine state ships as a content-addressed
// snapshot — so distribution is leases over index ranges, not a new
// execution model.
//
// The protocol is four POST endpoints on the coordinator plus a store
// proxy, all JSON over HTTP:
//
//	POST /v1/cluster/join       register; returns worker id + lease TTL
//	POST /v1/cluster/lease      pull a lease (work-stealing style: idle
//	                            workers poll; the coordinator hands out
//	                            shrinking ranges of the remaining work)
//	POST /v1/cluster/complete   report a lease's finished units
//	POST /v1/cluster/heartbeat  extend the worker's leases
//	GET/PUT /v1/store/{...}     the shared store tier (snapshots in,
//	                            trial/cell records back)
//
// Lease semantics: a lease is a TTL-bounded claim on a set of trial
// indices (campaign) or cells (sweep). Heartbeats extend it; a worker
// that crashes or partitions simply stops heartbeating, and the
// coordinator reclaims the lease lazily and re-issues its units.
// Retries are free by construction: every unit's record is
// content-addressed and validated on completion (campaign trials
// self-identify via index + derived seed, sweep records via their spec
// hash), so a re-run writes the byte-identical record and a duplicate
// completion is a no-op. The coordinator never trusts a worker's
// claim — it marks a unit done only after loading and validating the
// record the worker pushed through the store.
package cluster

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/harness"
)

// Lease kinds.
const (
	KindCampaign = "campaign"
	KindSweep    = "sweep"
)

// Lease is a TTL-bounded claim on a slice of one job's work.
type Lease struct {
	ID  uint64 `json:"id"`
	Job string `json:"job"`
	// Kind selects which payload below is set.
	Kind string `json:"kind"`
	// Campaign carries the full campaign spec so any worker can compute
	// any trial without further coordination; Indices the trial indices
	// this lease claims.
	Campaign *campaign.Spec `json:"campaign,omitempty"`
	Indices  []int          `json:"indices,omitempty"`
	// Specs carries the sweep cells this lease claims.
	Specs []harness.Spec `json:"specs,omitempty"`
}

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// Name is the worker's self-chosen label (host/pid flavored); the
	// coordinator makes it unique.
	Name string `json:"name"`
	// Procs is the worker's local parallelism, for sizing leases.
	Procs int `json:"procs"`
}

// JoinResponse assigns the worker its identity and timing contract.
type JoinResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is how long a lease (and the worker's liveness)
	// lasts without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// LeaseRequest pulls work. An unknown WorkerID is re-registered
// implicitly (a coordinator restart must not strand its fleet).
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse carries a lease, or none with a retry hint.
type LeaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
	// RetryMillis suggests when to poll again when Lease is nil.
	RetryMillis int64 `json:"retry_ms,omitempty"`
	// Idle is true when the coordinator holds no jobs at all (as
	// opposed to all remaining work being leased out). A worker
	// configured with ExitOnIdle stops on it.
	Idle bool `json:"idle,omitempty"`
}

// CompleteRequest reports a lease's finished units. The worker has
// already pushed every unit's record through the store tier; the
// coordinator validates each claimed unit against the store before
// marking it done.
type CompleteRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  uint64 `json:"lease_id"`
	// Job names the job the lease belonged to, so a completion arriving
	// after its lease expired (the worker stalled past the TTL but the
	// records are pushed and valid) still settles against the right job.
	Job string `json:"job"`
	// Indices are the campaign trial indices completed (Kind campaign).
	Indices []int `json:"indices,omitempty"`
	// Keys are the store record keys completed (Kind sweep).
	Keys []string `json:"keys,omitempty"`
}

// CompleteResponse reports how many claimed units were accepted (a
// duplicate or invalid claim is skipped, not an error).
type CompleteResponse struct {
	Accepted int `json:"accepted"`
}

// HeartbeatRequest extends the liveness of a worker and its leases.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
	// Leases is how many leases the worker currently holds.
	Leases int `json:"leases"`
}

// Protocol is the coordinator as a worker sees it. HTTPProtocol speaks
// it over the wire; Direct binds it straight to an in-process
// Coordinator (the coordinator daemon runs its own worker that way, so
// a cluster of one still makes progress).
type Protocol interface {
	Join(ctx context.Context, req JoinRequest) (JoinResponse, error)
	Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
}

// Direct is the in-process Protocol: method calls, no transport, no
// retries needed.
type Direct struct{ C *Coordinator }

func (d Direct) Join(_ context.Context, req JoinRequest) (JoinResponse, error) {
	return d.C.Join(req), nil
}

func (d Direct) Lease(_ context.Context, req LeaseRequest) (LeaseResponse, error) {
	return d.C.Lease(req), nil
}

func (d Direct) Complete(_ context.Context, req CompleteRequest) (CompleteResponse, error) {
	return d.C.Complete(req), nil
}

func (d Direct) Heartbeat(_ context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return d.C.Heartbeat(req), nil
}
