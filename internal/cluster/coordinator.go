package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/store"
)

// Config wires a Coordinator. Store is required: it is the shared tier
// workers read snapshots from and push records into (directly in
// shared-dir mode, through the service's /v1/store proxy otherwise).
type Config struct {
	Store *store.Store
	// LeaseTTL is how long a lease survives without a heartbeat; 0
	// selects 15s. Tests shrink it to exercise expiry.
	LeaseTTL time.Duration
	// MaxChunk bounds the units per lease; 0 selects 32.
	MaxChunk int
	// Now overrides the clock, for deterministic expiry tests.
	Now func() time.Time
}

// DefaultLeaseTTL is the lease lifetime when Config leaves it zero.
const DefaultLeaseTTL = 15 * time.Second

// Unit states within a job.
const (
	unitTodo = iota
	unitLeased
	unitDone
)

// Job is one submitted campaign or sweep, tracked unit by unit. The
// submitter waits on Done; progress and the final error are readable
// any time after.
type Job struct {
	key  string
	kind string

	camp campaign.Spec    // kind == KindCampaign
	ns   *store.Namespace // the campaign's trial namespace

	specs    []harness.Spec // kind == KindSweep, deduped
	cellKeys []string       // store key per cell
	byKey    map[string]int // cell key -> unit index

	onProgress func(done, total int)

	mu    sync.Mutex
	state []uint8
	done  int

	finishOnce sync.Once
	finished   chan struct{}
	err        error
}

// Key returns the job's identity: the campaign content key, or the
// sweep's derived key.
func (j *Job) Key() string { return j.key }

// Done is closed when every unit is complete (or the finish step
// failed; check Err).
func (j *Job) Done() <-chan struct{} { return j.finished }

// Err reports the terminal error, valid after Done is closed.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Progress reports completed units out of total.
func (j *Job) Progress() (done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done, len(j.state)
}

// lease is one outstanding claim.
type lease struct {
	id       uint64
	worker   string
	job      *Job
	units    []int
	deadline time.Time
}

type workerState struct {
	id       string
	procs    int
	lastSeen time.Time
}

// Coordinator owns the cluster's work state: submitted jobs, the lease
// table, and worker liveness. It is transport-agnostic — the service
// layer maps the HTTP endpoints onto its methods — and safe for
// concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*Job
	order   []string // job scheduling order (FIFO)
	leases  map[uint64]*lease
	nextID  uint64
	nextWkr uint64

	// progress queues deferred onProgress calls; its own lock so
	// markDone can enqueue from under either c.mu or a job lock.
	progressMu sync.Mutex
	progress   []func()

	workersJoined atomic.Int64
	leasesGranted atomic.Int64
	leasesExpired atomic.Int64
	trialsRemote  atomic.Int64
	cellsRemote   atomic.Int64
}

// New returns a Coordinator over the shared store.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: Config.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = 32
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*Job),
		leases:  make(map[uint64]*lease),
	}, nil
}

// LeaseTTL reports the configured lease lifetime.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// MetricsSnapshot is the coordinator's counter set for /metrics.
type MetricsSnapshot struct {
	WorkersJoined int64 // join calls accepted
	LiveWorkers   int64 // workers heard from within the liveness window
	LeasesActive  int64 // leases outstanding right now
	LeasesExpired int64 // leases reclaimed after TTL expiry
	TrialsRemote  int64 // campaign trials completed by workers
	CellsRemote   int64 // sweep cells completed by workers
}

// Metrics returns a consistent snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() MetricsSnapshot {
	c.mu.Lock()
	active := int64(len(c.leases))
	c.mu.Unlock()
	return MetricsSnapshot{
		WorkersJoined: c.workersJoined.Load(),
		LiveWorkers:   int64(c.LiveWorkers()),
		LeasesActive:  active,
		LeasesExpired: c.leasesExpired.Load(),
		TrialsRemote:  c.trialsRemote.Load(),
		CellsRemote:   c.cellsRemote.Load(),
	}
}

// LiveWorkers counts workers heard from within three lease TTLs.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := c.cfg.Now().Add(-3 * c.cfg.LeaseTTL)
	n := 0
	for _, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			n++
		}
	}
	return n
}

// --- job submission --------------------------------------------------------

// SubmitCampaign registers spec's trials for distributed execution and
// returns its Job. Trials already persisted in the store (an earlier
// run, an interrupted campaign, another node) are recognized and
// counted done, so a resumed distributed campaign re-runs only the
// missing indices — exactly like the local engine. Submitting a
// campaign already in flight joins the existing Job. onProgress, if
// non-nil, observes completed units out of total (it is retained only
// by the first submission of a key).
func (c *Coordinator) SubmitCampaign(spec campaign.Spec, onProgress func(done, total int)) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key := campaign.KeyOf(spec)
	ns, err := campaign.TrialNamespace(c.cfg.Store, key)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if j, ok := c.jobs[key]; ok {
		c.mu.Unlock()
		return j, nil
	}
	c.mu.Unlock()

	// Scan the store for already-valid trials outside the lock: disk
	// reads must not stall lease traffic.
	j := &Job{
		key:        key,
		kind:       KindCampaign,
		camp:       spec,
		ns:         ns,
		onProgress: onProgress,
		state:      make([]uint8, spec.Trials),
		finished:   make(chan struct{}),
	}
	for i := 0; i < spec.Trials; i++ {
		var tr campaign.Trial
		if ok, err := ns.GetJSON(campaign.TrialRecordName(i), &tr); err == nil && ok &&
			campaign.ValidTrial(spec, i, &tr) {
			j.state[i] = unitDone
			j.done++
		}
	}
	return c.install(j)
}

// SubmitSweep registers the sweep cells for distributed execution and
// returns its Job. Cells whose records are already stored are counted
// done. Duplicate specs collapse into one unit.
func (c *Coordinator) SubmitSweep(specs []harness.Spec) (*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: sweep with no cells")
	}
	var cells []harness.Spec
	var cellKeys []string
	byKey := make(map[string]int)
	h := sha256.New()
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		key := store.KeyOf(spec)
		if _, dup := byKey[key]; dup {
			continue
		}
		byKey[key] = len(cells)
		cells = append(cells, spec)
		cellKeys = append(cellKeys, key)
		fmt.Fprintf(h, "%s\n", key)
	}
	key := "sweep-" + hex.EncodeToString(h.Sum(nil))

	c.mu.Lock()
	if j, ok := c.jobs[key]; ok {
		c.mu.Unlock()
		return j, nil
	}
	c.mu.Unlock()

	j := &Job{
		key:      key,
		kind:     KindSweep,
		specs:    cells,
		cellKeys: cellKeys,
		byKey:    byKey,
		state:    make([]uint8, len(cells)),
		finished: make(chan struct{}),
	}
	for i, ck := range cellKeys {
		if c.cfg.Store.Has(ck) {
			j.state[i] = unitDone
			j.done++
		}
	}
	return c.install(j)
}

// install publishes a prepared job, resolving the race where two
// submitters prepared the same key concurrently (first one wins).
// A job with nothing left to do finishes immediately.
func (c *Coordinator) install(j *Job) (*Job, error) {
	c.mu.Lock()
	if existing, ok := c.jobs[j.key]; ok {
		c.mu.Unlock()
		return existing, nil
	}
	c.jobs[j.key] = j
	c.order = append(c.order, j.key)
	complete := j.done == len(j.state)
	c.mu.Unlock()
	if complete {
		c.finishJob(j)
	}
	return j, nil
}

// --- worker-facing protocol ------------------------------------------------

// Join registers a worker and returns its identity and the lease TTL.
func (c *Coordinator) Join(req JoinRequest) JoinResponse {
	c.mu.Lock()
	c.nextWkr++
	id := fmt.Sprintf("w%03d", c.nextWkr)
	if req.Name != "" {
		id = fmt.Sprintf("%s-%s", id, req.Name)
	}
	procs := req.Procs
	if procs <= 0 {
		procs = 1
	}
	c.workers[id] = &workerState{id: id, procs: procs, lastSeen: c.cfg.Now()}
	c.mu.Unlock()
	c.workersJoined.Add(1)
	return JoinResponse{WorkerID: id, LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds()}
}

// touch records worker liveness, registering unknown IDs implicitly so
// a restarted coordinator does not strand its fleet.
func (c *Coordinator) touch(id string) *workerState {
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id, procs: 1}
		c.workers[id] = w
	}
	w.lastSeen = c.cfg.Now()
	return w
}

// Lease hands the worker a claim on a slice of the oldest job with
// work remaining, or nil with a retry hint. Expired leases are reaped
// here (lazily — the coordinator has no background timers), so a dead
// worker's units return to the pool the moment a live worker asks.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	w := c.touch(req.WorkerID)
	touched := c.reapLocked()

	live := 0
	cutoff := c.cfg.Now().Add(-3 * c.cfg.LeaseTTL)
	for _, ws := range c.workers {
		if ws.lastSeen.After(cutoff) {
			live++
		}
	}
	if live < 1 {
		live = 1
	}

	var resp LeaseResponse
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil {
			continue
		}
		units := c.claimLocked(j, w, live)
		if len(units) == 0 {
			continue
		}
		c.nextID++
		l := &lease{id: c.nextID, worker: w.id, job: j,
			units: units, deadline: c.cfg.Now().Add(c.cfg.LeaseTTL)}
		c.leases[l.id] = l
		c.leasesGranted.Add(1)
		resp.Lease = c.leasePayload(l)
		break
	}
	resp.Idle = len(c.jobs) == 0
	c.mu.Unlock()

	// Settle reap fallout outside the lock: a reclaimed unit whose
	// record was recovered from the store may have completed its job.
	for _, j := range touched {
		c.maybeFinish(j)
	}
	c.flushProgress()
	if resp.Lease == nil {
		// No todo units anywhere: either everything is done, or the
		// rest is leased out and this worker should poll again soon
		// (it will pick up any lease that expires).
		resp.RetryMillis = (c.cfg.LeaseTTL / 4).Milliseconds()
	}
	return resp
}

// claimLocked takes up to one chunk of j's todo units for worker w.
// Chunk size shrinks as the job drains — max(procs, todo/(2*live))
// capped at MaxChunk — so the tail of a campaign spreads across the
// fleet instead of parking on one worker (the work-stealing shape:
// small final chunks mean an idle worker always finds something to
// take).
func (c *Coordinator) claimLocked(j *Job, w *workerState, live int) (units []int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	todo := 0
	for _, s := range j.state {
		if s == unitTodo {
			todo++
		}
	}
	if todo == 0 {
		return nil
	}
	chunk := todo / (2 * live)
	if chunk < w.procs {
		chunk = w.procs
	}
	if chunk > c.cfg.MaxChunk {
		chunk = c.cfg.MaxChunk
	}
	if chunk > todo {
		chunk = todo
	}
	for i := range j.state {
		if len(units) == chunk {
			break
		}
		if j.state[i] == unitTodo {
			j.state[i] = unitLeased
			units = append(units, i)
		}
	}
	return units
}

// leasePayload renders the wire form of a lease.
func (c *Coordinator) leasePayload(l *lease) *Lease {
	out := &Lease{ID: l.id, Job: l.job.key, Kind: l.job.kind}
	switch l.job.kind {
	case KindCampaign:
		spec := l.job.camp
		out.Campaign = &spec
		out.Indices = append([]int(nil), l.units...)
	case KindSweep:
		for _, u := range l.units {
			out.Specs = append(out.Specs, l.job.specs[u])
		}
	}
	return out
}

// Complete settles a lease: every claimed unit is validated against
// the store — the coordinator marks a unit done only when the record
// the worker pushed is present and authentic — and the lease is
// released. Claims for units another worker already completed are
// skipped (idempotent retries); claims whose record is missing or
// invalid return the unit to the pool. An expired or unknown lease ID
// is not an error: the claims are validated against the job directly,
// so work finished just past its deadline still counts.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	c.touch(req.WorkerID)
	var j *Job
	if l, ok := c.leases[req.LeaseID]; ok {
		j = l.job
		// Units the worker did not claim go straight back to todo.
		claimed := make(map[int]bool, len(req.Indices))
		for _, i := range req.Indices {
			claimed[i] = true
		}
		for _, k := range req.Keys {
			if u, ok := l.job.byKey[k]; ok {
				claimed[u] = true
			}
		}
		l.job.mu.Lock()
		for _, u := range l.units {
			if l.job.state[u] == unitLeased && !claimed[u] {
				l.job.state[u] = unitTodo
			}
		}
		l.job.mu.Unlock()
		delete(c.leases, req.LeaseID)
	} else {
		// Lease already reaped: the claims still settle against the job
		// named in the request — work finished just past its deadline
		// counts, the records are validated like any other.
		j = c.jobForClaims(req)
	}
	c.mu.Unlock()

	accepted := 0
	if j != nil {
		accepted = c.settle(j, req)
	}
	c.flushProgress()
	return CompleteResponse{Accepted: accepted}
}

// jobForClaims locates the job a lease-less completion belongs to:
// the job the request names, or — for requests from old workers that
// left Job empty — a sweep job claiming one of the keys. Called with
// c.mu held.
func (c *Coordinator) jobForClaims(req CompleteRequest) *Job {
	if j, ok := c.jobs[req.Job]; ok {
		return j
	}
	for _, key := range c.order {
		j := c.jobs[key]
		if j == nil || j.kind != KindSweep {
			continue
		}
		for _, k := range req.Keys {
			if _, ok := j.byKey[k]; ok {
				return j
			}
		}
	}
	return nil
}

// settle validates claimed units against the store and marks the valid
// ones done. Runs outside c.mu (it reads the store); job state is
// guarded by the job's own lock.
func (c *Coordinator) settle(j *Job, req CompleteRequest) int {
	accepted := 0
	switch j.kind {
	case KindCampaign:
		for _, i := range req.Indices {
			if i < 0 || i >= len(j.state) {
				continue
			}
			if c.unitDoneOrValid(j, i) && c.markDone(j, i) {
				c.trialsRemote.Add(1)
				accepted++
			}
		}
	case KindSweep:
		for _, k := range req.Keys {
			u, ok := j.byKey[k]
			if !ok {
				continue
			}
			if _, ok, err := c.cfg.Store.Get(k); ok && err == nil && c.markDone(j, u) {
				c.cellsRemote.Add(1)
				accepted++
			}
		}
	}
	c.maybeFinish(j)
	return accepted
}

// unitDoneOrValid loads and validates the stored trial record of unit
// i of a campaign job.
func (c *Coordinator) unitDoneOrValid(j *Job, i int) bool {
	var tr campaign.Trial
	ok, err := j.ns.GetJSON(campaign.TrialRecordName(i), &tr)
	return err == nil && ok && campaign.ValidTrial(j.camp, i, &tr)
}

// markDone transitions unit i to done; false if it already was (a
// duplicate completion after a lease was re-issued — the records are
// byte-identical, so either copy is the truth). Defers the onProgress
// call so it never runs under a lock.
func (c *Coordinator) markDone(j *Job, i int) bool {
	j.mu.Lock()
	if j.state[i] == unitDone {
		j.mu.Unlock()
		return false
	}
	j.state[i] = unitDone
	j.done++
	done, total := j.done, len(j.state)
	cb := j.onProgress
	j.mu.Unlock()
	if cb != nil {
		c.progressMu.Lock()
		c.progress = append(c.progress, func() { cb(done, total) })
		c.progressMu.Unlock()
	}
	return true
}

// flushProgress fires deferred progress callbacks outside every lock.
func (c *Coordinator) flushProgress() {
	c.progressMu.Lock()
	cbs := c.progress
	c.progress = nil
	c.progressMu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// Heartbeat extends the worker's liveness and every lease it holds.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch(req.WorkerID)
	n := 0
	deadline := c.cfg.Now().Add(c.cfg.LeaseTTL)
	for _, l := range c.leases {
		if l.worker == req.WorkerID {
			l.deadline = deadline
			n++
		}
	}
	return HeartbeatResponse{OK: true, Leases: n}
}

// reapLocked reclaims expired leases: each leased unit goes back to
// todo unless the dead worker already pushed a valid record for it —
// the store is the truth, so work completed by a worker that died
// before reporting still counts and is never re-run. Called with c.mu
// held; store probes for campaign units are accepted as the cost of a
// rare event (a lease expiry). Returns the jobs it touched so the
// caller can run their finish check after releasing c.mu (finishJob
// takes c.mu itself).
func (c *Coordinator) reapLocked() []*Job {
	now := c.cfg.Now()
	// Prune workers silent for ten TTLs so a churning fleet (rejoins,
	// restarts) does not grow the registry without bound. Their leases,
	// if any, expire below on their own deadlines.
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > 10*c.cfg.LeaseTTL {
			delete(c.workers, id)
		}
	}
	var touched []*Job
	for id, l := range c.leases {
		if !l.deadline.Before(now) {
			continue
		}
		delete(c.leases, id)
		c.leasesExpired.Add(1)
		j := l.job
		touched = append(touched, j)
		for _, u := range l.units {
			recovered := false
			switch j.kind {
			case KindCampaign:
				recovered = c.unitDoneOrValid(j, u)
			case KindSweep:
				_, ok, err := c.cfg.Store.Get(j.cellKeys[u])
				recovered = ok && err == nil
			}
			if recovered {
				if c.markDone(j, u) {
					if j.kind == KindCampaign {
						c.trialsRemote.Add(1)
					} else {
						c.cellsRemote.Add(1)
					}
				}
				continue
			}
			j.mu.Lock()
			if j.state[u] == unitLeased {
				j.state[u] = unitTodo
			}
			j.mu.Unlock()
		}
	}
	return touched
}

// maybeFinish finishes j if every unit is done. Safe to call from any
// path that marks units done; the finish itself runs at most once.
func (c *Coordinator) maybeFinish(j *Job) {
	j.mu.Lock()
	complete := j.done == len(j.state)
	j.mu.Unlock()
	if complete {
		c.finishJob(j)
	}
}

// finishJob runs a completed job's finish step exactly once: a
// campaign loads its full trial set from the store, assembles the
// Report through campaign.Assemble — the same aggregation local
// execution uses, so the persisted Report is byte-identical to a
// 1-node run — and persists it under the campaign's report record. A
// sweep's records are already in the store, so there is nothing to
// write. The job is then retired from the scheduling order and Done is
// closed.
func (c *Coordinator) finishJob(j *Job) {
	j.finishOnce.Do(func() {
		var err error
		if j.kind == KindCampaign {
			err = c.assembleReport(j)
		}
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()

		c.mu.Lock()
		delete(c.jobs, j.key)
		for i, k := range c.order {
			if k == j.key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		close(j.finished)
	})
}

// assembleReport merges the campaign's stored trials into its Report
// and persists it, unless a finished report is already stored (a
// concurrent single-node run of the same campaign, or a resubmit after
// completion).
func (c *Coordinator) assembleReport(j *Job) error {
	var existing campaign.Report
	if ok, err := j.ns.GetJSON(campaign.ReportRecordName, &existing); err == nil && ok &&
		existing.Key == j.key {
		return nil
	}
	trials := make([]campaign.Trial, j.camp.Trials)
	for i := range trials {
		var tr campaign.Trial
		ok, err := j.ns.GetJSON(campaign.TrialRecordName(i), &tr)
		if err != nil {
			return fmt.Errorf("cluster: campaign %s: trial %d: %w", j.key, i, err)
		}
		if !ok || !campaign.ValidTrial(j.camp, i, &tr) {
			return fmt.Errorf("cluster: campaign %s: trial %d vanished before assembly", j.key, i)
		}
		trials[i] = tr
	}
	rep, err := campaign.Assemble(j.camp, trials)
	if err != nil {
		return err
	}
	return j.ns.PutJSON(campaign.ReportRecordName, rep)
}

// Jobs reports how many jobs are in flight, for health reporting.
func (c *Coordinator) Jobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}
