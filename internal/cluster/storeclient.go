package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/retry"
	"repro/internal/store"
)

// Tier is the store surface a worker executes against: the snapshot
// tier a TrialRunner warms from (one read on cold start) plus the
// record sinks its results push into. LocalTier serves it from a
// shared store directory; RemoteStore serves it over the coordinator's
// /v1/store proxy. Either way the bytes that land on the coordinator's
// disk are exactly what a local run would have written — that is the
// whole byte-identity story.
type Tier interface {
	campaign.SnapshotStore
	// PutTrial persists one finished campaign trial under its campaign
	// key and index.
	PutTrial(campaignKey string, index int, tr *campaign.Trial) error
	// PutRecord persists one finished sweep-cell record.
	PutRecord(rec *store.Record) error
	// SnapshotReads reports how many snapshot reads the tier has served
	// — the cold-start economics counter (a worker's first trial should
	// cost exactly one).
	SnapshotReads() uint64
}

// LocalTier is the Tier of a worker sharing the coordinator's store
// directory (same host, or a shared filesystem).
type LocalTier struct {
	St *store.Store

	snapReads atomic.Uint64
}

// GetSnapshot implements campaign.SnapshotStore against the local
// store, counting the read.
func (t *LocalTier) GetSnapshot(snapKey string) ([]byte, bool, error) {
	t.snapReads.Add(1)
	return t.St.GetSnapshot(snapKey)
}

// PutSnapshot implements campaign.SnapshotStore against the local
// store.
func (t *LocalTier) PutSnapshot(snapKey string, payload []byte) error {
	return t.St.PutSnapshot(snapKey, payload)
}

// PutTrial writes the trial record exactly where the local campaign
// engine would: same namespace, same record name, same marshalling.
func (t *LocalTier) PutTrial(campaignKey string, index int, tr *campaign.Trial) error {
	ns, err := campaign.TrialNamespace(t.St, campaignKey)
	if err != nil {
		return err
	}
	return ns.PutJSON(campaign.TrialRecordName(index), tr)
}

// PutRecord writes the sweep-cell record into the shared store.
func (t *LocalTier) PutRecord(rec *store.Record) error { return t.St.Put(rec) }

// SnapshotReads reports snapshot reads served so far.
func (t *LocalTier) SnapshotReads() uint64 { return t.snapReads.Load() }

// RemoteStore is the Tier of a worker on another host: every operation
// travels the coordinator's store proxy —
//
//	GET /v1/store/ns/{path...}   raw namespace record bytes
//	PUT /v1/store/ns/{path...}   raw namespace record bytes
//	PUT /v1/store/runs/{key}     one harness run record
//
// — with retry.Policy backoff on transport failures. Reads verify
// what they fetched (a snapshot record must reproduce its own payload
// hash) and writes ship json.Marshal bytes, so the coordinator-side
// PutRaw lands byte-identically to a local PutJSON of the same value.
type RemoteStore struct {
	base   string
	client *http.Client
	policy retry.Policy

	snapReads atomic.Uint64
}

// NewRemoteStore returns a Tier over the coordinator at base (e.g.
// "http://host:8080"). client nil selects http.DefaultClient.
func NewRemoteStore(base string, client *http.Client, policy retry.Policy) *RemoteStore {
	if client == nil {
		client = http.DefaultClient
	}
	return &RemoteStore{base: strings.TrimSuffix(base, "/"), client: client, policy: policy}
}

// SnapshotReads reports how many snapshot fetches this client made.
func (r *RemoteStore) SnapshotReads() uint64 { return r.snapReads.Load() }

// nsPath renders the proxy URL path of a namespace record.
func nsPath(parts ...string) string {
	var b strings.Builder
	b.WriteString("/v1/store/ns")
	for _, p := range parts {
		b.WriteByte('/')
		b.WriteString(url.PathEscape(p))
	}
	return b.String()
}

// GetSnapshot fetches the snapshot record stored under snapKey through
// the proxy and verifies it end to end: the record must decode, carry
// the requested snapshot key, and reproduce its own payload hash. A
// proxy or transport failure retries under the policy; a missing
// record is a miss, not an error.
func (r *RemoteStore) GetSnapshot(snapKey string) (payload []byte, ok bool, err error) {
	r.snapReads.Add(1)
	data, ok, err := r.getRaw(nsPath(store.SnapshotsNamespace, store.SnapshotKeyOf(snapKey)))
	if err != nil || !ok {
		return nil, false, err
	}
	var rec store.SnapshotRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false, fmt.Errorf("cluster: snapshot %s: %w", snapKey, err)
	}
	if rec.SnapKey != snapKey {
		return nil, false, fmt.Errorf("cluster: snapshot record does not match key %q", snapKey)
	}
	if err := rec.Verify(); err != nil {
		return nil, false, err
	}
	return rec.Machine, true, nil
}

// PutSnapshot ships a serialized machine snapshot to the coordinator
// in exactly the record form store.PutSnapshot writes locally.
func (r *RemoteStore) PutSnapshot(snapKey string, payload []byte) error {
	rec := store.NewSnapshotRecord(snapKey, payload)
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return r.putRaw(nsPath(store.SnapshotsNamespace, rec.Key), data)
}

// PutTrial ships one finished trial record. The bytes are the
// json.Marshal of the Trial — what the local engine's PutJSON writes —
// so a trial computed remotely is indistinguishable on disk from one
// computed in the coordinator's process.
func (r *RemoteStore) PutTrial(campaignKey string, index int, tr *campaign.Trial) error {
	data, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	parts := append(campaign.NamespacePath(campaignKey), campaign.TrialRecordName(index))
	return r.putRaw(nsPath(parts...), data)
}

// PutRecord ships one finished sweep-cell record; the coordinator
// verifies it (content address, stats snapshot) before storing.
func (r *RemoteStore) PutRecord(rec *store.Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return r.putRaw("/v1/store/runs/"+url.PathEscape(rec.Key), data)
}

// getRaw GETs a proxy path with retries. 404 is a miss; any other
// non-200 status or transport failure is retried, then surfaced.
func (r *RemoteStore) getRaw(path string) (data []byte, ok bool, err error) {
	err = r.policy.Do(context.Background(), func() error {
		resp, err := r.client.Get(r.base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			data, ok = body, true
			return nil
		case http.StatusNotFound:
			data, ok = nil, false
			return nil
		default:
			return httpError(path, resp)
		}
	})
	if err != nil {
		return nil, false, fmt.Errorf("cluster: GET %s: %w", path, err)
	}
	return data, ok, nil
}

// putRaw PUTs record bytes to a proxy path with retries. Re-PUTting
// the same record is safe by design: records are content-addressed and
// byte-identical across re-runs, so the coordinator-side overwrite is
// a no-op rename.
func (r *RemoteStore) putRaw(path string, data []byte) error {
	err := r.policy.Do(context.Background(), func() error {
		req, err := http.NewRequest(http.MethodPut, r.base+path, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return httpError(path, resp)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("cluster: PUT %s: %w", path, err)
	}
	return nil
}

// httpError renders a non-OK proxy response, body excerpt included.
func httpError(path string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
}
