package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(8)
	if !b.Empty() {
		t.Fatal("new bitset should be empty")
	}
	b.Set(3)
	b.Set(200) // beyond initial capacity: must grow
	if !b.Test(3) || !b.Test(200) {
		t.Fatal("Set/Test failed")
	}
	if b.Test(4) || b.Test(199) || b.Test(-1) {
		t.Fatal("Test reported phantom members")
	}
	if got := b.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	b.Clear(3)
	if b.Test(3) {
		t.Fatal("Clear(3) did not remove 3")
	}
	b.Clear(10000) // out of range clear is a no-op
	b.Clear(-5)
	if got := b.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	New(4).Set(-1)
}

func TestOrAndNot(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(1)
	a.Set(63)
	b.Set(63)
	b.Set(130)
	a.Or(b)
	want := []int{1, 63, 130}
	if got := a.Elems(); !equalInts(got, want) {
		t.Fatalf("Or: got %v want %v", got, want)
	}
	a.AndNot(b)
	if got := a.Elems(); !equalInts(got, []int{1}) {
		t.Fatalf("AndNot: got %v want [1]", got)
	}
	a.Or(nil) // nil-safe
	a.AndNot(nil)
}

func TestCloneCopyEqual(t *testing.T) {
	a := New(16)
	a.Set(2)
	a.Set(77)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Set(5)
	if a.Equal(c) || a.Test(5) {
		t.Fatal("clone must not alias original storage")
	}
	var d Bitset
	d.CopyFrom(a)
	if !d.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	// Different trailing-zero-word lengths must still compare equal.
	e := New(1024)
	e.Set(2)
	e.Set(77)
	if !e.Equal(a) || !a.Equal(e) {
		t.Fatal("Equal must ignore trailing zero words")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(8), New(8)
	a.Set(7)
	b.Set(8)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported intersecting")
	}
	b.Set(7)
	if !a.Intersects(b) {
		t.Fatal("overlapping sets reported disjoint")
	}
}

func TestResetAndString(t *testing.T) {
	a := New(8)
	a.Set(0)
	a.Set(9)
	if got := a.String(); got != "{0, 9}" {
		t.Fatalf("String = %q", got)
	}
	a.Reset()
	if !a.Empty() {
		t.Fatal("Reset left elements behind")
	}
	if got := a.String(); got != "{}" {
		t.Fatalf("String after reset = %q", got)
	}
}

// Property: a Bitset behaves exactly like a map[int]bool under a random
// operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(4)
		ref := map[int]bool{}
		for i := 0; i < int(nops)+20; i++ {
			x := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				b.Set(x)
				ref[x] = true
			case 1:
				b.Clear(x)
				delete(ref, x)
			case 2:
				if b.Test(x) != ref[x] {
					return false
				}
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		want := make([]int, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Ints(want)
		return equalInts(b.Elems(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or is union, AndNot is difference.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(4), New(4)
		ref := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x % 500))
			ref[int(x%500)] = true
		}
		for _, y := range ys {
			b.Set(int(y % 500))
		}
		u := a.Clone()
		u.Or(b)
		for _, y := range ys {
			ref[int(y%500)] = true
		}
		for k := range ref {
			if !u.Test(k) {
				return false
			}
		}
		if u.Count() != len(ref) {
			return false
		}
		d := u.Clone()
		d.AndNot(b)
		if d.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
