// Package bitset provides a small, fixed-capacity bitset used for
// directory sharer lists and for the MyProducers/MyConsumers dependence
// registers of Rebound (one bit per processor, §3.3.1 of the paper).
package bitset

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a growable set of small non-negative integers. The zero
// value is an empty set ready to use.
type Bitset struct {
	words []uint64
}

// New returns a bitset sized to hold at least n bits.
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

func (b *Bitset) ensure(i int) {
	w := i / wordBits
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	b.ensure(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	if i < 0 || i/wordBits >= len(b.words) {
		return
	}
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether i is in the set.
func (b *Bitset) Test(i int) bool {
	if i < 0 || i/wordBits >= len(b.words) {
		return false
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Reset removes all elements without releasing storage.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or adds every element of o to b.
func (b *Bitset) Or(o *Bitset) {
	if o == nil {
		return
	}
	for i, w := range o.words {
		if w == 0 {
			continue
		}
		b.ensure(i*wordBits + wordBits - 1)
		b.words[i] |= w
	}
}

// AndNot removes every element of o from b.
func (b *Bitset) AndNot(o *Bitset) {
	if o == nil {
		return
	}
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*wordBits + bit)
			w &^= 1 << uint(bit)
		}
	}
}

// Elems returns the elements in ascending order.
func (b *Bitset) Elems() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom makes b an exact copy of o, reusing b's storage when possible.
func (b *Bitset) CopyFrom(o *Bitset) {
	if cap(b.words) < len(o.words) {
		b.words = make([]uint64, len(o.words))
	} else {
		b.words = b.words[:len(o.words)]
	}
	copy(b.words, o.words)
}

// Equal reports whether the two sets hold the same elements.
func (b *Bitset) Equal(o *Bitset) bool {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var bw, ow uint64
		if i < len(b.words) {
			bw = b.words[i]
		}
		if i < len(o.words) {
			ow = o.words[i]
		}
		if bw != ow {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one element.
func (b *Bitset) Intersects(o *Bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// MarshalJSON encodes the set as its word array, so bitsets embedded in
// snapshot images (dep register sets) survive the persistent-snapshot
// round trip with their exact storage length — Equal treats missing
// high words as zero, but a byte-identical re-capture needs the length
// too.
func (b *Bitset) MarshalJSON() ([]byte, error) {
	if b.words == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(b.words)
}

// UnmarshalJSON decodes a word array written by MarshalJSON.
func (b *Bitset) UnmarshalJSON(data []byte) error {
	b.words = b.words[:0]
	return json.Unmarshal(data, &b.words)
}

// String renders the set as {1, 5, 9}.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
