package workload

// The application profiles below model the communication structure of
// the paper's workloads (Fig 4.3b) at the simulator's scaled checkpoint
// interval. The knobs that matter for Rebound are: how often the whole
// machine synchronises at barriers (any barrier inside a checkpoint
// interval chains every processor into one interaction set — Ocean,
// Radix, FFT, LU), how many dynamic locks cross-link processors
// (Raytrace, Radiosity, Cholesky), and how local the data sharing is
// (Blackscholes and Apache touch almost only private/cluster data).
// Footprints are sized so that a core dirties a few hundred distinct L2
// lines per scaled interval, the regime of the paper's evaluation.

// SPLASH2 returns the twelve SPLASH-2 profiles of Fig 4.3(b).
func SPLASH2() []*Profile {
	return []*Profile{
		{Name: "Barnes", Suite: "splash2", MemRatio: 0.30, WriteFrac: 0.30,
			PrivateLines: 60, SharedLines: 53, GlobalLines: 128,
			SharedFrac: 0.15, GlobalFrac: 0.10, GlobalWriteFrac: 0.005, ClusterSize: 8,
			BarrierPeriod: 60000, LockRate: 0.002, NLocks: 16, CSLen: 3, Imbalance: 0.20, ColdFrac: 0.03},
		{Name: "Cholesky", Suite: "splash2", MemRatio: 0.32, WriteFrac: 0.30,
			PrivateLines: 75, SharedLines: 67, GlobalLines: 64,
			SharedFrac: 0.20, GlobalFrac: 0.15, GlobalWriteFrac: 0.01, ClusterSize: 8,
			LockRate: 0.002, NLocks: 16, CSLen: 3, GlobalLockFrac: 0.1, Imbalance: 0.35, ColdFrac: 0.03},
		{Name: "FFT", Suite: "splash2", MemRatio: 0.35, WriteFrac: 0.40,
			PrivateLines: 90, SharedLines: 107, GlobalLines: 128,
			SharedFrac: 0.25, GlobalFrac: 0.20, ClusterSize: 16,
			BarrierPeriod: 30000, Imbalance: 0.25, ColdFrac: 0.06},
		{Name: "FMM", Suite: "splash2", MemRatio: 0.30, WriteFrac: 0.28,
			PrivateLines: 67, SharedLines: 53, GlobalLines: 96,
			SharedFrac: 0.15, GlobalFrac: 0.10, GlobalWriteFrac: 0.01, ClusterSize: 8,
			BarrierPeriod: 70000, LockRate: 0.001, NLocks: 16, CSLen: 3, Imbalance: 0.30, ColdFrac: 0.03},
		{Name: "Radix", Suite: "splash2", MemRatio: 0.35, WriteFrac: 0.45,
			PrivateLines: 90, SharedLines: 107, GlobalLines: 256,
			SharedFrac: 0.30, GlobalFrac: 0.25, ClusterSize: 32,
			BarrierPeriod: 25000, Imbalance: 0.20, ColdFrac: 0.08},
		{Name: "LU-C", Suite: "splash2", MemRatio: 0.33, WriteFrac: 0.35,
			PrivateLines: 75, SharedLines: 80, GlobalLines: 96,
			SharedFrac: 0.20, GlobalFrac: 0.15, ClusterSize: 8,
			BarrierPeriod: 40000, Imbalance: 0.50, ColdFrac: 0.04},
		{Name: "LU-NC", Suite: "splash2", MemRatio: 0.33, WriteFrac: 0.35,
			PrivateLines: 82, SharedLines: 80, GlobalLines: 128,
			SharedFrac: 0.25, GlobalFrac: 0.15, ClusterSize: 8,
			BarrierPeriod: 35000, Imbalance: 0.50, ColdFrac: 0.04},
		{Name: "Volrend", Suite: "splash2", MemRatio: 0.28, WriteFrac: 0.22,
			PrivateLines: 52, SharedLines: 53, GlobalLines: 64,
			SharedFrac: 0.15, GlobalFrac: 0.10, GlobalWriteFrac: 0.03, ClusterSize: 8,
			LockRate: 0.003, NLocks: 32, CSLen: 2, Imbalance: 0.25, ColdFrac: 0.02},
		{Name: "Water-Sp", Suite: "splash2", MemRatio: 0.28, WriteFrac: 0.25,
			PrivateLines: 60, SharedLines: 26, GlobalLines: 32,
			SharedFrac: 0.08, GlobalFrac: 0.05, GlobalWriteFrac: 0.01, ClusterSize: 8,
			BarrierPeriod: 160000, LockRate: 0.001, NLocks: 16, CSLen: 2, Imbalance: 0.15, ColdFrac: 0.02},
		{Name: "Water-Nsq", Suite: "splash2", MemRatio: 0.30, WriteFrac: 0.28,
			PrivateLines: 63, SharedLines: 40, GlobalLines: 64,
			SharedFrac: 0.14, GlobalFrac: 0.10, GlobalWriteFrac: 0.003, ClusterSize: 8,
			BarrierPeriod: 110000, LockRate: 0.002, NLocks: 16, CSLen: 3, Imbalance: 0.20, ColdFrac: 0.02},
		{Name: "Radiosity", Suite: "splash2", MemRatio: 0.30, WriteFrac: 0.30,
			PrivateLines: 67, SharedLines: 67, GlobalLines: 128,
			SharedFrac: 0.20, GlobalFrac: 0.20, GlobalWriteFrac: 0.01, ClusterSize: 8,
			LockRate: 0.0025, NLocks: 16, CSLen: 3, GlobalLockFrac: 0.15, Imbalance: 0.30, ColdFrac: 0.03},
		{Name: "Ocean", Suite: "splash2", MemRatio: 0.35, WriteFrac: 0.40,
			PrivateLines: 105, SharedLines: 80, GlobalLines: 128,
			SharedFrac: 0.20, GlobalFrac: 0.10, ClusterSize: 16,
			// The paper: "Ocean has a barrier every 50k instructions" —
			// many barriers per checkpoint interval.
			BarrierPeriod: 15000, Imbalance: 0.30, ColdFrac: 0.06},
	}
}

// Raytrace is listed with SPLASH-2 in the paper; its many dynamic locks
// (ray-task queues) chain all processors together, giving a ~100% ICHK.
func Raytrace() *Profile {
	return &Profile{Name: "Raytrace", Suite: "splash2", MemRatio: 0.30, WriteFrac: 0.25,
		PrivateLines: 60, SharedLines: 107, GlobalLines: 256,
		SharedFrac: 0.25, GlobalFrac: 0.40, ClusterSize: 0, // one big cluster
		LockRate: 0.02, NLocks: 64, CSLen: 2, GlobalLockFrac: 1, Imbalance: 0.25, ColdFrac: 0.03}
}

// PARSEC returns the PARSEC profiles of Fig 4.3(b) (simlarge inputs).
func PARSEC() []*Profile {
	return []*Profile{
		{Name: "Blackscholes", Suite: "parsec", MemRatio: 0.28, WriteFrac: 0.30,
			PrivateLines: 75, SharedLines: 24, GlobalLines: 16,
			SharedFrac: 0.02, GlobalFrac: 0, ClusterSize: 4, Imbalance: 0.10, ColdFrac: 0.03},
		{Name: "Fluidanimate", Suite: "parsec", MemRatio: 0.30, WriteFrac: 0.32,
			PrivateLines: 67, SharedLines: 40, GlobalLines: 32,
			SharedFrac: 0.10, GlobalFrac: 0.05, GlobalWriteFrac: 0.005, ClusterSize: 4,
			BarrierPeriod: 120000, LockRate: 0.004, NLocks: 32, CSLen: 2, Imbalance: 0.20, ColdFrac: 0.04},
		{Name: "Ferret", Suite: "parsec", MemRatio: 0.30, WriteFrac: 0.28,
			PrivateLines: 60, SharedLines: 53, GlobalLines: 64,
			SharedFrac: 0.15, GlobalFrac: 0.10, GlobalWriteFrac: 0.01, ClusterSize: 6,
			LockRate: 0.002, NLocks: 12, CSLen: 3, GlobalLockFrac: 0.05, Imbalance: 0.30, ColdFrac: 0.05},
		{Name: "Streamcluster", Suite: "parsec", MemRatio: 0.33, WriteFrac: 0.30,
			PrivateLines: 82, SharedLines: 67, GlobalLines: 96,
			SharedFrac: 0.18, GlobalFrac: 0.12, ClusterSize: 12,
			BarrierPeriod: 28000, Imbalance: 0.30, ColdFrac: 0.08},
	}
}

// Apache models the ab-driven web-server run: request-parallel work on
// private buffers with light sharing through the accept path and a
// read-mostly document cache.
func Apache() *Profile {
	return &Profile{Name: "Apache", Suite: "server", MemRatio: 0.30, WriteFrac: 0.35,
		PrivateLines: 67, SharedLines: 24, GlobalLines: 32,
		SharedFrac: 0.05, GlobalFrac: 0.10, GlobalWriteFrac: 0.005, ClusterSize: 4,
		LockRate: 0.001, NLocks: 4, CSLen: 2, Imbalance: 0.15, ColdFrac: 0.04}
}

// ZipfKV models a memcached-style in-memory key-value server (ROADMAP
// "server-shaped workloads"): request-parallel work on private
// buffers, a large cluster-sharded key space accessed with Zipfian
// popularity — a few hot keys take most of the traffic (ZipfSkew 0.85,
// the regime measured in production cache traces) — bucket locks
// protecting the hot chains, and a small read-mostly global
// configuration region. The hot-key concentration makes its sharing
// pattern unlike anything in the paper's envelope: dirty footprints
// are small but contended, so checkpoint interaction sets stay
// cluster-local while coherence traffic on the hot lines is high.
func ZipfKV() *Profile {
	return &Profile{Name: "ZipfKV", Suite: "server", MemRatio: 0.32, WriteFrac: 0.30,
		PrivateLines: 60, SharedLines: 160, GlobalLines: 32,
		SharedFrac: 0.30, GlobalFrac: 0.04, GlobalWriteFrac: 0.002, ClusterSize: 4,
		ZipfSkew: 0.85,
		LockRate: 0.003, NLocks: 16, CSLen: 2, Imbalance: 0.10, ColdFrac: 0.05}
}

// Uniform is a featureless microbenchmark profile used by unit tests.
func Uniform() *Profile {
	return &Profile{Name: "Uniform", Suite: "micro", MemRatio: 0.34, WriteFrac: 0.35,
		PrivateLines: 40, SharedLines: 24, GlobalLines: 16,
		SharedFrac: 0.10, GlobalFrac: 0.10, ClusterSize: 4}
}

// All returns every application profile in the paper's order —
// SPLASH-2 (including Raytrace), then PARSEC, then the server profiles
// (Apache from the paper, ZipfKV post-paper) — followed by the Uniform
// microbenchmark. All, ByName and Names are backed by the
// same registry, so every name one of them knows is known to the
// others: the CLI/service "unknown -app" listings advertise exactly the
// resolvable vocabulary. Profiles are constructed fresh on every call;
// callers may mutate them freely.
func All() []*Profile {
	out := SPLASH2()
	out = append(out, Raytrace())
	out = append(out, PARSEC()...)
	out = append(out, Apache())
	out = append(out, ZipfKV())
	out = append(out, Uniform())
	return out
}

// registry holds one prototype per profile name, built once from All().
// It is the single source backing ByName and Names, which is what keeps
// the resolvable vocabulary and the listings from drifting apart (it
// also rejects duplicate names at init). Profile is a flat value type
// (scalars and strings only), so handing out copies of the prototypes
// keeps the fresh-instance contract without rebuilding every profile
// per lookup.
var registry, registryNames = func() (map[string]*Profile, []string) {
	m := make(map[string]*Profile)
	var names []string
	for _, p := range All() {
		if _, dup := m[p.Name]; dup {
			panic("workload: duplicate profile name " + p.Name)
		}
		m[p.Name] = p
		names = append(names, p.Name)
	}
	return m, names
}()

// Names returns every registered profile name in All() order.
func Names() []string {
	return append([]string(nil), registryNames...)
}

// ByName returns a fresh instance of the named profile, or nil.
func ByName(name string) *Profile {
	p, ok := registry[name]
	if !ok {
		return nil
	}
	c := *p
	return &c
}
