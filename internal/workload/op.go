// Package workload generates the synthetic instruction streams that
// stand in for the paper's SPLASH-2, PARSEC and Apache runs (Fig 4.3b).
// Each application is a Profile: a parameterisation of the properties
// that determine Rebound's behaviour — communication locality (cluster
// size and shared-footprint mix), barrier frequency, lock rate, write
// footprint per interval, load imbalance and output-I/O rate. Barriers
// and locks are *ops*, expanded by the machine into real loads and
// stores on shared synchronisation lines, so they create exactly the
// dependence chains of Fig 4.2(b).
//
// Streams are deterministic and snapshot-restorable: a stream's state
// is part of a processor's "register state", captured at checkpoints
// and restored on rollback so re-execution regenerates the same ops.
package workload

import "fmt"

// Kind discriminates the op types a stream can emit.
type Kind uint8

// Op kinds.
const (
	// Compute burns Arg cycles (and counts Arg instructions).
	Compute Kind = iota
	// Load reads line Arg.
	Load
	// Store writes line Arg.
	Store
	// Barrier synchronises all processors on barrier Arg.
	Barrier
	// Lock acquires lock Arg.
	Lock
	// Unlock releases lock Arg.
	Unlock
	// OutputIO performs output I/O, which must be preceded by a
	// checkpoint (§6.4).
	OutputIO
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	case Barrier:
		return "barrier"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	case OutputIO:
		return "io"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one unit of work emitted by a stream.
type Op struct {
	Kind Kind
	// Arg is the cycle count (Compute), line address (Load/Store) or
	// synchronisation object id (Barrier/Lock/Unlock).
	Arg uint64
}

// Instructions returns how many instructions the op represents.
func (o Op) Instructions() uint64 {
	if o.Kind == Compute {
		return o.Arg
	}
	return 1
}

// Address-space layout (line-granular). Each region is disjoint.
const (
	// PrivateBase(core) + offset: per-core private data.
	privateStride = 1 << 24
	// Cluster-shared regions.
	clusterBase   = 1 << 40
	clusterStride = 1 << 20
	// Chip-global shared region.
	globalBase = 1 << 48
)

// PrivateLine returns the line address of the core's private slot i.
func PrivateLine(core int, i int) uint64 {
	return uint64(core)*privateStride + uint64(i) + 1
}

// ClusterLine returns the line address of shared slot i of cluster c.
func ClusterLine(c int, i int) uint64 {
	return clusterBase + uint64(c)*clusterStride + uint64(i)
}

// GlobalLine returns the line address of chip-global shared slot i.
func GlobalLine(i int) uint64 { return globalBase + uint64(i) }

// coldBase hosts the per-core read-only streaming regions.
const coldBase = uint64(1) << 52

// ColdLine returns the line address of the core's cold-stream slot i.
func ColdLine(core int, i uint64) uint64 {
	return coldBase + uint64(core)<<30 + i
}
