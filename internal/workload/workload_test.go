package workload

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesWellFormed(t *testing.T) {
	apps := All()
	if len(apps) != 20 {
		t.Fatalf("got %d profiles, want 20 (12 SPLASH-2 + Raytrace + 4 PARSEC + Apache + ZipfKV + Uniform)", len(apps))
	}
	seen := map[string]bool{}
	for _, p := range apps {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("bad or duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.MemRatio <= 0 || p.MemRatio >= 1 {
			t.Fatalf("%s: MemRatio %f out of range", p.Name, p.MemRatio)
		}
		if p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Fatalf("%s: WriteFrac %f out of range", p.Name, p.WriteFrac)
		}
		if p.PrivateLines <= 0 {
			t.Fatalf("%s: no private footprint", p.Name)
		}
	}
	if ByName("Ocean") == nil || ByName("Apache") == nil || ByName("Uniform") == nil {
		t.Fatal("ByName lookup failed")
	}
	if ByName("NoSuchApp") != nil {
		t.Fatal("ByName invented a profile")
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	pa := PrivateLine(63, 1<<20)
	ca := ClusterLine(15, 1<<19)
	ga := GlobalLine(1 << 19)
	if pa >= clusterBase {
		t.Fatal("private region overlaps cluster region")
	}
	if ca >= globalBase || ca < clusterBase {
		t.Fatal("cluster region out of bounds")
	}
	if ga < globalBase {
		t.Fatal("global region out of bounds")
	}
	if PrivateLine(0, 0) == 0 {
		t.Fatal("line 0 must stay unused (sync lines live elsewhere)")
	}
}

func TestStreamDeterminismAndSnapshot(t *testing.T) {
	p := Uniform()
	a := NewStream(p, 2, 8, 42)
	b := NewStream(p, 2, 8, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverge at op %d", i)
		}
	}
	snap := a.Snapshot()
	want := make([]Op, 200)
	for i := range want {
		want[i] = a.Next()
	}
	a.Restore(snap)
	for i := range want {
		if got := a.Next(); got != want[i] {
			t.Fatalf("replay diverges at op %d: %v vs %v", i, got, want[i])
		}
	}
}

func TestStreamsDifferAcrossCores(t *testing.T) {
	p := Uniform()
	a := NewStream(p, 0, 8, 42)
	b := NewStream(p, 1, 8, 42)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different cores produced identical streams")
	}
}

func TestLockUnlockPairing(t *testing.T) {
	p := Raytrace() // lock-heavy
	s := NewStream(p, 0, 4, 7)
	depth := 0
	locks := 0
	for i := 0; i < 50000; i++ {
		op := s.Next()
		switch op.Kind {
		case Lock:
			if depth != 0 {
				t.Fatal("nested lock emitted")
			}
			depth++
			locks++
		case Unlock:
			if depth != 1 {
				t.Fatal("unlock without lock")
			}
			depth--
		}
	}
	if locks == 0 {
		t.Fatal("lock-heavy profile emitted no locks")
	}
}

func TestBarrierCadence(t *testing.T) {
	p := ByName("Ocean")
	s := NewStream(p, 0, 4, 9)
	var instrs uint64
	var last uint64
	barriers := 0
	for i := 0; i < 200000 && barriers < 10; i++ {
		op := s.Next()
		instrs += op.Instructions()
		if op.Kind == Barrier {
			gap := instrs - last
			last = instrs
			if gap > uint64(2*p.BarrierPeriod) {
				t.Fatalf("barrier gap %d far exceeds period %d", gap, p.BarrierPeriod)
			}
			barriers++
		}
	}
	if barriers < 10 {
		t.Fatal("Ocean emitted too few barriers")
	}
}

func TestIOCadence(t *testing.T) {
	p := Uniform()
	p.IOPeriod = 5000
	s := NewStream(p, 0, 4, 3)
	ios := 0
	for i := 0; i < 100000; i++ {
		if s.Next().Kind == OutputIO {
			ios++
		}
	}
	if ios < 3 {
		t.Fatalf("IO ops = %d, want several", ios)
	}
}

func TestMemRatioApproximatelyHonoured(t *testing.T) {
	p := Uniform() // MemRatio 0.34
	s := NewStream(p, 1, 8, 5)
	var instrs, memops uint64
	for i := 0; i < 200000; i++ {
		op := s.Next()
		instrs += op.Instructions()
		if op.Kind == Load || op.Kind == Store {
			memops++
		}
	}
	ratio := float64(memops) / float64(instrs)
	if ratio < 0.15 || ratio > 0.5 {
		t.Fatalf("memory ratio %.3f wildly off target %.2f", ratio, p.MemRatio)
	}
}

// Property: ops are well-formed for any profile and core.
func TestQuickOpsWellFormed(t *testing.T) {
	apps := All()
	f := func(seed uint64, coreRaw, appRaw uint8) bool {
		p := apps[int(appRaw)%len(apps)]
		n := 8
		s := NewStream(p, int(coreRaw)%n, n, seed)
		for i := 0; i < 300; i++ {
			op := s.Next()
			switch op.Kind {
			case Compute:
				if op.Arg == 0 {
					return false
				}
			case Load, Store:
				if op.Arg == 0 {
					return false // line 0 reserved
				}
			case Barrier, Lock, Unlock, OutputIO:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
