package workload

import (
	"math"

	"repro/internal/sim"
)

// Profile parameterises one application's behaviour.
type Profile struct {
	Name string
	// Suite is "splash2", "parsec" or "server".
	Suite string

	// MemRatio is the fraction of instructions that are memory
	// operations; the rest are compute.
	MemRatio float64
	// WriteFrac is the fraction of memory operations that are stores.
	WriteFrac float64

	// PrivateLines, SharedLines and GlobalLines size the three data
	// regions (in cache lines). PrivateLines dominates the dirty
	// footprint per checkpoint interval.
	PrivateLines int
	SharedLines  int
	GlobalLines  int
	// SharedFrac is the fraction of memory ops that touch shared data;
	// of those, GlobalFrac go to the chip-global region and the rest to
	// the core's cluster region.
	SharedFrac float64
	GlobalFrac float64
	// GlobalWriteFrac is the store fraction for chip-global accesses.
	// Global data is mostly read-shared in the modelled applications
	// (lookup tables, scene data, configuration); leaving it at the
	// full WriteFrac would transitively couple every cluster into one
	// interaction set, which the paper's workloads do not show. A zero
	// value defaults to WriteFrac/5.
	GlobalWriteFrac float64
	// ClusterSize is the communication-locality knob: cores are grouped
	// into clusters of this many; cluster-shared accesses stay inside.
	// 0 means "all cores form one cluster".
	ClusterSize int
	// ZipfSkew skews shared-region line popularity Zipf-style (server
	// key-value workloads: a few hot keys take most accesses). 0 means
	// uniform — the historical behaviour of every paper profile; valid
	// skews are [0, 1). A flat scalar, like every Profile knob: streams
	// derive the skewed index per op from their RNG, so no dynamic
	// state is added and the persisted stream codec is untouched.
	ZipfSkew float64

	// BarrierPeriod is the number of instructions between global
	// barriers (0 = no barriers). The paper notes Ocean barriers every
	// ~50k instructions.
	BarrierPeriod int
	// LockRate is the per-op probability of entering a lock-protected
	// critical section; NLocks is the size of the lock pool; CSLen is
	// the number of ops inside a critical section. Locks are local to a
	// core's cluster (fine-grained locks protect neighbouring data);
	// GlobalLockFrac is the fraction of acquisitions that instead grab
	// a chip-global lock (central task queues — Raytrace, Radiosity,
	// Cholesky), which chains clusters together.
	LockRate       float64
	NLocks         int
	CSLen          int
	GlobalLockFrac float64

	// Imbalance skews compute-burst lengths across cores: core i runs
	// bursts scaled by 1 + Imbalance*i/(n-1). 0 = perfectly balanced.
	Imbalance float64

	// ColdFrac is the fraction of memory ops that stream through a
	// large, per-core, read-only cold region (grid sweeps, key scans,
	// input data): they always miss to main memory. This is the
	// steady demand-DRAM traffic that bursty checkpoint writebacks
	// interfere with (the IPCDelay of Fig 6.5). ColdLines sizes the
	// region (default 1<<18 lines).
	ColdFrac  float64
	ColdLines int

	// IOPeriod is the number of instructions between output-I/O
	// operations (0 = none). IOCore restricts the I/O to one core
	// (-1/0-default = every core); Fig 6.7 forces a single processor to
	// checkpoint at twice the checkpoint frequency this way.
	IOPeriod int
	IOCore   int
}

// clusterOf returns the cluster index of a core.
func (p *Profile) clusterOf(core, nprocs int) int {
	cs := p.ClusterSize
	if cs <= 0 || cs > nprocs {
		cs = nprocs
	}
	return core / cs
}

// burst returns the nominal compute burst length (in instructions) so
// that MemRatio holds on average: one memory op per burst.
func (p *Profile) burst() int {
	if p.MemRatio <= 0 {
		return 16
	}
	b := int((1-p.MemRatio)/p.MemRatio + 0.5)
	if b < 1 {
		b = 1
	}
	return b
}

// Stream generates the op sequence for one core. All state is in plain
// fields so the whole struct value is a snapshot.
type Stream struct {
	prof   *Profile
	core   int
	nprocs int

	// burst and scaledBurst cache Profile.burst() and its
	// imbalance-scaled value for this core: both are per-op constants,
	// and the float arithmetic showed up in the hot-path profile.
	burst       int
	scaledBurst int

	rng sim.RNG

	// instrs counts instructions emitted (compute weight included).
	instrs uint64
	// sinceBarrier and sinceIO count instructions since the last
	// barrier/IO op.
	sinceBarrier uint64
	sinceIO      uint64
	// barrierID cycles through barrier episodes.
	barrierID uint64
	// cs tracks the current critical section: ops remaining and lock id.
	csRemaining int
	csLock      uint64
	// coldCursor walks the cold streaming region sequentially.
	coldCursor uint64
	// pendingMem alternates compute bursts with memory ops.
	pendingMem bool
}

// NewStream returns the op stream of core (of nprocs) under p.
func NewStream(p *Profile, core, nprocs int, seed uint64) *Stream {
	b := p.burst()
	// Imbalance: later cores run longer bursts.
	scale := 1.0
	if p.Imbalance > 0 && nprocs > 1 {
		scale = 1 + p.Imbalance*float64(core)/float64(nprocs-1)
	}
	scaled := int(float64(b)*scale + 0.5)
	return &Stream{
		prof:        p,
		core:        core,
		nprocs:      nprocs,
		burst:       b,
		scaledBurst: scaled,
		rng:         *sim.NewRNG(seed ^ (uint64(core)+1)*0x9e3779b97f4a7c15),
	}
}

// State is an opaque snapshot of a stream (its full value).
type State struct{ s Stream }

// Snapshot captures the stream for checkpointing.
func (s *Stream) Snapshot() State { return State{s: *s} }

// Restore rewinds the stream to a snapshot (rollback).
func (s *Stream) Restore(st State) { *s = st.s }

// StateImage is the serializable form of a stream State: the dynamic
// fields only. A stream's identity — which profile it reads, its core
// and processor count, and the derived burst constants — is not
// serialized; StateFromImage reconstructs it from the machine the image
// is decoded into, so a persisted snapshot can never smuggle a stale
// profile pointer into a live machine.
type StateImage struct {
	RNG          uint64 `json:"rng"`
	Instrs       uint64 `json:"instrs"`
	SinceBarrier uint64 `json:"since_barrier"`
	SinceIO      uint64 `json:"since_io"`
	BarrierID    uint64 `json:"barrier_id"`
	CSRemaining  int    `json:"cs_remaining"`
	CSLock       uint64 `json:"cs_lock"`
	ColdCursor   uint64 `json:"cold_cursor"`
	PendingMem   bool   `json:"pending_mem"`
}

// Image extracts the serializable dynamic state of a captured State.
func (st State) Image() StateImage {
	return StateImage{
		RNG:          st.s.rng.State(),
		Instrs:       st.s.instrs,
		SinceBarrier: st.s.sinceBarrier,
		SinceIO:      st.s.sinceIO,
		BarrierID:    st.s.barrierID,
		CSRemaining:  st.s.csRemaining,
		CSLock:       st.s.csLock,
		ColdCursor:   st.s.coldCursor,
		PendingMem:   st.s.pendingMem,
	}
}

// StateFromImage rebuilds a State for core (of nprocs) streaming from
// p, overlaying the image's dynamic fields onto a freshly-derived
// identity (the seed passed to NewStream is irrelevant: the image's RNG
// state replaces it).
func StateFromImage(p *Profile, core, nprocs int, im StateImage) State {
	s := NewStream(p, core, nprocs, 1)
	s.rng.Restore(im.RNG)
	s.instrs = im.Instrs
	s.sinceBarrier = im.SinceBarrier
	s.sinceIO = im.SinceIO
	s.barrierID = im.BarrierID
	s.csRemaining = im.CSRemaining
	s.csLock = im.CSLock
	s.coldCursor = im.ColdCursor
	s.pendingMem = im.PendingMem
	return s.Snapshot()
}

// Instructions returns the instructions emitted so far.
func (s *Stream) Instructions() uint64 { return s.instrs }

// maxZipfSkew caps Profile.ZipfSkew below 1: the inverse-CDF exponent
// 1/(1-s) diverges at 1, and real measured key-popularity skews sit
// well under it (memcached traces cluster around 0.9).
const maxZipfSkew = 0.99

// skewIndex samples a line index in [0, n) under the profile's
// popularity skew: inverse-CDF sampling of the bounded power law,
// index = ⌊n·u^(1/(1-s))⌋ — a closed form needing no per-n tables and
// no stream state beyond the RNG draw. Skew 0 degrades to exactly the
// historical uniform draw (same RNG consumption), so profiles without
// the knob replay bit-identically.
func (s *Stream) skewIndex(n int) int {
	sk := s.prof.ZipfSkew
	if sk <= 0 {
		return s.rng.Intn(n)
	}
	if sk > maxZipfSkew {
		sk = maxZipfSkew
	}
	i := int(math.Pow(s.rng.Float64(), 1/(1-sk)) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// pickAddr chooses a target line for a memory op and reports whether it
// falls in the chip-global region.
func (s *Stream) pickAddr() (addr uint64, global bool) {
	p := s.prof
	if p.SharedFrac > 0 && s.rng.Float64() < p.SharedFrac {
		if p.GlobalFrac > 0 && s.rng.Float64() < p.GlobalFrac {
			n := p.GlobalLines
			if n < 1 {
				n = 1
			}
			return GlobalLine(s.rng.Intn(n)), true
		}
		n := p.SharedLines
		if n < 1 {
			n = 1
		}
		return ClusterLine(p.clusterOf(s.core, s.nprocs), s.skewIndex(n)), false
	}
	n := p.PrivateLines
	if n < 1 {
		n = 1
	}
	return PrivateLine(s.core, s.rng.Intn(n)), false
}

func (s *Stream) account(op Op) Op {
	s.instrs += op.Instructions()
	s.sinceBarrier += op.Instructions()
	s.sinceIO += op.Instructions()
	return op
}

// Next emits the next op. Streams are infinite; the machine decides
// when to stop.
func (s *Stream) Next() Op {
	p := s.prof

	// Inside a critical section: emit its body, then the unlock.
	if s.csRemaining > 0 {
		s.csRemaining--
		if s.csRemaining == 0 {
			return s.account(Op{Kind: Unlock, Arg: s.csLock})
		}
		// Critical sections touch shared data (that is their point) —
		// under a popularity skew the hot keys are exactly what the
		// bucket locks protect.
		n := p.SharedLines
		if n < 1 {
			n = 1
		}
		addr := ClusterLine(p.clusterOf(s.core, s.nprocs), s.skewIndex(n))
		k := Load
		if s.rng.Float64() < 0.6 {
			k = Store
		}
		return s.account(Op{Kind: k, Arg: addr})
	}

	// Barrier due?
	if p.BarrierPeriod > 0 && s.sinceBarrier >= uint64(p.BarrierPeriod) {
		s.sinceBarrier = 0
		s.barrierID++
		return s.account(Op{Kind: Barrier, Arg: s.barrierID % 4})
	}

	// Output I/O due?
	if p.IOPeriod > 0 && s.sinceIO >= uint64(p.IOPeriod) {
		s.sinceIO = 0
		if p.IOCore <= 0 || p.IOCore-1 == s.core {
			return s.account(Op{Kind: OutputIO})
		}
	}

	// Alternate compute bursts with memory/sync ops.
	if !s.pendingMem {
		s.pendingMem = true
		// Jitter to avoid lockstep.
		n := s.scaledBurst + s.rng.Intn(s.burst+1)
		if n < 1 {
			n = 1
		}
		return s.account(Op{Kind: Compute, Arg: uint64(n)})
	}
	s.pendingMem = false

	// Enter a critical section?
	if p.LockRate > 0 && s.rng.Float64() < p.LockRate {
		nl := p.NLocks
		if nl < 1 {
			nl = 1
		}
		if p.GlobalLockFrac > 0 && s.rng.Float64() < p.GlobalLockFrac {
			// Chip-global lock ids live below the per-cluster spaces.
			s.csLock = uint64(s.rng.Intn(nl))
		} else {
			cluster := p.clusterOf(s.core, s.nprocs)
			s.csLock = uint64(cluster+1)<<16 + uint64(s.rng.Intn(nl))
		}
		cs := p.CSLen
		if cs < 1 {
			cs = 2
		}
		s.csRemaining = cs + 1 // body ops + the unlock
		return s.account(Op{Kind: Lock, Arg: s.csLock})
	}

	// Cold streaming read?
	if p.ColdFrac > 0 && s.rng.Float64() < p.ColdFrac {
		n := p.ColdLines
		if n <= 0 {
			n = 1 << 18
		}
		s.coldCursor++
		return s.account(Op{Kind: Load, Arg: ColdLine(s.core, s.coldCursor%uint64(n))})
	}

	// Plain memory op.
	addr, global := s.pickAddr()
	wf := p.WriteFrac
	if global {
		wf = p.GlobalWriteFrac
		if wf == 0 {
			wf = p.WriteFrac / 5
		}
	}
	k := Load
	if s.rng.Float64() < wf {
		k = Store
	}
	return s.account(Op{Kind: k, Arg: addr})
}
