package workload

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// opStreamDigest hashes the first n ops of a stream (kind and argument
// of every op) into a stable hex digest.
func opStreamDigest(s *Stream, n int) string {
	h := fnv.New64a()
	for i := 0; i < n; i++ {
		op := s.Next()
		fmt.Fprintf(h, "%d:%d|", op.Kind, op.Arg)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestZipfKVGoldenDeterminism pins the exact op sequence ZipfKV
// generates: the skewIndex sampling path (math.Pow over the stream
// RNG) is part of the workload's deterministic identity, and any
// drift in it silently changes every stored result for the profile.
// The digests were recorded from the first implementation; a failure
// here means the workload's behaviour changed and every ZipfKV cell
// in every store is stale.
func TestZipfKVGoldenDeterminism(t *testing.T) {
	golden := map[int]string{ // core -> digest of the first 20k ops
		0: "a1d78f29562d92f9",
		3: "74186f0fd4758eb2",
		7: "426bdbe2eeae8c43",
	}
	for core, want := range golden {
		s := NewStream(ZipfKV(), core, 8, 42)
		if got := opStreamDigest(s, 20_000); got != want {
			t.Errorf("core %d digest = %s, want %s", core, got, want)
		}
	}
	// And the registry serves the same profile the constructor builds.
	a := opStreamDigest(NewStream(ZipfKV(), 1, 8, 7), 5_000)
	b := opStreamDigest(NewStream(ByName("ZipfKV"), 1, 8, 7), 5_000)
	if a != b {
		t.Fatalf("ByName(ZipfKV) stream differs from ZipfKV(): %s vs %s", a, b)
	}
}

// TestZipfKVHotKeys: the skew must actually concentrate traffic — the
// hottest cluster-shared line takes far more than the uniform share of
// shared accesses, and snapshot/restore replays the skewed sequence
// exactly (the closed-form sampler keeps all state in the RNG).
func TestZipfKVHotKeys(t *testing.T) {
	p := ZipfKV()
	s := NewStream(p, 0, 8, 11)
	counts := map[uint64]int{}
	total := 0
	for i := 0; i < 300_000; i++ {
		op := s.Next()
		if op.Kind != Load && op.Kind != Store {
			continue
		}
		if op.Arg >= clusterBase && op.Arg < globalBase {
			counts[op.Arg]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no cluster-shared accesses observed")
	}
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	uniformShare := float64(total) / float64(p.SharedLines)
	if ratio := float64(hottest) / uniformShare; ratio < 3 {
		t.Fatalf("hottest key only %.1fx the uniform share; skew %.2f should concentrate traffic",
			ratio, p.ZipfSkew)
	}

	// Snapshot/restore replay through the skewed path.
	snap := s.Snapshot()
	want := make([]Op, 500)
	for i := range want {
		want[i] = s.Next()
	}
	s.Restore(snap)
	for i := range want {
		if got := s.Next(); got != want[i] {
			t.Fatalf("replay diverges at op %d: %v vs %v", i, got, want[i])
		}
	}
}
