package workload

import "testing"

// The profile registry contract: All, Names and ByName are backed by
// one list, so every listed name resolves and every resolvable name is
// listed (the "Uniform resolves but is not advertised" bug).
func TestRegistryListedAndResolvableAgree(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(all))
	}
	seen := map[string]bool{}
	for i, name := range names {
		if seen[name] {
			t.Fatalf("duplicate profile name %q", name)
		}
		seen[name] = true
		p := ByName(name)
		if p == nil {
			t.Fatalf("listed name %q does not resolve", name)
		}
		if p.Name != name || all[i].Name != name {
			t.Fatalf("registry order broken at %d: %q / %q / %q", i, name, p.Name, all[i].Name)
		}
	}
	// And vice versa: the registry holds nothing beyond the listing.
	for name := range registry {
		if !seen[name] {
			t.Fatalf("resolvable name %q missing from Names()", name)
		}
	}
}

func TestRegistryIncludesUniform(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "Uniform" {
			found = true
		}
	}
	if !found {
		t.Fatal("Uniform resolves via ByName but is not listed by Names()/All()")
	}
	if ByName("Uniform") == nil {
		t.Fatal("Uniform does not resolve")
	}
}

func TestByNameUnknownAndFreshInstances(t *testing.T) {
	if ByName("NoSuchApp") != nil {
		t.Fatal("unknown app resolved")
	}
	a, b := ByName("FFT"), ByName("FFT")
	if a == b {
		t.Fatal("ByName returned a shared instance")
	}
	a.MemRatio = 0.99
	if ByName("FFT").MemRatio == 0.99 {
		t.Fatal("mutating a resolved profile leaked into the registry")
	}
}
