package explore

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/store"
)

// testScale keeps cell evaluations cheap (mirrors the campaign test
// scale): small budget, short intervals, short detection latency.
var testScale = harness.Scale{Name: "exp-test", ProcsLarge: 8, ProcsSmall: 4,
	InstrPerProc: 30_000, Interval: 8_000, DetectLatency: 2_000, Seed: 1}

// testSpec is the canonical small exploration: two schemes crossed
// with two intervals on a 4-proc FFT, 8 trials per cell.
func testSpec(strategy string) Spec {
	return Spec{
		App: "FFT", Procs: 4, Scale: testScale,
		Schemes:   []string{"Rebound", "Global_DWB"},
		Intervals: []uint64{8_000, 16_000},
		Trials:    8, Faults: 2, Window: 60_000, Seed: 7,
		Strategy: strategy,
	}
}

func TestNormalizeAndKey(t *testing.T) {
	a := testSpec(StrategyHalving)
	// Same space, different axis order, defaulted fields spelled out.
	b := a
	b.Schemes = []string{"Global_DWB", "Rebound", "Rebound"}
	b.Intervals = []uint64{16_000, 8_000}
	b.Strategy = ""
	b.Faults = 0
	b.Faults = 2
	if a.Key() != b.Key() {
		t.Fatalf("axis order changed the key:\n%s\n%s", a.Key(), b.Key())
	}
	n := a.Normalize()
	if n.Schemes[0] != "Global_DWB" || n.Schemes[1] != "Rebound" {
		t.Fatalf("schemes not in SchemeNames order: %v", n.Schemes)
	}
	if len(n.WSIGBits) != 1 || len(n.DepSets) != 1 || len(n.Shards) != 1 {
		t.Fatalf("knob axes not defaulted: %+v", n)
	}
	// Shards 0 and 1 are one layout, hence one point.
	c := a
	c.Shards = []int{0, 1}
	if len(c.Normalize().Shards) != 1 {
		t.Fatalf("shards 0 and 1 did not collapse: %v", c.Normalize().Shards)
	}
	if got := len(a.Cells()); got != 4 {
		t.Fatalf("cells = %d, want 4", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := a
	bad.Schemes = []string{"NoSuchScheme"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown scheme validated")
	}
	bad = a
	bad.Strategy = "random"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown strategy validated")
	}
}

func TestFrontierDominance(t *testing.T) {
	rs := []CellResult{
		{Availability: 0.99, Overhead: 0.10}, // dominated by 2
		{Availability: 0.95, Overhead: 0.02}, // frontier (cheapest)
		{Availability: 0.99, Overhead: 0.05}, // frontier (best avail)
		{Availability: 0.90, Overhead: 0.08}, // dominated by 1 and 2
		{Availability: 0.99, Overhead: 0.05}, // tie with 2: both survive
	}
	got := frontier(rs)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

// TestRunDeterminismAndResume: the same Spec explored by a fresh
// explorer, re-explored by the same explorer (report served), and
// explored by a new explorer over the same store (resume path) yields
// byte-identical FrontierReport JSON — and the resumed run simulates
// zero cells.
func TestRunDeterminismAndResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(StrategyHalving)

	e1 := NewLocalExplorer(harness.NewRunner(2), st)
	rep1, err := e1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ev, _, _ := e1.Counters(); ev == 0 {
		t.Fatal("fresh exploration evaluated nothing")
	}
	b1, _ := json.Marshal(rep1)

	// Same explorer again: whole report served from the store.
	rep2, err := e1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, served := e1.Counters(); served != 1 {
		t.Fatalf("report not served from store (served=%d)", served)
	}
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Fatal("served report differs from computed report")
	}

	// New process simulation: fresh store handle, fresh explorer, but
	// the reports namespace wiped so the cells must carry the resume.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wipeReports(t, st2)
	e2 := NewLocalExplorer(harness.NewRunner(1), st2)
	rep3, err := e2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ev, hits, _ := e2.Counters()
	if ev != 0 {
		t.Fatalf("resumed exploration re-evaluated %d cells, want 0", ev)
	}
	if hits == 0 {
		t.Fatal("resumed exploration hit no stored cells")
	}
	b3, _ := json.Marshal(rep3)
	if string(b1) != string(b3) {
		t.Fatalf("resumed report differs:\n%s\n%s", b1, b3)
	}

	// Memory-only explorer, serial runner: byte-identical too (the
	// report is a pure function of the spec, not of persistence).
	e3 := NewLocalExplorer(harness.NewRunner(1), nil)
	rep4, err := e3.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b4, _ := json.Marshal(rep4)
	if string(b1) != string(b4) {
		t.Fatalf("memory-only report differs:\n%s\n%s", b1, b4)
	}
}

// wipeReports deletes the stored frontier reports, leaving cells.
func wipeReports(t *testing.T, st *store.Store) {
	t.Helper()
	ns, err := st.Namespace("explore", "reports")
	if err != nil {
		t.Fatal(err)
	}
	names, err := ns.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := os.Remove(filepath.Join(ns.Dir(), n+".json")); err != nil {
			t.Fatal(err)
		}
	}
}

// halvingSpec is a 16-cell space (2 schemes x 2 intervals x 2 WSIG
// widths x 2 dependence-set counts) wide enough that the seeding
// rung's prune has real work: most of the space sits at clearly
// higher overhead than its interval's cheapest cell, so halving can
// rule it out on two trials and spend the full budget only on the
// handful of contenders.
func halvingSpec(strategy string) Spec {
	s := testSpec(strategy)
	s.Intervals = []uint64{2_000, 4_000}
	s.WSIGBits = []int{0, 64}
	s.DepSets = []int{0, 2}
	return s
}

// TestHalvingMatchesGridCheaper: successive halving reaches the same
// Pareto frontier as the exhaustive grid while spending at most half
// of the grid's trial budget — the economics the report's ledger
// exposes.
func TestHalvingMatchesGridCheaper(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewLocalExplorer(harness.NewRunner(0), st)

	grid := halvingSpec(StrategyGrid)
	halv := halvingSpec(StrategyHalving)
	grep, err := e.Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	hrep, err := e.Run(context.Background(), halv)
	if err != nil {
		t.Fatal(err)
	}

	if grep.TrialsSpent != grep.GridTrials {
		t.Fatalf("grid ledger: spent %d, grid %d", grep.TrialsSpent, grep.GridTrials)
	}
	if hrep.GridTrials != grep.GridTrials {
		t.Fatalf("grid budgets disagree: %d vs %d", hrep.GridTrials, grep.GridTrials)
	}
	if hrep.TrialsSpent*2 > hrep.GridTrials {
		t.Fatalf("halving spent %d of %d grid trials (> 50%%)", hrep.TrialsSpent, hrep.GridTrials)
	}
	if len(hrep.Rungs) != 2 || hrep.Rungs[0].Trials != 2 || hrep.Rungs[1].Trials != 8 {
		t.Fatalf("halving rung schedule = %+v", hrep.Rungs)
	}

	gf, _ := json.Marshal(grep.FrontierCells())
	hf, _ := json.Marshal(hrep.FrontierCells())
	if string(gf) != string(hf) {
		t.Fatalf("frontiers differ:\ngrid:    %s\nhalving: %s", gf, hf)
	}
	if grep.Dominated != len(grid.Cells())-len(grep.Frontier) {
		t.Fatalf("grid dominated = %d", grep.Dominated)
	}
	if hrep.Dominated != len(halv.Cells())-len(hrep.Frontier) {
		t.Fatalf("halving dominated = %d", hrep.Dominated)
	}
}

// TestSharedCellsAcrossSpecs: two different explorations whose spaces
// intersect share the intersection's evaluations through the flat
// cells namespace.
func TestSharedCellsAcrossSpecs(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewLocalExplorer(harness.NewRunner(0), st)

	a := testSpec(StrategyGrid)
	a.Schemes = []string{"Rebound"}
	a.Intervals = []uint64{8_000}
	if _, err := e.Run(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	ev1, _, _ := e.Counters()

	b := testSpec(StrategyGrid)
	b.Schemes = []string{"Rebound", "Global_DWB"}
	b.Intervals = []uint64{8_000}
	if _, err := e.Run(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	ev2, hits, _ := e.Counters()
	if hits == 0 {
		t.Fatal("intersecting exploration reused nothing")
	}
	// b has two cells; the Rebound one came from a's run.
	if ev2-ev1 != 1 {
		t.Fatalf("second exploration evaluated %d cells, want 1", ev2-ev1)
	}
}

// TestCorruptCellRecordIsReEvaluated: a torn or foreign record in the
// shared cells namespace costs its own re-computation, never a wrong
// report.
func TestCorruptCellRecordIsReEvaluated(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(StrategyGrid)
	spec.Schemes = []string{"Rebound"}
	spec.Intervals = []uint64{8_000}

	e1 := NewLocalExplorer(harness.NewRunner(0), st)
	rep1, err := e1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)

	// Corrupt the one cell record in place (valid JSON, wrong
	// identity) and drop the report.
	ns, err := st.Namespace("explore", "cells")
	if err != nil {
		t.Fatal(err)
	}
	names, err := ns.Names()
	if err != nil || len(names) != 1 {
		t.Fatalf("cells = %v (%v)", names, err)
	}
	if err := ns.PutJSON(names[0], map[string]string{"campaign_key": "bogus"}); err != nil {
		t.Fatal(err)
	}
	wipeReports(t, st)

	e2 := NewLocalExplorer(harness.NewRunner(0), st)
	rep2, err := e2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ev, _, _ := e2.Counters()
	if ev != 1 {
		t.Fatalf("corrupt cell re-evaluated %d times, want 1", ev)
	}
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Fatal("re-evaluated report differs from the original")
	}
}
