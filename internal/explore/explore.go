// Package explore is the closed-loop scheme-space optimizer over the
// campaign and harness engines: given a workload and a search space —
// a scheme set crossed with checkpoint-interval, write-signature,
// Dep-set and shard axes — it evaluates candidate cells against a
// two-objective frontier (verified availability from fault campaigns,
// maximized, against runtime overhead from fault-free runs, minimized)
// and reports the Pareto-dominant configurations.
//
// Two strategies share one evaluation substrate. "grid" evaluates
// every cell at the full trial budget — the exhaustive reference.
// "halving" (the default) seeds the grid at a quarter of the budget,
// then spends the remaining trials only on cells the low-fidelity rung
// left Pareto-undominated: the classic successive-halving economy,
// reaching the same frontier for a fraction of the grid's trials
// (the efficiency tests pin the ratio).
//
// Determinism contract, inherited from the layers below: a cell's
// evaluation is a pure function of its campaign spec (campaign.TrialSeed
// fault placement, harness.DeriveSeed machine streams), so the
// FrontierReport is a pure function of the explore Spec — byte-identical
// across fresh processes, resumed explorations and cluster-routed
// evaluation. Budget accounting (TrialsSpent) is likewise charged from
// the spec alone, whether a cell was simulated or served from the
// store, so the report's economics never leak cache state.
//
// Persistence: with a store attached, every evaluated cell persists in
// the shared explore/cells namespace under its campaign content
// address — incremental across restarts and shared across explorations
// and users (two Specs that intersect share the intersection) — and
// each finished exploration's report persists under its own key in
// explore/reports. The Counters economics (evaluated vs store hits)
// are how the smoke tests assert a re-run simulates nothing.
package explore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/store"
)

// Spec describes one exploration: the fixed workload (App, Procs,
// Scale), the search space (Schemes × Intervals × WSIGBits × DepSets ×
// Shards), the per-cell campaign grid (Trials, Faults, Seed) and the
// search strategy. Equal normalized Specs denote the same exploration:
// same key, same cells, same FrontierReport bytes.
type Spec struct {
	App   string        `json:"app"`
	Procs int           `json:"procs"`
	Scale harness.Scale `json:"scale"`

	// The search space. Schemes is required; empty Intervals defaults
	// to the scale's interval, and empty knob axes to the machine
	// default (0). Axes are sorted and deduplicated by Normalize.
	Schemes   []string `json:"schemes"`
	Intervals []uint64 `json:"intervals,omitempty"`
	WSIGBits  []int    `json:"wsigbits,omitempty"`
	DepSets   []int    `json:"depsets,omitempty"`
	Shards    []int    `json:"shards,omitempty"`

	// Trials is the full per-cell campaign budget; Faults the faults
	// per trial; Seed folds into every trial's fault placement.
	// Window and DetectLatency pass through to every cell's campaign
	// (0 selects the campaign defaults).
	Trials        int    `json:"trials"`
	Faults        int    `json:"faults"`
	Window        uint64 `json:"window,omitempty"`
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	Seed          uint64 `json:"seed"`

	// Strategy is "halving" (default) or "grid".
	Strategy string `json:"strategy"`
}

// Strategy names.
const (
	StrategyGrid    = "grid"
	StrategyHalving = "halving"
)

// MaxCells bounds the cross-product: large enough for any serious
// sweep, small enough that one request cannot ask a service to run an
// absurd number of campaigns.
const MaxCells = 4096

// Normalize returns the canonical form of the spec: defaulted axes,
// each axis sorted ascending and deduplicated (Schemes in SchemeNames
// order — the order the evaluation introduces them), zero Procs
// resolved like every other surface (harness.DefaultProcs), zero
// Faults to 1, empty Strategy to halving. Key, Cells and Run all
// operate on the normalized spec, so two requests that differ only in
// axis order or defaulting are the same exploration.
func (s Spec) Normalize() Spec {
	n := s
	if n.Procs == 0 {
		n.Procs = harness.DefaultProcs(n.Scale, n.App)
	}
	if n.Faults == 0 {
		n.Faults = 1
	}
	if n.Strategy == "" {
		n.Strategy = StrategyHalving
	}
	if len(n.Intervals) == 0 {
		n.Intervals = []uint64{n.Scale.Interval}
	}
	if len(n.WSIGBits) == 0 {
		n.WSIGBits = []int{0}
	}
	if len(n.DepSets) == 0 {
		n.DepSets = []int{0}
	}
	if len(n.Shards) == 0 {
		n.Shards = []int{0}
	}
	n.Schemes = canonSchemes(n.Schemes)
	n.Intervals = dedupU64(n.Intervals)
	n.WSIGBits = dedupInt(n.WSIGBits)
	n.DepSets = dedupInt(n.DepSets)
	// Shards 0 and 1 are the same (unsharded) layout everywhere else;
	// canonicalise before dedup so [0 1] is one point, not two.
	sh := append([]int(nil), n.Shards...)
	for i, v := range sh {
		if v == 0 {
			sh[i] = 1
		}
	}
	n.Shards = dedupInt(sh)
	return n
}

// canonSchemes orders schemes by their SchemeNames position (unknown
// names last, lexically — Validate rejects them with the vocabulary),
// deduplicated.
func canonSchemes(in []string) []string {
	rank := make(map[string]int)
	for i, name := range harness.SchemeNames() {
		rank[name] = i
	}
	out := dedupStr(in)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i]]
		rj, jok := rank[out[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return out[i] < out[j]
		}
	})
	return out
}

func dedupStr(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out[:uniq(len(out), func(i, j int) bool { return out[i] == out[j] }, func(i, j int) { out[i] = out[j] })]
}

func dedupInt(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out[:uniq(len(out), func(i, j int) bool { return out[i] == out[j] }, func(i, j int) { out[i] = out[j] })]
}

func dedupU64(in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out[:uniq(len(out), func(i, j int) bool { return out[i] == out[j] }, func(i, j int) { out[i] = out[j] })]
}

// uniq compacts a sorted sequence in place via the callbacks and
// returns the deduplicated length.
func uniq(n int, eq func(i, j int) bool, set func(i, j int)) int {
	if n == 0 {
		return 0
	}
	w := 1
	for r := 1; r < n; r++ {
		if !eq(r, w-1) {
			set(w, r)
			w++
		}
	}
	return w
}

// Validate reports whether the normalized spec describes a runnable
// exploration: a non-empty in-bounds search space whose every cell's
// campaign spec validates.
func (s Spec) Validate() error {
	n := s.Normalize()
	if len(n.Schemes) == 0 {
		return fmt.Errorf("explore: no schemes (valid: %s)", strings.Join(harness.SchemeNames(), " "))
	}
	if n.Strategy != StrategyGrid && n.Strategy != StrategyHalving {
		return fmt.Errorf("explore: unknown strategy %q (valid: %s %s)", n.Strategy, StrategyGrid, StrategyHalving)
	}
	cells := n.Cells()
	if len(cells) > MaxCells {
		return fmt.Errorf("explore: %d cells exceed the limit %d", len(cells), MaxCells)
	}
	for _, c := range cells {
		if err := n.CampaignSpec(c, n.Trials).Validate(); err != nil {
			return fmt.Errorf("explore: cell %s: %w", c.Label(), err)
		}
	}
	return nil
}

// Key returns the canonical identity of the exploration: every field
// that can influence the report, on the normalized spec, in a fixed
// order.
func (s Spec) Key() string {
	n := s.Normalize()
	ints := make([]string, len(n.Intervals))
	for i, v := range n.Intervals {
		ints[i] = fmt.Sprint(v)
	}
	return fmt.Sprintf("explore|v1|%s|p=%d|%s|seed=%d|instr=%d|L=%d|pl=%d|ps=%d|"+
		"schemes=%s|ints=%s|wsig=%v|dep=%v|sh=%v|trials=%d|faults=%d|win=%d|dl=%d|cseed=%d|strat=%s",
		n.App, n.Procs, n.Scale.Name, n.Scale.Seed, n.Scale.InstrPerProc,
		uint64(n.Scale.DetectLatency), n.Scale.ProcsLarge, n.Scale.ProcsSmall,
		strings.Join(n.Schemes, ","), strings.Join(ints, ","),
		n.WSIGBits, n.DepSets, n.Shards, n.Trials, n.Faults, n.Window, n.DetectLatency, n.Seed, n.Strategy)
}

// KeyOf returns the content address of an exploration: the hex sha256
// of its canonical key. It is the public identifier the service
// exposes and the record name the report persists under.
func KeyOf(s Spec) string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// Cell is one point of the search space.
type Cell struct {
	Scheme   string `json:"scheme"`
	Interval uint64 `json:"interval"`
	WSIGBits int    `json:"wsigbits,omitempty"`
	DepSets  int    `json:"depsets,omitempty"`
	Shards   int    `json:"shards,omitempty"`
}

// Label renders the cell for errors and progress lines.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/int=%d/wsig=%d/dep=%d/sh=%d",
		c.Scheme, c.Interval, c.WSIGBits, c.DepSets, c.Shards)
}

// Cells enumerates the normalized spec's search space in canonical
// order: scheme outermost (SchemeNames order), then interval, WSIG
// bits, Dep sets, shards, each ascending. This order is the report's
// cell order and must never change — it is part of the byte-identity
// contract.
func (s Spec) Cells() []Cell {
	n := s.Normalize()
	var out []Cell
	for _, scheme := range n.Schemes {
		for _, interval := range n.Intervals {
			for _, wsig := range n.WSIGBits {
				for _, dep := range n.DepSets {
					for _, sh := range n.Shards {
						out = append(out, Cell{Scheme: scheme, Interval: interval,
							WSIGBits: wsig, DepSets: dep, Shards: sh})
					}
				}
			}
		}
	}
	return out
}

// BaseSpec returns the harness cell a search-space point simulates:
// the spec's workload with the point's scheme and knobs, the scale's
// checkpoint interval overridden by the point's.
func (s Spec) BaseSpec(c Cell) harness.Spec {
	sc := s.Scale
	sc.Interval = c.Interval
	return harness.Spec{App: s.App, Procs: s.Procs, Scheme: c.Scheme, Scale: sc,
		WSIGBits: c.WSIGBits, DepSets: c.DepSets, Shards: c.Shards}
}

// CampaignSpec returns the fault campaign evaluating cell c at the
// given trial budget (a halving rung or the full budget).
func (s Spec) CampaignSpec(c Cell, trials int) campaign.Spec {
	return campaign.Spec{Base: s.BaseSpec(c), Trials: trials, Faults: s.Faults,
		Window: s.Window, DetectLatency: s.DetectLatency, Seed: s.Seed}
}

// baselineSpec is the cell's "none" counterpart for the overhead
// objective: same workload and interval, no scheme, knobs normalised
// away — mirroring the harness baseline rule, so every knob setting of
// one interval shares a single baseline run.
func baselineSpec(base harness.Spec) harness.Spec {
	b := base
	b.Scheme = "none"
	b.WSIGBits, b.DepSets, b.LogAllWB = 0, 0, false
	return b
}

// CellResult is the evaluated objective point of one cell at one trial
// budget: the record persisted in the shared explore/cells namespace
// and embedded in FrontierReports.
type CellResult struct {
	Cell
	// Trials is the campaign budget this evaluation ran at (a halving
	// rung or the full budget); CampaignKey the campaign's content
	// address — the record's own identity, verified on read.
	Trials      int    `json:"trials"`
	CampaignKey string `json:"campaign_key"`

	// The availability objective (maximize). Availability weights the
	// campaign's measured availability by its verification rate, so a
	// scheme that leaves poison unrecovered (the "none" strawman most
	// prominently) scores 0, never a spurious 1.0 from having stalled
	// nothing. RawAvailability and VerifiedOK keep the factors.
	Availability    float64 `json:"availability"`
	RawAvailability float64 `json:"raw_availability"`
	VerifiedOK      int     `json:"verified_ok"`

	// Recovery tail, from the campaign's per-rollback latencies.
	MTTRms      float64 `json:"mttr_ms"`
	RecoveryP50 float64 `json:"recovery_p50"`
	RecoveryP99 float64 `json:"recovery_p99"`

	// The overhead objective (minimize): fault-free runtime of the
	// cell against its "none" baseline, as a fraction (0.07 = 7%
	// slower). Cycles/BaseCycles are the raw runtimes; LogBytes the
	// cell's checkpoint-log write volume (the secondary cost axis).
	Overhead   float64 `json:"overhead"`
	Cycles     uint64  `json:"cycles"`
	BaseCycles uint64  `json:"base_cycles"`
	LogBytes   uint64  `json:"log_bytes"`
}

// Dominates reports Pareto dominance on the objective pair: a
// dominates b when a is at least as good on both objectives and
// strictly better on one.
func (a CellResult) Dominates(b CellResult) bool {
	if a.Availability < b.Availability || a.Overhead > b.Overhead {
		return false
	}
	return a.Availability > b.Availability || a.Overhead < b.Overhead
}

// frontier returns the indices of the Pareto-undominated results,
// ascending — evaluation order, which is cell order. Of two identical
// points neither Dominates the other, so ties survive together; only
// strictly-worse points drop.
func frontier(rs []CellResult) []int {
	var out []int
	for i, a := range rs {
		dominated := false
		for j, b := range rs {
			if i != j && b.Dominates(a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// The two objectives differ in fidelity. Overhead comes from the
// fault-free run, which does not depend on the trial count, so it is
// EXACT at every rung; availability is a Monte Carlo estimate whose
// low-trial value drifts from the full-budget one. Sub-budget rungs
// therefore prune with margins instead of strict dominance:
// pruneAvailMargin is the estimation-noise band on the availability
// axis, pruneOvhMargin the minimum overhead gap that counts as
// decisively cheaper.
const (
	pruneAvailMargin = 0.015
	pruneOvhMargin   = 0.002
)

// rungSurvivors returns the indices of the cells a sub-budget rung
// carries into the next one. A cell is pruned only when some other
// cell beats it decisively: decisively cheaper on the exact axis (by
// more than pruneOvhMargin) while within the noise band on the
// estimated one, or decisively more available (beyond the noise band)
// at no extra overhead. Strict dominance at low fidelity would drop
// true frontier members over estimation noise; the final frontier is
// always drawn from full-budget results with strict dominance.
func rungSurvivors(rs []CellResult) []int {
	var out []int
	for i, a := range rs {
		pruned := false
		for j, b := range rs {
			if i == j {
				continue
			}
			cheaper := b.Overhead <= a.Overhead-pruneOvhMargin &&
				b.Availability >= a.Availability-pruneAvailMargin
			better := b.Overhead <= a.Overhead &&
				b.Availability > a.Availability+pruneAvailMargin
			if cheaper || better {
				pruned = true
				break
			}
		}
		if !pruned {
			out = append(out, i)
		}
	}
	return out
}

// RungReport is the budget ledger of one fidelity rung.
type RungReport struct {
	// Trials is the per-cell budget of the rung; Cells how many cells
	// it evaluated; TrialsSpent their product — charged whether each
	// cell was simulated or served from the store, so the ledger is a
	// pure function of the Spec.
	Trials      int `json:"trials"`
	Cells       int `json:"cells"`
	TrialsSpent int `json:"trials_spent"`
}

// FrontierReport is the exploration's canonical artifact: marshalled
// to JSON it is byte-identical for identical Specs, no matter where or
// in how many sessions the cells were evaluated.
type FrontierReport struct {
	// Key is the exploration's content address (KeyOf(Spec)); Spec the
	// normalized spec.
	Key  string `json:"key"`
	Spec Spec   `json:"spec"`
	// Cells lists the full-budget evaluations the frontier was drawn
	// from, in cell order (grid: every cell; halving: the survivors of
	// the seeding rung). Frontier indexes the Pareto-dominant ones,
	// ascending; Dominated counts every candidate cell that is not on
	// the frontier, including cells halving pruned at low fidelity.
	Cells     []CellResult `json:"cells"`
	Frontier  []int        `json:"frontier"`
	Dominated int          `json:"dominated"`
	// The budget ledger: TrialsSpent across all rungs, against the
	// GridTrials an exhaustive evaluation would have spent.
	Rungs       []RungReport `json:"rungs"`
	TrialsSpent int          `json:"trials_spent"`
	GridTrials  int          `json:"grid_trials"`
}

// FrontierCells returns the Pareto-dominant results, in cell order.
func (r *FrontierReport) FrontierCells() []CellResult {
	out := make([]CellResult, len(r.Frontier))
	for i, idx := range r.Frontier {
		out[i] = r.Cells[idx]
	}
	return out
}

// Evaluator abstracts where a cell's simulations run: locally on a
// runner (Local), or routed through a cluster coordinator (the service
// wraps its campaign submission path). Both must be deterministic
// functions of their specs — the explorer's byte-identity rests on it.
type Evaluator interface {
	// Campaign runs (or resumes, or serves from store) the fault
	// campaign and returns its report.
	Campaign(ctx context.Context, spec campaign.Spec) (*campaign.Report, error)
	// Run executes (or serves from store) one fault-free cell.
	Run(ctx context.Context, spec harness.Spec) (harness.Result, error)
}

// Local is the in-process Evaluator: campaigns on a campaign.Engine,
// runs on a harness.Runner, both persisted through the store when one
// is attached (fault-free run records land in the same content-
// addressed store the service uses, so an exploration warms the run
// cache for everything else).
type Local struct {
	Runner *harness.Runner
	Engine *campaign.Engine
	Store  *store.Store // may be nil
}

// NewLocal wires a Local evaluator on runner and st (st may be nil
// for a memory-only exploration).
func NewLocal(runner *harness.Runner, st *store.Store) *Local {
	return &Local{Runner: runner, Engine: campaign.New(runner, st), Store: st}
}

func (l *Local) Campaign(ctx context.Context, spec campaign.Spec) (*campaign.Report, error) {
	return l.Engine.Run(ctx, spec)
}

func (l *Local) Run(ctx context.Context, spec harness.Spec) (harness.Result, error) {
	if l.Store != nil {
		if rec, ok, _ := l.Store.GetSpec(spec); ok {
			return rec.Result(), nil
		}
	}
	res, err := l.Runner.RunOne(ctx, spec)
	if err != nil {
		return harness.Result{}, err
	}
	if l.Store != nil {
		if _, err := l.Store.PutResult(res); err != nil {
			return harness.Result{}, err
		}
	}
	return res, nil
}

// Store-namespace segments of the explorer's persistence plane. Cells
// are SHARED: one flat namespace keyed by campaign content address, so
// any exploration (any user, any process) whose space intersects
// another's reuses its evaluations. Reports are per-exploration.
const (
	nsExplore = "explore"
	nsCells   = "cells"
	nsReports = "reports"
)

func cellRecordName(campaignKey string) string { return "cell-" + campaignKey }

// RungSchedule returns the per-cell trial budgets the spec's strategy
// evaluates, in order — what a progress display should size the work
// by (cells × rungs).
func RungSchedule(s Spec) []int {
	n := s.Normalize()
	return rungTrials(n.Strategy, n.Trials)
}

// Explorer runs explorations through an Evaluator, persisting cell
// evaluations and reports when a store is attached. Safe for
// concurrent use; the economics counters aggregate across runs.
type Explorer struct {
	ev Evaluator
	st *store.Store

	// OnProgress, if set, observes cell-evaluation completion: done
	// evaluations out of the exploration's total (cached ones count).
	// Called from Run's goroutine; must not call back into the
	// explorer.
	OnProgress func(done, total int)

	evaluated atomic.Uint64 // cells actually simulated
	fromStore atomic.Uint64 // cells served from the explore/cells namespace
	served    atomic.Uint64 // whole reports served from explore/reports
}

// New returns an explorer evaluating through ev, persisting through st
// (nil for memory-only).
func New(ev Evaluator, st *store.Store) *Explorer {
	return &Explorer{ev: ev, st: st}
}

// NewLocalExplorer is the common local wiring: one runner, one store,
// evaluation in process.
func NewLocalExplorer(runner *harness.Runner, st *store.Store) *Explorer {
	return New(NewLocal(runner, st), st)
}

// Counters returns the explorer's economics: cells simulated, cells
// served from the store, and whole reports served without touching a
// single cell. A resumed exploration of a finished space reports
// evaluated == 0 — the assertion the smoke tests make.
func (e *Explorer) Counters() (evaluated, fromStore, reportsServed uint64) {
	return e.evaluated.Load(), e.fromStore.Load(), e.served.Load()
}

func (e *Explorer) cellsNS() (*store.Namespace, error) {
	if e.st == nil {
		return nil, nil
	}
	return e.st.Namespace(nsExplore, nsCells)
}

func (e *Explorer) reportsNS() (*store.Namespace, error) {
	if e.st == nil {
		return nil, nil
	}
	return e.st.Namespace(nsExplore, nsReports)
}

// LoadReport returns the stored report for an exploration key, if the
// explorer has a store and the exploration finished. A stored report
// whose embedded key disagrees with its address is an error, never
// served.
func (e *Explorer) LoadReport(key string) (*FrontierReport, bool, error) {
	ns, err := e.reportsNS()
	if ns == nil || err != nil {
		return nil, false, err
	}
	var rep FrontierReport
	ok, err := ns.GetJSON(key, &rep)
	if !ok || err != nil {
		return nil, false, err
	}
	if rep.Key != key {
		return nil, false, fmt.Errorf("explore: stored report under %s claims key %s", key, rep.Key)
	}
	return &rep, true, nil
}

// loadCells enumerates the shared cell namespace once (Namespace.Each:
// one directory read, ascending order, corrupt records skipped) into a
// map keyed by campaign content address. Only records that
// self-identify — embedded campaign key matching their name — are
// trusted; anything else costs its own re-evaluation, never a wrong
// frontier.
func (e *Explorer) loadCells() (map[string]CellResult, error) {
	ns, err := e.cellsNS()
	if ns == nil || err != nil {
		return nil, err
	}
	out := make(map[string]CellResult)
	_, err = ns.Each(func() any { return new(CellResult) }, func(name string, v any) {
		cr := v.(*CellResult)
		if cellRecordName(cr.CampaignKey) == name {
			out[cr.CampaignKey] = *cr
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evaluateCell computes (or restores) the objective point of cell c at
// the given trial budget. cache is the loadCells snapshot; a miss is
// evaluated through the Evaluator and persisted for every future
// exploration.
func (e *Explorer) evaluateCell(ctx context.Context, spec Spec, c Cell, trials int,
	cache map[string]CellResult, ns *store.Namespace) (CellResult, error) {
	cs := spec.CampaignSpec(c, trials)
	ckey := campaign.KeyOf(cs)
	if cr, ok := cache[ckey]; ok {
		e.fromStore.Add(1)
		return cr, nil
	}

	rep, err := e.ev.Campaign(ctx, cs)
	if err != nil {
		return CellResult{}, fmt.Errorf("explore: cell %s (t=%d): %w", c.Label(), trials, err)
	}
	base := spec.BaseSpec(c)
	res, err := e.ev.Run(ctx, base)
	if err != nil {
		return CellResult{}, fmt.Errorf("explore: cell %s run: %w", c.Label(), err)
	}
	baseRes, err := e.ev.Run(ctx, baselineSpec(base))
	if err != nil {
		return CellResult{}, fmt.Errorf("explore: cell %s baseline: %w", c.Label(), err)
	}

	cr := CellResult{
		Cell: c, Trials: trials, CampaignKey: ckey,
		RawAvailability: rep.Availability,
		VerifiedOK:      rep.VerifiedOK,
		MTTRms:          rep.MTTRms,
		RecoveryP50:     rep.Recovery.P50,
		RecoveryP99:     rep.Recovery.P99,
		Cycles:          res.Cycles,
		BaseCycles:      baseRes.Cycles,
		LogBytes:        res.St.LogBytes,
	}
	if rep.Trials > 0 {
		cr.Availability = rep.Availability * float64(rep.VerifiedOK) / float64(rep.Trials)
	}
	if baseRes.Cycles > 0 {
		if ovh := float64(res.Cycles)/float64(baseRes.Cycles) - 1; ovh > 0 {
			cr.Overhead = ovh
		}
	}
	e.evaluated.Add(1)
	if ns != nil {
		if err := ns.PutJSON(cellRecordName(ckey), &cr); err != nil {
			return CellResult{}, err
		}
		cache[ckey] = cr
	}
	return cr, nil
}

// rungTrials returns the fidelity schedule of the strategy: grid runs
// one full-budget rung; halving seeds every cell at a quarter of the
// budget, then spends the full budget only on the seeding rung's
// Pareto survivors.
func rungTrials(strategy string, trials int) []int {
	if strategy == StrategyGrid {
		return []int{trials}
	}
	seed := trials / 4
	if seed < 1 || seed >= trials {
		return []int{trials}
	}
	return []int{seed, trials}
}

// Run executes the exploration and returns its report. With a store,
// a finished exploration is served from its stored report (Counters
// reportsServed), and every cell evaluation — including the halving
// seeding rung — persists for any future exploration that touches the
// same point.
func (e *Explorer) Run(ctx context.Context, spec Spec) (*FrontierReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	key := KeyOf(spec)
	if rep, ok, err := e.LoadReport(key); err != nil {
		return nil, err
	} else if ok {
		e.served.Add(1)
		e.noteTotal(rep)
		return rep, nil
	}

	cellNS, err := e.cellsNS()
	if err != nil {
		return nil, err
	}
	cache, err := e.loadCells()
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = make(map[string]CellResult)
	}

	cells := spec.Cells()
	rungs := rungTrials(spec.Strategy, spec.Trials)
	// The progress total counts every evaluation the schedule can
	// perform: pruning makes later rungs cheaper, so done may finish
	// below total — the service reports done==total on completion.
	total := len(cells) * len(rungs)
	done := 0
	note := func() {
		done++
		if e.OnProgress != nil {
			e.OnProgress(done, total)
		}
	}

	rep := &FrontierReport{Key: key, Spec: spec, GridTrials: len(cells) * spec.Trials}
	survivors := cells
	var results []CellResult
	for _, rt := range rungs {
		results = results[:0]
		for _, c := range survivors {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cr, err := e.evaluateCell(ctx, spec, c, rt, cache, cellNS)
			if err != nil {
				return nil, err
			}
			results = append(results, cr)
			note()
		}
		rep.Rungs = append(rep.Rungs, RungReport{Trials: rt, Cells: len(survivors),
			TrialsSpent: rt * len(survivors)})
		rep.TrialsSpent += rt * len(survivors)
		if rt != spec.Trials {
			// Prune for the next rung: only cells the low-fidelity rung
			// could not decisively rule out advance. Indices are
			// evaluation order == cell order, so the surviving
			// subsequence is deterministic.
			keep := rungSurvivors(results)
			next := make([]Cell, len(keep))
			for i, idx := range keep {
				next[i] = survivors[idx]
			}
			survivors = next
		}
	}

	rep.Cells = append([]CellResult(nil), results...)
	rep.Frontier = frontier(rep.Cells)
	rep.Dominated = len(cells) - len(rep.Frontier)
	if e.OnProgress != nil {
		e.OnProgress(total, total)
	}

	if ns, err := e.reportsNS(); err != nil {
		return nil, err
	} else if ns != nil {
		if err := ns.PutJSON(key, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// noteTotal reports a fully-served exploration's progress as complete.
func (e *Explorer) noteTotal(rep *FrontierReport) {
	if e.OnProgress == nil {
		return
	}
	total := len(rep.Spec.Cells()) * len(rungTrials(rep.Spec.Strategy, rep.Spec.Trials))
	e.OnProgress(total, total)
}
