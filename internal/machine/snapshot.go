package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dep"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Machine snapshot/restore: the simulator applies the paper's own idea
// to itself. Rebound checkpoints a shared-memory machine cheaply so a
// fault can roll it back; the campaign engine re-runs the same
// deterministic fault-free warmup before thousands of fault scenarios,
// so the simulator checkpoints the warmed machine once and rolls the
// live machine back to it per trial — at memcpy speed, with no
// reallocation.
//
// What makes a machine snapshotable is the event queue: pending events
// are closures, and a closure that captured mutable protocol state
// (checkpoint-operation counters, pause continuations) cannot be
// re-fired after the state it captured is rewound. The snapshot
// contract is therefore *quiescence*: every pending event must be
// tagged (sim.Tag — step and drain events, whose behaviour is a pure
// function of restorable processor state), no processor may be paused,
// dormant, draining or mid-epoch-open, and a stateful scheme must
// report SchemeQuiescent. SettleForSnapshot runs the machine forward,
// one event at a time, until it reaches such a point (they recur
// between checkpoint rounds). Restore then rewinds everything in
// place — engine clock and queue, per-processor core/cache/Dep/stream
// state, checkpoint histories, flat memory/log/directory/DRAM state,
// statistics, and the scheme's own registers — re-binding the queue's
// closures from their tags.
//
// The line-interning table is deliberately NOT rewound: IDs are
// behaviourally invisible (every consumer either indexes flat arrays,
// whose post-capture tails are reset to their untouched defaults, or
// reports in address order), and keeping the table means a restored
// trial re-interns nothing.
type MachineSnapshot struct {
	valid bool
	cfg   Config

	// Engine state.
	now    sim.Cycle
	seq    uint64
	events []sim.SavedEvent

	// Machine progress counters.
	totalInstr  uint64
	targetInstr uint64

	// Shared components. tab is the interned-line prefix the flat
	// arrays below are indexed by: a restore into a machine whose table
	// diverged from it must fail rather than alias wrong lines.
	tab  []uint64
	st   *stats.Stats
	mem  mem.MemorySnapshot
	log  mem.LogSnapshot
	dram mem.DRAMSnapshot
	dir  coherence.Snapshot

	procs []procSnapshot

	// Event-plane extension (populated only by event-plane machines;
	// eventplane.go): per-shard engine queues and state partitions, the
	// executor's completed-epoch frontier, the per-shard interned-
	// address prefixes of the sharded line table, and the per-processor
	// walk/replay registers. The shared mem/dir/procs fields above are
	// used unchanged.
	epShards   []epShardSnapshot
	epFrontier sim.Cycle
	epTab      [][]uint64
	epProcs    []epProcSnapshot

	// Opaque scheme state (SchemeSnapshotter), nil for stateless schemes.
	scheme any

	// gen increments on every capture into this snapshot object, so a
	// machine that remembers which (snapshot, gen) it last restored from
	// can take the copy-on-write delta path: the flat mem/log/directory
	// arrays copy back only their dirty pages instead of the whole
	// capture. Recapturing into a reused snapshot bumps gen and forces
	// the next restore back onto the full path.
	gen uint64
}

// procSnapshot is one processor's saved state.
type procSnapshot struct {
	l1, l2 cache.Snapshot
	deps   dep.Snapshot
	stream workload.State
	rng    uint64
	micro  microState
	tick   uint64

	stepScheduled bool

	curEpoch       uint64
	instrSinceCkpt uint64
	history        []CkptRec

	delayedQueue []uint64
	drainRush    bool

	faulty, tainted bool
	depStallSince   sim.Cycle
	restoreGen      uint64
}

// snapshotBlocker returns "" when the machine is at a snapshot-safe
// point, or a description of the first obstacle.
func (m *Machine) snapshotBlocker() string {
	if m.ep != nil {
		if why := m.epBlocker(); why != "" {
			return why
		}
	} else if !m.Eng.AllTagged() {
		return "pending untagged event (protocol message, timer or injector in flight)"
	}
	for _, p := range m.Procs {
		switch {
		case p.epStalled:
			return fmt.Sprintf("proc %d stalled on a coherence walk", p.id)
		case p.paused:
			return fmt.Sprintf("proc %d paused", p.id)
		case p.pauseReq != nil:
			return fmt.Sprintf("proc %d has a pending pause request", p.id)
		case p.dormant:
			return fmt.Sprintf("proc %d dormant (I/O or barrier gate)", p.id)
		case p.draining || p.drainDone != nil:
			return fmt.Sprintf("proc %d draining delayed writebacks", p.id)
		case p.openPending:
			return fmt.Sprintf("proc %d opening its next epoch", p.id)
		case p.InCkpt:
			return fmt.Sprintf("proc %d engaged in a checkpoint/rollback", p.id)
		}
	}
	if sc, ok := m.Scheme.(SchemeSnapshotter); ok && !sc.SchemeQuiescent() {
		return "scheme not quiescent"
	}
	return ""
}

// SnapshotReady reports whether the machine is at a snapshot-safe
// (quiescent) point.
func (m *Machine) SnapshotReady() bool { return m.snapshotBlocker() == "" }

// SettleForSnapshot advances the machine one event at a time until it
// reaches a snapshot-safe point, giving up after maxCycles simulated
// cycles. No instruction target is in force while settling (committed
// instructions still count toward TotalInstructions). It reports
// whether a safe point was reached; either way the machine state is a
// deterministic function of its history, so callers that mix
// snapshot-restored and freshly-built machines stay bit-identical by
// settling both the same way.
func (m *Machine) SettleForSnapshot(maxCycles sim.Cycle) bool {
	m.targetInstr = 0
	if m.ep != nil {
		return m.settleEPForSnapshot(maxCycles)
	}
	deadline := m.Eng.Now() + maxCycles
	for m.snapshotBlocker() != "" {
		if m.Eng.Now() > deadline || !m.Eng.Step() {
			return false
		}
	}
	return true
}

// Snapshot captures the machine's complete mutable state into s,
// reusing s's storage across captures. The machine must be at a
// snapshot-safe point (SnapshotReady / SettleForSnapshot).
func (m *Machine) Snapshot(s *MachineSnapshot) error {
	if m.ep != nil {
		return m.snapshotEP(s)
	}
	if why := m.snapshotBlocker(); why != "" {
		return fmt.Errorf("machine: not snapshot-safe: %s", why)
	}
	now, seq, events, ok := m.Eng.Save(s.events)
	if !ok {
		return fmt.Errorf("machine: not snapshot-safe: untagged event")
	}
	s.cfg = m.Cfg
	s.now, s.seq, s.events = now, seq, events
	s.totalInstr, s.targetInstr = m.totalInstr, m.targetInstr
	if s.st == nil || s.st.NProcs != m.Cfg.NProcs {
		s.st = stats.New(m.Cfg.NProcs)
	}
	m.St.CopyInto(s.st)
	s.tab = append(s.tab[:0], m.Ctrl.Memory().Table().Addrs()...)
	if cap(s.procs) < len(m.Procs) {
		s.procs = make([]procSnapshot, len(m.Procs))
	} else {
		s.procs = s.procs[:len(m.Procs)]
	}
	// Per-proc and per-shard state decomposes into disjoint tasks; the
	// parallel executor fans them across cores (shardexec.go).
	m.saveParallel(s)
	if sc, ok := m.Scheme.(SchemeSnapshotter); ok {
		s.scheme = sc.SchemeSnapshot()
	} else {
		s.scheme = nil
	}
	s.valid = true
	s.gen++
	return nil
}

// Restore rewinds the machine to the state captured in s, in place and
// without reallocating steady-state structures. The target machine
// must have the same Config as the capture (it need not be the same
// machine object, nor ever have run: restoring a cold machine to a
// warmed image is the campaign engine's steady state). Any state the
// machine accumulated after the capture — including extra interned
// lines — is reset to what a fresh build would hold. The taint
// observer is cleared; a fault injector attached before the capture
// must be re-attached after.
//
// Restore is read-only with respect to s, so one snapshot safely backs
// any number of machines (Fork). When the machine's previous restore
// came from this same snapshot and generation, the flat mem/log/
// directory arrays take the copy-on-write delta path: only the pages
// the trial dirtied since that restore are copied back. Everything
// fixed-size per machine (engine queue, caches, Dep registers, stats,
// DRAM, streams) is always copied in full — its cost does not grow
// with the warm footprint.
func (m *Machine) Restore(s *MachineSnapshot) error {
	if !s.valid {
		return fmt.Errorf("machine: restore from an empty snapshot")
	}
	if !sameConfig(s.cfg, m.Cfg) {
		return fmt.Errorf("machine: snapshot config mismatch")
	}
	if m.ep != nil {
		return m.restoreEP(s)
	}
	if err := m.Ctrl.Memory().Table().AdoptPrefix(s.tab); err != nil {
		return err
	}
	m.Eng.Load(s.now, s.seq, s.events, m.resolveTag)
	m.totalInstr, m.targetInstr = s.totalInstr, s.targetInstr
	s.st.CopyInto(m.St)
	// Per-proc and per-shard state loads as disjoint parallel tasks
	// (shardexec.go); the delta flag selects the copy-on-write path.
	m.loadParallel(s, m.restoredFrom == s && m.restoredGen == s.gen)
	m.OnTaint = nil
	if sc, ok := m.Scheme.(SchemeSnapshotter); ok {
		sc.SchemeRestore(s.scheme)
	}
	m.restoredFrom, m.restoredGen = s, s.gen
	return nil
}

// Fork builds a new machine of the same shape as m — same Config, same
// workload profile, its own scheme instance — restored to the snapshot
// s. The parent machine and the snapshot are only read: Fork is safe to
// call concurrently with other forks of the same parent, and with the
// parent running trials of its own, which is how one warmed snapshot
// fans out to a worker pool without re-warming. Subsequent Restore(s)
// calls on the fork take the copy-on-write delta path.
func (m *Machine) Fork(s *MachineSnapshot, scheme Scheme) (*Machine, error) {
	n := NewIn(nil, m.Cfg, m.prof, scheme)
	if err := n.Restore(s); err != nil {
		return nil, err
	}
	return n, nil
}

// resolveTag re-binds a saved event to its closure.
func (m *Machine) resolveTag(t sim.Tag) func() {
	p := m.Procs[t.ID]
	switch t.Kind {
	case tagStep:
		return p.stepFn
	case tagDrain:
		return p.drainStepFn
	}
	panic(fmt.Sprintf("machine: unknown event tag kind %d", t.Kind))
}

// saveState captures the processor state into s.
func (p *Proc) saveState(s *procSnapshot) {
	p.l1.Save(&s.l1)
	p.l2.Save(&s.l2)
	p.deps.Save(&s.deps)
	s.stream = p.stream.Snapshot()
	s.rng = p.rng.State()
	s.micro = p.micro
	s.tick = p.tick
	s.stepScheduled = p.stepScheduled
	s.curEpoch, s.instrSinceCkpt = p.curEpoch, p.instrSinceCkpt
	s.history = s.history[:0]
	for _, r := range p.history {
		s.history = append(s.history, *r)
	}
	s.delayedQueue = append(s.delayedQueue[:0], p.delayedQueue...)
	s.drainRush = p.drainRush
	s.faulty, s.tainted = p.faulty, p.tainted
	s.depStallSince = p.depStallSince
	s.restoreGen = p.restoreGen
}

// loadState restores the processor from s. Pause/dormancy/epoch-open state
// is structurally clear at any snapshot point, so it is reset rather
// than stored.
func (p *Proc) loadState(s *procSnapshot) {
	p.l1.Load(&s.l1)
	p.l2.Load(&s.l2)
	p.deps.Load(&s.deps)
	p.stream.Restore(s.stream)
	p.rng.Restore(s.rng)
	p.micro = s.micro
	p.tick = s.tick
	p.stepScheduled = s.stepScheduled
	p.paused, p.pauseReq, p.dormant = false, nil, false
	p.curEpoch, p.instrSinceCkpt = s.curEpoch, s.instrSinceCkpt
	// Rebuild the checkpoint history from the record pool: every
	// closure that could reference the old records died with the
	// replaced event queue.
	for _, r := range p.history {
		p.freeRec(r)
	}
	p.history = p.history[:0]
	for i := range s.history {
		r := p.newRec()
		*r = s.history[i]
		p.history = append(p.history, r)
	}
	p.delayedQueue = append(p.delayedQueue[:0], s.delayedQueue...)
	p.draining, p.drainRush, p.drainDone = false, s.drainRush, nil
	p.faulty, p.tainted = s.faulty, s.tainted
	p.depStallSince = s.depStallSince
	p.restoreGen = s.restoreGen
	p.openPending = false
	p.InCkpt = false
}

// Reset returns the machine to its just-built state under a (fresh)
// scheme, recycling every allocation: engine queue, caches, Dep
// registers, memory/log/directory arrays, statistics and checkpoint
// records are cleared in place and the workload streams are re-seeded.
// The line-interning table is kept (IDs are behaviourally invisible,
// exactly as for Restore, and re-interning the workload footprint was
// the expensive part of recycling). A Reset machine is bit-identical
// in behaviour to one newly built with the same Config, profile and
// scheme — the harness runner uses this to recycle machines across
// sweep cells that share a configuration.
func (m *Machine) Reset(scheme Scheme) {
	m.Eng.Reset()
	m.St.Reset()
	m.Ctrl.Memory().Reset()
	m.Ctrl.Log().Reset()
	m.Ctrl.DRAM().Reset()
	m.Dir.Reset()
	if m.ep != nil {
		if scheme.Name() != "none" {
			panic("machine: event-plane machines reset only onto the null scheme")
		}
		m.epReset()
	}
	m.totalInstr, m.targetInstr = 0, 0
	m.OnTaint = nil
	m.restoredFrom, m.restoredGen = nil, 0
	for _, p := range m.Procs {
		p.reset()
	}
	m.Scheme = scheme
	scheme.Attach(m)
}

// reset returns the processor to its just-built state.
func (p *Proc) reset() {
	cfg := p.m.Cfg
	p.l1.Reset()
	p.l2.Reset()
	p.deps.Reset()
	*p.stream = *workload.NewStream(p.m.prof, p.id, cfg.NProcs, cfg.Seed)
	p.rng = *sim.NewRNG(procRNGSeed(cfg.Seed, p.id))
	p.micro = microState{}
	p.tick = 0
	p.stepScheduled = false
	p.paused, p.pauseReq, p.dormant = false, nil, false
	p.curEpoch, p.instrSinceCkpt = 0, 0
	for _, r := range p.history {
		p.freeRec(r)
	}
	p.history = p.history[:0]
	rec := p.newRec()
	rec.OpenedEpoch = 0
	rec.Snap = p.takeSnapshot()
	rec.CompletedAt = 0
	p.history = append(p.history, rec)
	p.InCkpt = false
	p.delayedQueue = p.delayedQueue[:0]
	p.draining, p.drainRush, p.drainDone = false, false, nil
	p.faulty, p.tainted = false, false
	p.depStallSince = 0
	p.restoreGen = 0
	p.openPending = false
	p.epResetProc()
}
