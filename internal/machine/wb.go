package machine

import (
	"repro/internal/cache"
	"repro/internal/sim"
)

// --- checkpoint writeback engines (§3.3.3 and §4.1) ---------------------

// DirtyLines returns the number of dirty lines in the L2.
func (p *Proc) DirtyLines() int { return p.l2.CountDirty() }

// WritebackAllForeground writes back every dirty L2 line (clean copies
// are retained, Modified lines become Exclusive), logs the register
// state, and calls done when the last transfer completes. The caller
// keeps the processor paused for the duration (Fig 4.1a).
// It returns the number of lines written.
func (p *Proc) WritebackAllForeground(done func()) uint64 {
	now := p.m.Eng.Now()
	maxDone := now
	var lines uint64
	p.l2.ForEach(func(l *cache.Line) {
		if !l.Dirty {
			return
		}
		d := p.m.Dir.WritebackRetain(p.id, l.Addr, l.Data, l.Epoch, false)
		if d > maxDone {
			maxDone = d
		}
		l.Dirty = false
		l.Delayed = false
		if l.State == cache.Modified {
			l.State = cache.Exclusive
		}
		lines++
	})
	if d := p.m.Ctrl.LogRegisters(p.id); d > maxDone {
		maxDone = d
	}
	p.m.Eng.At(maxDone, done)
	return lines
}

// MarkDelayed flags every dirty L2 line Delayed and queues it for the
// background drain (Fig 4.1b: the application resumes immediately and
// the L2 controller writes the lines back in the background). The
// register state is logged right away. It returns the number of lines
// queued.
func (p *Proc) MarkDelayed() uint64 {
	p.delayedQueue = p.delayedQueue[:0]
	var lines uint64
	p.l2.ForEach(func(l *cache.Line) {
		if !l.Dirty || l.Delayed {
			return
		}
		l.Delayed = true
		p.delayedQueue = append(p.delayedQueue, l.Addr)
		lines++
	})
	p.m.Ctrl.LogRegisters(p.id)
	return lines
}

// StartDrain begins (or continues) the background writeback of Delayed
// lines; done fires when the queue is empty. Demand traffic bypasses
// the drain naturally: drained lines are paced DWBGap apart, slower
// when the memory channels are backed up.
func (p *Proc) StartDrain(done func()) {
	p.drainDone = done
	p.drainRush = false
	if p.draining {
		return
	}
	p.draining = true
	p.scheduleDrain(1)
}

func (p *Proc) scheduleDrain(delay sim.Cycle) {
	p.m.Eng.ScheduleTagged(delay, sim.Tag{Kind: tagDrain, ID: int32(p.id)}, p.drainStepFn)
}

// RushDrain accelerates an in-progress drain to full channel speed
// (§4.1: a checkpoint request arriving during the drain makes the
// controller "speed up the writeback of the Delayed lines").
func (p *Proc) RushDrain() { p.drainRush = true }

// Draining reports whether a background drain is in progress.
func (p *Proc) Draining() bool { return p.draining }

func (p *Proc) drainStep() {
	if !p.draining {
		return
	}
	// Pop until a line that still needs writing is found.
	for len(p.delayedQueue) > 0 {
		addr := p.delayedQueue[0]
		p.delayedQueue = p.delayedQueue[1:]
		l := p.l2.Peek(addr)
		if l == nil || !l.Delayed {
			continue // flushed by a write, recall or eviction meanwhile
		}
		d := p.m.Dir.WritebackRetain(p.id, addr, l.Data, l.Epoch, true)
		l.Delayed = false
		l.Dirty = false
		if l.State == cache.Modified {
			l.State = cache.Exclusive
		}
		now := p.m.Eng.Now()
		var next sim.Cycle
		if p.drainRush {
			if d > now {
				next = d - now
			}
		} else {
			next = p.m.Cfg.DWBGap
			// Adaptive pacing: when the channel queue is deep (demand
			// misses suffering), slow down (§4.1).
			if depth := p.m.Ctrl.DRAM().QueueDepth(addr); depth > 4*p.m.Cfg.DWBGap {
				next += depth / 2
			}
		}
		p.scheduleDrain(next + 1)
		return
	}
	p.draining = false
	done := p.drainDone
	p.drainDone = nil
	if done != nil {
		done()
	}
}
