// Package machine assembles the Rebound manycore substrate of Fig 3.1:
// single-issue cores with private write-through L1s and write-back L2s,
// a full-map directory per tile, two off-chip memory channels with the
// ReVive-style logging controller, and a synchronisation runtime that
// expands barriers and locks into real shared-memory accesses (so they
// create the dependence chains of Fig 4.2b).
//
// The checkpointing schemes themselves (Global, Rebound and variants)
// live in internal/core and drive the machine through the Scheme
// interface and the processor-level primitives (pause/resume, snapshot,
// foreground/background writeback, rollback).
//
// # Sharded state plane
//
// Config.Shards splits the machine's per-line state — mem.Memory's
// word table, mem.Log's last-writer index, the directory's
// owner/lwid/sharer columns — into N power-of-two partitions
// (mem.Sharding: shard = id & (N-1), slot = id >> log2(N), so one
// shard is exactly the historical flat layout). The shard count is a
// storage and parallelism axis only: simulated results are
// byte-identical at every shard count and every GOMAXPROCS, a contract
// the equivalence suite (sharded_equiv_test.go) enforces under -race.
//
// What sharding buys first is the state plane: Snapshot, Restore and
// Fork decompose into disjoint per-processor and per-shard tasks
// fanned across GOMAXPROCS workers (shardexec.go). Event execution on
// the default sequential sim.Engine is untouched, because the
// functional coherence protocol mutates cross-processor state
// synchronously inside events.
//
// # Event plane
//
// Config.EventPlane puts the same shards on sim.ShardedEngine:
// per-shard event heaps advancing in lookahead-bounded epochs, one
// goroutine per shard. Directory transactions become request/probe/
// grant/ack message legs routed to each line's home shard
// (coherence.EventPlane), the charged network latency becomes the
// legs' actual delivery times (clamped up to the window), and a
// processor that misses in its L2 stalls until the grant installs the
// line and replays the access (eventplane.go, proc.go). The event
// plane is a different, self-consistent timing model — it is not
// byte-compared against the sequential protocol — but its own
// trajectory is byte-identical across shard counts, Parallel on/off
// and GOMAXPROCS, and it supports in-memory snapshot/restore through
// the same tagged-event mechanism (settling drains every in-flight
// leg first, so captures never contain cross-shard messages). It is
// restricted to the null scheme: checkpoint protocols pause, roll
// back and message other processors synchronously, which would mutate
// foreign shard state inside an event.
//
// # Snapshot formats and compatibility
//
// The persistent codec (persist.go) writes two formats. An unsharded
// machine (Shards <= 1) encodes legacy format 1, byte-identical to the
// pre-sharding codec — snapshots persisted by earlier versions decode
// unchanged, and Shards=0 and Shards=1 persist identically. A sharded
// machine encodes format 2, whose memory and directory images are
// per-shard arrays. DecodeSnapshot probes the "format" field and
// dispatches; a format never decodes into a machine of the other
// layout. SnapshotFormat names the current (highest) format and is
// part of every persistent snapshot key (see campaign.warmKey): bump
// it whenever the encoding changes so stale stored snapshots read as
// misses that re-warm, never as misused state.
package machine
