// Machine assembly: the Rebound manycore substrate of Fig 3.1 (see
// doc.go for the package overview).
package machine

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Config carries the architectural and checkpointing parameters
// (Fig 4.3a), scaled for simulation as described in DESIGN.md.
type Config struct {
	NProcs int

	// Cache geometry.
	L1Size, L1Ways int
	L2Size, L2Ways int
	LineBytes      int
	L1Hit, L2Hit   sim.Cycle

	// Memory system.
	MemChannels int
	LogBanks    int

	// CkptInterval is the per-processor checkpoint interval in
	// instructions (the paper uses 4M; the scaled default is smaller).
	CkptInterval uint64
	// DetectLatency is L, the upper bound on fault-detection latency in
	// cycles (§3.2). A checkpoint completed more than L cycles ago is
	// safe. Must be smaller than the interval in cycles.
	DetectLatency sim.Cycle
	// DepSets is the number of Dep register sets per processor (§4.2).
	DepSets int
	// WSIGBits/WSIGHashes give the write-signature geometry (§3.3.2).
	WSIGBits, WSIGHashes int

	// SpinPoll is the repoll period of spin loops (barrier flags, busy
	// locks); InterruptCost is the cross-processor interrupt overhead
	// charged on protocol message delivery.
	SpinPoll      sim.Cycle
	InterruptCost sim.Cycle
	// DWBGap is the base pacing gap between background (delayed)
	// writebacks; the drain engine slows down further when the memory
	// channels are loaded (§4.1).
	DWBGap sim.Cycle

	// Seed drives all pseudo-randomness.
	Seed uint64

	// Shards is the number of home proc-group state partitions the
	// memory, undo log and directory carve their line-indexed state
	// into (mem.Sharding). 0 and 1 both mean the historical unsharded
	// layout; larger counts must be powers of two ≤ mem.MaxShards.
	// The partition count changes how state is stored and how much
	// snapshot/restore parallelism is available — never what the
	// machine computes: reports are byte-identical across shard counts.
	Shards int

	// EventPlane selects parallel event execution: the machine runs on
	// sim.ShardedEngine with one engine per state shard, coherence
	// transactions decomposed into latency-bounded message legs
	// (coherence.EventPlane) and processors stalling on misses until
	// the grant message returns. The event plane is its own timing
	// model — modeled latencies are clamped up to the lookahead window,
	// so results differ from the sequential functional protocol — but
	// it is deterministic: the trajectory is byte-identical across
	// shard counts, Parallel on/off and GOMAXPROCS. Requires the null
	// scheme ("none"), Shards <= 8 and NProcs divisible by the shard
	// count (see eventplane.go).
	EventPlane bool
	// EPWindow is the event-plane lookahead window in cycles (minimum
	// legal cross-shard message delay). 0 means the default (32); the
	// floor is 8, the minimum topology hop latency.
	EPWindow sim.Cycle
}

// shardCount returns the canonical shard count of c (0 ≡ 1).
func (c Config) shardCount() int {
	if c.Shards <= 1 {
		return 1
	}
	return c.Shards
}

// sameConfig reports whether two configs describe the same machine
// shape, treating Shards 0 and 1 as equal (both are the unsharded
// layout; snapshots between them are interchangeable).
func sameConfig(a, b Config) bool {
	a.Shards = a.shardCount()
	b.Shards = b.shardCount()
	return a == b
}

// DefaultConfig returns the scaled Fig 4.3(a) configuration.
func DefaultConfig(nprocs int) Config {
	return Config{
		NProcs:        nprocs,
		L1Size:        16 * 1024,
		L1Ways:        4,
		L2Size:        256 * 1024,
		L2Ways:        8,
		LineBytes:     32,
		L1Hit:         2,
		L2Hit:         8,
		MemChannels:   2,
		LogBanks:      4,
		CkptInterval:  150_000,
		DetectLatency: 40_000,
		DepSets:       4,
		WSIGBits:      1024,
		WSIGHashes:    4,
		SpinPoll:      60,
		InterruptCost: 100,
		DWBGap:        300,
		Seed:          1,
	}
}

// Scheme is the hook surface a checkpointing scheme implements. The
// machine calls these at well-defined points; the scheme drives the
// processors back through their public primitives.
type Scheme interface {
	Name() string
	// Attach wires the scheme to its machine; called once from New.
	Attach(m *Machine)
	// IntervalExpired fires at an op boundary once p has executed
	// CkptInterval instructions since its last checkpoint.
	IntervalExpired(p *Proc)
	// OutputIO fires when p is about to perform output I/O. The scheme
	// must arrange the preceding checkpoint (§6.4) and call resume; a
	// scheme without I/O handling calls resume immediately.
	OutputIO(p *Proc, resume func())
	// BarrierUpdate fires while p is inside the barrier Update critical
	// section, right after incrementing the count (the insertion point
	// of Fig 4.2d). last tells whether p was the final arriver.
	BarrierUpdate(p *Proc, last bool)
	// BarrierRelease fires when the last arriver is about to write the
	// barrier flag; the scheme calls proceed when the flag may be set
	// (the barrier optimisation holds it until the proactive checkpoint
	// completes, §4.2.1).
	BarrierRelease(p *Proc, proceed func())
	// FaultDetected fires when a fault is detected at p; the scheme
	// must run the rollback protocol (§3.3.5).
	FaultDetected(p *Proc)
}

// Machine is one simulated chip plus its off-chip memory.
type Machine struct {
	Cfg    Config
	Eng    *sim.Engine
	St     *stats.Stats
	Topo   *topo.Topology
	Ctrl   *mem.Controller
	Dir    *coherence.Directory
	Procs  []*Proc
	Scheme Scheme

	// ep is the event-plane runtime (nil for the historical sequential
	// machine): sharded engines, per-shard stats/DRAM/log partitions
	// and the message-leg coherence plane. See eventplane.go.
	ep *epState

	// prof is the workload the processors stream from, retained so
	// Reset can rebuild the streams in place.
	prof *workload.Profile

	totalInstr  uint64
	targetInstr uint64

	// restoredFrom/restoredGen identify the (snapshot, generation) this
	// machine last restored from; a matching Restore takes the
	// copy-on-write delta path (snapshot.go).
	restoredFrom *MachineSnapshot
	restoredGen  uint64

	// OnTaint, if set, observes poison propagation (fault tests).
	OnTaint func(p *Proc)
}

// SchemeSnapshotter is the optional interface a stateful Scheme
// implements to participate in machine snapshots (snapshot.go). A
// scheme that does not implement it is treated as stateless: always
// quiescent, nothing to capture (machine.NullScheme).
type SchemeSnapshotter interface {
	// SchemeQuiescent reports whether no checkpoint/rollback operation
	// is in flight and no continuation closure is being held — i.e. the
	// scheme's entire behaviour-relevant state is plain data.
	SchemeQuiescent() bool
	// SchemeSnapshot returns an opaque copy of that data. The value is
	// retained by the machine snapshot and handed back verbatim.
	SchemeSnapshot() any
	// SchemeRestore rewinds the scheme to a state captured by
	// SchemeSnapshot on a scheme of the same type and machine shape.
	SchemeRestore(state any)
}

// SchemePersister is the optional extension of SchemeSnapshotter a
// stateful scheme implements so machine snapshots can be serialized
// (persist.go): it round-trips the opaque SchemeSnapshot value through
// JSON. Encode receives a value produced by SchemeSnapshot on a scheme
// of the same type; Decode must return a value SchemeRestore accepts. A
// stateful scheme without this interface still snapshots in memory but
// cannot be persisted to the store.
type SchemePersister interface {
	SchemeSnapshotter
	EncodeSchemeState(state any) ([]byte, error)
	DecodeSchemeState(data []byte) (any, error)
}

// New builds a machine running prof under scheme.
func New(cfg Config, prof *workload.Profile, scheme Scheme) *Machine {
	return NewIn(nil, cfg, prof, scheme)
}

// NewIn is New with the cache line arrays taken from arena (nil means
// fresh heap allocations). The harness runner pools arenas across
// sweep cells; the caller must not recycle the arena while the machine
// is still in use.
func NewIn(arena *cache.Arena, cfg Config, prof *workload.Profile, scheme Scheme) *Machine {
	eng := sim.NewEngine()
	st := stats.New(cfg.NProcs)
	tp := topo.New(cfg.NProcs)
	sharding := mem.NewSharding(cfg.shardCount())
	tab := mem.NewLineTable()
	if cfg.EventPlane {
		// Event-plane shards intern their own hash partitions without
		// coordination (mem.NewLineTableSharded); the flat arrays
		// everything else indexes are sharded either way.
		tab = mem.NewLineTableSharded(sharding)
	}
	memory := mem.NewMemorySharded(tab, sharding)
	dram := mem.NewDRAM(eng, st, cfg.MemChannels)
	log := mem.NewLogSharded(st, cfg.LogBanks, tab, sharding)
	ctrl := mem.NewController(eng, st, memory, dram, log)

	m := &Machine{Cfg: cfg, Eng: eng, St: st, Topo: tp, Ctrl: ctrl, Scheme: scheme, prof: prof}
	nodes := make([]coherence.Node, cfg.NProcs)
	m.Procs = make([]*Proc, cfg.NProcs)
	for i := 0; i < cfg.NProcs; i++ {
		p := newProc(m, i, prof, arena)
		m.Procs[i] = p
		nodes[i] = (*procNode)(p)
	}
	m.Dir = coherence.New(tp, st, ctrl, nodes)
	if cfg.EventPlane {
		m.initEP()
	}
	scheme.Attach(m)
	return m
}

// Send delivers fn to processor `to` after the interconnect latency
// plus the cross-processor interrupt cost. Used by the distributed
// checkpoint/rollback protocols (which the paper implements with
// cross-processor interrupts and shared memory, §3.3.4).
func (m *Machine) Send(from, to int, fn func()) {
	if m.ep != nil {
		// Scheme protocol messages capture cross-shard state in plain
		// closures; the event plane supports only the null scheme.
		panic("machine: Send is unavailable in event-plane mode")
	}
	m.St.ProtoMessages++
	m.Eng.Schedule(m.Topo.Latency(from, to)+m.Cfg.InterruptCost, fn)
}

// After schedules fn after delay cycles (a scheme-side timer).
func (m *Machine) After(delay sim.Cycle, fn func()) {
	if m.ep != nil {
		panic("machine: After is unavailable in event-plane mode")
	}
	m.Eng.Schedule(delay, fn)
}

// Now returns the current cycle: the engine clock, or the sharded
// executor's completed-epoch frontier in event-plane mode.
func (m *Machine) Now() sim.Cycle {
	if m.ep != nil {
		return m.ep.se.Now()
	}
	return m.Eng.Now()
}

func (m *Machine) noteInstrs(n uint64) {
	m.totalInstr += n
	if m.targetInstr != 0 && m.totalInstr >= m.targetInstr {
		m.Eng.Stop()
	}
}

// Run executes until the machine has committed totalInstr instructions
// across all processors (re-executed instructions after a rollback
// count again), then stops and records the end cycle. It returns the
// end cycle.
func (m *Machine) Run(totalInstr uint64) sim.Cycle {
	m.targetInstr = m.totalInstr + totalInstr
	if m.ep != nil {
		return m.runEP(0)
	}
	for _, p := range m.Procs {
		p.kick()
	}
	end := m.Eng.Run(0)
	m.St.EndCycle = end
	return end
}

// RunCycles executes for at most n more cycles (used by fault tests to
// let recovery finish).
func (m *Machine) RunCycles(n sim.Cycle) sim.Cycle {
	m.targetInstr = 0
	if m.ep != nil {
		return m.runEP(m.ep.se.Now() + n)
	}
	for _, p := range m.Procs {
		p.kick()
	}
	end := m.Eng.Run(m.Eng.Now() + n)
	m.St.EndCycle = end
	return end
}

// TotalInstructions returns the instructions committed so far
// (including re-execution after rollbacks).
func (m *Machine) TotalInstructions() uint64 {
	if m.ep != nil {
		return m.epTotal()
	}
	return m.totalInstr
}

// FinalizeStats folds per-processor counters (WSIG false-positive
// accounting) into the shared stats. Call once at the end of a run.
func (m *Machine) FinalizeStats() {
	m.St.WSIGTests, m.St.WSIGFalsePositives = 0, 0
	for _, p := range m.Procs {
		t, f := p.deps.FalsePositiveStats()
		m.St.WSIGTests += t
		m.St.WSIGFalsePositives += f
	}
}

// CheckCoherence validates directory/cache agreement (debug/tests).
func (m *Machine) CheckCoherence() {
	m.Dir.CheckInvariants(func(pid int, line uint64) (bool, bool) {
		l := m.Procs[pid].l2.Peek(line)
		if l == nil {
			return false, false
		}
		return true, l.Dirty
	})
}

// NullScheme is the no-checkpointing baseline ("none"): overheads of
// the real schemes are measured against it.
type NullScheme struct{}

// Name implements Scheme.
func (NullScheme) Name() string { return "none" }

// Attach implements Scheme.
func (NullScheme) Attach(*Machine) {}

// IntervalExpired implements Scheme (no-op).
func (NullScheme) IntervalExpired(*Proc) {}

// OutputIO implements Scheme: I/O proceeds without a checkpoint.
func (NullScheme) OutputIO(_ *Proc, resume func()) { resume() }

// BarrierUpdate implements Scheme (no-op).
func (NullScheme) BarrierUpdate(*Proc, bool) {}

// BarrierRelease implements Scheme: the flag is written immediately.
func (NullScheme) BarrierRelease(_ *Proc, proceed func()) { proceed() }

// FaultDetected implements Scheme: without a checkpointing scheme there
// is no recovery; the fault is ignored (tests assert poison survives).
func (NullScheme) FaultDetected(*Proc) {}
