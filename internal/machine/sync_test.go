package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

// The synchronisation runtime executes barriers and locks as real
// shared-memory accesses; these tests pin down its edge cases.

func TestBarrierGenerationsAdvance(t *testing.T) {
	prof := workload.Uniform()
	prof.BarrierPeriod = 2_000
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(300_000)
	// Barrier flags hold monotonically increasing generation counts;
	// with 4 rotating barrier ids and frequent episodes, each flag line
	// must have advanced several generations.
	advanced := 0
	for id := uint64(0); id < 4; id++ {
		if m.Ctrl.Memory().Read(barFlagLine(id)).Val > 2 {
			advanced++
		}
	}
	if advanced == 0 {
		t.Fatal("no barrier flag advanced multiple generations")
	}
	// Barrier locks must all be free at rest (count lines zeroed by the
	// last arriver of each episode or mid-episode — either way bounded).
	for id := uint64(0); id < 4; id++ {
		if v := m.Ctrl.Memory().Read(barCountLine(id)).Val; v > 4 {
			t.Fatalf("barrier %d count %d exceeds processor count", id, v)
		}
	}
}

func TestLockMutualExclusionUnderContention(t *testing.T) {
	// All cores hammer a single lock; the critical sections write a
	// shared cluster line. If mutual exclusion broke, the lock line
	// would exceed 1 or progress would wedge.
	prof := workload.Uniform()
	prof.LockRate = 0.05
	prof.NLocks = 1
	prof.ClusterSize = 0 // one cluster: one hot lock
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(150_000)
	for i, n := range m.St.Instructions {
		if n < 15_000 {
			t.Fatalf("core %d starved under lock contention (%d instrs)", i, n)
		}
	}
	// Lock words only ever hold 0 (free) or 1 (held).
	m.Ctrl.Memory().ForEach(func(addr uint64, w mem.Word) {
		if addr >= lockRegion && addr < barRegion && w.Val > 1 {
			t.Errorf("lock line %#x holds %d", addr, w.Val)
		}
	})
}

func TestSnapshotMidBarrierRollbackReexecutes(t *testing.T) {
	// Checkpoint while processors sit inside a barrier (spinning or in
	// the update section), run on, then roll everything back: the
	// machine must make progress again — the barrier state in memory
	// and the micro-sequence state in the snapshot stay consistent.
	cfg := testCfg(4)
	cfg.DetectLatency = 500
	prof := workload.Uniform()
	prof.BarrierPeriod = 1_500 // constant barrier churn
	m := New(cfg, prof, NullScheme{})
	m.Run(30_000)

	ok := false
	checkpointAllForeground(m, nil, func() { ok = true })
	m.RunCycles(2_000_000)
	if !ok {
		t.Fatal("checkpoint stalled")
	}
	m.Run(30_000)

	done := false
	pauseAll(m, func() {
		m.RollbackProcs(m.Procs)
		done = true
	})
	m.RunCycles(2_000_000)
	if !done {
		t.Fatal("rollback never ran")
	}
	for _, p := range m.Procs {
		p.Resume()
	}
	before := m.St.TotalInstructions()
	m.Run(60_000)
	if m.St.TotalInstructions() < before+50_000 {
		t.Fatal("machine wedged after mid-barrier rollback")
	}
	m.CheckCoherence()
}

func TestRepeatedRollbacksConverge(t *testing.T) {
	// Rolling back to the same checkpoint repeatedly must be idempotent
	// on memory state (re-execution is deterministic).
	cfg := testCfg(2)
	cfg.DetectLatency = 500
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(40_000)
	ok := false
	checkpointAllForeground(m, nil, func() { ok = true })
	m.RunCycles(2_000_000)
	if !ok {
		t.Fatal("checkpoint stalled")
	}

	var snaps []int
	for round := 0; round < 3; round++ {
		m.Run(20_000)
		done := false
		pauseAll(m, func() {
			m.RollbackProcs(m.Procs)
			done = true
		})
		m.RunCycles(2_000_000)
		if !done {
			t.Fatalf("rollback %d never ran", round)
		}
		snaps = append(snaps, len(m.Ctrl.Memory().Snapshot()))
		for _, p := range m.Procs {
			p.Resume()
		}
	}
	if snaps[0] != snaps[1] || snaps[1] != snaps[2] {
		t.Fatalf("memory footprint diverges across repeated rollbacks: %v", snaps)
	}
}

func TestDormantProcPausesImmediately(t *testing.T) {
	// A processor dormant at an I/O wait counts as paused the moment a
	// pause is requested (protocol liveness).
	prof := workload.Uniform()
	prof.IOPeriod = 1_000
	var waiting *Proc
	scheme := &hookScheme{io: func(p *Proc, resume func()) {
		if waiting == nil {
			waiting = p // never resumed: stays dormant
			return
		}
		resume()
	}}
	m := New(testCfg(2), prof, scheme)
	m.Run(50_000)
	if waiting == nil {
		t.Fatal("no I/O op reached the scheme")
	}
	acked := false
	waiting.RequestPause(func() { acked = true })
	if !acked || !waiting.Paused() {
		t.Fatal("dormant processor did not pause immediately")
	}
}

// hookScheme lets tests override single hooks.
type hookScheme struct {
	io func(*Proc, func())
}

func (h *hookScheme) Name() string                           { return "hook" }
func (h *hookScheme) Attach(*Machine)                        {}
func (h *hookScheme) IntervalExpired(*Proc)                  {}
func (h *hookScheme) BarrierUpdate(*Proc, bool)              {}
func (h *hookScheme) BarrierRelease(_ *Proc, proceed func()) { proceed() }
func (h *hookScheme) FaultDetected(*Proc)                    {}
func (h *hookScheme) OutputIO(p *Proc, resume func()) {
	if h.io != nil {
		h.io(p, resume)
		return
	}
	resume()
}
