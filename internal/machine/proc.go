package machine

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dep"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Synchronisation variables live in their own line-address region, far
// from workload data. Locks and barriers are ordinary shared-memory
// lines: their state rolls back with everything else.
const (
	syncBase    = uint64(1) << 56
	lockRegion  = syncBase
	barRegion   = syncBase + (1 << 40)
	barLockOff  = 0
	barCountOff = 1
	barFlagOff  = 2
	barLineSpan = 4
	lockBackoff = 3 // spin-poll multiples for contended locks
)

func lockLine(id uint64) uint64    { return lockRegion + id }
func barLockLine(id uint64) uint64 { return barRegion + id*barLineSpan + barLockOff }
func barCountLine(id uint64) uint64 {
	return barRegion + id*barLineSpan + barCountOff
}
func barFlagLine(id uint64) uint64 { return barRegion + id*barLineSpan + barFlagOff }

// microStage enumerates the steps of the lock/barrier micro-sequences.
type microStage uint8

const (
	msNone microStage = iota
	// Lock acquisition (test-and-test-and-set).
	msLockRead
	msLockTry
	// Barrier (Fig 4.2a): lock, read generation, read count, update,
	// (last arriver: zero count, gate, set flag), unlock, spin.
	msBarLockRead
	msBarLockTry
	msBarReadGen
	msBarReadCount
	msBarUpdate
	msBarZero
	msBarGate
	msBarSetFlag
	msBarUnlock
	msBarSpin
)

// microState is the in-flight state of a sync micro-sequence. It is
// part of a processor's snapshot: a checkpoint can land mid-barrier and
// rollback resumes exactly there.
type microState struct {
	stage microStage
	op    workload.Op
	// acc accumulates the latency charged when the sequence finishes.
	acc sim.Cycle
	// gen and count are the barrier values read so far; last marks the
	// final arriver.
	gen   uint64
	count uint64
	last  bool
}

// Snapshot is a processor's "register state" at a checkpoint: enough to
// re-execute from that point (§3.3.3 logs it with the checkpoint).
type Snapshot struct {
	stream workload.State
	micro  microState
	rng    uint64
	tick   uint64
}

// CkptRec describes one checkpoint of one processor.
type CkptRec struct {
	// OpenedEpoch is the checkpoint interval this checkpoint opened;
	// rolling back to this checkpoint undoes log entries with
	// epoch >= OpenedEpoch and restores Snap.
	OpenedEpoch uint64
	Snap        Snapshot
	// CompletedAt is the cycle at which the checkpoint (including all
	// writebacks and the closing sync) finished; pendingCycle while in
	// progress. A checkpoint is safe once CompletedAt+L <= now (§3.2).
	CompletedAt sim.Cycle
	// Lines counts the dirty lines written back for this checkpoint.
	Lines uint64
}

const pendingCycle = ^sim.Cycle(0)

// Proc is one tile: core, L1, L2 controller with Dep registers, and the
// per-processor slice of checkpoint state.
type Proc struct {
	m  *Machine
	id int

	// st and eng are the stats and engine this processor's step loop
	// charges and schedules on: the machine's own in the sequential
	// model, the owning shard's partition in event-plane mode.
	st  *stats.Stats
	eng *sim.Engine
	// epsh is the owning event-plane shard (nil in the sequential
	// model; its presence selects every event-plane branch below).
	epsh *epShard

	l1, l2 *cache.Cache
	deps   *dep.Tracker
	stream *workload.Stream
	rng    sim.RNG

	// Event-plane miss handling: a load/store that misses issues a
	// coherence walk and stalls (epStalled) with the op stashed
	// (epOp/epOpValid); the grant installs the line and replays the op,
	// with epReplayArmed/epReplayLine suppressing the replay's
	// double-accounting. epWalkCtr numbers this processor's walks (the
	// machine-unique message ordering base); epVictim carries the L2
	// victim a grant install displaced back to the plane.
	epStalled     bool
	epOp          workload.Op
	epOpValid     bool
	epReplayArmed bool
	epReplayLine  uint64
	epWalkCtr     uint64
	epVictim      coherence.EPEvict

	micro microState
	tick  uint64 // per-proc op counter (store-value generator)

	// stepFn and drainStepFn are the step/drainStep methods bound once
	// at construction: a method value like p.step allocates a fresh
	// closure at every use, which made the per-op scheduling path the
	// simulator's second-largest allocation source.
	stepFn      func()
	drainStepFn func()

	// Execution control.
	stepScheduled bool
	paused        bool
	pauseReq      func()
	dormant       bool // waiting for a scheme callback (I/O, barrier gate)

	// Checkpoint state.
	curEpoch       uint64
	instrSinceCkpt uint64
	history        []*CkptRec
	// InCkpt is owned by the scheme: set while the processor is
	// engaged in a checkpoint (or rollback) protocol.
	InCkpt bool

	// Delayed-writeback drain state (§4.1).
	delayedQueue []uint64
	draining     bool
	drainRush    bool
	drainDone    func()

	// Fault state: faulty marks the core as corrupted by an injected
	// fault; tainted marks it as having consumed poisoned data.
	faulty, tainted bool

	depStallSince sim.Cycle

	// restoreGen increments on every rollback; long-lived callbacks
	// (barrier gates, I/O continuations, epoch-open retries) capture it
	// and go stale when it changes.
	restoreGen uint64
	// openPending guards against overlapping OpenNextEpoch calls.
	openPending bool

	// recFree pools dead CkptRec objects so the per-checkpoint record
	// allocation disappears once a machine is recycled across trials
	// (snapshot restore / Reset return every record here).
	recFree []*CkptRec
}

// Event tags (sim.Tag kinds) for the closures a processor keeps in the
// event queue at a quiescent point. Tagged events are pure functions of
// restorable processor state, which is what lets a machine snapshot
// save the pending queue as data (see snapshot.go).
const (
	tagStep uint8 = iota + 1
	tagDrain
)

// procRNGSeed derives processor id's private RNG seed from the machine
// seed (shared by newProc and Proc.reset so a Reset machine replays the
// same streams as a fresh build).
func procRNGSeed(machineSeed uint64, id int) uint64 {
	return machineSeed*0x5851f42d4c957f2d + uint64(id) + 1
}

func newProc(m *Machine, id int, prof *workload.Profile, arena *cache.Arena) *Proc {
	cfg := m.Cfg
	p := &Proc{
		m:      m,
		id:     id,
		st:     m.St,
		eng:    m.Eng,
		l1:     cache.NewIn(arena, cfg.L1Size, cfg.L1Ways, cfg.LineBytes),
		l2:     cache.NewIn(arena, cfg.L2Size, cfg.L2Ways, cfg.LineBytes),
		deps:   dep.NewTracker(cfg.DepSets, cfg.WSIGBits, cfg.WSIGHashes),
		stream: workload.NewStream(prof, id, cfg.NProcs, cfg.Seed),
		rng:    *sim.NewRNG(procRNGSeed(cfg.Seed, id)),
	}
	p.stepFn = p.step
	p.drainStepFn = p.drainStep
	// The initial state is checkpoint 0: program start is axiomatically
	// safe; rolling back to it replays from the beginning.
	p.history = append(p.history, &CkptRec{
		OpenedEpoch: 0,
		Snap:        p.takeSnapshot(),
		CompletedAt: 0,
	})
	return p
}

// ID returns the processor id.
func (p *Proc) ID() int { return p.id }

// Deps exposes the Dep register tracker (schemes and tests).
func (p *Proc) Deps() *dep.Tracker { return p.deps }

// Epoch returns the current checkpoint interval number.
func (p *Proc) Epoch() uint64 { return p.curEpoch }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Faulty reports whether the core currently has an injected fault.
func (p *Proc) Faulty() bool { return p.faulty }

// Tainted reports whether the core has consumed poisoned data.
func (p *Proc) Tainted() bool { return p.tainted }

// InjectFault marks the core faulty: every value it writes from now on
// is poisoned, until a rollback clears it.
func (p *Proc) InjectFault() { p.faulty = true }

// InstrSinceCkpt returns the instructions executed since the last
// checkpoint (the barrier optimisation's "interested in checkpointing"
// test reads it, Fig 4.2d).
func (p *Proc) InstrSinceCkpt() uint64 { return p.instrSinceCkpt }

// --- step loop ---------------------------------------------------------

func (p *Proc) kick() { p.scheduleStep(0) }

func (p *Proc) scheduleStep(delay sim.Cycle) {
	if p.stepScheduled || p.paused || p.dormant || p.epStalled {
		return
	}
	p.stepScheduled = true
	if p.epsh != nil {
		// Step events carry even keys (pid<<1): together with the odd
		// coherence-leg keys this makes same-cycle firing order a pure
		// function of (cycle, key), independent of the shard count.
		p.eng.ScheduleKeyedTagged(delay, uint64(p.id)<<1, sim.Tag{Kind: tagStep, ID: int32(p.id)}, p.stepFn)
		return
	}
	p.eng.ScheduleTagged(delay, sim.Tag{Kind: tagStep, ID: int32(p.id)}, p.stepFn)
}

func (p *Proc) step() {
	p.stepScheduled = false
	if p.paused || p.dormant {
		return
	}
	if p.pauseReq != nil {
		p.enterPause()
		return
	}
	if p.micro.stage != msNone {
		p.microStep()
		return
	}
	var op workload.Op
	if p.epOpValid {
		// Replaying an op whose memory access stalled on a coherence
		// walk: the stream and tick already advanced the first time.
		op, p.epOpValid = p.epOp, false
	} else {
		op = p.stream.Next()
		p.tick++
	}
	switch op.Kind {
	case workload.Compute:
		p.completeOp(op, sim.Cycle(op.Arg))
	case workload.Load:
		lat := p.load(op.Arg)
		if p.epStalled {
			p.epOp, p.epOpValid = op, true
			return
		}
		p.completeOp(op, lat)
	case workload.Store:
		lat := p.store(op.Arg, p.storeValue())
		if p.epStalled {
			p.epOp, p.epOpValid = op, true
			return
		}
		p.completeOp(op, lat)
	case workload.Lock:
		p.micro = microState{stage: msLockRead, op: op}
		p.microStep()
	case workload.Unlock:
		lat := p.store(lockLine(op.Arg), 0)
		if p.epStalled {
			p.epOp, p.epOpValid = op, true
			return
		}
		p.completeOp(op, lat)
	case workload.Barrier:
		p.micro = microState{stage: msBarLockRead, op: op}
		p.microStep()
	case workload.OutputIO:
		p.dormant = true
		gen := p.restoreGen
		p.m.Scheme.OutputIO(p, func() {
			if p.restoreGen != gen {
				return // rolled back meanwhile; the op re-executes
			}
			p.dormant = false
			p.completeOp(op, 1)
		})
	}
}

// completeOp commits op (instruction accounting, checkpoint interval
// check) and schedules the next step after lat cycles.
func (p *Proc) completeOp(op workload.Op, lat sim.Cycle) {
	n := op.Instructions()
	p.st.Instructions[p.id] += n
	p.instrSinceCkpt += n
	p.noteInstrs(n)
	if lat < 1 {
		lat = 1
	}
	p.scheduleStep(lat)
	if p.instrSinceCkpt >= p.m.Cfg.CkptInterval && !p.InCkpt {
		p.m.Scheme.IntervalExpired(p)
	}
}

// storeValue derives the (deterministic) value a store writes.
func (p *Proc) storeValue() uint64 {
	return uint64(p.id+1)<<48 ^ p.tick
}

// --- pausing ------------------------------------------------------------

// RequestPause asks the processor to stop at its next op/micro-op
// boundary and then call ack. If it is already paused, ack fires
// immediately. Spin loops count as boundaries, so a pause request is
// honoured promptly even inside a barrier wait.
func (p *Proc) RequestPause(ack func()) {
	if p.paused {
		ack()
		return
	}
	prev := p.pauseReq
	p.pauseReq = func() {
		if prev != nil {
			prev()
		}
		ack()
	}
	// A dormant proc (I/O wait, barrier gate) cannot reach a boundary;
	// it counts as paused for protocol purposes the moment it is asked.
	if p.dormant {
		req := p.pauseReq
		p.pauseReq = nil
		p.paused = true
		req()
	}
}

func (p *Proc) enterPause() {
	req := p.pauseReq
	p.pauseReq = nil
	p.paused = true
	req()
}

// Paused reports whether the processor is stopped.
func (p *Proc) Paused() bool { return p.paused }

// Resume restarts a paused processor.
func (p *Proc) Resume() {
	if !p.paused {
		return
	}
	p.paused = false
	if !p.dormant {
		p.kick()
	}
}

// --- synchronisation micro-sequences -----------------------------------

func (p *Proc) microStep() {
	ms := &p.micro
	switch ms.stage {
	case msLockRead, msBarLockRead:
		line := p.lockLineFor()
		w, lat := p.loadWord(line)
		if p.epStalled {
			return // the grant replays this stage (micro state untouched)
		}
		ms.acc += lat
		if w.Val == 0 {
			ms.stage++
			p.scheduleStep(lat)
			return
		}
		// Contended: back off and re-read.
		p.scheduleStep(lat + p.backoff())
	case msLockTry, msBarLockTry:
		line := p.lockLineFor()
		old, lat := p.rmw(line, 1)
		if p.epStalled {
			return
		}
		ms.acc += lat
		if old.Val != 0 {
			ms.stage-- // lost the race: back to test
			p.scheduleStep(lat + p.backoff())
			return
		}
		if ms.stage == msLockTry {
			p.finishMicro(lat)
			return
		}
		ms.stage = msBarReadGen
		p.scheduleStep(lat)
	case msBarReadGen:
		w, lat := p.loadWord(barFlagLine(ms.op.Arg))
		if p.epStalled {
			return
		}
		ms.gen = w.Val
		ms.acc += lat
		ms.stage = msBarReadCount
		p.scheduleStep(lat)
	case msBarReadCount:
		w, lat := p.loadWord(barCountLine(ms.op.Arg))
		if p.epStalled {
			return
		}
		ms.count = w.Val
		ms.acc += lat
		ms.stage = msBarUpdate
		p.scheduleStep(lat)
	case msBarUpdate:
		lat := p.store(barCountLine(ms.op.Arg), ms.count+1)
		if p.epStalled {
			return
		}
		ms.acc += lat
		ms.last = ms.count+1 >= uint64(p.m.Cfg.NProcs)
		p.m.Scheme.BarrierUpdate(p, ms.last)
		if ms.last {
			ms.stage = msBarZero
		} else {
			ms.stage = msBarUnlock
		}
		p.scheduleStep(lat)
	case msBarZero:
		lat := p.store(barCountLine(ms.op.Arg), 0)
		if p.epStalled {
			return
		}
		ms.acc += lat
		ms.stage = msBarGate
		p.scheduleStep(lat)
	case msBarGate:
		// The barrier optimisation may hold the last arriver here until
		// the proactive checkpoint completes (§4.2.1).
		p.dormant = true
		gen := p.restoreGen
		p.m.Scheme.BarrierRelease(p, func() {
			if p.restoreGen != gen {
				return // rolled back meanwhile; the barrier re-executes
			}
			p.dormant = false
			p.micro.stage = msBarSetFlag
			if !p.paused {
				p.kick()
			}
		})
	case msBarSetFlag:
		lat := p.store(barFlagLine(ms.op.Arg), ms.gen+1)
		if p.epStalled {
			return
		}
		ms.acc += lat
		ms.stage = msBarUnlock
		p.scheduleStep(lat)
	case msBarUnlock:
		lat := p.store(barLockLine(ms.op.Arg), 0)
		if p.epStalled {
			return
		}
		ms.acc += lat
		if ms.last {
			p.finishMicro(lat)
			return
		}
		ms.stage = msBarSpin
		p.scheduleStep(lat)
	case msBarSpin:
		w, lat := p.loadWord(barFlagLine(ms.op.Arg))
		if p.epStalled {
			return
		}
		ms.acc += lat
		if w.Val != ms.gen {
			p.finishMicro(lat)
			return
		}
		p.scheduleStep(lat + p.m.Cfg.SpinPoll)
	default:
		panic("machine: bad micro stage")
	}
}

func (p *Proc) lockLineFor() uint64 {
	if p.micro.op.Kind == workload.Barrier {
		return barLockLine(p.micro.op.Arg)
	}
	return lockLine(p.micro.op.Arg)
}

func (p *Proc) backoff() sim.Cycle {
	return p.m.Cfg.SpinPoll*lockBackoff + sim.Cycle(p.rng.Intn(int(p.m.Cfg.SpinPoll)+1))
}

func (p *Proc) finishMicro(lat sim.Cycle) {
	op := p.micro.op
	p.micro = microState{}
	p.completeOp(op, lat)
}

// --- memory operations ---------------------------------------------------

// consume applies poison propagation on a loaded value.
func (p *Proc) consume(w mem.Word) {
	if w.Poison && !p.tainted {
		p.tainted = true
		if p.m.OnTaint != nil {
			p.m.OnTaint(p)
		}
	}
}

// wsigInsert records line in the current interval's write signature
// (and the exact shadow for false-positive measurement).
func (p *Proc) wsigInsert(line uint64) {
	p.deps.Current().WSIG.Insert(line)
}

// loadWord performs a load and returns the value (sync sequences need
// it); load is the plain wrapper. In event-plane mode an L2 miss issues
// a coherence walk and stalls the processor (epStalled); the grant
// installs the line and the access replays as an L2 hit, with the
// replay flag suppressing the second round of miss accounting.
func (p *Proc) loadWord(line uint64) (mem.Word, sim.Cycle) {
	st := p.st
	replay := p.epReplayArmed && line == p.epReplayLine
	if replay {
		p.epReplayArmed = false
	} else {
		st.MemOps[p.id]++
	}
	cfg := p.m.Cfg
	if p.l1.Lookup(line) != nil {
		st.L1Hits++
		l2 := p.l2.Peek(line) // inclusion: must be present
		if l2 == nil {
			panic("machine: L1 hit without L2 copy")
		}
		p.consume(l2.Data)
		return l2.Data, cfg.L1Hit
	}
	if !replay {
		st.L1Misses++
	}
	lat := cfg.L1Hit
	if l2 := p.l2.Lookup(line); l2 != nil {
		if !replay {
			st.L2Hits++
		}
		lat += cfg.L2Hit
		p.fillL1(line, l2.Data)
		p.consume(l2.Data)
		return l2.Data, lat
	}
	st.L2Misses++
	lat += cfg.L2Hit
	if p.epsh != nil {
		p.epIssueWalk(line, false)
		return mem.Word{}, 0
	}
	res := p.m.Dir.Read(p.id, line)
	lat += res.Latency
	l2 := p.insertL2(line)
	l2.State = res.State
	l2.Data = res.Data
	l2.Dirty = false
	l2.Delayed = false
	if res.State == cache.Exclusive {
		// RDX: the processor may write silently later, so the line
		// enters the signature now (§3.3.1 "written to or read
		// exclusively").
		p.wsigInsert(line)
	}
	p.fillL1(line, res.Data)
	p.consume(res.Data)
	return res.Data, lat
}

func (p *Proc) load(line uint64) sim.Cycle {
	_, lat := p.loadWord(line)
	return lat
}

// store writes val to line and returns the latency.
func (p *Proc) store(line uint64, val uint64) sim.Cycle {
	w := mem.Word{Val: val, Poison: p.faulty || p.tainted}
	_, lat := p.storeWord(line, w)
	return lat
}

// rmw atomically reads line and writes val (lock test-and-set). The
// returned word is the pre-write value.
func (p *Proc) rmw(line uint64, val uint64) (mem.Word, sim.Cycle) {
	w := mem.Word{Val: val, Poison: p.faulty || p.tainted}
	old, lat := p.storeWord(line, w)
	if p.epStalled {
		return old, lat // stalled on a walk: the grant replays the RMW
	}
	p.consume(old)
	return old, lat
}

func (p *Proc) storeWord(line uint64, w mem.Word) (mem.Word, sim.Cycle) {
	st := p.st
	replay := p.epReplayArmed && line == p.epReplayLine
	if replay {
		p.epReplayArmed = false
	} else {
		st.MemOps[p.id]++
	}
	cfg := p.m.Cfg
	lat := cfg.L1Hit + cfg.L2Hit // write-through L1: every store reaches L2
	var old mem.Word

	l2 := p.l2.Lookup(line)
	switch {
	case l2 != nil && l2.State == cache.Modified:
		if !replay {
			st.L2Hits++
		}
		old = l2.Data
		if l2.Delayed {
			// A write to a Delayed line forces its writeback first
			// (§4.1): the old value moves to the L2 writeback buffer
			// (the controller logs it) and the write completes after a
			// short fixed delay — it does not wait for the DRAM queue.
			p.m.Dir.WritebackRetain(p.id, line, l2.Data, l2.Epoch, false)
			lat += 4
			l2.Delayed = false
			l2.Epoch = p.curEpoch
			p.wsigInsert(line)
		} else if l2.Epoch != p.curEpoch {
			// Dirty line surviving into a new interval can only happen
			// transiently; re-tag conservatively.
			l2.Epoch = p.curEpoch
			p.wsigInsert(line)
		}
		l2.Data = w
	case l2 != nil && l2.State == cache.Exclusive:
		st.L2Hits++
		old = l2.Data
		// Silent E->M upgrade: no directory transaction, but the L2
		// controller records the write locally in the current WSIG
		// (LW-ID already points here from the RDX).
		l2.State = cache.Modified
		l2.Dirty = true
		l2.Epoch = p.curEpoch
		l2.Data = w
		p.wsigInsert(line)
	case l2 != nil: // Shared: upgrade
		st.L2Hits++
		if p.epsh != nil {
			p.epIssueWalk(line, true)
			return mem.Word{}, 0
		}
		res := p.m.Dir.Write(p.id, line)
		lat += res.Latency
		old = res.Data
		l2.State = cache.Modified
		l2.Dirty = true
		l2.Epoch = p.curEpoch
		l2.Data = w
		p.wsigInsert(line)
	default:
		st.L2Misses++
		if p.epsh != nil {
			p.epIssueWalk(line, true)
			return mem.Word{}, 0
		}
		res := p.m.Dir.Write(p.id, line)
		lat += res.Latency
		old = res.Data
		nl := p.insertL2(line)
		nl.State = cache.Modified
		nl.Dirty = true
		nl.Delayed = false
		nl.Epoch = p.curEpoch
		nl.Data = w
		p.wsigInsert(line)
	}
	p.fillL1(line, w)
	return old, lat
}

func (p *Proc) fillL1(line uint64, w mem.Word) {
	l, _, _ := p.l1.Insert(line)
	l.State = cache.Shared
	l.Data = w
}

func (p *Proc) insertL2(line uint64) *cache.Line {
	l, victim, ev := p.l2.Insert(line)
	if ev {
		p.evictVictim(victim)
	}
	return l
}

func (p *Proc) evictVictim(v cache.Line) {
	p.st.L2Evictions++
	p.l1.Invalidate(v.Addr) // inclusion
	if p.epsh != nil {
		// Directory state is home-shard-only in event-plane mode: the
		// victim is stashed for the grant handler to return, and the
		// plane routes it as a WBEVICT/DROPSHARED message leg.
		if v.Dirty {
			p.epVictim = coherence.EPEvict{Line: v.Addr, Data: v.Data, Epoch: v.Epoch, Kind: coherence.EvictDirty}
		} else if v.State == cache.Shared {
			p.epVictim = coherence.EPEvict{Line: v.Addr, Kind: coherence.EvictShared}
		}
		return
	}
	if v.Dirty {
		// Delayed or not, a displaced dirty line goes to memory now;
		// the log entry carries the epoch in which it was dirtied.
		p.m.Dir.WritebackEvict(p.id, v.Addr, v.Data, v.Epoch)
		return
	}
	if v.State == cache.Shared {
		p.m.Dir.DropShared(p.id, v.Addr)
	}
	// Clean exclusive lines are dropped silently; the directory
	// discovers the stale ownership on the next request.
}
