package machine

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/dep"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Persistent-snapshot codec: a MachineSnapshot serialized to JSON so a
// warmed machine image can outlive the process (internal/store keeps it
// content-addressed and self-verifying; campaign.TrialRunner loads it
// instead of re-running the warmup on cold start).
//
// The codec is deliberately shape-checked rather than trusting: decode
// refuses a payload whose format version, Config or scheme name does
// not match the machine it is decoded into. Stream identity (profile
// pointer, core number, derived burst constants) is never serialized —
// workload.StateFromImage re-derives it from the target machine, so a
// stale profile can not be smuggled in through a stored snapshot.
//
// Two wire formats coexist. A 1-shard machine writes format 1 — byte
// identical to the pre-sharding codec, so every snapshot in an existing
// store stays loadable and a fresh encode reproduces the committed
// bytes exactly (the flat Mem/Dir arrays and the Shards-less Cfg are
// reconstructed from the sharded in-memory form). A machine with more
// than one shard writes format 2: Cfg carries Shards and the memory and
// directory state serialize per shard, mirroring the in-memory
// partition so encode/decode can stay a per-shard operation.

// SnapshotFormat is the newest persisted-snapshot schema version. Bump
// it on any change to the image structs below (or to the semantics of
// the fields they mirror); stored snapshots with an unknown format are
// ignored, not migrated. Format 1 (unsharded machines) remains written
// and readable for bit-compatibility with pre-sharding stores.
const SnapshotFormat = 2

const snapshotFormatV1 = 1

// microImage mirrors microState.
type microImage struct {
	Stage uint8       `json:"stage"`
	Op    workload.Op `json:"op"`
	Acc   sim.Cycle   `json:"acc"`
	Gen   uint64      `json:"gen"`
	Count uint64      `json:"count"`
	Last  bool        `json:"last"`
}

func (mi microImage) state() microState {
	return microState{stage: microStage(mi.Stage), op: mi.Op, acc: mi.Acc, gen: mi.Gen, count: mi.Count, last: mi.Last}
}

func imageOfMicro(ms microState) microImage {
	return microImage{Stage: uint8(ms.stage), Op: ms.op, Acc: ms.acc, Gen: ms.gen, Count: ms.count, Last: ms.last}
}

// regImage mirrors Snapshot (a processor's register state at a
// checkpoint).
type regImage struct {
	Stream workload.StateImage `json:"stream"`
	Micro  microImage          `json:"micro"`
	RNG    uint64              `json:"rng"`
	Tick   uint64              `json:"tick"`
}

// ckptRecImage mirrors CkptRec.
type ckptRecImage struct {
	OpenedEpoch uint64    `json:"opened_epoch"`
	Snap        regImage  `json:"snap"`
	CompletedAt sim.Cycle `json:"completed_at"`
	Lines       uint64    `json:"lines"`
}

// procImage mirrors procSnapshot.
type procImage struct {
	L1             cache.Snapshot      `json:"l1"`
	L2             cache.Snapshot      `json:"l2"`
	Deps           dep.Snapshot        `json:"deps"`
	Stream         workload.StateImage `json:"stream"`
	RNG            uint64              `json:"rng"`
	Micro          microImage          `json:"micro"`
	Tick           uint64              `json:"tick"`
	StepScheduled  bool                `json:"step_scheduled"`
	CurEpoch       uint64              `json:"cur_epoch"`
	InstrSinceCkpt uint64              `json:"instr_since_ckpt"`
	History        []ckptRecImage      `json:"history"`
	DelayedQueue   []uint64            `json:"delayed_queue"`
	DrainRush      bool                `json:"drain_rush"`
	Faulty         bool                `json:"faulty"`
	Tainted        bool                `json:"tainted"`
	DepStallSince  sim.Cycle           `json:"dep_stall_since"`
	RestoreGen     uint64              `json:"restore_gen"`
}

// configV1 mirrors the pre-sharding Config field-for-field (no Shards),
// so a format-1 payload's "cfg" object keeps the historical keys.
type configV1 struct {
	NProcs         int
	L1Size, L1Ways int
	L2Size, L2Ways int
	LineBytes      int
	L1Hit, L2Hit   sim.Cycle
	MemChannels    int
	LogBanks       int
	CkptInterval   uint64
	DetectLatency  sim.Cycle
	DepSets        int
	WSIGBits       int
	WSIGHashes     int
	SpinPoll       sim.Cycle
	InterruptCost  sim.Cycle
	DWBGap         sim.Cycle
	Seed           uint64
}

func configV1Of(c Config) configV1 {
	return configV1{
		NProcs: c.NProcs,
		L1Size: c.L1Size, L1Ways: c.L1Ways,
		L2Size: c.L2Size, L2Ways: c.L2Ways,
		LineBytes: c.LineBytes,
		L1Hit:     c.L1Hit, L2Hit: c.L2Hit,
		MemChannels:   c.MemChannels,
		LogBanks:      c.LogBanks,
		CkptInterval:  c.CkptInterval,
		DetectLatency: c.DetectLatency,
		DepSets:       c.DepSets,
		WSIGBits:      c.WSIGBits,
		WSIGHashes:    c.WSIGHashes,
		SpinPoll:      c.SpinPoll,
		InterruptCost: c.InterruptCost,
		DWBGap:        c.DWBGap,
		Seed:          c.Seed,
	}
}

// memImageV1 mirrors the pre-sharding mem.MemorySnapshot wire form: a
// flat ID-indexed word array (untagged fields — the historical keys).
type memImageV1 struct {
	Words   []mem.Word
	Nonzero int
}

// dirImageV1 mirrors the pre-sharding coherence.Snapshot wire form.
type dirImageV1 struct {
	Owner   []int32
	LWID    []int32
	Sharers []uint64
}

// snapshotImageV1 is the format-1 (unsharded) on-disk form of a
// MachineSnapshot — byte-identical to the pre-sharding codec.
type snapshotImageV1 struct {
	Format int      `json:"format"`
	Cfg    configV1 `json:"cfg"`

	Now    sim.Cycle        `json:"now"`
	Seq    uint64           `json:"seq"`
	Events []sim.SavedEvent `json:"events"`

	TotalInstr  uint64 `json:"total_instr"`
	TargetInstr uint64 `json:"target_instr"`

	Tab  []uint64         `json:"tab"`
	St   *stats.Stats     `json:"st"`
	Mem  memImageV1       `json:"mem"`
	Log  mem.LogImage     `json:"log"`
	DRAM mem.DRAMSnapshot `json:"dram"`
	Dir  dirImageV1       `json:"dir"`

	Procs []procImage `json:"procs"`

	// SchemeName is the scheme the snapshot was captured under; decode
	// refuses a machine running a different one (warm state depends on
	// the scheme's behaviour during the warmup).
	SchemeName string `json:"scheme_name"`
	// Scheme is the SchemePersister-encoded scheme state; nil for a
	// stateless scheme.
	Scheme json.RawMessage `json:"scheme,omitempty"`
}

// memImageV2 is the per-shard wire form of a memory capture.
type memImageV2 struct {
	Shards  [][]mem.Word `json:"shards"`
	Nonzero int          `json:"nonzero"`
}

// dirImageV2 is the per-shard wire form of a directory capture.
type dirImageV2 struct {
	Owner   [][]int32  `json:"owner"`
	LWID    [][]int32  `json:"lwid"`
	Sharers [][]uint64 `json:"sharers"`
	WPP     int        `json:"wpp"`
}

// snapshotImageV2 is the format-2 (sharded) on-disk form: Cfg carries
// Shards, and the memory and directory state serialize per shard.
type snapshotImageV2 struct {
	Format int    `json:"format"`
	Cfg    Config `json:"cfg"`

	Now    sim.Cycle        `json:"now"`
	Seq    uint64           `json:"seq"`
	Events []sim.SavedEvent `json:"events"`

	TotalInstr  uint64 `json:"total_instr"`
	TargetInstr uint64 `json:"target_instr"`

	Tab  []uint64         `json:"tab"`
	St   *stats.Stats     `json:"st"`
	Mem  memImageV2       `json:"mem"`
	Log  mem.LogImage     `json:"log"`
	DRAM mem.DRAMSnapshot `json:"dram"`
	Dir  dirImageV2       `json:"dir"`

	Procs []procImage `json:"procs"`

	SchemeName string          `json:"scheme_name"`
	Scheme     json.RawMessage `json:"scheme,omitempty"`
}

// encodeProcs builds the per-processor images of s.
func encodeProcs(s *MachineSnapshot) []procImage {
	procs := make([]procImage, len(s.procs))
	for i := range s.procs {
		p := &s.procs[i]
		pi := procImage{
			L1:             p.l1,
			L2:             p.l2,
			Deps:           p.deps,
			Stream:         p.stream.Image(),
			RNG:            p.rng,
			Micro:          imageOfMicro(p.micro),
			Tick:           p.tick,
			StepScheduled:  p.stepScheduled,
			CurEpoch:       p.curEpoch,
			InstrSinceCkpt: p.instrSinceCkpt,
			History:        make([]ckptRecImage, len(p.history)),
			DelayedQueue:   p.delayedQueue,
			DrainRush:      p.drainRush,
			Faulty:         p.faulty,
			Tainted:        p.tainted,
			DepStallSince:  p.depStallSince,
			RestoreGen:     p.restoreGen,
		}
		for j, r := range p.history {
			pi.History[j] = ckptRecImage{
				OpenedEpoch: r.OpenedEpoch,
				Snap: regImage{
					Stream: r.Snap.stream.Image(),
					Micro:  imageOfMicro(r.Snap.micro),
					RNG:    r.Snap.rng,
					Tick:   r.Snap.tick,
				},
				CompletedAt: r.CompletedAt,
				Lines:       r.Lines,
			}
		}
		procs[i] = pi
	}
	return procs
}

// encodeScheme serializes the opaque scheme state of s, if any.
func (m *Machine) encodeScheme(s *MachineSnapshot) (json.RawMessage, error) {
	if s.scheme == nil {
		return nil, nil
	}
	sp, ok := m.Scheme.(SchemePersister)
	if !ok {
		return nil, fmt.Errorf("machine: scheme %s holds snapshot state but does not implement SchemePersister", m.Scheme.Name())
	}
	return sp.EncodeSchemeState(s.scheme)
}

// EncodeSnapshot serializes s, which must have been captured from a
// machine of m's shape. An unsharded machine writes format 1 (the
// pre-sharding codec, byte for byte); a sharded machine writes format
// 2. A stateful scheme must implement SchemePersister; otherwise the
// snapshot is memory-only and encoding fails.
func (m *Machine) EncodeSnapshot(s *MachineSnapshot) ([]byte, error) {
	if !s.valid {
		return nil, fmt.Errorf("machine: encode of an empty snapshot")
	}
	if s.cfg.EventPlane {
		// Event-plane snapshots carry per-shard engine heaps, stats and
		// controller state that neither wire format models; they are
		// in-process artifacts (campaign restore / fork) only.
		return nil, fmt.Errorf("machine: event-plane snapshots are not persistable")
	}
	if !sameConfig(s.cfg, m.Cfg) {
		return nil, fmt.Errorf("machine: encode snapshot config mismatch")
	}
	scheme, err := m.encodeScheme(s)
	if err != nil {
		return nil, err
	}
	if s.cfg.shardCount() == 1 {
		owner, lwid, sharers := s.dir.FlatImage()
		im := snapshotImageV1{
			Format:      snapshotFormatV1,
			Cfg:         configV1Of(s.cfg),
			Now:         s.now,
			Seq:         s.seq,
			Events:      s.events,
			TotalInstr:  s.totalInstr,
			TargetInstr: s.targetInstr,
			Tab:         s.tab,
			St:          s.st,
			Mem:         memImageV1{Words: s.mem.FlatWords(mem.NewSharding(1)), Nonzero: s.mem.Nonzero()},
			Log:         s.log.Image(),
			DRAM:        s.dram,
			Dir:         dirImageV1{Owner: owner, LWID: lwid, Sharers: sharers},
			Procs:       encodeProcs(s),
			SchemeName:  m.Scheme.Name(),
			Scheme:      scheme,
		}
		return json.Marshal(&im)
	}
	nsh := s.mem.NumShards()
	mi := memImageV2{Shards: make([][]mem.Word, nsh), Nonzero: s.mem.Nonzero()}
	for i := 0; i < nsh; i++ {
		mi.Shards[i] = s.mem.ShardWords(i)
	}
	di := dirImageV2{
		Owner:   make([][]int32, s.dir.NumShards()),
		LWID:    make([][]int32, s.dir.NumShards()),
		Sharers: make([][]uint64, s.dir.NumShards()),
		WPP:     s.dir.WPP(),
	}
	for i := 0; i < s.dir.NumShards(); i++ {
		di.Owner[i], di.LWID[i], di.Sharers[i] = s.dir.ShardArrays(i)
	}
	im := snapshotImageV2{
		Format:      SnapshotFormat,
		Cfg:         s.cfg,
		Now:         s.now,
		Seq:         s.seq,
		Events:      s.events,
		TotalInstr:  s.totalInstr,
		TargetInstr: s.targetInstr,
		Tab:         s.tab,
		St:          s.st,
		Mem:         mi,
		Log:         s.log.Image(),
		DRAM:        s.dram,
		Dir:         di,
		Procs:       encodeProcs(s),
		SchemeName:  m.Scheme.Name(),
		Scheme:      scheme,
	}
	return json.Marshal(&im)
}

// decodeProcs rebuilds the per-processor snapshot states from their
// images, re-deriving stream identity from m.
func (m *Machine) decodeProcs(images []procImage) []procSnapshot {
	procs := make([]procSnapshot, len(images))
	for i := range images {
		pi := &images[i]
		ps := procSnapshot{
			l1:             pi.L1,
			l2:             pi.L2,
			deps:           pi.Deps,
			stream:         workload.StateFromImage(m.prof, i, m.Cfg.NProcs, pi.Stream),
			rng:            pi.RNG,
			micro:          pi.Micro.state(),
			tick:           pi.Tick,
			stepScheduled:  pi.StepScheduled,
			curEpoch:       pi.CurEpoch,
			instrSinceCkpt: pi.InstrSinceCkpt,
			history:        make([]CkptRec, len(pi.History)),
			delayedQueue:   pi.DelayedQueue,
			drainRush:      pi.DrainRush,
			faulty:         pi.Faulty,
			tainted:        pi.Tainted,
			depStallSince:  pi.DepStallSince,
			restoreGen:     pi.RestoreGen,
		}
		for j := range pi.History {
			h := &pi.History[j]
			ps.history[j] = CkptRec{
				OpenedEpoch: h.OpenedEpoch,
				Snap: Snapshot{
					stream: workload.StateFromImage(m.prof, i, m.Cfg.NProcs, h.Snap.Stream),
					micro:  h.Snap.Micro.state(),
					rng:    h.Snap.RNG,
					tick:   h.Snap.Tick,
				},
				CompletedAt: h.CompletedAt,
				Lines:       h.Lines,
			}
		}
		procs[i] = ps
	}
	return procs
}

// decodeScheme deserializes the opaque scheme state, if any.
func (m *Machine) decodeScheme(raw json.RawMessage) (any, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	sp, ok := m.Scheme.(SchemePersister)
	if !ok {
		return nil, fmt.Errorf("machine: snapshot carries scheme state but scheme %s does not implement SchemePersister", m.Scheme.Name())
	}
	return sp.DecodeSchemeState(raw)
}

// checkShape validates the shape fields every format shares.
func (m *Machine) checkShape(schemeName string, nprocs int, st *stats.Stats) error {
	if schemeName != m.Scheme.Name() {
		return fmt.Errorf("machine: snapshot captured under scheme %s, machine runs %s", schemeName, m.Scheme.Name())
	}
	if nprocs != m.Cfg.NProcs {
		return fmt.Errorf("machine: snapshot has %d procs, want %d", nprocs, m.Cfg.NProcs)
	}
	if st == nil || st.NProcs != m.Cfg.NProcs {
		return fmt.Errorf("machine: snapshot stats shape mismatch")
	}
	return nil
}

// DecodeSnapshot deserializes a payload written by EncodeSnapshot into
// a fresh MachineSnapshot restorable into machines of m's shape. The
// payload's format version, Config and scheme name must match m: a
// format-1 payload only decodes into an unsharded machine, a format-2
// payload only into a machine with the same shard count.
func (m *Machine) DecodeSnapshot(data []byte) (*MachineSnapshot, error) {
	var probe struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("machine: decode snapshot: %w", err)
	}
	switch probe.Format {
	case snapshotFormatV1:
		return m.decodeSnapshotV1(data)
	case SnapshotFormat:
		return m.decodeSnapshotV2(data)
	}
	return nil, fmt.Errorf("machine: snapshot format %d, want %d or %d", probe.Format, snapshotFormatV1, SnapshotFormat)
}

func (m *Machine) decodeSnapshotV1(data []byte) (*MachineSnapshot, error) {
	var im snapshotImageV1
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("machine: decode snapshot: %w", err)
	}
	if m.Cfg.shardCount() != 1 {
		return nil, fmt.Errorf("machine: format-1 snapshot is unsharded, machine has %d shards", m.Cfg.shardCount())
	}
	if im.Cfg != configV1Of(m.Cfg) {
		return nil, fmt.Errorf("machine: snapshot config mismatch")
	}
	if err := m.checkShape(im.SchemeName, len(im.Procs), im.St); err != nil {
		return nil, err
	}
	s := &MachineSnapshot{
		cfg:         m.Cfg,
		now:         im.Now,
		seq:         im.Seq,
		events:      im.Events,
		totalInstr:  im.TotalInstr,
		targetInstr: im.TargetInstr,
		tab:         im.Tab,
		st:          im.St,
		dram:        im.DRAM,
		procs:       m.decodeProcs(im.Procs),
	}
	one := mem.NewSharding(1)
	s.mem.LoadFlatWords(one, im.Mem.Words)
	wpp := (m.Cfg.NProcs + 63) / 64
	if wpp < 1 {
		wpp = 1
	}
	if err := s.dir.LoadFlatImage(one, im.Dir.Owner, im.Dir.LWID, im.Dir.Sharers, wpp); err != nil {
		return nil, err
	}
	if err := s.log.FromImage(&im.Log, one); err != nil {
		return nil, err
	}
	scheme, err := m.decodeScheme(im.Scheme)
	if err != nil {
		return nil, err
	}
	s.scheme = scheme
	s.valid = true
	s.gen = 1
	return s, nil
}

func (m *Machine) decodeSnapshotV2(data []byte) (*MachineSnapshot, error) {
	var im snapshotImageV2
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("machine: decode snapshot: %w", err)
	}
	if !sameConfig(im.Cfg, m.Cfg) {
		return nil, fmt.Errorf("machine: snapshot config mismatch")
	}
	if err := m.checkShape(im.SchemeName, len(im.Procs), im.St); err != nil {
		return nil, err
	}
	nsh := m.Cfg.shardCount()
	if len(im.Mem.Shards) != nsh {
		return nil, fmt.Errorf("machine: snapshot memory has %d shards, want %d", len(im.Mem.Shards), nsh)
	}
	if len(im.Dir.Owner) != nsh {
		return nil, fmt.Errorf("machine: snapshot directory has %d shards, want %d", len(im.Dir.Owner), nsh)
	}
	s := &MachineSnapshot{
		cfg:         m.Cfg,
		now:         im.Now,
		seq:         im.Seq,
		events:      im.Events,
		totalInstr:  im.TotalInstr,
		targetInstr: im.TargetInstr,
		tab:         im.Tab,
		st:          im.St,
		dram:        im.DRAM,
		procs:       m.decodeProcs(im.Procs),
	}
	s.mem.SetShards(im.Mem.Shards)
	if err := s.dir.SetShards(im.Dir.Owner, im.Dir.LWID, im.Dir.Sharers, im.Dir.WPP); err != nil {
		return nil, err
	}
	if err := s.log.FromImage(&im.Log, mem.NewSharding(nsh)); err != nil {
		return nil, err
	}
	scheme, err := m.decodeScheme(im.Scheme)
	if err != nil {
		return nil, err
	}
	s.scheme = scheme
	s.valid = true
	s.gen = 1
	return s, nil
}
