package machine

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dep"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Persistent-snapshot codec: a MachineSnapshot serialized to JSON so a
// warmed machine image can outlive the process (internal/store keeps it
// content-addressed and self-verifying; campaign.TrialRunner loads it
// instead of re-running the warmup on cold start).
//
// The codec is deliberately shape-checked rather than trusting: decode
// refuses a payload whose format version, Config or scheme name does
// not match the machine it is decoded into. Stream identity (profile
// pointer, core number, derived burst constants) is never serialized —
// workload.StateFromImage re-derives it from the target machine, so a
// stale profile can not be smuggled in through a stored snapshot.

// SnapshotFormat versions the persisted-snapshot schema. Bump it on any
// change to the image structs below (or to the semantics of the fields
// they mirror); stored snapshots with another format are ignored, not
// migrated.
const SnapshotFormat = 1

// microImage mirrors microState.
type microImage struct {
	Stage uint8       `json:"stage"`
	Op    workload.Op `json:"op"`
	Acc   sim.Cycle   `json:"acc"`
	Gen   uint64      `json:"gen"`
	Count uint64      `json:"count"`
	Last  bool        `json:"last"`
}

func (mi microImage) state() microState {
	return microState{stage: microStage(mi.Stage), op: mi.Op, acc: mi.Acc, gen: mi.Gen, count: mi.Count, last: mi.Last}
}

func imageOfMicro(ms microState) microImage {
	return microImage{Stage: uint8(ms.stage), Op: ms.op, Acc: ms.acc, Gen: ms.gen, Count: ms.count, Last: ms.last}
}

// regImage mirrors Snapshot (a processor's register state at a
// checkpoint).
type regImage struct {
	Stream workload.StateImage `json:"stream"`
	Micro  microImage          `json:"micro"`
	RNG    uint64              `json:"rng"`
	Tick   uint64              `json:"tick"`
}

// ckptRecImage mirrors CkptRec.
type ckptRecImage struct {
	OpenedEpoch uint64    `json:"opened_epoch"`
	Snap        regImage  `json:"snap"`
	CompletedAt sim.Cycle `json:"completed_at"`
	Lines       uint64    `json:"lines"`
}

// procImage mirrors procSnapshot.
type procImage struct {
	L1             cache.Snapshot      `json:"l1"`
	L2             cache.Snapshot      `json:"l2"`
	Deps           dep.Snapshot        `json:"deps"`
	Stream         workload.StateImage `json:"stream"`
	RNG            uint64              `json:"rng"`
	Micro          microImage          `json:"micro"`
	Tick           uint64              `json:"tick"`
	StepScheduled  bool                `json:"step_scheduled"`
	CurEpoch       uint64              `json:"cur_epoch"`
	InstrSinceCkpt uint64              `json:"instr_since_ckpt"`
	History        []ckptRecImage      `json:"history"`
	DelayedQueue   []uint64            `json:"delayed_queue"`
	DrainRush      bool                `json:"drain_rush"`
	Faulty         bool                `json:"faulty"`
	Tainted        bool                `json:"tainted"`
	DepStallSince  sim.Cycle           `json:"dep_stall_since"`
	RestoreGen     uint64              `json:"restore_gen"`
}

// snapshotImage is the on-disk form of a MachineSnapshot.
type snapshotImage struct {
	Format int    `json:"format"`
	Cfg    Config `json:"cfg"`

	Now    sim.Cycle        `json:"now"`
	Seq    uint64           `json:"seq"`
	Events []sim.SavedEvent `json:"events"`

	TotalInstr  uint64 `json:"total_instr"`
	TargetInstr uint64 `json:"target_instr"`

	Tab  []uint64           `json:"tab"`
	St   *stats.Stats       `json:"st"`
	Mem  mem.MemorySnapshot `json:"mem"`
	Log  mem.LogImage       `json:"log"`
	DRAM mem.DRAMSnapshot   `json:"dram"`
	Dir  coherence.Snapshot `json:"dir"`

	Procs []procImage `json:"procs"`

	// SchemeName is the scheme the snapshot was captured under; decode
	// refuses a machine running a different one (warm state depends on
	// the scheme's behaviour during the warmup).
	SchemeName string `json:"scheme_name"`
	// Scheme is the SchemePersister-encoded scheme state; nil for a
	// stateless scheme.
	Scheme json.RawMessage `json:"scheme,omitempty"`
}

// EncodeSnapshot serializes s, which must have been captured from a
// machine of m's shape. A stateful scheme must implement
// SchemePersister; otherwise the snapshot is memory-only and encoding
// fails.
func (m *Machine) EncodeSnapshot(s *MachineSnapshot) ([]byte, error) {
	if !s.valid {
		return nil, fmt.Errorf("machine: encode of an empty snapshot")
	}
	if s.cfg != m.Cfg {
		return nil, fmt.Errorf("machine: encode snapshot config mismatch")
	}
	im := snapshotImage{
		Format:      SnapshotFormat,
		Cfg:         s.cfg,
		Now:         s.now,
		Seq:         s.seq,
		Events:      s.events,
		TotalInstr:  s.totalInstr,
		TargetInstr: s.targetInstr,
		Tab:         s.tab,
		St:          s.st,
		Mem:         s.mem,
		Log:         s.log.Image(),
		DRAM:        s.dram,
		Dir:         s.dir,
		Procs:       make([]procImage, len(s.procs)),
		SchemeName:  m.Scheme.Name(),
	}
	for i := range s.procs {
		p := &s.procs[i]
		pi := procImage{
			L1:             p.l1,
			L2:             p.l2,
			Deps:           p.deps,
			Stream:         p.stream.Image(),
			RNG:            p.rng,
			Micro:          imageOfMicro(p.micro),
			Tick:           p.tick,
			StepScheduled:  p.stepScheduled,
			CurEpoch:       p.curEpoch,
			InstrSinceCkpt: p.instrSinceCkpt,
			History:        make([]ckptRecImage, len(p.history)),
			DelayedQueue:   p.delayedQueue,
			DrainRush:      p.drainRush,
			Faulty:         p.faulty,
			Tainted:        p.tainted,
			DepStallSince:  p.depStallSince,
			RestoreGen:     p.restoreGen,
		}
		for j, r := range p.history {
			pi.History[j] = ckptRecImage{
				OpenedEpoch: r.OpenedEpoch,
				Snap: regImage{
					Stream: r.Snap.stream.Image(),
					Micro:  imageOfMicro(r.Snap.micro),
					RNG:    r.Snap.rng,
					Tick:   r.Snap.tick,
				},
				CompletedAt: r.CompletedAt,
				Lines:       r.Lines,
			}
		}
		im.Procs[i] = pi
	}
	if s.scheme != nil {
		sp, ok := m.Scheme.(SchemePersister)
		if !ok {
			return nil, fmt.Errorf("machine: scheme %s holds snapshot state but does not implement SchemePersister", m.Scheme.Name())
		}
		data, err := sp.EncodeSchemeState(s.scheme)
		if err != nil {
			return nil, err
		}
		im.Scheme = data
	}
	return json.Marshal(&im)
}

// DecodeSnapshot deserializes a payload written by EncodeSnapshot into
// a fresh MachineSnapshot restorable into machines of m's shape. The
// payload's format version, Config and scheme name must match m.
func (m *Machine) DecodeSnapshot(data []byte) (*MachineSnapshot, error) {
	var im snapshotImage
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("machine: decode snapshot: %w", err)
	}
	if im.Format != SnapshotFormat {
		return nil, fmt.Errorf("machine: snapshot format %d, want %d", im.Format, SnapshotFormat)
	}
	if im.Cfg != m.Cfg {
		return nil, fmt.Errorf("machine: snapshot config mismatch")
	}
	if im.SchemeName != m.Scheme.Name() {
		return nil, fmt.Errorf("machine: snapshot captured under scheme %s, machine runs %s", im.SchemeName, m.Scheme.Name())
	}
	if len(im.Procs) != m.Cfg.NProcs {
		return nil, fmt.Errorf("machine: snapshot has %d procs, want %d", len(im.Procs), m.Cfg.NProcs)
	}
	if im.St == nil || im.St.NProcs != m.Cfg.NProcs {
		return nil, fmt.Errorf("machine: snapshot stats shape mismatch")
	}
	s := &MachineSnapshot{
		cfg:         im.Cfg,
		now:         im.Now,
		seq:         im.Seq,
		events:      im.Events,
		totalInstr:  im.TotalInstr,
		targetInstr: im.TargetInstr,
		tab:         im.Tab,
		st:          im.St,
		mem:         im.Mem,
		dram:        im.DRAM,
		dir:         im.Dir,
		procs:       make([]procSnapshot, len(im.Procs)),
	}
	if err := s.log.FromImage(&im.Log); err != nil {
		return nil, err
	}
	for i := range im.Procs {
		pi := &im.Procs[i]
		ps := procSnapshot{
			l1:             pi.L1,
			l2:             pi.L2,
			deps:           pi.Deps,
			stream:         workload.StateFromImage(m.prof, i, m.Cfg.NProcs, pi.Stream),
			rng:            pi.RNG,
			micro:          pi.Micro.state(),
			tick:           pi.Tick,
			stepScheduled:  pi.StepScheduled,
			curEpoch:       pi.CurEpoch,
			instrSinceCkpt: pi.InstrSinceCkpt,
			history:        make([]CkptRec, len(pi.History)),
			delayedQueue:   pi.DelayedQueue,
			drainRush:      pi.DrainRush,
			faulty:         pi.Faulty,
			tainted:        pi.Tainted,
			depStallSince:  pi.DepStallSince,
			restoreGen:     pi.RestoreGen,
		}
		for j := range pi.History {
			h := &pi.History[j]
			ps.history[j] = CkptRec{
				OpenedEpoch: h.OpenedEpoch,
				Snap: Snapshot{
					stream: workload.StateFromImage(m.prof, i, m.Cfg.NProcs, h.Snap.Stream),
					micro:  h.Snap.Micro.state(),
					rng:    h.Snap.RNG,
					tick:   h.Snap.Tick,
				},
				CompletedAt: h.CompletedAt,
				Lines:       h.Lines,
			}
		}
		s.procs[i] = ps
	}
	if len(im.Scheme) > 0 {
		sp, ok := m.Scheme.(SchemePersister)
		if !ok {
			return nil, fmt.Errorf("machine: snapshot carries scheme state but scheme %s does not implement SchemePersister", m.Scheme.Name())
		}
		st, err := sp.DecodeSchemeState(im.Scheme)
		if err != nil {
			return nil, err
		}
		s.scheme = st
	}
	s.valid = true
	s.gen = 1
	return s, nil
}
