// Event-plane execution: one machine running on sim.ShardedEngine.
//
// The sequential machine executes a coherence transaction as one
// synchronous directory walk inside the requesting processor's event
// and charges the network latency as a number. In event-plane mode
// (Config.EventPlane) that latency becomes real: the machine's state
// shards (mem.Sharding) each get their own engine, stats partition,
// DRAM channel subset and undo-log partition, processors are assigned
// to their group's shard, and every coherence transaction runs as
// message legs between shards (coherence.EventPlane) with delays
// clamped up to the lookahead window. A processor that misses in its
// L2 stalls until the grant leg installs the line and replays the
// access (proc.go).
//
// The event plane is a different timing model from the sequential
// functional protocol — the clamp makes short hops cost the window —
// but it is deterministic in a strong sense: the trajectory (machine
// state, per-processor streams, folded statistics, undo log contents)
// is byte-identical across shard counts, Parallel on/off and
// GOMAXPROCS. That holds because every modeled delay is computed from
// topology inputs alone (never from which shard a leg crosses), every
// pending event carries a machine-unique ordering key (even keys for
// processor steps, odd keys for walk legs), and each line's directory,
// memory, log and DRAM state is touched only on its home shard.
package machine

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	// defaultEPWindow is the lookahead window when Config.EPWindow is
	// zero; minEPWindow is the floor (the minimum topology hop latency,
	// so the clamp never stretches a real delay by more than one hop
	// class).
	defaultEPWindow = 32
	minEPWindow     = 8
	// maxEPShards bounds the shard count so the DRAM channel partition
	// stays exact: the DRAM channel hash and the state-shard hash are
	// the same line hash, so with epDRAMChannels a multiple of the
	// shard count each shard's lines occupy a disjoint channel subset
	// and per-shard DRAM timing is shard-count invariant.
	maxEPShards    = 8
	epDRAMChannels = 8
)

// epWindow resolves the configured lookahead window.
func (c Config) epWindow() sim.Cycle {
	w := c.EPWindow
	if w == 0 {
		w = defaultEPWindow
	}
	if w < minEPWindow {
		w = minEPWindow
	}
	return w
}

// epShard is one engine shard's slice of the machine: its event heap,
// stats partition, DRAM channels and undo-log partition, the controller
// binding them, and the instructions its processors have committed.
type epShard struct {
	id    int
	eng   *sim.Engine
	st    *stats.Stats
	dram  *mem.DRAM
	log   *mem.Log
	ctrl  *mem.Controller
	instr uint64
}

// epState is the event-plane runtime of a machine (Machine.ep).
type epState struct {
	se     *sim.ShardedEngine
	shards []*epShard
	plane  *coherence.EventPlane
	window sim.Cycle
}

// initEP builds the event-plane runtime over an assembled machine
// (NewIn calls it after the directory is wired). The null-scheme
// restriction is structural: checkpoint protocols pause, roll back and
// message other processors synchronously, which would mutate foreign
// shard state inside an event.
func (m *Machine) initEP() {
	cfg := m.Cfg
	nsh := cfg.shardCount()
	if m.Scheme.Name() != "none" {
		panic(fmt.Sprintf("machine: the event plane requires the null scheme, got %q", m.Scheme.Name()))
	}
	if nsh > maxEPShards {
		panic(fmt.Sprintf("machine: the event plane supports at most %d shards, got %d", maxEPShards, nsh))
	}
	if cfg.NProcs%nsh != 0 {
		panic(fmt.Sprintf("machine: %d processors do not split evenly over %d event-plane shards", cfg.NProcs, nsh))
	}
	window := cfg.epWindow()
	se := sim.NewShardedEngine(nsh, window)
	se.Parallel = true
	memory := m.Ctrl.Memory()
	tab := memory.Table()
	sharding := memory.Sharding()
	shards := make([]*epShard, nsh)
	sts := make([]*stats.Stats, nsh)
	ctrls := make([]*mem.Controller, nsh)
	for i := range shards {
		st := stats.New(cfg.NProcs)
		dram := mem.NewDRAM(se.Shard(i), st, epDRAMChannels)
		log := mem.NewLogSharded(st, cfg.LogBanks, tab, sharding)
		ctrl := mem.NewController(se.Shard(i), st, memory, dram, log)
		shards[i] = &epShard{id: i, eng: se.Shard(i), st: st, dram: dram, log: log, ctrl: ctrl}
		sts[i], ctrls[i] = st, ctrl
	}
	nodes := make([]coherence.EPNode, cfg.NProcs)
	per := cfg.NProcs / nsh
	for i, p := range m.Procs {
		sh := shards[i/per]
		p.eng, p.st, p.epsh = sh.eng, sh.st, sh
		nodes[i] = (*procNode)(p)
	}
	plane := coherence.NewEventPlane(m.Dir, nodes, window, sts, ctrls, se.SendKeyed)
	m.ep = &epState{se: se, shards: shards, plane: plane, window: window}
}

// EventPlane reports whether the machine runs in event-plane mode.
func (m *Machine) EventPlane() bool { return m.ep != nil }

// SetEventPlaneParallel toggles goroutine-per-shard epoch execution
// (on by default). The trajectory is byte-identical either way; the
// equivalence tests use the sequential setting as the reference.
func (m *Machine) SetEventPlaneParallel(on bool) {
	if m.ep == nil {
		panic("machine: not an event-plane machine")
	}
	m.ep.se.Parallel = on
}

// EventPlaneLogs returns the per-shard undo-log partitions (nil for a
// sequential machine). Entry Seq numbers are per-partition; canonical
// comparisons across shard counts must project them out.
func (m *Machine) EventPlaneLogs() []*mem.Log {
	if m.ep == nil {
		return nil
	}
	logs := make([]*mem.Log, len(m.ep.shards))
	for i, sh := range m.ep.shards {
		logs[i] = sh.log
	}
	return logs
}

// epTotal sums the instructions committed across shards.
func (m *Machine) epTotal() uint64 {
	n := uint64(0)
	for _, sh := range m.ep.shards {
		n += sh.instr
	}
	return n
}

// runEP drives the sharded executor epoch by epoch until the
// instruction target is met, the limit is reached or no events remain.
// The stop condition is evaluated at epoch boundaries only, so the
// stopping cycle — like everything else — is independent of the shard
// count (the epoch sequence depends only on global event times and the
// window).
func (m *Machine) runEP(limit sim.Cycle) sim.Cycle {
	for _, p := range m.Procs {
		p.kick()
	}
	se := m.ep.se
	for {
		if m.targetInstr != 0 && m.epTotal() >= m.targetInstr {
			break
		}
		if !se.RunEpoch(limit) {
			break
		}
	}
	m.totalInstr = m.epTotal()
	m.foldEPStats()
	return se.Now()
}

// foldEPStats folds the per-shard stats partitions into the machine
// Stats (the fold is commutative, so the result is shard-count
// independent; see stats.AddInto).
func (m *Machine) foldEPStats() {
	m.St.Reset()
	for _, sh := range m.ep.shards {
		sh.st.AddInto(m.St)
	}
	m.St.EndCycle = m.ep.se.Now()
}

// epIssueWalk issues a coherence walk for line and stalls the
// processor until the grant returns (the event-plane miss path of
// loadWord/storeWord). The walk base is unique machine-wide, which is
// what keys every leg of the walk deterministically.
func (p *Proc) epIssueWalk(line uint64, write bool) {
	p.epStalled = true
	base := p.epWalkCtr*uint64(p.m.Cfg.NProcs) + uint64(p.id)
	p.epWalkCtr++
	p.m.ep.plane.Issue(p.id, line, write, base)
}

// epResume restarts the processor after a grant installed line: the
// stalled access replays inside the grant event as a cache hit, with
// the replay flag suppressing its duplicate miss accounting. If a
// pause request or rollback intervened, the replay arms now and fires
// at the next step instead.
func (p *Proc) epResume(line uint64) {
	p.epStalled = false
	p.epReplayArmed = true
	p.epReplayLine = line
	p.step()
}

// noteInstrs routes committed instructions to the owning shard's
// counter (event plane) or to the machine total (sequential model,
// where it also enforces the run's instruction target).
func (p *Proc) noteInstrs(n uint64) {
	if p.epsh != nil {
		p.epsh.instr += n
		return
	}
	p.m.noteInstrs(n)
}

// epReset clears the event-plane runtime for Machine.Reset (the shared
// memory, directory and processors are reset by the caller).
func (m *Machine) epReset() {
	m.ep.se.Reset()
	m.ep.plane.Reset()
	for _, sh := range m.ep.shards {
		sh.st.Reset()
		sh.log.Reset()
		sh.dram.Reset()
		sh.instr = 0
	}
}

// --- event-plane snapshot/restore ---------------------------------------
//
// The quiescence contract carries over from the sequential machine, with
// the event plane's own obstacles added: every shard's pending events
// must be tagged (in practice: only keyed step events remain), the
// coherence plane must have no walk or writeback in flight, and no
// processor may be stalled on a grant. Pending cross-shard message legs
// therefore never appear in a capture — they drain during settling —
// and the per-shard queues save and restore through the same tagged-
// event mechanism as the sequential engine.

// epShardSnapshot is one engine shard's saved slice: event queue, stats
// partition, undo-log partition, DRAM channel subset and instruction
// counter.
type epShardSnapshot struct {
	now    sim.Cycle
	seq    uint64
	events []sim.SavedEvent
	st     *stats.Stats
	log    mem.LogSnapshot
	dram   mem.DRAMSnapshot
	instr  uint64
}

// epProcSnapshot is one processor's event-plane registers. A settle can
// pause a processor between its grant and its replay, so the stashed op
// and the armed replay are live state at a snapshot point.
type epProcSnapshot struct {
	walkCtr     uint64
	op          workload.Op
	opValid     bool
	replayArmed bool
	replayLine  uint64
}

// epBlocker returns "" when the event plane itself is quiescent (the
// caller checks the per-processor obstacles).
func (m *Machine) epBlocker() string {
	for _, sh := range m.ep.shards {
		if !sh.eng.AllTagged() {
			return fmt.Sprintf("shard %d has a coherence leg in flight", sh.id)
		}
	}
	if !m.ep.plane.Idle() {
		return "coherence walk or writeback in flight"
	}
	return ""
}

// settleEPForSnapshot is SettleForSnapshot for event-plane machines. A
// free-running event-plane machine rarely passes through a spontaneous
// instant with no walk in flight, so instead of single-stepping toward
// one it manufactures one: every processor is asked to pause at its next
// op boundary (a stalled processor acks right after its grant replays),
// the in-flight legs drain over the following epochs, and once the
// machine is fully quiet every shard clock is advanced to the epoch
// frontier and the processors resume — leaving exactly one keyed step
// event per processor at the frontier, which is a snapshotable queue.
// The sequence depends only on global event times, so the settled state
// is byte-identical across shard counts and Parallel settings.
func (m *Machine) settleEPForSnapshot(maxCycles sim.Cycle) bool {
	se := m.ep.se
	deadline := se.Now() + maxCycles
	for _, p := range m.Procs {
		if !p.paused {
			p.RequestPause(func() {})
		}
	}
	for !m.epDrained() {
		if se.Now() > deadline || !se.RunEpoch(0) {
			m.epResumeAll()
			return false
		}
	}
	m.epResumeAll()
	return m.snapshotBlocker() == ""
}

// epDrained reports whether every processor has honoured its pause
// request and the plane has gone quiet. It reads p.paused from the
// coordinating goroutine between epochs only — an ack closure mutating
// shared state would race under parallel epoch execution.
func (m *Machine) epDrained() bool {
	for _, p := range m.Procs {
		if !p.paused {
			return false
		}
	}
	return m.epBlocker() == ""
}

// epResumeAll aligns every shard clock to the executor frontier and
// restarts the processors there. The alignment matters: an engine whose
// heap emptied mid-epoch holds the clock of its last event, which varies
// with the shard partition, and resume kicks schedule at the local
// clock. Any pause request still pending (failed settle) is cancelled so
// the machine stays runnable.
func (m *Machine) epResumeAll() {
	front := m.ep.se.Now()
	for _, sh := range m.ep.shards {
		sh.eng.AdvanceTo(front)
	}
	for _, p := range m.Procs {
		if p.paused {
			p.Resume()
		} else {
			p.pauseReq = nil
		}
	}
}

// snapshotEP is Machine.Snapshot for event-plane machines.
func (m *Machine) snapshotEP(s *MachineSnapshot) error {
	if why := m.snapshotBlocker(); why != "" {
		return fmt.Errorf("machine: not snapshot-safe: %s", why)
	}
	nsh := len(m.ep.shards)
	if cap(s.epShards) < nsh {
		s.epShards = make([]epShardSnapshot, nsh)
	}
	s.epShards = s.epShards[:nsh]
	if cap(s.epTab) < nsh {
		s.epTab = make([][]uint64, nsh)
	}
	s.epTab = s.epTab[:nsh]
	tab := m.Ctrl.Memory().Table()
	for i, sh := range m.ep.shards {
		es := &s.epShards[i]
		now, seq, events, ok := sh.eng.Save(es.events)
		if !ok {
			return fmt.Errorf("machine: not snapshot-safe: untagged event on shard %d", i)
		}
		es.now, es.seq, es.events = now, seq, events
		if es.st == nil || es.st.NProcs != m.Cfg.NProcs {
			es.st = stats.New(m.Cfg.NProcs)
		}
		sh.st.CopyInto(es.st)
		es.instr = sh.instr
		s.epTab[i] = append(s.epTab[i][:0], tab.ShardAddrs(i)...)
	}
	s.epFrontier = m.ep.se.Now()
	if cap(s.epProcs) < len(m.Procs) {
		s.epProcs = make([]epProcSnapshot, len(m.Procs))
	}
	s.epProcs = s.epProcs[:len(m.Procs)]
	for i, p := range m.Procs {
		s.epProcs[i] = epProcSnapshot{
			walkCtr: p.epWalkCtr, op: p.epOp, opValid: p.epOpValid,
			replayArmed: p.epReplayArmed, replayLine: p.epReplayLine,
		}
	}
	s.cfg = m.Cfg
	m.totalInstr = m.epTotal()
	s.totalInstr, s.targetInstr = m.totalInstr, m.targetInstr
	m.foldEPStats()
	if s.st == nil || s.st.NProcs != m.Cfg.NProcs {
		s.st = stats.New(m.Cfg.NProcs)
	}
	m.St.CopyInto(s.st)
	if cap(s.procs) < len(m.Procs) {
		s.procs = make([]procSnapshot, len(m.Procs))
	}
	s.procs = s.procs[:len(m.Procs)]
	m.saveEPParallel(s)
	s.scheme = nil // the event plane runs the (stateless) null scheme
	s.valid = true
	s.gen++
	return nil
}

// saveEPParallel fans the decomposable state out across cores: one task
// per processor, per memory shard, per directory shard, and per shard
// each for the log partitions and DRAM models.
func (m *Machine) saveEPParallel(s *MachineSnapshot) {
	m.Ctrl.Memory().SavePrepare(&s.mem)
	m.Dir.SavePrepare(&s.dir)
	np, nsh := len(m.Procs), len(m.ep.shards)
	parallelDo(np+4*nsh, func(t int) {
		switch {
		case t < np:
			m.Procs[t].saveState(&s.procs[t])
		case t < np+nsh:
			m.Ctrl.Memory().SaveShard(&s.mem, t-np)
		case t < np+2*nsh:
			m.Dir.SaveShard(&s.dir, t-np-nsh)
		case t < np+3*nsh:
			i := t - np - 2*nsh
			m.ep.shards[i].log.Save(&s.epShards[i].log)
		default:
			i := t - np - 3*nsh
			m.ep.shards[i].dram.Save(&s.epShards[i].dram)
		}
	})
	m.Ctrl.Memory().SaveFinish(&s.mem)
}

// restoreEP is Machine.Restore for event-plane machines (the caller has
// checked validity and config identity, which includes EventPlane and
// the shard count).
func (m *Machine) restoreEP(s *MachineSnapshot) error {
	if len(s.epShards) != len(m.ep.shards) {
		return fmt.Errorf("machine: snapshot is not an event-plane capture")
	}
	tab := m.Ctrl.Memory().Table()
	for i := range s.epTab {
		if err := tab.AdoptShardPrefix(i, s.epTab[i]); err != nil {
			return err
		}
	}
	for i, sh := range m.ep.shards {
		es := &s.epShards[i]
		sh.eng.Load(es.now, es.seq, es.events, m.resolveTag)
		es.st.CopyInto(sh.st)
		sh.instr = es.instr
	}
	m.ep.se.AdoptFrontier(s.epFrontier)
	m.ep.plane.Reset() // quiescent capture: no walks to reconstruct
	m.totalInstr, m.targetInstr = s.totalInstr, s.targetInstr
	s.st.CopyInto(m.St)
	m.loadEPParallel(s, m.restoredFrom == s && m.restoredGen == s.gen)
	for i, p := range m.Procs {
		p.epResetProc()
		ps := &s.epProcs[i]
		p.epWalkCtr = ps.walkCtr
		p.epOp, p.epOpValid = ps.op, ps.opValid
		p.epReplayArmed, p.epReplayLine = ps.replayArmed, ps.replayLine
	}
	m.OnTaint = nil
	m.restoredFrom, m.restoredGen = s, s.gen
	return nil
}

// loadEPParallel is the restore-side counterpart of saveEPParallel.
func (m *Machine) loadEPParallel(s *MachineSnapshot, delta bool) {
	np, nsh := len(m.Procs), len(m.ep.shards)
	parallelDo(np+4*nsh, func(t int) {
		switch {
		case t < np:
			m.Procs[t].loadState(&s.procs[t])
		case t < np+nsh:
			if delta {
				m.Ctrl.Memory().LoadDeltaShard(&s.mem, t-np)
			} else {
				m.Ctrl.Memory().LoadShard(&s.mem, t-np)
			}
		case t < np+2*nsh:
			if delta {
				m.Dir.LoadDeltaShard(&s.dir, t-np-nsh)
			} else {
				m.Dir.LoadShard(&s.dir, t-np-nsh)
			}
		case t < np+3*nsh:
			i := t - np - 2*nsh
			if delta {
				m.ep.shards[i].log.LoadDelta(&s.epShards[i].log)
			} else {
				m.ep.shards[i].log.Load(&s.epShards[i].log)
			}
		default:
			i := t - np - 3*nsh
			m.ep.shards[i].dram.Load(&s.epShards[i].dram)
		}
	})
	m.Ctrl.Memory().LoadFinish(&s.mem)
}

// epResetProc clears the per-processor event-plane state (Proc.reset
// and snapshot restore).
func (p *Proc) epResetProc() {
	p.epStalled = false
	p.epOp = workload.Op{}
	p.epOpValid = false
	p.epReplayArmed = false
	p.epReplayLine = 0
	p.epWalkCtr = 0
	p.epVictim = coherence.EPEvict{}
}
