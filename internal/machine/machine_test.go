package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/workload"
)

func testCfg(n int) Config {
	cfg := DefaultConfig(n)
	cfg.CkptInterval = 20_000
	cfg.DetectLatency = 4_000
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(testCfg(4), workload.Uniform(), NullScheme{})
		end := m.Run(100_000)
		return uint64(end), m.St.TotalInstructions()
	}
	e1, i1 := run()
	e2, i2 := run()
	if e1 != e2 || i1 != i2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", e1, i1, e2, i2)
	}
	if i1 < 100_000 {
		t.Fatalf("instructions = %d, want >= target", i1)
	}
	if e1 == 0 {
		t.Fatal("end cycle is zero")
	}
}

func TestCoherenceInvariantsAfterRun(t *testing.T) {
	m := New(testCfg(4), workload.Uniform(), NullScheme{})
	m.Run(150_000)
	m.CheckCoherence()
	if m.St.L2Misses == 0 || m.St.L1Hits == 0 {
		t.Fatal("cache hierarchy not exercised")
	}
}

func TestBarriersMakeProgress(t *testing.T) {
	prof := workload.Uniform()
	prof.BarrierPeriod = 3_000
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(200_000)
	// Every core must get past many barriers: instruction counts stay
	// balanced (a stuck barrier would freeze all cores).
	for i, n := range m.St.Instructions {
		if n < 30_000 {
			t.Fatalf("core %d committed only %d instructions: barrier stuck?", i, n)
		}
	}
}

func TestLocksMakeProgress(t *testing.T) {
	prof := workload.Raytrace() // lock-heavy
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(150_000)
	for i, n := range m.St.Instructions {
		if n < 15_000 {
			t.Fatalf("core %d committed only %d instructions: lock stuck?", i, n)
		}
	}
}

func TestDependencesRecorded(t *testing.T) {
	prof := workload.Uniform()
	prof.SharedFrac = 0.4 // plenty of sharing
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(100_000)
	any := false
	for _, p := range m.Procs {
		if !p.Deps().Current().MyProducers.Empty() || !p.Deps().Current().MyConsumers.Empty() {
			any = true
		}
	}
	if !any {
		t.Fatal("no inter-thread dependences recorded despite heavy sharing")
	}
}

func TestPauseResume(t *testing.T) {
	m := New(testCfg(2), workload.Uniform(), NullScheme{})
	p := m.Procs[0]
	acked := false
	p.RequestPause(func() { acked = true })
	m.Run(5_000)
	if !acked || !p.Paused() {
		t.Fatal("pause not honoured at op boundary")
	}
	before := m.St.Instructions[0]
	m.RunCycles(10_000)
	if m.St.Instructions[0] != before {
		t.Fatal("paused core kept executing")
	}
	p.Resume()
	m.RunCycles(10_000)
	if m.St.Instructions[0] == before {
		t.Fatal("resumed core did not continue")
	}
}

func TestPoisonPropagation(t *testing.T) {
	prof := workload.Uniform()
	prof.SharedFrac = 0.5
	m := New(testCfg(4), prof, NullScheme{})
	m.Run(20_000)
	m.Procs[0].InjectFault()
	var tainted []int
	m.OnTaint = func(p *Proc) { tainted = append(tainted, p.ID()) }
	m.Run(300_000)
	if !m.Procs[0].Faulty() {
		t.Fatal("fault flag lost")
	}
	if len(tainted) == 0 {
		t.Fatal("poison never propagated to a consumer despite heavy sharing")
	}
	if _, any := m.Ctrl.Memory().AnyPoison(); !any {
		t.Fatal("no poisoned line ever reached memory")
	}
}

// pauseAll pauses every processor, then calls then once all have acked.
func pauseAll(m *Machine, then func()) {
	n := 0
	for _, p := range m.Procs {
		p.RequestPause(func() {
			n++
			if n == len(m.Procs) {
				then()
			}
		})
	}
}

// checkpointAllForeground drives a manual foreground checkpoint of all
// processors (what the Global scheme does): atCompleted (optional)
// fires when every writeback has finished and all processors are still
// paused — the checkpointed state is materialised in memory at that
// instant — and done fires after everyone reopened a new epoch and
// resumed.
func checkpointAllForeground(m *Machine, atCompleted, done func()) {
	pauseAll(m, func() {
		m.Ctrl.Log().Stub(m.Now())
		type pair struct {
			p   *Proc
			rec *CkptRec
		}
		var pairs []pair
		remaining := len(m.Procs)
		for _, p := range m.Procs {
			p := p
			rec := p.BeginCheckpoint()
			pairs = append(pairs, pair{p, rec})
			p.WritebackAllForeground(func() {
				remaining--
				if remaining != 0 {
					return
				}
				// All writebacks done; everyone is still paused.
				for _, pr := range pairs {
					pr.p.FinishCheckpoint(pr.rec)
				}
				if atCompleted != nil {
					atCompleted()
				}
				opened := len(pairs)
				for _, pr := range pairs {
					pr.p.OpenNextEpoch(func() {
						pr.p.Resume()
						opened--
						if opened == 0 && done != nil {
							done()
						}
					})
				}
			})
		}
	})
}

// The central machine-level property: after a checkpoint, memory holds
// the committed state; running further and rolling everything back
// restores exactly that state.
func TestCheckpointRollbackRestoresMemory(t *testing.T) {
	cfg := testCfg(4)
	cfg.DetectLatency = 1_000
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(60_000)

	var snap map[uint64]mem.Word
	phase := 0
	checkpointAllForeground(m, func() {
		snap = m.Ctrl.Memory().Snapshot()
	}, func() {
		phase = 1
	})
	m.RunCycles(2_000_000)
	if phase != 1 {
		t.Fatal("checkpoint did not complete")
	}

	// Run well past the detection latency so the checkpoint is safe.
	m.Run(80_000)

	done := false
	pauseAll(m, func() {
		targets, restored, _ := m.RollbackProcs(m.Procs)
		if restored == 0 {
			t.Error("rollback restored no log entries")
		}
		for pid, e := range targets {
			if e != 1 {
				t.Errorf("proc %d target epoch = %d, want 1", pid, e)
			}
		}
		done = true
	})
	m.RunCycles(1_000_000)
	if !done {
		t.Fatal("rollback never ran")
	}

	got := m.Ctrl.Memory().Snapshot()
	if len(got) != len(snap) {
		t.Fatalf("memory line count %d != checkpoint %d", len(got), len(snap))
	}
	for a, w := range snap {
		if got[a] != w {
			t.Fatalf("line %#x = %+v, want %+v", a, got[a], w)
		}
	}
	// Re-execution must proceed fine from the restored state.
	for _, p := range m.Procs {
		p.Resume()
	}
	m.Run(50_000)
	m.CheckCoherence()
}

// Delayed writebacks: draining while paused materialises the sync-point
// state in memory; a later rollback restores exactly it.
func TestDelayedWritebackDrainAndRollback(t *testing.T) {
	cfg := testCfg(4)
	cfg.DetectLatency = 1_000
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(60_000)

	var snap map[uint64]mem.Word
	var recs []*CkptRec
	phase := 0
	pauseAll(m, func() {
		m.Ctrl.Log().Stub(m.Now())
		remaining := len(m.Procs)
		for _, p := range m.Procs {
			p := p
			rec := p.BeginCheckpoint()
			recs = append(recs, rec)
			if lines := p.MarkDelayed(); lines == 0 {
				t.Errorf("proc %d had no dirty lines to delay", p.ID())
			}
			p.StartDrain(func() {
				p.FinishCheckpoint(rec)
				remaining--
				if remaining == 0 {
					phase = 1
				}
			})
		}
	})
	m.RunCycles(3_000_000)
	if phase != 1 {
		t.Fatal("drain did not finish")
	}
	if m.St.L2WritebacksBg == 0 {
		t.Fatal("no background writebacks counted")
	}
	snap = m.Ctrl.Memory().Snapshot()

	// Resume, run, roll back: memory must return to the drained state.
	for _, p := range m.Procs {
		p.OpenNextEpoch(p.Resume)
	}
	m.Run(80_000)
	done := false
	pauseAll(m, func() {
		m.RollbackProcs(m.Procs)
		done = true
	})
	m.RunCycles(1_000_000)
	if !done {
		t.Fatal("rollback never ran")
	}
	got := m.Ctrl.Memory().Snapshot()
	for a, w := range snap {
		if got[a] != w {
			t.Fatalf("line %#x = %+v, want %+v", a, got[a], w)
		}
	}
	if len(got) != len(snap) {
		t.Fatalf("memory line count %d != drained checkpoint %d", len(got), len(snap))
	}
}

// A write to a Delayed line must flush the old value first (§4.1): the
// drain with concurrent execution still yields a consistent rollback.
func TestDrainWhileRunningThenRollbackToStart(t *testing.T) {
	cfg := testCfg(2)
	cfg.DetectLatency = 50_000_000 // nothing is safe: rollback to start
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(40_000)

	drained := 0
	pauseAll(m, func() {
		for _, p := range m.Procs {
			p := p
			rec := p.BeginCheckpoint()
			p.MarkDelayed()
			p.StartDrain(func() {
				p.FinishCheckpoint(rec)
				drained++
			})
			p.OpenNextEpoch(p.Resume) // resume immediately: drain overlaps execution
		}
	})
	m.Run(60_000)
	if drained != 2 {
		t.Fatalf("drained = %d, want 2", drained)
	}

	done := false
	pauseAll(m, func() {
		m.RollbackProcs(m.Procs) // latest safe = program start
		done = true
	})
	m.RunCycles(2_000_000)
	if !done {
		t.Fatal("rollback never ran")
	}
	if n := m.Ctrl.Memory().Len(); n != 0 {
		t.Fatalf("rollback to start left %d lines in memory", n)
	}
	if m.Ctrl.Log().Len() != 0 {
		t.Fatal("rollback to start left log entries")
	}
}

func TestDepSetRecyclingAcrossCheckpoints(t *testing.T) {
	cfg := testCfg(2)
	cfg.DetectLatency = 2_000
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(20_000)
	// Take several checkpoints; Dep sets must recycle rather than
	// exhaust (capacity 4).
	for round := 0; round < 6; round++ {
		ok := false
		checkpointAllForeground(m, nil, func() { ok = true })
		m.RunCycles(1_000_000)
		if !ok {
			t.Fatalf("checkpoint round %d stalled", round)
		}
		m.Run(10_000)
	}
	for _, p := range m.Procs {
		if p.Epoch() != 6 {
			t.Fatalf("proc %d epoch = %d, want 6", p.ID(), p.Epoch())
		}
		if p.Deps().LiveCount() > 4 {
			t.Fatal("dep sets exceeded capacity")
		}
	}
}

func TestLatestSafeCkptRespectsL(t *testing.T) {
	cfg := testCfg(2)
	cfg.DetectLatency = 1 << 40 // enormous L: only program start is safe
	m := New(cfg, workload.Uniform(), NullScheme{})
	m.Run(30_000)
	ok := false
	checkpointAllForeground(m, nil, func() { ok = true })
	m.RunCycles(2_000_000)
	if !ok {
		t.Fatal("checkpoint stalled")
	}
	p := m.Procs[0]
	if rec := p.LatestSafeCkpt(); rec.OpenedEpoch != 0 {
		t.Fatalf("young checkpoint considered safe with huge L (epoch %d)", rec.OpenedEpoch)
	}
}

func TestRollbackClearsFaultAndPoison(t *testing.T) {
	cfg := testCfg(4)
	cfg.DetectLatency = 1_000
	prof := workload.Uniform()
	prof.SharedFrac = 0.4
	m := New(cfg, prof, NullScheme{})
	m.Run(40_000)
	ok := false
	checkpointAllForeground(m, nil, func() { ok = true })
	m.RunCycles(2_000_000)
	if !ok {
		t.Fatal("checkpoint stalled")
	}
	m.Run(20_000)
	m.Procs[1].InjectFault()
	m.Run(60_000)

	done := false
	pauseAll(m, func() {
		m.RollbackProcs(m.Procs)
		done = true
	})
	m.RunCycles(2_000_000)
	if !done {
		t.Fatal("rollback never ran")
	}
	if m.Procs[1].Faulty() {
		t.Fatal("rollback did not clear the fault")
	}
	if a, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatalf("poisoned line %#x survived full rollback", a)
	}
	for _, p := range m.Procs {
		if p.Tainted() {
			t.Fatal("taint survived rollback")
		}
	}
}
