package machine

import "testing"

// TestParallelDoSingleTask pins the degenerate dispatch paths: one task
// (any GOMAXPROCS) and any task count at GOMAXPROCS=1 run inline on the
// calling goroutine with zero allocations — a restore loop over a
// 1-shard machine must not pay goroutine or WaitGroup overhead per
// call. (testing.AllocsPerRun itself pins GOMAXPROCS to 1, so the n>1
// probe exercises exactly the single-worker fallback.)
func TestParallelDoSingleTask(t *testing.T) {
	ran := 0
	fn := func(int) { ran++ }
	if avg := testing.AllocsPerRun(100, func() { parallelDo(1, fn) }); avg != 0 {
		t.Fatalf("parallelDo(1, fn) allocates %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { parallelDo(8, fn) }); avg != 0 {
		t.Fatalf("parallelDo(8, fn) at GOMAXPROCS=1 allocates %.1f allocs/op, want 0", avg)
	}
	if ran == 0 {
		t.Fatal("tasks never ran")
	}
	var got []int
	parallelDo(3, func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("sequential fallback ran tasks %v, want [0 1 2]", got)
	}
}
