package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel intra-machine executor. Event execution itself must stay
// sequential — the functional directory protocol mutates other
// processors' caches synchronously inside one event, so any parallel
// event schedule would change the interleaving and break the
// byte-identity guarantee (sim.ShardedEngine is the validated substrate
// for splitting the protocol into messages; see doc.go). What CAN run
// in parallel, exactly because the state layer is sharded, is the
// machine-state plane: snapshot, restore and fork decompose into
// disjoint tasks — one per processor (caches, Dep registers, streams,
// checkpoint history), one per state shard (memory words, directory
// entries), plus the log and the DRAM model. Those tasks touch disjoint
// memory by construction, so running them on all cores is free of both
// races and ordering effects: the resulting snapshot bytes are
// identical at any GOMAXPROCS.

// parallelDo runs fn(0)..fn(n-1), fanning the calls out across
// min(GOMAXPROCS, n) goroutines. The tasks must be mutually
// independent. With one core (or one task) it degenerates to a plain
// loop with no goroutines and no allocation.
func parallelDo(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// saveParallel captures the decomposable machine state into s: every
// processor, every memory and directory shard, the log and the DRAM
// model, as independent tasks. The caller handles the scalar and
// engine state around it.
func (m *Machine) saveParallel(s *MachineSnapshot) {
	m.Ctrl.Memory().SavePrepare(&s.mem)
	m.Dir.SavePrepare(&s.dir)
	np, nsh := len(m.Procs), m.Ctrl.Memory().NumShards()
	parallelDo(np+2*nsh+2, func(t int) {
		switch {
		case t < np:
			m.Procs[t].saveState(&s.procs[t])
		case t < np+nsh:
			m.Ctrl.Memory().SaveShard(&s.mem, t-np)
		case t < np+2*nsh:
			m.Dir.SaveShard(&s.dir, t-np-nsh)
		case t == np+2*nsh:
			m.Ctrl.Log().Save(&s.log)
		default:
			m.Ctrl.DRAM().Save(&s.dram)
		}
	})
	m.Ctrl.Memory().SaveFinish(&s.mem)
}

// loadParallel is the restore-side counterpart of saveParallel. delta
// selects the copy-on-write path for the sharded state (the caller has
// verified the machine last restored from this same capture).
func (m *Machine) loadParallel(s *MachineSnapshot, delta bool) {
	np, nsh := len(m.Procs), m.Ctrl.Memory().NumShards()
	parallelDo(np+2*nsh+2, func(t int) {
		switch {
		case t < np:
			m.Procs[t].loadState(&s.procs[t])
		case t < np+nsh:
			if delta {
				m.Ctrl.Memory().LoadDeltaShard(&s.mem, t-np)
			} else {
				m.Ctrl.Memory().LoadShard(&s.mem, t-np)
			}
		case t < np+2*nsh:
			if delta {
				m.Dir.LoadDeltaShard(&s.dir, t-np-nsh)
			} else {
				m.Dir.LoadShard(&s.dir, t-np-nsh)
			}
		case t == np+2*nsh:
			if delta {
				m.Ctrl.Log().LoadDelta(&s.log)
			} else {
				m.Ctrl.Log().Load(&s.log)
			}
		default:
			m.Ctrl.DRAM().Load(&s.dram)
		}
	})
	m.Ctrl.Memory().LoadFinish(&s.mem)
}
