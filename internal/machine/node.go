package machine

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// procNode adapts a Proc to the coherence.Node interface (the L2
// controller surface the directory talks to).
type procNode Proc

func (n *procNode) proc() *Proc { return (*Proc)(n) }

// Recall implements coherence.Node: hand over (invalidate) or downgrade
// (share) this tile's copy of line.
func (n *procNode) Recall(line uint64, invalidate bool) (mem.Word, bool, uint64, bool) {
	p := n.proc()
	l2 := p.l2.Peek(line)
	if l2 == nil {
		return mem.Word{}, false, 0, false
	}
	data, dirty, epoch := l2.Data, l2.Dirty, l2.Epoch
	if invalidate {
		if l2.Delayed {
			// A Delayed line owes its data to the previous checkpoint's
			// memory image; complete that writeback before the line
			// migrates to the new owner (see DESIGN.md).
			p.m.St.L2WritebacksCkpt++
			p.m.St.L2WritebacksBg++
			p.m.Ctrl.Writeback(p.id, l2.Epoch, line, l2.Data)
			dirty = false
		}
		p.l2.Invalidate(line)
		p.l1.Invalidate(line)
		return data, dirty, epoch, true
	}
	// Downgrade to Shared; the directory writes a dirty copy back to
	// memory (which also satisfies a pending delayed writeback).
	l2.State = cache.Shared
	l2.Dirty = false
	l2.Delayed = false
	return data, dirty, epoch, true
}

// InvalidateShared implements coherence.Node.
func (n *procNode) InvalidateShared(line uint64) {
	p := n.proc()
	p.l2.Invalidate(line)
	p.l1.Invalidate(line)
}

// LastWriterCheck implements coherence.Node: the "are you the last
// writer?" query of §3.3.2/§4.2. The line is tested against the live
// WSIGs newest-first; a match records the consumer in that interval's
// MyConsumers. The exact shadow signature feeds the false-positive
// measurement of Table 6.1.
func (n *procNode) LastWriterCheck(line uint64, consumer int) (bool, bool) {
	p := n.proc()
	exact := false
	if e, ok := p.deps.LastWriterEpochExact(line); ok {
		exact = true
		p.deps.ByEpoch(e).CExact.Set(consumer)
	}
	epoch, ok := p.deps.LastWriterEpoch(line)
	if !ok {
		return false, false // NO_WR
	}
	p.deps.ByEpoch(epoch).MyConsumers.Set(consumer)
	return true, exact
}

// AddProducer implements coherence.Node.
func (n *procNode) AddProducer(producer int, exact bool) {
	p := n.proc()
	p.deps.Current().MyProducers.Set(producer)
	if exact {
		p.deps.Current().PExact.Set(producer)
	}
}
