package machine

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/mem"
)

// procNode adapts a Proc to the coherence.Node interface (the L2
// controller surface the directory talks to).
type procNode Proc

func (n *procNode) proc() *Proc { return (*Proc)(n) }

// Recall implements coherence.Node: hand over (invalidate) or downgrade
// (share) this tile's copy of line.
func (n *procNode) Recall(line uint64, invalidate bool) (mem.Word, bool, uint64, bool) {
	p := n.proc()
	l2 := p.l2.Peek(line)
	if l2 == nil {
		return mem.Word{}, false, 0, false
	}
	data, dirty, epoch := l2.Data, l2.Dirty, l2.Epoch
	if invalidate {
		if l2.Delayed {
			// A Delayed line owes its data to the previous checkpoint's
			// memory image; complete that writeback before the line
			// migrates to the new owner (see DESIGN.md).
			p.m.St.L2WritebacksCkpt++
			p.m.St.L2WritebacksBg++
			p.m.Ctrl.Writeback(p.id, l2.Epoch, line, l2.Data)
			dirty = false
		}
		p.l2.Invalidate(line)
		p.l1.Invalidate(line)
		return data, dirty, epoch, true
	}
	// Downgrade to Shared; the directory writes a dirty copy back to
	// memory (which also satisfies a pending delayed writeback).
	l2.State = cache.Shared
	l2.Dirty = false
	l2.Delayed = false
	return data, dirty, epoch, true
}

// InvalidateShared implements coherence.Node.
func (n *procNode) InvalidateShared(line uint64) {
	p := n.proc()
	p.l2.Invalidate(line)
	p.l1.Invalidate(line)
}

// EPProbe implements coherence.EPNode: Recall, minus the Delayed-line
// writeback branch — delayed writebacks only exist under checkpointing
// schemes, which the event plane does not run (it supports only the
// null scheme), so hitting one here is a wiring bug.
func (n *procNode) EPProbe(line uint64, invalidate bool) (mem.Word, bool, uint64, bool) {
	p := n.proc()
	l2 := p.l2.Peek(line)
	if l2 == nil {
		return mem.Word{}, false, 0, false
	}
	data, dirty, epoch := l2.Data, l2.Dirty, l2.Epoch
	if l2.Delayed {
		panic("machine: event-plane probe hit a Delayed line")
	}
	if invalidate {
		p.l2.Invalidate(line)
		p.l1.Invalidate(line)
		return data, dirty, epoch, true
	}
	// Downgrade to Shared; a dirty copy reaches memory via the home
	// shard's controller (the plane's PROBE-ACK handler logs it).
	l2.State = cache.Shared
	l2.Dirty = false
	return data, dirty, epoch, true
}

// EPGrantRead implements coherence.EPNode: install the granted line
// exactly as loadWord's miss path would have after a functional
// Directory.Read, then resume the stalled processor, which replays the
// access as an L2 hit. The displaced L2 victim (if any) is returned for
// the plane to route as a WBEVICT/DROPSHARED message.
func (n *procNode) EPGrantRead(line uint64, data mem.Word, exclusive bool) coherence.EPEvict {
	p := n.proc()
	p.epVictim = coherence.EPEvict{}
	l2 := p.insertL2(line)
	l2.State = cache.Shared
	l2.Data = data
	l2.Dirty = false
	l2.Delayed = false
	if exclusive {
		// RDX: the processor may write silently later, so the line
		// enters the signature now (as in loadWord).
		l2.State = cache.Exclusive
		p.wsigInsert(line)
	}
	ev := p.epVictim
	p.epVictim = coherence.EPEvict{}
	p.epResume(line)
	return ev
}

// EPGrantWrite implements coherence.EPNode: install the granted line as
// Modified with the pre-write content (the replayed store's RMW old
// value), tagged into the current epoch's write signature, then resume
// the stalled processor, which replays the store as a Modified hit.
func (n *procNode) EPGrantWrite(line uint64, data mem.Word) coherence.EPEvict {
	p := n.proc()
	p.epVictim = coherence.EPEvict{}
	l2 := p.l2.Lookup(line)
	if l2 == nil {
		l2 = p.insertL2(line)
	}
	l2.State = cache.Modified
	l2.Data = data
	l2.Dirty = true
	l2.Delayed = false
	l2.Epoch = p.curEpoch
	p.wsigInsert(line)
	ev := p.epVictim
	p.epVictim = coherence.EPEvict{}
	p.epResume(line)
	return ev
}

// LastWriterCheck implements coherence.Node: the "are you the last
// writer?" query of §3.3.2/§4.2. The line is tested against the live
// WSIGs newest-first; a match records the consumer in that interval's
// MyConsumers. The exact shadow signature feeds the false-positive
// measurement of Table 6.1.
func (n *procNode) LastWriterCheck(line uint64, consumer int) (bool, bool) {
	p := n.proc()
	exact := false
	if e, ok := p.deps.LastWriterEpochExact(line); ok {
		exact = true
		p.deps.ByEpoch(e).CExact.Set(consumer)
	}
	epoch, ok := p.deps.LastWriterEpoch(line)
	if !ok {
		return false, false // NO_WR
	}
	p.deps.ByEpoch(epoch).MyConsumers.Set(consumer)
	return true, exact
}

// AddProducer implements coherence.Node.
func (n *procNode) AddProducer(producer int, exact bool) {
	p := n.proc()
	p.deps.Current().MyProducers.Set(producer)
	if exact {
		p.deps.Current().PExact.Set(producer)
	}
}
