// The sharded-state equivalence suite (external test package: it
// drives the machine through the harness and campaign layers, which
// import machine).
//
// The shard count is a storage/parallelism axis, never a results axis:
// for every scheme, every shard count and every GOMAXPROCS setting the
// machine must produce byte-identical simulated state, stats and
// campaign reports. These tests run under -race in CI at GOMAXPROCS=4
// (see .github/workflows/ci.yml), which is what makes the parallel
// snapshot/restore plane's disjointness claim load-bearing rather than
// asserted.
package machine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

var shardCounts = []int{1, 2, 4}

// equivFingerprint renders everything a run could diverge in: clock,
// instruction count, log population, stats and the full memory image.
func equivFingerprint(m *machine.Machine) string {
	return fmt.Sprintf("cycle=%d instr=%d log=%d stats=%s mem=%v",
		m.Now(), m.TotalInstructions(), m.Ctrl.Log().Len(),
		m.St.Snapshot(), m.Ctrl.Memory().Snapshot())
}

// TestShardEquivalenceCells: Figure 6.2-style cells (FFT under every
// scheme) run to completion at shard counts 1, 2 and 4 must be
// byte-identical in state and stats.
func TestShardEquivalenceCells(t *testing.T) {
	sc := harness.Scale{
		Name: "equiv", ProcsLarge: 8, ProcsSmall: 8,
		InstrPerProc: 60_000, Interval: 15_000, DetectLatency: 6_000, Seed: 1,
	}
	for _, scheme := range harness.SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			var ref string
			for _, shards := range shardCounts {
				spec := harness.Spec{App: "FFT", Procs: 8, Scheme: scheme, Scale: sc, Shards: shards}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
				m, err := harness.Build(spec)
				if err != nil {
					t.Fatal(err)
				}
				m.Run(sc.InstrPerProc * uint64(spec.Procs))
				m.RunCycles(50_000)
				m.FinalizeStats()
				fp := equivFingerprint(m)
				if shards == 1 {
					ref = fp
				} else if fp != ref {
					t.Fatalf("shards=%d diverged from shards=1", shards)
				}
			}
		})
	}
}

// TestShardEquivalenceCampaign: a fault-injected campaign (restore-
// per-trial through the snapshot engine) must produce a byte-identical
// Report across shard counts and GOMAXPROCS settings. The report's Key
// and Spec are neutralized before comparison — they carry the shard
// axis by design (different cells of the same physics) — but every
// trial record, latency summary and availability figure must match to
// the last bit.
func TestShardEquivalenceCampaign(t *testing.T) {
	widths := []int{1, runtime.NumCPU()}
	var ref []byte
	for _, shards := range shardCounts {
		for _, width := range widths {
			name := fmt.Sprintf("shards=%d/gomaxprocs=%d", shards, width)
			t.Run(name, func(t *testing.T) {
				old := runtime.GOMAXPROCS(width)
				defer runtime.GOMAXPROCS(old)
				spec := campaign.Spec{
					Base:   harness.Spec{App: "FFT", Procs: 4, Scheme: "Rebound", Scale: harness.Quick, Shards: shards},
					Trials: 6, Faults: 2, Window: 60_000, Seed: 1,
				}
				rep, err := campaign.New(harness.NewRunner(0), nil).Run(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				rep.Key = ""
				rep.Spec = campaign.Spec{}
				data, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = data
				} else if !bytes.Equal(data, ref) {
					t.Fatalf("campaign report diverged from the shards=1/gomaxprocs=1 reference")
				}
			})
		}
	}
}

// TestSharded256ProcSnapshotSmoke is the scale smoke test: a 256-
// processor, 8-shard machine warms, settles, snapshots; the snapshot
// survives a divergent continuation and restores byte-identically; the
// format-2 persistent codec round-trips it; and the parallel save plane
// is GOMAXPROCS-independent.
func TestSharded256ProcSnapshotSmoke(t *testing.T) {
	sc := harness.Scale{
		Name: "smoke256", ProcsLarge: 256, ProcsSmall: 256,
		InstrPerProc: 4_000, Interval: 2_000, DetectLatency: 1_500, Seed: 1,
	}
	spec := harness.Spec{App: "FFT", Procs: 256, Scheme: "Rebound", Scale: sc, Shards: 8}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := harness.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	budget := sc.InstrPerProc * uint64(spec.Procs)
	m.Run(budget / 2)
	if !m.SettleForSnapshot(sim.Cycle(4_000_000)) {
		t.Fatal("256-proc machine never reached a snapshot-safe point")
	}

	snap := new(machine.MachineSnapshot)
	if err := m.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	fp0 := equivFingerprint(m)
	enc1, err := m.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc1, []byte(`"format":2`)) {
		t.Fatal("sharded snapshot did not encode as format 2")
	}

	// The parallel save fans per-proc and per-shard tasks across
	// GOMAXPROCS workers over disjoint state; the captured bytes must
	// not depend on the worker count.
	old := runtime.GOMAXPROCS(1)
	seq := new(machine.MachineSnapshot)
	err = m.Snapshot(seq)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	encSeq, err := m.EncodeSnapshot(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, encSeq) {
		t.Fatal("snapshot bytes differ between GOMAXPROCS=1 and the parallel save")
	}

	// Diverge, then restore: the machine must land exactly back on the
	// captured state. (The re-captured snapshot's encoding is not
	// byte-compared here: the interned line table is shared and
	// append-only, so a diverged run legitimately grows every table —
	// restore resets the grown tails to defaults, which is behaviour-
	// identical but larger on the wire. The byte-level claims live on
	// the same-point captures above and the fresh-machine path below.)
	m.Run(budget / 2)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if equivFingerprint(m) != fp0 {
		t.Fatal("restore did not return the machine to the captured state")
	}

	// Persistent round trip into a fresh machine of the same shape:
	// decode, re-encode, restore, re-capture — all byte-identical.
	m2, err := harness.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	snap3, err := m2.DecodeSnapshot(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc3, err := m2.EncodeSnapshot(snap3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc3) {
		t.Fatal("format-2 decode + re-encode is not byte-identical")
	}
	if err := m2.Restore(snap3); err != nil {
		t.Fatal(err)
	}
	if equivFingerprint(m2) != fp0 {
		t.Fatal("machine restored from the persistent codec diverged from the captured state")
	}
	recap := new(machine.MachineSnapshot)
	if err := m2.Snapshot(recap); err != nil {
		t.Fatal(err)
	}
	enc4, err := m2.EncodeSnapshot(recap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc4) {
		t.Fatal("fresh machine restore + re-snapshot is not byte-identical to the persisted snapshot")
	}
}

// --- event-plane equivalence --------------------------------------------

// epBuild constructs an event-plane machine: the null-scheme cell
// executing on sim.ShardedEngine (machine/eventplane.go).
func epBuild(t *testing.T, shards int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig(8)
	cfg.Shards = shards
	cfg.EventPlane = true
	return machine.New(cfg, workload.ByName("FFT"), machine.NullScheme{})
}

// epFingerprint renders everything an event-plane run could diverge in.
// The undo log lives in per-shard partitions whose Seq numbers are
// per-partition counters, so the log enters the fingerprint as the
// canonical sorted projection of its entries with Seq dropped.
func epFingerprint(m *machine.Machine) string {
	var entries []string
	for _, l := range m.EventPlaneLogs() {
		for pid := 0; pid < m.Cfg.NProcs; pid++ {
			for _, e := range l.EntriesFor(pid) {
				entries = append(entries, fmt.Sprintf("%d|%d|%d|%v|%d", e.At, e.PID, e.Line, e.Old, e.Epoch))
			}
		}
	}
	sort.Strings(entries)
	return fmt.Sprintf("cycle=%d instr=%d stats=%s mem=%v log=%v",
		m.Now(), m.TotalInstructions(), m.St.Snapshot(), m.Ctrl.Memory().Snapshot(), entries)
}

// TestEventPlaneEquivalence is the tentpole determinism claim: the
// event-plane trajectory — machine state, folded stats, undo-log
// contents, the settle sequence and the post-settle continuation — is
// byte-identical across shard counts 1/2/4, parallel and sequential
// epoch execution, and GOMAXPROCS widths (CI runs this under -race,
// which is what makes the per-shard disjointness claim load-bearing).
func TestEventPlaneEquivalence(t *testing.T) {
	widths := []int{1, runtime.NumCPU()}
	var ref string
	for _, shards := range shardCounts {
		for _, par := range []bool{false, true} {
			for _, width := range widths {
				name := fmt.Sprintf("shards=%d/parallel=%v/gomaxprocs=%d", shards, par, width)
				t.Run(name, func(t *testing.T) {
					old := runtime.GOMAXPROCS(width)
					defer runtime.GOMAXPROCS(old)
					m := epBuild(t, shards)
					m.SetEventPlaneParallel(par)
					m.Run(8 * 30_000)
					if !m.SettleForSnapshot(1_000_000) {
						t.Fatal("event-plane machine never settled")
					}
					m.Run(8 * 5_000)
					fp := epFingerprint(m)
					if ref == "" {
						ref = fp
					} else if fp != ref {
						t.Fatalf("event-plane trajectory diverged from the shards=1 reference")
					}
				})
			}
		}
	}
}

// TestEventPlaneSnapshotRoundTrip: an event-plane machine settles,
// snapshots (per-shard queues through the tagged-event mechanism),
// diverges, restores byte-identically, and its restored continuation
// matches the original run — on the same machine and on a cold one.
// The in-memory capture must refuse the persistent codec (the format
// does not carry per-shard queues).
func TestEventPlaneSnapshotRoundTrip(t *testing.T) {
	m := epBuild(t, 4)
	m.Run(8 * 10_000)
	if !m.SettleForSnapshot(1_000_000) {
		t.Fatal("event-plane machine never settled")
	}
	snap := new(machine.MachineSnapshot)
	if err := m.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	fpA := epFingerprint(m)
	m.Run(8 * 5_000)
	fpB := epFingerprint(m)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if epFingerprint(m) != fpA {
		t.Fatal("restore did not return the event-plane machine to the captured state")
	}
	m.Run(8 * 5_000)
	if epFingerprint(m) != fpB {
		t.Fatal("the restored continuation diverged from the original run")
	}

	// Cold restore: a never-run machine of the same shape lands on the
	// same state and continues identically.
	m2 := epBuild(t, 4)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if epFingerprint(m2) != fpA {
		t.Fatal("cold machine restore diverged from the captured state")
	}
	m2.Run(8 * 5_000)
	if epFingerprint(m2) != fpB {
		t.Fatal("cold machine continuation diverged from the original run")
	}

	if _, err := m.EncodeSnapshot(snap); err == nil {
		t.Fatal("event-plane snapshots must refuse the persistent codec")
	}
}

// TestShardedFormat1PersistCompat pins the compatibility rule from the
// persist codec (machine/persist.go): an unsharded machine still
// encodes the pre-sharding format 1 — byte-compatible with snapshots
// persisted by earlier versions — and Shards=0 and Shards=1 are the
// same machine, down to the persisted bytes.
func TestShardedFormat1PersistCompat(t *testing.T) {
	encodeAt := func(shards int) []byte {
		t.Helper()
		spec := harness.Spec{App: "FFT", Procs: 8, Scheme: "Rebound", Scale: harness.Quick, Shards: shards}
		m, err := harness.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(spec.Scale.InstrPerProc * uint64(spec.Procs) / 4)
		if !m.SettleForSnapshot(sim.Cycle(400_000)) {
			t.Fatal("machine never reached a snapshot-safe point")
		}
		s := new(machine.MachineSnapshot)
		if err := m.Snapshot(s); err != nil {
			t.Fatal(err)
		}
		enc, err := m.EncodeSnapshot(s)
		if err != nil {
			t.Fatal(err)
		}
		// Round trip through the decoder on the same machine shape.
		dec, err := m.DecodeSnapshot(enc)
		if err != nil {
			t.Fatal(err)
		}
		enc2, err := m.EncodeSnapshot(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("format-1 decode + re-encode is not byte-identical")
		}
		return enc
	}

	enc0 := encodeAt(0)
	if !bytes.Contains(enc0, []byte(`"format":1`)) {
		t.Fatal("unsharded snapshot did not encode as legacy format 1")
	}
	if bytes.Contains(enc0, []byte(`"Shards"`)) || bytes.Contains(enc0, []byte(`"shards"`)) {
		t.Fatal("format-1 encoding leaks the shard axis")
	}
	if !bytes.Equal(enc0, encodeAt(1)) {
		t.Fatal("Shards=0 and Shards=1 persisted differently; they must be the same machine")
	}
}
