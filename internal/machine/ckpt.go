package machine

import (
	"repro/internal/sim"
)

// --- snapshots, checkpoint records and rollback --------------------------

func (p *Proc) takeSnapshot() Snapshot {
	return Snapshot{
		stream: p.stream.Snapshot(),
		micro:  p.micro,
		rng:    p.rng.State(),
		tick:   p.tick,
	}
}

// newRec takes a checkpoint record from the processor's pool (or the
// heap). Pooling matters once machines are recycled across campaign
// trials: every trial re-creates its checkpoint history, and the per-
// record allocation was a fixed per-trial cost.
func (p *Proc) newRec() *CkptRec {
	if n := len(p.recFree); n > 0 {
		r := p.recFree[n-1]
		p.recFree = p.recFree[:n-1]
		*r = CkptRec{}
		return r
	}
	return new(CkptRec)
}

// freeRec returns a record to the pool. The caller must guarantee no
// live closure still references it (completed records only, or whole-
// machine restore/reset where every outstanding closure is discarded).
func (p *Proc) freeRec(r *CkptRec) { p.recFree = append(p.recFree, r) }

// BeginCheckpoint captures the processor's register state at the
// checkpoint sync point and returns the pending record. The caller
// must be holding the processor paused. The new interval is not opened
// yet — call OpenNextEpoch (which may stall on Dep register pressure)
// before resuming.
func (p *Proc) BeginCheckpoint() *CkptRec {
	rec := p.newRec()
	rec.OpenedEpoch = p.curEpoch + 1
	rec.Snap = p.takeSnapshot()
	rec.CompletedAt = pendingCycle
	p.history = append(p.history, rec)
	p.instrSinceCkpt = 0
	return rec
}

// FinishCheckpoint marks rec complete at the current cycle and prunes
// stale history and log entries.
func (p *Proc) FinishCheckpoint(rec *CkptRec) {
	rec.CompletedAt = p.m.Eng.Now()
	p.pruneHistory()
}

// OpenNextEpoch opens the next checkpoint interval, recycling Dep
// register sets whose following checkpoint is older than L (§4.2), and
// calls ready (possibly later: the processor stalls when all sets are
// busy). The caller resumes the processor from ready.
func (p *Proc) OpenNextEpoch(ready func()) {
	if p.openPending {
		panic("machine: OpenNextEpoch while a previous open is pending (scheme bug)")
	}
	p.openPending = true
	next := p.curEpoch + 1
	gen := p.restoreGen
	p.tryOpen(gen, next, ready)
}

func (p *Proc) tryOpen(gen, epoch uint64, ready func()) {
	if p.restoreGen != gen {
		return // rolled back while waiting; the open is stale
	}
	p.recycleDeps()
	if p.deps.Open(epoch) {
		if p.depStallSince != 0 {
			p.m.St.DepStallCycles += uint64(p.m.Eng.Now() - p.depStallSince)
			p.depStallSince = 0
		}
		p.curEpoch = epoch
		p.openPending = false
		ready()
		return
	}
	// Out of Dep register sets: stall until the oldest becomes
	// recyclable (§4.2).
	if p.depStallSince == 0 {
		p.depStallSince = p.m.Eng.Now()
	}
	retry := p.m.Cfg.DetectLatency / 8
	if retry < 100 {
		retry = 100
	}
	p.m.Eng.Schedule(retry, func() { p.tryOpen(gen, epoch, ready) })
}

// recycleDeps releases Dep register sets by the §4.2 rule: the set for
// interval e frees once the checkpoint that follows e (OpenedEpoch ==
// e+1) completed at least L cycles ago.
func (p *Proc) recycleDeps() {
	now := p.m.Eng.Now()
	for p.deps.LiveCount() > 1 {
		e := p.deps.Oldest().Epoch
		rec := p.recByOpenedEpoch(e + 1)
		if rec == nil || rec.CompletedAt == pendingCycle || rec.CompletedAt+p.m.Cfg.DetectLatency > now {
			return
		}
		p.deps.Release(e)
	}
}

func (p *Proc) recByOpenedEpoch(e uint64) *CkptRec {
	for i := len(p.history) - 1; i >= 0; i-- {
		if p.history[i].OpenedEpoch == e {
			return p.history[i]
		}
	}
	return nil
}

// pruneHistory keeps a bounded tail of checkpoint records and lets the
// log drop entries no rollback can ever target again.
func (p *Proc) pruneHistory() {
	const keep = 8
	if len(p.history) <= keep {
		return
	}
	drop := len(p.history) - keep
	for _, r := range p.history[:drop] {
		if r.CompletedAt != pendingCycle {
			// Completed records have no outstanding references; pending
			// ones (never the case for the pruned prefix, but guarded)
			// may still be held by in-flight scheme closures.
			p.freeRec(r)
		}
	}
	p.history = append(p.history[:0], p.history[drop:]...)
	// Everything before the oldest retained checkpoint is dead weight.
	p.m.Ctrl.Log().Truncate(map[int]uint64{p.id: p.history[0].OpenedEpoch})
}

// LatestSafeCkpt returns the most recent checkpoint that completed at
// least L cycles ago — the rollback target of §3.3.5/§4.2. The initial
// (program start) record is always safe.
func (p *Proc) LatestSafeCkpt() *CkptRec {
	now := p.m.Eng.Now()
	L := p.m.Cfg.DetectLatency
	for i := len(p.history) - 1; i >= 1; i-- {
		rec := p.history[i]
		if rec.CompletedAt != pendingCycle && rec.CompletedAt+L <= now {
			return rec
		}
	}
	return p.history[0]
}

// History exposes the checkpoint records (tests, debugging).
func (p *Proc) History() []*CkptRec { return p.history }

// RestoreTo rolls the processor's core-local state back to rec: caches
// invalidated, directory detached, Dep registers reset, register state
// (stream, micro-sequence, RNG) restored, fault state cleared. Memory
// restoration from the log is done once per rollback set by the scheme
// through Machine.RollbackProcs.
func (p *Proc) RestoreTo(rec *CkptRec) {
	// Abort any in-flight drain; the Delayed lines are being discarded.
	p.draining = false
	p.drainDone = nil
	p.drainRush = false
	p.delayedQueue = p.delayedQueue[:0]

	p.l1.InvalidateAll(nil)
	p.l2.InvalidateAll(nil)
	p.m.Dir.DetachProc(p.id)

	p.deps.ReleaseAllButCurrent()
	p.deps.ResetCurrent(rec.OpenedEpoch)
	p.curEpoch = rec.OpenedEpoch

	p.stream.Restore(rec.Snap.stream)
	p.micro = rec.Snap.micro
	p.rng.Restore(rec.Snap.rng)
	p.tick = rec.Snap.tick
	p.instrSinceCkpt = 0

	p.faulty = false
	p.tainted = false

	// Drop undone checkpoints (any record newer than rec, including
	// pending ones: a fault during checkpointing aborts it, §3.3.4).
	// Completed ones return to the pool; a pending one may still be
	// referenced by the aborted checkpoint's writeback closure (which
	// will complete it individually), so it is only orphaned.
	for len(p.history) > 0 && p.history[len(p.history)-1].OpenedEpoch > rec.OpenedEpoch {
		last := p.history[len(p.history)-1]
		if last.CompletedAt != pendingCycle {
			p.freeRec(last)
		}
		p.history = p.history[:len(p.history)-1]
	}
	if p.depStallSince != 0 {
		p.m.St.DepStallCycles += uint64(p.m.Eng.Now() - p.depStallSince)
		p.depStallSince = 0
	}
	// Any dormancy (I/O wait, barrier gate) is cancelled by rollback:
	// the processor re-executes from the snapshot, and callbacks issued
	// before the rollback go stale via the generation counter.
	p.dormant = false
	p.restoreGen++
	p.openPending = false
}

// RollbackProcs rolls a closed set of processors back to their latest
// safe checkpoints: one pass over the log restores memory (reverse
// order, per-processor target epochs), then each processor's local
// state is restored. It returns the per-processor target epochs, the
// number of log entries restored and the cycle at which the memory
// restoration completes.
func (m *Machine) RollbackProcs(set []*Proc) (map[int]uint64, uint64, sim.Cycle) {
	targets := make(map[int]uint64, len(set))
	recs := make(map[int]*CkptRec, len(set))
	for _, p := range set {
		rec := p.LatestSafeCkpt()
		targets[p.id] = rec.OpenedEpoch
		recs[p.id] = rec
	}
	restored, done := m.Ctrl.Restore(targets)
	for _, p := range set {
		p.RestoreTo(recs[p.id])
	}
	return targets, restored, done
}
