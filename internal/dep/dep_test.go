package dep

import "testing"

func newT() *Tracker { return NewTracker(4, 1024, 4) }

func TestNewTrackerOpensEpochZero(t *testing.T) {
	tr := newT()
	if tr.LiveCount() != 1 || tr.Current().Epoch != 0 {
		t.Fatal("tracker should start with epoch 0 open")
	}
	if tr.Capacity() != 4 {
		t.Fatal("capacity wrong")
	}
}

func TestTooFewSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 1 should panic")
		}
	}()
	NewTracker(1, 512, 4)
}

func TestOpenUntilStall(t *testing.T) {
	tr := newT()
	for e := uint64(1); e < 4; e++ {
		if !tr.Open(e) {
			t.Fatalf("Open(%d) failed with free sets available", e)
		}
	}
	if tr.CanOpen() {
		t.Fatal("CanOpen should be false at capacity")
	}
	if tr.Open(4) {
		t.Fatal("Open beyond capacity must fail (processor stalls)")
	}
	// Release the oldest; now a new epoch can open.
	tr.Release(0)
	if !tr.Open(4) {
		t.Fatal("Open after Release failed")
	}
	if tr.Oldest().Epoch != 1 || tr.Current().Epoch != 4 {
		t.Fatalf("ring order wrong: oldest %d current %d", tr.Oldest().Epoch, tr.Current().Epoch)
	}
}

func TestOpenNonMonotonicPanics(t *testing.T) {
	tr := newT()
	defer func() {
		if recover() == nil {
			t.Fatal("re-opening epoch 0 should panic")
		}
	}()
	tr.Open(0)
}

func TestReleaseGuards(t *testing.T) {
	tr := newT()
	func() {
		defer func() { recover() }()
		tr.Release(0)
		t.Fatal("releasing the only live set should panic")
	}()
	tr.Open(1)
	func() {
		defer func() { recover() }()
		tr.Release(1) // oldest is 0
		t.Fatal("releasing a non-oldest epoch should panic")
	}()
}

func TestByEpochAndClear(t *testing.T) {
	tr := newT()
	tr.Current().MyProducers.Set(3)
	tr.Current().WSIG.Insert(99)
	tr.Open(1)
	if tr.ByEpoch(0) == nil || tr.ByEpoch(1) == nil || tr.ByEpoch(2) != nil {
		t.Fatal("ByEpoch lookup wrong")
	}
	if !tr.ByEpoch(0).MyProducers.Test(3) {
		t.Fatal("old epoch content lost on Open")
	}
	if tr.Current().MyProducers.Test(3) || tr.Current().WSIG.Test(99) && tr.Current().WSIG.TestExact(99) {
		t.Fatal("new epoch's set not cleared")
	}
	// Recycled sets are cleared too.
	tr.Open(2)
	tr.Open(3)
	tr.Release(0)
	tr.Open(4)
	s := tr.ByEpoch(4)
	if s.MyProducers.Test(3) || s.WSIG.TestExact(99) {
		t.Fatal("recycled set retains stale contents")
	}
}

func TestLastWriterEpochReverseAge(t *testing.T) {
	tr := newT()
	tr.Current().WSIG.Insert(7) // epoch 0
	tr.Open(1)
	tr.Current().WSIG.Insert(7) // epoch 1 too
	tr.Open(2)                  // epoch 2: not written
	if e, ok := tr.LastWriterEpoch(7); !ok || e != 1 {
		t.Fatalf("LastWriterEpoch = (%d,%v), want (1,true): newest match wins", e, ok)
	}
	if e, ok := tr.LastWriterEpochExact(7); !ok || e != 1 {
		t.Fatalf("exact variant = (%d,%v), want (1,true)", e, ok)
	}
	if _, ok := tr.LastWriterEpoch(8); ok {
		t.Fatal("unwritten line matched")
	}
}

func TestConsumersFrom(t *testing.T) {
	tr := newT()
	tr.Current().MyConsumers.Set(1) // epoch 0
	tr.Open(1)
	tr.Current().MyConsumers.Set(2) // epoch 1
	tr.Open(2)
	tr.Current().MyConsumers.Set(3) // epoch 2
	got := tr.ConsumersFrom(1)
	if got.Test(1) || !got.Test(2) || !got.Test(3) {
		t.Fatalf("ConsumersFrom(1) = %v, want {2, 3}", got)
	}
	all := tr.ConsumersFrom(0)
	if all.Count() != 3 {
		t.Fatalf("ConsumersFrom(0) = %v, want 3 procs", all)
	}
}

func TestReleaseAllButCurrentAndReset(t *testing.T) {
	tr := newT()
	tr.Open(1)
	tr.Open(2)
	tr.Current().MyConsumers.Set(5)
	tr.ReleaseAllButCurrent()
	if tr.LiveCount() != 1 || tr.Current().Epoch != 2 {
		t.Fatal("ReleaseAllButCurrent kept extra sets")
	}
	tr.ResetCurrent(7)
	if tr.Current().Epoch != 7 || tr.Current().MyConsumers.Test(5) {
		t.Fatal("ResetCurrent did not clear")
	}
	if !tr.CanOpen() {
		t.Fatal("sets not returned to free list")
	}
}

func TestFalsePositiveStatsAggregates(t *testing.T) {
	tr := newT()
	tr.Current().WSIG.Insert(1)
	tr.Current().WSIG.Test(1)
	tr.Open(1)
	tr.Current().WSIG.Test(2)
	tests, _ := tr.FalsePositiveStats()
	if tests != 2 {
		t.Fatalf("aggregated tests = %d, want 2", tests)
	}
}
