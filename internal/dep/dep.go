// Package dep implements the Dep registers of Rebound (§3.3.1, §4.2):
// per-processor MyProducers and MyConsumers bit vectors plus the Write
// Signature (WSIG), organised as a small ring of register sets so a
// processor can keep dependence state for several outstanding
// checkpoint intervals (multiple checkpoints, §4.2; the paper's
// evaluation uses at most 4 sets).
package dep

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/sig"
)

// RegSet is one set of Dep registers, covering a single checkpoint
// interval (epoch).
type RegSet struct {
	// Epoch is the checkpoint interval this set covers.
	Epoch uint64
	// MyProducers has bit j set if processor j produced data consumed
	// by this processor during the epoch. It may be a superset of the
	// truth (stale LW-IDs, WSIG false positives) — never a subset.
	MyProducers *bitset.Bitset
	// MyConsumers has bit j set if processor j consumed data this
	// processor produced during the epoch.
	MyConsumers *bitset.Bitset
	// WSIG encodes the lines written (or read exclusively) during the
	// epoch; used to answer "are you the last writer?" (§3.3.2).
	WSIG *sig.Paired

	// PExact and CExact are measurement-only shadows of MyProducers
	// and MyConsumers maintained with an ideal (exact) write signature.
	// They quantify how much WSIG false positives inflate the
	// interaction set (Table 6.1 row 1); the hardware has no such state.
	PExact *bitset.Bitset
	CExact *bitset.Bitset
}

func newRegSet(sigBits, sigHashes int) *RegSet {
	return &RegSet{
		MyProducers: bitset.New(64),
		MyConsumers: bitset.New(64),
		WSIG:        sig.NewPaired(sigBits, sigHashes),
		PExact:      bitset.New(64),
		CExact:      bitset.New(64),
	}
}

func (r *RegSet) clear(epoch uint64) {
	r.Epoch = epoch
	r.MyProducers.Reset()
	r.MyConsumers.Reset()
	r.WSIG.Clear()
	r.PExact.Reset()
	r.CExact.Reset()
}

// Tracker manages a processor's ring of Dep register sets. Sets are
// ordered oldest to newest; the newest covers the current epoch. The
// recycling *policy* (a set frees only when the checkpoint following
// its epoch completed at least L cycles ago) is enforced by the
// checkpointing scheme, which calls Release when the condition holds.
type Tracker struct {
	capacity  int
	sigBits   int
	sigHashes int
	live      []*RegSet // oldest first
	free      []*RegSet
	// all holds every physical set in construction order, permanently:
	// snapshot Load and Reset repartition live/free over it without
	// allocating (sets are interchangeable once their contents are
	// overwritten).
	all []*RegSet
}

// NewTracker returns a tracker with capacity register sets (the paper
// evaluates 4) using the given WSIG geometry. The first epoch (0) is
// opened immediately.
func NewTracker(capacity, sigBits, sigHashes int) *Tracker {
	if capacity < 2 {
		// Delayed writebacks alone require two live sets (§4.1).
		panic("dep: need at least 2 register sets")
	}
	t := &Tracker{capacity: capacity, sigBits: sigBits, sigHashes: sigHashes}
	t.all = make([]*RegSet, capacity)
	t.free = make([]*RegSet, 0, capacity)
	t.live = make([]*RegSet, 0, capacity)
	for i := 0; i < capacity; i++ {
		t.all[i] = newRegSet(sigBits, sigHashes)
		t.free = append(t.free, t.all[i])
	}
	t.mustOpen(0)
	return t
}

// Capacity returns the total number of register sets.
func (t *Tracker) Capacity() int { return t.capacity }

// LiveCount returns the number of sets currently in use.
func (t *Tracker) LiveCount() int { return len(t.live) }

// CanOpen reports whether a new epoch can be opened without stalling.
func (t *Tracker) CanOpen() bool { return len(t.free) > 0 }

// Open starts a new epoch. It returns false (and changes nothing) if no
// register set is free — the processor must stall (§4.2).
func (t *Tracker) Open(epoch uint64) bool {
	if len(t.free) == 0 {
		return false
	}
	t.mustOpen(epoch)
	return true
}

func (t *Tracker) mustOpen(epoch uint64) {
	if len(t.live) > 0 && epoch <= t.Current().Epoch {
		panic(fmt.Sprintf("dep: epoch %d not newer than current %d", epoch, t.Current().Epoch))
	}
	s := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	s.clear(epoch)
	t.live = append(t.live, s)
}

// Current returns the newest (active) register set.
func (t *Tracker) Current() *RegSet {
	if len(t.live) == 0 {
		panic("dep: no live register set")
	}
	return t.live[len(t.live)-1]
}

// Oldest returns the oldest live register set.
func (t *Tracker) Oldest() *RegSet {
	if len(t.live) == 0 {
		panic("dep: no live register set")
	}
	return t.live[0]
}

// ByEpoch returns the live set covering epoch, or nil.
func (t *Tracker) ByEpoch(epoch uint64) *RegSet {
	for _, s := range t.live {
		if s.Epoch == epoch {
			return s
		}
	}
	return nil
}

// Release frees the oldest live set, which must cover epoch (a sanity
// check that the scheme's recycling logic agrees with the ring order).
// The current set can never be released.
func (t *Tracker) Release(epoch uint64) {
	if len(t.live) <= 1 {
		panic("dep: cannot release the current register set")
	}
	if t.live[0].Epoch != epoch {
		panic(fmt.Sprintf("dep: release of epoch %d but oldest is %d", epoch, t.live[0].Epoch))
	}
	s := t.live[0]
	t.live = t.live[1:]
	t.free = append(t.free, s)
}

// ReleaseAllButCurrent frees every set except the newest (used on
// rollback, which discards the rolled-back epochs' dependence state).
func (t *Tracker) ReleaseAllButCurrent() {
	for len(t.live) > 1 {
		s := t.live[0]
		t.live = t.live[1:]
		t.free = append(t.free, s)
	}
}

// ResetCurrent clears the newest set for reuse under a new epoch
// (rollback re-executes the interval from scratch).
func (t *Tracker) ResetCurrent(epoch uint64) { t.Current().clear(epoch) }

// LastWriterEpoch implements the multiple-checkpoint "are you the last
// writer?" rule of §4.2: test the address against the live WSIGs in
// reverse age order (newest first) and return the epoch of the first
// match. Matching the newest interval is the conservative choice when
// the address appears in several.
func (t *Tracker) LastWriterEpoch(line uint64) (uint64, bool) {
	for i := len(t.live) - 1; i >= 0; i-- {
		if t.live[i].WSIG.Test(line) {
			return t.live[i].Epoch, true
		}
	}
	return 0, false
}

// LastWriterEpochExact is LastWriterEpoch with the idealised signature,
// for the Table 6.1 false-positive measurement.
func (t *Tracker) LastWriterEpochExact(line uint64) (uint64, bool) {
	for i := len(t.live) - 1; i >= 0; i-- {
		if t.live[i].WSIG.TestExact(line) {
			return t.live[i].Epoch, true
		}
	}
	return 0, false
}

// ConsumersFrom ORs the MyConsumers of every live epoch >= epoch — the
// set of processors that must be asked to roll back when those
// intervals are undone (§4.2, second event).
func (t *Tracker) ConsumersFrom(epoch uint64) *bitset.Bitset {
	out := bitset.New(64)
	for _, s := range t.live {
		if s.Epoch >= epoch {
			out.Or(s.MyConsumers)
		}
	}
	return out
}

// Live returns the live sets oldest-first (shared storage; callers must
// not retain across Open/Release).
func (t *Tracker) Live() []*RegSet { return t.live }

// SetSnapshot is one register set's saved state. Sets are captured in
// ring order — live oldest-first, then the free stack bottom-first — so
// a Load reproduces not just the contents but the exact recycling order.
type SetSnapshot struct {
	Epoch       uint64
	MyProducers *bitset.Bitset
	MyConsumers *bitset.Bitset
	PExact      *bitset.Bitset
	CExact      *bitset.Bitset
	WSIG        sig.PairedSnapshot
}

// Snapshot is a saved tracker image.
type Snapshot struct {
	NLive int
	Sets  []SetSnapshot
}

func (ss *SetSnapshot) save(r *RegSet) {
	ss.Epoch = r.Epoch
	if ss.MyProducers == nil {
		ss.MyProducers = bitset.New(64)
		ss.MyConsumers = bitset.New(64)
		ss.PExact = bitset.New(64)
		ss.CExact = bitset.New(64)
	}
	ss.MyProducers.CopyFrom(r.MyProducers)
	ss.MyConsumers.CopyFrom(r.MyConsumers)
	ss.PExact.CopyFrom(r.PExact)
	ss.CExact.CopyFrom(r.CExact)
	r.WSIG.Save(&ss.WSIG)
}

func (ss *SetSnapshot) load(r *RegSet) {
	r.Epoch = ss.Epoch
	r.MyProducers.CopyFrom(ss.MyProducers)
	r.MyConsumers.CopyFrom(ss.MyConsumers)
	r.PExact.CopyFrom(ss.PExact)
	r.CExact.CopyFrom(ss.CExact)
	r.WSIG.Load(&ss.WSIG)
}

// Save copies the tracker state into s, reusing its storage.
func (t *Tracker) Save(s *Snapshot) {
	s.NLive = len(t.live)
	if cap(s.Sets) < t.capacity {
		s.Sets = make([]SetSnapshot, t.capacity)
	} else {
		s.Sets = s.Sets[:t.capacity]
	}
	i := 0
	for _, r := range t.live {
		s.Sets[i].save(r)
		i++
	}
	for _, r := range t.free {
		s.Sets[i].save(r)
		i++
	}
}

// Load restores the tracker from s: the first NLive saved sets become
// the live ring (oldest first), the rest the free stack, repartitioned
// over the permanent physical sets without allocating. Which physical
// set carries which saved slot is irrelevant — contents are fully
// overwritten. The tracker's capacity must match the capture.
func (t *Tracker) Load(s *Snapshot) {
	if len(s.Sets) != t.capacity {
		panic("dep: snapshot capacity mismatch")
	}
	t.live = t.live[:0]
	t.free = t.free[:0]
	for i, r := range t.all {
		s.Sets[i].load(r)
		if i < s.NLive {
			t.live = append(t.live, r)
		} else {
			t.free = append(t.free, r)
		}
	}
}

// Reset returns the tracker to its just-constructed state: every set
// cleared including the cumulative WSIG counters, epoch 0 open.
func (t *Tracker) Reset() {
	for _, r := range t.all {
		r.clear(0)
		r.WSIG.ResetAll()
	}
	t.free = append(t.free[:0], t.all...)
	t.live = t.live[:0]
	t.mustOpen(0)
}

// FalsePositiveStats sums WSIG membership tests and false positives
// across all register sets (live and free; counters are cumulative).
func (t *Tracker) FalsePositiveStats() (tests, fps uint64) {
	for _, s := range t.live {
		tests += s.WSIG.Tests
		fps += s.WSIG.FalsePositives
	}
	for _, s := range t.free {
		tests += s.WSIG.Tests
		fps += s.WSIG.FalsePositives
	}
	return
}
