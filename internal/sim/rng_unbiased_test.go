package sim

import "testing"

// The bounded draw must stay a pure function of the single-word state:
// restoring a snapshot replays the identical sequence (rollback
// re-execution), including across Lemire rejection loops.
func TestIntnSnapshotRestoreReplays(t *testing.T) {
	r := NewRNG(12345)
	s := r.State()
	var first [1000]int
	for i := range first {
		first[i] = r.Intn(7) // non-power-of-two: rejection path reachable
	}
	r.Restore(s)
	for i := range first {
		if v := r.Intn(7); v != first[i] {
			t.Fatalf("draw %d: %d after restore, %d before", i, v, first[i])
		}
	}
}

// Coarse uniformity check: with the old Next()%n draw the bias for
// small n is ~2^-61 — invisible here — but this guards the Lemire
// implementation against gross errors (off-by-one in the threshold,
// returning lo instead of hi).
func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 7, 70000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d: %d draws, want ~%d", i, c, want)
		}
	}
}
