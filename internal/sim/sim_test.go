package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: FIFO
	end := e.Run(0)
	if end != 10 {
		t.Fatalf("end cycle = %d, want 10", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v", got)
	}
}

func TestZeroDelayRunsAtSameCycle(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 7 {
		t.Fatalf("zero-delay event fired at %d, want 7", at)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100, func() { fired = true })
	end := e.Run(50)
	if fired || end != 50 {
		t.Fatalf("limit violated: fired=%v end=%d", fired, end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(0)
	if !fired || e.Now() != 100 {
		t.Fatal("resumed run did not fire remaining event")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++; e.Stop() })
	e.Schedule(2, func() { n++ })
	e.Run(0)
	if n != 1 {
		t.Fatalf("Stop did not halt the engine: n=%d", n)
	}
}

func TestAtClampsToPresent(t *testing.T) {
	e := NewEngine()
	var at Cycle = 999
	e.Schedule(10, func() {
		e.At(3, func() { at = e.Now() }) // in the past: clamp to now
	})
	e.Run(0)
	if at != 10 {
		t.Fatalf("past At fired at %d, want 10", at)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 || e.Now() != 1 {
		t.Fatal("first Step misbehaved")
	}
	if !e.Step() || n != 2 || e.Now() != 2 {
		t.Fatal("second Step misbehaved")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine()
		rng := NewRNG(42)
		var trace []uint64
		var rec func()
		count := 0
		rec = func() {
			trace = append(trace, e.Now())
			count++
			if count < 200 {
				e.Schedule(Cycle(rng.Intn(10)+1), rec)
			}
		}
		e.Schedule(1, rec)
		e.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGSnapshotRestore(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		for i := 0; i < int(n); i++ {
			r.Next()
		}
		s := r.State()
		a := make([]uint64, 8)
		for i := range a {
			a[i] = r.Next()
		}
		r.Restore(s)
		for i := range a {
			if r.Next() != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGRangesAndPanics(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(3, 5); v < 3 || v > 5 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	mustPanic(t, func() { r.Intn(0) })
	mustPanic(t, func() { r.Range(5, 3) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
