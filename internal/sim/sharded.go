// Sharded execution: a conservative time-windowed (epoch) executor that
// advances several independent Engine heaps in parallel while producing
// an execution that is byte-identical to running the same heaps one at
// a time. This is the event-plane counterpart of the machine's sharded
// state plane (internal/mem.Sharding): state partitions parallelize
// snapshot/restore/fork, and the ShardedEngine parallelizes event
// execution for models whose shards only interact through messages with
// a known minimum latency.
//
// The contract is the classic conservative PDES lookahead argument
// (Chandy/Misra): if every cross-shard interaction is expressed as a
// Send with delay >= the lookahead window W, then during the epoch
// [T, T+W) no shard can receive anything from another shard that would
// fire inside the epoch — every message sent at t in [T, T+W) arrives
// at t+delay >= T+W. Each shard can therefore run its local heap
// through the whole epoch without synchronizing, in any order or in
// parallel, and the merged execution is independent of that order.
// Cross-shard messages buffered during the epoch are injected at the
// barrier in a single deterministic order: (deliverAt, source shard,
// per-source sequence). Determinism is a hard invariant, not a fast
// path: Run(Parallel=true) and Run(Parallel=false) produce identical
// event interleavings per shard and identical destination-heap
// sequence numbers, so any trace recorded by the model is identical.
//
// The machine model runs on this executor in event-plane mode
// (machine.Config.EventPlane): coherence transactions are decomposed
// into request/reply message legs whose modeled latencies are clamped
// up to the window, every leg and processor step carries a unique
// ordering key (SendKeyed / Engine.ScheduleKeyed), and each line's
// directory state is touched only on its home shard — which together
// satisfy the lookahead contract and make the trajectory independent
// of the shard count. The historical functional protocol (zero-latency
// synchronous directory walks) stays on the sequential Engine. The
// executor's own determinism is validated by the equivalence suite in
// sharded_test.go, which runs under -race at several GOMAXPROCS
// settings.
package sim

import (
	"runtime"
	"sort"
	"sync"
)

// xmsg is one cross-shard message buffered in a source shard's outbox
// until the epoch barrier.
type xmsg struct {
	at  Cycle  // absolute delivery cycle (>= epoch end + 1)
	key uint64 // shifted ordering key (merge key 2); 0 for plain Send
	src int    // sending shard (merge key 3)
	seq uint64 // per-source send sequence (merge key 4)
	dst int
	fn  func()
}

// ShardedEngine coordinates n independent Engines under a conservative
// epoch window. Events on shard i may freely touch shard-i model state
// and schedule more shard-i events via Shard(i); any effect on another
// shard must go through Send with delay >= Window().
type ShardedEngine struct {
	window Cycle
	shards []*Engine
	outbox [][]xmsg // per source shard; only shard i's events append to outbox[i]
	sent   []uint64 // per source shard send counter (deterministic merge key)
	merged []xmsg   // barrier scratch, reused across epochs

	// Parallel selects goroutine-per-shard epoch execution. The result
	// is byte-identical either way; false is the sequential reference
	// mode (shards advanced in index order) used by the equivalence
	// tests and by GOMAXPROCS=1 runs.
	Parallel bool

	now Cycle // completed-epoch frontier
}

// NewShardedEngine returns an executor over n fresh Engines with the
// given lookahead window. n must be >= 1 and window >= 1.
func NewShardedEngine(n int, window Cycle) *ShardedEngine {
	if n < 1 {
		panic("sim: ShardedEngine needs at least one shard")
	}
	if window < 1 {
		panic("sim: ShardedEngine window must be >= 1 cycle")
	}
	se := &ShardedEngine{
		window: window,
		shards: make([]*Engine, n),
		outbox: make([][]xmsg, n),
		sent:   make([]uint64, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Window returns the lookahead window: the minimum legal cross-shard
// Send delay.
func (se *ShardedEngine) Window() Cycle { return se.window }

// Shard returns shard i's Engine for local scheduling. Events scheduled
// on it must only touch shard-i model state.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Now returns the completed-epoch frontier: every event at or before
// this cycle, on every shard, has fired.
func (se *ShardedEngine) Now() Cycle { return se.now }

// Pending returns the total number of scheduled events across shards.
// Cross-shard messages in flight count once they are injected at the
// next barrier; during an epoch callers only see their own shard.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	return n
}

// Send schedules fn on shard dst, delay cycles after the current cycle
// of shard src. It must be called from an event executing on shard src
// (it appends to src's private outbox — that, not the src clock, is why
// src must be accurate). delay must be >= Window(): the conservative
// epoch executor is only correct when no message can arrive inside the
// epoch it was sent in, so a shorter delay panics rather than silently
// breaking determinism.
func (se *ShardedEngine) Send(src, dst int, delay Cycle, fn func()) {
	if delay < se.window {
		panic("sim: cross-shard Send delay below the lookahead window")
	}
	se.sent[src]++
	se.outbox[src] = append(se.outbox[src], xmsg{
		at:  se.shards[src].Now() + delay,
		src: src,
		seq: se.sent[src],
		dst: dst,
		fn:  fn,
	})
}

// SendKeyed is Send for a message whose delivery order relative to
// other same-cycle keyed messages must be independent of which shard
// sent it: deliveries at the same cycle are merged in ascending key
// order ahead of (src, seq), and fire on the destination heap in that
// key order too (see Engine.ScheduleKeyed). Plain Send messages carry
// key 0 and therefore keep their historical (at, src, seq) order ahead
// of all keyed messages. The caller owns key uniqueness.
func (se *ShardedEngine) SendKeyed(src, dst int, delay Cycle, key uint64, fn func()) {
	if delay < se.window {
		panic("sim: cross-shard Send delay below the lookahead window")
	}
	se.sent[src]++
	se.outbox[src] = append(se.outbox[src], xmsg{
		at:  se.shards[src].Now() + delay,
		key: key + 1,
		src: src,
		seq: se.sent[src],
		dst: dst,
		fn:  fn,
	})
}

// earliest returns the minimum pending event time across shards.
// Outboxes are always empty here — every barrier drains them.
func (se *ShardedEngine) earliest() (Cycle, bool) {
	var best Cycle
	any := false
	for _, sh := range se.shards {
		if len(sh.heap) == 0 {
			continue
		}
		if at := sh.heap[0].at; !any || at < best {
			best, any = at, true
		}
	}
	return best, any
}

// Run advances epochs until no events remain anywhere or the next
// event lies beyond limit (0 means no limit), and returns the frontier.
// Each epoch starts at the earliest pending event time T, runs every
// shard through [T, T+Window()-1] — in parallel when Parallel is set —
// then injects the buffered cross-shard messages in (deliverAt, src,
// seq) order.
func (se *ShardedEngine) Run(limit Cycle) Cycle {
	for se.RunEpoch(limit) {
	}
	return se.now
}

// RunEpoch advances exactly one epoch (or stops at limit) and reports
// whether it made progress. It is the building block of Run, exposed so
// that callers who need to poll model state at epoch granularity — the
// machine event plane checks instruction budgets and snapshot
// quiescence between epochs — can drive the same executor.
func (se *ShardedEngine) RunEpoch(limit Cycle) bool {
	start, any := se.earliest()
	if !any {
		return false
	}
	if limit != 0 && start > limit {
		se.now = limit
		return false
	}
	end := start + se.window - 1
	if limit != 0 && end > limit {
		end = limit
	}

	if se.Parallel && len(se.shards) > 1 {
		se.runEpochParallel(end)
	} else {
		for _, sh := range se.shards {
			sh.Run(end)
		}
	}
	se.barrier()
	se.now = end
	return true
}

// runEpochParallel runs every shard's heap through end with one worker
// goroutine per shard (capped at GOMAXPROCS via the scheduler; shards
// share nothing during an epoch, so this is race-free by construction).
func (se *ShardedEngine) runEpochParallel(end Cycle) {
	var wg sync.WaitGroup
	// Tiny heaps are common near quiescence; skip goroutine overhead
	// when only one shard has work this epoch.
	active := 0
	for _, sh := range se.shards {
		if len(sh.heap) > 0 && sh.heap[0].at <= end {
			active++
		}
	}
	if active <= 1 || runtime.GOMAXPROCS(0) == 1 {
		for _, sh := range se.shards {
			sh.Run(end)
		}
		return
	}
	for _, sh := range se.shards {
		wg.Add(1)
		go func(sh *Engine) {
			defer wg.Done()
			sh.Run(end)
		}(sh)
	}
	wg.Wait()
}

// barrier drains every outbox into the destination heaps in a single
// deterministic order. Sorting by (deliverAt, src, seq) fixes both the
// destination engines' sequence-number assignment and, therefore, the
// tie-break order of same-cycle deliveries — identical for sequential
// and parallel epochs.
func (se *ShardedEngine) barrier() {
	msgs := se.merged[:0]
	for i := range se.outbox {
		msgs = append(msgs, se.outbox[i]...)
		clear(se.outbox[i]) // release fn references
		se.outbox[i] = se.outbox[i][:0]
	}
	if len(msgs) > 1 {
		sort.Slice(msgs, func(a, b int) bool {
			if msgs[a].at != msgs[b].at {
				return msgs[a].at < msgs[b].at
			}
			if msgs[a].key != msgs[b].key {
				return msgs[a].key < msgs[b].key
			}
			if msgs[a].src != msgs[b].src {
				return msgs[a].src < msgs[b].src
			}
			return msgs[a].seq < msgs[b].seq
		})
	}
	for _, m := range msgs {
		if m.key == 0 {
			se.shards[m.dst].At(m.at, m.fn)
		} else {
			se.shards[m.dst].scheduleKeyedAbs(m.at, m.key, m.fn)
		}
	}
	clear(msgs)
	se.merged = msgs[:0]
}

// AdoptFrontier restores the completed-epoch frontier (machine
// snapshot restore; the per-shard engines are restored separately, and
// outboxes are empty at any restorable point).
func (se *ShardedEngine) AdoptFrontier(now Cycle) { se.now = now }

// Reset returns every shard to cycle 0 with empty heaps and outboxes.
func (se *ShardedEngine) Reset() {
	for _, sh := range se.shards {
		sh.Reset()
	}
	for i := range se.outbox {
		clear(se.outbox[i])
		se.outbox[i] = se.outbox[i][:0]
		se.sent[i] = 0
	}
	se.now = 0
}
